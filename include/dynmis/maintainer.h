// DynamicMisMaintainer: the common interface of all dynamic independent-set
// algorithms in the library (DyOneSwap, DyTwoSwap, the generic k-maximal
// maintainer, and the baselines DyARW / DGOneDIS / DGTwoDIS / recompute).
// This is the library's public algorithm contract: implementations are
// constructed through MaintainerRegistry (dynmis/registry.h) or owned by a
// MisEngine (dynmis/engine.h).
//
// A maintainer owns the *mutation* of its DynamicGraph: callers route every
// graph update through the maintainer so the independent set and the graph
// stay consistent. The benchmark driver gives each algorithm its own copy of
// the input graph and replays one shared update sequence through all of them
// (vertex ids stay aligned because DynamicGraph id allocation is
// deterministic).

#ifndef DYNMIS_INCLUDE_DYNMIS_MAINTAINER_H_
#define DYNMIS_INCLUDE_DYNMIS_MAINTAINER_H_

#include <string>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/graph/update_stream.h"

namespace dynmis {

class DynamicMisMaintainer {
 public:
  virtual ~DynamicMisMaintainer() = default;

  // Builds the maintained state from `initial`, which must be an independent
  // set of the current graph. The maintainer extends it to a maximal
  // (and, for the swap-based algorithms, k-maximal) solution.
  virtual void Initialize(const std::vector<VertexId>& initial) = 0;

  // Update operations. Preconditions mirror DynamicGraph's: inserted edges
  // must not exist, deleted edges/vertices must exist.
  virtual void InsertEdge(VertexId u, VertexId v) = 0;
  virtual void DeleteEdge(VertexId u, VertexId v) = 0;
  virtual VertexId InsertVertex(const std::vector<VertexId>& neighbors) = 0;
  virtual void DeleteVertex(VertexId v) = 0;

  // Current solution.
  virtual bool InSolution(VertexId v) const = 0;
  virtual int64_t SolutionSize() const = 0;
  virtual std::vector<VertexId> Solution() const = 0;

  // Copy-on-demand form of Solution(): appends the members to `out` (not
  // cleared), reusing the caller's buffer across calls instead of building a
  // fresh vector. Callers that only need the count should use SolutionSize(),
  // which is O(1) on every implementation.
  virtual void CollectSolution(std::vector<VertexId>* out) const {
    const std::vector<VertexId> solution = Solution();
    out->insert(out->end(), solution.begin(), solution.end());
  }

  // Bytes used by the maintainer's own data structures (graph excluded).
  virtual size_t MemoryUsageBytes() const = 0;

  virtual std::string Name() const = 0;

  // Applies a block of updates as one transaction and returns the vertex ids
  // assigned to the block's kInsertVertex ops, in op order. The default
  // processes updates one at a time; maintainers that support deferred swap
  // restoration (DyOneSwap, DyTwoSwap) override this to run the graph
  // mutations and maximality fixes for the whole block first and a single
  // swap-restoration pass at the end, which amortizes overlapping cascades.
  // The k-maximality guarantee holds at the *end* of the batch (intermediate
  // states are only maximal).
  virtual std::vector<VertexId> ApplyBatch(
      const std::vector<GraphUpdate>& updates) {
    std::vector<VertexId> new_vertices;
    for (const GraphUpdate& update : updates) {
      const VertexId v = Apply(update);
      if (update.kind == UpdateKind::kInsertVertex) new_vertices.push_back(v);
    }
    return new_vertices;
  }

  // Dispatches a GraphUpdate to the typed operations above.
  VertexId Apply(const GraphUpdate& update) {
    switch (update.kind) {
      case UpdateKind::kInsertEdge:
        InsertEdge(update.u, update.v);
        return kInvalidVertex;
      case UpdateKind::kDeleteEdge:
        DeleteEdge(update.u, update.v);
        return kInvalidVertex;
      case UpdateKind::kInsertVertex:
        return InsertVertex(update.neighbors);
      case UpdateKind::kDeleteVertex:
        DeleteVertex(update.u);
        return kInvalidVertex;
    }
    return kInvalidVertex;
  }
};

}  // namespace dynmis

#endif  // DYNMIS_INCLUDE_DYNMIS_MAINTAINER_H_
