// DynamicMisMaintainer: the common interface of all dynamic independent-set
// algorithms in the library (DyOneSwap, DyTwoSwap, the generic k-maximal
// maintainer, and the baselines DyARW / DGOneDIS / DGTwoDIS / recompute).
// This is the library's public algorithm contract: implementations are
// constructed through MaintainerRegistry (dynmis/registry.h) or owned by a
// MisEngine (dynmis/engine.h).
//
// A maintainer owns the *mutation* of its DynamicGraph: callers route every
// graph update through the maintainer so the independent set and the graph
// stay consistent. The benchmark driver gives each algorithm its own copy of
// the input graph and replays one shared update sequence through all of them
// (vertex ids stay aligned because DynamicGraph id allocation is
// deterministic).

#ifndef DYNMIS_INCLUDE_DYNMIS_MAINTAINER_H_
#define DYNMIS_INCLUDE_DYNMIS_MAINTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/graph/update_stream.h"
#include "src/io/snapshot.h"

namespace dynmis {

class DynamicMisMaintainer {
 public:
  virtual ~DynamicMisMaintainer() = default;

  // Builds the maintained state from `initial`, which must be an independent
  // set of the current graph. The maintainer extends it to a maximal
  // (and, for the swap-based algorithms, k-maximal) solution.
  virtual void Initialize(const std::vector<VertexId>& initial) = 0;

  // Update operations. Preconditions mirror DynamicGraph's: inserted edges
  // must not exist, deleted edges/vertices must exist.
  virtual void InsertEdge(VertexId u, VertexId v) = 0;
  virtual void DeleteEdge(VertexId u, VertexId v) = 0;
  virtual VertexId InsertVertex(const std::vector<VertexId>& neighbors) = 0;
  virtual void DeleteVertex(VertexId v) = 0;

  // Current solution.
  virtual bool InSolution(VertexId v) const = 0;
  virtual int64_t SolutionSize() const = 0;
  virtual std::vector<VertexId> Solution() const = 0;

  // Copy-on-demand form of Solution(): appends the members to `out` (not
  // cleared), reusing the caller's buffer across calls instead of building a
  // fresh vector. Callers that only need the count should use SolutionSize(),
  // which is O(1) on every implementation.
  virtual void CollectSolution(std::vector<VertexId>* out) const {
    const std::vector<VertexId> solution = Solution();
    out->insert(out->end(), solution.begin(), solution.end());
  }

  // --- Status transitions ----------------------------------------------------

  // Installs an observer invoked on every solution status transition
  // (`in` = true for a move into the solution, false for a move out),
  // immediately after the membership flip, on whatever thread applies the
  // update. Passing nullptr uninstalls. Returns false when the maintainer
  // cannot report transitions (the baselines, which rebuild solutions
  // wholesale); callers must then fall back to polling Solution(). The
  // sharded engine uses this to ship MoveIn/MoveOut events to its
  // asynchronous cut-edge resolver as they happen.
  using StatusObserverFn = void (*)(void* ctx, VertexId v, bool in);
  virtual bool SetStatusObserver(StatusObserverFn fn, void* ctx) {
    (void)fn;
    (void)ctx;
    return false;
  }

  // Bytes used by the maintainer's own data structures (graph excluded).
  virtual size_t MemoryUsageBytes() const = 0;

  virtual std::string Name() const = 0;

  // --- Snapshots ------------------------------------------------------------

  // Appends the maintainer's persistent state to an open snapshot (one or
  // more whole sections). Must be called at a quiescent point — between
  // updates, never mid-batch. The graph itself is saved separately by the
  // owner (MisEngine::SaveSnapshot); ids in the persisted state refer to
  // that graph's id space. The default persists only the solution
  // membership (section "maintainer/solution").
  virtual void SaveState(SnapshotWriter* w) const {
    w->BeginSection("maintainer/solution");
    std::vector<VertexId> solution;
    CollectSolution(&solution);
    w->PutI32Array(solution);
    w->EndSection();
  }

  // Restores the state saved by SaveState. `g` is the owning graph, already
  // restored to the snapshot's topology (the same graph this maintainer was
  // constructed over). Returns false (with the reader's error set) on
  // missing sections or malformed contents. The default validates the
  // persisted membership (alive, independent) and re-initializes from it —
  // a recompute-on-load fallback costing one Initialize pass; the swap
  // maintainers (DyOneSwap, DyTwoSwap, KSwap) override both hooks to
  // restore their tightness structures directly, making load O(state) with
  // no rebuild.
  virtual bool LoadState(SnapshotReader* r, const DynamicGraph& g) {
    if (!r->OpenSection("maintainer/solution")) return false;
    std::vector<VertexId> solution;
    if (!r->GetI32Array(&solution)) return false;
    if (!r->AtSectionEnd()) {
      r->Fail("snapshot: maintainer/solution: trailing bytes");
      return false;
    }
    std::vector<uint8_t> member(g.VertexCapacity(), 0);
    for (VertexId v : solution) {
      if (!g.IsVertexAlive(v) || member[v]) {
        r->Fail("snapshot: maintainer/solution: invalid vertex id");
        return false;
      }
      member[v] = 1;
    }
    for (VertexId v : solution) {
      bool independent = true;
      g.ForEachIncident(v, [&](VertexId u, EdgeId) {
        if (member[u]) independent = false;
      });
      if (!independent) {
        r->Fail("snapshot: maintainer/solution: set is not independent");
        return false;
      }
    }
    Initialize(solution);
    return true;
  }

  // Applies a block of updates as one transaction and returns the vertex ids
  // assigned to the block's kInsertVertex ops, in op order. The default
  // processes updates one at a time; maintainers that support deferred swap
  // restoration (DyOneSwap, DyTwoSwap) override this to run the graph
  // mutations and maximality fixes for the whole block first and a single
  // swap-restoration pass at the end, which amortizes overlapping cascades.
  // The k-maximality guarantee holds at the *end* of the batch (intermediate
  // states are only maximal).
  virtual std::vector<VertexId> ApplyBatch(
      const std::vector<GraphUpdate>& updates) {
    std::vector<VertexId> new_vertices;
    for (const GraphUpdate& update : updates) {
      const VertexId v = Apply(update);
      if (update.kind == UpdateKind::kInsertVertex) new_vertices.push_back(v);
    }
    return new_vertices;
  }

  // Dispatches a GraphUpdate to the typed operations above.
  VertexId Apply(const GraphUpdate& update) {
    switch (update.kind) {
      case UpdateKind::kInsertEdge:
        InsertEdge(update.u, update.v);
        return kInvalidVertex;
      case UpdateKind::kDeleteEdge:
        DeleteEdge(update.u, update.v);
        return kInvalidVertex;
      case UpdateKind::kInsertVertex:
        return InsertVertex(update.neighbors);
      case UpdateKind::kDeleteVertex:
        DeleteVertex(update.u);
        return kInvalidVertex;
    }
    return kInvalidVertex;
  }
};

}  // namespace dynmis

#endif  // DYNMIS_INCLUDE_DYNMIS_MAINTAINER_H_
