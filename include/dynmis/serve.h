// Serving layer: a dependency-free TCP server over the engine facades, so
// the maintained independent set can be driven and queried from outside the
// process — the first subsystem that exercises the library as a service
// rather than as an in-process benchmark.
//
// The server speaks a newline-delimited text protocol (README "Serving"):
//
//   HELLO 1                          versioned handshake (mandatory first line)
//   INS u v / DEL u v                edge updates
//   INSV [n1 n2 ...] / DELV u        vertex updates
//   BATCH n ... END                  n update lines framed as one client batch
//   QUERY u / SOLUTION / STATS       queries (impose a flush barrier)
//   SNAPSHOT path / TRACE path       durable checkpoints / applied-op trace
//   VERIFY                           server-side independence+maximality check
//   REPL SUBSCRIBE seq [EPOCH e]     change-log streaming (replication)
//   REPL STATUS                      replication head + fencing epoch
//   PROMOTE                          follower -> primary (also on SIGUSR1);
//                                    claims a fresh fencing epoch

//   RESHARD n [plan]                 online backend swap to n shards (plan:
//                                    hash | range | locality)
//   QUIT                             orderly goodbye
//
// Updates pass through an *admission layer*: each op is validated against a
// replica graph (invalid ops are rejected with `ERR`, never reach the
// engine, and can never trip an engine precondition), then coalesced with
// ops from every other connection into one ApplyBatch call, flushed when the
// batch fills (`batch_max_ops`) or a deadline expires (`flush_deadline_us`).
// Acks are deferred until the containing batch applies, so `OK` means
// "applied", and the measured update latency is the honest queue+apply time.
// Throughput therefore scales with connection count (one engine call per
// batch) instead of collapsing into per-op engine traffic.
//
// The server runs over either backend behind the ServingBackend adapter: a
// single MisEngine, or a ShardedMisEngine with N worker shards. STATS
// reports the same EngineStats fields for both (plus a per-shard breakdown
// for the sharded backend), wired from the same counters the bench driver's
// observer hook uses. SNAPSHOT writes the PR-3 container online;
// ServeOptions::restore_path warm-starts a fresh server from one (warm
// failover: checkpoint on the old process, --restore on the new).
//
// Concurrency model: one engine thread (acceptor + admission + backend +
// replication) plus ServeOptions::io_threads I/O threads. Each I/O thread
// runs its own epoll loop over a share of the connections — non-blocking
// reads, frame/line decode, and writes all happen there — and feeds parsed
// commands to the engine thread through a per-thread SPSC inbox
// (src/serve/mailbox.h); the engine never touches a connection socket, and
// all wakeups (including Stop()/signals) are eventfd-based. Clients may
// negotiate a length-prefixed binary framing with `HELLO 2 BIN`
// (src/serve/binary.h); text stays the default and the debugging
// interface. SIGTERM / Stop() drains cleanly: pending batches are applied,
// deferred acks are written out bounded by a hard drain deadline, then
// sockets close.

#ifndef DYNMIS_INCLUDE_DYNMIS_SERVE_H_
#define DYNMIS_INCLUDE_DYNMIS_SERVE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/engine.h"
#include "dynmis/snapshot.h"
#include "src/graph/edge_list.h"
#include "src/ingest/key_map.h"

namespace dynmis {

class ShardedMisEngine;

namespace serve {

// Text protocol version; `HELLO 1` selects it. `HELLO 2 BIN` selects the
// binary framing (kBinaryProtocolVersion). Anything else is rejected at the
// handshake.
inline constexpr int kProtocolVersion = 1;
inline constexpr int kBinaryProtocolVersion = 2;

struct ServeOptions {
  // Listen address. Port 0 binds an ephemeral port (Server::port() reports
  // the actual one after Start()).
  std::string host = "127.0.0.1";
  int port = 0;

  // "engine" (single MisEngine) or "sharded" (ShardedMisEngine).
  std::string backend = "engine";
  // Worker shards for the sharded backend (ignored by "engine").
  int shards = 2;
  MaintainerConfig algo;

  // Admission batching: flush the coalesced batch at this many ops, or when
  // the oldest enqueued op has waited this long, whichever comes first.
  int batch_max_ops = 512;
  double flush_deadline_us = 1000;

  // I/O threads (>= 1), each running an epoll loop over its share of the
  // connections. One thread is plenty up to tens of connections; raise it
  // toward the core count when decode/socket work — not the engine —
  // becomes the ceiling (see README "Serving").
  int io_threads = 1;

  // Protocol limits. A line longer than max_line_bytes is a protocol error
  // and closes the connection; a client that piles up more than
  // max_output_bytes of unread responses (pipelining SOLUTION without
  // reading, say) is disconnected rather than allowed to grow server
  // memory without bound.
  size_t max_line_bytes = 1 << 16;
  size_t max_output_bytes = 16 << 20;
  int max_connections = 256;

  // Warm start: restore the backend from this snapshot file instead of
  // building it from a base graph.
  std::string restore_path;

  // Record every applied update so the TRACE command can export the exact
  // applied sequence (unbounded memory over the server's lifetime; meant
  // for verification runs, not production).
  bool record_trace = false;

  // SNAPSHOT/TRACE write client-supplied paths on the server host — a file
  // -write primitive no unauthenticated remote peer should have. They are
  // enabled automatically on loopback listeners and refused elsewhere
  // unless this is explicitly set.
  bool allow_file_commands = false;

  // Temporal sliding window: when > 0, every admitted edge insert is
  // scheduled for deletion this many wall-clock milliseconds later. Expiry
  // batches flow through the normal admission/apply/replication path, so a
  // follower sees the same deletions the primary applied. 0 disables the
  // window (edges live forever, the classic behaviour).
  int64_t window_ttl_ms = 0;

  // --- Replication (README "Replication") ---

  // When set, every applied ApplyBatch is appended to a segmented change
  // log in this directory, REPL SUBSCRIBE can serve catch-up from disk, and
  // periodic base snapshots land next to the segments.
  std::string change_log_dir;
  // Rotate change-log segments at this size.
  int64_t log_segment_bytes = 4 << 20;
  // Write a background base snapshot every N applied batches (0 = off).
  // Requires change_log_dir.
  int64_t snapshot_every_batches = 0;
  // Also trigger a base snapshot when this much wall time has passed since
  // the last trigger, firing at the next batch boundary (0 = off; combines
  // with snapshot_every_batches — whichever trips first). Requires
  // change_log_dir. Unlike the batch-count cadence this one is workload-
  // independent: an idle-ish primary still snapshots on schedule.
  int64_t snapshot_interval_ms = 0;

  // Follower mode: tail a primary over TCP ("host:port") or tail its
  // change-log directory directly (same-host deployments). Mutually
  // exclusive; either one starts the server read-only (updates answered
  // with `ERR readonly`) until it is promoted.
  std::string follow_addr;
  std::string follow_dir;
  // First change-log seq the follower still needs (set by the bootstrap
  // path after base-snapshot restore + tail replay).
  int64_t repl_start_seq = 0;
  // Seq of the base snapshot the follower booted from (-1: fresh start);
  // surfaced in STATS for observability.
  int64_t bootstrap_base_seq = -1;
  // Highest fencing epoch observed by the bootstrap replay (epoch file,
  // base-snapshot prologue, segment headers). A primary claims a strictly
  // higher epoch at Start(); a follower adopts it as its starting term.
  int64_t start_epoch = 0;
  // Upper bound for the follower's upstream-reconnect backoff (the delay
  // doubles from 50ms per consecutive failure, with +/-25% jitter, and is
  // capped here).
  int64_t reconnect_max_ms = 5000;
};

// The uniform surface the server drives. Both engines sit behind it; a new
// backend (e.g. a remote replica) implements these seven calls.
class ServingBackend {
 public:
  virtual ~ServingBackend() = default;

  // "engine" or "sharded".
  virtual std::string Kind() const = 0;
  // Worker shards (1 for the single engine).
  virtual int NumShards() const = 0;
  virtual UpdateResult ApplyBatch(const std::vector<GraphUpdate>& updates) = 0;
  virtual bool InSolution(VertexId v) = 0;
  // Appends the current solution to `out` (not cleared).
  virtual void CollectSolution(std::vector<VertexId>* out) = 0;
  virtual EngineStats Stats() = 0;
  // Per-shard breakdown (empty for the single engine); same field meanings
  // as Stats(), restricted to one shard's local view.
  virtual std::vector<EngineStats> PerShardStats() { return {}; }
  // The sharded engine behind this backend (nullptr for the single engine).
  // STATS reads its ShardStats() for the resolver block, and RESHARD
  // defaults the target partition plan to the current one.
  virtual ShardedMisEngine* Sharded() { return nullptr; }
  virtual SnapshotStatus SaveSnapshot(std::ostream& out) = 0;
  // Appends the backend's sections to an open writer (SaveSnapshot is
  // SaveTo + WriteTo). The server's snapshot path composes this with its
  // own sections (the external-key map) into one container.
  virtual void SaveTo(SnapshotWriter* writer) = 0;
  // A standalone copy of the served graph whose id-space state matches the
  // backend's (future AddVertex ids agree). Seeds the admission replica.
  virtual DynamicGraph ExportGraph() = 0;
  // The maintainer configuration the backend runs (resharding rebuilds a
  // target backend with the same algorithm).
  virtual const MaintainerConfig& Config() const = 0;
};

// Builds the backend named by `options.backend` over a copy of `base`
// (ignored when options.restore_path is set — the snapshot fixes graph and
// algorithm). Returns nullptr with `*error` set on unknown backend name,
// unknown algorithm, or a failed restore.
std::unique_ptr<ServingBackend> MakeServingBackend(const EdgeListGraph& base,
                                                   const ServeOptions& options,
                                                   std::string* error);

// Restores a backend from a snapshot stream, auto-detecting the container
// flavour ("sharded" section present -> ShardedMisEngine, else MisEngine).
// The replication bootstrap path uses this to load base snapshots without
// knowing which backend wrote them. When `keymap` is non-null and the
// container carries a "keymap" section (servers with keyed clients write
// one), it is restored into `*keymap`; containers without one leave it
// empty. Returns nullptr with `*error` set on a malformed or incompatible
// snapshot.
std::unique_ptr<ServingBackend> RestoreServingBackend(
    std::istream& in, std::string* error, ingest::KeyMap* keymap = nullptr);

// Live serving counters, exposed via STATS (JSON) and Server::StatsJson().
struct ServingMetricsSnapshot {
  int64_t connections_accepted = 0;
  int64_t connections_open = 0;
  int64_t protocol_errors = 0;
  int64_t ops_admitted = 0;
  int64_t ops_applied = 0;
  int64_t ops_rejected = 0;
  int64_t batches_flushed = 0;
  double mean_batch_occupancy = 0;
  int64_t flushes_full = 0;      // Batch reached batch_max_ops.
  int64_t flushes_deadline = 0;  // Flush deadline expired.
  int64_t flushes_barrier = 0;   // A query/snapshot/drain forced the flush.
  double uptime_seconds = 0;
  double ops_per_sec = 0;  // Applied ops over uptime.
  // Microsecond percentiles (enqueue -> applied for updates; whole command
  // for queries).
  double update_p50_us = 0;
  double update_p99_us = 0;
  double query_p50_us = 0;
  double query_p99_us = 0;
  // Transport (summed over I/O threads; per-thread detail in STATS JSON).
  int64_t io_threads = 0;
  int64_t io_wakeups = 0;
  int64_t io_frames_decoded = 0;
  int64_t io_inbox_depth_high_water = 0;  // Max over threads.
  // Replication (zero / defaulted when replication is not configured).
  std::string repl_role;         // "primary", "follower", or "fenced".
  int64_t repl_next_seq = 0;     // Batches applied == next log seq.
  int64_t repl_ops_logged = 0;   // Ops appended to the change log.
  int64_t repl_segments = 0;     // Segments created by this writer.
  int64_t repl_snapshots_written = 0;
  int64_t repl_snapshots_failed = 0;
  int64_t repl_last_base_seq = -1;
  int64_t repl_subscribers = 0;  // Live REPL SUBSCRIBE connections.
  int64_t repl_promotions = 0;   // PROMOTE/SIGUSR1 transitions taken.
  int64_t repl_resharded = 0;    // Completed online RESHARD swaps.
  int64_t repl_epoch = 0;        // Highest fencing epoch observed.
  int64_t repl_fenced = 0;       // 1 after a higher epoch fenced this server.
  int64_t repl_reconnects = 0;   // Successful upstream re-establishments.
  // Why writes are currently refused on a degraded primary (change-log
  // append failure); empty while healthy.
  std::string degraded_reason;
  // External-key / temporal-window layer (docs/OPERATIONS.md has the alert
  // thresholds).
  int64_t keymap_entries = 0;  // Live key -> id bindings.
  int64_t window_edges = 0;    // Edges currently inside the TTL window.
  int64_t expired_ops = 0;     // TTL deletions applied over the lifetime.
};

// The TCP server. Construct, Start(), then Run() on the engine thread;
// Run() spawns the configured I/O threads and joins them on drain. Stop()
// is safe from any thread (and from the installed signal handlers) and
// triggers the drain path.
class Server {
 public:
  Server(std::unique_ptr<ServingBackend> backend, ServeOptions options);
  ~Server();

  // Binds and listens. Returns false with `*error` set on socket failure.
  bool Start(std::string* error);

  // The bound port (valid after Start()).
  int port() const;

  // Serves until Stop(). Returns 0 on a clean drain, 1 on an internal
  // socket error.
  int Run();

  // Requests shutdown (thread- and signal-safe); Run() drains and returns.
  void Stop();

  // Requests follower promotion (thread- and signal-safe): the loop drops
  // read-only mode, detaches from the upstream, and — when a change_log_dir
  // is configured — starts appending to its own change log. No-op on a
  // server that is already writable.
  void RequestPromote();

  // Routes SIGINT/SIGTERM to Stop() and SIGUSR1 to RequestPromote() of this
  // server (one server per process).
  static void InstallSignalHandlers(Server* server);

  // The admission layer's replica of the served graph — exactly the state
  // every applied update has been validated against. Read-only interop for
  // verification; meaningless while Run() is mid-loop on another thread.
  const DynamicGraph& replica_graph() const;

  // The external-key map (KINS/KDEL/KQUERY bindings). Same caveats as
  // replica_graph().
  const ingest::KeyMap& key_map() const;

  // Seeds the key map before Run() — the replication bootstrap path hands
  // over the bindings it restored from the base snapshot + tail replay.
  void AdoptKeyMap(ingest::KeyMap keymap);

  // The STATS payload (one-line JSON), for tooling that has no socket.
  std::string StatsJson();

  ServingMetricsSnapshot MetricsSnapshot() const;

  ServingBackend& backend();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_INCLUDE_DYNMIS_SERVE_H_
