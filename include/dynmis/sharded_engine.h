// ShardedMisEngine: the multi-threaded, vertex-partitioned counterpart of
// MisEngine. Vertices are split across S shards by a PartitionPlan (hash,
// contiguous-range, or streaming-greedy locality); each shard owns a
// DynamicGraph of its intra-shard edges plus a registry maintainer, and
// runs on a dedicated worker thread fed by a per-shard update queue.
// Cross-shard edges never enter a shard graph: the CutEdgeResolver tracks
// them and repairs the conflicts they cause — evicting one endpoint of
// each conflicting cut edge (deterministic lower-degree-wins rule),
// re-extending around the evictions, and polishing with bounded 1-swaps —
// so CollectSolution() always returns a verified independent set — in
// fact a maximal one — of the global graph.
//
// The resolver runs in one of two modes. Asynchronously (the default,
// when the maintainer can report status transitions): every shard ships
// its maintainer's MoveIn/MoveOut transitions as it applies blocks, the
// engine ships cut-edge mutations, and the resolver's own worker thread
// folds both streams into a standing overlay + conflict set continuously —
// a barrier drains the worker and finalizes the (mostly clean) frontier
// instead of recomputing conflicts from scratch. Sequentially (baselines
// that rebuild solutions wholesale): cut-edge ops apply inline and every
// barrier recomputes the overlay.
//
// Calls route updates asynchronously: Apply/ApplyBatch classify each op in
// O(1), forward cut-edge ops to the resolver, and append intra-shard ops
// to per-shard pending blocks that are posted to the workers as they fill.
// Queries (Solution, Stats, SaveSnapshot, ...) impose a barrier — drain
// every queue and the resolver, then resolve. The final solution is a pure
// function of the update sequence: neither thread scheduling nor block
// boundaries affect it, so seeded runs replay identically (see
// tests/sharded_engine_test.cc) — in async mode because each vertex's
// transition stream has a single ordered producer (its owner shard) and
// the drained overlay is therefore exact, and the barrier finalize sorts
// every working set into a canonical order.
//
// With S = 1 every edge is intra-shard and the single worker replays
// exactly what a MisEngine would: the degenerate case reproduces the
// single-engine solution verbatim.
//
// The engine's own API is not thread-safe: one caller thread drives it
// (the workers it owns are an implementation detail).

#ifndef DYNMIS_INCLUDE_DYNMIS_SHARDED_ENGINE_H_
#define DYNMIS_INCLUDE_DYNMIS_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/engine.h"
#include "dynmis/snapshot.h"
#include "src/graph/edge_list.h"
#include "src/shard/cut_edge_resolver.h"
#include "src/shard/partition_plan.h"
#include "src/shard/shard.h"

namespace dynmis {

struct ShardedEngineOptions {
  int num_shards = 1;
  PartitionStrategy partition = PartitionStrategy::kHash;
  // Pending intra-shard ops per shard before a block is posted to its
  // worker. A throughput knob only: the maintained solution is independent
  // of block boundaries.
  int block_ops = 1024;
  // Run the CutEdgeResolver on its own worker thread, fed by shipped
  // status transitions and cut-edge ops, so barriers finalize the standing
  // conflict set instead of recomputing it. Falls back to the sequential
  // resolver automatically when the maintainer cannot report transitions
  // (the wholesale-rebuild baselines). A scheduling knob only: the
  // maintained solution is identical in both modes for the same mode —
  // i.e. replay-deterministic — though the two modes' polish passes may
  // pick different (equally valid) verified-maximal solutions.
  bool async_resolver = true;
};

// Sharding-specific counters, alongside the common EngineStats.
struct ShardedStats {
  int num_shards = 0;
  std::string partition;        // "hash", "range", or "locality".
  int64_t intra_edges = 0;      // Sum over shard graphs.
  int64_t cut_edges = 0;
  double cut_edge_fraction = 0; // cut / (cut + intra).
  int64_t barriers = 0;         // Resolution passes run so far.
  // Cumulative over all resolution passes.
  int64_t conflicts = 0;
  int64_t evictions = 0;
  int64_t readded = 0;
  int64_t swaps = 0;            // Polish-pass 1-swaps.
  double resolve_seconds = 0;   // Wall time inside barrier resolutions.
  // Asynchronous-resolver instrumentation (zeros in sequential mode).
  bool async_resolver = false;      // Worker thread active.
  int64_t resolver_backlog = 0;     // Unconsumed shipped ops right now.
  int64_t resolver_conflicts = 0;   // Standing conflict-set size right now.
  int64_t transitions_consumed = 0; // Lifetime transitions folded in.
  // Local (pre-resolution) solution size per shard at the last barrier.
  std::vector<int64_t> shard_solution_sizes;
};

class ShardedMisEngine {
 public:
  // Builds a sharded engine over `base` with the maintainer named by
  // `config.algorithm` in every shard. Returns nullptr when the name is
  // not registered. Workers are running on return; call Initialize()
  // before applying updates.
  static std::unique_ptr<ShardedMisEngine> Create(
      const EdgeListGraph& base, MaintainerConfig config = {},
      ShardedEngineOptions options = {});

  // Builds a sharded engine over a live DynamicGraph — dead-id gaps, free-
  // list recycle order and all — so the new engine's global id allocation
  // continues exactly where `global`'s would (future vertex inserts assign
  // identical ids). This is the online-resharding primitive: restore a
  // checkpoint, BuildGlobalGraph(), re-partition into a different shard
  // count, replay the tail. Workers are running on return; call
  // Initialize() before applying updates.
  static std::unique_ptr<ShardedMisEngine> CreateFromGraph(
      const DynamicGraph& global, MaintainerConfig config = {},
      ShardedEngineOptions options = {});

  ~ShardedMisEngine();

  // Initializes every shard's maintainer from the empty set (in parallel)
  // and runs the first resolution.
  void Initialize();

  // --- Updates (asynchronous routing) ---------------------------------------

  // `seconds` in the returned UpdateResult measures routing/enqueue time on
  // the calling thread; shard work proceeds concurrently until the next
  // barrier.
  UpdateResult Apply(const GraphUpdate& update);
  UpdateResult ApplyBatch(const std::vector<GraphUpdate>& updates);

  UpdateResult InsertEdge(VertexId u, VertexId v);
  UpdateResult DeleteEdge(VertexId u, VertexId v);
  // Returns the globally assigned id of the inserted vertex (allocated
  // synchronously; ids match what a single engine would assign).
  VertexId InsertVertex(const std::vector<VertexId>& neighbors);
  UpdateResult DeleteVertex(VertexId v);

  // Posts all pending blocks and blocks until every worker drained its
  // queue (a barrier without a resolution pass).
  void Flush();

  // --- Queries (impose a barrier + resolution when updates are pending) ----

  bool InSolution(VertexId v);
  int64_t SolutionSize();
  std::vector<VertexId> Solution();
  // Appends the resolved solution (sorted by id) to `out` (not cleared).
  void CollectSolution(std::vector<VertexId>* out);

  EngineStats Stats();
  ShardedStats ShardStats();

  // Per-shard EngineStats breakdown (one entry per shard, local view: the
  // shard's intra-shard graph, its maintainer's pre-resolution solution and
  // memory). Lifetime counters (updates_applied / update_seconds) are
  // engine-global and reported by Stats() only, so they stay zero here.
  // Serving-layer parity: STATS reports the same fields for the sharded
  // backend as for a single engine, plus this breakdown.
  std::vector<EngineStats> PerShardStats();

  // Called once per Apply/ApplyBatch with the op count and the routing wall
  // time (batch-latency semantics; per-op timing would serialize the very
  // work the shards parallelize).
  using UpdateObserver = std::function<void(int64_t applied, double seconds)>;
  void SetUpdateObserver(UpdateObserver observer) {
    observer_ = std::move(observer);
  }

  // --- Snapshots ------------------------------------------------------------

  // Barrier, then writes one versioned container holding the engine
  // section, the cut structure, and each shard section-wise ("shard<i>/"
  // prefixed graph + maintainer state). Restoring is O(state) per shard.
  SnapshotStatus SaveSnapshot(std::ostream& out);

  // Appends the engine's sections to an open writer (barrier included);
  // SaveSnapshot is SaveTo + WriteTo. Lets the serving layer add its own
  // sections (the external-key map) to the same container.
  void SaveTo(SnapshotWriter* writer);

  // Rebuilds a sharded engine from a snapshot stream. Returns nullptr on
  // any structural problem (reason in `*status`), including cross-section
  // inconsistencies a crafted payload could smuggle in (a vertex alive in
  // the cut structure but missing from its shard, a shard edge that the
  // plan says is cut, ...). Never aborts on malformed input.
  static std::unique_ptr<ShardedMisEngine> LoadSnapshot(
      std::istream& in, SnapshotStatus* status = nullptr);

  const MaintainerConfig& config() const { return config_; }
  const ShardedEngineOptions& options() const { return options_; }
  const PartitionPlan& plan() const { return plan_; }
  int num_shards() const { return plan_.num_shards(); }

  // Read-mostly interop for verification and tests. Shard graphs hold the
  // shard's vertices at their global ids plus intra-shard edges only; the
  // resolver holds every vertex plus the cut edges. Only meaningful at a
  // barrier (call Flush() or a query first).
  const DynamicGraph& shard_graph(int shard) const {
    return shards_[shard]->graph();
  }
  const CutEdgeResolver& resolver() const { return resolver_; }

  // Materializes the global graph (every alive vertex, intra-shard plus cut
  // edges) as one standalone DynamicGraph whose id-space state — capacity
  // and vertex free-list recycle order — matches this engine's, so future
  // AddVertex() calls on the copy assign the ids this engine will. Imposes
  // a barrier. The serving layer's admission replica is seeded from this
  // after a warm restore.
  DynamicGraph BuildGlobalGraph();

 private:
  ShardedMisEngine(MaintainerConfig config, ShardedEngineOptions options,
                   PartitionPlan plan, int initial_vertices);

  // Classifies and routes one update; returns the assigned id for
  // kInsertVertex ops. Invalidates the cached resolution.
  VertexId Route(const GraphUpdate& update);
  void PostPending(int shard);
  void Barrier();
  // Barrier + resolution pass (cached until the next routed update).
  void EnsureResolved();
  // Engages the asynchronous resolver when options allow and the
  // maintainer supports status transitions: installs per-shard transition
  // sinks, seeds the standing overlay from the current shard solutions,
  // and starts the resolver worker. Call after every shard's maintainer
  // exists (and has restored any state), before any shard Start().
  void EnableAsyncResolver();
  bool LoadShards(SnapshotReader* reader);
  // Cross-structure consistency of freshly loaded shard/cut graphs.
  bool ValidateLoaded(SnapshotReader* reader) const;

  MaintainerConfig config_;
  ShardedEngineOptions options_;
  PartitionPlan plan_;
  CutEdgeResolver resolver_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard::Block> pending_;

  bool resolved_ = false;
  bool async_active_ = false;
  CutEdgeResolver::Resolution resolution_;

  UpdateObserver observer_;
  int64_t updates_applied_ = 0;
  double update_seconds_ = 0;
  double resolve_seconds_ = 0;
  int64_t barriers_ = 0;
  int64_t total_conflicts_ = 0;
  int64_t total_evictions_ = 0;
  int64_t total_readded_ = 0;
  int64_t total_swaps_ = 0;
};

}  // namespace dynmis

#endif  // DYNMIS_INCLUDE_DYNMIS_SHARDED_ENGINE_H_
