// MisEngine: the owning facade over (dynamic graph + maintainer). Where the
// raw DynamicMisMaintainer interface borrows a caller-managed DynamicGraph,
// the engine owns both halves: it is constructed from an EdgeListGraph (or
// an already-built DynamicGraph), builds its maintainer through the global
// MaintainerRegistry, and keeps the pair consistent for its whole lifetime.
// This is the intended entry point for applications; examples and the CLI
// are written against it.
//
// Every mutation returns a structured UpdateResult carrying the applied-op
// count, the vertex ids assigned to kInsertVertex ops (which the old
// ApplyBatch path silently dropped), and the wall time spent — and an
// optional per-op observer hook exposes individual update latencies for
// serving-style telemetry.

#ifndef DYNMIS_INCLUDE_DYNMIS_ENGINE_H_
#define DYNMIS_INCLUDE_DYNMIS_ENGINE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"
#include "dynmis/registry.h"
#include "dynmis/snapshot.h"
#include "src/graph/edge_list.h"

namespace dynmis {

// Outcome of one Apply / ApplyBatch call.
struct UpdateResult {
  // Number of graph updates applied.
  int64_t applied = 0;
  // Ids assigned to the call's kInsertVertex ops, in op order.
  std::vector<VertexId> new_vertices;
  // Wall time spent inside the maintainer for this call.
  double seconds = 0;
};

// Decoded "engine" section of a snapshot: the algorithm key and knobs the
// engine was saved with, plus its lifetime counters. One decoder
// (MisEngine::ReadEngineMeta) serves both LoadSnapshot and the CLI's
// `snapshot info`, so the field order lives in exactly two places —
// SaveSnapshot and ReadEngineMeta.
struct SnapshotEngineMeta {
  MaintainerConfig config;
  // Maintainer display name (DynamicMisMaintainer::Name) at save time.
  std::string display_name;
  int64_t updates_applied = 0;
  double update_seconds = 0;
};

// Point-in-time snapshot of the engine (see MisEngine::Stats).
struct EngineStats {
  // Display name of the maintainer (DynamicMisMaintainer::Name).
  std::string algorithm;
  int64_t solution_size = 0;
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  // Bytes held by the maintainer's own structures (graph excluded).
  size_t structure_memory_bytes = 0;
  // Bytes held by the owned graph.
  size_t graph_memory_bytes = 0;
  // Totals across all Apply/ApplyBatch/typed-op calls so far.
  int64_t updates_applied = 0;
  double update_seconds = 0;
};

class MisEngine {
 public:
  // Builds an engine over a copy of `base` with the maintainer named by
  // `config.algorithm`. Returns nullptr when the name is not registered.
  // The solution starts empty; call Initialize() before applying updates.
  static std::unique_ptr<MisEngine> Create(const EdgeListGraph& base,
                                           MaintainerConfig config = {});

  // Same, adopting an already-built graph.
  static std::unique_ptr<MisEngine> Create(DynamicGraph graph,
                                           MaintainerConfig config = {});

  // Builds the maintained solution from `initial` (must be an independent
  // set of the current graph; the default extends the empty set to a
  // maximal — for swap algorithms, k-maximal — solution).
  void Initialize(const std::vector<VertexId>& initial = {});

  // --- Updates --------------------------------------------------------------

  UpdateResult Apply(const GraphUpdate& update);

  // Applies the block as one transaction through the maintainer's batch
  // path (deferred swap restoration where supported) — observer or not.
  // An installed observer is invoked once for the whole block with
  // batch-latency semantics; callers that want per-op latencies apply ops
  // individually (the old behaviour silently downgraded every observed
  // batch to the per-op path, losing the deferred-settle optimization).
  UpdateResult ApplyBatch(const std::vector<GraphUpdate>& updates);

  // Typed conveniences over Apply().
  UpdateResult InsertEdge(VertexId u, VertexId v);
  UpdateResult DeleteEdge(VertexId u, VertexId v);
  // Returns the id of the inserted vertex.
  VertexId InsertVertex(const std::vector<VertexId>& neighbors);
  UpdateResult DeleteVertex(VertexId v);

  // --- Queries --------------------------------------------------------------

  bool InSolution(VertexId v) const { return maintainer_->InSolution(v); }
  int64_t SolutionSize() const { return maintainer_->SolutionSize(); }
  std::vector<VertexId> Solution() const { return maintainer_->Solution(); }
  // Appends the solution to `out` (not cleared) without building a fresh
  // vector; pair with a reused buffer when polling the solution frequently.
  void CollectSolution(std::vector<VertexId>* out) const {
    maintainer_->CollectSolution(out);
  }

  EngineStats Stats() const;

  // --- Snapshots ------------------------------------------------------------

  // Writes a versioned binary snapshot of the whole engine (graph topology,
  // maintainer state, configuration, lifetime counters) to `out`. Must be
  // called between updates. Restoring the snapshot is O(state) — it replays
  // nothing — which is what makes restart on a massive graph practical.
  // Format and compatibility policy: README "Snapshots".
  SnapshotStatus SaveSnapshot(std::ostream& out) const;

  // Appends the engine's sections to an open writer without serializing the
  // container, so composite producers (the serving layer's snapshot path)
  // can put engine state and their own sections — the external-key map —
  // into one container. SaveSnapshot is SaveTo + WriteTo.
  void SaveTo(SnapshotWriter* writer) const;

  // Rebuilds an engine from a snapshot stream: the maintainer is resolved
  // through MaintainerRegistry::Global() by the algorithm key stored in the
  // snapshot, the graph is restored verbatim (ids preserved), and the
  // maintainer's LoadState hook restores its swap structures. Returns
  // nullptr on any structural problem — bad magic, version mismatch,
  // truncation, CRC failure, unknown algorithm, invalid state — with the
  // reason in `*status` (when non-null). Never aborts or corrupts memory on
  // malformed input.
  static std::unique_ptr<MisEngine> LoadSnapshot(
      std::istream& in, SnapshotStatus* status = nullptr);

  // Decodes the "engine" section of an already-parsed snapshot (the
  // reader's cursor is repositioned). Returns false, failing the reader,
  // on malformed contents. LoadSnapshot and `dynmis_cli snapshot info`
  // both go through this.
  static bool ReadEngineMeta(SnapshotReader* r, SnapshotEngineMeta* meta);

  // The configuration the engine was created with (algorithm key as given,
  // before alias resolution). This is the key SaveSnapshot persists.
  const MaintainerConfig& config() const { return config_; }

  // Called once per Apply (applied = 1, update = the op) and once per
  // non-empty ApplyBatch (applied = block size, update = the block's first
  // op), with the wall time of the whole call.
  using UpdateObserver = std::function<void(
      const GraphUpdate& update, int64_t applied, double seconds)>;
  void SetUpdateObserver(UpdateObserver observer) {
    observer_ = std::move(observer);
  }

  // The owned graph / maintainer, for read-mostly interop (snapshots,
  // verification). Mutating the graph directly desynchronizes the solution;
  // route updates through the engine.
  const DynamicGraph& graph() const { return *graph_; }
  DynamicMisMaintainer& maintainer() { return *maintainer_; }
  const DynamicMisMaintainer& maintainer() const { return *maintainer_; }

 private:
  MisEngine(std::unique_ptr<DynamicGraph> graph,
            std::unique_ptr<DynamicMisMaintainer> maintainer,
            MaintainerConfig config)
      : graph_(std::move(graph)),
        maintainer_(std::move(maintainer)),
        config_(std::move(config)) {}

  // Heap-held so its address stays stable for the maintainer's pointer.
  std::unique_ptr<DynamicGraph> graph_;
  std::unique_ptr<DynamicMisMaintainer> maintainer_;
  MaintainerConfig config_;
  UpdateObserver observer_;
  int64_t updates_applied_ = 0;
  double update_seconds_ = 0;
};

}  // namespace dynmis

#endif  // DYNMIS_INCLUDE_DYNMIS_ENGINE_H_
