// Public workload surface: the ingest subsystem behind the massive-graph
// and temporal scenarios — SNAP-scale edge-list ingestion with memory-budget
// reporting (plus the deterministic power-law file generator CI uses instead
// of the network), the timing-wheel sliding-window stream driver, and the
// external-key map backing the KINS/KDEL/KQUERY serving verbs. Applications
// include this (or the dynmis/dynmis.h umbrella) instead of reaching into
// src/.

#ifndef DYNMIS_INCLUDE_DYNMIS_WORKLOAD_H_
#define DYNMIS_INCLUDE_DYNMIS_WORKLOAD_H_

#include "src/ingest/ingest.h"
#include "src/ingest/key_map.h"
#include "src/ingest/temporal.h"

#endif  // DYNMIS_INCLUDE_DYNMIS_WORKLOAD_H_
