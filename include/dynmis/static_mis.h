// Public static-solver surface: the solvers used for initial solutions and
// quality references (exact branch-and-reduce, ARW local search, min-degree
// greedy, and the kernelization reductions).

#ifndef DYNMIS_INCLUDE_DYNMIS_STATIC_MIS_H_
#define DYNMIS_INCLUDE_DYNMIS_STATIC_MIS_H_

#include "src/static_mis/arw.h"
#include "src/static_mis/exact.h"
#include "src/static_mis/greedy.h"
#include "src/static_mis/reductions.h"

#endif  // DYNMIS_INCLUDE_DYNMIS_STATIC_MIS_H_
