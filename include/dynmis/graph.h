// Public graph surface: the dynamic graph substrate, the edge-list
// interchange format with its SNAP loader, the synthetic generators and
// dataset registry, and update streams / trace files. Applications include
// this (or the dynmis/dynmis.h umbrella) instead of reaching into src/.

#ifndef DYNMIS_INCLUDE_DYNMIS_GRAPH_H_
#define DYNMIS_INCLUDE_DYNMIS_GRAPH_H_

#include "src/graph/datasets.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/edge_list.h"
#include "src/graph/edge_list_io.h"
#include "src/graph/generators.h"
#include "src/graph/static_graph.h"
#include "src/graph/update_stream.h"
#include "src/graph/update_trace_io.h"

#endif  // DYNMIS_INCLUDE_DYNMIS_GRAPH_H_
