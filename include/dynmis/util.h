// Public utility surface: timing, seeded randomness, and the table/number
// formatting helpers used by the examples and benchmark binaries.

#ifndef DYNMIS_INCLUDE_DYNMIS_UTIL_H_
#define DYNMIS_INCLUDE_DYNMIS_UTIL_H_

#include "src/util/random.h"
#include "src/util/table.h"
#include "src/util/timer.h"

#endif  // DYNMIS_INCLUDE_DYNMIS_UTIL_H_
