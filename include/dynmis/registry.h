// MaintainerRegistry: the string-keyed factory through which every dynamic
// MIS maintainer is constructed. Replaces the old closed AlgoKind enum (one
// switch in the harness, a second name table in the CLI): adding an
// algorithm is now a single Register() call — or the
// DYNMIS_REGISTER_MAINTAINER macro in the algorithm's own .cc file — and it
// immediately shows up in the harness, the CLI's --algo flag and
// `--algo help` listing, and the registry round-trip tests.
//
// Names come in two flavours:
//  * canonical algorithms ("DyOneSwap", "KSwap", ...): a factory that reads
//    its parameters from MaintainerConfig;
//  * aliases ("DyTwoSwap*", "KSwap3", ...): a canonical name plus a config
//    patch, so the paper's table spellings keep working everywhere strings
//    are accepted.
//
// The process-wide instance is MaintainerRegistry::Global(), pre-populated
// with the library's built-ins. Lookup misses return nullptr / false — the
// library does not throw (see src/util/check.h).

#ifndef DYNMIS_INCLUDE_DYNMIS_REGISTRY_H_
#define DYNMIS_INCLUDE_DYNMIS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"

namespace dynmis {

class MaintainerRegistry {
 public:
  // Builds a maintainer over `g` (which must outlive it). The config carries
  // all parameters; `config.algorithm` has already been resolved.
  using Factory = std::function<std::unique_ptr<DynamicMisMaintainer>(
      DynamicGraph* g, const MaintainerConfig& config)>;
  // Rewrites the config an alias resolves with (e.g. sets perturb or k).
  using ConfigPatch = std::function<void(MaintainerConfig*)>;

  // The process-wide registry, pre-populated with the built-in algorithms.
  static MaintainerRegistry& Global();

  // Registers a canonical algorithm. Returns false (and leaves the existing
  // entry) when the name is already taken.
  bool Register(const std::string& name, Factory factory,
                const std::string& description = "");

  // Registers `alias` to resolve to `canonical` with `patch` applied to the
  // caller's config first. Returns false if the alias name is taken or the
  // canonical name is unknown.
  bool RegisterAlias(const std::string& alias, const std::string& canonical,
                     ConfigPatch patch = nullptr,
                     const std::string& description = "");

  // Constructs the maintainer named by `config.algorithm` over `g`, or
  // returns nullptr when the name is not registered. MaintainerConfig
  // converts implicitly from a name string, so Create("DyTwoSwap*", &g)
  // works as-is.
  std::unique_ptr<DynamicMisMaintainer> Create(
      const MaintainerConfig& config, DynamicGraph* g) const;

  // True when `name` is a registered algorithm or alias.
  bool Has(const std::string& name) const;

  // Canonical algorithm names, sorted.
  std::vector<std::string> ListAlgorithms() const;

  // All accepted names (canonical + aliases), sorted.
  std::vector<std::string> ListNames() const;

  // One-line description of `name` (empty for unknown names). For aliases,
  // falls back to "alias for <canonical>" when no description was given.
  std::string Describe(const std::string& name) const;

 private:
  struct AlgorithmEntry {
    Factory factory;
    std::string description;
  };
  struct AliasEntry {
    std::string canonical;
    ConfigPatch patch;
    std::string description;
  };

  mutable std::mutex mutex_;
  std::map<std::string, AlgorithmEntry> algorithms_;
  std::map<std::string, AliasEntry> aliases_;
};

namespace internal {

// Static-initializer hook behind DYNMIS_REGISTER_MAINTAINER.
struct MaintainerRegistration {
  MaintainerRegistration(const char* name, MaintainerRegistry::Factory factory,
                         const char* description = "");
};

}  // namespace internal

#define DYNMIS_REGISTRY_CONCAT_INNER(a, b) a##b
#define DYNMIS_REGISTRY_CONCAT(a, b) DYNMIS_REGISTRY_CONCAT_INNER(a, b)

// Registers a maintainer with the global registry from a single translation
// unit:
//
//   DYNMIS_REGISTER_MAINTAINER("MyAlgo", "one-line description",
//       [](DynamicGraph* g, const MaintainerConfig& config) {
//         return std::make_unique<MyAlgo>(g, config);
//       });
#define DYNMIS_REGISTER_MAINTAINER(name, description, factory)      \
  static const ::dynmis::internal::MaintainerRegistration           \
      DYNMIS_REGISTRY_CONCAT(dynmis_maintainer_registration_,       \
                             __COUNTER__)(name, factory, description)

}  // namespace dynmis

#endif  // DYNMIS_INCLUDE_DYNMIS_REGISTRY_H_
