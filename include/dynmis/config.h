// MaintainerConfig: the unified configuration for every dynamic MIS
// maintainer in the library. One struct subsumes the old per-algorithm
// knobs (the former MaintainerOptions plus the enum-encoded variants):
// an algorithm is named by a registry string and parameterized here, so
// "DyOneSwap with lazy collection" is {"DyOneSwap", lazy=true} and the
// paper's k-swap ablation points are {"KSwap", k=1..4} instead of four
// enum values.
//
// The registry (dynmis/registry.h) resolves aliases such as "DyTwoSwap*"
// or "KSwap3" by patching the corresponding fields before construction,
// so string-only callers (CLI flags, config files) need no knowledge of
// this struct.

#ifndef DYNMIS_INCLUDE_DYNMIS_CONFIG_H_
#define DYNMIS_INCLUDE_DYNMIS_CONFIG_H_

#include <string>

namespace dynmis {

// Largest swap order the generic KSwap maintainer accepts (its exhaustive
// region search is capped, not the theory; see k_swap.h).
inline constexpr int kMaxKSwapOrder = 8;

struct MaintainerConfig {
  // Registry name of the algorithm (canonical or alias; see
  // MaintainerRegistry::ListAlgorithms).
  std::string algorithm = "DyTwoSwap";

  // Swap order for the generic "KSwap" maintainer, in
  // [1, kMaxKSwapOrder] (ignored by the specialized algorithms, which fix
  // k = 1 or 2).
  int k = 2;

  // Lazy collection (paper, Section III-B "Optimization Techniques" #1):
  // keep only count(v) per vertex and rebuild tightness sets by scanning
  // neighborhoods on demand. Cuts memory sharply; the time trade-off
  // depends on k (Fig 7).
  bool lazy = false;

  // Perturbation (paper, optimization #2): prefer swapping a solution
  // vertex with its smallest-degree eligible neighbour, since high-degree
  // vertices are unlikely to appear in a MaxIS. Reported as gap* columns.
  bool perturb = false;

  // Amortization interval for the "Recompute" baseline: rebuild the
  // solution from scratch after every `recompute_every`-th update.
  int recompute_every = 1;

  MaintainerConfig() = default;
  // Implicit by design: lets call sites pass a bare registry name wherever
  // a config is expected ({"DyOneSwap", "DyTwoSwap"} builds a config list).
  MaintainerConfig(std::string name) : algorithm(std::move(name)) {}
  MaintainerConfig(const char* name) : algorithm(name) {}
};

}  // namespace dynmis

#endif  // DYNMIS_INCLUDE_DYNMIS_CONFIG_H_
