// Umbrella header for the dynmis public API.
//
//   #include "dynmis/dynmis.h"
//
//   dynmis::EdgeListGraph base = ...;            // load or generate
//   auto engine = dynmis::MisEngine::Create(base, {"DyTwoSwap"});
//   engine->Initialize();                        // empty start -> k-maximal
//   engine->InsertEdge(u, v);
//   auto stats = engine->Stats();                // |I|, n, m, memory
//
// Algorithm names are resolved through dynmis::MaintainerRegistry::Global();
// see ListNames() for everything --algo-style strings accept.

#ifndef DYNMIS_INCLUDE_DYNMIS_DYNMIS_H_
#define DYNMIS_INCLUDE_DYNMIS_DYNMIS_H_

#include "dynmis/config.h"
#include "dynmis/engine.h"
#include "dynmis/graph.h"
#include "dynmis/maintainer.h"
#include "dynmis/registry.h"
#include "dynmis/serve.h"
#include "dynmis/sharded_engine.h"
#include "dynmis/snapshot.h"
#include "dynmis/static_mis.h"
#include "dynmis/util.h"

#endif  // DYNMIS_INCLUDE_DYNMIS_DYNMIS_H_
