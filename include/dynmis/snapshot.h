// Public snapshot surface: the versioned binary container (SnapshotWriter /
// SnapshotReader, CRC32, SnapshotStatus) behind MisEngine::SaveSnapshot /
// LoadSnapshot and the CLI's `snapshot` subcommands. Applications include
// this (or the dynmis/dynmis.h umbrella) instead of reaching into src/.

#ifndef DYNMIS_INCLUDE_DYNMIS_SNAPSHOT_H_
#define DYNMIS_INCLUDE_DYNMIS_SNAPSHOT_H_

#include "src/io/snapshot.h"

#endif  // DYNMIS_INCLUDE_DYNMIS_SNAPSHOT_H_
