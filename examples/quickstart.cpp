// Quickstart: build a small dynamic graph, maintain a (Delta/2 + 1)-
// approximate maximum independent set through a handful of updates, and
// print what happens at each step. The graph is the paper's running example
// (Fig 4), reconstructed from the text (paper's v1..v10 are 0..9 here).
//
// Everything goes through the public API: the engine owns the graph and the
// maintainer, and the algorithm is chosen by registry name.
//
//   $ ./quickstart

#include <cstdio>

#include "dynmis/dynmis.h"

namespace {

void PrintSolution(const char* when, const dynmis::MisEngine& engine) {
  std::printf("%-38s |I| = %lld  I = {", when,
              static_cast<long long>(engine.SolutionSize()));
  bool first = true;
  for (dynmis::VertexId v : engine.Solution()) {
    std::printf("%sv%d", first ? "" : ", ", v + 1);
    first = false;
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  // Fig 4(a): edges (1-indexed) 1-3, 2-3, 2-4, 4-5, 5-6, 6-8, 3-7, 7-9,
  // 9-10.
  dynmis::EdgeListGraph base;
  base.n = 10;
  const int edges[][2] = {{1, 3}, {2, 3}, {2, 4}, {4, 5}, {5, 6},
                          {6, 8}, {3, 7}, {7, 9}, {9, 10}};
  for (const auto& e : edges) base.edges.push_back({e[0] - 1, e[1] - 1});

  // Maintain a 2-maximal independent set (the paper's DyTwoSwap, k = 2),
  // starting from the paper's solution {v3, v4, v6, v9}. Initialize()
  // immediately applies the pending 2-swap {v3, v9} -> {v1, v7, v10}
  // (the paper's Example 3 swap).
  auto engine = dynmis::MisEngine::Create(base, {"DyTwoSwap"});
  engine->Initialize({2, 3, 5, 8});
  PrintSolution("initial 2-maximal solution:", *engine);

  // The paper's running update: insert edge (v3, v4).
  engine->InsertEdge(2, 3);
  PrintSolution("after inserting edge (v3,v4):", *engine);

  engine->DeleteEdge(4, 5);  // (v5, v6)
  PrintSolution("after deleting edge (v5,v6):", *engine);

  const dynmis::VertexId v = engine->InsertVertex({0, 8});
  std::printf("inserted v%d adjacent to {v1, v9}\n", v + 1);
  PrintSolution("after inserting a vertex:", *engine);

  engine->DeleteVertex(3);  // v4
  PrintSolution("after deleting vertex v4:", *engine);

  const dynmis::EngineStats stats = engine->Stats();
  std::printf(
      "\n%s processed %lld updates; the solution covers %lld of %lld "
      "vertices.\nEvery intermediate solution above is maximal, admits no "
      "1- or 2-swap, and is\ntherefore a (Delta/2 + 1)-approximate maximum "
      "independent set (Theorem 6).\n",
      stats.algorithm.c_str(), static_cast<long long>(stats.updates_applied),
      static_cast<long long>(stats.solution_size),
      static_cast<long long>(stats.num_vertices));
  return 0;
}
