// Collusion detection in online voting pools (one of the MaxIS applications
// cited by the paper, after Araujo et al.): vertices are voters, an edge
// connects two voters whose ballots are suspiciously correlated. A maximum
// independent set is a largest set of mutually "clean" voters - the
// trustworthy quorum. As new correlation evidence arrives (edge inserts)
// and stale evidence expires (edge deletes), the quorum is maintained
// dynamically instead of being recomputed per audit round.
//
//   $ ./collusion_detection

#include <cstdio>

#include "src/core/two_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/static_mis/exact.h"
#include "src/util/random.h"
#include "src/util/table.h"

int main() {
  using namespace dynmis;
  // 3000 voters; colluding rings show up as dense clusters: model the
  // evidence graph as an R-MAT graph (skewed, community-structured).
  Rng rng(99);
  const EdgeListGraph base = RMat(/*scale=*/12, /*m=*/12000, 0.45, 0.2, 0.2,
                                  &rng);
  DynamicGraph g = base.ToDynamic();
  std::printf("evidence graph: %d voters, %lld suspicious pairs\n",
              g.NumVertices(), static_cast<long long>(g.NumEdges()));

  DyTwoSwap quorum(&g);
  quorum.InitializeEmpty();
  std::printf("initial clean quorum: %lld voters\n",
              static_cast<long long>(quorum.SolutionSize()));

  // Audit stream: evidence arrives and expires; every 500 events we would
  // certify a new quorum, so we log the maintained size there.
  UpdateStreamOptions stream;
  stream.seed = 17;
  stream.edge_op_fraction = 1.0;  // Only evidence edges churn.
  stream.insert_fraction = 0.55;  // Slight accumulation of evidence.
  UpdateStreamGenerator gen(stream);

  TablePrinter table({"audit round", "events", "suspicious pairs",
                      "clean quorum", "quorum accuracy"});
  ExactMisOptions audit_budget;
  audit_budget.max_seconds = 5.0;  // Certification deadline per audit.
  for (int round = 1; round <= 8; ++round) {
    for (int i = 0; i < 500; ++i) quorum.Apply(gen.Next(g));
    // Spot-check against the exact optimum (affordable at audit cadence).
    const auto alpha = ExactAlpha(StaticGraph::FromDynamic(g), audit_budget);
    const double accuracy =
        alpha ? static_cast<double>(quorum.SolutionSize()) /
                    static_cast<double>(*alpha)
              : 0.0;
    table.AddRow({FormatCount(round), FormatCount(round * 500),
                  FormatCount(g.NumEdges()),
                  FormatCount(quorum.SolutionSize()),
                  alpha ? FormatPercent(accuracy) : "n/a"});
  }
  table.Print(stdout);
  std::printf(
      "\nThe maintained quorum stays within a whisker of the exact optimum "
      "at every audit\nround, without ever recomputing from scratch.\n");
  return 0;
}
