// Collusion detection in online voting pools (one of the MaxIS applications
// cited by the paper, after Araujo et al.): vertices are voters, an edge
// connects two voters whose ballots are suspiciously correlated. A maximum
// independent set is a largest set of mutually "clean" voters - the
// trustworthy quorum. As new correlation evidence arrives (edge inserts)
// and stale evidence expires (edge deletes), the quorum is maintained
// dynamically instead of being recomputed per audit round.
//
//   $ ./collusion_detection

#include <cstdio>

#include "dynmis/dynmis.h"

int main() {
  using namespace dynmis;
  // 3000 voters; colluding rings show up as dense clusters: model the
  // evidence graph as an R-MAT graph (skewed, community-structured).
  Rng rng(99);
  const EdgeListGraph base = RMat(/*scale=*/12, /*m=*/12000, 0.45, 0.2, 0.2,
                                  &rng);
  auto quorum = MisEngine::Create(base, {"DyTwoSwap"});
  std::printf("evidence graph: %lld voters, %lld suspicious pairs\n",
              static_cast<long long>(quorum->Stats().num_vertices),
              static_cast<long long>(quorum->Stats().num_edges));

  quorum->Initialize();
  std::printf("initial clean quorum: %lld voters\n",
              static_cast<long long>(quorum->SolutionSize()));

  // Audit stream: evidence arrives and expires; every 500 events we would
  // certify a new quorum, so we log the maintained size there.
  UpdateStreamOptions stream;
  stream.seed = 17;
  stream.edge_op_fraction = 1.0;  // Only evidence edges churn.
  stream.insert_fraction = 0.55;  // Slight accumulation of evidence.
  UpdateStreamGenerator gen(stream);

  TablePrinter table({"audit round", "events", "suspicious pairs",
                      "clean quorum", "quorum accuracy"});
  ExactMisOptions audit_budget;
  audit_budget.max_seconds = 5.0;  // Certification deadline per audit.
  for (int round = 1; round <= 8; ++round) {
    for (int i = 0; i < 500; ++i) quorum->Apply(gen.Next(quorum->graph()));
    // Spot-check against the exact optimum (affordable at audit cadence).
    const auto alpha =
        ExactAlpha(StaticGraph::FromDynamic(quorum->graph()), audit_budget);
    const double accuracy =
        alpha ? static_cast<double>(quorum->SolutionSize()) /
                    static_cast<double>(*alpha)
              : 0.0;
    table.AddRow({FormatCount(round), FormatCount(round * 500),
                  FormatCount(quorum->Stats().num_edges),
                  FormatCount(quorum->SolutionSize()),
                  alpha ? FormatPercent(accuracy) : "n/a"});
  }
  table.Print(stdout);
  std::printf(
      "\nThe maintained quorum stays within a whisker of the exact optimum "
      "at every audit\nround, without ever recomputing from scratch.\n");
  return 0;
}
