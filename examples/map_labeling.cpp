// Automated map labeling (another application from the paper's intro,
// after Gemsa et al.): each point of interest has a candidate label;
// labels whose boxes overlap conflict, and the labels actually drawn must
// form an independent set of the conflict graph - the more, the better.
// As the user pans and zooms, POIs enter and leave the viewport and
// conflicts change: a dynamic MaxIS keeps the label set near-maximum
// without re-solving per frame. The conflict graph lives inside a
// MisEngine, which starts empty and grows/shrinks vertex-by-vertex.
//
//   $ ./map_labeling

#include <cmath>
#include <cstdio>
#include <vector>

#include "dynmis/dynmis.h"

namespace {

struct Poi {
  double x, y;
  dynmis::VertexId vertex = dynmis::kInvalidVertex;  // Invalid = off-screen.
};

constexpr double kLabelW = 0.06;
constexpr double kLabelH = 0.03;

bool Conflicts(const Poi& a, const Poi& b) {
  return std::abs(a.x - b.x) < kLabelW && std::abs(a.y - b.y) < kLabelH;
}

}  // namespace

int main() {
  using namespace dynmis;
  Rng rng(314);
  // 4000 POIs on the unit square.
  std::vector<Poi> pois(4000);
  for (Poi& p : pois) {
    p.x = rng.NextDouble();
    p.y = rng.NextDouble();
  }

  auto labels = MisEngine::Create(EdgeListGraph{}, {"DyOneSwap"});
  labels->Initialize();

  // A viewport sliding left-to-right across the map.
  TablePrinter table({"viewport", "visible POIs", "conflicts",
                      "labels drawn", "label rate"});
  double window_left = 0.0;
  const double window_width = 0.35;
  for (int frame = 0; frame <= 6; ++frame, window_left += 0.1) {
    const double window_right = window_left + window_width;
    // POIs leaving the viewport.
    for (size_t i = 0; i < pois.size(); ++i) {
      Poi& p = pois[i];
      const bool visible = p.x >= window_left && p.x <= window_right;
      if (!visible && p.vertex != kInvalidVertex) {
        labels->DeleteVertex(p.vertex);
        p.vertex = kInvalidVertex;
      }
    }
    // POIs entering the viewport, with their conflict edges.
    for (size_t i = 0; i < pois.size(); ++i) {
      Poi& p = pois[i];
      const bool visible = p.x >= window_left && p.x <= window_right;
      if (visible && p.vertex == kInvalidVertex) {
        std::vector<VertexId> conflicts;
        for (const Poi& q : pois) {
          if (q.vertex != kInvalidVertex && Conflicts(p, q)) {
            conflicts.push_back(q.vertex);
          }
        }
        p.vertex = labels->InsertVertex(conflicts);
      }
    }
    char window[64];
    std::snprintf(window, sizeof(window), "[%.2f, %.2f]", window_left,
                  window_right);
    const EngineStats stats = labels->Stats();
    const double rate = stats.num_vertices == 0
                            ? 1.0
                            : static_cast<double>(stats.solution_size) /
                                  static_cast<double>(stats.num_vertices);
    table.AddRow({window, FormatCount(stats.num_vertices),
                  FormatCount(stats.num_edges),
                  FormatCount(stats.solution_size), FormatPercent(rate)});
  }
  table.Print(stdout);
  std::printf(
      "\nEach pan step touches only the POIs crossing the viewport edge; "
      "the label set stays\n1-maximal (no single swap can add two labels) "
      "throughout.\n");
  return 0;
}
