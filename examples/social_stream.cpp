// Social-network stream: the motivating scenario of the paper's
// introduction. A power-law "social network" receives a hot-topic burst of
// updates comparable in size to the whole network (friendships added and
// removed, users joining and leaving). We maintain an approximate MaxIS -
// e.g. a maximum set of mutually non-interacting users for unbiased
// sampling / influence seeding - with DyOneSwap and DyTwoSwap, and compare
// against recomputing from scratch at intervals.
//
//   $ ./social_stream [n] [updates]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/baselines/recompute.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/table.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace dynmis;
  const int n = argc > 1 ? std::atoi(argv[1]) : 20000;
  const int updates = argc > 2 ? std::atoi(argv[2]) : n;  // Burst ~ network.

  Rng rng(2022);
  const EdgeListGraph base = ChungLuPowerLaw(n, 2.3, 10.0, &rng);
  std::printf("social network: n=%d m=%lld (power-law, beta=2.3)\n", base.n,
              static_cast<long long>(base.NumEdges()));
  std::printf("hot-topic burst: %d updates (~ the size of the network)\n\n",
              updates);

  UpdateStreamOptions stream;
  stream.seed = 5;
  stream.edge_op_fraction = 0.85;  // Mostly friendship churn, some users.
  const std::vector<GraphUpdate> burst =
      MakeUpdateSequence(base.ToDynamic(), updates, stream);

  TablePrinter table(
      {"maintainer", "final |I|", "total time", "per update", "memory"});

  auto run = [&](auto&& make_algo) {
    DynamicGraph g = base.ToDynamic();
    auto algo = make_algo(&g);
    algo->Initialize({});
    Timer timer;
    for (const GraphUpdate& update : burst) algo->Apply(update);
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({algo->Name(), FormatCount(algo->SolutionSize()),
                  FormatDouble(seconds, 3) + "s",
                  FormatDouble(seconds / updates * 1e6, 2) + "us",
                  FormatBytes(algo->MemoryUsageBytes())});
  };

  run([](DynamicGraph* g) { return std::make_unique<DyOneSwap>(g); });
  run([](DynamicGraph* g) { return std::make_unique<DyTwoSwap>(g); });
  // Recompute-from-scratch once per 100 updates: still far slower in total
  // and its solution is stale between recomputes.
  run([](DynamicGraph* g) {
    return std::make_unique<RecomputeGreedy>(g, /*every=*/100);
  });

  table.Print(stdout);
  std::printf(
      "\nDy* keep a guaranteed (Delta/2+1)-approximation continuously at "
      "microseconds per update;\nrecomputation is orders of magnitude more "
      "expensive even when amortized 100x, and is\nunboundedly stale "
      "in-between.\n");
  return 0;
}
