// Social-network stream: the motivating scenario of the paper's
// introduction. A power-law "social network" receives a hot-topic burst of
// updates comparable in size to the whole network (friendships added and
// removed, users joining and leaving). We maintain an approximate MaxIS -
// e.g. a maximum set of mutually non-interacting users for unbiased
// sampling / influence seeding - with DyOneSwap and DyTwoSwap, and compare
// against recomputing from scratch at intervals. Each contender is a
// MisEngine built from its registry name.
//
//   $ ./social_stream [n] [updates]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dynmis/dynmis.h"

int main(int argc, char** argv) {
  using namespace dynmis;
  const int n = argc > 1 ? std::atoi(argv[1]) : 20000;
  const int updates = argc > 2 ? std::atoi(argv[2]) : n;  // Burst ~ network.

  Rng rng(2022);
  const EdgeListGraph base = ChungLuPowerLaw(n, 2.3, 10.0, &rng);
  std::printf("social network: n=%d m=%lld (power-law, beta=2.3)\n", base.n,
              static_cast<long long>(base.NumEdges()));
  std::printf("hot-topic burst: %d updates (~ the size of the network)\n\n",
              updates);

  UpdateStreamOptions stream;
  stream.seed = 5;
  stream.edge_op_fraction = 0.85;  // Mostly friendship churn, some users.
  const std::vector<GraphUpdate> burst =
      MakeUpdateSequence(base.ToDynamic(), updates, stream);

  TablePrinter table(
      {"maintainer", "final |I|", "total time", "per update", "memory"});

  auto run = [&](const MaintainerConfig& config) {
    auto engine = MisEngine::Create(base, config);
    engine->Initialize();
    Timer timer;
    for (const GraphUpdate& update : burst) engine->Apply(update);
    const double seconds = timer.ElapsedSeconds();
    const EngineStats stats = engine->Stats();
    table.AddRow({stats.algorithm, FormatCount(stats.solution_size),
                  FormatDouble(seconds, 3) + "s",
                  FormatDouble(seconds / updates * 1e6, 2) + "us",
                  FormatBytes(stats.structure_memory_bytes)});
  };

  run({"DyOneSwap"});
  run({"DyTwoSwap"});
  // Recompute-from-scratch once per 100 updates: still far slower in total
  // and its solution is stale between recomputes.
  MaintainerConfig recompute("Recompute");
  recompute.recompute_every = 100;
  run(recompute);

  table.Print(stdout);
  std::printf(
      "\nDy* keep a guaranteed (Delta/2+1)-approximation continuously at "
      "microseconds per update;\nrecomputation is orders of magnitude more "
      "expensive even when amortized 100x, and is\nunboundedly stale "
      "in-between.\n");
  return 0;
}
