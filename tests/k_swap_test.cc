// KSwapMaintainer: the generic Algorithm-1 framework. Tests assert exact
// k-maximality (brute force) for k in {1, 2, 3} on small graphs after
// every update, basic invariants for k = 4, and the Fig 9 quality trend
// (larger k never hurts solution size on average).

#include "src/core/k_swap.h"

#include <vector>

#include "gtest/gtest.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::HasSwapUpTo;
using testing_util::IsIndependentSet;
using testing_util::IsMaximalIndependentSet;

TEST(KSwapTest, KOneMatchesOneSwapSemantics) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const EdgeListGraph base = ErdosRenyiGnm(24, 40, &rng);
    DynamicGraph g = base.ToDynamic();
    KSwapMaintainer algo(&g, 1);
    algo.InitializeEmpty();
    EXPECT_FALSE(HasSwapUpTo(g, algo.Solution(), 1)) << "seed " << seed;
    algo.CheckConsistency();
  }
}

TEST(KSwapTest, KTwoMatchesTwoSwapSemantics) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 3);
    const EdgeListGraph base = ErdosRenyiGnm(18, 36, &rng);
    DynamicGraph g = base.ToDynamic();
    KSwapMaintainer algo(&g, 2);
    algo.InitializeEmpty();
    EXPECT_FALSE(HasSwapUpTo(g, algo.Solution(), 2)) << "seed " << seed;
    algo.CheckConsistency();
  }
}

struct SweepParam {
  int k;
  int n;
  double density;
  uint64_t seed;
};

class KSwapPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KSwapPropertyTest, KMaximalAfterEveryUpdate) {
  const SweepParam param = GetParam();
  Rng rng(SplitMix64(param.seed ^ 0x5eed));
  const EdgeListGraph base = ErdosRenyiGnm(
      param.n, static_cast<int64_t>(param.n * param.density), &rng);
  DynamicGraph g = base.ToDynamic();
  KSwapMaintainer algo(&g, param.k);
  algo.InitializeEmpty();
  ASSERT_FALSE(HasSwapUpTo(g, algo.Solution(), param.k)) << "after init";

  UpdateStreamOptions stream;
  stream.seed = param.seed * 17 + 3;
  UpdateStreamGenerator gen(stream);
  const int steps = param.k >= 3 ? 80 : 140;
  for (int step = 0; step < steps; ++step) {
    const GraphUpdate update = gen.Next(g);
    algo.Apply(update);
    algo.CheckConsistency();
    const std::vector<VertexId> solution = algo.Solution();
    ASSERT_TRUE(IsMaximalIndependentSet(g, solution)) << "step " << step;
    ASSERT_FALSE(HasSwapUpTo(g, solution, param.k))
        << "j-swap (j<=" << param.k << ") exists after step " << step << " ("
        << update.DebugString() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KSwapPropertyTest,
    ::testing::Values(SweepParam{1, 20, 1.5, 1}, SweepParam{1, 30, 2.0, 2},
                      SweepParam{2, 14, 1.2, 3}, SweepParam{2, 18, 1.8, 4},
                      SweepParam{3, 12, 1.0, 5}, SweepParam{3, 14, 1.5, 6},
                      SweepParam{3, 10, 2.0, 7}));

TEST(KSwapTest, KFourKeepsBasicInvariants) {
  Rng rng(77);
  const EdgeListGraph base = ErdosRenyiGnm(16, 28, &rng);
  DynamicGraph g = base.ToDynamic();
  KSwapMaintainer algo(&g, 4);
  algo.InitializeEmpty();
  UpdateStreamOptions stream;
  stream.seed = 909;
  UpdateStreamGenerator gen(stream);
  for (int step = 0; step < 80; ++step) {
    algo.Apply(gen.Next(g));
    algo.CheckConsistency();
    ASSERT_TRUE(IsMaximalIndependentSet(g, algo.Solution()));
  }
}

// Fig 9 trend: on average over seeds, solution size is non-decreasing in k.
TEST(KSwapTest, QualityImprovesWithK) {
  int64_t totals[4] = {0, 0, 0, 0};
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 101);
    const EdgeListGraph base = ErdosRenyiGnm(60, 140, &rng);
    UpdateStreamOptions stream;
    stream.seed = seed;
    const std::vector<GraphUpdate> updates =
        MakeUpdateSequence(base.ToDynamic(), 100, stream);
    for (int k = 1; k <= 4; ++k) {
      DynamicGraph g = base.ToDynamic();
      KSwapMaintainer algo(&g, k);
      algo.InitializeEmpty();
      for (const GraphUpdate& update : updates) algo.Apply(update);
      totals[k - 1] += algo.SolutionSize();
    }
  }
  EXPECT_GE(totals[1], totals[0]);
  EXPECT_GE(totals[2], totals[1] - 1);  // Allow tiny search-order noise.
  EXPECT_GE(totals[3], totals[1] - 1);
}

// Cross-implementation agreement: KSwap(2) and DyTwoSwap both maintain
// 2-maximal sets over the same stream (sizes may differ slightly because
// tie-breaking differs, but both pass the definitional check).
TEST(KSwapTest, AgreesWithSpecializedImplementations) {
  Rng rng(55);
  const EdgeListGraph base = ErdosRenyiGnm(20, 40, &rng);
  UpdateStreamOptions stream;
  stream.seed = 5555;
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(base.ToDynamic(), 120, stream);

  DynamicGraph ga = base.ToDynamic();
  DynamicGraph gb = base.ToDynamic();
  KSwapMaintainer generic(&ga, 2);
  DyTwoSwap specialized(&gb);
  generic.InitializeEmpty();
  specialized.InitializeEmpty();
  for (const GraphUpdate& update : updates) {
    generic.Apply(update);
    specialized.Apply(update);
    ASSERT_FALSE(HasSwapUpTo(ga, generic.Solution(), 2));
    ASSERT_FALSE(HasSwapUpTo(gb, specialized.Solution(), 2));
  }
}

}  // namespace
}  // namespace dynmis
