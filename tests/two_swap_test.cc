// DyTwoSwap correctness: unit tests for Algorithm 3's update cases and
// property sweeps asserting 2-maximality (no 1-swap and no 2-swap, brute
// forced) after every update, in eager and lazy modes.

#include "src/core/two_swap.h"

#include <vector>

#include "gtest/gtest.h"
#include "src/core/one_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::HasSwapUpTo;
using testing_util::IsIndependentSet;
using testing_util::IsMaximalIndependentSet;

TEST(DyTwoSwapTest, EmptyGraph) {
  DynamicGraph g(0);
  DyTwoSwap algo(&g);
  algo.InitializeEmpty();
  EXPECT_EQ(algo.SolutionSize(), 0);
}

TEST(DyTwoSwapTest, InitializeFindsTwoSwap) {
  // C5 with a chord pattern where a 2-maximal set is strictly larger than a
  // bad maximal one: take K'_3 (triangle with each edge subdivided): the
  // original triangle vertices {0,1,2} are 1-maximal (subdivision vertices
  // 3,4,5 are 2-tight, each pair shares one), but {3,4,5} is the optimum.
  DynamicGraph g = SubdivideEdges(CompleteGraph(3)).ToDynamic();
  DyTwoSwap algo(&g);
  algo.Initialize({0, 1, 2});
  // A 2-maximal solution of K'_3 has size 3 and no 2-swap.
  EXPECT_FALSE(HasSwapUpTo(g, algo.Solution(), 2));
  algo.CheckConsistency();
}

TEST(DyTwoSwapTest, OneMaximalButNotTwoMaximalGetsFixed) {
  // Two solution vertices x=0, y=1; three mutually non-adjacent vertices
  // 2, 3, 4 where 2 sees only x, 3 sees only y, 4 sees both. The 1-maximal
  // set {0, 1} admits the 2-swap -> {2, 3, 4}.
  DynamicGraph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(0, 4);
  g.AddEdge(1, 4);
  DyTwoSwap algo(&g);
  algo.Initialize({0, 1});
  EXPECT_EQ(algo.SolutionSize(), 3);
  EXPECT_TRUE(algo.InSolution(4));
  algo.CheckConsistency();
}

TEST(DyTwoSwapTest, EdgeDeletionCaseB) {
  // Owners x=0, y=1. u=2 (tight on x), v=3 (tight on y), w=4 (2-tight on
  // both). Initially u-v edge forces 1-maximality; deleting it enables the
  // 2-swap {x,y} -> {u,v,w} (case ii.b of Algorithm 3).
  DynamicGraph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(0, 4);
  g.AddEdge(1, 4);
  g.AddEdge(2, 3);  // The edge to delete.
  // Make u and v not form a 1-swap with w: w adjacent to both owners only.
  DyTwoSwap algo(&g);
  algo.Initialize({0, 1});
  ASSERT_EQ(algo.SolutionSize(), 2);
  algo.DeleteEdge(2, 3);
  EXPECT_EQ(algo.SolutionSize(), 3);
  EXPECT_FALSE(HasSwapUpTo(g, algo.Solution(), 2));
  algo.CheckConsistency();
}

TEST(DyTwoSwapTest, MatchesOneSwapQualityFloor) {
  // On any graph, a 2-maximal solution is at least as large as some
  // 1-maximal one locally; sanity-check sizes on random inputs.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const EdgeListGraph base = ErdosRenyiGnm(40, 80, &rng);
    DynamicGraph g1 = base.ToDynamic();
    DynamicGraph g2 = base.ToDynamic();
    DyOneSwap one(&g1);
    DyTwoSwap two(&g2);
    one.InitializeEmpty();
    two.InitializeEmpty();
    EXPECT_FALSE(HasSwapUpTo(g2, two.Solution(), 2)) << "seed " << seed;
  }
}

struct SweepParam {
  int n;
  double density;
  double edge_op_fraction;
  uint64_t seed;
};

class DyTwoSwapPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DyTwoSwapPropertyTest, TwoMaximalAfterEveryUpdate) {
  const SweepParam param = GetParam();
  Rng rng(SplitMix64(param.seed ^ 0xabcdef));
  const EdgeListGraph base = ErdosRenyiGnm(
      param.n, static_cast<int64_t>(param.n * param.density), &rng);
  for (const bool lazy : {false, true}) {
    DynamicGraph g = base.ToDynamic();
    MaintainerConfig options;
    options.lazy = lazy;
    DyTwoSwap algo(&g, options);
    algo.InitializeEmpty();
    ASSERT_FALSE(HasSwapUpTo(g, algo.Solution(), 2)) << "after init";

    UpdateStreamOptions stream;
    stream.seed = param.seed * 131 + 13;
    stream.edge_op_fraction = param.edge_op_fraction;
    UpdateStreamGenerator gen(stream);
    for (int step = 0; step < 160; ++step) {
      const GraphUpdate update = gen.Next(g);
      algo.Apply(update);
      algo.CheckConsistency();
      const std::vector<VertexId> solution = algo.Solution();
      ASSERT_TRUE(IsIndependentSet(g, solution)) << "step " << step;
      ASSERT_TRUE(IsMaximalIndependentSet(g, solution)) << "step " << step;
      ASSERT_FALSE(HasSwapUpTo(g, solution, 2))
          << "j-swap (j<=2) exists after step " << step << " ("
          << update.DebugString() << "), lazy=" << lazy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DyTwoSwapPropertyTest,
    ::testing::Values(SweepParam{10, 1.0, 0.9, 1}, SweepParam{16, 1.5, 0.9, 2},
                      SweepParam{16, 0.6, 0.5, 3}, SweepParam{22, 2.0, 0.8, 4},
                      SweepParam{22, 2.8, 0.95, 5}, SweepParam{8, 1.5, 0.7, 6},
                      SweepParam{26, 1.2, 0.6, 7},
                      SweepParam{18, 2.2, 1.0, 8}));

TEST(DyTwoSwapTest, PerturbationKeepsInvariants) {
  Rng rng(7);
  const EdgeListGraph base = ErdosRenyiGnm(20, 40, &rng);
  DynamicGraph g = base.ToDynamic();
  MaintainerConfig options;
  options.perturb = true;
  DyTwoSwap algo(&g, options);
  algo.InitializeEmpty();
  UpdateStreamOptions stream;
  stream.seed = 4321;
  UpdateStreamGenerator gen(stream);
  for (int step = 0; step < 150; ++step) {
    algo.Apply(gen.Next(g));
    algo.CheckConsistency();
    ASSERT_FALSE(HasSwapUpTo(g, algo.Solution(), 2));
  }
}

// DyTwoSwap must never maintain a smaller solution than DyOneSwap when both
// process the same stream from the same initial solution - not a theorem,
// but the consistent experimental finding of the paper; we check it as a
// statistical property over seeds with a small tolerance.
TEST(DyTwoSwapTest, TracksOrBeatsOneSwapOnAverage) {
  int64_t total_one = 0;
  int64_t total_two = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 997);
    const EdgeListGraph base = ErdosRenyiGnm(60, 150, &rng);
    DynamicGraph g1 = base.ToDynamic();
    DynamicGraph g2 = base.ToDynamic();
    DyOneSwap one(&g1);
    DyTwoSwap two(&g2);
    one.InitializeEmpty();
    two.InitializeEmpty();
    UpdateStreamOptions stream;
    stream.seed = seed;
    const std::vector<GraphUpdate> updates =
        MakeUpdateSequence(base.ToDynamic(), 120, stream);
    for (const GraphUpdate& update : updates) {
      one.Apply(update);
      two.Apply(update);
    }
    total_one += one.SolutionSize();
    total_two += two.SolutionSize();
  }
  EXPECT_GE(total_two, total_one);
}

}  // namespace
}  // namespace dynmis
