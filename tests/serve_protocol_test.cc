// Unit tests for the serving layer's wire protocol: line framing
// (partial reads, CRLF, the sticky overflow cap), strict command parsing
// (every verb, malformed numbers, arity errors, trailing garbage), and the
// length-prefixed binary codec (round-trips of every opcode, truncated and
// oversized length prefixes, garbage opcodes, the text-to-binary handoff).
// The server's handshake policy over a real socket is covered by
// serve_e2e_test.cc; here the codecs are exercised in isolation.

#include "src/serve/protocol.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/serve/binary.h"

namespace dynmis {
namespace serve {
namespace {

Command MustParse(const std::string& line) {
  Command cmd;
  std::string error;
  EXPECT_TRUE(ParseCommand(line, &cmd, &error)) << line << ": " << error;
  return cmd;
}

std::string MustFail(const std::string& line) {
  Command cmd;
  std::string error;
  EXPECT_FALSE(ParseCommand(line, &cmd, &error)) << line;
  EXPECT_FALSE(error.empty()) << line;
  return error;
}

TEST(ProtocolParseTest, Hello) {
  const Command cmd = MustParse("HELLO 1");
  EXPECT_EQ(cmd.verb, Verb::kHello);
  EXPECT_EQ(cmd.version, 1);
  EXPECT_EQ(MustParse("HELLO 7").version, 7);
  MustFail("HELLO");
  MustFail("HELLO 0");
  MustFail("HELLO -1");
  MustFail("HELLO one");
  MustFail("HELLO 1 extra");
  // 2^32 + 1 must not truncate into an accepted version 1.
  MustFail("HELLO 4294967297");
}

TEST(ProtocolParseTest, EdgeUpdates) {
  const Command ins = MustParse("INS 3 17");
  EXPECT_EQ(ins.verb, Verb::kIns);
  EXPECT_EQ(ins.update.kind, UpdateKind::kInsertEdge);
  EXPECT_EQ(ins.update.u, 3);
  EXPECT_EQ(ins.update.v, 17);
  const Command del = MustParse("DEL 0 1");
  EXPECT_EQ(del.verb, Verb::kDel);
  EXPECT_EQ(del.update.kind, UpdateKind::kDeleteEdge);
  MustFail("INS 3");
  MustFail("INS 3 4 5");
  MustFail("INS -1 4");
  MustFail("INS 3 4x");
  MustFail("DEL a b");
  // Ids above the VertexId range are rejected, not truncated.
  MustFail("INS 3 4294967296");
}

TEST(ProtocolParseTest, VertexUpdates) {
  const Command insv = MustParse("INSV 1 5 9");
  EXPECT_EQ(insv.verb, Verb::kInsV);
  EXPECT_EQ(insv.update.kind, UpdateKind::kInsertVertex);
  EXPECT_EQ(insv.update.neighbors, (std::vector<VertexId>{1, 5, 9}));
  // An isolated vertex has no neighbor list.
  EXPECT_TRUE(MustParse("INSV").update.neighbors.empty());
  const Command delv = MustParse("DELV 12");
  EXPECT_EQ(delv.verb, Verb::kDelV);
  EXPECT_EQ(delv.update.u, 12);
  MustFail("INSV 1 -5");
  MustFail("DELV");
  MustFail("DELV 1 2");
}

TEST(ProtocolParseTest, QueriesAndControl) {
  EXPECT_EQ(MustParse("QUERY 4").vertex, 4);
  EXPECT_EQ(MustParse("SOLUTION").verb, Verb::kSolution);
  EXPECT_EQ(MustParse("STATS").verb, Verb::kStats);
  EXPECT_EQ(MustParse("VERIFY").verb, Verb::kVerify);
  EXPECT_EQ(MustParse("END").verb, Verb::kEnd);
  EXPECT_EQ(MustParse("QUIT").verb, Verb::kQuit);
  MustFail("QUERY");
  MustFail("SOLUTION now");
  MustFail("STATS x");
  MustFail("QUIT 1");
}

TEST(ProtocolParseTest, PathsAndBatch) {
  EXPECT_EQ(MustParse("SNAPSHOT /tmp/a.snap").path, "/tmp/a.snap");
  EXPECT_EQ(MustParse("TRACE out.txt").path, "out.txt");
  MustFail("SNAPSHOT");
  const Command batch = MustParse("BATCH 64");
  EXPECT_EQ(batch.verb, Verb::kBatch);
  EXPECT_EQ(batch.count, 64);
  MustFail("BATCH");
  MustFail("BATCH 0");
  MustFail("BATCH -3");
  MustFail("BATCH 9999999999");
}

TEST(ProtocolParseTest, Reshard) {
  const Command bare = MustParse("RESHARD 4");
  EXPECT_EQ(bare.verb, Verb::kReshard);
  EXPECT_EQ(bare.count, 4);
  EXPECT_TRUE(bare.path.empty());  // Keep the server's current plan.
  for (const char* plan : {"hash", "range", "locality"}) {
    const Command cmd = MustParse(std::string("RESHARD 2 ") + plan);
    EXPECT_EQ(cmd.verb, Verb::kReshard);
    EXPECT_EQ(cmd.count, 2);
    EXPECT_EQ(cmd.path, plan);
  }
  MustFail("RESHARD");
  MustFail("RESHARD 0");
  MustFail("RESHARD 1025");
  MustFail("RESHARD 4 roundrobin");
  MustFail("RESHARD 4 HASH");  // Plan names are case-sensitive.
  MustFail("RESHARD 4 locality extra");
}

TEST(ProtocolParseTest, UnknownAndEmpty) {
  MustFail("");
  MustFail("   ");
  MustFail("FROB 1 2");
  MustFail("ins 1 2");  // Verbs are case-sensitive.
}

TEST(ProtocolParseTest, WhitespaceTolerance) {
  const Command cmd = MustParse("  INS   3\t17  ");
  EXPECT_EQ(cmd.update.u, 3);
  EXPECT_EQ(cmd.update.v, 17);
}

TEST(ProtocolParseTest, UpdateVerbClassification) {
  EXPECT_TRUE(IsUpdateVerb(Verb::kIns));
  EXPECT_TRUE(IsUpdateVerb(Verb::kDel));
  EXPECT_TRUE(IsUpdateVerb(Verb::kInsV));
  EXPECT_TRUE(IsUpdateVerb(Verb::kDelV));
  EXPECT_FALSE(IsUpdateVerb(Verb::kQuery));
  EXPECT_FALSE(IsUpdateVerb(Verb::kBatch));
  EXPECT_FALSE(IsUpdateVerb(Verb::kEnd));
}

TEST(LineBufferTest, SplitsCompleteLines) {
  LineBuffer buffer(64);
  const std::string data = "INS 1 2\nDEL 3 4\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "INS 1 2");
  EXPECT_EQ(buffer.NextLine(), "DEL 3 4");
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
}

TEST(LineBufferTest, ReassemblesPartialReads) {
  LineBuffer buffer(64);
  // One command delivered a byte at a time, as TCP is free to do.
  const std::string data = "QUERY 42\n";
  for (const char c : data) {
    EXPECT_EQ(buffer.NextLine(), std::nullopt);
    buffer.Append(&c, 1);
  }
  EXPECT_EQ(buffer.NextLine(), "QUERY 42");
}

TEST(LineBufferTest, StripsCarriageReturn) {
  LineBuffer buffer(64);
  const std::string data = "STATS\r\nQUIT\r\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "STATS");
  EXPECT_EQ(buffer.NextLine(), "QUIT");
}

TEST(LineBufferTest, EmptyLines) {
  LineBuffer buffer(64);
  const std::string data = "\n\nQUIT\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "");
  EXPECT_EQ(buffer.NextLine(), "");
  EXPECT_EQ(buffer.NextLine(), "QUIT");
}

TEST(LineBufferTest, OverflowIsSticky) {
  LineBuffer buffer(8);
  const std::string data(9, 'x');  // No newline, beyond the cap.
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
  EXPECT_TRUE(buffer.overflowed());
  // Even a newline afterwards yields nothing: the connection is done.
  const std::string more = "\nQUIT\n";
  buffer.Append(more.data(), more.size());
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
  EXPECT_TRUE(buffer.overflowed());
}

TEST(LineBufferTest, OverflowAppliesToCompleteLinesToo) {
  LineBuffer buffer(4);
  const std::string data = "TOOLONGLINE\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
  EXPECT_TRUE(buffer.overflowed());
}

TEST(LineBufferTest, LineAtExactlyTheCapPasses) {
  LineBuffer buffer(4);
  const std::string data = "QUIT\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "QUIT");
  EXPECT_FALSE(buffer.overflowed());
}

TEST(LineBufferTest, CompactionKeepsPendingBytes) {
  LineBuffer buffer(1 << 16);
  // Enough traffic to trigger the internal compaction threshold.
  for (int i = 0; i < 1000; ++i) {
    const std::string line = "INS " + std::to_string(i) + " 99999\n";
    buffer.Append(line.data(), line.size());
    ASSERT_EQ(buffer.NextLine(), line.substr(0, line.size() - 1));
  }
  const std::string partial = "QUERY 1";
  buffer.Append(partial.data(), partial.size());
  EXPECT_EQ(buffer.pending_bytes(), partial.size());
  buffer.Append("\n", 1);
  EXPECT_EQ(buffer.NextLine(), "QUERY 1");
}

// --- Binary codec -----------------------------------------------------------

// Feeds `wire` through the frame buffer and decodes every request frame,
// returning the flattened command sequence. Fails the test on any decode
// error.
std::vector<Command> DecodeAll(const std::string& wire) {
  BinaryFrameBuffer frames(1 << 16);
  frames.Append(wire.data(), wire.size());
  EXPECT_FALSE(frames.overflowed());
  std::vector<Command> out;
  while (auto frame = frames.NextFrame()) {
    RequestFrameDecoder decoder;
    std::string error;
    if (!decoder.Begin(*frame, &error)) {
      ADD_FAILURE() << "Begin: " << error;
      return out;
    }
    Command cmd;
    for (;;) {
      const auto step = decoder.Next(&cmd, &error);
      if (step == RequestFrameDecoder::Step::kDone) break;
      if (step != RequestFrameDecoder::Step::kCommand) {
        ADD_FAILURE() << "Next: " << error;
        return out;
      }
      out.push_back(cmd);
    }
  }
  return out;
}

// Expects decoding `payload` (one frame's code byte + body) to fail, either
// at Begin or partway through Next, and returns the error.
std::string MustFailFrame(const std::string& payload) {
  RequestFrameDecoder decoder;
  std::string error;
  if (!decoder.Begin(payload, &error)) {
    EXPECT_FALSE(error.empty());
    return error;
  }
  Command cmd;
  for (;;) {
    const auto step = decoder.Next(&cmd, &error);
    if (step == RequestFrameDecoder::Step::kError) {
      EXPECT_FALSE(error.empty());
      return error;
    }
    if (step == RequestFrameDecoder::Step::kDone) {
      ADD_FAILURE() << "frame decoded cleanly";
      return "";
    }
  }
}

TEST(BinaryCodecTest, RoundTripsEveryRequestOpcode) {
  std::string wire;
  AppendInsFrame(&wire, 3, 17);
  AppendDelFrame(&wire, 0, 1);
  AppendInsVFrame(&wire, {1, 5, 9});
  AppendInsVFrame(&wire, {});  // Isolated vertex.
  AppendDelVFrame(&wire, 12);
  AppendQueryFrame(&wire, 4);

  const std::vector<Command> cmds = DecodeAll(wire);
  ASSERT_EQ(cmds.size(), 6u);
  EXPECT_EQ(cmds[0].verb, Verb::kIns);
  EXPECT_EQ(cmds[0].update.kind, UpdateKind::kInsertEdge);
  EXPECT_EQ(cmds[0].update.u, 3);
  EXPECT_EQ(cmds[0].update.v, 17);
  EXPECT_EQ(cmds[1].verb, Verb::kDel);
  EXPECT_EQ(cmds[1].update.kind, UpdateKind::kDeleteEdge);
  EXPECT_EQ(cmds[2].verb, Verb::kInsV);
  EXPECT_EQ(cmds[2].update.neighbors, (std::vector<VertexId>{1, 5, 9}));
  EXPECT_EQ(cmds[3].verb, Verb::kInsV);
  EXPECT_TRUE(cmds[3].update.neighbors.empty());
  EXPECT_EQ(cmds[4].verb, Verb::kDelV);
  EXPECT_EQ(cmds[4].update.u, 12);
  EXPECT_EQ(cmds[5].verb, Verb::kQuery);
  EXPECT_EQ(cmds[5].vertex, 4);
}

TEST(BinaryCodecTest, BatchFrameExpandsToTextSequence) {
  std::vector<GraphUpdate> updates(3);
  updates[0] = {UpdateKind::kInsertEdge, 1, 2, {}};
  updates[1] = {UpdateKind::kDeleteVertex, 7, kInvalidVertex, {}};
  updates[2] = {UpdateKind::kInsertVertex, kInvalidVertex, kInvalidVertex,
                {1, 7}};
  std::string wire;
  AppendBatchFrame(&wire, updates, 0, updates.size());

  const std::vector<Command> cmds = DecodeAll(wire);
  // kBatch header, the three updates, then kEnd — exactly what the text
  // admission path consumes.
  ASSERT_EQ(cmds.size(), 5u);
  EXPECT_EQ(cmds[0].verb, Verb::kBatch);
  EXPECT_EQ(cmds[0].count, 3);
  EXPECT_EQ(cmds[1].verb, Verb::kIns);
  EXPECT_EQ(cmds[2].verb, Verb::kDelV);
  EXPECT_EQ(cmds[3].verb, Verb::kInsV);
  EXPECT_EQ(cmds[3].update.neighbors, (std::vector<VertexId>{1, 7}));
  EXPECT_EQ(cmds[4].verb, Verb::kEnd);
}

TEST(BinaryCodecTest, AppendUpdateFrameMatchesSpecificEncoders) {
  std::string by_kind;
  AppendUpdateFrame(&by_kind, {UpdateKind::kInsertEdge, 1, 2, {}});
  AppendUpdateFrame(&by_kind, {UpdateKind::kDeleteEdge, 3, 4, {}});
  AppendUpdateFrame(&by_kind,
                    {UpdateKind::kInsertVertex, kInvalidVertex, kInvalidVertex,
                     {9}});
  AppendUpdateFrame(&by_kind, {UpdateKind::kDeleteVertex, 5, kInvalidVertex,
                               {}});
  std::string direct;
  AppendInsFrame(&direct, 1, 2);
  AppendDelFrame(&direct, 3, 4);
  AppendInsVFrame(&direct, {9});
  AppendDelVFrame(&direct, 5);
  EXPECT_EQ(by_kind, direct);
}

TEST(BinaryCodecTest, RoundTripsEveryResponseOpcode) {
  const auto decode = [](const std::string& wire) {
    BinaryFrameBuffer frames(1 << 16);
    frames.Append(wire.data(), wire.size());
    const auto frame = frames.NextFrame();
    EXPECT_TRUE(frame.has_value());
    BinaryResponse resp;
    std::string error;
    EXPECT_TRUE(DecodeResponseFrame(*frame, &resp, &error)) << error;
    return resp;
  };

  std::string wire;
  AppendOkResponse(&wire);
  EXPECT_EQ(decode(wire).code, kBinRespOk);

  wire.clear();
  AppendOkIdResponse(&wire, 42);
  BinaryResponse id = decode(wire);
  EXPECT_EQ(id.code, kBinRespOkId);
  EXPECT_EQ(id.id, 42);

  wire.clear();
  AppendRejectResponse(&wire, "self loop");
  BinaryResponse reject = decode(wire);
  EXPECT_EQ(reject.code, kBinRespReject);
  EXPECT_EQ(reject.message, "self loop");

  wire.clear();
  AppendBatchAckResponse(&wire, 5, 2, {10, 11});
  BinaryResponse batch = decode(wire);
  EXPECT_EQ(batch.code, kBinRespBatch);
  EXPECT_EQ(batch.applied, 5);
  EXPECT_EQ(batch.rejected, 2);
  EXPECT_EQ(batch.insert_ids, (std::vector<VertexId>{10, 11}));

  wire.clear();
  AppendQueryResponse(&wire, true);
  BinaryResponse query = decode(wire);
  EXPECT_EQ(query.code, kBinRespQuery);
  EXPECT_TRUE(query.in_solution);

  wire.clear();
  AppendErrResponse(&wire, "readonly");
  BinaryResponse err = decode(wire);
  EXPECT_EQ(err.code, kBinRespErr);
  EXPECT_EQ(err.message, "readonly");
}

TEST(BinaryCodecTest, ReassemblesFramesAcrossPartialReads) {
  std::string wire;
  AppendQueryFrame(&wire, 99);
  BinaryFrameBuffer frames(1 << 16);
  // One frame delivered a byte at a time, as TCP is free to do.
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    frames.Append(&wire[i], 1);
    EXPECT_EQ(frames.NextFrame(), std::nullopt);
  }
  frames.Append(&wire[wire.size() - 1], 1);
  const auto frame = frames.NextFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(static_cast<uint8_t>((*frame)[0]), kBinOpQuery);
}

TEST(BinaryCodecTest, TruncatedLengthPrefixYieldsNothing) {
  BinaryFrameBuffer frames(1 << 16);
  const char partial[] = {0x09, 0x00};  // Half a length prefix.
  frames.Append(partial, sizeof(partial));
  EXPECT_EQ(frames.NextFrame(), std::nullopt);
  EXPECT_FALSE(frames.overflowed());
  EXPECT_EQ(frames.pending_bytes(), sizeof(partial));
}

TEST(BinaryCodecTest, OversizedLengthPrefixIsStickyOverflow) {
  BinaryFrameBuffer frames(64);
  std::string wire;
  AppendU32(&wire, 65);  // One byte beyond the cap.
  wire.push_back(static_cast<char>(kBinOpQuery));
  frames.Append(wire.data(), wire.size());
  EXPECT_EQ(frames.NextFrame(), std::nullopt);
  EXPECT_TRUE(frames.overflowed());
  // Even a well-formed frame afterwards yields nothing: the stream is
  // unsynchronized and the connection is done.
  std::string good;
  AppendQueryFrame(&good, 1);
  frames.Append(good.data(), good.size());
  EXPECT_EQ(frames.NextFrame(), std::nullopt);
  EXPECT_TRUE(frames.overflowed());
}

TEST(BinaryCodecTest, ZeroLengthPrefixIsOverflow) {
  BinaryFrameBuffer frames(1 << 16);
  std::string wire;
  AppendU32(&wire, 0);  // A frame must at least carry its code byte.
  frames.Append(wire.data(), wire.size());
  EXPECT_EQ(frames.NextFrame(), std::nullopt);
  EXPECT_TRUE(frames.overflowed());
}

TEST(BinaryCodecTest, GarbageOpcodeFailsCleanly) {
  MustFailFrame(std::string(1, '\x00'));
  MustFailFrame(std::string(1, '\x7f'));
  MustFailFrame(std::string(1, '\xff'));
  // Response codes are not request codes.
  MustFailFrame(std::string(1, static_cast<char>(kBinRespOk)));
}

TEST(BinaryCodecTest, TruncatedAndOversizedBodiesFail) {
  // INS with only one endpoint.
  std::string ins_short(1, static_cast<char>(kBinOpIns));
  AppendU32(&ins_short, 3);
  MustFailFrame(ins_short);
  // QUERY with trailing garbage.
  std::string query_long(1, static_cast<char>(kBinOpQuery));
  AppendU32(&query_long, 3);
  AppendU32(&query_long, 4);
  MustFailFrame(query_long);
  // INSV whose neighbor count exceeds the bytes present.
  std::string insv(1, static_cast<char>(kBinOpInsV));
  AppendU32(&insv, 5);  // Claims 5 neighbors...
  AppendU32(&insv, 1);  // ...supplies 1.
  MustFailFrame(insv);
  // BATCH that declares more ops than it carries.
  std::string batch(1, static_cast<char>(kBinOpBatch));
  AppendU32(&batch, 2);
  batch.push_back(static_cast<char>(kBinOpIns));
  AppendU32(&batch, 1);
  AppendU32(&batch, 2);
  MustFailFrame(batch);
  // BATCH may not nest BATCH.
  std::string nested(1, static_cast<char>(kBinOpBatch));
  AppendU32(&nested, 1);
  nested.push_back(static_cast<char>(kBinOpBatch));
  AppendU32(&nested, 1);
  MustFailFrame(nested);
  // QUERY inside BATCH is not an update.
  std::string query_in_batch(1, static_cast<char>(kBinOpBatch));
  AppendU32(&query_in_batch, 1);
  query_in_batch.push_back(static_cast<char>(kBinOpQuery));
  AppendU32(&query_in_batch, 1);
  MustFailFrame(query_in_batch);
}

TEST(BinaryCodecTest, TextToBinaryHandoffKeepsPipelinedFrames) {
  // A client may pipeline binary frames directly behind its upgrade line in
  // one packet. The I/O thread parses the HELLO from the LineBuffer, then
  // hands the remaining bytes to the BinaryFrameBuffer — nothing lost.
  std::string wire = "HELLO 2 BIN\n";
  AppendInsFrame(&wire, 1, 2);
  AppendQueryFrame(&wire, 1);

  LineBuffer lines(1 << 16);
  lines.Append(wire.data(), wire.size());
  const auto hello = lines.NextLineView();
  ASSERT_TRUE(hello.has_value());
  Command cmd;
  std::string error;
  ASSERT_TRUE(ParseCommand(*hello, &cmd, &error)) << error;
  EXPECT_EQ(cmd.verb, Verb::kHello);
  EXPECT_EQ(cmd.version, 2);
  EXPECT_TRUE(cmd.binary);

  BinaryFrameBuffer frames(1 << 16);
  const std::string_view rest = lines.pending();
  frames.Append(rest.data(), rest.size());
  lines.Reset();
  const std::vector<Command> cmds = [&frames] {
    std::vector<Command> out;
    while (auto frame = frames.NextFrame()) {
      RequestFrameDecoder decoder;
      std::string err;
      EXPECT_TRUE(decoder.Begin(*frame, &err)) << err;
      Command c;
      while (decoder.Next(&c, &err) == RequestFrameDecoder::Step::kCommand) {
        out.push_back(c);
      }
    }
    return out;
  }();
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].verb, Verb::kIns);
  EXPECT_EQ(cmds[1].verb, Verb::kQuery);
}

TEST(BinaryCodecTest, HelloBinParsing) {
  const Command cmd = MustParse("HELLO 2 BIN");
  EXPECT_EQ(cmd.verb, Verb::kHello);
  EXPECT_EQ(cmd.version, 2);
  EXPECT_TRUE(cmd.binary);
  EXPECT_FALSE(MustParse("HELLO 2").binary);
  MustFail("HELLO 2 BIN extra");
  MustFail("HELLO 2 bin");  // Case-sensitive, like the verbs.
}

}  // namespace
}  // namespace serve
}  // namespace dynmis
