// Unit tests for the serving layer's wire protocol: line framing
// (partial reads, CRLF, the sticky overflow cap) and strict command
// parsing (every verb, malformed numbers, arity errors, trailing garbage).
// The server's handshake policy over a real socket is covered by
// serve_e2e_test.cc; here the parser is exercised in isolation.

#include "src/serve/protocol.h"

#include <string>

#include "gtest/gtest.h"

namespace dynmis {
namespace serve {
namespace {

Command MustParse(const std::string& line) {
  Command cmd;
  std::string error;
  EXPECT_TRUE(ParseCommand(line, &cmd, &error)) << line << ": " << error;
  return cmd;
}

std::string MustFail(const std::string& line) {
  Command cmd;
  std::string error;
  EXPECT_FALSE(ParseCommand(line, &cmd, &error)) << line;
  EXPECT_FALSE(error.empty()) << line;
  return error;
}

TEST(ProtocolParseTest, Hello) {
  const Command cmd = MustParse("HELLO 1");
  EXPECT_EQ(cmd.verb, Verb::kHello);
  EXPECT_EQ(cmd.version, 1);
  EXPECT_EQ(MustParse("HELLO 7").version, 7);
  MustFail("HELLO");
  MustFail("HELLO 0");
  MustFail("HELLO -1");
  MustFail("HELLO one");
  MustFail("HELLO 1 extra");
  // 2^32 + 1 must not truncate into an accepted version 1.
  MustFail("HELLO 4294967297");
}

TEST(ProtocolParseTest, EdgeUpdates) {
  const Command ins = MustParse("INS 3 17");
  EXPECT_EQ(ins.verb, Verb::kIns);
  EXPECT_EQ(ins.update.kind, UpdateKind::kInsertEdge);
  EXPECT_EQ(ins.update.u, 3);
  EXPECT_EQ(ins.update.v, 17);
  const Command del = MustParse("DEL 0 1");
  EXPECT_EQ(del.verb, Verb::kDel);
  EXPECT_EQ(del.update.kind, UpdateKind::kDeleteEdge);
  MustFail("INS 3");
  MustFail("INS 3 4 5");
  MustFail("INS -1 4");
  MustFail("INS 3 4x");
  MustFail("DEL a b");
  // Ids above the VertexId range are rejected, not truncated.
  MustFail("INS 3 4294967296");
}

TEST(ProtocolParseTest, VertexUpdates) {
  const Command insv = MustParse("INSV 1 5 9");
  EXPECT_EQ(insv.verb, Verb::kInsV);
  EXPECT_EQ(insv.update.kind, UpdateKind::kInsertVertex);
  EXPECT_EQ(insv.update.neighbors, (std::vector<VertexId>{1, 5, 9}));
  // An isolated vertex has no neighbor list.
  EXPECT_TRUE(MustParse("INSV").update.neighbors.empty());
  const Command delv = MustParse("DELV 12");
  EXPECT_EQ(delv.verb, Verb::kDelV);
  EXPECT_EQ(delv.update.u, 12);
  MustFail("INSV 1 -5");
  MustFail("DELV");
  MustFail("DELV 1 2");
}

TEST(ProtocolParseTest, QueriesAndControl) {
  EXPECT_EQ(MustParse("QUERY 4").vertex, 4);
  EXPECT_EQ(MustParse("SOLUTION").verb, Verb::kSolution);
  EXPECT_EQ(MustParse("STATS").verb, Verb::kStats);
  EXPECT_EQ(MustParse("VERIFY").verb, Verb::kVerify);
  EXPECT_EQ(MustParse("END").verb, Verb::kEnd);
  EXPECT_EQ(MustParse("QUIT").verb, Verb::kQuit);
  MustFail("QUERY");
  MustFail("SOLUTION now");
  MustFail("STATS x");
  MustFail("QUIT 1");
}

TEST(ProtocolParseTest, PathsAndBatch) {
  EXPECT_EQ(MustParse("SNAPSHOT /tmp/a.snap").path, "/tmp/a.snap");
  EXPECT_EQ(MustParse("TRACE out.txt").path, "out.txt");
  MustFail("SNAPSHOT");
  const Command batch = MustParse("BATCH 64");
  EXPECT_EQ(batch.verb, Verb::kBatch);
  EXPECT_EQ(batch.count, 64);
  MustFail("BATCH");
  MustFail("BATCH 0");
  MustFail("BATCH -3");
  MustFail("BATCH 9999999999");
}

TEST(ProtocolParseTest, UnknownAndEmpty) {
  MustFail("");
  MustFail("   ");
  MustFail("FROB 1 2");
  MustFail("ins 1 2");  // Verbs are case-sensitive.
}

TEST(ProtocolParseTest, WhitespaceTolerance) {
  const Command cmd = MustParse("  INS   3\t17  ");
  EXPECT_EQ(cmd.update.u, 3);
  EXPECT_EQ(cmd.update.v, 17);
}

TEST(ProtocolParseTest, UpdateVerbClassification) {
  EXPECT_TRUE(IsUpdateVerb(Verb::kIns));
  EXPECT_TRUE(IsUpdateVerb(Verb::kDel));
  EXPECT_TRUE(IsUpdateVerb(Verb::kInsV));
  EXPECT_TRUE(IsUpdateVerb(Verb::kDelV));
  EXPECT_FALSE(IsUpdateVerb(Verb::kQuery));
  EXPECT_FALSE(IsUpdateVerb(Verb::kBatch));
  EXPECT_FALSE(IsUpdateVerb(Verb::kEnd));
}

TEST(LineBufferTest, SplitsCompleteLines) {
  LineBuffer buffer(64);
  const std::string data = "INS 1 2\nDEL 3 4\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "INS 1 2");
  EXPECT_EQ(buffer.NextLine(), "DEL 3 4");
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
}

TEST(LineBufferTest, ReassemblesPartialReads) {
  LineBuffer buffer(64);
  // One command delivered a byte at a time, as TCP is free to do.
  const std::string data = "QUERY 42\n";
  for (const char c : data) {
    EXPECT_EQ(buffer.NextLine(), std::nullopt);
    buffer.Append(&c, 1);
  }
  EXPECT_EQ(buffer.NextLine(), "QUERY 42");
}

TEST(LineBufferTest, StripsCarriageReturn) {
  LineBuffer buffer(64);
  const std::string data = "STATS\r\nQUIT\r\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "STATS");
  EXPECT_EQ(buffer.NextLine(), "QUIT");
}

TEST(LineBufferTest, EmptyLines) {
  LineBuffer buffer(64);
  const std::string data = "\n\nQUIT\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "");
  EXPECT_EQ(buffer.NextLine(), "");
  EXPECT_EQ(buffer.NextLine(), "QUIT");
}

TEST(LineBufferTest, OverflowIsSticky) {
  LineBuffer buffer(8);
  const std::string data(9, 'x');  // No newline, beyond the cap.
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
  EXPECT_TRUE(buffer.overflowed());
  // Even a newline afterwards yields nothing: the connection is done.
  const std::string more = "\nQUIT\n";
  buffer.Append(more.data(), more.size());
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
  EXPECT_TRUE(buffer.overflowed());
}

TEST(LineBufferTest, OverflowAppliesToCompleteLinesToo) {
  LineBuffer buffer(4);
  const std::string data = "TOOLONGLINE\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
  EXPECT_TRUE(buffer.overflowed());
}

TEST(LineBufferTest, LineAtExactlyTheCapPasses) {
  LineBuffer buffer(4);
  const std::string data = "QUIT\n";
  buffer.Append(data.data(), data.size());
  EXPECT_EQ(buffer.NextLine(), "QUIT");
  EXPECT_FALSE(buffer.overflowed());
}

TEST(LineBufferTest, CompactionKeepsPendingBytes) {
  LineBuffer buffer(1 << 16);
  // Enough traffic to trigger the internal compaction threshold.
  for (int i = 0; i < 1000; ++i) {
    const std::string line = "INS " + std::to_string(i) + " 99999\n";
    buffer.Append(line.data(), line.size());
    ASSERT_EQ(buffer.NextLine(), line.substr(0, line.size() - 1));
  }
  const std::string partial = "QUERY 1";
  buffer.Append(partial.data(), partial.size());
  EXPECT_EQ(buffer.pending_bytes(), partial.size());
  buffer.Append("\n", 1);
  EXPECT_EQ(buffer.NextLine(), "QUERY 1");
}

}  // namespace
}  // namespace serve
}  // namespace dynmis
