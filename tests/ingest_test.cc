// Workload-subsystem tests: the external-key map (bind/release semantics,
// allocation-free steady state via stable buffer capacity, byte-identical
// deterministic persistence), the timing wheel (exact TTL expiry timing,
// FastForward rules), the pre-drawn temporal sequences (determinism, valid
// replay, deletion-storm shape) and the streaming edge-list ingester
// (header pre-sizing, dedup/self-loop drops, id compaction, malformed
// input rejection, deterministic generation, `.gz` decoding).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/edge_list.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/ingest/ingest.h"
#include "src/ingest/key_map.h"
#include "src/ingest/temporal.h"
#include "src/io/snapshot.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

// --- KeyMap -----------------------------------------------------------------

TEST(KeyMapTest, BindLookupReleaseRebind) {
  ingest::KeyMap map;
  EXPECT_TRUE(map.Bind("alice", 3));
  EXPECT_EQ(map.Lookup("alice"), 3);
  EXPECT_EQ(map.KeyOf(3), "alice");
  EXPECT_EQ(map.Size(), 1u);

  // Duplicate key and duplicate id both refuse without side effects.
  EXPECT_FALSE(map.Bind("alice", 4));
  EXPECT_FALSE(map.Bind("bob", 3));
  EXPECT_EQ(map.Lookup("alice"), 3);
  EXPECT_EQ(map.Size(), 1u);

  // Empty keys are invalid; unknown keys miss.
  EXPECT_FALSE(map.Bind("", 5));
  EXPECT_EQ(map.Lookup("bob"), kInvalidVertex);
  EXPECT_EQ(map.Release("bob"), kInvalidVertex);

  EXPECT_EQ(map.Release("alice"), 3);
  EXPECT_EQ(map.Lookup("alice"), kInvalidVertex);
  EXPECT_TRUE(map.KeyOf(3).empty());
  EXPECT_EQ(map.Size(), 0u);

  // Both the key and the id are free again after release.
  EXPECT_TRUE(map.Bind("alice", 7));
  EXPECT_TRUE(map.Bind("bob", 3));
  EXPECT_EQ(map.Lookup("alice"), 7);
  EXPECT_EQ(map.Lookup("bob"), 3);
}

TEST(KeyMapTest, ReleaseId) {
  ingest::KeyMap map;
  ASSERT_TRUE(map.Bind("sku-9", 42));
  EXPECT_TRUE(map.ReleaseId(42));
  EXPECT_EQ(map.Lookup("sku-9"), kInvalidVertex);
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_FALSE(map.ReleaseId(42));
  EXPECT_FALSE(map.ReleaseId(12345));  // Never-bound id.
}

TEST(KeyMapTest, ChurnStaysConsistentAcrossRebuilds) {
  ingest::KeyMap map;
  // Bind/release far more keys than any initial capacity so tombstone and
  // dead-arena pressure force several rebuilds, then verify every surviving
  // binding.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 500; ++i) {
      const std::string key =
          "k" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_TRUE(map.Bind(key, round * 500 + i));
    }
    for (int i = 0; i < 500; i += 2) {
      const std::string key =
          "k" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_EQ(map.Release(key), round * 500 + i);
    }
  }
  EXPECT_EQ(map.Size(), 8u * 250u);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 500; ++i) {
      const std::string key =
          "k" + std::to_string(round) + "-" + std::to_string(i);
      const VertexId want = i % 2 == 0 ? kInvalidVertex : round * 500 + i;
      EXPECT_EQ(map.Lookup(key), want) << key;
    }
  }
}

TEST(KeyMapTest, SteadyStateChurnKeepsCapacityStable) {
  ingest::KeyMap map;
  map.Reserve(1024);
  // Warm up: fill to the working-set size, then churn one full working set
  // so both the live and the spare buffers have seen their peak.
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(map.Bind("warm" + std::to_string(i), i));
  }
  for (int i = 0; i < 4096; ++i) {
    const std::string key = "warm" + std::to_string(i % 512);
    ASSERT_EQ(map.Release(key), i % 512);
    ASSERT_TRUE(map.Bind(key, i % 512));
  }
  // Steady state: the same churn must not grow the buffers — Rebuild swaps
  // warm spares instead of allocating (the testable face of the
  // allocation-free constraint).
  const size_t warm_bytes = map.MemoryUsageBytes();
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "warm" + std::to_string(i % 512);
    ASSERT_EQ(map.Release(key), i % 512);
    ASSERT_TRUE(map.Bind(key, i % 512));
  }
  EXPECT_EQ(map.MemoryUsageBytes(), warm_bytes);
  EXPECT_EQ(map.Size(), 512u);
}

std::string Serialize(const ingest::KeyMap& map) {
  SnapshotWriter writer;
  map.SaveTo(&writer);
  std::ostringstream out;
  EXPECT_TRUE(writer.WriteTo(out).ok);
  return out.str();
}

TEST(KeyMapTest, SaveLoadRoundTrip) {
  ingest::KeyMap map;
  ASSERT_TRUE(map.Bind("alice", 0));
  ASSERT_TRUE(map.Bind("bob", 5));
  ASSERT_TRUE(map.Bind("carol", 2));
  ASSERT_EQ(map.Release("bob"), 5);

  const std::string bytes = Serialize(map);
  std::istringstream in(bytes);
  SnapshotReader reader;
  ASSERT_TRUE(reader.ReadFrom(in).ok);
  ASSERT_TRUE(reader.HasSection("keymap"));

  ingest::KeyMap loaded;
  ASSERT_TRUE(loaded.LoadFrom(&reader));
  EXPECT_EQ(loaded.Size(), 2u);
  EXPECT_EQ(loaded.Lookup("alice"), 0);
  EXPECT_EQ(loaded.Lookup("carol"), 2);
  EXPECT_EQ(loaded.Lookup("bob"), kInvalidVertex);
  EXPECT_EQ(loaded.KeyOf(2), "carol");
}

TEST(KeyMapTest, SerializationIsHistoryIndependent) {
  // Two maps that arrive at the same bindings through different insertion
  // orders and intermediate churn must serialize byte-identically — this is
  // what lets a follower's keymap section be compared against the
  // primary's. SaveTo guarantees it by emitting in ascending id order.
  ingest::KeyMap a;
  ASSERT_TRUE(a.Bind("alice", 0));
  ASSERT_TRUE(a.Bind("bob", 1));
  ASSERT_TRUE(a.Bind("carol", 2));

  ingest::KeyMap b;
  ASSERT_TRUE(b.Bind("carol", 2));
  ASSERT_TRUE(b.Bind("stale", 0));
  ASSERT_TRUE(b.Bind("bob", 1));
  ASSERT_EQ(b.Release("stale"), 0);
  ASSERT_TRUE(b.Bind("alice", 0));

  EXPECT_EQ(Serialize(a), Serialize(b));

  // A round-tripped map also re-serializes identically.
  std::istringstream in(Serialize(a));
  SnapshotReader reader;
  ASSERT_TRUE(reader.ReadFrom(in).ok);
  ingest::KeyMap loaded;
  ASSERT_TRUE(loaded.LoadFrom(&reader));
  EXPECT_EQ(Serialize(loaded), Serialize(a));
}

TEST(KeyMapTest, LoadFromRejectsTruncatedSection) {
  // A keymap section declaring more entries than it carries must fail the
  // load, not fabricate bindings.
  SnapshotWriter writer;
  writer.BeginSection("keymap");
  writer.PutU64(3);
  writer.PutString("only-one");
  writer.PutU32(0);
  writer.EndSection();
  std::ostringstream out;
  ASSERT_TRUE(writer.WriteTo(out).ok);

  std::istringstream in(out.str());
  SnapshotReader reader;
  ASSERT_TRUE(reader.ReadFrom(in).ok);
  ingest::KeyMap map;
  EXPECT_FALSE(map.LoadFrom(&reader));
  EXPECT_FALSE(reader.ok());
}

// --- TimingWheel ------------------------------------------------------------

TEST(TimingWheelTest, ExpiresExactlyOneTtlAfterSchedule) {
  ingest::TimingWheel wheel(4);
  EXPECT_EQ(wheel.ttl_ticks(), 4u);
  wheel.Schedule(1, 2);
  EXPECT_EQ(wheel.scheduled(), 1u);

  std::vector<std::pair<VertexId, VertexId>> out;
  for (int tick = 1; tick <= 3; ++tick) {
    wheel.Advance(&out);
    EXPECT_TRUE(out.empty()) << "expired early at tick " << tick;
  }
  wheel.Advance(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], std::make_pair(VertexId{1}, VertexId{2}));
  EXPECT_EQ(wheel.scheduled(), 0u);
  EXPECT_EQ(wheel.now(), 4u);
}

TEST(TimingWheelTest, DrainsEachSlotAtItsOwnTickAndAppends) {
  ingest::TimingWheel wheel(3);
  std::vector<std::pair<VertexId, VertexId>> out;
  wheel.Schedule(0, 1);  // Expires at tick 3.
  wheel.Advance(&out);   // now = 1.
  wheel.Schedule(2, 3);  // Expires at tick 4.
  wheel.Schedule(4, 5);  // Expires at tick 4.
  EXPECT_EQ(wheel.scheduled(), 3u);

  wheel.Advance(&out);  // now = 2.
  EXPECT_TRUE(out.empty());
  wheel.Advance(&out);  // now = 3: first edge.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], std::make_pair(VertexId{0}, VertexId{1}));

  // Advance appends without clearing: the earlier drain stays in place.
  wheel.Advance(&out);  // now = 4: the other two edges.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], std::make_pair(VertexId{2}, VertexId{3}));
  EXPECT_EQ(out[2], std::make_pair(VertexId{4}, VertexId{5}));
  EXPECT_EQ(wheel.scheduled(), 0u);
}

TEST(TimingWheelTest, SlotReuseAfterWrapAround) {
  ingest::TimingWheel wheel(2);
  std::vector<std::pair<VertexId, VertexId>> out;
  // Several full revolutions of the wheel: every edge must come out exactly
  // one TTL after it went in, never early from a stale slot.
  for (VertexId i = 0; i < 10; ++i) {
    wheel.Schedule(i, i + 100);
    out.clear();
    wheel.Advance(&out);
    if (i == 0) {
      EXPECT_TRUE(out.empty());
    } else {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0].first, i - 1);
    }
  }
}

TEST(TimingWheelTest, FastForwardSkipsIdleStretches) {
  ingest::TimingWheel wheel(8);
  wheel.FastForward(100);
  EXPECT_EQ(wheel.now(), 100u);
  wheel.FastForward(50);  // Not ahead of now: no-op.
  EXPECT_EQ(wheel.now(), 100u);
  wheel.FastForward(100);  // Equal is not ahead either.
  EXPECT_EQ(wheel.now(), 100u);

  // Scheduling after the jump still expires exactly one TTL later.
  wheel.Schedule(7, 8);
  std::vector<std::pair<VertexId, VertexId>> out;
  for (int i = 0; i < 7; ++i) wheel.Advance(&out);
  EXPECT_TRUE(out.empty());
  wheel.Advance(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(wheel.now(), 108u);
}

// --- Temporal sequences -----------------------------------------------------

EdgeListGraph SmallBase() {
  Rng rng(91);
  return ChungLuPowerLaw(400, 2.3, 6.0, &rng);
}

bool SameUpdate(const GraphUpdate& a, const GraphUpdate& b) {
  return a.kind == b.kind && a.u == b.u && a.v == b.v &&
         a.neighbors == b.neighbors && a.key == b.key;
}

TEST(TemporalSequenceTest, DeterministicForFixedOptions) {
  const EdgeListGraph base = SmallBase();
  const DynamicGraph scratch = base.ToDynamic();
  ingest::TemporalStreamOptions options;
  options.ttl_ticks = 64;
  options.inserts_per_tick = 2;
  options.seed = 17;

  ingest::TemporalStats stats_a;
  ingest::TemporalStats stats_b;
  const std::vector<GraphUpdate> a =
      ingest::MakeTemporalSequence(scratch, 2000, options, &stats_a);
  const std::vector<GraphUpdate> b =
      ingest::MakeTemporalSequence(scratch, 2000, options, &stats_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(SameUpdate(a[i], b[i])) << "diverged at update " << i;
  }
  EXPECT_EQ(stats_a.inserts, stats_b.inserts);
  EXPECT_EQ(stats_a.expiries, stats_b.expiries);
  EXPECT_EQ(stats_a.window_peak_edges, stats_b.window_peak_edges);

  // A different seed draws a different stream.
  options.seed = 18;
  const std::vector<GraphUpdate> c =
      ingest::MakeTemporalSequence(scratch, 2000, options, nullptr);
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (!SameUpdate(a[i], c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TemporalSequenceTest, ReplaysCleanlyAndDeletesOnlyExpiredInserts) {
  const EdgeListGraph base = SmallBase();
  const DynamicGraph scratch = base.ToDynamic();
  ingest::TemporalStreamOptions options;
  options.ttl_ticks = 32;
  options.inserts_per_tick = 1;
  options.seed = 23;

  ingest::TemporalStats stats;
  const std::vector<GraphUpdate> updates =
      ingest::MakeTemporalSequence(scratch, 3000, options, &stats);
  EXPECT_EQ(stats.ttl_ticks, 32u);
  EXPECT_EQ(stats.inserts + stats.expiries,
            static_cast<int64_t>(updates.size()));
  EXPECT_GT(stats.expiries, 0);
  EXPECT_GT(stats.window_peak_edges, 0u);
  EXPECT_NEAR(stats.deletion_share,
              static_cast<double>(stats.expiries) /
                  static_cast<double>(updates.size()),
              1e-9);

  // Replay: every insert adds a new edge, every deletion removes an edge
  // inserted by this stream (never a base edge), and with a steady one
  // insert per tick the window converges to ~ttl edges.
  DynamicGraph replay = base.ToDynamic();
  int64_t inserts = 0;
  int64_t expiries = 0;
  std::vector<std::pair<VertexId, VertexId>> window;
  for (const GraphUpdate& update : updates) {
    if (update.kind == UpdateKind::kInsertEdge) {
      ASSERT_FALSE(replay.HasEdge(update.u, update.v));
      window.emplace_back(update.u, update.v);
      ++inserts;
    } else {
      ASSERT_EQ(update.kind, UpdateKind::kDeleteEdge);
      ASSERT_TRUE(replay.HasEdge(update.u, update.v));
      const std::pair<VertexId, VertexId> edge(update.u, update.v);
      const auto it = std::find(window.begin(), window.end(), edge);
      ASSERT_TRUE(it != window.end())
          << "expiry of an edge this stream never inserted";
      window.erase(it);
      ++expiries;
    }
    ApplyUpdate(&replay, update);
  }
  EXPECT_EQ(inserts, stats.inserts);
  EXPECT_EQ(expiries, stats.expiries);
  EXPECT_LE(window.size(), static_cast<size_t>(options.ttl_ticks));
}

TEST(TemporalSequenceTest, StormExpiresWholeBurstsAtOnce) {
  const EdgeListGraph base = SmallBase();
  const DynamicGraph scratch = base.ToDynamic();
  ingest::TemporalStreamOptions options;
  options.storm = true;
  options.ttl_ticks = 64;
  options.storm_burst = 32;
  options.storm_period = 16;
  options.seed = 29;

  ingest::TemporalStats stats;
  const std::vector<GraphUpdate> updates =
      ingest::MakeTemporalSequence(scratch, 1500, options, &stats);
  EXPECT_GT(stats.expiries, 0);
  // The adversarial point of the mode: a whole insert burst lands on one
  // expiry tick, so the peak single-tick deletion batch is the burst size.
  EXPECT_EQ(stats.expiry_backlog_peak, static_cast<size_t>(32));

  // Deletions arrive as contiguous runs of exactly the burst size (the
  // final run may be cut off by the update budget).
  size_t run = 0;
  std::vector<size_t> runs;
  for (const GraphUpdate& update : updates) {
    if (update.kind == UpdateKind::kDeleteEdge) {
      ++run;
    } else if (run > 0) {
      runs.push_back(run);
      run = 0;
    }
  }
  if (run > 0) runs.push_back(run);
  ASSERT_FALSE(runs.empty());
  for (size_t i = 0; i + 1 < runs.size(); ++i) {
    EXPECT_EQ(runs[i], static_cast<size_t>(32));
  }
}

// --- Ingester ---------------------------------------------------------------

class IngestFileTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "ingest_test_" + name;
  }

  void WriteFile(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << contents;
    ASSERT_TRUE(out.good());
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  std::vector<std::string> cleanup_;
};

TEST_F(IngestFileTest, ParsesDedupsAndCompacts) {
  const std::string path = TempPath("small.txt");
  cleanup_.push_back(path);
  // Sparse ids (10/20/30/40), a duplicate in each orientation, a self-loop,
  // comments and blank lines, and a size header before the first edge.
  WriteFile(path,
            "# Nodes: 4 Edges: 3\n"
            "# comment line\n"
            "\n"
            "10 20\n"
            "20 30\n"
            "30 20\n"  // Duplicate of 20-30, other orientation.
            "10 20\n"  // Duplicate, same orientation.
            "30 30\n"  // Self-loop.
            "30 40 # trailing comment\n");

  EdgeListGraph graph;
  ingest::IngestReport report;
  std::string error;
  ASSERT_TRUE(ingest::IngestEdgeList(path, &graph, &report, &error)) << error;

  EXPECT_EQ(report.vertices, 4);
  EXPECT_EQ(report.edges, 3);
  EXPECT_EQ(report.lines, 6);
  EXPECT_EQ(report.dropped_self_loops, 1);
  EXPECT_EQ(report.dropped_duplicates, 2);
  EXPECT_TRUE(report.header_reserved);
  EXPECT_FALSE(report.gzip);
  EXPECT_GT(report.graph_bytes, 0u);
  EXPECT_GT(report.bytes_per_edge, 0.0);
  EXPECT_GT(report.peak_rss_bytes, 0u);

  // Ids are compacted to 0..n-1 and the graph is simple.
  EXPECT_EQ(graph.n, 4);
  ASSERT_EQ(graph.NumEdges(), 3);
  for (const auto& [u, v] : graph.edges) {
    EXPECT_GE(u, 0);
    EXPECT_LT(u, 4);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
    EXPECT_NE(u, v);
  }
}

TEST_F(IngestFileTest, RejectsMalformedTokensAndMissingFiles) {
  const std::string path = TempPath("bad.txt");
  cleanup_.push_back(path);
  WriteFile(path, "1 2\n3 oops\n");

  EdgeListGraph graph;
  std::string error;
  EXPECT_FALSE(ingest::IngestEdgeList(path, &graph, nullptr, &error));
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_FALSE(ingest::IngestEdgeList(TempPath("does_not_exist.txt"), &graph,
                                      nullptr, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(IngestFileTest, GeneratorIsDeterministicAndIngestible) {
  const std::string a = TempPath("gen_a.txt");
  const std::string b = TempPath("gen_b.txt");
  cleanup_.push_back(a);
  cleanup_.push_back(b);

  std::string error;
  const int64_t edges_a =
      ingest::GeneratePowerLawEdgeFile(a, 2000, 8.0, 2.3, 11, &error);
  ASSERT_GT(edges_a, 0) << error;
  const int64_t edges_b =
      ingest::GeneratePowerLawEdgeFile(b, 2000, 8.0, 2.3, 11, &error);
  ASSERT_EQ(edges_a, edges_b);

  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  std::stringstream sa;
  std::stringstream sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str()) << "generator output is not deterministic";

  // The generated header pre-sizes the ingest, and the edge count matches
  // what the generator reported.
  EdgeListGraph graph;
  ingest::IngestReport report;
  ASSERT_TRUE(ingest::IngestEdgeList(a, &graph, &report, &error)) << error;
  EXPECT_TRUE(report.header_reserved);
  EXPECT_EQ(report.edges, edges_a);
  EXPECT_EQ(report.dropped_duplicates, 0);
  EXPECT_EQ(report.dropped_self_loops, 0);
  EXPECT_LE(graph.n, 2000);
}

TEST_F(IngestFileTest, DecodesGzipTransparently) {
  if (std::system("command -v gzip >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "gzip not available";
  }
  const std::string plain = TempPath("gz_src.txt");
  const std::string gz = plain + ".gz";
  cleanup_.push_back(plain);
  cleanup_.push_back(gz);

  std::string error;
  ASSERT_GT(ingest::GeneratePowerLawEdgeFile(plain, 500, 6.0, 2.3, 13, &error),
            0)
      << error;
  ASSERT_EQ(std::system(("gzip -kf " + plain).c_str()), 0);

  EdgeListGraph from_plain;
  EdgeListGraph from_gz;
  ingest::IngestReport report_gz;
  ASSERT_TRUE(ingest::IngestEdgeList(plain, &from_plain, nullptr, &error))
      << error;
  ASSERT_TRUE(ingest::IngestEdgeList(gz, &from_gz, &report_gz, &error))
      << error;
  EXPECT_TRUE(report_gz.gzip);
  EXPECT_EQ(from_plain.n, from_gz.n);
  EXPECT_EQ(from_plain.edges, from_gz.edges);
}

}  // namespace
}  // namespace dynmis
