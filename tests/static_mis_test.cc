// Greedy and ARW local-search tests: validity, maximality, and the quality
// ordering greedy <= ARW <= exact on random sweeps.

#include <vector>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/static_mis/arw.h"
#include "src/static_mis/brute_force.h"
#include "src/static_mis/exact.h"
#include "src/static_mis/greedy.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

bool IsIndependent(const StaticGraph& g, const std::vector<VertexId>& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (g.HasEdge(set[i], set[j])) return false;
    }
  }
  return true;
}

bool IsMaximal(const StaticGraph& g, const std::vector<VertexId>& set) {
  std::vector<uint8_t> chosen(g.NumVertices(), 0);
  for (VertexId v : set) chosen[v] = 1;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (chosen[v]) continue;
    bool covered = false;
    for (VertexId u : g.Neighbors(v)) covered |= chosen[u] != 0;
    if (!covered) return false;
  }
  return true;
}

TEST(GreedyTest, EmptyAndIsolated) {
  EXPECT_TRUE(GreedyMis(StaticGraph(0, {})).empty());
  EXPECT_EQ(GreedyMis(StaticGraph(5, {})).size(), 5u);
}

TEST(GreedyTest, PicksLeavesOnStar) {
  const StaticGraph g = StarGraph(6).ToStatic();
  const std::vector<VertexId> solution = GreedyMis(g);
  EXPECT_EQ(solution.size(), 6u);
}

TEST(GreedyTest, MaximalAndIndependentOnRandomSweep) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    const int n = 20 + static_cast<int>(rng.NextBounded(200));
    const StaticGraph g =
        ErdosRenyiGnm(n, static_cast<int64_t>(n * 2), &rng).ToStatic();
    const std::vector<VertexId> solution = GreedyMis(g);
    EXPECT_TRUE(IsIndependent(g, solution)) << seed;
    EXPECT_TRUE(IsMaximal(g, solution)) << seed;
  }
}

TEST(ArwTest, ImprovesOrMatchesGreedy) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 13);
    const StaticGraph g = ErdosRenyiGnm(120, 360, &rng).ToStatic();
    ArwOptions options;
    options.iterations = 300;
    options.seed = seed;
    const std::vector<VertexId> arw = ArwMis(g, options);
    EXPECT_TRUE(IsIndependent(g, arw)) << seed;
    EXPECT_TRUE(IsMaximal(g, arw)) << seed;
    EXPECT_GE(arw.size(), GreedyMis(g).size()) << seed;
  }
}

TEST(ArwTest, NearOptimalOnSmallGraphs) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 29);
    const StaticGraph g = ErdosRenyiGnm(24, 50, &rng).ToStatic();
    ArwOptions options;
    options.iterations = 500;
    options.seed = seed;
    const int alpha = BruteForceAlpha(g);
    const int arw = static_cast<int>(ArwMis(g, options).size());
    EXPECT_LE(arw, alpha);
    EXPECT_GE(arw, alpha - 1) << "seed " << seed;  // ARW is near-optimal here.
  }
}

TEST(ArwTest, RespectsInitialSolution) {
  const StaticGraph g = PathGraph(6).ToStatic();
  ArwOptions options;
  options.iterations = 0;
  const std::vector<VertexId> result = ArwMisFrom(g, {0}, options);
  EXPECT_TRUE(IsIndependent(g, result));
  EXPECT_TRUE(IsMaximal(g, result));
}

TEST(ArwTest, OrderingGreedyArwExact) {
  Rng rng(3);
  const StaticGraph g = ChungLuPowerLaw(800, 2.4, 6.0, &rng).ToStatic();
  ArwOptions options;
  options.iterations = 400;
  const size_t greedy = GreedyMis(g).size();
  const size_t arw = ArwMis(g, options).size();
  const ExactMisResult exact = SolveExactMis(g);
  ASSERT_TRUE(exact.solved);
  EXPECT_LE(greedy, arw + 2);  // ARW starts from greedy; allow search noise.
  EXPECT_GE(arw, greedy);
  EXPECT_GE(exact.solution.size(), arw);
}

}  // namespace
}  // namespace dynmis
