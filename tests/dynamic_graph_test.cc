// Unit tests for the DynamicGraph substrate: id stability, O(1) list
// integrity across insert/delete cascades, and recycling behaviour.

#include "src/graph/dynamic_graph.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

TEST(DynamicGraphTest, StartsEmpty) {
  DynamicGraph g;
  EXPECT_EQ(g.NumVertices(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_EQ(g.VertexCapacity(), 0);
}

TEST(DynamicGraphTest, ConstructorCreatesIsolatedVertices) {
  DynamicGraph g(5);
  EXPECT_EQ(g.NumVertices(), 5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.IsVertexAlive(v));
    EXPECT_EQ(g.Degree(v), 0);
  }
}

TEST(DynamicGraphTest, AddEdgeUpdatesDegreesAndAdjacency) {
  DynamicGraph g(4);
  const EdgeId e = g.AddEdge(0, 1);
  EXPECT_TRUE(g.IsEdgeAlive(e));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Other(e, 0), 1);
  EXPECT_EQ(g.Other(e, 1), 0);
}

TEST(DynamicGraphTest, RemoveEdgeRestoresState) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  const EdgeId e = g.AddEdge(1, 2);
  g.RemoveEdge(e);
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Degree(2), 0);
}

TEST(DynamicGraphTest, RemoveEdgeBetween) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.RemoveEdgeBetween(1, 0));
  EXPECT_FALSE(g.RemoveEdgeBetween(1, 0));
  EXPECT_EQ(g.NumEdges(), 0);
}

TEST(DynamicGraphTest, RemoveVertexDropsIncidentEdges) {
  DynamicGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.RemoveVertex(0);
  EXPECT_FALSE(g.IsVertexAlive(0));
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Degree(2), 1);
  EXPECT_EQ(g.Degree(3), 0);
}

TEST(DynamicGraphTest, VertexIdsAreRecycled) {
  DynamicGraph g(3);
  g.RemoveVertex(1);
  const VertexId v = g.AddVertex();
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(g.IsVertexAlive(1));
  EXPECT_EQ(g.Degree(1), 0);
  EXPECT_EQ(g.VertexCapacity(), 3);
}

TEST(DynamicGraphTest, QueuedVertexIdsForceAllocation) {
  DynamicGraph g(2);
  // Growth: forcing id 5 materializes ids 2..4 as dead, free-listed gaps.
  g.QueueVertexId(5);
  EXPECT_EQ(g.AddVertex(), 5);
  EXPECT_TRUE(g.IsVertexAlive(5));
  EXPECT_EQ(g.VertexCapacity(), 6);
  EXPECT_EQ(g.NumVertices(), 3);
  for (VertexId gap = 2; gap <= 4; ++gap) EXPECT_FALSE(g.IsVertexAlive(gap));

  // Recycling: a freed id can be re-forced, pulling it from the free list.
  g.RemoveVertex(1);
  g.QueueVertexId(1);
  EXPECT_EQ(g.AddVertex(), 1);
  EXPECT_TRUE(g.IsVertexAlive(1));

  // FIFO: queued ids are consumed in order, then allocation reverts to the
  // free list (which still holds exactly the gap ids).
  g.QueueVertexId(3);
  g.QueueVertexId(8);
  EXPECT_EQ(g.AddVertex(), 3);
  EXPECT_EQ(g.AddVertex(), 8);
  const VertexId recycled = g.AddVertex();
  EXPECT_TRUE(recycled == 2 || recycled == 4 || recycled == 6 ||
              recycled == 7);
  EXPECT_EQ(g.AddEdge(5, 1) >= 0, true);
  EXPECT_TRUE(g.HasEdge(5, 1));
}

TEST(DynamicGraphTest, EdgeIdsAreRecycled) {
  DynamicGraph g(4);
  const EdgeId e0 = g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.RemoveEdge(e0);
  const EdgeId e2 = g.AddEdge(2, 3);
  EXPECT_EQ(e2, e0);
  EXPECT_EQ(g.EdgeCapacity(), 2);
}

TEST(DynamicGraphTest, NeighborsAndIncidenceIteration) {
  DynamicGraph g(5);
  g.AddEdge(2, 0);
  g.AddEdge(2, 1);
  g.AddEdge(2, 4);
  std::vector<VertexId> nbrs = g.Neighbors(2);
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{0, 1, 4}));
  int visited = 0;
  g.ForEachIncident(2, [&](VertexId u, EdgeId e) {
    EXPECT_EQ(g.Other(e, 2), u);
    ++visited;
  });
  EXPECT_EQ(visited, 3);
}

TEST(DynamicGraphTest, MaxDegreeTracksChanges) {
  DynamicGraph g(5);
  EXPECT_EQ(g.MaxDegree(), 0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.MaxDegree(), 3);
  g.RemoveVertex(0);
  EXPECT_EQ(g.MaxDegree(), 0);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.MaxDegree(), 1);
}

TEST(DynamicGraphTest, MaxDegreeMatchesBruteForceUnderChurn) {
  // The degree histogram behind the O(1) MaxDegree() must stay exact
  // through arbitrary interleavings of edge and vertex churn.
  Rng rng(31);
  DynamicGraph g(40);
  for (int step = 0; step < 3000; ++step) {
    const int action = static_cast<int>(rng.NextBounded(4));
    const VertexId u =
        static_cast<VertexId>(rng.NextBounded(g.VertexCapacity()));
    const VertexId v =
        static_cast<VertexId>(rng.NextBounded(g.VertexCapacity()));
    if (action == 0 && g.IsVertexAlive(u) && g.IsVertexAlive(v) && u != v &&
        !g.HasEdge(u, v)) {
      g.AddEdge(u, v);
    } else if (action == 1 && g.IsVertexAlive(u) && g.IsVertexAlive(v)) {
      g.RemoveEdgeBetween(u, v);
    } else if (action == 2 && g.NumVertices() < 60) {
      g.AddVertex();
    } else if (action == 3 && g.IsVertexAlive(u) && g.NumVertices() > 5) {
      g.RemoveVertex(u);
    }
    int expected = 0;
    for (VertexId w = 0; w < g.VertexCapacity(); ++w) {
      if (g.IsVertexAlive(w)) expected = std::max(expected, g.Degree(w));
    }
    ASSERT_EQ(g.MaxDegree(), expected) << "step " << step;
  }
}

TEST(DynamicGraphTest, ReservePreventsReallocationAndPreservesState) {
  DynamicGraph g(4);
  g.AddEdge(0, 1);
  g.Reserve(100, 200);
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  for (int i = 0; i < 50; ++i) g.AddVertex();
  g.AddEdge(2, 3);
  EXPECT_EQ(g.NumVertices(), 54);
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_EQ(g.MaxDegree(), 1);
}

TEST(DynamicGraphTest, EdgeListIsSortedPairsOfAliveEdges) {
  DynamicGraph g(4);
  g.AddEdge(3, 1);
  g.AddEdge(0, 2);
  auto edges = g.EdgeList();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(edges,
            (std::vector<std::pair<VertexId, VertexId>>{{0, 2}, {1, 3}}));
}

TEST(DynamicGraphTest, CopyIsIndependent) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  DynamicGraph copy = g;
  copy.AddEdge(1, 2);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(copy.NumEdges(), 2);
}

// Randomized cross-check against a simple set-of-pairs reference model.
TEST(DynamicGraphTest, RandomizedMatchesReferenceModel) {
  Rng rng(42);
  DynamicGraph g(30);
  std::set<std::pair<VertexId, VertexId>> reference;
  std::set<VertexId> alive;
  for (VertexId v = 0; v < 30; ++v) alive.insert(v);

  auto ordered = [](VertexId a, VertexId b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  for (int step = 0; step < 4000; ++step) {
    const int action = static_cast<int>(rng.NextBounded(4));
    if (action == 0 && alive.size() >= 2) {  // Insert random edge.
      auto it = alive.begin();
      std::advance(it, rng.NextBounded(alive.size()));
      VertexId u = *it;
      it = alive.begin();
      std::advance(it, rng.NextBounded(alive.size()));
      VertexId v = *it;
      if (u != v && !reference.count(ordered(u, v))) {
        g.AddEdge(u, v);
        reference.insert(ordered(u, v));
      }
    } else if (action == 1 && !reference.empty()) {  // Delete random edge.
      auto it = reference.begin();
      std::advance(it, rng.NextBounded(reference.size()));
      ASSERT_TRUE(g.RemoveEdgeBetween(it->first, it->second));
      reference.erase(it);
    } else if (action == 2) {  // Insert vertex.
      const VertexId v = g.AddVertex();
      alive.insert(v);
    } else if (!alive.empty()) {  // Delete random vertex.
      auto it = alive.begin();
      std::advance(it, rng.NextBounded(alive.size()));
      const VertexId v = *it;
      g.RemoveVertex(v);
      alive.erase(it);
      for (auto edge_it = reference.begin(); edge_it != reference.end();) {
        if (edge_it->first == v || edge_it->second == v) {
          edge_it = reference.erase(edge_it);
        } else {
          ++edge_it;
        }
      }
    }
    ASSERT_EQ(g.NumEdges(), static_cast<int64_t>(reference.size()));
    ASSERT_EQ(g.NumVertices(), static_cast<int>(alive.size()));
  }
  // Final deep comparison.
  auto edges = g.EdgeList();
  std::sort(edges.begin(), edges.end());
  std::vector<std::pair<VertexId, VertexId>> expected(reference.begin(),
                                                      reference.end());
  EXPECT_EQ(edges, expected);
  for (VertexId v : alive) {
    int expected_degree = 0;
    for (const auto& [a, b] : reference) {
      if (a == v || b == v) ++expected_degree;
    }
    EXPECT_EQ(g.Degree(v), expected_degree);
  }
}

}  // namespace
}  // namespace dynmis
