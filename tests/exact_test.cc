// Exact solver validation: kernelizer soundness (lifted solutions are
// independent and optimal against brute force), branch-and-reduce vs brute
// force across random sweeps, and scalability on power-law instances of the
// kind the Table II/III experiments rely on.

#include "src/static_mis/exact.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/static_mis/brute_force.h"
#include "src/static_mis/greedy.h"
#include "src/static_mis/reductions.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

bool IsIndependent(const StaticGraph& g, const std::vector<VertexId>& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (g.HasEdge(set[i], set[j])) return false;
    }
  }
  return true;
}

TEST(BruteForceTest, KnownSmallCases) {
  EXPECT_EQ(BruteForceAlpha(CompleteGraph(5).ToStatic()), 1);
  EXPECT_EQ(BruteForceAlpha(PathGraph(5).ToStatic()), 3);
  EXPECT_EQ(BruteForceAlpha(CycleGraph(5).ToStatic()), 2);
  EXPECT_EQ(BruteForceAlpha(StarGraph(7).ToStatic()), 7);
  EXPECT_EQ(BruteForceAlpha(Hypercube(3).ToStatic()), 4);
  EXPECT_EQ(BruteForceAlpha(StaticGraph(0, {})), 0);
}

TEST(KernelizerTest, PathIsFullyReduced) {
  Kernelizer kernelizer(PathGraph(7).ToStatic());
  kernelizer.Run();
  EXPECT_EQ(kernelizer.NumAliveVertices(), 0);
  EXPECT_EQ(kernelizer.AlphaOffset(), 4);
  const std::vector<VertexId> solution = kernelizer.Lift({});
  EXPECT_EQ(solution.size(), 4u);
  EXPECT_TRUE(IsIndependent(PathGraph(7).ToStatic(), solution));
}

TEST(KernelizerTest, CycleFoldsToOptimal) {
  // C6: alpha = 3, reachable purely via degree-2 folds.
  const StaticGraph g = CycleGraph(6).ToStatic();
  Kernelizer kernelizer(g);
  kernelizer.Run();
  EXPECT_EQ(kernelizer.NumAliveVertices(), 0);
  const std::vector<VertexId> solution = kernelizer.Lift({});
  EXPECT_EQ(solution.size(), 3u);
  EXPECT_TRUE(IsIndependent(g, solution));
}

TEST(KernelizerTest, LiftedSolutionsAreOptimalOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const int n = 10 + static_cast<int>(rng.NextBounded(15));
    const StaticGraph g =
        ErdosRenyiGnm(n, static_cast<int64_t>(n * 1.4), &rng).ToStatic();
    Kernelizer kernelizer(g);
    kernelizer.Run();
    const StaticGraph kernel = kernelizer.Kernel();
    // Solve the kernel by brute force and lift.
    ASSERT_LE(kernel.NumVertices(), 64);
    std::vector<VertexId> kernel_solution;
    for (VertexId v : BruteForceMis(kernel)) {
      kernel_solution.push_back(kernel.OriginalId(v));
    }
    const std::vector<VertexId> lifted = kernelizer.Lift(kernel_solution);
    EXPECT_TRUE(IsIndependent(g, lifted)) << "seed " << seed;
    EXPECT_EQ(static_cast<int>(lifted.size()), BruteForceAlpha(g))
        << "seed " << seed;
  }
}

TEST(ExactTest, MatchesBruteForceOnRandomSweep) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 7);
    const int n = 8 + static_cast<int>(rng.NextBounded(25));
    const double density = 0.5 + rng.NextDouble() * 2.0;
    const StaticGraph g =
        ErdosRenyiGnm(n, static_cast<int64_t>(n * density), &rng).ToStatic();
    const ExactMisResult result = SolveExactMis(g);
    ASSERT_TRUE(result.solved) << "seed " << seed;
    EXPECT_TRUE(IsIndependent(g, result.solution)) << "seed " << seed;
    EXPECT_EQ(static_cast<int>(result.solution.size()), BruteForceAlpha(g))
        << "seed " << seed << " n=" << n;
  }
}

TEST(ExactTest, SpecialFamilies) {
  // alpha(K'_n) = n(n-1)/2 (one subdivision vertex per original edge).
  const StaticGraph kp5 = SubdivideEdges(CompleteGraph(5)).ToStatic();
  const ExactMisResult r = SolveExactMis(kp5);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.solution.size(), 10u);
  // alpha(Q_4) = 8 (even-weight vertices).
  const ExactMisResult q = SolveExactMis(Hypercube(4).ToStatic());
  ASSERT_TRUE(q.solved);
  EXPECT_EQ(q.solution.size(), 8u);
}

TEST(ExactTest, SolvesMidSizePowerLawGraphs) {
  Rng rng(42);
  const StaticGraph g = ChungLuPowerLaw(3000, 2.3, 8.0, &rng).ToStatic();
  const ExactMisResult result = SolveExactMis(g);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(IsIndependent(g, result.solution));
  // Sanity: exact is at least as large as greedy.
  EXPECT_GE(result.solution.size(), GreedyMis(g).size());
}

TEST(ExactTest, BudgetExhaustionIsReported) {
  Rng rng(11);
  const StaticGraph g = ErdosRenyiGnm(200, 3000, &rng).ToStatic();
  ExactMisOptions options;
  options.max_nodes = 3;
  const ExactMisResult result = SolveExactMis(g, options);
  EXPECT_FALSE(result.solved);
}

}  // namespace
}  // namespace dynmis
