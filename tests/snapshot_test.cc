// Snapshot round-trip property tests: for every registered maintainer, a
// random churn prefix followed by save -> load into a fresh engine must
// reproduce the identical solution set and pass full consistency checks;
// for the core swap maintainers the restored engine must additionally
// behave *identically* on a shared update suffix (same solutions, same
// recycled vertex ids) and must restore without any recomputation —
// verified by the MisState MoveIn/MoveOut op counter, which stays at zero
// across LoadState. Corrupted, truncated, version-bumped and
// unknown-algorithm snapshots must be rejected with a structured error.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dynmis/dynmis.h"
#include "gtest/gtest.h"
#include "src/core/k_swap.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/io/atomic_file.h"
#include "src/util/faultfs.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::IsMaximalIndependentSet;

UpdateStreamOptions ChurnOptions(uint64_t seed) {
  UpdateStreamOptions options;
  options.edge_op_fraction = 0.6;  // Heavy vertex churn: ids get recycled.
  options.insert_fraction = 0.5;
  options.seed = seed;
  return options;
}

std::unique_ptr<MisEngine> MakeChurnedEngine(const std::string& name,
                                             uint64_t seed, int updates) {
  Rng rng(2024);
  const EdgeListGraph base = ErdosRenyiGnm(60, 150, &rng);
  auto engine = MisEngine::Create(base, name);
  if (engine == nullptr) return nullptr;
  engine->Initialize();
  UpdateStreamGenerator gen(ChurnOptions(seed));
  for (int i = 0; i < updates; ++i) {
    engine->Apply(gen.Next(engine->graph()));
  }
  return engine;
}

std::string SaveToString(const MisEngine& engine) {
  std::ostringstream out;
  const SnapshotStatus status = engine.SaveSnapshot(out);
  EXPECT_TRUE(status.ok) << status.message;
  return std::move(out).str();
}

std::unique_ptr<MisEngine> LoadFromString(const std::string& blob,
                                          SnapshotStatus* status) {
  std::istringstream in(blob);
  return MisEngine::LoadSnapshot(in, status);
}

std::vector<VertexId> SortedSolution(const MisEngine& engine) {
  std::vector<VertexId> solution = engine.Solution();
  std::sort(solution.begin(), solution.end());
  return solution;
}

// The state-transition op counter and consistency hook of the core
// maintainers, reached through the facade. Returns -1 for non-core types.
int64_t StateTransitionOps(const DynamicMisMaintainer& maintainer) {
  if (auto* one = dynamic_cast<const DyOneSwap*>(&maintainer)) {
    return one->StateTransitionOps();
  }
  if (auto* two = dynamic_cast<const DyTwoSwap*>(&maintainer)) {
    return two->StateTransitionOps();
  }
  if (auto* k = dynamic_cast<const KSwapMaintainer*>(&maintainer)) {
    return k->StateTransitionOps();
  }
  return -1;
}

void CheckCoreConsistency(const DynamicMisMaintainer& maintainer) {
  if (auto* one = dynamic_cast<const DyOneSwap*>(&maintainer)) {
    one->CheckConsistency();
  } else if (auto* two = dynamic_cast<const DyTwoSwap*>(&maintainer)) {
    two->CheckConsistency();
  } else if (auto* k = dynamic_cast<const KSwapMaintainer*>(&maintainer)) {
    k->CheckConsistency();
  }
}

TEST(SnapshotTest, RoundTripEveryRegisteredMaintainer) {
  const std::vector<std::string> names =
      MaintainerRegistry::Global().ListNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    auto engine = MakeChurnedEngine(name, /*seed=*/7, /*updates=*/400);
    ASSERT_NE(engine, nullptr) << name;
    const std::string blob = SaveToString(*engine);
    ASSERT_FALSE(blob.empty()) << name;

    SnapshotStatus status;
    auto loaded = LoadFromString(blob, &status);
    ASSERT_NE(loaded, nullptr) << name << ": " << status.message;
    EXPECT_EQ(SortedSolution(*loaded), SortedSolution(*engine)) << name;

    const EngineStats before = engine->Stats();
    const EngineStats after = loaded->Stats();
    EXPECT_EQ(after.algorithm, before.algorithm) << name;
    EXPECT_EQ(after.num_vertices, before.num_vertices) << name;
    EXPECT_EQ(after.num_edges, before.num_edges) << name;
    EXPECT_EQ(after.solution_size, before.solution_size) << name;
    EXPECT_EQ(after.updates_applied, before.updates_applied) << name;

    EXPECT_TRUE(IsMaximalIndependentSet(loaded->graph(), loaded->Solution()))
        << name;
    CheckCoreConsistency(loaded->maintainer());
  }
}

TEST(SnapshotTest, CoreMaintainersRestoreWithoutRecompute) {
  for (const std::string name :
       {"DyOneSwap", "DyTwoSwap", "DyTwoSwap*", "KSwap3"}) {
    auto engine = MakeChurnedEngine(name, /*seed=*/13, /*updates=*/500);
    ASSERT_NE(engine, nullptr) << name;
    const std::string blob = SaveToString(*engine);

    SnapshotStatus status;
    auto loaded = LoadFromString(blob, &status);
    ASSERT_NE(loaded, nullptr) << name << ": " << status.message;
    // LoadState restores the flat arrays verbatim: zero MoveIn/MoveOut
    // transitions means no Initialize pass and no swap-restoration ran —
    // restore is O(state), never a recompute.
    EXPECT_EQ(StateTransitionOps(loaded->maintainer()), 0) << name;
    CheckCoreConsistency(loaded->maintainer());
  }
}

TEST(SnapshotTest, CoreMaintainersResumeIdenticallyAfterRestore) {
  for (const std::string name :
       {"DyOneSwap", "DyTwoSwap", "DyTwoSwap*", "KSwap2", "KSwap3"}) {
    auto engine = MakeChurnedEngine(name, /*seed=*/19, /*updates=*/400);
    ASSERT_NE(engine, nullptr) << name;
    SnapshotStatus status;
    auto loaded = LoadFromString(SaveToString(*engine), &status);
    ASSERT_NE(loaded, nullptr) << name << ": " << status.message;

    // One shared suffix, pre-drawn against the snapshot-time graph; both
    // engines must stay in lockstep: same solutions and — because the
    // graph's free lists travel with the snapshot — the same recycled ids
    // for inserted vertices.
    const std::vector<GraphUpdate> suffix =
        MakeUpdateSequence(engine->graph(), 300, ChurnOptions(/*seed=*/23));
    for (size_t i = 0; i < suffix.size(); ++i) {
      const UpdateResult a = engine->Apply(suffix[i]);
      const UpdateResult b = loaded->Apply(suffix[i]);
      ASSERT_EQ(b.new_vertices, a.new_vertices) << name << " op " << i;
      if (i % 25 == 0) {
        ASSERT_EQ(SortedSolution(*loaded), SortedSolution(*engine))
            << name << " op " << i;
      }
    }
    EXPECT_EQ(SortedSolution(*loaded), SortedSolution(*engine)) << name;
    CheckCoreConsistency(loaded->maintainer());
    CheckCoreConsistency(engine->maintainer());
  }
}

TEST(SnapshotTest, LazyModeRoundTripsThroughTheFallbackSections) {
  // Lazy collection keeps no intrusive lists; the "mis" section then carries
  // only status/count. Exercise it through a config (not an alias string)
  // to cover the parameter-match validation on load.
  Rng rng(11);
  const EdgeListGraph base = ErdosRenyiGnm(50, 120, &rng);
  MaintainerConfig config("DyTwoSwap-lazy");
  auto engine = MisEngine::Create(base, config);
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  UpdateStreamGenerator gen(ChurnOptions(31));
  for (int i = 0; i < 300; ++i) engine->Apply(gen.Next(engine->graph()));

  SnapshotStatus status;
  auto loaded = LoadFromString(SaveToString(*engine), &status);
  ASSERT_NE(loaded, nullptr) << status.message;
  EXPECT_EQ(SortedSolution(*loaded), SortedSolution(*engine));
  EXPECT_EQ(StateTransitionOps(loaded->maintainer()), 0);
}

TEST(SnapshotTest, EmptyEngineRoundTrips) {
  EdgeListGraph base;  // No vertices, no edges.
  auto engine = MisEngine::Create(base, "DyTwoSwap");
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  SnapshotStatus status;
  auto loaded = LoadFromString(SaveToString(*engine), &status);
  ASSERT_NE(loaded, nullptr) << status.message;
  EXPECT_EQ(loaded->SolutionSize(), 0);
  EXPECT_EQ(loaded->Stats().num_vertices, 0);
}

TEST(SnapshotTest, RejectsCorruptedHeadersAndTruncatedFiles) {
  auto engine = MakeChurnedEngine("DyTwoSwap", /*seed=*/5, /*updates=*/200);
  ASSERT_NE(engine, nullptr);
  const std::string blob = SaveToString(*engine);
  ASSERT_GT(blob.size(), 64u);

  {
    // Bad magic.
    std::string bad = blob;
    bad[0] ^= 0x5a;
    SnapshotStatus status;
    EXPECT_EQ(LoadFromString(bad, &status), nullptr);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.message.find("magic"), std::string::npos)
        << status.message;
  }
  {
    // Unsupported version (bytes 8..11, little-endian).
    std::string bad = blob;
    bad[8] = 0x63;
    SnapshotStatus status;
    EXPECT_EQ(LoadFromString(bad, &status), nullptr);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.message.find("version"), std::string::npos)
        << status.message;
  }
  {
    // Truncation at a spread of byte lengths: never a crash, always a
    // structured error.
    for (size_t len : {size_t{0}, size_t{4}, size_t{11}, blob.size() / 4,
                       blob.size() / 2, blob.size() - 1}) {
      SnapshotStatus status;
      EXPECT_EQ(LoadFromString(blob.substr(0, len), &status), nullptr)
          << "length " << len;
      EXPECT_FALSE(status.ok) << "length " << len;
      EXPECT_FALSE(status.message.empty()) << "length " << len;
    }
  }
  {
    // Single-bit corruption across the payload is caught by the per-section
    // CRC before any content is interpreted.
    for (size_t offset = 20; offset < blob.size(); offset += 977) {
      std::string bad = blob;
      bad[offset] ^= 0x01;
      SnapshotStatus status;
      EXPECT_EQ(LoadFromString(bad, &status), nullptr) << "offset " << offset;
      EXPECT_FALSE(status.ok) << "offset " << offset;
    }
  }
}

TEST(SnapshotTest, RejectsUnknownAlgorithmAndMissingSections) {
  {
    SnapshotWriter w;
    w.BeginSection("engine");
    w.PutString("NoSuchMaintainer");
    w.PutString("NoSuchMaintainer");
    w.PutI32(2);
    w.PutU8(0);
    w.PutU8(0);
    w.PutI32(1);
    w.PutI64(0);
    w.PutDouble(0);
    w.EndSection();
    std::ostringstream out;
    ASSERT_TRUE(w.WriteTo(out).ok);
    SnapshotStatus status;
    EXPECT_EQ(LoadFromString(std::move(out).str(), &status), nullptr);
    EXPECT_NE(status.message.find("unknown algorithm"), std::string::npos)
        << status.message;
  }
  {
    // A valid engine section but no graph section.
    SnapshotWriter w;
    w.BeginSection("engine");
    w.PutString("DyTwoSwap");
    w.PutString("DyTwoSwap");
    w.PutI32(2);
    w.PutU8(0);
    w.PutU8(0);
    w.PutI32(1);
    w.PutI64(0);
    w.PutDouble(0);
    w.EndSection();
    std::ostringstream out;
    ASSERT_TRUE(w.WriteTo(out).ok);
    SnapshotStatus status;
    EXPECT_EQ(LoadFromString(std::move(out).str(), &status), nullptr);
    EXPECT_NE(status.message.find("missing section"), std::string::npos)
        << status.message;
  }
}

TEST(SnapshotTest, RejectsSemanticallyCorruptMaintainerState) {
  // A CRC-valid snapshot whose graph is fine but whose "mis" section marks
  // both endpoints of an edge as solution members: LoadSnapshot must reject
  // it during MisState validation, not abort (or loop) in a later update.
  SnapshotWriter w;
  w.BeginSection("engine");
  w.PutString("DyTwoSwap");
  w.PutString("DyTwoSwap");
  w.PutI32(2);
  w.PutU8(0);
  w.PutU8(0);
  w.PutI32(1);
  w.PutI64(0);
  w.PutDouble(0);
  w.EndSection();
  w.BeginSection("graph");
  w.PutI64(2);                    // num_vertices
  w.PutI64(1);                    // num_edges
  w.PutI32(2);                    // vertex capacity
  w.PutI32(1);                    // edge capacity
  w.PutI32Array({0, 0});          // heads
  w.PutI32Array({1, 1});          // degrees
  w.PutI32Array({0, 1, -1, -1});  // edge (0, 1), end of both chains
  w.PutI32Array({-1, -1});        // edge_prev
  w.PutI32Array({});              // free vertices
  w.PutI32Array({});              // free edges
  w.EndSection();
  w.BeginSection("mis");
  w.PutI32(2);                         // k
  w.PutU8(0);                          // eager
  w.PutI64(2);                         // |I| = 2 — adjacent pair!
  w.PutU8Array({1, 1});                // status
  w.PutI32Array({0, 0});               // count
  w.PutI32Array({-1, -1});             // inb_head
  w.PutI32Array({-1, -1});             // bar1_head
  w.PutI32Array({0, 0});               // bar1_size
  w.PutI32Array({-1, -1});             // bar1_edge
  w.PutI32Array({-1, -1, -1, -1});     // inb_links
  w.PutI32Array({-1, -1, -1, -1});     // bar1_links
  w.PutI32Array({-1, -1});             // bar2_head
  w.PutI32Array({-1, -1});             // bar2_edge0
  w.PutI32Array({-1, -1});             // bar2_edge1
  w.PutI32Array({-1, -1, -1, -1});     // bar2_links
  w.EndSection();
  std::ostringstream out;
  ASSERT_TRUE(w.WriteTo(out).ok);
  SnapshotStatus status;
  EXPECT_EQ(LoadFromString(std::move(out).str(), &status), nullptr);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("independent"), std::string::npos)
      << status.message;
}

TEST(SnapshotTest, RejectsNonMaximalMaintainerState) {
  // Same valid 2-vertex graph, but an all-empty solution: no maintainer
  // ever saves a non-maximal state, and a restored engine would never
  // repair it (updates only react to changes), so load must reject it.
  SnapshotWriter w;
  w.BeginSection("engine");
  w.PutString("DyTwoSwap");
  w.PutString("DyTwoSwap");
  w.PutI32(2);
  w.PutU8(0);
  w.PutU8(0);
  w.PutI32(1);
  w.PutI64(0);
  w.PutDouble(0);
  w.EndSection();
  w.BeginSection("graph");
  w.PutI64(2);
  w.PutI64(1);
  w.PutI32(2);
  w.PutI32(1);
  w.PutI32Array({0, 0});
  w.PutI32Array({1, 1});
  w.PutI32Array({0, 1, -1, -1});
  w.PutI32Array({-1, -1});
  w.PutI32Array({});
  w.PutI32Array({});
  w.EndSection();
  w.BeginSection("mis");
  w.PutI32(2);
  w.PutU8(0);
  w.PutI64(0);                      // Empty solution on a nonempty graph.
  w.PutU8Array({0, 0});
  w.PutI32Array({0, 0});
  w.PutI32Array({-1, -1});
  w.PutI32Array({-1, -1});
  w.PutI32Array({0, 0});
  w.PutI32Array({-1, -1});
  w.PutI32Array({-1, -1, -1, -1});
  w.PutI32Array({-1, -1, -1, -1});
  w.PutI32Array({-1, -1});
  w.PutI32Array({-1, -1});
  w.PutI32Array({-1, -1});
  w.PutI32Array({-1, -1, -1, -1});
  w.EndSection();
  std::ostringstream out;
  ASSERT_TRUE(w.WriteTo(out).ok);
  SnapshotStatus status;
  EXPECT_EQ(LoadFromString(std::move(out).str(), &status), nullptr);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("maximal"), std::string::npos)
      << status.message;
}

TEST(SnapshotTest, RejectsStructurallyInvalidGraphSections) {
  // A CRC-valid snapshot whose graph arrays are internally inconsistent
  // (here: a degree sum that cannot match the edge count) must fail the
  // structural validation, not crash.
  SnapshotWriter w;
  w.BeginSection("engine");
  w.PutString("DyTwoSwap");
  w.PutString("DyTwoSwap");
  w.PutI32(2);
  w.PutU8(0);
  w.PutU8(0);
  w.PutI32(1);
  w.PutI64(0);
  w.PutDouble(0);
  w.EndSection();
  w.BeginSection("graph");
  w.PutI64(2);                          // num_vertices
  w.PutI64(1);                          // num_edges
  w.PutI32(2);                          // vertex capacity
  w.PutI32(1);                          // edge capacity
  w.PutI32Array({0, 0});                // heads: both claim edge 0
  w.PutI32Array({5, 5});                // degrees: impossible sum
  w.PutI32Array({0, 1, -1, -1});        // one edge (0, 1), no next links
  w.PutI32Array({-1, -1});              // edge_prev
  w.PutI32Array({});                    // free vertices
  w.PutI32Array({});                    // free edges
  w.EndSection();
  std::ostringstream out;
  ASSERT_TRUE(w.WriteTo(out).ok);
  SnapshotStatus status;
  EXPECT_EQ(LoadFromString(std::move(out).str(), &status), nullptr);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("graph"), std::string::npos)
      << status.message;
}

// The SNAPSHOT verb publishes through io::WriteFileAtomic (tmp + fsync +
// rename). A crash between the tmp write and its rename — scripted here
// with faultfs's `torn` mode — must leave the previously published
// snapshot byte-identical and only the stale .tmp behind, never a
// half-written file under the published name.
TEST(AtomicPublishDeathTest, TornRenameLeavesPublishedSnapshotIntact) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = ::testing::TempDir() + "/snap_torn_publish";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/state.snap";
  std::string error;
  ASSERT_TRUE(io::WriteFileAtomic(path, "generation-1", &error)) << error;
  EXPECT_EXIT(
      {
        std::string plan_error;
        if (!faultfs::ArmPlan("rename:torn~state.snap", &plan_error)) {
          _exit(3);
        }
        io::WriteFileAtomic(path, "generation-2", &plan_error);
        _exit(4);  // Unreachable: torn kills the process pre-rename.
      },
      ::testing::ExitedWithCode(faultfs::kCrashExitCode), "");
  std::ifstream in(path, std::ios::binary);
  std::stringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str(), "generation-1");
  // The in-flight generation is parked under .tmp, invisible to readers.
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
}

}  // namespace
}  // namespace dynmis
