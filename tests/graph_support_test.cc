// StaticGraph, edge-list IO, degree statistics, update streams, datasets
// and utility formatting.

#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"
#include "src/graph/datasets.h"
#include "src/graph/degree_stats.h"
#include "src/graph/edge_list_io.h"
#include "src/graph/generators.h"
#include "src/graph/static_graph.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

DynamicGraph MediumRandomGraph() {
  Rng rng(44);
  return ErdosRenyiGnm(25, 50, &rng).ToDynamic();
}

TEST(StaticGraphTest, BuildsSortedCsr) {
  const StaticGraph g(4, {{0, 1}, {2, 0}, {3, 0}});
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.MaxDegree(), 3);
  const auto nbrs = g.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(StaticGraphTest, FromDynamicCompactsAliveVertices) {
  DynamicGraph g(5);
  g.AddEdge(1, 3);
  g.AddEdge(3, 4);
  g.RemoveVertex(0);
  const StaticGraph s = StaticGraph::FromDynamic(g);
  EXPECT_EQ(s.NumVertices(), 4);
  EXPECT_EQ(s.NumEdges(), 2);
  // Solutions translate back to dynamic ids.
  std::vector<VertexId> all;
  for (VertexId v = 0; v < s.NumVertices(); ++v) all.push_back(v);
  const std::vector<VertexId> originals = s.ToOriginalIds(all);
  EXPECT_EQ(originals, (std::vector<VertexId>{1, 2, 3, 4}));
}

TEST(StaticGraphTest, InducedSubgraphComposesOriginalIds) {
  DynamicGraph g(6);
  g.AddEdge(2, 3);
  g.AddEdge(3, 5);
  g.RemoveVertex(0);
  const StaticGraph s = StaticGraph::FromDynamic(g);  // ids 1..5 -> 0..4.
  const StaticGraph sub = s.InducedSubgraph({1, 2, 4});  // = {2, 3, 5}.
  EXPECT_EQ(sub.NumVertices(), 3);
  EXPECT_EQ(sub.NumEdges(), 2);
  EXPECT_EQ(sub.OriginalId(0), 2);
  EXPECT_EQ(sub.OriginalId(2), 5);
}

TEST(EdgeListIoTest, ParsesSnapFormat) {
  const std::string text =
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "# Nodes: 4 Edges: 4\n"
      "10\t20\n"
      "20 10\n"   // Duplicate in the other orientation.
      "20\t30\n"
      "30\t30\n"  // Self loop: dropped.
      "40 10 # trailing comment\n";
  const auto g = ParseEdgeList(text);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->n, 4);
  EXPECT_EQ(g->NumEdges(), 3);
}

TEST(EdgeListIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseEdgeList("1 2 3\n").has_value());
  EXPECT_FALSE(ParseEdgeList("1\n").has_value());
  EXPECT_TRUE(ParseEdgeList("").has_value());
}

TEST(EdgeListIoTest, SaveLoadRoundTrip) {
  Rng rng(12);
  const EdgeListGraph g = ErdosRenyiGnm(30, 60, &rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dynmis_io_test.txt").string();
  ASSERT_TRUE(SaveEdgeList(g, path));
  const auto loaded = LoadEdgeList(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->n, g.n);
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
}

TEST(EdgeListIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadEdgeList("/nonexistent/dynmis.txt").has_value());
}

TEST(DegreeStatsTest, CountsAndBuckets) {
  const DegreeStats stats = ComputeDegreeStats(StarGraph(7).ToStatic());
  EXPECT_EQ(stats.n, 8);
  EXPECT_EQ(stats.m, 7);
  EXPECT_EQ(stats.max_degree, 7);
  EXPECT_EQ(stats.min_degree, 1);
  EXPECT_EQ(stats.counts[1], 7);
  EXPECT_EQ(stats.counts[7], 1);
  // Buckets: [1,2) -> 7 leaves; [4,8) -> hub.
  EXPECT_EQ(stats.bucket_counts[0], 7);
  EXPECT_EQ(stats.bucket_counts[2], 1);
}

TEST(UpdateStreamTest, SequencesAreReplayable) {
  Rng rng(3);
  const EdgeListGraph base = ErdosRenyiGnm(30, 60, &rng);
  UpdateStreamOptions options;
  options.seed = 17;
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(base.ToDynamic(), 300, options);
  EXPECT_EQ(updates.size(), 300u);
  // Replaying on two fresh copies yields identical final graphs.
  DynamicGraph a = base.ToDynamic();
  DynamicGraph b = base.ToDynamic();
  for (const GraphUpdate& update : updates) {
    const VertexId va = ApplyUpdate(&a, update);
    const VertexId vb = ApplyUpdate(&b, update);
    ASSERT_EQ(va, vb);  // Deterministic id allocation keeps copies aligned.
  }
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
}

TEST(UpdateStreamTest, RespectsEdgeFraction) {
  DynamicGraph g = MediumRandomGraph();
  UpdateStreamOptions options;
  options.seed = 5;
  options.edge_op_fraction = 1.0;  // Edge ops only.
  UpdateStreamGenerator gen(options);
  for (int i = 0; i < 200; ++i) {
    const GraphUpdate update = gen.Next(g);
    ASSERT_TRUE(update.kind == UpdateKind::kInsertEdge ||
                update.kind == UpdateKind::kDeleteEdge);
    ApplyUpdate(&g, update);
  }
}

TEST(UpdateStreamTest, HandlesEmptyGraph) {
  DynamicGraph g(0);
  UpdateStreamOptions options;
  options.seed = 9;
  UpdateStreamGenerator gen(options);
  // The only valid first update is a vertex insertion.
  const GraphUpdate update = gen.Next(g);
  EXPECT_EQ(update.kind, UpdateKind::kInsertVertex);
  ApplyUpdate(&g, update);
  EXPECT_EQ(g.NumVertices(), 1);
}

TEST(DatasetsTest, RegistryIsComplete) {
  EXPECT_EQ(EasyDatasets().size(), 13u);
  EXPECT_EQ(HardDatasets().size(), 9u);
  EXPECT_NE(FindDataset("hollywood"), nullptr);
  EXPECT_NE(FindDataset("uk-2007"), nullptr);
  EXPECT_EQ(FindDataset("no-such-graph"), nullptr);
}

TEST(DatasetsTest, GenerationIsDeterministicAndRoughlyToSpec) {
  const DatasetSpec* spec = FindDataset("Epinions");
  ASSERT_NE(spec, nullptr);
  const EdgeListGraph a = GenerateDataset(*spec);
  const EdgeListGraph b = GenerateDataset(*spec);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.n, spec->n);
  EXPECT_GT(a.AverageDegree(), spec->avg_degree * 0.4);
  EXPECT_LT(a.AverageDegree(), spec->avg_degree * 1.8);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-42000), "-42,000");
  EXPECT_EQ(FormatPercent(0.99874), "99.87%");
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(uint64_t{3} << 20), "3.0 MiB");
}

TEST(RandomTest, BoundedIsUniformish) {
  Rng rng(123);
  int histogram[10] = {0};
  for (int i = 0; i < 100000; ++i) ++histogram[rng.NextBounded(10)];
  for (int count : histogram) {
    EXPECT_GT(count, 9000);
    EXPECT_LT(count, 11000);
  }
}

TEST(RandomTest, SeedDeterminism) {
  Rng a(1);
  Rng b(1);
  Rng c(2);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

}  // namespace
}  // namespace dynmis
