// Direct unit tests of MisState: count bookkeeping, intrusive tightness
// lists, transition logging, edge hooks, and eager/lazy agreement.

#include "src/core/solution.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(MisStateTest, MoveInUpdatesCounts) {
  DynamicGraph g = StarGraph(3).ToDynamic();  // Hub 0, leaves 1..3.
  MisState state(&g, /*k=*/1, /*lazy=*/false);
  state.MoveIn(0);
  EXPECT_TRUE(state.InSolution(0));
  EXPECT_EQ(state.SolutionSize(), 1);
  for (VertexId leaf : {1, 2, 3}) {
    EXPECT_EQ(state.Count(leaf), 1);
    EXPECT_EQ(state.OwnerOf(leaf), 0);
  }
  EXPECT_EQ(state.Bar1Size(0), 3);
  std::vector<VertexId> bar1;
  state.CollectBar1(0, &bar1);
  EXPECT_EQ(Sorted(bar1), (std::vector<VertexId>{1, 2, 3}));
}

TEST(MisStateTest, MoveOutRestoresState) {
  DynamicGraph g = StarGraph(3).ToDynamic();
  MisState state(&g, 1, false);
  state.MoveIn(0);
  state.MoveOut(0);
  EXPECT_FALSE(state.InSolution(0));
  EXPECT_EQ(state.SolutionSize(), 0);
  EXPECT_EQ(state.Count(0), 0);
  for (VertexId leaf : {1, 2, 3}) EXPECT_EQ(state.Count(leaf), 0);
  state.CheckConsistency(/*expect_maximal=*/false);
}

TEST(MisStateTest, TransitionLogRecordsTightness) {
  DynamicGraph g = PathGraph(3).ToDynamic();  // 0-1-2.
  MisState state(&g, 1, false);
  state.DiscardTransitions();
  state.MoveIn(1);
  std::vector<VertexId> transitions;
  state.DrainTransitions([&](VertexId u) { transitions.push_back(u); });
  EXPECT_EQ(Sorted(transitions), (std::vector<VertexId>{0, 2}));
  transitions.clear();
  state.DrainTransitions([&](VertexId u) { transitions.push_back(u); });
  EXPECT_TRUE(transitions.empty());  // Drained.
}

TEST(MisStateTest, Bar2TrackingWithKTwo) {
  // Square 0-1-2-3-0: solution {0, 2}; vertices 1 and 3 are 2-tight.
  DynamicGraph g = CycleGraph(4).ToDynamic();
  MisState state(&g, /*k=*/2, /*lazy=*/false);
  state.MoveIn(0);
  state.MoveIn(2);
  std::vector<VertexId> bar2;
  state.CollectBar2(0, &bar2);
  EXPECT_EQ(Sorted(bar2), (std::vector<VertexId>{1, 3}));
  std::vector<VertexId> pair;
  state.CollectBar2Pair(0, 2, &pair);
  EXPECT_EQ(Sorted(pair), (std::vector<VertexId>{1, 3}));
  VertexId a, b;
  state.OwnersOf2(1, &a, &b);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 2);
  state.CheckConsistency(/*expect_maximal=*/true);
}

TEST(MisStateTest, EdgeHooksMaintainCounts) {
  DynamicGraph g(4);
  MisState state(&g, 2, false);
  state.MoveIn(0);
  state.MoveIn(1);
  // Connect 2 to both solution vertices.
  EdgeId e1 = g.AddEdge(0, 2);
  state.OnEdgeAdded(e1);
  EXPECT_EQ(state.Count(2), 1);
  EdgeId e2 = g.AddEdge(1, 2);
  state.OnEdgeAdded(e2);
  EXPECT_EQ(state.Count(2), 2);
  state.CheckConsistency(false);
  // Remove one: back to 1-tight, relinked into bar1.
  state.OnEdgeRemoving(e2);
  g.RemoveEdge(e2);
  EXPECT_EQ(state.Count(2), 1);
  EXPECT_EQ(state.OwnerOf(2), 0);
  state.CheckConsistency(false);
}

TEST(MisStateTest, VertexRemovalHookDetaches) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  MisState state(&g, 1, false);
  state.MoveIn(1);
  state.MoveIn(2);
  EXPECT_EQ(state.Count(0), 2);
  state.OnVertexRemoving(0);
  g.RemoveVertex(0);
  EXPECT_EQ(state.SolutionSize(), 2);
  state.CheckConsistency(false);
}

TEST(MisStateTest, BothEndpointsInSolutionTransient) {
  DynamicGraph g(2);
  MisState state(&g, 1, false);
  state.MoveIn(0);
  state.MoveIn(1);
  const EdgeId e = g.AddEdge(0, 1);
  state.OnEdgeAdded(e);  // No-op: caller must resolve.
  state.MoveOut(1);      // Handles the neighbour-in-solution case.
  EXPECT_EQ(state.Count(1), 1);
  EXPECT_EQ(state.OwnerOf(1), 0);
  state.CheckConsistency(true);
}

TEST(MisStateTest, LazyModeAgreesWithEagerOnQueries) {
  Rng rng(17);
  const EdgeListGraph base = ErdosRenyiGnm(30, 70, &rng);
  DynamicGraph g1 = base.ToDynamic();
  DynamicGraph g2 = base.ToDynamic();
  MisState eager(&g1, 2, false);
  MisState lazy(&g2, 2, true);
  // Insert the same greedy-ish solution into both.
  for (VertexId v = 0; v < g1.VertexCapacity(); ++v) {
    if (!eager.InSolution(v) && eager.Count(v) == 0) {
      eager.MoveIn(v);
      lazy.MoveIn(v);
    }
  }
  for (VertexId v = 0; v < g1.VertexCapacity(); ++v) {
    ASSERT_EQ(eager.InSolution(v), lazy.InSolution(v));
    ASSERT_EQ(eager.Count(v), lazy.Count(v));
    if (eager.InSolution(v)) {
      ASSERT_EQ(eager.Bar1Size(v), lazy.Bar1Size(v));
      std::vector<VertexId> be, bl;
      eager.CollectBar1(v, &be);
      lazy.CollectBar1(v, &bl);
      ASSERT_EQ(Sorted(be), Sorted(bl));
      std::vector<VertexId> b2e, b2l;
      eager.CollectBar2(v, &b2e);
      lazy.CollectBar2(v, &b2l);
      ASSERT_EQ(Sorted(b2e), Sorted(b2l));
    } else if (eager.Count(v) == 1) {
      // With a unique solution neighbour, both modes must return it. (For
      // count >= 2 OwnerOf returns an arbitrary solution neighbour and the
      // modes may legitimately differ.)
      ASSERT_EQ(eager.OwnerOf(v), lazy.OwnerOf(v));
    }
  }
}

TEST(MisStateTest, MemoryEagerExceedsLazy) {
  Rng rng(4);
  const EdgeListGraph base = ErdosRenyiGnm(200, 800, &rng);
  DynamicGraph g1 = base.ToDynamic();
  DynamicGraph g2 = base.ToDynamic();
  MisState eager(&g1, 2, false);
  MisState lazy(&g2, 2, true);
  EXPECT_GT(eager.MemoryUsageBytes(), 4 * lazy.MemoryUsageBytes());
}

TEST(MisStateTest, SolutionListsMatchStatus) {
  DynamicGraph g = PathGraph(5).ToDynamic();
  MisState state(&g, 1, false);
  state.MoveIn(0);
  state.MoveIn(2);
  state.MoveIn(4);
  EXPECT_EQ(state.Solution(), (std::vector<VertexId>{0, 2, 4}));
  EXPECT_EQ(state.SolutionSize(), 3);
}

}  // namespace
}  // namespace dynmis
