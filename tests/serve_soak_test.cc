// Server soak with a literal zero-heap-allocation check: after warm-up, a
// steady stream of binary edge updates and queries through a live Server —
// I/O threads, mailboxes, admission batching, response encoding, and the
// client's own read path — must not allocate. This extends the counting
// global-operator-new technique of tests/scratch_reuse_test.cc from the
// maintainer update loops to the whole serving stack. Everything the client
// sends during the measured window is pre-encoded before counting starts,
// so the counter sees only the serving stack (plus this thread's reads).

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "dynmis/serve.h"
#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/serve/binary.h"
#include "src/serve/line_client.h"
#include "src/util/random.h"

namespace {

std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};

}  // namespace

// Counting replacements for the global allocation functions (see
// tests/scratch_reuse_test.cc for the rationale; counting is off outside
// the measured window).
void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t alignment = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(
          alignment, (size + alignment - 1) / alignment * alignment)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dynmis {
namespace serve {
namespace {

EdgeListGraph SoakGraph() {
  Rng rng(31);
  return ErdosRenyiGnm(300, 900, &rng);
}

TEST(ServeSoakTest, SteadyStateServingIsAllocationFree) {
  ServeOptions options;
  options.port = 0;
  options.io_threads = 2;
  options.batch_max_ops = 64;
  options.flush_deadline_us = 1000;
  std::string error;
  auto backend = MakeServingBackend(SoakGraph(), options, &error);
  ASSERT_NE(backend, nullptr) << error;
  Server server(std::move(backend), options);
  ASSERT_TRUE(server.Start(&error)) << error;
  std::thread loop([&server] { server.Run(); });

  // Pure edge churn over a fixed vertex set (vertex inserts allocate by
  // design — a new adjacency list has to come from somewhere).
  DynamicGraph mirror = SoakGraph().ToDynamic();
  UpdateStreamOptions stream;
  stream.edge_op_fraction = 1.0;
  stream.insert_fraction = 0.5;
  stream.seed = 404;
  UpdateStreamGenerator generator(stream);

  // Pre-encode everything: chunks of 64 update frames (one admission batch)
  // with a query frame folded in, and the expected response count per
  // chunk. Nothing is encoded once counting starts.
  constexpr int kChunks = 80;
  constexpr int kOpsPerChunk = 64;
  constexpr int kWarmupChunks = 50;
  std::vector<std::string> chunks(kChunks);
  std::vector<int> responses_expected(kChunks, 0);
  for (int c = 0; c < kChunks; ++c) {
    for (int i = 0; i < kOpsPerChunk; ++i) {
      const GraphUpdate update = generator.Next(mirror);
      ApplyUpdate(&mirror, update);
      AppendUpdateFrame(&chunks[c], update);
      ++responses_expected[c];
    }
    AppendQueryFrame(&chunks[c], 0);
    ++responses_expected[c];
  }

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(client.SendAll("HELLO 2 BIN\n"));
  std::string frame;
  ASSERT_TRUE(client.ReadLine(&frame));
  ASSERT_TRUE(frame.rfind("OK DYNMIS 2 BIN ", 0) == 0) << frame;

  const auto run_chunks = [&](int first, int last) {
    for (int c = first; c < last; ++c) {
      ASSERT_TRUE(client.SendAll(chunks[c]));
      for (int r = 0; r < responses_expected[c]; ++r) {
        ASSERT_TRUE(client.ReadFrame(&frame)) << "chunk " << c;
      }
    }
  };

  // Warm-up: buffers, ring queues, mailbox slots and admission vectors all
  // reach their steady-state capacities.
  run_chunks(0, kWarmupChunks);

  g_allocation_count.store(0);
  g_count_allocations.store(true);
  run_chunks(kWarmupChunks, kChunks);
  g_count_allocations.store(false);
  const int64_t allocations = g_allocation_count.load();

  server.Stop();
  loop.join();
  const ServingMetricsSnapshot metrics = server.MetricsSnapshot();
  EXPECT_GT(metrics.ops_applied, 0);
  EXPECT_EQ(metrics.io_threads, 2);

  EXPECT_EQ(allocations, 0)
      << "serving steady state allocated " << allocations << " times over "
      << (kChunks - kWarmupChunks) * kOpsPerChunk << " ops";
}

}  // namespace
}  // namespace serve
}  // namespace dynmis
