// Update-trace serialization round trips and the deferred-restoration batch
// mode of DyOneSwap/DyTwoSwap (same invariants at batch end, same-or-better
// throughput path).

#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_trace_io.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::HasSwapUpTo;
using testing_util::IsMaximalIndependentSet;

TEST(UpdateTraceIoTest, FormatAndParseRoundTrip) {
  Rng rng(3);
  const EdgeListGraph base = ErdosRenyiGnm(25, 50, &rng);
  UpdateStreamOptions stream;
  stream.seed = 11;
  stream.edge_op_fraction = 0.7;
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(base.ToDynamic(), 200, stream);

  std::string text = "# round trip\n";
  for (const GraphUpdate& u : updates) text += FormatUpdate(u) + "\n";
  const auto parsed = ParseUpdateTrace(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ((*parsed)[i].kind, updates[i].kind) << i;
    EXPECT_EQ((*parsed)[i].u, updates[i].u) << i;
    EXPECT_EQ((*parsed)[i].v, updates[i].v) << i;
    EXPECT_EQ((*parsed)[i].neighbors, updates[i].neighbors) << i;
  }
  // Replay both and compare final graphs.
  DynamicGraph a = base.ToDynamic();
  DynamicGraph b = base.ToDynamic();
  for (const GraphUpdate& u : updates) ApplyUpdate(&a, u);
  for (const GraphUpdate& u : *parsed) ApplyUpdate(&b, u);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
}

TEST(UpdateTraceIoTest, FileRoundTrip) {
  std::vector<GraphUpdate> updates(3);
  updates[0] = {UpdateKind::kInsertEdge, 1, 2, {}};
  updates[1] = {UpdateKind::kInsertVertex, kInvalidVertex, kInvalidVertex,
                {0, 1, 2}};
  updates[2] = {UpdateKind::kDeleteVertex, 0, kInvalidVertex, {}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "dynmis_trace_test.txt")
          .string();
  ASSERT_TRUE(SaveUpdateTrace(updates, path));
  const auto loaded = LoadUpdateTrace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[1].neighbors, (std::vector<VertexId>{0, 1, 2}));
}

TEST(UpdateTraceIoTest, RejectsMalformed) {
  EXPECT_FALSE(ParseUpdateTrace("+e 1\n").has_value());        // Missing arg.
  EXPECT_FALSE(ParseUpdateTrace("+e 1 1\n").has_value());      // Self loop.
  EXPECT_FALSE(ParseUpdateTrace("-v\n").has_value());          // Missing arg.
  EXPECT_FALSE(ParseUpdateTrace("xx 1 2\n").has_value());      // Bad opcode.
  EXPECT_FALSE(ParseUpdateTrace("-e 1 2 3\n").has_value());    // Extra arg.
  EXPECT_FALSE(ParseUpdateTrace("+v 1 -2\n").has_value());     // Negative id.
  EXPECT_TRUE(ParseUpdateTrace("# only a comment\n").has_value());
  EXPECT_TRUE(ParseUpdateTrace("+v\n").has_value());  // Isolated vertex OK.
}

TEST(BatchModeTest, BatchEndsKMaximal) {
  for (const bool two_swap : {false, true}) {
    Rng rng(21);
    const EdgeListGraph base = ErdosRenyiGnm(40, 90, &rng);
    UpdateStreamOptions stream;
    stream.seed = 99;
    const std::vector<GraphUpdate> updates =
        MakeUpdateSequence(base.ToDynamic(), 400, stream);

    DynamicGraph g = base.ToDynamic();
    std::unique_ptr<DynamicMisMaintainer> algo;
    if (two_swap) {
      algo = std::make_unique<DyTwoSwap>(&g);
    } else {
      algo = std::make_unique<DyOneSwap>(&g);
    }
    algo->Initialize({});
    // Apply in blocks of 50.
    for (size_t start = 0; start < updates.size(); start += 50) {
      const auto end = std::min(start + 50, updates.size());
      algo->ApplyBatch(
          {updates.begin() + static_cast<long>(start),
           updates.begin() + static_cast<long>(end)});
      ASSERT_TRUE(IsMaximalIndependentSet(g, algo->Solution()));
      ASSERT_FALSE(HasSwapUpTo(g, algo->Solution(), two_swap ? 2 : 1))
          << "after batch ending at " << end;
    }
  }
}

TEST(BatchModeTest, BatchMatchesPerUpdateQualityClosely) {
  Rng rng(8);
  const EdgeListGraph base = ErdosRenyiGnm(80, 200, &rng);
  UpdateStreamOptions stream;
  stream.seed = 5;
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(base.ToDynamic(), 500, stream);

  DynamicGraph g1 = base.ToDynamic();
  DynamicGraph g2 = base.ToDynamic();
  DyTwoSwap per_update(&g1);
  DyTwoSwap batched(&g2);
  per_update.InitializeEmpty();
  batched.InitializeEmpty();
  for (const GraphUpdate& u : updates) per_update.Apply(u);
  batched.ApplyBatch(updates);
  // Both are 2-maximal on the same final graph; sizes should be within a
  // small factor (identical invariant class).
  EXPECT_NEAR(static_cast<double>(per_update.SolutionSize()),
              static_cast<double>(batched.SolutionSize()),
              0.05 * static_cast<double>(per_update.SolutionSize()) + 2);
}

TEST(BatchModeTest, DefaultImplementationStillWorks) {
  // Maintainers without an override fall back to per-update application.
  Rng rng(13);
  const EdgeListGraph base = ErdosRenyiGnm(30, 60, &rng);
  DynamicGraph g = base.ToDynamic();
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  std::vector<GraphUpdate> empty_batch;
  algo.ApplyBatch(empty_batch);  // No-op must be safe.
  EXPECT_TRUE(IsMaximalIndependentSet(g, algo.Solution()));
}

}  // namespace
}  // namespace dynmis
