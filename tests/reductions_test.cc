// Targeted unit tests for each kernelization rule (degree-0/1, triangle,
// degree-2 fold, domination, unconfined), including lift correctness on
// instances crafted to exercise exactly one rule, plus parameterized
// optimality sweeps of kernel+brute-force against plain brute force.

#include "src/static_mis/reductions.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/static_mis/brute_force.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

bool IsIndependent(const StaticGraph& g, const std::vector<VertexId>& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (g.HasEdge(set[i], set[j])) return false;
    }
  }
  return true;
}

// Solves via kernelize + brute-force-on-kernel + lift.
std::vector<VertexId> KernelSolve(const StaticGraph& g) {
  Kernelizer kernelizer(g);
  kernelizer.Run();
  const StaticGraph kernel = kernelizer.Kernel();
  EXPECT_LE(kernel.NumVertices(), 64) << "kernel too large for this test";
  std::vector<VertexId> kernel_solution;
  for (VertexId v : BruteForceMis(kernel)) {
    kernel_solution.push_back(kernel.OriginalId(v));
  }
  return kernelizer.Lift(kernel_solution);
}

TEST(ReductionsTest, IsolatedVerticesAreTaken) {
  const StaticGraph g(4, {});
  Kernelizer kernelizer(g);
  kernelizer.Run();
  EXPECT_EQ(kernelizer.NumAliveVertices(), 0);
  EXPECT_EQ(kernelizer.Lift({}).size(), 4u);
}

TEST(ReductionsTest, PendantTakesLeafNotHub) {
  // Star: every leaf is a pendant; the hub must be excluded.
  const StaticGraph g = StarGraph(5).ToStatic();
  Kernelizer kernelizer(g);
  kernelizer.Run();
  const std::vector<VertexId> solution = kernelizer.Lift({});
  EXPECT_EQ(solution.size(), 5u);
  EXPECT_TRUE(IsIndependent(g, solution));
  for (VertexId v : solution) EXPECT_NE(v, 0);  // Hub excluded.
}

TEST(ReductionsTest, TriangleDegreeTwoIncludes) {
  // Triangle with a tail: 0-1-2-0 plus 2-3. Vertex with adjacent nbrs is
  // taken.
  const StaticGraph g(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const std::vector<VertexId> solution = KernelSolve(g);
  EXPECT_EQ(solution.size(), 2u);  // alpha = 2 (e.g. {0 or 1, 3}).
  EXPECT_TRUE(IsIndependent(g, solution));
}

TEST(ReductionsTest, DegreeTwoFoldOnPathParity) {
  // Even paths exercise the fold's both-branches: alpha(P_n) = ceil(n/2).
  for (int n = 2; n <= 12; ++n) {
    const StaticGraph g = PathGraph(n).ToStatic();
    const std::vector<VertexId> solution = KernelSolve(g);
    EXPECT_EQ(static_cast<int>(solution.size()), (n + 1) / 2) << "P_" << n;
    EXPECT_TRUE(IsIndependent(g, solution)) << "P_" << n;
  }
}

TEST(ReductionsTest, FoldLiftChoosesEndpointsWhenMergedVertexChosen) {
  // Path 0-1-2 plus pendants on 0 and 2 forcing {0, 2} into the optimum:
  // the fold of vertex 1 must lift to {0, 2}, not {1}.
  const StaticGraph g(5, {{0, 1}, {1, 2}, {0, 3}, {2, 4}});
  const std::vector<VertexId> solution = KernelSolve(g);
  EXPECT_EQ(static_cast<int>(solution.size()), BruteForceAlpha(g));
  EXPECT_TRUE(IsIndependent(g, solution));
}

TEST(ReductionsTest, DominationExcludesSuperset) {
  // N[3] = {0,1,2,3} contains N[0] = {0,1,2} (0 adjacent to 1,2; 3 adjacent
  // to everyone): 3 is dominated and must not survive into the solution
  // when a better choice exists.
  const StaticGraph g(4, {{0, 1}, {0, 2}, {3, 0}, {3, 1}, {3, 2}});
  const std::vector<VertexId> solution = KernelSolve(g);
  EXPECT_EQ(static_cast<int>(solution.size()), BruteForceAlpha(g));
  EXPECT_TRUE(IsIndependent(g, solution));
}

TEST(ReductionsTest, CliquesReduceToSingleton) {
  for (int n : {3, 5, 8, 12}) {
    const std::vector<VertexId> solution =
        KernelSolve(CompleteGraph(n).ToStatic());
    EXPECT_EQ(solution.size(), 1u) << "K_" << n;
  }
}

TEST(ReductionsTest, AlphaOffsetAccountsForFolds) {
  // C6 reduces fully by folds; every fold contributes exactly 1.
  Kernelizer kernelizer(CycleGraph(6).ToStatic());
  kernelizer.Run();
  EXPECT_EQ(kernelizer.AlphaOffset(), 3);
}

struct SweepParam {
  int n;
  double density;
  uint64_t seed;
};

class ReductionsOptimalityTest : public ::testing::TestWithParam<SweepParam> {};

// Kernelize + exact-on-kernel must equal plain brute force: reductions are
// exact, never lossy.
TEST_P(ReductionsOptimalityTest, KernelPreservesOptimum) {
  const SweepParam param = GetParam();
  Rng rng(SplitMix64(param.seed * 31));
  const StaticGraph g =
      ErdosRenyiGnm(param.n, static_cast<int64_t>(param.n * param.density),
                    &rng)
          .ToStatic();
  const std::vector<VertexId> solution = KernelSolve(g);
  EXPECT_TRUE(IsIndependent(g, solution));
  EXPECT_EQ(static_cast<int>(solution.size()), BruteForceAlpha(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionsOptimalityTest,
    ::testing::Values(SweepParam{10, 0.8, 1}, SweepParam{14, 1.2, 2},
                      SweepParam{18, 1.6, 3}, SweepParam{22, 2.0, 4},
                      SweepParam{26, 1.0, 5}, SweepParam{30, 1.4, 6},
                      SweepParam{16, 2.5, 7}, SweepParam{20, 0.6, 8},
                      SweepParam{24, 1.8, 9}, SweepParam{28, 2.2, 10}));

// Power-law instances reduce essentially to nothing (the phenomenon the
// easy/hard split and Fig 10's flat DG* sizes rest on).
TEST(ReductionsTest, PowerLawGraphsKernelizeAway) {
  Rng rng(77);
  const StaticGraph g = ChungLuPowerLaw(4000, 2.4, 6.0, &rng).ToStatic();
  Kernelizer kernelizer(g);
  kernelizer.Run();
  EXPECT_LT(kernelizer.NumAliveVertices(), g.NumVertices() / 20);
}

}  // namespace
}  // namespace dynmis
