// Loopback end-to-end tests for the replication subsystem: a real primary
// and follower on ephemeral ports driven through real sockets — follower
// bootstrap from a background checkpoint (base snapshot + log tail),
// directory and TCP change-log tailing, byte-identical SOLUTION agreement
// at the same batch boundary, read-only enforcement, primary kill +
// promotion with id-exact vertex allocation, and online resharding under
// live churn. Runs under ASan and TSan in CI like serve_e2e_test (the
// serving threads + churn clients + snapshot/reshard workers are exactly
// the concurrency TSan should be watching).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynmis/serve.h"
#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/ingest/key_map.h"
#include "src/io/snapshot.h"
#include "src/repl/bootstrap.h"
#include "src/repl/change_log.h"
#include "src/serve/line_client.h"
#include "src/serve/protocol.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace serve {
namespace {

EdgeListGraph TestGraph() {
  Rng rng(7);
  return ErdosRenyiGnm(150, 400, &rng);
}

// A fresh, empty change-log directory (leftovers from prior runs removed —
// the bootstrap scan would otherwise replay a stale log).
std::string FreshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

// A Server on 127.0.0.1:<ephemeral> with its Run() loop on its own thread.
class TestServer {
 public:
  explicit TestServer(ServeOptions options,
                      const EdgeListGraph& base = TestGraph()) {
    options.port = 0;
    std::string error;
    auto backend = MakeServingBackend(base, options, &error);
    EXPECT_NE(backend, nullptr) << error;
    Launch(std::move(backend), std::move(options));
  }

  // Follower bootstrap path: the backend was built by BootstrapFromChangeLog
  // rather than from a base graph.
  TestServer(std::unique_ptr<ServingBackend> backend, ServeOptions options) {
    options.port = 0;
    Launch(std::move(backend), std::move(options));
  }

  ~TestServer() { StopAndJoin(); }

  int StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
    return run_result_;
  }

  int port() const { return server_->port(); }
  Server& server() { return *server_; }

 private:
  void Launch(std::unique_ptr<ServingBackend> backend, ServeOptions options) {
    // Multi-threaded I/O everywhere: replication (SUBSCRIBE streams,
    // PROMOTE, RESHARD) must behave identically through the mailbox
    // transport.
    options.io_threads = 4;
    std::string error;
    server_ = std::make_unique<Server>(std::move(backend), options);
    EXPECT_TRUE(server_->Start(&error)) << error;
    thread_ = std::thread([this] { run_result_ = server_->Run(); });
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  int run_result_ = -1;
};

// Thin gtest wrapper over the shared blocking client.
class TestClient {
 public:
  explicit TestClient(int port, bool handshake = true) {
    std::string error;
    EXPECT_TRUE(client_.Connect("127.0.0.1", port, &error)) << error;
    if (handshake) {
      const std::string greeting = Ask("HELLO 1");
      EXPECT_TRUE(greeting.rfind("OK DYNMIS 1 ", 0) == 0) << greeting;
    }
  }

  void Send(const std::string& line) { EXPECT_TRUE(client_.SendLine(line)); }

  std::string ReadLine() {
    std::string line;
    return client_.ReadLine(&line) ? line : "";
  }

  std::string Ask(const std::string& line) {
    Send(line);
    return ReadLine();
  }

 private:
  LineClient client_;
};

// Drives `count` protocol updates from one client, drawing from a seeded
// generator over a private mirror (invalid ops against the live server are
// expected and must come back as ERR, never crash anything).
void Churn(int port, uint64_t seed, int count) {
  TestClient client(port);
  DynamicGraph mirror = TestGraph().ToDynamic();
  UpdateStreamOptions stream;
  stream.seed = seed;
  UpdateStreamGenerator generator(stream);
  for (int i = 0; i < count; ++i) {
    const GraphUpdate update = generator.Next(mirror);
    ApplyUpdate(&mirror, update);
    const std::string response = client.Ask(FormatCommandLine(update));
    EXPECT_TRUE(response.rfind("OK", 0) == 0 ||
                response.rfind("ERR rejected", 0) == 0)
        << response;
  }
  EXPECT_EQ(client.Ask("QUIT"), "OK bye");
}

// `REPL STATUS` answers "OK REPL <next_seq>" (and flushes pending admits
// first, so the reply is a batch boundary).
int64_t ReplSeq(TestClient* client) {
  const std::string response = client->Ask("REPL STATUS");
  EXPECT_TRUE(response.rfind("OK REPL ", 0) == 0) << response;
  return std::stoll(response.substr(8));
}

// Polls `done` until it holds or ~15s pass. Replication catch-up, snapshot
// completion, and reshard cutover are all asynchronous.
bool WaitUntil(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

void ExpectVerifyOk(TestClient* client) {
  const std::string verdict = client->Ask("VERIFY");
  EXPECT_NE(verdict.find("independent=1"), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("maximal=1"), std::string::npos) << verdict;
}

// The acceptance-criteria path: a follower bootstrapped from a *background*
// checkpoint (base snapshot + record tail) catches up by tailing the
// primary's change-log directory and reports a SOLUTION byte-identical to
// the primary's at the same batch boundary.
TEST(ReplFollowDirTest, CheckpointBootstrapCatchesUpByteIdentical) {
  const std::string dir = FreshDir("repl_e2e_followdir");
  ServeOptions popts;
  popts.backend = "sharded";
  popts.shards = 4;
  popts.change_log_dir = dir;
  popts.snapshot_every_batches = 8;
  TestServer primary(popts);
  Churn(primary.port(), 21, 150);

  TestClient pc(primary.port());
  const int64_t head = ReplSeq(&pc);
  EXPECT_GT(head, 0);
  // A background base snapshot must have landed (they publish
  // asynchronously; churn above crossed the every-8-batches trigger many
  // times over).
  ASSERT_TRUE(WaitUntil([&] {
    repl::ChangeLogDirState state;
    std::string error;
    return repl::ScanChangeLogDir(dir, &state, &error) &&
           state.latest_base_seq > 0;
  }));

  ServeOptions fopts = popts;
  fopts.change_log_dir.clear();
  fopts.snapshot_every_batches = 0;
  fopts.follow_dir = dir;
  repl::BootstrapResult boot;
  std::string error;
  ASSERT_TRUE(repl::BootstrapFromChangeLog(dir, TestGraph(), fopts, &boot,
                                           &error))
      << error;
  EXPECT_GT(boot.base_seq, 0);  // Genuinely restored from a checkpoint.
  EXPECT_LE(boot.next_seq, head);
  fopts.repl_start_seq = boot.next_seq;
  fopts.bootstrap_base_seq = boot.base_seq;
  TestServer follower(std::move(boot.backend), fopts);
  TestClient fc(follower.port());

  ASSERT_TRUE(WaitUntil([&] { return ReplSeq(&fc) == head; }));
  const std::string psol = pc.Ask("SOLUTION");
  EXPECT_EQ(fc.Ask("SOLUTION"), psol);

  // Followers serve reads but refuse the whole write surface.
  EXPECT_TRUE(fc.Ask("INS 1 2").rfind("ERR readonly", 0) == 0);
  EXPECT_TRUE(fc.Ask("INSV").rfind("ERR readonly", 0) == 0);
  ExpectVerifyOk(&fc);

  // New primary batches keep flowing through the tailed directory.
  Churn(primary.port(), 22, 60);
  const int64_t head2 = ReplSeq(&pc);
  EXPECT_GT(head2, head);
  ASSERT_TRUE(WaitUntil([&] { return ReplSeq(&fc) == head2; }));
  EXPECT_EQ(fc.Ask("SOLUTION"), pc.Ask("SOLUTION"));
}

// TCP shipping under concurrent multi-client churn, then primary kill and
// promotion: the follower must converge byte-for-byte, take over writes
// after PROMOTE, and allocate vertex ids exactly as the primary would have
// (the freed id comes back LIFO on both sides).
TEST(ReplTcpFollowTest, ChurnKillPrimaryPromoteIdExact) {
  const std::string dir = FreshDir("repl_e2e_tcp");
  ServeOptions popts;
  popts.backend = "sharded";
  popts.shards = 4;
  popts.change_log_dir = dir;  // Late subscribers catch up from disk.
  TestServer primary(popts);
  // History from before the follower connects exercises the disk catch-up
  // path of REPL SUBSCRIBE before the live-streaming hand-off.
  Churn(primary.port(), 31, 60);

  ServeOptions fopts;
  fopts.backend = "sharded";
  fopts.shards = 4;
  fopts.follow_addr = "127.0.0.1:" + std::to_string(primary.port());
  TestServer follower(fopts);

  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back(
        [&, i] { Churn(primary.port(), 41 + i, 80); });
  }
  for (std::thread& t : clients) t.join();

  TestClient pc(primary.port());
  // Insert-then-delete parks a known id on the primary's free list; the
  // batches replicate, so the follower's free list must match.
  const std::string insv = pc.Ask("INSV");
  ASSERT_TRUE(insv.rfind("OK ", 0) == 0) << insv;
  const std::string freed_id = insv.substr(3);
  EXPECT_EQ(pc.Ask("DELV " + freed_id), "OK");

  const int64_t head = ReplSeq(&pc);
  const std::string psol = pc.Ask("SOLUTION");
  TestClient fc(follower.port());
  ASSERT_TRUE(WaitUntil([&] { return ReplSeq(&fc) == head; }));
  EXPECT_EQ(fc.Ask("SOLUTION"), psol);
  EXPECT_TRUE(fc.Ask("DELV 0").rfind("ERR readonly", 0) == 0);

  // Kill the primary mid-stream (the follower is still subscribed), then
  // promote the survivor.
  primary.StopAndJoin();
  const std::string promoted = fc.Ask("PROMOTE");
  EXPECT_TRUE(promoted.rfind("OK PROMOTED ", 0) == 0) << promoted;

  // Id-exact allocation: the next INSV pops exactly the id the dead
  // primary freed.
  EXPECT_EQ(fc.Ask("INSV"), "OK " + freed_id);
  ExpectVerifyOk(&fc);

  // The promoted follower now takes regular write traffic.
  Churn(follower.port(), 51, 40);
  ExpectVerifyOk(&fc);
}

// Online resharding: S=4 -> 2 -> 8 under live churn, with id allocation
// preserved across the backend swap and VERIFY passing after each cutover.
TEST(ReplReshardTest, OnlineReshardDownAndUpUnderChurn) {
  ServeOptions options;
  options.backend = "sharded";
  options.shards = 4;
  TestServer server(options);
  Churn(server.port(), 61, 60);

  TestClient client(server.port());
  const std::string insv = client.Ask("INSV");
  ASSERT_TRUE(insv.rfind("OK ", 0) == 0) << insv;
  const std::string freed_id = insv.substr(3);
  EXPECT_EQ(client.Ask("DELV " + freed_id), "OK");

  EXPECT_EQ(client.Ask("RESHARD 2"), "OK RESHARD started 2");
  ASSERT_TRUE(WaitUntil([&] {
    const std::string stats = client.Ask("STATS");
    return stats.find("\"resharded\":1") != std::string::npos &&
           stats.find("\"shards\":2,") != std::string::npos;
  }));
  // Id-exact across the swap: the 2-shard backend inherited the free list,
  // so the next INSV pops exactly the id parked before resharding.
  EXPECT_EQ(client.Ask("INSV"), "OK " + freed_id);
  ExpectVerifyOk(&client);

  EXPECT_EQ(client.Ask("RESHARD 8"), "OK RESHARD started 8");
  // Writes keep flowing while the 8-shard backend rebuilds and replays.
  Churn(server.port(), 63, 40);
  ASSERT_TRUE(WaitUntil([&] {
    const std::string stats = client.Ask("STATS");
    return stats.find("\"resharded\":2") != std::string::npos &&
           stats.find("\"shards\":8,") != std::string::npos;
  }));
  ExpectVerifyOk(&client);

  // A plan token on the RESHARD line switches the partition plan during
  // the rebuild; STATS' sharded block reports the new plan plus resolver
  // health (a drained backlog at this quiescent point).
  EXPECT_EQ(client.Ask("RESHARD 4 locality"), "OK RESHARD started 4 locality");
  ASSERT_TRUE(WaitUntil([&] {
    const std::string stats = client.Ask("STATS");
    return stats.find("\"resharded\":3") != std::string::npos &&
           stats.find("\"shards\":4,") != std::string::npos &&
           stats.find("\"partition\":\"locality\"") != std::string::npos;
  }));
  const std::string stats = client.Ask("STATS");
  EXPECT_NE(stats.find("\"resolver_backlog\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"resolver_conflicts\":"), std::string::npos) << stats;
  Churn(server.port(), 67, 40);
  ExpectVerifyOk(&client);
}

// Loads the "keymap" section of the snapshot container at `path` and
// returns its canonical serialization (SaveTo emits ascending id order, so
// equal bindings mean equal bytes).
std::string KeymapSectionBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  SnapshotReader reader;
  EXPECT_TRUE(reader.ReadFrom(in).ok);
  EXPECT_TRUE(reader.HasSection("keymap"));
  ingest::KeyMap map;
  EXPECT_TRUE(map.LoadFrom(&reader));
  SnapshotWriter writer;
  map.SaveTo(&writer);
  std::ostringstream out;
  EXPECT_TRUE(writer.WriteTo(out).ok);
  return out.str();
}

// External-key bindings persist through the snapshot container: a server
// restored from SNAPSHOT answers KQUERY byte-identically to the primary at
// checkpoint time (post-checkpoint keyed churn must not leak in), and its
// re-serialized keymap section is byte-identical to the checkpoint's.
TEST(ReplKeyedTest, KeymapSnapshotRoundTrip) {
  ServeOptions options;
  TestServer server(options);
  TestClient client(server.port());

  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "item-" + std::to_string(i);
    std::string cmd = "KINS " + key;
    if (i % 3 == 0) cmd += " 1 2 3";
    const std::string reply = client.Ask(cmd);
    ASSERT_TRUE(reply.rfind("OK ", 0) == 0) << reply;
    keys.push_back(key);
  }
  EXPECT_EQ(client.Ask("KDEL item-3"), "OK");

  std::map<std::string, std::string> answers;
  for (const std::string& key : keys) {
    answers[key] = client.Ask("KQUERY " + key);
  }
  EXPECT_TRUE(answers["item-3"].rfind("ERR unknown key", 0) == 0);

  const std::string snap = ::testing::TempDir() + "/repl_keyed.snap";
  const std::string snap2 = ::testing::TempDir() + "/repl_keyed2.snap";
  std::remove(snap.c_str());
  std::remove(snap2.c_str());
  ASSERT_TRUE(client.Ask("SNAPSHOT " + snap).rfind("OK", 0) == 0);

  // Post-checkpoint keyed churn the restore must NOT reflect.
  ASSERT_TRUE(client.Ask("KINS after-snap").rfind("OK ", 0) == 0);
  EXPECT_EQ(client.Ask("KDEL item-1"), "OK");
  server.StopAndJoin();

  ServeOptions ropts;
  ropts.restore_path = snap;
  TestServer restored(ropts, EdgeListGraph{});
  TestClient rc(restored.port());
  for (const std::string& key : keys) {
    EXPECT_EQ(rc.Ask("KQUERY " + key), answers[key]) << key;
  }
  EXPECT_TRUE(rc.Ask("KQUERY after-snap").rfind("ERR unknown key", 0) == 0);
  const std::string stats = rc.Ask("STATS");
  EXPECT_NE(stats.find("\"keymap_entries\":11"), std::string::npos) << stats;

  // Re-checkpoint before any mutation: the keymap section must round-trip
  // byte-identically through save -> load -> save.
  ASSERT_TRUE(rc.Ask("SNAPSHOT " + snap2).rfind("OK", 0) == 0);
  EXPECT_EQ(KeymapSectionBytes(snap), KeymapSectionBytes(snap2));

  // The restored map is live, both directions.
  EXPECT_EQ(rc.Ask("KDEL item-2"), "OK");
  EXPECT_TRUE(rc.Ask("KQUERY item-2").rfind("ERR unknown key", 0) == 0);
  ASSERT_TRUE(rc.Ask("KINS item-3 1 2").rfind("OK ", 0) == 0);
  EXPECT_TRUE(rc.Ask("KQUERY item-3").rfind("OK ", 0) == 0);
  ExpectVerifyOk(&rc);
}

// The keyed acceptance path: keyed ops replicate through the change-log, a
// follower resolves every key byte-identically to the primary, keeps doing
// so after the primary dies and it is promoted, and then takes keyed
// writes itself. Also pins the dir-bootstrap keymap (base "keymap" section
// + keyed tail replay) to the primary's checkpoint bytes.
TEST(ReplKeyedTest, FollowerResolvesKeysByteIdenticalThroughPromotion) {
  const std::string dir = FreshDir("repl_e2e_keyed");
  ServeOptions popts;
  popts.backend = "sharded";
  popts.shards = 4;
  popts.change_log_dir = dir;
  popts.snapshot_every_batches = 8;
  TestServer primary(popts);
  Churn(primary.port(), 71, 60);

  TestClient pc(primary.port());
  // Keys with edges among themselves: neighbors are ids of earlier keyed
  // vertices, which are guaranteed alive at admission time (the churn
  // stream might have deleted any particular base vertex).
  std::vector<std::string> keys;
  std::vector<std::string> key_ids;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "user-" + std::to_string(i);
    std::string cmd = "KINS " + key;
    if (i % 3 == 0 && i >= 2) {
      cmd += " " + key_ids[i - 1] + " " + key_ids[i - 2];
    }
    const std::string reply = pc.Ask(cmd);
    ASSERT_TRUE(reply.rfind("OK ", 0) == 0) << reply;
    keys.push_back(key);
    key_ids.push_back(reply.substr(3));
  }
  // Keyed deletes, a rebind (the key returns under a fresh binding), and an
  // unkeyed DELV of a keyed vertex (the binding must die with the vertex —
  // on the follower too).
  for (int i = 0; i < 20; i += 5) {
    EXPECT_EQ(pc.Ask("KDEL user-" + std::to_string(i)), "OK");
  }
  ASSERT_TRUE(pc.Ask("KINS user-0").rfind("OK ", 0) == 0);
  const std::string q7 = pc.Ask("KQUERY user-7");
  long long id7 = -1;
  ASSERT_EQ(std::sscanf(q7.c_str(), "OK %lld", &id7), 1) << q7;
  EXPECT_EQ(pc.Ask("DELV " + std::to_string(id7)), "OK");
  Churn(primary.port(), 72, 40);

  std::map<std::string, std::string> answers;
  for (const std::string& key : keys) {
    answers[key] = pc.Ask("KQUERY " + key);
  }
  EXPECT_TRUE(answers["user-7"].rfind("ERR unknown key", 0) == 0);
  EXPECT_TRUE(answers["user-0"].rfind("OK ", 0) == 0);
  const int64_t head = ReplSeq(&pc);
  const std::string psol = pc.Ask("SOLUTION");

  ServeOptions fopts;
  fopts.backend = "sharded";
  fopts.shards = 4;
  fopts.follow_addr = "127.0.0.1:" + std::to_string(primary.port());
  TestServer follower(fopts);
  TestClient fc(follower.port());
  ASSERT_TRUE(WaitUntil([&] { return ReplSeq(&fc) == head; }));
  EXPECT_EQ(fc.Ask("SOLUTION"), psol);
  for (const std::string& key : keys) {
    EXPECT_EQ(fc.Ask("KQUERY " + key), answers[key]) << key;
  }
  // The keyed write surface is read-only on a follower like everything
  // else.
  EXPECT_TRUE(fc.Ask("KINS nope").rfind("ERR readonly", 0) == 0);
  EXPECT_TRUE(fc.Ask("KDEL user-1").rfind("ERR readonly", 0) == 0);

  // Independent check on the persistence path: bootstrapping from the
  // primary's checkpoint directory rebuilds a keymap whose serialization is
  // byte-identical to the one the live follower would save — both must
  // match the primary's bindings at `head`.
  ASSERT_TRUE(WaitUntil([&] {
    repl::ChangeLogDirState state;
    std::string error;
    return repl::ScanChangeLogDir(dir, &state, &error) &&
           state.latest_base_seq > 0;
  }));
  repl::BootstrapResult boot;
  std::string error;
  ASSERT_TRUE(
      repl::BootstrapFromChangeLog(dir, TestGraph(), popts, &boot, &error))
      << error;
  if (boot.next_seq == head) {
    for (const std::string& key : keys) {
      const VertexId id = boot.keymap.Lookup(key);
      if (answers[key].rfind("ERR", 0) == 0) {
        EXPECT_EQ(id, kInvalidVertex) << key;
      } else {
        EXPECT_EQ("OK " + std::to_string(id),
                  answers[key].substr(0, answers[key].rfind(' ')))
            << key;
      }
    }
  }

  // Kill the primary and promote: resolution must not change.
  primary.StopAndJoin();
  const std::string promoted = fc.Ask("PROMOTE");
  EXPECT_TRUE(promoted.rfind("OK PROMOTED ", 0) == 0) << promoted;
  for (const std::string& key : keys) {
    EXPECT_EQ(fc.Ask("KQUERY " + key), answers[key]) << key;
  }

  // The promoted keymap is live: keyed writes flow and resolve. Pick a key
  // that is still bound (the unkeyed churn may have reaped any given one).
  std::string bound_key;
  for (const std::string& key : keys) {
    if (key != "user-5" && answers[key].rfind("OK ", 0) == 0) {
      bound_key = key;
      break;
    }
  }
  ASSERT_FALSE(bound_key.empty());
  EXPECT_EQ(fc.Ask("KDEL " + bound_key), "OK");
  EXPECT_TRUE(
      fc.Ask("KQUERY " + bound_key).rfind("ERR unknown key", 0) == 0);
  ASSERT_TRUE(fc.Ask("KINS user-5").rfind("OK ", 0) == 0);
  EXPECT_TRUE(fc.Ask("KQUERY user-5").rfind("OK ", 0) == 0);
  ExpectVerifyOk(&fc);
}

}  // namespace
}  // namespace serve
}  // namespace dynmis
