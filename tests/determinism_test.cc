// Determinism regression: every registered maintainer name (canonical and
// alias) must produce the identical final solution when the same seeded
// update stream is replayed twice. This is the prerequisite for comparing
// sharded against single-engine output — and for the bench driver's
// cross-run comparability guarantee ("final_solution_size must stay
// identical for a deterministic scenario").

#include <algorithm>
#include <string>
#include <vector>

#include "dynmis/engine.h"
#include "dynmis/registry.h"
#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

std::vector<VertexId> ReplayOnce(const EdgeListGraph& base,
                                 const std::vector<GraphUpdate>& trace,
                                 const std::string& algorithm) {
  auto engine = MisEngine::Create(base, {algorithm});
  EXPECT_NE(engine, nullptr) << algorithm;
  engine->Initialize();
  for (const GraphUpdate& update : trace) engine->Apply(update);
  std::vector<VertexId> solution = engine->Solution();
  std::sort(solution.begin(), solution.end());
  return solution;
}

TEST(DeterminismTest, EveryRegisteredMaintainerReplaysIdentically) {
  Rng rng(9);
  const EdgeListGraph base = ErdosRenyiGnm(120, 320, &rng);
  UpdateStreamOptions stream;
  stream.seed = 21;
  stream.edge_op_fraction = 0.8;
  const std::vector<GraphUpdate> trace =
      MakeUpdateSequence(base.ToDynamic(), 300, stream);

  DynamicGraph replica = base.ToDynamic();
  for (const GraphUpdate& update : trace) ApplyUpdate(&replica, update);

  for (const std::string& name : MaintainerRegistry::Global().ListNames()) {
    const std::vector<VertexId> first = ReplayOnce(base, trace, name);
    const std::vector<VertexId> second = ReplayOnce(base, trace, name);
    EXPECT_EQ(first, second) << name << " diverged between identical runs";
    EXPECT_TRUE(testing_util::IsIndependentSet(replica, first)) << name;
  }
}

}  // namespace
}  // namespace dynmis
