// Experiment harness: factory coverage, replay consistency across
// maintainers, metric arithmetic, and the report cells.

#include "src/harness/experiment.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/harness/metrics.h"
#include "src/harness/report.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

TEST(MetricsTest, GapAndAccuracy) {
  QualityMetrics m{1000, 990};
  EXPECT_EQ(m.Gap(), 10);
  EXPECT_NEAR(m.Accuracy(), 0.99, 1e-9);
  EXPECT_EQ(m.GapString(), "10");
  EXPECT_EQ(m.AccuracyString(), "99.00%");
  QualityMetrics better{1000, 1003};
  EXPECT_EQ(better.GapString(), "3^");  // Beat the reference.
  QualityMetrics zero{0, 0};
  EXPECT_EQ(zero.Accuracy(), 1.0);
}

TEST(ExperimentTest, AllRegisteredNamesProduceWorkingMaintainers) {
  Rng rng(2);
  const EdgeListGraph base = ErdosRenyiGnm(40, 80, &rng);
  for (const std::string& name : MaintainerRegistry::Global().ListNames()) {
    DynamicGraph g = base.ToDynamic();
    auto algo = MaintainerRegistry::Global().Create(name, &g);
    ASSERT_NE(algo, nullptr) << name;
    algo->Initialize({});
    EXPECT_GT(algo->SolutionSize(), 0) << name;
    algo->InsertEdge(0, 1 + (g.HasEdge(0, 1) ? 1 : 0));
    EXPECT_GT(algo->SolutionSize(), 0) << name;
  }
}

TEST(ExperimentTest, RunExperimentProducesConsistentFinalGraphs) {
  Rng rng(5);
  const EdgeListGraph base = ErdosRenyiGnm(60, 150, &rng);
  ExperimentConfig config;
  config.initial = InitialSolution::kGreedy;
  config.num_updates = 200;
  config.stream.seed = 7;
  config.compute_final_alpha = true;
  const ExperimentResult result =
      RunExperiment(base, {"DyOneSwap", "DyTwoSwap", "DyARW"}, config);
  ASSERT_EQ(result.algos.size(), 3u);
  for (const AlgoRunResult& run : result.algos) {
    EXPECT_TRUE(run.finished);
    EXPECT_EQ(run.updates_applied, 200);
    EXPECT_GT(run.final_size, 0);
    EXPECT_GT(run.memory_bytes, 0u);
  }
  // Everyone processed the same final graph, whose alpha was computed.
  EXPECT_GT(result.final_alpha, 0);
  EXPECT_GT(result.final_n, 0);
  // No maintained solution can exceed alpha.
  for (const AlgoRunResult& run : result.algos) {
    EXPECT_LE(run.final_size, result.final_alpha) << run.name;
  }
  // DyTwoSwap >= DyOneSwap is the expected quality ordering here.
  EXPECT_GE(FindRun(result, "DyTwoSwap").final_size,
            FindRun(result, "DyOneSwap").final_size - 1);
}

TEST(ExperimentTest, TimeLimitMarksDnf) {
  Rng rng(6);
  const EdgeListGraph base = ErdosRenyiGnm(2000, 8000, &rng);
  ExperimentConfig config;
  config.initial = InitialSolution::kGreedy;
  config.num_updates = 50000;  // Far more than the budget allows...
  config.stream.seed = 3;
  config.time_limit_seconds = 0.02;  // ...in 20 ms.
  const ExperimentResult result =
      RunExperiment(base, {"Recompute"}, config);
  const AlgoRunResult& run = result.algos.front();
  EXPECT_FALSE(run.finished);
  EXPECT_LT(run.updates_applied, config.num_updates);
  EXPECT_EQ(GapCell(run, 100), "-");
  EXPECT_EQ(TimeCell(run).substr(0, 3), "DNF");
}

TEST(ExperimentTest, InitialSolutionModes) {
  Rng rng(8);
  const EdgeListGraph base = ErdosRenyiGnm(50, 100, &rng);
  const auto greedy = ComputeInitialSolution(base, InitialSolution::kGreedy,
                                             100, 1000000);
  const auto arw =
      ComputeInitialSolution(base, InitialSolution::kArw, 100, 1000000);
  const auto exact =
      ComputeInitialSolution(base, InitialSolution::kExact, 100, 1000000);
  EXPECT_GE(arw.size(), greedy.size());
  EXPECT_GE(exact.size(), arw.size());
}

}  // namespace
}  // namespace dynmis
