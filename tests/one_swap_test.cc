// DyOneSwap correctness: unit tests for every update case of Algorithm 2
// plus parameterized property sweeps asserting, after every single update,
// independence, maximality, internal structure consistency and the absence
// of any 1-swap (verified by brute force).

#include "src/core/one_swap.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/static_mis/greedy.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::HasSwapUpTo;
using testing_util::IsIndependentSet;
using testing_util::IsMaximalIndependentSet;

TEST(DyOneSwapTest, EmptyGraph) {
  DynamicGraph g(0);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  EXPECT_EQ(algo.SolutionSize(), 0);
}

TEST(DyOneSwapTest, IsolatedVerticesAllEnter) {
  DynamicGraph g(4);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  EXPECT_EQ(algo.SolutionSize(), 4);
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, TriangleKeepsOneVertex) {
  DynamicGraph g = CompleteGraph(3).ToDynamic();
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  EXPECT_EQ(algo.SolutionSize(), 1);
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, InitialSolutionIsRespectedAndExtended) {
  // Path 0-1-2-3: initializing with {1} must still produce a maximal set.
  DynamicGraph g = PathGraph(4).ToDynamic();
  DyOneSwap algo(&g);
  algo.Initialize({1});
  EXPECT_TRUE(algo.InSolution(1));
  EXPECT_TRUE(IsMaximalIndependentSet(g, algo.Solution()));
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, InitializeFixesOneSwapsInStar) {
  // Star: the hub alone is maximal but not 1-maximal; initialization must
  // swap the hub for the leaves.
  DynamicGraph g = StarGraph(5).ToDynamic();
  DyOneSwap algo(&g);
  algo.Initialize({0});
  EXPECT_EQ(algo.SolutionSize(), 5);
  EXPECT_FALSE(algo.InSolution(0));
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, EdgeInsertBetweenSolutionVertices) {
  DynamicGraph g(2);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  EXPECT_EQ(algo.SolutionSize(), 2);
  algo.InsertEdge(0, 1);
  EXPECT_EQ(algo.SolutionSize(), 1);
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, EdgeDeleteTriggersOneSwap) {
  // Star with 2 leaves: 0 is hub. Solution {0} after forcing edges 1-2.
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  ASSERT_EQ(algo.SolutionSize(), 1);
  // Deleting 1-2 creates the 1-swap {hub} -> {1, 2} when hub was selected;
  // otherwise the solution simply stays 1-maximal.
  algo.DeleteEdge(1, 2);
  EXPECT_EQ(algo.SolutionSize(), 2);
  EXPECT_FALSE(HasSwapUpTo(g, algo.Solution(), 1));
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, VertexInsertWithNeighbors) {
  DynamicGraph g(3);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  const VertexId v = algo.InsertVertex({0, 1, 2});
  EXPECT_FALSE(algo.InSolution(v));
  EXPECT_EQ(algo.SolutionSize(), 3);
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, VertexDeleteFreesNeighbors) {
  DynamicGraph g = StarGraph(4).ToDynamic();
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  ASSERT_EQ(algo.SolutionSize(), 4);  // Leaves win.
  // Delete a leaf; hub still covered by other leaves.
  algo.DeleteVertex(1);
  EXPECT_EQ(algo.SolutionSize(), 3);
  algo.CheckConsistency();
  // Delete remaining leaves; hub must enter.
  algo.DeleteVertex(2);
  algo.DeleteVertex(3);
  algo.DeleteVertex(4);
  EXPECT_TRUE(algo.InSolution(0));
  algo.CheckConsistency();
}

TEST(DyOneSwapTest, VertexIdRecyclingIsClean) {
  DynamicGraph g(4);
  g.AddEdge(0, 1);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  algo.DeleteVertex(0);
  const VertexId v = algo.InsertVertex({2, 3});
  EXPECT_EQ(v, 0);  // Recycled id.
  algo.CheckConsistency();
  EXPECT_TRUE(IsMaximalIndependentSet(g, algo.Solution()));
}

struct SweepParam {
  int n;
  double density;  // Edges as a multiple of n.
  double edge_op_fraction;
  uint64_t seed;
};

class DyOneSwapPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DyOneSwapPropertyTest, InvariantsHoldAfterEveryUpdate) {
  const SweepParam param = GetParam();
  Rng rng(SplitMix64(param.seed));
  const EdgeListGraph base = ErdosRenyiGnm(
      param.n, static_cast<int64_t>(param.n * param.density), &rng);
  for (const bool lazy : {false, true}) {
    DynamicGraph g = base.ToDynamic();
    MaintainerConfig options;
    options.lazy = lazy;
    DyOneSwap algo(&g, options);
    algo.InitializeEmpty();
    ASSERT_TRUE(IsMaximalIndependentSet(g, algo.Solution()));
    ASSERT_FALSE(HasSwapUpTo(g, algo.Solution(), 1));

    UpdateStreamOptions stream;
    stream.seed = param.seed * 31 + 7;
    stream.edge_op_fraction = param.edge_op_fraction;
    UpdateStreamGenerator gen(stream);
    for (int step = 0; step < 220; ++step) {
      const GraphUpdate update = gen.Next(g);
      algo.Apply(update);
      algo.CheckConsistency();
      const std::vector<VertexId> solution = algo.Solution();
      ASSERT_TRUE(IsIndependentSet(g, solution)) << "step " << step;
      ASSERT_TRUE(IsMaximalIndependentSet(g, solution)) << "step " << step;
      ASSERT_FALSE(HasSwapUpTo(g, solution, 1))
          << "1-swap exists after step " << step << " ("
          << update.DebugString() << "), lazy=" << lazy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DyOneSwapPropertyTest,
    ::testing::Values(SweepParam{12, 1.0, 0.9, 1}, SweepParam{20, 1.5, 0.9, 2},
                      SweepParam{20, 0.5, 0.5, 3}, SweepParam{30, 2.0, 0.8, 4},
                      SweepParam{30, 3.0, 0.95, 5}, SweepParam{8, 2.0, 0.7, 6},
                      SweepParam{40, 1.2, 0.6, 7},
                      SweepParam{25, 2.5, 1.0, 8}));

// The perturbation option must preserve all invariants.
TEST(DyOneSwapTest, PerturbationKeepsInvariants) {
  Rng rng(99);
  const EdgeListGraph base = ErdosRenyiGnm(25, 50, &rng);
  DynamicGraph g = base.ToDynamic();
  MaintainerConfig options;
  options.perturb = true;
  DyOneSwap algo(&g, options);
  algo.InitializeEmpty();
  UpdateStreamOptions stream;
  stream.seed = 1234;
  UpdateStreamGenerator gen(stream);
  for (int step = 0; step < 200; ++step) {
    algo.Apply(gen.Next(g));
    algo.CheckConsistency();
    ASSERT_FALSE(HasSwapUpTo(g, algo.Solution(), 1));
  }
}

// Stats counters move.
TEST(DyOneSwapTest, StatsCountSwaps) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  algo.DeleteEdge(1, 2);
  EXPECT_GE(algo.stats().one_swaps, 1);
}

}  // namespace
}  // namespace dynmis
