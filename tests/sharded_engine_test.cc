// ShardedMisEngine: independence + maximality of the resolved solution
// under churn, hash vs range partition plans, deterministic replay (both
// across runs and across flush/block boundaries), S=1 degeneration to the
// single engine, vertex inserts landing in the plan's shard, and snapshot
// round-trips including empty shards.

#include "dynmis/sharded_engine.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "dynmis/engine.h"
#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::IsIndependentSet;
using testing_util::IsMaximalIndependentSet;

EdgeListGraph SmallGraph(uint64_t seed = 7, int n = 200, int m = 600) {
  Rng rng(seed);
  return ErdosRenyiGnm(n, m, &rng);
}

std::vector<GraphUpdate> ChurnTrace(const EdgeListGraph& base, int count,
                                    uint64_t seed) {
  UpdateStreamOptions stream;
  stream.seed = seed;
  stream.edge_op_fraction = 0.7;  // Plenty of vertex churn.
  return MakeUpdateSequence(base.ToDynamic(), count, stream);
}

ShardedEngineOptions Opts(int shards, PartitionStrategy strategy =
                                          PartitionStrategy::kHash) {
  ShardedEngineOptions options;
  options.num_shards = shards;
  options.partition = strategy;
  return options;
}

TEST(ShardedEngineTest, CreateRejectsBadConfiguration) {
  const EdgeListGraph base = SmallGraph();
  EXPECT_EQ(ShardedMisEngine::Create(base, {"NoSuchAlgorithm"}, Opts(2)),
            nullptr);
  EXPECT_EQ(ShardedMisEngine::Create(base, {"DyTwoSwap"}, Opts(0)), nullptr);
}

TEST(ShardedEngineTest, PartitionPlanCoversAllShards) {
  const PartitionPlan one = PartitionPlan::Hash(1);
  for (VertexId v = 0; v < 1000; ++v) EXPECT_EQ(one.ShardOf(v), 0);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    const PartitionPlan plan = PartitionPlan::Make(strategy, 5, 1000);
    std::vector<int> hits(5, 0);
    for (VertexId v = 0; v < 5000; ++v) {
      const int s = plan.ShardOf(v);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, 5);
      ++hits[s];
    }
    // Both strategies spread a dense id range over every shard — including
    // ids far past the range plan's expected capacity.
    for (int s = 0; s < 5; ++s) EXPECT_GT(hits[s], 0) << s;
  }
}

// The headline invariant: at every barrier the resolved solution is an
// independent — in fact maximal — set of the *global* graph, which an
// independently maintained replica verifies.
TEST(ShardedEngineTest, SolutionStaysMaximalIndependentUnderChurn) {
  const EdgeListGraph base = SmallGraph();
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 600, 13);

  auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, Opts(4));
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  DynamicGraph replica = base.ToDynamic();
  EXPECT_TRUE(IsMaximalIndependentSet(replica, engine->Solution()));

  int applied = 0;
  for (const GraphUpdate& update : trace) {
    engine->Apply(update);
    ApplyUpdate(&replica, update);
    if (++applied % 150 == 0) {
      EXPECT_TRUE(IsMaximalIndependentSet(replica, engine->Solution()))
          << "after " << applied << " updates";
    }
  }
  const std::vector<VertexId> solution = engine->Solution();
  EXPECT_TRUE(IsMaximalIndependentSet(replica, solution));
  EXPECT_EQ(static_cast<int64_t>(solution.size()), engine->SolutionSize());
  for (VertexId v : solution) EXPECT_TRUE(engine->InSolution(v));

  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.num_vertices, replica.NumVertices());
  EXPECT_EQ(stats.num_edges, replica.NumEdges());
  EXPECT_EQ(stats.updates_applied, 600);
  EXPECT_GT(stats.structure_memory_bytes, 0u);
  EXPECT_GT(stats.graph_memory_bytes, 0u);

  const ShardedStats sharded = engine->ShardStats();
  EXPECT_EQ(sharded.num_shards, 4);
  EXPECT_EQ(sharded.partition, "hash");
  EXPECT_EQ(sharded.intra_edges + sharded.cut_edges, replica.NumEdges());
  EXPECT_GT(sharded.cut_edges, 0);
  EXPECT_GT(sharded.cut_edge_fraction, 0.0);
  EXPECT_LT(sharded.cut_edge_fraction, 1.0);
  EXPECT_EQ(sharded.shard_solution_sizes.size(), 4u);
}

TEST(ShardedEngineTest, HashAndRangePlansBothMaintainInvariants) {
  const EdgeListGraph base = SmallGraph(17);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 400, 19);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    auto engine =
        ShardedMisEngine::Create(base, {"DyTwoSwap"}, Opts(3, strategy));
    ASSERT_NE(engine, nullptr);
    engine->Initialize();
    DynamicGraph replica = base.ToDynamic();
    for (const GraphUpdate& update : trace) {
      engine->Apply(update);
      ApplyUpdate(&replica, update);
    }
    EXPECT_TRUE(IsMaximalIndependentSet(replica, engine->Solution()))
        << PartitionStrategyName(strategy);
  }
}

// The final solution is a pure function of the update sequence: replaying
// with a different block size, a different batch chopping, and extra
// mid-stream barriers must reproduce it exactly.
TEST(ShardedEngineTest, DeterministicReplayAcrossFlushBoundaries) {
  const EdgeListGraph base = SmallGraph(23);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 500, 29);

  auto run = [&](int block_ops, int chunk, int query_every) {
    ShardedEngineOptions options = Opts(3);
    options.block_ops = block_ops;
    auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, options);
    EXPECT_NE(engine, nullptr);
    engine->Initialize();
    size_t i = 0;
    int since_query = 0;
    while (i < trace.size()) {
      const size_t end = std::min(trace.size(), i + chunk);
      engine->ApplyBatch(
          {trace.begin() + static_cast<long>(i),
           trace.begin() + static_cast<long>(end)});
      i = end;
      if (query_every > 0 && ++since_query >= query_every) {
        since_query = 0;
        engine->SolutionSize();  // Forces a barrier + resolution mid-run.
      }
    }
    return engine->Solution();
  };

  const std::vector<VertexId> a = run(1024, 97, 0);
  const std::vector<VertexId> b = run(7, 1, 3);
  const std::vector<VertexId> c = run(256, 500, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

// S=1 is the degenerate case: every edge is intra-shard and the single
// worker replays exactly the single engine's op sequence, so the solutions
// agree verbatim.
TEST(ShardedEngineTest, SingleShardMatchesSingleEngine) {
  const EdgeListGraph base = SmallGraph(31);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 400, 37);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    auto sharded =
        ShardedMisEngine::Create(base, {"DyTwoSwap"}, Opts(1, strategy));
    ASSERT_NE(sharded, nullptr);
    sharded->Initialize();
    auto single = MisEngine::Create(base, {"DyTwoSwap"});
    ASSERT_NE(single, nullptr);
    single->Initialize();

    for (const GraphUpdate& update : trace) {
      const UpdateResult a = sharded->Apply(update);
      const UpdateResult b = single->Apply(update);
      // Global id allocation mirrors the single engine exactly.
      EXPECT_EQ(a.new_vertices, b.new_vertices);
    }
    std::vector<VertexId> expected = single->Solution();
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sharded->Solution(), expected)
        << PartitionStrategyName(strategy);
    EXPECT_EQ(sharded->ShardStats().cut_edges, 0);
    EXPECT_EQ(sharded->Stats().num_edges, single->Stats().num_edges);
  }
}

// Vertex inserts that grow the id space land in the shard the plan names,
// with their neighbor edges split into intra-shard and cut correctly.
TEST(ShardedEngineTest, GrowingVertexInsertsLandInPlanShard) {
  EdgeListGraph base;
  base.n = 8;
  base.edges = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  auto engine = ShardedMisEngine::Create(
      base, {"DyOneSwap"}, Opts(4, PartitionStrategy::kRange));
  ASSERT_NE(engine, nullptr);
  engine->Initialize();

  std::vector<VertexId> inserted;
  for (int i = 0; i < 12; ++i) {
    const VertexId v = engine->InsertVertex({static_cast<VertexId>(i % 8)});
    ASSERT_NE(v, kInvalidVertex);
    EXPECT_GE(v, 8) << "fresh ids only: nothing was deleted";
    inserted.push_back(v);
  }
  engine->Flush();
  for (const VertexId v : inserted) {
    const int home = engine->plan().ShardOf(v);
    EXPECT_TRUE(engine->shard_graph(home).IsVertexAlive(v)) << v;
    for (int s = 0; s < engine->num_shards(); ++s) {
      if (s == home) continue;
      EXPECT_FALSE(engine->shard_graph(s).IsVertexAlive(v))
          << v << " duplicated into shard " << s;
    }
    // The single neighbor edge went to exactly one structure.
    EXPECT_EQ(engine->shard_graph(home).Degree(v) +
                  engine->resolver().CutDegree(v),
              1)
        << v;
  }
  DynamicGraph replica = base.ToDynamic();
  for (int i = 0; i < 12; ++i) {
    GraphUpdate update;
    update.kind = UpdateKind::kInsertVertex;
    update.neighbors = {static_cast<VertexId>(i % 8)};
    ApplyUpdate(&replica, update);
  }
  EXPECT_TRUE(IsMaximalIndependentSet(replica, engine->Solution()));
}

TEST(ShardedEngineTest, SnapshotRoundTripAndDeterministicContinuation) {
  const EdgeListGraph base = SmallGraph(41);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 600, 43);

  auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, Opts(3));
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  for (size_t i = 0; i < 300; ++i) engine->Apply(trace[i]);

  std::ostringstream sink;
  ASSERT_TRUE(engine->SaveSnapshot(sink).ok);
  const std::string bytes = sink.str();

  std::istringstream source(bytes);
  SnapshotStatus status;
  auto restored = ShardedMisEngine::LoadSnapshot(source, &status);
  ASSERT_NE(restored, nullptr) << status.message;
  EXPECT_EQ(restored->num_shards(), 3);
  EXPECT_EQ(restored->Solution(), engine->Solution());
  EXPECT_EQ(restored->Stats().updates_applied,
            engine->Stats().updates_applied);

  // The restored engine continues deterministically: the suffix replays to
  // the identical final solution, including recycled vertex ids.
  for (size_t i = 300; i < trace.size(); ++i) {
    const UpdateResult a = engine->Apply(trace[i]);
    const UpdateResult b = restored->Apply(trace[i]);
    EXPECT_EQ(a.new_vertices, b.new_vertices);
  }
  EXPECT_EQ(restored->Solution(), engine->Solution());

  // Corruption anywhere in the container is detected, never mis-parsed.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^
                                                  0x20);
  std::istringstream bad(corrupt);
  EXPECT_EQ(ShardedMisEngine::LoadSnapshot(bad, &status), nullptr);
  EXPECT_FALSE(status.ok);

  std::istringstream truncated(bytes.substr(0, bytes.size() / 3));
  EXPECT_EQ(ShardedMisEngine::LoadSnapshot(truncated, &status), nullptr);
  EXPECT_FALSE(status.ok);
}

// Regression: the polish pass bounds its quadratic pair search to a small
// low-degree pool, but every exclusively-covered neighbor of the swapped-out
// member must still rejoin — truncating the re-add loop to the pool left
// the overflow vertices uncovered (a non-maximal result). Construction: a
// shard-0 hub v with 17 cut neighbors u_i (more than the pool) whose
// intra-shard covers w_i all get evicted at the barrier, so after the
// resolution's eviction/re-extension steps every u_i is covered only by v
// and the polish must swap v for all 17.
TEST(ShardedEngineTest, PolishReaddsBeyondPairPool) {
  constexpr int kFan = 17;  // One more than the polish pair pool.
  EdgeListGraph base;
  base.n = 102;  // Range plan, 3 shards: blocks 0..33 / 34..67 / 68..101.
  const VertexId v = 0;
  for (int i = 0; i < kFan; ++i) {
    const VertexId w = 34 + i;  // Shard 1, low ids: the local greedy's pick.
    const VertexId u = 51 + i;  // Shard 1, covered only by w intra-shard.
    const VertexId x = 68 + i;  // Shard 2: evicts w across the cut.
    base.edges.emplace_back(v, u);  // Cut 0-1.
    base.edges.emplace_back(w, u);  // Intra shard 1.
    base.edges.emplace_back(w, x);  // Cut 1-2.
  }
  auto engine = ShardedMisEngine::Create(
      base, {"DyTwoSwap"}, Opts(3, PartitionStrategy::kRange));
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  const std::vector<VertexId> solution = engine->Solution();
  // The construction must actually have driven the polish (if the local
  // greedy picked the u side instead of w, this scenario degenerates).
  EXPECT_GE(engine->ShardStats().swaps, 1);
  EXPECT_TRUE(IsMaximalIndependentSet(base.ToDynamic(), solution));
  for (int i = 0; i < kFan; ++i) {
    EXPECT_TRUE(engine->InSolution(51 + i)) << "u_" << i << " left uncovered";
  }
}

TEST(ShardedEngineTest, EmptyShardsSurviveSnapshotRoundTrip) {
  EdgeListGraph base;
  base.n = 3;
  base.edges = {{0, 1}};
  // Range plan with block size 1: vertices 0..2 own shards 0..2, shards
  // 3..7 start — and stay — empty.
  auto engine = ShardedMisEngine::Create(
      base, {"DyTwoSwap"}, Opts(8, PartitionStrategy::kRange));
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  engine->InsertEdge(1, 2);
  engine->Flush();

  int empty_shards = 0;
  for (int s = 0; s < engine->num_shards(); ++s) {
    if (engine->shard_graph(s).NumVertices() == 0) ++empty_shards;
  }
  EXPECT_GE(empty_shards, 5);

  std::ostringstream sink;
  ASSERT_TRUE(engine->SaveSnapshot(sink).ok);
  std::istringstream source(sink.str());
  SnapshotStatus status;
  auto restored = ShardedMisEngine::LoadSnapshot(source, &status);
  ASSERT_NE(restored, nullptr) << status.message;
  EXPECT_EQ(restored->Solution(), engine->Solution());

  // Empty shards keep working after the round trip.
  const VertexId v = restored->InsertVertex({0});
  EXPECT_NE(v, kInvalidVertex);
  DynamicGraph replica = base.ToDynamic();
  replica.AddEdge(1, 2);
  GraphUpdate update;
  update.kind = UpdateKind::kInsertVertex;
  update.neighbors = {0};
  ApplyUpdate(&replica, update);
  EXPECT_TRUE(IsMaximalIndependentSet(replica, restored->Solution()));
}

// A graph with planted community structure on consecutive id blocks:
// mostly intra-cluster edges plus a thin sprinkle of inter-cluster ones.
// The streaming locality plan should keep clusters together; hash scatters
// them by construction.
EdgeListGraph ClusteredGraph(int clusters, int cluster_size,
                             int intra_per_vertex, int inter_edges,
                             uint64_t seed) {
  Rng rng(seed);
  EdgeListGraph g;
  g.n = clusters * cluster_size;
  std::set<std::pair<VertexId, VertexId>> seen;
  auto add = [&](VertexId u, VertexId v) {
    if (u == v) return;
    if (u > v) std::swap(u, v);
    if (seen.insert({u, v}).second) g.edges.emplace_back(u, v);
  };
  for (int c = 0; c < clusters; ++c) {
    const VertexId lo = static_cast<VertexId>(c) * cluster_size;
    for (int i = 0; i < cluster_size * intra_per_vertex; ++i) {
      add(lo + static_cast<VertexId>(
                   rng.NextBounded(static_cast<uint64_t>(cluster_size))),
          lo + static_cast<VertexId>(
                   rng.NextBounded(static_cast<uint64_t>(cluster_size))));
    }
  }
  for (int i = 0; i < inter_edges; ++i) {
    add(static_cast<VertexId>(rng.NextBounded(static_cast<uint64_t>(g.n))),
        static_cast<VertexId>(rng.NextBounded(static_cast<uint64_t>(g.n))));
  }
  return g;
}

// The asynchronous resolver's inbox drains at every barrier: after Flush()
// the backlog is zero, the worker has consumed the shards' transition
// streams, and the conflicts those streams produced were repaired before
// Solution() returned (the solution is maximal-independent globally).
TEST(ShardedEngineTest, AsyncResolverDrainsBacklogBeforeBarrier) {
  const EdgeListGraph base = SmallGraph(47);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 600, 53);

  auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, Opts(4));
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  EXPECT_TRUE(engine->resolver().worker_running());

  DynamicGraph replica = base.ToDynamic();
  // Route the whole stream without a single intermediate barrier, so the
  // resolver worker really is consuming transitions concurrently with the
  // shards (conflicts are injected mid-stream, not at a quiescent point).
  for (const GraphUpdate& update : trace) {
    engine->Apply(update);
    ApplyUpdate(&replica, update);
  }
  engine->Flush();
  EXPECT_EQ(engine->resolver().BacklogOps(), 0);
  EXPECT_GT(engine->resolver().TransitionsConsumed(), 0);

  EXPECT_TRUE(IsMaximalIndependentSet(replica, engine->Solution()));
  const ShardedStats stats = engine->ShardStats();
  EXPECT_TRUE(stats.async_resolver);
  EXPECT_EQ(stats.resolver_backlog, 0);
  EXPECT_GT(stats.transitions_consumed, 0);
  // The churn actually produced cut conflicts (otherwise this test proves
  // nothing about the repair path).
  EXPECT_GT(stats.conflicts, 0);
}

// Both resolver modes maintain the verified-maximal invariant on the same
// trace, and at S=1 (no cut edges, so the resolver never repairs anything)
// they reproduce the single engine's solution bit-for-bit.
TEST(ShardedEngineTest, SequentialResolverFallbackMatchesInvariants) {
  const EdgeListGraph base = SmallGraph(59);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 400, 61);

  for (const bool async : {false, true}) {
    ShardedEngineOptions options = Opts(4);
    options.async_resolver = async;
    auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, options);
    ASSERT_NE(engine, nullptr);
    engine->Initialize();
    DynamicGraph replica = base.ToDynamic();
    for (const GraphUpdate& update : trace) {
      engine->Apply(update);
      ApplyUpdate(&replica, update);
    }
    EXPECT_TRUE(IsMaximalIndependentSet(replica, engine->Solution()))
        << (async ? "async" : "sequential");
    EXPECT_EQ(engine->ShardStats().async_resolver, async);
  }

  std::vector<VertexId> solutions[2];
  for (const bool async : {false, true}) {
    ShardedEngineOptions options = Opts(1);
    options.async_resolver = async;
    auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, options);
    ASSERT_NE(engine, nullptr);
    engine->Initialize();
    for (const GraphUpdate& update : trace) engine->Apply(update);
    solutions[async ? 1 : 0] = engine->Solution();
  }
  EXPECT_EQ(solutions[0], solutions[1]);
}

// Replay determinism extends to the locality plan under the asynchronous
// resolver: block size, batch chopping, and mid-stream barriers must not
// change the final solution (the plan assigns ids in stream order, which
// is identical across runs).
TEST(ShardedEngineTest, LocalityPlanDeterministicReplayWithAsyncResolver) {
  const EdgeListGraph base = SmallGraph(67);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 500, 71);

  auto run = [&](int block_ops, int chunk, int query_every) {
    ShardedEngineOptions options = Opts(3, PartitionStrategy::kLocality);
    options.block_ops = block_ops;
    auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, options);
    EXPECT_NE(engine, nullptr);
    engine->Initialize();
    size_t i = 0;
    int since_query = 0;
    while (i < trace.size()) {
      const size_t end = std::min(trace.size(), i + chunk);
      engine->ApplyBatch(
          {trace.begin() + static_cast<long>(i),
           trace.begin() + static_cast<long>(end)});
      i = end;
      if (query_every > 0 && ++since_query >= query_every) {
        since_query = 0;
        engine->SolutionSize();
      }
    }
    return engine->Solution();
  };

  const std::vector<VertexId> a = run(1024, 97, 0);
  const std::vector<VertexId> b = run(7, 1, 3);
  const std::vector<VertexId> c = run(256, 500, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

// On a graph with planted communities, the streaming-greedy locality plan
// cuts strictly fewer edges than hash scattering, while the maintained
// solution stays maximal-independent under churn.
TEST(ShardedEngineTest, LocalityPlanLowersCutFractionOnClusteredGraph) {
  const EdgeListGraph base = ClusteredGraph(4, 60, 4, 80, 73);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 300, 79);

  double cut[2] = {0, 0};
  int i = 0;
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kLocality}) {
    auto engine =
        ShardedMisEngine::Create(base, {"DyTwoSwap"}, Opts(4, strategy));
    ASSERT_NE(engine, nullptr);
    engine->Initialize();
    DynamicGraph replica = base.ToDynamic();
    for (const GraphUpdate& update : trace) {
      engine->Apply(update);
      ApplyUpdate(&replica, update);
    }
    EXPECT_TRUE(IsMaximalIndependentSet(replica, engine->Solution()))
        << PartitionStrategyName(strategy);
    const ShardedStats stats = engine->ShardStats();
    EXPECT_EQ(stats.partition, PartitionStrategyName(strategy));
    cut[i++] = stats.cut_edge_fraction;
  }
  EXPECT_LT(cut[1], cut[0]);
  // The balance cap keeps the plan honest: no shard may swallow the graph.
  EXPECT_GT(cut[1], 0.0);
}

// The locality plan's owner table is state (unlike hash/range it cannot be
// recomputed from ids), so it must round-trip through the snapshot: the
// restored engine keeps every ownership decision, continues replaying
// deterministically, and resharding via CreateFromGraph reassigns fresh
// locality owners at the new shard count.
TEST(ShardedEngineTest, LocalityPlanRoundTripsThroughSnapshotAndReshard) {
  const EdgeListGraph base = ClusteredGraph(3, 50, 4, 60, 83);
  const std::vector<GraphUpdate> trace = ChurnTrace(base, 400, 89);

  auto engine = ShardedMisEngine::Create(
      base, {"DyTwoSwap"}, Opts(3, PartitionStrategy::kLocality));
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  for (size_t i = 0; i < 200; ++i) engine->Apply(trace[i]);

  std::ostringstream sink;
  ASSERT_TRUE(engine->SaveSnapshot(sink).ok);
  std::istringstream source(sink.str());
  SnapshotStatus status;
  auto restored = ShardedMisEngine::LoadSnapshot(source, &status);
  ASSERT_NE(restored, nullptr) << status.message;
  EXPECT_EQ(restored->options().partition, PartitionStrategy::kLocality);
  EXPECT_EQ(restored->Solution(), engine->Solution());
  // Every ownership decision survived the round trip verbatim.
  for (VertexId v : engine->Solution()) {
    EXPECT_EQ(restored->plan().ShardOf(v), engine->plan().ShardOf(v)) << v;
  }

  for (size_t i = 200; i < trace.size(); ++i) {
    const UpdateResult a = engine->Apply(trace[i]);
    const UpdateResult b = restored->Apply(trace[i]);
    EXPECT_EQ(a.new_vertices, b.new_vertices);
  }
  EXPECT_EQ(restored->Solution(), engine->Solution());

  // The resharding primitive: rebuild at a different shard count with a
  // fresh locality assignment over the live global graph.
  DynamicGraph global = restored->BuildGlobalGraph();
  auto resharded = ShardedMisEngine::CreateFromGraph(
      global, {"DyTwoSwap"}, Opts(5, PartitionStrategy::kLocality));
  ASSERT_NE(resharded, nullptr);
  resharded->Initialize();
  EXPECT_TRUE(IsMaximalIndependentSet(global, resharded->Solution()));
  EXPECT_EQ(resharded->ShardStats().partition, "locality");
}

}  // namespace
}  // namespace dynmis
