// Unit tests for the replication foundation: change-log record encoding,
// segment rotation, torn-tail tolerance vs corruption, fencing epochs
// (segment supersession, divergence detection, the durable epoch file),
// base-snapshot discovery, checkpoint bootstrap (base + tail replay), and
// the CreateFromGraph resharding primitive's id-space exactness.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dynmis/serve.h"
#include "dynmis/sharded_engine.h"
#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/repl/bootstrap.h"
#include "src/repl/change_log.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace repl {
namespace {

// A fresh, empty directory under the test tmpdir (prior runs' leftovers
// removed — change-log scans pick up anything that looks like a segment).
std::string FreshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

LogBatch MakeBatch(int64_t seq) {
  LogBatch batch;
  batch.seq = seq;
  GraphUpdate ins;
  ins.kind = UpdateKind::kInsertEdge;
  ins.u = static_cast<VertexId>(seq);
  ins.v = static_cast<VertexId>(seq + 1);
  batch.updates.push_back(ins);
  GraphUpdate insv;
  insv.kind = UpdateKind::kInsertVertex;
  insv.neighbors = {static_cast<VertexId>(seq), 2, 3};
  batch.updates.push_back(insv);
  GraphUpdate del;
  del.kind = UpdateKind::kDeleteVertex;
  del.u = static_cast<VertexId>(seq + 2);
  batch.updates.push_back(del);
  return batch;
}

void ExpectBatchEq(const LogBatch& want, const LogBatch& got) {
  EXPECT_EQ(want.seq, got.seq);
  ASSERT_EQ(want.updates.size(), got.updates.size());
  for (size_t i = 0; i < want.updates.size(); ++i) {
    EXPECT_EQ(want.updates[i].kind, got.updates[i].kind);
    EXPECT_EQ(want.updates[i].u, got.updates[i].u);
    EXPECT_EQ(want.updates[i].v, got.updates[i].v);
    EXPECT_EQ(want.updates[i].neighbors, got.updates[i].neighbors);
  }
}

TEST(ChangeLogRecordTest, EncodeDecodeRoundtrip) {
  const LogBatch batch = MakeBatch(42);
  const std::string record = EncodeLogRecord(batch);
  // Header = payload_len + crc; payload follows.
  ASSERT_GT(record.size(), 8u);
  LogBatch decoded;
  ASSERT_TRUE(DecodeLogPayload(record.data() + 8, record.size() - 8,
                               &decoded));
  ExpectBatchEq(batch, decoded);
}

TEST(ChangeLogRecordTest, TruncatedPayloadIsRejected) {
  const std::string record = EncodeLogRecord(MakeBatch(7));
  LogBatch decoded;
  EXPECT_FALSE(
      DecodeLogPayload(record.data() + 8, record.size() - 9, &decoded));
}

TEST(ChangeLogWriterTest, WriteReadRoundtrip) {
  const std::string dir = FreshDir("cl_roundtrip");
  ChangeLogWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(dir, 4 << 20, 0, /*epoch=*/3, &error)) << error;
  for (int64_t seq = 0; seq < 20; ++seq) {
    ASSERT_TRUE(writer.Append(MakeBatch(seq), &error)) << error;
  }
  ASSERT_TRUE(writer.Sync(&error)) << error;

  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  for (int64_t seq = 0; seq < 20; ++seq) {
    LogBatch batch;
    bool available = false;
    ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
    ASSERT_TRUE(available) << "seq " << seq;
    ExpectBatchEq(MakeBatch(seq), batch);
    // The cursor stamps each batch with its segment's fencing epoch.
    EXPECT_EQ(batch.epoch, 3);
  }
  // At the live tail: no record, no error.
  LogBatch batch;
  bool available = true;
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  EXPECT_FALSE(available);
  EXPECT_EQ(cursor.next_seq(), 20);
}

TEST(ChangeLogWriterTest, RotatesSegmentsAndCursorFollows) {
  const std::string dir = FreshDir("cl_rotate");
  ChangeLogWriter writer;
  std::string error;
  // Tiny threshold: every record lands past it, so each batch gets its own
  // segment after the first.
  ASSERT_TRUE(writer.Open(dir, 1, 0, /*epoch=*/1, &error)) << error;
  for (int64_t seq = 0; seq < 10; ++seq) {
    ASSERT_TRUE(writer.Append(MakeBatch(seq), &error)) << error;
  }
  ChangeLogDirState state;
  ASSERT_TRUE(ScanChangeLogDir(dir, &state, &error)) << error;
  // Every record lands in its own segment once the threshold trips.
  EXPECT_EQ(state.segments.size(), 10u);
  EXPECT_EQ(state.segments.front().first_seq, 0);
  EXPECT_EQ(state.segments.front().epoch, 1);
  EXPECT_EQ(state.max_epoch, 1);

  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  for (int64_t seq = 0; seq < 10; ++seq) {
    LogBatch batch;
    bool available = false;
    ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
    ASSERT_TRUE(available);
    EXPECT_EQ(batch.seq, seq);
  }
}

TEST(ChangeLogCursorTest, MidLogStartSkipsEarlierRecords) {
  const std::string dir = FreshDir("cl_midstart");
  ChangeLogWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(dir, 256, 0, /*epoch=*/1, &error)) << error;
  for (int64_t seq = 0; seq < 12; ++seq) {
    ASSERT_TRUE(writer.Append(MakeBatch(seq), &error)) << error;
  }
  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 7, &error)) << error;
  LogBatch batch;
  bool available = false;
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  ASSERT_TRUE(available);
  EXPECT_EQ(batch.seq, 7);
}

TEST(ChangeLogCursorTest, TornTailIsLiveNotCorrupt) {
  const std::string dir = FreshDir("cl_torn_tail");
  ChangeLogWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(dir, 4 << 20, 0, /*epoch=*/1, &error)) << error;
  ASSERT_TRUE(writer.Append(MakeBatch(0), &error)) << error;

  // Simulate an append in progress: half a record at the newest segment.
  const std::string record = EncodeLogRecord(MakeBatch(1));
  {
    std::ofstream out(dir + "/" + SegmentFileName(0),
                      std::ios::binary | std::ios::app);
    out.write(record.data(), static_cast<std::streamsize>(record.size() / 2));
  }

  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  LogBatch batch;
  bool available = false;
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  EXPECT_TRUE(available);
  EXPECT_EQ(batch.seq, 0);
  // The half record reads as "not yet available", repeatedly.
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  EXPECT_FALSE(available);

  // Completing the bytes makes the record appear on the next poll.
  {
    std::ofstream out(dir + "/" + SegmentFileName(0),
                      std::ios::binary | std::ios::app);
    out.write(record.data() + record.size() / 2,
              static_cast<std::streamsize>(record.size() - record.size() / 2));
  }
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  EXPECT_TRUE(available);
  EXPECT_EQ(batch.seq, 1);
}

TEST(ChangeLogCursorTest, TornRecordBeforeNewerSegmentIsCorruption) {
  const std::string dir = FreshDir("cl_torn_mid");
  ChangeLogWriter writer;
  std::string error;
  // Epoch 0 writer: the hand-written V1 successor below (header-only, no
  // epoch field) also reads as epoch 0, so this is a same-epoch rotation —
  // the fencing escape hatch must not kick in.
  ASSERT_TRUE(writer.Open(dir, 4 << 20, 0, /*epoch=*/0, &error)) << error;
  ASSERT_TRUE(writer.Append(MakeBatch(0), &error)) << error;
  const std::string record = EncodeLogRecord(MakeBatch(1));
  {
    std::ofstream out(dir + "/" + SegmentFileName(0),
                      std::ios::binary | std::ios::app);
    out.write(record.data(), static_cast<std::streamsize>(record.size() / 2));
  }
  // A same-epoch successor segment claims seq 1 lives there: the torn bytes
  // can no longer be an append in progress.
  {
    std::ofstream out(dir + "/" + SegmentFileName(1), std::ios::binary);
    out << "DMISLOG1";
  }
  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  LogBatch batch;
  bool available = false;
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  EXPECT_TRUE(available);
  EXPECT_FALSE(cursor.Next(&batch, &available, &error));
  EXPECT_NE(error.find("torn"), std::string::npos) << error;
}

TEST(ChangeLogCursorTest, CorruptPayloadFailsCrc) {
  const std::string dir = FreshDir("cl_crc");
  ChangeLogWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(dir, 4 << 20, 0, /*epoch=*/1, &error)) << error;
  ASSERT_TRUE(writer.Append(MakeBatch(0), &error)) << error;

  const std::string path = dir + "/" + SegmentFileName(0);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  // Flip one payload byte (past the 16-byte V2 segment header + 8-byte
  // record header).
  file.seekp(28);
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(28);
  byte = static_cast<char>(byte ^ 0x5a);
  file.write(&byte, 1);
  file.close();

  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  LogBatch batch;
  bool available = false;
  EXPECT_FALSE(cursor.Next(&batch, &available, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(ChangeLogCursorTest, OpenBeforeRetainedHistoryFails) {
  const std::string dir = FreshDir("cl_lost_tail");
  ChangeLogWriter writer;
  std::string error;
  // Writer starts at seq 10 (earlier history never existed here).
  ASSERT_TRUE(writer.Open(dir, 4 << 20, 10, /*epoch=*/1, &error)) << error;
  ASSERT_TRUE(writer.Append(MakeBatch(10), &error)) << error;
  ChangeLogCursor cursor;
  EXPECT_FALSE(cursor.Open(dir, 3, &error));
}

TEST(ChangeLogCursorTest, HigherEpochSupersedesFencedTail) {
  const std::string dir = FreshDir("cl_fence");
  std::string error;
  // Writer A (epoch 1) logs seqs 0..3 — but its seq-3 batch was never
  // replicated before the failover, and the new primary logged a different
  // seq 3.
  {
    ChangeLogWriter old_primary;
    ASSERT_TRUE(old_primary.Open(dir, 4 << 20, 0, /*epoch=*/1, &error))
        << error;
    for (int64_t seq = 0; seq < 3; ++seq) {
      ASSERT_TRUE(old_primary.Append(MakeBatch(seq), &error)) << error;
    }
    LogBatch diverged = MakeBatch(100);
    diverged.seq = 3;
    ASSERT_TRUE(old_primary.Append(diverged, &error)) << error;
  }
  // Writer B (epoch 2) takes over from the last replicated seq.
  ChangeLogWriter new_primary;
  ASSERT_TRUE(new_primary.Open(dir, 4 << 20, 3, /*epoch=*/2, &error)) << error;
  ASSERT_TRUE(new_primary.Append(MakeBatch(3), &error)) << error;
  ASSERT_TRUE(new_primary.Sync(&error)) << error;

  // A replica that stopped at seq 3 replays A's prefix, then jumps to B's
  // segment for seq 3 — never seeing the fenced writer's diverged record.
  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  for (int64_t seq = 0; seq < 3; ++seq) {
    LogBatch batch;
    bool available = false;
    ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
    ASSERT_TRUE(available);
    EXPECT_EQ(batch.epoch, 1);
    ExpectBatchEq(MakeBatch(seq), batch);
  }
  LogBatch batch;
  bool available = false;
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  ASSERT_TRUE(available);
  EXPECT_EQ(batch.epoch, 2);
  ExpectBatchEq(MakeBatch(3), batch);
}

TEST(ChangeLogCursorTest, EpochForkBelowReplayedSeqIsDivergence) {
  const std::string dir = FreshDir("cl_diverge");
  std::string error;
  {
    ChangeLogWriter old_primary;
    ASSERT_TRUE(old_primary.Open(dir, 4 << 20, 0, /*epoch=*/1, &error))
        << error;
    for (int64_t seq = 0; seq < 5; ++seq) {
      ASSERT_TRUE(old_primary.Append(MakeBatch(seq), &error)) << error;
    }
  }
  // This replica consumed all five records before the failover...
  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  for (int64_t seq = 0; seq < 5; ++seq) {
    LogBatch batch;
    bool available = false;
    ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
    ASSERT_TRUE(available);
  }
  // ...but the new primary (epoch 2) forked at seq 3: records 3 and 4 the
  // replica already applied came from the fenced writer's unreplicated
  // tail. The replica cannot be patched forward — it must rebuild.
  ChangeLogWriter new_primary;
  ASSERT_TRUE(new_primary.Open(dir, 4 << 20, 3, /*epoch=*/2, &error)) << error;
  ASSERT_TRUE(new_primary.Append(MakeBatch(3), &error)) << error;
  ASSERT_TRUE(new_primary.Sync(&error)) << error;
  LogBatch batch;
  bool available = false;
  EXPECT_FALSE(cursor.Next(&batch, &available, &error));
  EXPECT_NE(error.find("diverged"), std::string::npos) << error;
}

TEST(ChangeLogCursorTest, LegacyV1SegmentReadsAsEpochZero) {
  const std::string dir = FreshDir("cl_v1");
  {
    std::ofstream out(dir + "/" + SegmentFileName(0), std::ios::binary);
    out << "DMISLOG1";
    const std::string record = EncodeLogRecord(MakeBatch(0));
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
  }
  std::string error;
  ChangeLogDirState state;
  ASSERT_TRUE(ScanChangeLogDir(dir, &state, &error)) << error;
  ASSERT_EQ(state.segments.size(), 1u);
  EXPECT_TRUE(state.segments[0].header_complete);
  EXPECT_EQ(state.segments[0].epoch, 0);
  ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  LogBatch batch;
  bool available = false;
  ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
  ASSERT_TRUE(available);
  EXPECT_EQ(batch.epoch, 0);
  ExpectBatchEq(MakeBatch(0), batch);
}

TEST(EpochFileTest, RoundTripAndMissingReadsAsZero) {
  const std::string dir = FreshDir("cl_epoch");
  EXPECT_EQ(ReadEpochFile(dir), 0);  // No file yet: pre-fencing log.
  std::string error;
  ASSERT_TRUE(WriteEpochFile(dir, 7, &error)) << error;
  EXPECT_EQ(ReadEpochFile(dir), 7);
  EXPECT_EQ(ReadEpochValue((dir + "/epoch").c_str()), 7);
  ASSERT_TRUE(WriteEpochFile(dir, 8, &error)) << error;
  EXPECT_EQ(ReadEpochFile(dir), 8);
}

TEST(CleanStaleTmpFilesTest, RemovesOnlyTmpFiles) {
  const std::string dir = FreshDir("cl_tmp");
  { std::ofstream(dir + "/base-0000000000000005.snap.tmp") << "torn"; }
  { std::ofstream(dir + "/epoch.tmp") << "torn"; }
  { std::ofstream(dir + "/" + SegmentFileName(0)) << "DMISLOG1"; }
  EXPECT_EQ(CleanStaleTmpFiles(dir), 2);
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/base-0000000000000005.snap.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + SegmentFileName(0)));
}

TEST(BaseSnapshotTest, ScanFindsNewestBaseAndPrologueCarriesEpoch) {
  const std::string dir = FreshDir("cl_base");
  std::string error;
  ASSERT_TRUE(WriteBaseSnapshot(dir, 5, /*epoch=*/1, "five", &error)) << error;
  ASSERT_TRUE(WriteBaseSnapshot(dir, 12, /*epoch=*/2, "twelve", &error))
      << error;
  ChangeLogDirState state;
  ASSERT_TRUE(ScanChangeLogDir(dir, &state, &error)) << error;
  EXPECT_EQ(state.latest_base_seq, 12);
  std::ifstream in;
  int64_t epoch = -1;
  ASSERT_TRUE(OpenBaseSnapshot(state.latest_base_path, &in, &epoch, &error))
      << error;
  EXPECT_EQ(epoch, 2);
  std::stringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str(), "twelve");
}

TEST(BaseSnapshotTest, LegacyFileWithoutPrologueReadsAsEpochZero) {
  const std::string dir = FreshDir("cl_base_v1");
  { std::ofstream(dir + "/" + BaseSnapshotFileName(3)) << "legacy-bytes"; }
  std::ifstream in;
  int64_t epoch = -1;
  std::string error;
  ASSERT_TRUE(OpenBaseSnapshot(dir + "/" + BaseSnapshotFileName(3), &in,
                               &epoch, &error))
      << error;
  EXPECT_EQ(epoch, 0);
  std::stringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str(), "legacy-bytes");
}

// Checkpoint = newest base snapshot + record tail: bootstrap must land on
// the same state (and byte-identical solution) as the log's producer.
TEST(BootstrapTest, BaseSnapshotPlusTailReplaysToProducerState) {
  const std::string dir = FreshDir("cl_bootstrap");
  Rng rng(11);
  const EdgeListGraph base = ErdosRenyiGnm(80, 160, &rng);
  serve::ServeOptions options;
  options.backend = "sharded";
  options.shards = 3;

  std::string error;
  auto primary = serve::MakeServingBackend(base, options, &error);
  ASSERT_NE(primary, nullptr) << error;

  ChangeLogWriter writer;
  ASSERT_TRUE(writer.Open(dir, 1 << 12, 0, /*epoch=*/4, &error)) << error;
  DynamicGraph mirror = base.ToDynamic();
  UpdateStreamOptions stream;
  stream.seed = 99;
  UpdateStreamGenerator generator(stream);
  for (int64_t seq = 0; seq < 40; ++seq) {
    LogBatch batch;
    batch.seq = seq;
    for (int i = 0; i < 5; ++i) {
      const GraphUpdate update = generator.Next(mirror);
      ApplyUpdate(&mirror, update);
      batch.updates.push_back(update);
    }
    primary->ApplyBatch(batch.updates);
    ASSERT_TRUE(writer.Append(batch, &error)) << error;
    if (seq == 24) {
      // Background snapshot at a batch boundary: base-25.snap covers
      // batches [0, 25).
      std::ostringstream snap;
      ASSERT_TRUE(primary->SaveSnapshot(snap).ok);
      ASSERT_TRUE(
          WriteBaseSnapshot(dir, 25, /*epoch=*/4, std::move(snap).str(),
                            &error))
          << error;
    }
  }
  ASSERT_TRUE(writer.Sync(&error)) << error;

  BootstrapResult boot;
  ASSERT_TRUE(BootstrapFromChangeLog(dir, base, options, &boot, &error))
      << error;
  EXPECT_EQ(boot.base_seq, 25);
  EXPECT_EQ(boot.tail_batches, 15);
  EXPECT_EQ(boot.next_seq, 40);
  EXPECT_EQ(boot.epoch, 4);

  std::vector<VertexId> want;
  primary->CollectSolution(&want);
  std::vector<VertexId> got;
  boot.backend->CollectSolution(&got);
  EXPECT_EQ(want, got);
}

// CreateFromGraph must reproduce the source graph's id space exactly —
// same capacity, same free-list recycle order — so a resharded engine
// assigns future vertex ids identically to the engine it replaced.
TEST(CreateFromGraphTest, IdAllocationAndSolutionSurviveResharding) {
  Rng rng(5);
  const EdgeListGraph base = ErdosRenyiGnm(60, 150, &rng);
  DynamicGraph global = base.ToDynamic();
  // Punch dead-id holes in a nontrivial recycle order.
  for (const VertexId v : {3, 41, 17, 9, 55}) global.RemoveVertex(v);

  ShardedEngineOptions options;
  options.num_shards = 4;
  auto engine =
      ShardedMisEngine::CreateFromGraph(global, MaintainerConfig{}, options);
  ASSERT_NE(engine, nullptr);
  engine->Initialize();

  // Future inserts allocate the same ids in both id spaces.
  for (int i = 0; i < 8; ++i) {
    const VertexId want = global.AddVertex();
    EXPECT_EQ(engine->InsertVertex({}), want);
  }

  const std::vector<VertexId> solution = engine->Solution();
  EXPECT_TRUE(testing_util::IsIndependentSet(global, solution));
  EXPECT_TRUE(testing_util::IsMaximalIndependentSet(global, solution));
}

}  // namespace
}  // namespace repl
}  // namespace dynmis
