// Generator tests: structural laws (sizes, degrees, determinism), power-law
// shape of the configuration-model / Chung-Lu outputs, and the special
// families (hypercubes, subdivisions) used by the Theorem 3 constructions.

#include "src/graph/generators.h"

#include <set>

#include "gtest/gtest.h"
#include "src/graph/degree_stats.h"

namespace dynmis {
namespace {

void ExpectSimple(const EdgeListGraph& g) {
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& [u, v] : g.edges) {
    EXPECT_NE(u, v);
    EXPECT_GE(u, 0);
    EXPECT_LT(u, g.n);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, g.n);
    EXPECT_TRUE(seen.insert({std::min(u, v), std::max(u, v)}).second)
        << "duplicate edge " << u << "," << v;
  }
}

TEST(GeneratorsTest, ErdosRenyiProducesRequestedEdges) {
  Rng rng(1);
  const EdgeListGraph g = ErdosRenyiGnm(100, 300, &rng);
  EXPECT_EQ(g.n, 100);
  EXPECT_EQ(g.NumEdges(), 300);
  ExpectSimple(g);
}

TEST(GeneratorsTest, ErdosRenyiCapsAtCompleteGraph) {
  Rng rng(2);
  const EdgeListGraph g = ErdosRenyiGnm(5, 1000, &rng);
  EXPECT_EQ(g.NumEdges(), 10);
  ExpectSimple(g);
}

TEST(GeneratorsTest, ErdosRenyiIsDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  const EdgeListGraph a = ErdosRenyiGnm(50, 120, &rng_a);
  const EdgeListGraph b = ErdosRenyiGnm(50, 120, &rng_b);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(GeneratorsTest, BarabasiAlbertDegreeLaw) {
  Rng rng(3);
  const int n = 500;
  const int m = 3;
  const EdgeListGraph g = BarabasiAlbert(n, m, &rng);
  EXPECT_EQ(g.n, n);
  // Seed clique of m+1 vertices contributes C(m+1,2); each later vertex m.
  const int64_t expected =
      (m + 1) * m / 2 + static_cast<int64_t>(n - m - 1) * m;
  EXPECT_EQ(g.NumEdges(), expected);
  ExpectSimple(g);
  // Every non-seed vertex has degree >= m.
  std::vector<int> degree(n, 0);
  for (const auto& [u, v] : g.edges) {
    ++degree[u];
    ++degree[v];
  }
  for (int v = m + 1; v < n; ++v) EXPECT_GE(degree[v], m);
}

TEST(GeneratorsTest, PowerLawDegreeSequenceRespectsBounds) {
  Rng rng(4);
  const std::vector<int> degrees =
      PowerLawDegreeSequence(1000, 2.5, 1, 50, &rng);
  int64_t sum = 0;
  for (int d : degrees) {
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 51);  // Parity fix may add one.
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0);
  // Power-law with beta 2.5 and dmin 1: well over half the mass at degree 1.
  int ones = 0;
  for (int d : degrees) ones += d == 1;
  EXPECT_GT(ones, 400);
}

TEST(GeneratorsTest, ConfigurationModelRoughlyMatchesDegrees) {
  Rng rng(5);
  std::vector<int> degrees(200, 3);
  const EdgeListGraph g = ConfigurationModel(degrees, &rng);
  ExpectSimple(g);
  // Erasure removes only a few self-loops/multi-edges.
  EXPECT_GT(g.NumEdges(), 280);
  EXPECT_LE(g.NumEdges(), 300);
}

TEST(GeneratorsTest, PowerLawRandomGraphHasHeavyTailExponent) {
  Rng rng(6);
  const EdgeListGraph g = PowerLawRandomGraph(20000, 2.5, 1, 140, &rng);
  ExpectSimple(g);
  const DegreeStats stats = ComputeDegreeStats(g.ToStatic());
  const double beta = EstimatePowerLawExponent(stats);
  EXPECT_GT(beta, 1.8);
  EXPECT_LT(beta, 3.2);
}

TEST(GeneratorsTest, ChungLuMeanDegreeNearTarget) {
  Rng rng(8);
  const EdgeListGraph g = ChungLuPowerLaw(20000, 2.5, 8.0, &rng);
  ExpectSimple(g);
  EXPECT_GT(g.AverageDegree(), 4.0);
  EXPECT_LT(g.AverageDegree(), 12.0);
}

TEST(GeneratorsTest, RMatShape) {
  Rng rng(9);
  const EdgeListGraph g = RMat(10, 4000, 0.57, 0.19, 0.19, &rng);
  EXPECT_EQ(g.n, 1024);
  ExpectSimple(g);
  EXPECT_GT(g.NumEdges(), 3000);
}

TEST(GeneratorsTest, DeterministicFamilies) {
  EXPECT_EQ(CompleteGraph(5).NumEdges(), 10);
  EXPECT_EQ(PathGraph(5).NumEdges(), 4);
  EXPECT_EQ(CycleGraph(5).NumEdges(), 5);
  EXPECT_EQ(StarGraph(6).NumEdges(), 6);
  const EdgeListGraph q3 = Hypercube(3);
  EXPECT_EQ(q3.n, 8);
  EXPECT_EQ(q3.NumEdges(), 12);  // 2^(d-1) * d.
}

TEST(GeneratorsTest, SubdivideEdgesDoublesEdgesAddsVertices) {
  const EdgeListGraph k4 = CompleteGraph(4);
  const EdgeListGraph sub = SubdivideEdges(k4);
  EXPECT_EQ(sub.n, 4 + 6);
  EXPECT_EQ(sub.NumEdges(), 12);
  ExpectSimple(sub);
  // Original vertices only touch subdivision vertices.
  for (const auto& [u, v] : sub.edges) {
    EXPECT_TRUE((u < 4) != (v < 4));
  }
}

TEST(GeneratorsTest, RandomRegularDegreesCloseToTarget) {
  Rng rng(10);
  const EdgeListGraph g = RandomRegular(100, 4, &rng);
  ExpectSimple(g);
  std::vector<int> degree(g.n, 0);
  for (const auto& [u, v] : g.edges) {
    ++degree[u];
    ++degree[v];
  }
  for (int v = 0; v < g.n; ++v) EXPECT_LE(degree[v], 5);
}

}  // namespace
}  // namespace dynmis
