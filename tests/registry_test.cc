// MaintainerRegistry: round-trip construction of every registered name,
// alias/config-patch resolution, clean failure on unknown names, and
// self-registration through DYNMIS_REGISTER_MAINTAINER.

#include "dynmis/registry.h"

#include <algorithm>
#include <memory>

#include "gtest/gtest.h"
#include "src/core/one_swap.h"
#include "src/graph/generators.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

EdgeListGraph SmallGraph() {
  Rng rng(42);
  return ErdosRenyiGnm(30, 60, &rng);
}

TEST(RegistryTest, EveryRegisteredNameConstructs) {
  const EdgeListGraph base = SmallGraph();
  const MaintainerRegistry& registry = MaintainerRegistry::Global();
  const std::vector<std::string> names = registry.ListNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    DynamicGraph g = base.ToDynamic();
    auto algo = registry.Create(name, &g);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_TRUE(registry.Has(name));
    algo->Initialize({});
    EXPECT_GT(algo->SolutionSize(), 0) << name;
    // The display name round-trips for every non-parameterized built-in;
    // the KSwap aliases spell out their parameter instead, and the
    // test-only registration below reuses DyOneSwap under another name.
    if (name.rfind("KSwap", 0) != 0 && name != "RegistryTestAlgo") {
      EXPECT_EQ(algo->Name(), name);
    }
  }
}

TEST(RegistryTest, KSwapAliasesEncodeK) {
  const EdgeListGraph base = SmallGraph();
  for (int k = 1; k <= 4; ++k) {
    DynamicGraph g = base.ToDynamic();
    auto algo = MaintainerRegistry::Global().Create(
        "KSwap" + std::to_string(k), &g);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->Name(), "KSwap(k=" + std::to_string(k) + ")");
  }
  // The canonical name reads k from the config.
  DynamicGraph g = base.ToDynamic();
  MaintainerConfig config("KSwap");
  config.k = 3;
  auto algo = MaintainerRegistry::Global().Create(config, &g);
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->Name(), "KSwap(k=3)");
}

TEST(RegistryTest, AliasesPatchTheConfig) {
  const EdgeListGraph base = SmallGraph();
  DynamicGraph g1 = base.ToDynamic();
  auto perturbed = MaintainerRegistry::Global().Create("DyOneSwap*", &g1);
  ASSERT_NE(perturbed, nullptr);
  EXPECT_EQ(perturbed->Name(), "DyOneSwap*");
  DynamicGraph g2 = base.ToDynamic();
  auto lazy = MaintainerRegistry::Global().Create("DyTwoSwap-lazy", &g2);
  ASSERT_NE(lazy, nullptr);
  EXPECT_EQ(lazy->Name(), "DyTwoSwap-lazy");
}

TEST(RegistryTest, UnknownNameFailsCleanly) {
  const EdgeListGraph base = SmallGraph();
  DynamicGraph g = base.ToDynamic();
  EXPECT_EQ(MaintainerRegistry::Global().Create("bogus", &g), nullptr);
  EXPECT_FALSE(MaintainerRegistry::Global().Has("bogus"));
  EXPECT_EQ(MaintainerRegistry::Global().Describe("bogus"), "");
}

TEST(RegistryTest, ListAlgorithmsCoversTheBuiltins) {
  const std::vector<std::string> algos =
      MaintainerRegistry::Global().ListAlgorithms();
  for (const char* expected : {"DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap",
                               "DyTwoSwap", "KSwap", "Recompute"}) {
    EXPECT_NE(std::find(algos.begin(), algos.end(), expected), algos.end())
        << expected;
  }
  // Aliases are listed as accepted names but not as algorithms.
  const std::vector<std::string> names =
      MaintainerRegistry::Global().ListNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "DyTwoSwap*"), names.end());
  EXPECT_EQ(std::find(algos.begin(), algos.end(), "DyTwoSwap*"), algos.end());
}

TEST(RegistryTest, DuplicateAndDanglingRegistrationsAreRejected) {
  MaintainerRegistry& registry = MaintainerRegistry::Global();
  auto factory = [](DynamicGraph* g, const MaintainerConfig& config) {
    return std::make_unique<DyOneSwap>(g, config);
  };
  EXPECT_FALSE(registry.Register("DyOneSwap", factory));   // Name taken.
  EXPECT_FALSE(registry.Register("DyOneSwap*", factory));  // Alias taken.
  EXPECT_FALSE(registry.RegisterAlias("MyAlias", "NoSuchAlgo"));
  EXPECT_FALSE(registry.RegisterAlias("DyOneSwap", "DyTwoSwap"));
  EXPECT_FALSE(registry.Register("", factory));
}

// One-file self-registration: this is all an out-of-tree algorithm needs.
DYNMIS_REGISTER_MAINTAINER(
    "RegistryTestAlgo", "test-only registration",
    [](DynamicGraph* g, const MaintainerConfig& config) {
      return std::make_unique<DyOneSwap>(g, config);
    });

TEST(RegistryTest, MacroRegistrationIsVisible) {
  EXPECT_TRUE(MaintainerRegistry::Global().Has("RegistryTestAlgo"));
  EXPECT_EQ(MaintainerRegistry::Global().Describe("RegistryTestAlgo"),
            "test-only registration");
  const EdgeListGraph base = SmallGraph();
  DynamicGraph g = base.ToDynamic();
  auto algo = MaintainerRegistry::Global().Create("RegistryTestAlgo", &g);
  ASSERT_NE(algo, nullptr);
  algo->Initialize({});
  EXPECT_GT(algo->SolutionSize(), 0);
}

}  // namespace
}  // namespace dynmis
