// Brute-force verifiers shared by the test suites: independence,
// maximality, and existence of j-swaps (the definitional check behind the
// paper's k-maximality invariant, Theorem 5). These are deliberately naive
// (exponential in j) and meant for the small graphs used in property tests.

#ifndef DYNMIS_TESTS_VERIFIERS_H_
#define DYNMIS_TESTS_VERIFIERS_H_

#include <algorithm>
#include <vector>

#include "src/graph/dynamic_graph.h"

namespace dynmis {
namespace testing_util {

inline bool IsIndependentSet(const DynamicGraph& g,
                             const std::vector<VertexId>& solution) {
  for (size_t i = 0; i < solution.size(); ++i) {
    if (!g.IsVertexAlive(solution[i])) return false;
    for (size_t j = i + 1; j < solution.size(); ++j) {
      if (g.HasEdge(solution[i], solution[j])) return false;
    }
  }
  return true;
}

inline bool IsMaximalIndependentSet(const DynamicGraph& g,
                                    const std::vector<VertexId>& solution) {
  if (!IsIndependentSet(g, solution)) return false;
  std::vector<uint8_t> in_solution(g.VertexCapacity(), 0);
  for (VertexId v : solution) in_solution[v] = 1;
  for (VertexId v = 0; v < g.VertexCapacity(); ++v) {
    if (!g.IsVertexAlive(v) || in_solution[v]) continue;
    bool covered = false;
    g.ForEachIncident(v, [&](VertexId u, EdgeId) {
      if (in_solution[u]) covered = true;
    });
    if (!covered) return false;
  }
  return true;
}

// True if `candidates` contains an independent subset of size `target`
// (exponential search; fine for test-sized candidate pools).
inline bool HasIndependentSubset(const DynamicGraph& g,
                                 const std::vector<VertexId>& candidates,
                                 int target) {
  std::vector<VertexId> chosen;
  auto dfs = [&](auto&& self, size_t from) -> bool {
    if (static_cast<int>(chosen.size()) == target) return true;
    for (size_t i = from; i < candidates.size(); ++i) {
      const VertexId w = candidates[i];
      bool ok = true;
      for (VertexId c : chosen) {
        if (g.HasEdge(c, w)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      chosen.push_back(w);
      if (self(self, i + 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  return dfs(dfs, 0);
}

// True if the solution admits a j-swap for some j <= k: a set S of j
// solution vertices whose region bar_I<=j(S) = {u not in I : all solution
// neighbours of u lie in S, count(u) >= 1} contains an independent set of
// size j + 1.
inline bool HasSwapUpTo(const DynamicGraph& g,
                        const std::vector<VertexId>& solution, int k) {
  std::vector<int> count(g.VertexCapacity(), 0);
  std::vector<uint8_t> in_solution(g.VertexCapacity(), 0);
  for (VertexId v : solution) in_solution[v] = 1;
  for (VertexId v : solution) {
    g.ForEachIncident(v, [&](VertexId u, EdgeId) { ++count[u]; });
  }
  // Enumerate subsets S of the solution of size j = 1..k.
  std::vector<VertexId> sol = solution;
  std::sort(sol.begin(), sol.end());
  std::vector<VertexId> subset;
  auto region_has_swap = [&]() {
    std::vector<VertexId> region;
    for (VertexId s : subset) {
      g.ForEachIncident(s, [&](VertexId u, EdgeId) {
        if (in_solution[u]) return;
        if (std::find(region.begin(), region.end(), u) != region.end()) return;
        if (count[u] > static_cast<int>(subset.size())) return;
        // All solution neighbours of u must lie in S.
        bool inside = true;
        g.ForEachIncident(u, [&](VertexId w, EdgeId) {
          if (in_solution[w] &&
              std::find(subset.begin(), subset.end(), w) == subset.end()) {
            inside = false;
          }
        });
        if (inside) region.push_back(u);
      });
    }
    return HasIndependentSubset(g, region,
                                static_cast<int>(subset.size()) + 1);
  };
  auto enumerate = [&](auto&& self, size_t from, int remaining) -> bool {
    if (remaining == 0) return region_has_swap();
    for (size_t i = from; i < sol.size(); ++i) {
      subset.push_back(sol[i]);
      if (self(self, i + 1, remaining - 1)) return true;
      subset.pop_back();
    }
    return false;
  };
  for (int j = 1; j <= k; ++j) {
    if (enumerate(enumerate, 0, j)) return true;
  }
  return false;
}

}  // namespace testing_util
}  // namespace dynmis

#endif  // DYNMIS_TESTS_VERIFIERS_H_
