// Failure injection: the library's contract is that API misuse aborts with
// a DYNMIS_CHECK (no exceptions, no undefined behaviour). These death tests
// pin down the checked preconditions.

#include "gtest/gtest.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/generators.h"

namespace dynmis {
namespace {

using DeathTest = ::testing::Test;

TEST(FailureInjectionTest, RemoveMissingEdgeAborts) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  EXPECT_FALSE(g.RemoveEdgeBetween(1, 2));  // Graceful form returns false.
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  EXPECT_DEATH(algo.DeleteEdge(1, 2), "DYNMIS_CHECK");
}

TEST(FailureInjectionTest, RemoveDeadVertexAborts) {
  DynamicGraph g(3);
  g.RemoveVertex(1);
  EXPECT_DEATH(g.RemoveVertex(1), "DYNMIS_CHECK");
}

TEST(FailureInjectionTest, SelfLoopAborts) {
  DynamicGraph g(3);
  EXPECT_DEATH(g.AddEdge(1, 1), "DYNMIS_CHECK");
}

TEST(FailureInjectionTest, EdgeToDeadVertexAborts) {
  DynamicGraph g(3);
  g.RemoveVertex(2);
  EXPECT_DEATH(g.AddEdge(0, 2), "DYNMIS_CHECK");
}

TEST(FailureInjectionTest, NonIndependentInitialSolutionAborts) {
  DynamicGraph g(2);
  g.AddEdge(0, 1);
  DyTwoSwap algo(&g);
  EXPECT_DEATH(algo.Initialize({0, 1}), "DYNMIS_CHECK");
}

TEST(FailureInjectionTest, InitialSolutionWithDeadVertexAborts) {
  DynamicGraph g(3);
  g.RemoveVertex(1);
  DyOneSwap algo(&g);
  EXPECT_DEATH(algo.Initialize({1}), "DYNMIS_CHECK");
}

TEST(FailureInjectionTest, DeleteVertexTwiceThroughMaintainerAborts) {
  DynamicGraph g = PathGraph(4).ToDynamic();
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  algo.DeleteVertex(2);
  EXPECT_DEATH(algo.DeleteVertex(2), "DYNMIS_CHECK");
}

TEST(FailureInjectionTest, InsertVertexSelfNeighborAborts) {
  DynamicGraph g(2);
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  // The new vertex's id will be 2; listing it as its own neighbour is a
  // caller bug caught by the edge checks.
  EXPECT_DEATH(algo.InsertVertex({2}), "DYNMIS_CHECK");
}

}  // namespace
}  // namespace dynmis
