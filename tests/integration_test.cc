// End-to-end integration: all maintainers over long shared streams on
// realistic (power-law, dataset-registry) graphs, cross-validated against
// each other and against periodic exact solves; dataset-pipeline smoke
// tests; long-horizon stability (vertex id churn, graph emptying and
// regrowth).

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/static_mis/exact.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::IsMaximalIndependentSet;

// A long mixed stream over a power-law graph, processed in lock-step by all
// maintainers; every 100 steps the maintained sizes are compared against an
// exact solve of the current graph.
TEST(IntegrationTest, LockStepStreamOnPowerLawGraph) {
  Rng rng(1234);
  const EdgeListGraph base = ChungLuPowerLaw(400, 2.4, 6.0, &rng);
  const std::vector<MaintainerConfig> kinds = {
      "DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap", "KSwap2"};

  std::vector<DynamicGraph> graphs;
  graphs.reserve(kinds.size());
  for (size_t i = 0; i < kinds.size(); ++i) graphs.push_back(base.ToDynamic());
  std::vector<std::unique_ptr<DynamicMisMaintainer>> algos;
  for (size_t i = 0; i < kinds.size(); ++i) {
    algos.push_back(MaintainerRegistry::Global().Create(kinds[i], &graphs[i]));
    algos.back()->Initialize({});
  }

  UpdateStreamOptions stream;
  stream.seed = 77;
  stream.bias = EndpointBias::kDegreeProportional;
  UpdateStreamGenerator gen(stream);
  for (int step = 1; step <= 600; ++step) {
    const GraphUpdate update = gen.Next(graphs[0]);
    for (auto& algo : algos) algo->Apply(update);
    // Graphs stay in lock step.
    for (size_t i = 1; i < graphs.size(); ++i) {
      ASSERT_EQ(graphs[0].NumEdges(), graphs[i].NumEdges()) << "step " << step;
    }
    if (step % 100 == 0) {
      const auto alpha = ExactAlpha(StaticGraph::FromDynamic(graphs[0]));
      ASSERT_TRUE(alpha.has_value());
      for (size_t i = 0; i < algos.size(); ++i) {
        ASSERT_TRUE(IsMaximalIndependentSet(graphs[i], algos[i]->Solution()))
            << algos[i]->Name() << " step " << step;
        EXPECT_LE(algos[i]->SolutionSize(), *alpha) << algos[i]->Name();
        // The swap-based maintainers stay close to optimal under churn; the
        // DG* baselines only guarantee maximality and are allowed to sag
        // (that degradation is the paper's core experimental finding).
        const bool swap_based = kinds[i].algorithm != "DGOneDIS" &&
                                kinds[i].algorithm != "DGTwoDIS";
        EXPECT_GE(algos[i]->SolutionSize() * 100,
                  *alpha * (swap_based ? 80 : 55))
            << algos[i]->Name() << " step " << step;
      }
      // The swap-based maintainers should be at least as good as the
      // maximality-only baselines on aggregate.
      EXPECT_GE(algos[4]->SolutionSize() + 2, algos[0]->SolutionSize());
    }
  }
}

// Drain the graph to empty and regrow it: exercises vertex-id recycling,
// empty-graph corner cases and capacity regrowth in one run.
TEST(IntegrationTest, DrainAndRegrow) {
  Rng rng(9);
  const EdgeListGraph base = ErdosRenyiGnm(60, 120, &rng);
  DynamicGraph g = base.ToDynamic();
  auto algo = MaintainerRegistry::Global().Create("DyTwoSwap", &g);
  algo->Initialize({});
  // Drain.
  while (g.NumVertices() > 0) {
    algo->DeleteVertex(g.AliveVertices().front());
    ASSERT_TRUE(IsMaximalIndependentSet(g, algo->Solution()));
  }
  EXPECT_EQ(algo->SolutionSize(), 0);
  // Regrow with random attachments.
  UpdateStreamOptions stream;
  stream.seed = 31;
  stream.edge_op_fraction = 0.3;  // Vertex-heavy.
  stream.insert_fraction = 0.9;
  UpdateStreamGenerator gen(stream);
  for (int step = 0; step < 300; ++step) {
    algo->Apply(gen.Next(g));
    ASSERT_TRUE(IsMaximalIndependentSet(g, algo->Solution())) << step;
  }
  EXPECT_GT(g.NumVertices(), 50);
  EXPECT_GT(algo->SolutionSize(), 0);
}

// The full dataset pipeline: generate every registry stand-in, run a short
// stream with the real harness, sanity-check outputs.
TEST(IntegrationTest, DatasetPipelineSmoke) {
  int checked = 0;
  for (const auto* specs : {&EasyDatasets(), &HardDatasets()}) {
    for (const DatasetSpec& spec : *specs) {
      if (spec.n > 6000) continue;  // Keep the suite fast.
      const EdgeListGraph base = GenerateDataset(spec);
      ExperimentConfig config;
      config.initial = InitialSolution::kGreedy;
      config.num_updates = 300;
      config.stream.seed = spec.seed;
      config.stream.bias = EndpointBias::kDegreeProportional;
      const ExperimentResult result =
          RunExperiment(base, {"DyOneSwap", "DyTwoSwap"}, config);
      for (const AlgoRunResult& run : result.algos) {
        EXPECT_TRUE(run.finished) << spec.name;
        EXPECT_GT(run.final_size, 0) << spec.name;
      }
      EXPECT_GE(FindRun(result, "DyTwoSwap").final_size,
                FindRun(result, "DyOneSwap").final_size - 2)
          << spec.name;
      ++checked;
    }
  }
  EXPECT_GE(checked, 8);
}

// Degree-biased streams preserve the heavy tail (the property the
// experiment design relies on).
TEST(IntegrationTest, DegreeBiasedChurnPreservesHeavyTail) {
  Rng rng(5);
  const EdgeListGraph base = ChungLuPowerLaw(3000, 2.3, 8.0, &rng);
  DynamicGraph g = base.ToDynamic();
  const int initial_max_degree = g.MaxDegree();
  UpdateStreamOptions stream;
  stream.seed = 11;
  stream.bias = EndpointBias::kDegreeProportional;
  UpdateStreamGenerator gen(stream);
  const auto updates = static_cast<int>(base.NumEdges() / 2);
  for (int i = 0; i < updates; ++i) ApplyUpdate(&g, gen.Next(g));
  // Heavy churn must not flatten the hub structure: ER-ization would pull
  // the max degree down toward the average (~8); the biased stream keeps a
  // pronounced hub.
  EXPECT_GT(g.MaxDegree(), initial_max_degree / 3);
  EXPECT_GT(g.MaxDegree(), 8 * 4);
}

}  // namespace
}  // namespace dynmis
