// Loopback end-to-end tests for the serving layer: a real Server on an
// ephemeral port driven through real sockets — concurrent churn from
// several clients, the handshake policy, both wire protocols (newline text
// and the HELLO 2 BIN length-prefixed binary upgrade), client-batch
// framing, solution verification, trace-faithful replay, and
// snapshot/restore warm failover across a simulated process hand-off. Every
// server here runs with --io-threads 4, so the engine/I/O mailbox handoff
// is always exercised multi-threaded. Runs under ASan and TSan in CI (the
// serving thread + I/O threads + client threads are exactly the concurrency
// TSan should be watching).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynmis/serve.h"
#include "dynmis/sharded_engine.h"
#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/serve/binary.h"
#include "src/serve/line_client.h"
#include "src/serve/protocol.h"
#include "src/serve/trace.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace serve {
namespace {

EdgeListGraph TestGraph() {
  Rng rng(7);
  return ErdosRenyiGnm(150, 400, &rng);
}

// A Server on 127.0.0.1:<ephemeral> with its Run() loop on its own thread.
// Stop() joins the loop; after that the replica graph is safe to inspect.
class TestServer {
 public:
  explicit TestServer(ServeOptions options,
                      const EdgeListGraph& base = TestGraph()) {
    options.port = 0;
    // Always multi-threaded I/O: single-thread is just the degenerate case,
    // and 4 threads is what CI's sanitizer legs should be watching.
    options.io_threads = 4;
    std::string error;
    auto backend = MakeServingBackend(base, options, &error);
    EXPECT_NE(backend, nullptr) << error;
    server_ = std::make_unique<Server>(std::move(backend), options);
    EXPECT_TRUE(server_->Start(&error)) << error;
    thread_ = std::thread([this] { run_result_ = server_->Run(); });
  }

  ~TestServer() { StopAndJoin(); }

  int StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
    return run_result_;
  }

  int port() const { return server_->port(); }
  Server& server() { return *server_; }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
  int run_result_ = -1;
};

// Thin gtest wrapper over the shared blocking client (the same framing
// code dynmis_loadgen uses). ReadLine returns "" once the peer closed.
class TestClient {
 public:
  explicit TestClient(int port, bool handshake = true) {
    std::string error;
    EXPECT_TRUE(client_.Connect("127.0.0.1", port, &error)) << error;
    if (handshake) {
      const std::string greeting = Ask("HELLO 1");
      EXPECT_TRUE(greeting.rfind("OK DYNMIS 1 ", 0) == 0) << greeting;
    }
  }

  void Send(const std::string& line) {
    EXPECT_TRUE(client_.SendLine(line));
  }

  std::string ReadLine() {
    std::string line;
    return client_.ReadLine(&line) ? line : "";
  }

  std::string Ask(const std::string& line) {
    Send(line);
    return ReadLine();
  }

  void ShutdownWrite() { client_.ShutdownWrite(); }

 private:
  LineClient client_;
};

std::vector<VertexId> ParseSolution(const std::string& line) {
  std::istringstream in(line);
  std::string ok;
  int64_t count = 0;
  in >> ok >> count;
  EXPECT_EQ(ok, "OK") << line;
  std::vector<VertexId> solution;
  VertexId v = 0;
  while (in >> v) solution.push_back(v);
  EXPECT_EQ(static_cast<int64_t>(solution.size()), count) << line;
  return solution;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Drives `count` protocol updates from one client, drawing from a seeded
// generator over a private mirror (invalid ops against the live server are
// expected and must come back as ERR, never crash anything).
void Churn(int port, uint64_t seed, int count) {
  TestClient client(port);
  DynamicGraph mirror = TestGraph().ToDynamic();
  UpdateStreamOptions stream;
  stream.seed = seed;
  UpdateStreamGenerator generator(stream);
  for (int i = 0; i < count; ++i) {
    const GraphUpdate update = generator.Next(mirror);
    ApplyUpdate(&mirror, update);
    const std::string response = client.Ask(FormatCommandLine(update));
    EXPECT_TRUE(response.rfind("OK", 0) == 0 ||
                response.rfind("ERR rejected", 0) == 0)
        << response;
  }
  EXPECT_EQ(client.Ask("QUIT"), "OK bye");
}

TEST(ServeHandshakeTest, WrongVersionIsRejectedAndClosed) {
  TestServer server({});
  TestClient client(server.port(), /*handshake=*/false);
  const std::string response = client.Ask("HELLO 2");
  EXPECT_TRUE(response.rfind("ERR handshake", 0) == 0) << response;
  EXPECT_EQ(client.ReadLine(), "");  // Server closed the connection.
}

TEST(ServeHandshakeTest, CommandsBeforeHandshakeAreRejected) {
  TestServer server({});
  TestClient client(server.port(), /*handshake=*/false);
  const std::string response = client.Ask("INS 1 2");
  EXPECT_TRUE(response.rfind("ERR handshake", 0) == 0) << response;
  EXPECT_EQ(client.ReadLine(), "");
}

TEST(ServeHandshakeTest, GreetingNamesBackendAndAlgorithm) {
  ServeOptions options;
  options.algo = MaintainerConfig("DyOneSwap");
  TestServer server(options);
  TestClient client(server.port(), /*handshake=*/false);
  const std::string greeting = client.Ask("HELLO 1");
  EXPECT_NE(greeting.find("backend=engine"), std::string::npos) << greeting;
  EXPECT_NE(greeting.find("algorithm=DyOneSwap"), std::string::npos)
      << greeting;
}

TEST(ServeE2eTest, OversizedLineClosesConnection) {
  ServeOptions options;
  options.max_line_bytes = 128;
  TestServer server(options);
  TestClient client(server.port());
  client.Send(std::string(300, 'a'));
  EXPECT_EQ(client.ReadLine(), "ERR line too long");
  EXPECT_EQ(client.ReadLine(), "");
}

TEST(ServeE2eTest, ValidationRejectsWithoutCrashing) {
  TestServer server({});
  TestClient client(server.port());
  EXPECT_TRUE(client.Ask("INS 0 0").rfind("ERR rejected: self loop", 0) == 0);
  EXPECT_TRUE(client.Ask("INS 0 100000").rfind("ERR rejected", 0) == 0);
  EXPECT_TRUE(client.Ask("DEL 0 100000").rfind("ERR rejected", 0) == 0);
  EXPECT_TRUE(client.Ask("DELV 99999").rfind("ERR rejected", 0) == 0);
  EXPECT_TRUE(client.Ask("INSV 0 0").rfind("ERR rejected", 0) == 0);
  EXPECT_TRUE(client.Ask("QUERY 99999").rfind("ERR unknown", 0) == 0);
  // The engine is still healthy afterwards.
  EXPECT_TRUE(client.Ask("VERIFY").find("independent=1 maximal=1") !=
              std::string::npos);
}

TEST(ServeE2eTest, BatchFramingAcksAppliedAndRejected) {
  TestServer server({});
  TestClient client(server.port());
  // Ensure edge {3, 141} exists (the random base may or may not have it),
  // so the frame's DEL below is definitely valid.
  const std::string setup = client.Ask("INS 3 141");
  EXPECT_TRUE(setup.rfind("OK", 0) == 0 ||
              setup.find("edge exists") != std::string::npos)
      << setup;
  client.Send("BATCH 3");
  client.Send("DEL 3 141");
  client.Send("INS 5 5");  // Self loop: rejected.
  client.Send("INSV 7 9");
  client.Send("END");
  const std::string ack = client.ReadLine();
  // "OK <applied> <rejected> <insv ids...>".
  std::istringstream in(ack);
  std::string ok;
  int applied = 0;
  int rejected = 0;
  VertexId insv_id = kInvalidVertex;
  in >> ok >> applied >> rejected >> insv_id;
  EXPECT_EQ(ok, "OK") << ack;
  EXPECT_EQ(applied, 2) << ack;
  EXPECT_EQ(rejected, 1) << ack;
  EXPECT_EQ(insv_id, 150) << ack;  // First id beyond the 150-vertex base.

  // A non-update line mid-frame aborts the frame with an error.
  client.Send("BATCH 2");
  client.Send("STATS");
  const std::string error = client.ReadLine();
  EXPECT_TRUE(error.rfind("ERR BATCH", 0) == 0) << error;
  // The connection is still usable.
  EXPECT_TRUE(client.Ask("VERIFY").rfind("OK", 0) == 0);
}

TEST(ServeE2eTest, ConcurrentChurnYieldsVerifiedMaximalSolution) {
  ServeOptions options;
  options.batch_max_ops = 64;
  options.flush_deadline_us = 500;
  TestServer server(options);

  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back(Churn, server.port(), 100 + i, 300);
  }
  for (std::thread& t : clients) t.join();

  TestClient control(server.port());
  const std::string verify = control.Ask("VERIFY");
  EXPECT_NE(verify.find("independent=1 maximal=1"), std::string::npos)
      << verify;
  const std::vector<VertexId> solution =
      ParseSolution(control.Ask("SOLUTION"));
  const std::string stats = control.Ask("STATS");
  EXPECT_NE(stats.find("\"backend\":\"engine\""), std::string::npos);
  EXPECT_NE(stats.find("\"mean_batch_occupancy\":"), std::string::npos);
  EXPECT_EQ(control.Ask("QUIT"), "OK bye");

  // Join the loop, then check the solution against the replica graph with
  // the brute-force verifiers.
  EXPECT_EQ(server.StopAndJoin(), 0);
  const DynamicGraph& replica = server.server().replica_graph();
  EXPECT_TRUE(testing_util::IsIndependentSet(replica, solution));
  EXPECT_TRUE(testing_util::IsMaximalIndependentSet(replica, solution));
  const ServingMetricsSnapshot metrics = server.server().MetricsSnapshot();
  EXPECT_GT(metrics.ops_applied, 0);
  EXPECT_EQ(metrics.ops_applied, metrics.ops_admitted);
  EXPECT_GT(metrics.batches_flushed, 0);
  EXPECT_GE(metrics.mean_batch_occupancy, 1.0);
}

TEST(ServeE2eTest, ShardedBackendServesAndVerifies) {
  ServeOptions options;
  options.backend = "sharded";
  options.shards = 3;
  TestServer server(options);

  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back(Churn, server.port(), 500 + i, 200);
  }
  for (std::thread& t : clients) t.join();

  TestClient control(server.port());
  const std::string verify = control.Ask("VERIFY");
  EXPECT_NE(verify.find("independent=1 maximal=1"), std::string::npos)
      << verify;
  const std::string stats = control.Ask("STATS");
  EXPECT_NE(stats.find("\"backend\":\"sharded\""), std::string::npos);
  EXPECT_NE(stats.find("\"shards\":3"), std::string::npos);
  EXPECT_NE(stats.find("\"per_shard\":["), std::string::npos);
  const std::vector<VertexId> solution =
      ParseSolution(control.Ask("SOLUTION"));
  EXPECT_EQ(server.StopAndJoin(), 0);
  EXPECT_TRUE(testing_util::IsMaximalIndependentSet(
      server.server().replica_graph(), solution));
}

TEST(ServeE2eTest, TraceReplayReproducesTheSolution) {
  ServeOptions options;
  options.record_trace = true;
  options.batch_max_ops = 32;
  TestServer server(options);

  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back(Churn, server.port(), 900 + i, 250);
  }
  for (std::thread& t : clients) t.join();

  const std::string trace_path = TempPath("serve_e2e_trace.txt");
  TestClient control(server.port());
  EXPECT_TRUE(control.Ask("TRACE " + trace_path).rfind("OK", 0) == 0);
  const std::vector<VertexId> solution =
      ParseSolution(control.Ask("SOLUTION"));
  EXPECT_EQ(server.StopAndJoin(), 0);

  // Reload the trace with its ApplyBatch boundaries and replay in-process.
  ServeTrace trace;
  std::string error;
  ASSERT_TRUE(LoadServeTrace(trace_path, &trace, &error)) << error;
  auto engine = MisEngine::Create(TestGraph(), {});
  ASSERT_NE(engine, nullptr);
  engine->Initialize();
  size_t offset = 0;
  std::vector<GraphUpdate> block;
  for (const int64_t size : trace.batch_sizes) {
    block.assign(trace.updates.begin() + static_cast<int64_t>(offset),
                 trace.updates.begin() + static_cast<int64_t>(offset) + size);
    engine->ApplyBatch(block);
    offset += static_cast<size_t>(size);
  }
  EXPECT_EQ(offset, trace.updates.size());
  std::vector<VertexId> replayed = engine->Solution();
  std::sort(replayed.begin(), replayed.end());
  EXPECT_EQ(replayed, solution);
}

TEST(ServeE2eTest, SnapshotRestoreWarmFailover) {
  ServeOptions options;
  options.record_trace = true;
  TestServer old_server(options);

  Churn(old_server.port(), 1234, 300);

  const std::string snap_path = TempPath("serve_e2e_failover.snap");
  TestClient control(old_server.port());
  EXPECT_TRUE(control.Ask("SNAPSHOT " + snap_path).rfind("OK", 0) == 0);
  const std::vector<VertexId> solution_at_snapshot =
      ParseSolution(control.Ask("SOLUTION"));
  // The old server keeps taking traffic after the checkpoint; the failover
  // target restores the checkpointed state, not the tail.
  EXPECT_TRUE(control.Ask("INSV").rfind("OK ", 0) == 0);
  EXPECT_EQ(old_server.StopAndJoin(), 0);

  // "Failover": a brand-new server warm-starts from the snapshot.
  ServeOptions restore_options;
  restore_options.restore_path = snap_path;
  TestServer new_server(restore_options, EdgeListGraph{});
  TestClient client(new_server.port());
  const std::vector<VertexId> restored_solution =
      ParseSolution(client.Ask("SOLUTION"));
  EXPECT_EQ(restored_solution, solution_at_snapshot);

  // The restored server accepts further traffic and stays verified,
  // including vertex inserts (id allocation must line up with the replica).
  EXPECT_TRUE(client.Ask("INSV 0 5").rfind("OK ", 0) == 0);
  Churn(new_server.port(), 4321, 150);
  TestClient verifier(new_server.port());
  EXPECT_NE(verifier.Ask("VERIFY").find("independent=1 maximal=1"),
            std::string::npos);
  EXPECT_EQ(new_server.StopAndJoin(), 0);
}

TEST(ServeE2eTest, SnapshotRestoreShardedBackend) {
  ServeOptions options;
  options.backend = "sharded";
  options.shards = 2;
  TestServer old_server(options);
  Churn(old_server.port(), 77, 250);

  const std::string snap_path = TempPath("serve_e2e_sharded.snap");
  TestClient control(old_server.port());
  EXPECT_TRUE(control.Ask("SNAPSHOT " + snap_path).rfind("OK", 0) == 0);
  const std::vector<VertexId> solution_at_snapshot =
      ParseSolution(control.Ask("SOLUTION"));
  EXPECT_EQ(old_server.StopAndJoin(), 0);

  ServeOptions restore_options;
  restore_options.backend = "sharded";
  restore_options.restore_path = snap_path;
  TestServer new_server(restore_options, EdgeListGraph{});
  TestClient client(new_server.port());
  EXPECT_EQ(ParseSolution(client.Ask("SOLUTION")), solution_at_snapshot);
  EXPECT_TRUE(client.Ask("INSV 1 4").rfind("OK ", 0) == 0);
  Churn(new_server.port(), 88, 150);
  TestClient verifier(new_server.port());
  EXPECT_NE(verifier.Ask("VERIFY").find("independent=1 maximal=1"),
            std::string::npos);
  EXPECT_EQ(new_server.StopAndJoin(), 0);
}

TEST(ServeE2eTest, EarlySettlingFrameDoesNotStealAnEarlierOpSlot) {
  ServeOptions options;
  // Park the single op in the admission batch so the all-rejected frame
  // below settles while the op's ack slot is still pending.
  options.flush_deadline_us = 500000;
  options.batch_max_ops = 1024;
  TestServer server(options);
  TestClient client(server.port());
  client.Send("INSV");     // Deferred ack in an op slot.
  client.Send("BATCH 1");  // Frame whose only op is rejected: it settles
  client.Send("INS 0 0");  // immediately, but must not claim the op slot.
  client.Send("END");
  client.Send("QUERY 0");  // Barrier: flushes the parked op.
  EXPECT_EQ(client.ReadLine(), "OK 150");  // INSV id, in command order.
  EXPECT_EQ(client.ReadLine(), "OK 0 1");  // Frame ack: 0 applied, 1 reject.
  EXPECT_TRUE(client.ReadLine().rfind("OK", 0) == 0);  // QUERY answer.
}

TEST(ServeE2eTest, HalfClosingClientStillGetsItsResponses) {
  TestServer server({});
  TestClient client(server.port());
  // The update's ack is deferred until the admission batch flushes; the
  // client half-closes immediately after sending, which must not drop the
  // buffered command or its response.
  client.Send("INSV");
  client.ShutdownWrite();
  const std::string ack = client.ReadLine();
  EXPECT_TRUE(ack.rfind("OK ", 0) == 0) << ack;
  EXPECT_EQ(client.ReadLine(), "");  // Server closed after answering.
}

TEST(ServeE2eTest, FileCommandsRefusedOnNonLoopbackListener) {
  ServeOptions options;
  options.host = "0.0.0.0";  // Reachable via loopback, but not loopback-only.
  options.record_trace = true;
  TestServer server(options);
  TestClient client(server.port());
  EXPECT_TRUE(
      client.Ask("SNAPSHOT " + TempPath("refused.snap")).rfind("ERR", 0) == 0);
  EXPECT_TRUE(
      client.Ask("TRACE " + TempPath("refused.txt")).rfind("ERR", 0) == 0);
  // Everything else still works.
  EXPECT_TRUE(client.Ask("VERIFY").rfind("OK", 0) == 0);
}

TEST(ServeE2eTest, QueriesSeeTheirOwnWrites) {
  TestServer server({});
  TestClient client(server.port());
  // A fresh isolated vertex is always added to the maximal solution.
  const std::string ack = client.Ask("INSV");
  ASSERT_TRUE(ack.rfind("OK ", 0) == 0) << ack;
  const VertexId id = std::atoi(ack.c_str() + 3);
  EXPECT_EQ(client.Ask("QUERY " + std::to_string(id)), "OK 1");
}

// --- Binary protocol ---------------------------------------------------------

// Client for the binary protocol: text HELLO 2 BIN handshake, then
// length-prefixed frames both ways.
class BinaryTestClient {
 public:
  explicit BinaryTestClient(int port, bool handshake = true) {
    std::string error;
    EXPECT_TRUE(client_.Connect("127.0.0.1", port, &error)) << error;
    if (handshake) {
      EXPECT_TRUE(client_.SendLine("HELLO 2 BIN"));
      ExpectGreeting();
    }
  }

  void ExpectGreeting() {
    std::string greeting;
    EXPECT_TRUE(client_.ReadLine(&greeting));
    EXPECT_TRUE(greeting.rfind("OK DYNMIS 2 BIN ", 0) == 0) << greeting;
  }

  void SendRaw(const std::string& bytes) {
    EXPECT_TRUE(client_.SendAll(bytes));
  }

  // Reads and decodes the next response frame; reports closed=true (and a
  // default response) once the peer is gone.
  BinaryResponse ReadResponse(bool* closed = nullptr) {
    BinaryResponse resp;
    std::string frame;
    if (!client_.ReadFrame(&frame)) {
      if (closed != nullptr) {
        *closed = true;
      } else {
        ADD_FAILURE() << "peer closed mid-read";
      }
      return resp;
    }
    if (closed != nullptr) *closed = false;
    std::string error;
    EXPECT_TRUE(DecodeResponseFrame(frame, &resp, &error)) << error;
    return resp;
  }

  bool PeerClosed() {
    std::string frame;
    return !client_.ReadFrame(&frame);
  }

  LineClient& raw() { return client_; }

 private:
  LineClient client_;
};

TEST(ServeBinaryTest, UpgradeRoundTripsEveryVerb) {
  TestServer server({});
  BinaryTestClient client(server.port());

  // INSV {0, 5}: first fresh id beyond the 150-vertex base.
  std::string wire;
  AppendInsVFrame(&wire, {0, 5});
  client.SendRaw(wire);
  const BinaryResponse insv = client.ReadResponse();
  EXPECT_EQ(insv.code, kBinRespOkId);
  EXPECT_EQ(insv.id, 150);

  // Pipelined: edge insert + self-loop reject + query + edge delete + DELV.
  wire.clear();
  AppendInsFrame(&wire, 150, 3);
  AppendInsFrame(&wire, 4, 4);
  AppendQueryFrame(&wire, 150);
  AppendDelFrame(&wire, 150, 3);
  AppendDelVFrame(&wire, 150);
  client.SendRaw(wire);
  EXPECT_EQ(client.ReadResponse().code, kBinRespOk);
  const BinaryResponse reject = client.ReadResponse();
  EXPECT_EQ(reject.code, kBinRespReject);
  EXPECT_NE(reject.message.find("self loop"), std::string::npos)
      << reject.message;
  EXPECT_EQ(client.ReadResponse().code, kBinRespQuery);
  EXPECT_EQ(client.ReadResponse().code, kBinRespOk);
  EXPECT_EQ(client.ReadResponse().code, kBinRespOk);

  // Unknown vertex: an error response, but not fatal to the connection.
  wire.clear();
  AppendQueryFrame(&wire, 99999);
  AppendQueryFrame(&wire, 0);
  client.SendRaw(wire);
  EXPECT_EQ(client.ReadResponse().code, kBinRespErr);
  EXPECT_EQ(client.ReadResponse().code, kBinRespQuery);
}

TEST(ServeBinaryTest, PipelinedUpgradeInOnePacket) {
  TestServer server({});
  BinaryTestClient client(server.port(), /*handshake=*/false);
  // HELLO line and binary frames in a single send: the server must hand the
  // bytes behind the newline to the binary decoder, not drop them.
  std::string wire = "HELLO 2 BIN\n";
  AppendInsVFrame(&wire, {});
  AppendQueryFrame(&wire, 0);
  client.SendRaw(wire);
  client.ExpectGreeting();
  EXPECT_EQ(client.ReadResponse().code, kBinRespOkId);
  EXPECT_EQ(client.ReadResponse().code, kBinRespQuery);
}

TEST(ServeBinaryTest, BatchFrameGetsOneAck) {
  TestServer server({});
  BinaryTestClient client(server.port());
  // Ensure edge {3, 141} exists so the batch's DEL is definitely valid.
  std::string wire;
  AppendInsFrame(&wire, 3, 141);
  client.SendRaw(wire);
  const BinaryResponse setup = client.ReadResponse();
  EXPECT_TRUE(setup.code == kBinRespOk || setup.code == kBinRespReject);

  std::vector<GraphUpdate> updates(3);
  updates[0] = {UpdateKind::kDeleteEdge, 3, 141, {}};
  updates[1] = {UpdateKind::kInsertEdge, 5, 5, {}};  // Rejected.
  updates[2] = {UpdateKind::kInsertVertex, kInvalidVertex, kInvalidVertex,
                {7, 9}};
  wire.clear();
  AppendBatchFrame(&wire, updates, 0, updates.size());
  client.SendRaw(wire);
  const BinaryResponse ack = client.ReadResponse();
  EXPECT_EQ(ack.code, kBinRespBatch);
  EXPECT_EQ(ack.applied, 2);
  EXPECT_EQ(ack.rejected, 1);
  EXPECT_EQ(ack.insert_ids, (std::vector<VertexId>{150}));
}

TEST(ServeBinaryTest, BareHello2WithoutBinIsRejected) {
  TestServer server({});
  TestClient client(server.port(), /*handshake=*/false);
  const std::string response = client.Ask("HELLO 2");
  EXPECT_TRUE(response.rfind("ERR handshake", 0) == 0) << response;
  EXPECT_EQ(client.ReadLine(), "");
}

TEST(ServeBinaryTest, GarbageOpcodeAnswersErrAndCloses) {
  TestServer server({});
  BinaryTestClient client(server.port());
  std::string wire;
  AppendFrameHeader(&wire, 0x7f, 0);
  client.SendRaw(wire);
  const BinaryResponse err = client.ReadResponse();
  EXPECT_EQ(err.code, kBinRespErr);
  EXPECT_TRUE(client.PeerClosed());
}

TEST(ServeBinaryTest, OversizedLengthPrefixAnswersErrAndCloses) {
  ServeOptions options;
  options.max_line_bytes = 128;  // Also caps binary frames.
  TestServer server(options);
  BinaryTestClient client(server.port());
  std::string wire;
  AppendU32(&wire, 1 << 20);  // Length prefix far beyond the cap.
  wire.push_back(static_cast<char>(kBinOpQuery));
  client.SendRaw(wire);
  const BinaryResponse err = client.ReadResponse();
  EXPECT_EQ(err.code, kBinRespErr);
  EXPECT_TRUE(client.PeerClosed());
}

TEST(ServeBinaryTest, ConcurrentBinaryChurnStaysVerified) {
  ServeOptions options;
  options.batch_max_ops = 64;
  options.flush_deadline_us = 500;
  TestServer server(options);

  const auto churn = [&server](uint64_t seed) {
    BinaryTestClient client(server.port());
    DynamicGraph mirror = TestGraph().ToDynamic();
    UpdateStreamOptions stream;
    stream.seed = seed;
    UpdateStreamGenerator generator(stream);
    std::string wire;
    for (int i = 0; i < 300; ++i) {
      const GraphUpdate update = generator.Next(mirror);
      ApplyUpdate(&mirror, update);
      wire.clear();
      AppendUpdateFrame(&wire, update);
      client.SendRaw(wire);
      const BinaryResponse resp = client.ReadResponse();
      EXPECT_TRUE(resp.code == kBinRespOk || resp.code == kBinRespOkId ||
                  resp.code == kBinRespReject)
          << static_cast<int>(resp.code);
    }
  };
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) clients.emplace_back(churn, 7100 + i);
  for (std::thread& t : clients) t.join();

  TestClient control(server.port());
  EXPECT_NE(control.Ask("VERIFY").find("independent=1 maximal=1"),
            std::string::npos);
  const std::string stats = control.Ask("STATS");
  EXPECT_NE(stats.find("\"io\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"frames_decoded\":"), std::string::npos) << stats;
  EXPECT_EQ(server.StopAndJoin(), 0);
  const ServingMetricsSnapshot metrics = server.server().MetricsSnapshot();
  EXPECT_EQ(metrics.io_threads, 4);
  EXPECT_GT(metrics.io_frames_decoded, 0);
}

}  // namespace
}  // namespace serve
}  // namespace dynmis
