// Theory reproduction: Theorem 2's (Delta/2 + 1) bound checked against
// exact optima on random sweeps; Theorem 3's worst-case families actually
// achieve ratio ~ Delta/2; Theorem 4's premise (power-law boundedness)
// verified on the generator outputs; Lemma 1 (bar1(v) is a clique at a
// 1-maximal solution).

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/graph/degree_stats.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/static_mis/brute_force.h"
#include "src/static_mis/exact.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

// alpha(G) <= (Delta/2 + 1) |I| for every 1-maximal I (Theorem 2), checked
// on static random graphs via brute force.
TEST(ApproximationTest, Theorem2BoundHoldsOnRandomSweep) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 3 + 1);
    const int n = 8 + static_cast<int>(rng.NextBounded(18));
    const EdgeListGraph base =
        ErdosRenyiGnm(n, static_cast<int64_t>(n * (0.5 + rng.NextDouble() * 2)),
                      &rng);
    DynamicGraph g = base.ToDynamic();
    DyOneSwap algo(&g);
    algo.InitializeEmpty();
    const int alpha = BruteForceAlpha(base.ToStatic());
    const double delta = g.MaxDegree();
    EXPECT_LE(alpha, (delta / 2.0 + 1.0) * algo.SolutionSize())
        << "seed " << seed;
  }
}

// The bound keeps holding while the graph changes (the dynamic statement of
// Theorem 6).
TEST(ApproximationTest, Theorem6BoundHoldsUnderUpdates) {
  Rng rng(99);
  const EdgeListGraph base = ErdosRenyiGnm(16, 24, &rng);
  DynamicGraph g = base.ToDynamic();
  DyTwoSwap algo(&g);
  algo.InitializeEmpty();
  UpdateStreamOptions stream;
  stream.seed = 2024;
  UpdateStreamGenerator gen(stream);
  for (int step = 0; step < 120; ++step) {
    algo.Apply(gen.Next(g));
    if (g.NumVertices() == 0) continue;
    const int alpha = BruteForceAlpha(StaticGraph::FromDynamic(g));
    const double delta = g.MaxDegree();
    ASSERT_LE(alpha, (delta / 2.0 + 1.0) * algo.SolutionSize())
        << "step " << step;
  }
}

// Theorem 3 witnesses: in K'_n the original clique vertices form a
// k-maximal IS of size n while alpha = n(n-1)/2 and Delta = n-1, so the
// ratio approaches Delta/2. The point of the theorem: a k-maximal solution
// CAN be this bad, i.e. the set {0..n-1} admits no j-swap for j <= 3.
TEST(ApproximationTest, Theorem3SubdividedCliqueIsWorstCase) {
  for (int n : {4, 5, 6}) {
    const EdgeListGraph kp = SubdivideEdges(CompleteGraph(n));
    DynamicGraph g = kp.ToDynamic();
    std::vector<VertexId> clique_vertices;
    for (VertexId v = 0; v < n; ++v) clique_vertices.push_back(v);
    ASSERT_TRUE(testing_util::IsMaximalIndependentSet(g, clique_vertices));
    // No j-swap for j <= 3 (the theorem's statement for k in {2, 3}).
    EXPECT_FALSE(testing_util::HasSwapUpTo(g, clique_vertices, 3)) << n;
    // And yet the optimum is the set of subdivision vertices.
    const int alpha = BruteForceAlpha(kp.ToStatic());
    EXPECT_EQ(alpha, n * (n - 1) / 2);
    const double delta = g.MaxDegree();
    EXPECT_NEAR(static_cast<double>(alpha) / n, delta / 2.0, 0.51);
  }
}

// Theorem 3 for k >= 4: subdivided hypercubes Q'_d: the 2^d original
// vertices form a k-maximal IS (shortest cycle length d protects them).
TEST(ApproximationTest, Theorem3SubdividedHypercube) {
  const int d = 4;
  const EdgeListGraph qd = Hypercube(d);
  const EdgeListGraph qp = SubdivideEdges(qd);
  DynamicGraph g = qp.ToDynamic();
  std::vector<VertexId> originals;
  for (VertexId v = 0; v < qd.n; ++v) originals.push_back(v);
  ASSERT_TRUE(testing_util::IsMaximalIndependentSet(g, originals));
  EXPECT_FALSE(testing_util::HasSwapUpTo(g, originals, 4));
  // alpha(Q'_d) = 2^{d-1} d = #subdivision vertices.
  EXPECT_EQ(qp.n - qd.n, (1 << (d - 1)) * d);
}

// Lemma 1: at a 1-maximal solution, G[bar1(v)] is a clique for every
// solution vertex v.
TEST(ApproximationTest, Lemma1CliqueProperty) {
  Rng rng(5);
  const EdgeListGraph base = ErdosRenyiGnm(40, 90, &rng);
  DynamicGraph g = base.ToDynamic();
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  std::vector<int> count(g.VertexCapacity(), 0);
  for (VertexId v : algo.Solution()) {
    g.ForEachIncident(v, [&](VertexId u, EdgeId) { ++count[u]; });
  }
  for (VertexId v : algo.Solution()) {
    std::vector<VertexId> bar1;
    g.ForEachIncident(v, [&](VertexId u, EdgeId) {
      if (count[u] == 1) bar1.push_back(u);
    });
    for (size_t i = 0; i < bar1.size(); ++i) {
      for (size_t j = i + 1; j < bar1.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(bar1[i], bar1[j]))
            << "bar1(" << v << ") is not a clique";
      }
    }
  }
}

// Theorem 4 premise: the Chung-Lu generator with beta > 2 produces graphs
// whose dyadic degree buckets admit PLB constants with c1/c2 of moderate
// spread, and the estimated exponent is near the requested one.
TEST(ApproximationTest, GeneratedGraphsArePowerLawBounded) {
  Rng rng(8);
  const EdgeListGraph g = ChungLuPowerLaw(30000, 2.5, 8.0, &rng);
  const DegreeStats stats = ComputeDegreeStats(g.ToStatic());
  double c1 = 0;
  double c2 = 0;
  ASSERT_TRUE(FitPlbConstants(stats, 2.5, 0.0, &c1, &c2));
  EXPECT_GT(c2, 0.0);
  EXPECT_LT(c1 / c2, 200.0);  // Sandwich width is a bounded constant.
  EXPECT_TRUE(IsPowerLawBounded(stats, 2.5, 0.0, c1 * 1.01, c2 * 0.99));
  const double beta = EstimatePowerLawExponent(stats);
  EXPECT_NEAR(beta, 2.5, 0.8);
}

// On PLB graphs the paper's Theorem 4 ratio is a constant independent of n:
// empirically the maintained solution is within a small constant of alpha.
TEST(ApproximationTest, ConstantFactorOnPowerLawGraphs) {
  Rng rng(21);
  const EdgeListGraph base = ChungLuPowerLaw(2000, 2.5, 6.0, &rng);
  DynamicGraph g = base.ToDynamic();
  DyOneSwap algo(&g);
  algo.InitializeEmpty();
  const ExactMisResult exact = SolveExactMis(base.ToStatic());
  ASSERT_TRUE(exact.solved);
  const double ratio = static_cast<double>(exact.solution.size()) /
                       static_cast<double>(algo.SolutionSize());
  EXPECT_LT(ratio, 1.35);  // Far below Delta/2 + 1; constant in practice.
}

}  // namespace
}  // namespace dynmis
