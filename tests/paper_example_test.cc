// The paper's running example (Fig 4, Examples 1-3), reconstructed from the
// constraints stated in the text (0-indexed: paper's v1..v10 are 0..9):
//
//   edges: (v1,v3) (v2,v3) (v2,v4) (v4,v5) (v5,v6) (v6,v8) (v3,v7) (v7,v9)
//          (v9,v10); update: insert (v3,v4).
//   I = {v3, v4, v6, v9}; Fig 4(b)'s structure: bar1(v3) = {v1},
//   bar1(v6) = {v8}, bar_I2(v3,v4) = {v2}, bar_I2(v4,v6) = {v5},
//   bar_I2(v3,v9) = {v7}, bar1(v9) = {v10}.
//
// The test validates our reconstruction against every structural fact the
// paper states, then exercises the algorithms on it.

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/one_swap.h"
#include "src/core/solution.h"
#include "src/core/two_swap.h"
#include "src/static_mis/brute_force.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

// Paper vertex vK is index K-1.
constexpr VertexId V(int k) { return k - 1; }

DynamicGraph Fig4Graph() {
  DynamicGraph g(10);
  g.AddEdge(V(1), V(3));
  g.AddEdge(V(2), V(3));
  g.AddEdge(V(2), V(4));
  g.AddEdge(V(4), V(5));
  g.AddEdge(V(5), V(6));
  g.AddEdge(V(6), V(8));
  g.AddEdge(V(3), V(7));
  g.AddEdge(V(7), V(9));
  g.AddEdge(V(9), V(10));
  return g;
}

const std::vector<VertexId> kPaperSolution = {V(3), V(4), V(6), V(9)};

TEST(PaperExampleTest, Fig4bInformationMatches) {
  DynamicGraph g = Fig4Graph();
  MisState state(&g, /*k=*/2, /*lazy=*/false);
  for (VertexId v : kPaperSolution) state.MoveIn(v);

  // Counts as implied by Fig 4(b).
  EXPECT_EQ(state.Count(V(1)), 1);
  EXPECT_EQ(state.Count(V(2)), 2);
  EXPECT_EQ(state.Count(V(5)), 2);
  EXPECT_EQ(state.Count(V(7)), 2);
  EXPECT_EQ(state.Count(V(8)), 1);
  EXPECT_EQ(state.Count(V(10)), 1);

  // "v1 and v8 [are] only recorded in bar_I1(v3) and bar_I1(v6)".
  std::vector<VertexId> bar1_v3, bar1_v6;
  state.CollectBar1(V(3), &bar1_v3);
  state.CollectBar1(V(6), &bar1_v6);
  EXPECT_EQ(bar1_v3, std::vector<VertexId>{V(1)});
  EXPECT_EQ(bar1_v6, std::vector<VertexId>{V(8)});

  // "bar_I<=2(v3, v4) will be collected by merging bar_I2(v3, v4) and
  // bar_I1(v3)" = {v2} u {v1}.
  std::vector<VertexId> pair34;
  state.CollectBar2Pair(V(3), V(4), &pair34);
  EXPECT_EQ(pair34, std::vector<VertexId>{V(2)});
  // "bar_I<=2(v4, v6) is returned as bar_I2(v4, v6) u bar_I1(v6)" =
  // {v5} u {v8}.
  std::vector<VertexId> pair46;
  state.CollectBar2Pair(V(4), V(6), &pair46);
  EXPECT_EQ(pair46, std::vector<VertexId>{V(5)});
  state.CheckConsistency(/*expect_maximal=*/true);
}

TEST(PaperExampleTest, PaperSolutionIsMaximalButAdmitsTwoSwap) {
  DynamicGraph g = Fig4Graph();
  EXPECT_TRUE(testing_util::IsMaximalIndependentSet(g, kPaperSolution));
  EXPECT_FALSE(testing_util::HasSwapUpTo(g, kPaperSolution, 1));
  // Example 3's 2-swap {v3, v9} -> {v1, v7, v10} already exists in the
  // initial state (the paper runs it after the edge insertion).
  EXPECT_TRUE(testing_util::HasSwapUpTo(g, kPaperSolution, 2));
}

TEST(PaperExampleTest, DyTwoSwapReachesTheOptimum) {
  DynamicGraph g = Fig4Graph();
  const int alpha = BruteForceAlpha(StaticGraph::FromDynamic(g));
  DyTwoSwap algo(&g);
  algo.Initialize(kPaperSolution);
  // Initialization already applies Example 3's 2-swap: v1, v7 in, v10 in.
  EXPECT_EQ(algo.SolutionSize(), alpha);
  EXPECT_FALSE(testing_util::HasSwapUpTo(g, algo.Solution(), 2));
}

TEST(PaperExampleTest, EdgeInsertionCascade) {
  // The paper's update: insert (v3, v4) while both are in I.
  for (const bool use_two_swap : {false, true}) {
    DynamicGraph g = Fig4Graph();
    std::unique_ptr<DynamicMisMaintainer> algo;
    if (use_two_swap) {
      algo = std::make_unique<DyTwoSwap>(&g);
    } else {
      algo = std::make_unique<DyOneSwap>(&g);
    }
    algo->Initialize(kPaperSolution);
    const int64_t before = algo->SolutionSize();
    algo->InsertEdge(V(3), V(4));
    // The cascade must keep the solution k-maximal, and the size can drop
    // by at most... in fact the swaps recover everything here.
    EXPECT_FALSE(testing_util::HasSwapUpTo(g, algo->Solution(),
                                           use_two_swap ? 2 : 1));
    EXPECT_GE(algo->SolutionSize(), before - 1);
    // Fig 4(d): with k = 2 the final solution still has 5 vertices.
    const int alpha = BruteForceAlpha(StaticGraph::FromDynamic(g));
    if (use_two_swap) EXPECT_EQ(algo->SolutionSize(), alpha);
  }
}

}  // namespace
}  // namespace dynmis
