// MisEngine: ownership and lifecycle, trace replay with Stats()
// cross-checked against an independently maintained graph replica and the
// maintainer's own MisState consistency validator, UpdateResult id
// surfacing (the old ApplyBatch dropped kInsertVertex ids), and the per-op
// observer hook.

#include "dynmis/engine.h"

#include <vector>

#include "gtest/gtest.h"
#include "src/core/two_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::IsMaximalIndependentSet;

EdgeListGraph SmallGraph(uint64_t seed = 7) {
  Rng rng(seed);
  return ErdosRenyiGnm(80, 200, &rng);
}

TEST(EngineTest, CreateFailsCleanlyOnUnknownAlgorithm) {
  EXPECT_EQ(MisEngine::Create(SmallGraph(), {"NoSuchAlgorithm"}), nullptr);
}

TEST(EngineTest, ReplayTraceAndCrossCheckStats) {
  const EdgeListGraph base = SmallGraph();
  auto engine = MisEngine::Create(base, {"DyTwoSwap"});
  ASSERT_NE(engine, nullptr);
  engine->Initialize();

  UpdateStreamOptions stream;
  stream.seed = 13;
  stream.edge_op_fraction = 0.7;  // Plenty of vertex churn.
  const std::vector<GraphUpdate> trace =
      MakeUpdateSequence(base.ToDynamic(), 400, stream);

  // Replica graph maintained outside the engine (same deterministic ids).
  DynamicGraph replica = base.ToDynamic();
  for (const GraphUpdate& update : trace) {
    const UpdateResult result = engine->Apply(update);
    EXPECT_EQ(result.applied, 1);
    ApplyUpdate(&replica, update);
  }

  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.algorithm, "DyTwoSwap");
  EXPECT_EQ(stats.num_vertices, replica.NumVertices());
  EXPECT_EQ(stats.num_edges, replica.NumEdges());
  EXPECT_EQ(stats.updates_applied, 400);
  EXPECT_GE(stats.update_seconds, 0.0);
  EXPECT_GT(stats.structure_memory_bytes, 0u);
  EXPECT_GT(stats.graph_memory_bytes, 0u);
  EXPECT_EQ(stats.solution_size, engine->SolutionSize());
  EXPECT_EQ(static_cast<int64_t>(engine->Solution().size()),
            stats.solution_size);

  // The maintained set is a maximal independent set of the engine's graph,
  // and the maintainer's full internal invariant check passes.
  EXPECT_TRUE(IsMaximalIndependentSet(engine->graph(), engine->Solution()));
  auto* two_swap = dynamic_cast<DyTwoSwap*>(&engine->maintainer());
  ASSERT_NE(two_swap, nullptr);
  two_swap->CheckConsistency();
}

TEST(EngineTest, ApplyBatchSurfacesNewVertexIds) {
  // DyTwoSwap overrides ApplyBatch (deferred restoration); DyARW uses the
  // interface default. Both must surface kInsertVertex ids in op order.
  for (const char* algorithm : {"DyTwoSwap", "DyARW"}) {
    auto engine = MisEngine::Create(SmallGraph(3), {algorithm});
    ASSERT_NE(engine, nullptr);
    engine->Initialize();

    std::vector<GraphUpdate> batch;
    GraphUpdate insert_vertex;
    insert_vertex.kind = UpdateKind::kInsertVertex;
    insert_vertex.neighbors = {0, 1};
    batch.push_back(insert_vertex);
    GraphUpdate insert_edge;
    insert_edge.kind = UpdateKind::kInsertEdge;
    insert_edge.u = 2;
    insert_edge.v = kInvalidVertex;
    for (VertexId cand = 3; cand < 80; ++cand) {
      if (!engine->graph().HasEdge(2, cand)) {
        insert_edge.v = cand;
        break;
      }
    }
    ASSERT_NE(insert_edge.v, kInvalidVertex);
    batch.push_back(insert_edge);
    insert_vertex.neighbors = {2, 3};
    batch.push_back(insert_vertex);

    const UpdateResult result = engine->ApplyBatch(batch);
    EXPECT_EQ(result.applied, 3) << algorithm;
    ASSERT_EQ(result.new_vertices.size(), 2u) << algorithm;
    for (const VertexId v : result.new_vertices) {
      EXPECT_TRUE(engine->graph().IsVertexAlive(v)) << algorithm;
    }
    EXPECT_NE(result.new_vertices[0], result.new_vertices[1]) << algorithm;
    EXPECT_TRUE(IsMaximalIndependentSet(engine->graph(), engine->Solution()))
        << algorithm;
  }
}

TEST(EngineTest, TypedOpsAndStatsAccumulate) {
  EdgeListGraph base;
  base.n = 4;
  base.edges = {{0, 1}, {1, 2}};
  auto engine = MisEngine::Create(base, {"DyOneSwap"});
  ASSERT_NE(engine, nullptr);
  engine->Initialize();

  const VertexId v = engine->InsertVertex({0, 3});
  ASSERT_NE(v, kInvalidVertex);
  EXPECT_TRUE(engine->graph().IsVertexAlive(v));
  engine->InsertEdge(2, 3);
  EXPECT_EQ(engine->Stats().num_edges, 5);
  engine->DeleteEdge(2, 3);
  EXPECT_EQ(engine->Stats().num_edges, 4);
  engine->DeleteVertex(v);
  EXPECT_FALSE(engine->graph().IsVertexAlive(v));
  EXPECT_EQ(engine->Stats().updates_applied, 4);
  EXPECT_TRUE(IsMaximalIndependentSet(engine->graph(), engine->Solution()));
}

TEST(EngineTest, ObserverSeesOpsAndBatches) {
  const EdgeListGraph base = SmallGraph(11);
  auto engine = MisEngine::Create(base, {"DyTwoSwap"});
  ASSERT_NE(engine, nullptr);
  engine->Initialize();

  int calls = 0;
  int64_t ops_seen = 0;
  engine->SetUpdateObserver(
      [&](const GraphUpdate&, int64_t applied, double seconds) {
        EXPECT_GE(seconds, 0.0);
        ++calls;
        ops_seen += applied;
      });
  UpdateStreamOptions stream;
  stream.seed = 5;
  const std::vector<GraphUpdate> trace =
      MakeUpdateSequence(base.ToDynamic(), 50, stream);

  // A batch goes through the maintainer's deferred-settle path even with an
  // observer installed; the observer fires once with batch semantics.
  const UpdateResult result = engine->ApplyBatch(trace);
  EXPECT_EQ(result.applied, 50);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ops_seen, 50);

  // Per-op application reports each op individually.
  GraphUpdate probe;
  probe.kind = UpdateKind::kInsertVertex;
  engine->Apply(probe);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(ops_seen, 51);
  EXPECT_EQ(engine->Stats().updates_applied, 51);

  // An empty batch applies nothing and must not invoke the observer.
  engine->ApplyBatch({});
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace dynmis
