// Fault-injection and fencing tests for the serving layer, driven through
// real loopback servers with faultfs plans armed in-process: change-log
// append failure degrades the primary to read-only (with auto-recovery
// once the log heals) instead of aborting, a higher fencing epoch —
// arriving via the shared epoch file or a subscriber handshake — fences a
// writable primary, PROMOTE un-fences by claiming a fresh epoch, followers
// reconnect to a restarted primary with backoff and resubscribe from their
// last sequence, and restart cycles over one change-log directory keep the
// recovered state byte-identical to a clean replay. Runs under ASan and
// TSan in CI alongside repl_e2e_test. Live state is observed through the
// protocol (STATS / REPL STATUS — answered on the loop thread);
// MetricsSnapshot() is only read after StopAndJoin.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dynmis/serve.h"
#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/repl/bootstrap.h"
#include "src/repl/change_log.h"
#include "src/serve/line_client.h"
#include "src/serve/protocol.h"
#include "src/util/faultfs.h"
#include "src/util/random.h"

namespace dynmis {
namespace serve {
namespace {

EdgeListGraph TestGraph() {
  Rng rng(7);
  return ErdosRenyiGnm(150, 400, &rng);
}

std::string FreshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

// Disarm on scope exit, so one test's plan can never leak into the next
// (or into gtest's own file I/O).
struct ScopedPlan {
  explicit ScopedPlan(const std::string& plan) {
    std::string error;
    ok = faultfs::ArmPlan(plan, &error);
    EXPECT_TRUE(ok) << error;
  }
  ~ScopedPlan() { faultfs::Disarm(); }
  bool ok = false;
};

// A Server on 127.0.0.1 with its Run() loop on its own thread. Unlike the
// e2e harness this one honours options.port, so a restarted primary can
// rebind its predecessor's port (SO_REUSEADDR) for reconnect tests.
class TestServer {
 public:
  explicit TestServer(ServeOptions options,
                      const EdgeListGraph& base = TestGraph()) {
    std::string error;
    auto backend = MakeServingBackend(base, options, &error);
    EXPECT_NE(backend, nullptr) << error;
    Launch(std::move(backend), std::move(options));
  }

  TestServer(std::unique_ptr<ServingBackend> backend, ServeOptions options) {
    Launch(std::move(backend), std::move(options));
  }

  ~TestServer() { StopAndJoin(); }

  int StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
    return run_result_;
  }

  int port() const { return server_->port(); }
  Server& server() { return *server_; }

 private:
  void Launch(std::unique_ptr<ServingBackend> backend, ServeOptions options) {
    options.io_threads = 2;
    std::string error;
    server_ = std::make_unique<Server>(std::move(backend), options);
    EXPECT_TRUE(server_->Start(&error)) << error;
    thread_ = std::thread([this] { run_result_ = server_->Run(); });
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  int run_result_ = -1;
};

class TestClient {
 public:
  explicit TestClient(int port) {
    std::string error;
    EXPECT_TRUE(client_.Connect("127.0.0.1", port, &error)) << error;
    const std::string greeting = Ask("HELLO 1");
    EXPECT_TRUE(greeting.rfind("OK DYNMIS 1 ", 0) == 0) << greeting;
  }

  std::string Ask(const std::string& line) {
    std::string response;
    EXPECT_TRUE(client_.Ask(line, &response)) << line;
    return response;
  }

 private:
  LineClient client_;
};

// "OK REPL <seq> EPOCH <e>" -> (seq, epoch).
void ReplStatus(TestClient* client, int64_t* seq, int64_t* epoch) {
  const std::string response = client->Ask("REPL STATUS");
  ASSERT_TRUE(response.rfind("OK REPL ", 0) == 0) << response;
  long long s = 0, e = 0;
  ASSERT_EQ(std::sscanf(response.c_str(), "OK REPL %lld EPOCH %lld", &s, &e),
            2)
      << response;
  *seq = s;
  *epoch = e;
}

// One seeded update source: the mirror tracks what the generator believes,
// which may legitimately diverge from the server once writes are refused —
// ops the server then rejects come back "ERR rejected", never a crash.
struct UpdateSource {
  explicit UpdateSource(uint64_t seed) : mirror(TestGraph().ToDynamic()) {
    UpdateStreamOptions stream;
    stream.seed = seed;
    generator = std::make_unique<UpdateStreamGenerator>(stream);
  }

  std::string AskNext(TestClient* client) {
    const GraphUpdate update = generator->Next(mirror);
    ApplyUpdate(&mirror, update);
    return client->Ask(FormatCommandLine(update));
  }

  // Drives updates until `target` have been acked OK. Anything other than
  // OK / ERR rejected fails the test.
  void ChurnAcked(TestClient* client, int target) {
    int acked = 0, sent = 0;
    while (acked < target) {
      const std::string response = AskNext(client);
      if (response.rfind("OK", 0) == 0) {
        ++acked;
      } else {
        ASSERT_TRUE(response.rfind("ERR rejected", 0) == 0) << response;
      }
      ASSERT_LT(++sent, target * 10 + 100) << "churn starved of valid ops";
    }
  }

  // The next response that gets past admission (invalid ops answer
  // "ERR rejected" before reaching the flush path and prove nothing).
  std::string AskPastAdmission(TestClient* client) {
    for (int i = 0; i < 200; ++i) {
      const std::string response = AskNext(client);
      if (response.rfind("ERR rejected", 0) != 0) return response;
    }
    return "ERR test: admission starved";
  }

  DynamicGraph mirror;
  std::unique_ptr<UpdateStreamGenerator> generator;
};

bool WaitUntil(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

void ExpectVerifyOk(TestClient* client) {
  const std::string verdict = client->Ask("VERIFY");
  EXPECT_NE(verdict.find("independent=1"), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("maximal=1"), std::string::npos) << verdict;
}

// A change-log append failure must not abort the server: it keeps serving
// reads, answers writes with ERR readonly (reason in STATS), buffers the
// already-applied batch, and recovers on its own once appends succeed
// again — with every acked record, including the one whose first append
// failed, durable in the log.
TEST(ReplFaultTest, AppendFailureDegradesToReadOnlyThenRecovers) {
  const std::string dir = FreshDir("fault_degraded");
  ServeOptions options;
  options.backend = "sharded";
  options.shards = 2;
  options.change_log_dir = dir;
  // Segment writes: #1 is the header, #2..#5 the first four records; every
  // one from #6 on fails until the plan is disarmed.
  ScopedPlan plan("write:enospc@6x0~seg-");
  TestServer server(options);
  TestClient client(server.port());
  UpdateSource source(77);
  source.ChurnAcked(&client, 4);

  // The fifth append fails. The op was applied and acked OK (it cannot be
  // un-applied; the record is buffered for re-append) — but the server is
  // degraded from that flush on.
  const std::string degrading = source.AskPastAdmission(&client);
  EXPECT_TRUE(degrading.rfind("OK", 0) == 0) << degrading;
  const std::string stats = client.Ask("STATS");
  EXPECT_NE(stats.find("\"degraded\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("No space"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"role\":\"primary\""), std::string::npos) << stats;
  EXPECT_TRUE(source.AskNext(&client).rfind("ERR readonly", 0) == 0);
  ExpectVerifyOk(&client);  // Reads ride through the degradation.

  // Healing the log (disarming the plan) lets the retry tick re-append the
  // buffered record and lift the degradation without a restart.
  faultfs::Disarm();
  ASSERT_TRUE(WaitUntil([&] {
    return client.Ask("STATS").find("\"degraded\":0") != std::string::npos;
  }));
  source.ChurnAcked(&client, 5);
  ExpectVerifyOk(&client);

  // Every acked batch made it into the log: a clean bootstrap reaches the
  // live server's head.
  int64_t head = 0, epoch = 0;
  ReplStatus(&client, &head, &epoch);
  server.StopAndJoin();
  repl::BootstrapResult boot;
  std::string error;
  ASSERT_TRUE(
      repl::BootstrapFromChangeLog(dir, TestGraph(), options, &boot, &error))
      << error;
  EXPECT_EQ(boot.next_seq, head);
}

// A higher epoch landing in the primary's own epoch file — how a promoted
// twin on a shared directory announces itself — fences the primary: writes
// answer ERR fenced, subscriptions are refused, reads keep working, and
// PROMOTE is the way back (claiming a yet-higher epoch).
TEST(ReplFaultTest, EpochFileFencesPrimaryAndPromoteReclaims) {
  const std::string dir = FreshDir("fault_fence_file");
  ServeOptions options;
  options.backend = "sharded";
  options.shards = 2;
  options.change_log_dir = dir;
  TestServer server(options);
  TestClient client(server.port());
  UpdateSource source(78);
  source.ChurnAcked(&client, 10);
  int64_t head = 0, epoch = 0;
  ReplStatus(&client, &head, &epoch);
  EXPECT_GE(epoch, 1);  // A primary claims a fresh epoch at startup.

  // Another incarnation claims the directory.
  std::string error;
  ASSERT_TRUE(repl::WriteEpochFile(dir, epoch + 1, &error)) << error;

  // The flush-time probe (or the idle poll, whichever fires first) fences
  // before the next batch can apply: the write is refused with the
  // observed epoch and nothing further is appended.
  const std::string refused = source.AskPastAdmission(&client);
  EXPECT_TRUE(
      refused.rfind("ERR fenced " + std::to_string(epoch + 1), 0) == 0)
      << refused;
  const std::string stats = client.Ask("STATS");
  EXPECT_NE(stats.find("\"role\":\"fenced\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"fenced\":1"), std::string::npos) << stats;
  EXPECT_TRUE(client.Ask("REPL SUBSCRIBE " + std::to_string(head))
                  .rfind("ERR fenced", 0) == 0);
  ExpectVerifyOk(&client);  // Reads still work on a fenced server.

  // PROMOTE claims an epoch above the file and reopens the log.
  const std::string promoted = client.Ask("PROMOTE");
  EXPECT_TRUE(promoted.rfind("OK PROMOTED ", 0) == 0) << promoted;
  int64_t head2 = 0, epoch2 = 0;
  ReplStatus(&client, &head2, &epoch2);
  EXPECT_EQ(epoch2, epoch + 2);
  source.ChurnAcked(&client, 5);
  ExpectVerifyOk(&client);
}

// A subscriber announcing a higher epoch (a follower that has served under
// a newer primary) fences a writable server at the handshake itself.
TEST(ReplFaultTest, SubscriberHandshakeAboveEpochFencesPrimary) {
  const std::string dir = FreshDir("fault_fence_handshake");
  ServeOptions options;
  options.backend = "engine";
  options.change_log_dir = dir;
  TestServer server(options);
  TestClient writer(server.port());
  UpdateSource source(79);
  source.ChurnAcked(&writer, 5);
  int64_t head = 0, epoch = 0;
  ReplStatus(&writer, &head, &epoch);

  TestClient subscriber(server.port());
  const std::string response =
      subscriber.Ask("REPL SUBSCRIBE " + std::to_string(head) + " EPOCH " +
                     std::to_string(epoch + 5));
  EXPECT_TRUE(
      response.rfind("ERR fenced " + std::to_string(epoch + 5), 0) == 0)
      << response;
  EXPECT_TRUE(source.AskPastAdmission(&writer).rfind("ERR fenced", 0) == 0);
}

// Kill the primary, restart it on the same port from its change log: the
// follower must reconnect on its own (exponential backoff against the dead
// port), resubscribe from its last sequence, adopt the restarted primary's
// higher epoch from the stream, and converge byte-identically.
TEST(ReplFaultTest, FollowerReconnectsToRestartedPrimary) {
  const std::string dir = FreshDir("fault_reconnect");
  ServeOptions popts;
  popts.backend = "sharded";
  popts.shards = 2;
  popts.change_log_dir = dir;
  auto primary = std::make_unique<TestServer>(popts);
  const int primary_port = primary->port();
  {
    TestClient pc(primary->port());
    UpdateSource source(80);
    source.ChurnAcked(&pc, 30);
  }

  ServeOptions fopts;
  fopts.backend = "sharded";
  fopts.shards = 2;
  fopts.follow_addr = "127.0.0.1:" + std::to_string(primary_port);
  fopts.reconnect_max_ms = 200;  // Keep the retry cadence test-sized.
  TestServer follower(fopts);
  TestClient fc(follower.port());
  {
    TestClient pc(primary->port());
    int64_t head = 0, epoch = 0;
    ReplStatus(&pc, &head, &epoch);
    ASSERT_TRUE(WaitUntil([&] {
      int64_t fseq = 0, fepoch = 0;
      ReplStatus(&fc, &fseq, &fepoch);
      return fseq == head;
    }));
  }

  // Primary dies; the follower starts retrying against a closed port.
  primary->StopAndJoin();
  primary.reset();

  // Restart from the log on the same port (SO_REUSEADDR on the listener).
  repl::BootstrapResult boot;
  std::string error;
  ASSERT_TRUE(
      repl::BootstrapFromChangeLog(dir, TestGraph(), popts, &boot, &error))
      << error;
  popts.port = primary_port;
  popts.repl_start_seq = boot.next_seq;
  popts.bootstrap_base_seq = boot.base_seq;
  popts.start_epoch = boot.epoch;
  TestServer restarted(std::move(boot.backend), popts);
  ASSERT_EQ(restarted.port(), primary_port);

  TestClient pc(restarted.port());
  UpdateSource source(81);
  source.ChurnAcked(&pc, 20);
  int64_t head = 0, epoch = 0;
  ReplStatus(&pc, &head, &epoch);
  EXPECT_GE(epoch, 2);  // Second incarnation: strictly above the first.

  ASSERT_TRUE(WaitUntil([&] {
    int64_t fseq = 0, fepoch = 0;
    ReplStatus(&fc, &fseq, &fepoch);
    return fseq == head && fepoch == epoch;
  }));
  EXPECT_EQ(fc.Ask("SOLUTION"), pc.Ask("SOLUTION"));
  const std::string stats = fc.Ask("STATS");
  EXPECT_NE(stats.find("\"reconnects\":1"), std::string::npos) << stats;
  follower.StopAndJoin();
  EXPECT_GE(follower.server().MetricsSnapshot().repl_reconnects, 1);
}

// Scripted connection resets on the upstream socket: the follower still
// comes up (read-only, retrying with backoff), and catches up as soon as a
// connect attempt is allowed through. Only the server's upstream connect
// routes through faultfs — test clients use raw sockets and are untouched.
TEST(ReplFaultTest, ConnectFaultsAreRetriedWithBackoff) {
  const std::string dir = FreshDir("fault_connect");
  ServeOptions popts;
  popts.backend = "engine";
  popts.change_log_dir = dir;
  TestServer primary(popts);
  TestClient pc(primary.port());
  UpdateSource source(82);
  source.ChurnAcked(&pc, 20);
  int64_t head = 0, epoch = 0;
  ReplStatus(&pc, &head, &epoch);

  // The startup connect and the first backoff retry are refused; the third
  // attempt goes through.
  ScopedPlan plan("connect:reset@1x2");
  ServeOptions fopts;
  fopts.backend = "engine";
  fopts.follow_addr = "127.0.0.1:" + std::to_string(primary.port());
  fopts.reconnect_max_ms = 200;
  TestServer follower(fopts);
  TestClient fc(follower.port());
  ASSERT_TRUE(WaitUntil([&] {
    int64_t fseq = 0, fepoch = 0;
    ReplStatus(&fc, &fseq, &fepoch);
    return fseq == head;
  }));
  EXPECT_GE(faultfs::CountersFor(faultfs::Op::kConnect).faults, 2);
  EXPECT_EQ(fc.Ask("SOLUTION"), pc.Ask("SOLUTION"));
  const std::string stats = fc.Ask("STATS");
  EXPECT_NE(stats.find("\"reconnects\":1"), std::string::npos) << stats;
}

// Restart cycles over one directory: every incarnation claims a higher
// epoch, resumes the sequence space, tolerates the torn tail its
// predecessor left mid-append, and the final checkpoint bootstrap (base
// snapshot + tail) equals a clean full replay of every record.
TEST(ReplFaultTest, RestartCyclesRecoverByteIdentical) {
  const std::string dir = FreshDir("fault_cycles");
  ServeOptions options;
  options.backend = "sharded";
  options.shards = 2;
  options.change_log_dir = dir;
  options.snapshot_every_batches = 8;

  int64_t last_epoch = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ServeOptions cycle_options = options;
    std::unique_ptr<ServingBackend> backend;
    std::string error;
    if (cycle > 0) {
      repl::BootstrapResult boot;
      ASSERT_TRUE(repl::BootstrapFromChangeLog(dir, TestGraph(),
                                               cycle_options, &boot, &error))
          << error;
      backend = std::move(boot.backend);
      cycle_options.repl_start_seq = boot.next_seq;
      cycle_options.bootstrap_base_seq = boot.base_seq;
      cycle_options.start_epoch = boot.epoch;
    } else {
      backend = MakeServingBackend(TestGraph(), cycle_options, &error);
      ASSERT_NE(backend, nullptr) << error;
    }
    TestServer server(std::move(backend), cycle_options);
    TestClient client(server.port());
    UpdateSource source(83 + static_cast<uint64_t>(cycle));
    source.ChurnAcked(&client, 25);
    int64_t head = 0, epoch = 0;
    ReplStatus(&client, &head, &epoch);
    EXPECT_GT(epoch, last_epoch);  // Every incarnation claims a new term.
    last_epoch = epoch;
    ExpectVerifyOk(&client);
    if (cycle == 0) {
      // Make sure the background snapshotter has published at least one
      // base — the final bootstrap must exercise the checkpoint path.
      ASSERT_TRUE(WaitUntil([&] {
        repl::ChangeLogDirState state;
        std::string scan_error;
        return repl::ScanChangeLogDir(dir, &state, &scan_error) &&
               state.latest_base_seq > 0;
      }));
    }
    server.StopAndJoin();

    // Simulate dying mid-append: leave half a record at the newest
    // segment's tail. The next incarnation's higher epoch supersedes it.
    repl::ChangeLogDirState state;
    ASSERT_TRUE(repl::ScanChangeLogDir(dir, &state, &error)) << error;
    ASSERT_FALSE(state.segments.empty());
    repl::LogBatch torn;
    torn.seq = head;
    torn.epoch = epoch;
    GraphUpdate junk;
    junk.kind = UpdateKind::kInsertEdge;
    junk.u = 1;
    junk.v = 2;
    torn.updates.push_back(junk);
    const std::string record = repl::EncodeLogRecord(torn);
    std::ofstream out(state.segments.back().path,
                      std::ios::binary | std::ios::app);
    out.write(record.data(),
              static_cast<std::streamsize>(record.size() / 2));
  }

  // Byte-identical gate: checkpoint bootstrap (base + tail) and a full
  // from-scratch replay of every record agree exactly.
  std::string error;
  repl::BootstrapResult boot;
  ASSERT_TRUE(
      repl::BootstrapFromChangeLog(dir, TestGraph(), options, &boot, &error))
      << error;
  EXPECT_GT(boot.base_seq, 0);

  ServeOptions clean;
  clean.backend = options.backend;
  clean.shards = options.shards;
  auto replayed = MakeServingBackend(TestGraph(), clean, &error);
  ASSERT_NE(replayed, nullptr) << error;
  repl::ChangeLogCursor cursor;
  ASSERT_TRUE(cursor.Open(dir, 0, &error)) << error;
  int64_t replayed_to = 0;
  for (;;) {
    repl::LogBatch batch;
    bool available = false;
    ASSERT_TRUE(cursor.Next(&batch, &available, &error)) << error;
    if (!available) break;
    replayed->ApplyBatch(batch.updates);
    replayed_to = batch.seq + 1;
  }
  EXPECT_EQ(replayed_to, boot.next_seq);
  std::vector<VertexId> from_checkpoint;
  boot.backend->CollectSolution(&from_checkpoint);
  std::vector<VertexId> from_replay;
  replayed->CollectSolution(&from_replay);
  EXPECT_EQ(from_checkpoint, from_replay);
}

// Dying between a base snapshot's tmp write and its rename must leave no
// trace a scan would pick up, and the next writer cleans the stale tmp.
TEST(ReplFaultDeathTest, TornBaseSnapshotPublishIsInvisible) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = FreshDir("fault_torn_base");
  EXPECT_EXIT(
      {
        std::string error;
        if (!faultfs::ArmPlan("rename:torn~.snap", &error)) _exit(3);
        repl::WriteBaseSnapshot(dir, 9, /*epoch=*/1, "payload", &error);
        _exit(4);  // Unreachable: torn kills the process pre-rename.
      },
      ::testing::ExitedWithCode(faultfs::kCrashExitCode), "");
  repl::ChangeLogDirState state;
  std::string error;
  ASSERT_TRUE(repl::ScanChangeLogDir(dir, &state, &error)) << error;
  EXPECT_EQ(state.latest_base_seq, -1);  // The half publish is invisible.
  // The next writer incarnation sweeps the stale tmp.
  repl::ChangeLogWriter writer;
  ASSERT_TRUE(writer.Open(dir, 4 << 20, 0, /*epoch=*/2, &error)) << error;
  int tmp_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") ++tmp_files;
  }
  EXPECT_EQ(tmp_files, 0);
}

}  // namespace
}  // namespace serve
}  // namespace dynmis
