// Baseline maintainers: DyARW must match DyOneSwap's invariant class
// (1-maximality), DGOneDIS/DGTwoDIS must stay maximal (their guarantee),
// and Recompute must always return a maximal greedy solution.

#include <vector>

#include "gtest/gtest.h"
#include "src/baselines/dgdis.h"
#include "src/baselines/dyarw.h"
#include "src/baselines/recompute.h"
#include "src/core/one_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace dynmis {
namespace {

using testing_util::HasSwapUpTo;
using testing_util::IsIndependentSet;
using testing_util::IsMaximalIndependentSet;

TEST(DyArwTest, BasicCases) {
  DynamicGraph g = StarGraph(4).ToDynamic();
  DyArw algo(&g);
  algo.Initialize({0});
  EXPECT_EQ(algo.SolutionSize(), 4);  // Swaps hub for leaves.
  algo.CheckConsistency();
}

struct SweepParam {
  int n;
  double density;
  double edge_op_fraction;
  uint64_t seed;
};

class DyArwPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DyArwPropertyTest, OneMaximalAfterEveryUpdate) {
  const SweepParam param = GetParam();
  Rng rng(SplitMix64(param.seed ^ 0xa12));
  const EdgeListGraph base = ErdosRenyiGnm(
      param.n, static_cast<int64_t>(param.n * param.density), &rng);
  DynamicGraph g = base.ToDynamic();
  DyArw algo(&g);
  algo.Initialize({});
  ASSERT_FALSE(HasSwapUpTo(g, algo.Solution(), 1));

  UpdateStreamOptions stream;
  stream.seed = param.seed * 41 + 11;
  stream.edge_op_fraction = param.edge_op_fraction;
  UpdateStreamGenerator gen(stream);
  for (int step = 0; step < 180; ++step) {
    const GraphUpdate update = gen.Next(g);
    algo.Apply(update);
    algo.CheckConsistency();
    ASSERT_TRUE(IsMaximalIndependentSet(g, algo.Solution())) << step;
    ASSERT_FALSE(HasSwapUpTo(g, algo.Solution(), 1))
        << "1-swap after step " << step << " (" << update.DebugString() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DyArwPropertyTest,
    ::testing::Values(SweepParam{12, 1.0, 0.9, 1}, SweepParam{20, 1.5, 0.8, 2},
                      SweepParam{28, 2.0, 0.6, 3},
                      SweepParam{16, 0.8, 1.0, 4}));

// DyARW and DyOneSwap maintain the same invariant class; their sizes over a
// shared stream should track each other closely (paper: "its performance is
// almost the same as DyOneSwap on all graphs").
TEST(DyArwTest, SizeTracksDyOneSwap) {
  int64_t total_arw = 0;
  int64_t total_one = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 17);
    const EdgeListGraph base = ErdosRenyiGnm(80, 200, &rng);
    DynamicGraph ga = base.ToDynamic();
    DynamicGraph gb = base.ToDynamic();
    DyArw arw(&ga);
    DyOneSwap one(&gb);
    arw.Initialize({});
    one.InitializeEmpty();
    UpdateStreamOptions stream;
    stream.seed = seed;
    for (const GraphUpdate& update :
         MakeUpdateSequence(base.ToDynamic(), 150, stream)) {
      arw.Apply(update);
      one.Apply(update);
    }
    total_arw += arw.SolutionSize();
    total_one += one.SolutionSize();
  }
  const double ratio =
      static_cast<double>(total_arw) / static_cast<double>(total_one);
  EXPECT_GT(ratio, 0.97);
  EXPECT_LT(ratio, 1.03);
}

class DgDisPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DgDisPropertyTest, MaximalAfterEveryUpdate) {
  const SweepParam param = GetParam();
  for (int level : {1, 2}) {
    Rng rng(SplitMix64(param.seed ^ 0xd6d));
    const EdgeListGraph base = ErdosRenyiGnm(
        param.n, static_cast<int64_t>(param.n * param.density), &rng);
    DynamicGraph g = base.ToDynamic();
    DgDis algo(&g, level);
    algo.Initialize({});
    UpdateStreamOptions stream;
    stream.seed = param.seed * 7 + level;
    stream.edge_op_fraction = param.edge_op_fraction;
    UpdateStreamGenerator gen(stream);
    for (int step = 0; step < 200; ++step) {
      const GraphUpdate update = gen.Next(g);
      algo.Apply(update);
      algo.CheckConsistency();
      ASSERT_TRUE(IsIndependentSet(g, algo.Solution())) << step;
      ASSERT_TRUE(IsMaximalIndependentSet(g, algo.Solution()))
          << "not maximal after step " << step << " ("
          << update.DebugString() << "), level " << level;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DgDisPropertyTest,
    ::testing::Values(SweepParam{15, 1.2, 0.9, 1}, SweepParam{25, 1.8, 0.7, 2},
                      SweepParam{20, 0.9, 1.0, 3},
                      SweepParam{30, 2.2, 0.5, 4}));

TEST(RecomputeTest, AlwaysMaximal) {
  Rng rng(31);
  const EdgeListGraph base = ErdosRenyiGnm(40, 100, &rng);
  DynamicGraph g = base.ToDynamic();
  RecomputeGreedy algo(&g);
  algo.Initialize({});
  UpdateStreamOptions stream;
  stream.seed = 777;
  UpdateStreamGenerator gen(stream);
  for (int step = 0; step < 100; ++step) {
    algo.Apply(gen.Next(g));
    ASSERT_TRUE(IsMaximalIndependentSet(g, algo.Solution())) << step;
  }
}

TEST(RecomputeTest, AmortizedModeOnlyRecomputesPeriodically) {
  DynamicGraph g(6);
  RecomputeGreedy algo(&g, /*every=*/3);
  algo.Initialize({});
  EXPECT_EQ(algo.SolutionSize(), 6);
  // Two updates without recompute: solution may be stale but must not crash.
  algo.InsertEdge(0, 1);
  algo.InsertEdge(2, 3);
  algo.InsertEdge(4, 5);  // Third update triggers recompute.
  EXPECT_EQ(algo.SolutionSize(), 3);
}

}  // namespace
}  // namespace dynmis
