// Tests for the allocation-free steady-state update path: scratch-buffer
// reuse under churn with vertex-id recycling (every registered maintainer
// must stay consistent when ids are deleted and recycled mid-stream), a
// steady-state memory bound, and a literal zero-heap-allocation check of
// the DyOneSwap/DyTwoSwap update loops after warm-up, enforced by counting
// global operator new calls.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dynmis/registry.h"
#include "gtest/gtest.h"
#include "src/core/k_swap.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/random.h"
#include "tests/verifiers.h"

namespace {

std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};

}  // namespace

// Counting replacements for the global allocation functions (both the
// default-aligned and the align_val_t overloads, so over-aligned allocations
// cannot slip past the zero-allocation check). Counting is off except inside
// the measured window of the zero-allocation tests, so the rest of the
// binary is unaffected.
void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t alignment = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(
          alignment, (size + alignment - 1) / alignment * alignment)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dynmis {
namespace {

using testing_util::IsMaximalIndependentSet;

// Churn stream heavy on vertex deletions/insertions, so vertex (and edge)
// ids are continuously recycled while candidate scratch state from previous
// owners is still around.
UpdateStreamOptions RecyclingChurnOptions(uint64_t seed) {
  UpdateStreamOptions options;
  options.edge_op_fraction = 0.5;
  options.insert_fraction = 0.5;
  options.seed = seed;
  return options;
}

TEST(ScratchReuseTest, ChurnWithIdRecyclingKeepsEveryMaintainerConsistent) {
  const std::vector<std::string> names =
      MaintainerRegistry::Global().ListNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    Rng rng(2024);
    DynamicGraph g = ErdosRenyiGnm(60, 150, &rng).ToDynamic();
    auto algo = MaintainerRegistry::Global().Create(name, &g);
    ASSERT_NE(algo, nullptr) << name;
    algo->Initialize({});
    UpdateStreamGenerator gen(RecyclingChurnOptions(/*seed=*/7));
    for (int batch = 0; batch < 25; ++batch) {
      for (int i = 0; i < 40; ++i) {
        algo->Apply(gen.Next(g));
      }
      ASSERT_TRUE(IsMaximalIndependentSet(g, algo->Solution()))
          << name << " batch " << batch;
    }
  }
}

TEST(ScratchReuseTest, ChurnWithIdRecyclingPassesCheckConsistency) {
  // The core maintainers expose full invariant validation; run it after
  // every batch of the same recycling-heavy stream.
  Rng rng(77);
  const EdgeListGraph base = ErdosRenyiGnm(80, 220, &rng);
  auto run = [&](auto& algo, DynamicGraph& g, uint64_t seed) {
    algo.Initialize({});
    UpdateStreamGenerator gen(RecyclingChurnOptions(seed));
    for (int batch = 0; batch < 20; ++batch) {
      for (int i = 0; i < 30; ++i) {
        algo.Apply(gen.Next(g));
      }
      algo.CheckConsistency();
    }
  };
  for (uint64_t variant = 0; variant < 3; ++variant) {
    DynamicGraph g1 = base.ToDynamic();
    DyOneSwap algo1(&g1);
    run(algo1, g1, 100 + variant);
    DynamicGraph g2 = base.ToDynamic();
    DyTwoSwap algo2(&g2);
    run(algo2, g2, 200 + variant);
    DynamicGraph g3 = base.ToDynamic();
    KSwapMaintainer algo3(&g3, /*k=*/3);
    run(algo3, g3, 300 + variant);
  }
}

TEST(ScratchReuseTest, CollectSolutionMatchesSolution) {
  for (const std::string& name : MaintainerRegistry::Global().ListNames()) {
    Rng rng(5);
    DynamicGraph g = ErdosRenyiGnm(50, 120, &rng).ToDynamic();
    auto algo = MaintainerRegistry::Global().Create(name, &g);
    ASSERT_NE(algo, nullptr) << name;
    algo->Initialize({});
    UpdateStreamGenerator gen(RecyclingChurnOptions(/*seed=*/11));
    for (int i = 0; i < 200; ++i) algo->Apply(gen.Next(g));
    std::vector<VertexId> collected = {kInvalidVertex};  // Not cleared.
    algo->CollectSolution(&collected);
    ASSERT_FALSE(collected.empty());
    EXPECT_EQ(collected.front(), kInvalidVertex) << name;
    collected.erase(collected.begin());
    std::vector<VertexId> copied = algo->Solution();
    std::sort(collected.begin(), collected.end());
    std::sort(copied.begin(), copied.end());
    EXPECT_EQ(collected, copied) << name;
    EXPECT_EQ(static_cast<int64_t>(copied.size()), algo->SolutionSize())
        << name;
  }
}

// Shared setup for the steady-state tests: a power-law graph with headroom
// reserved, a deterministic edge-churn sequence (slightly delete-biased so
// the live-edge high-water mark is established during warm-up), and a
// maintainer warmed up over the first part of the sequence.
struct SteadyStateRig {
  int n = 0;
  int64_t m = 0;
  DynamicGraph graph;
  std::vector<GraphUpdate> updates;

  explicit SteadyStateRig(int vertices, int total_updates) : n(vertices) {
    Rng rng(4242);
    const EdgeListGraph base = ChungLuPowerLaw(n, 2.3, 10.0, &rng);
    m = base.NumEdges();
    graph = base.ToDynamic();
    UpdateStreamOptions options;
    options.edge_op_fraction = 1.0;   // Fixed vertex set: pure edge churn.
    options.insert_fraction = 0.49;   // Slight delete bias (see above).
    options.seed = 97;
    updates = MakeUpdateSequence(graph, total_updates, options);
  }

  // A fresh copy with growth headroom pre-reserved (copying a graph copies
  // sizes, not capacities, so Reserve must be re-applied per copy).
  DynamicGraph MakeGraph() const {
    DynamicGraph g = graph;
    g.Reserve(n, 2 * m);
    return g;
  }
};

TEST(ScratchReuseTest, SteadyStateUpdatesDoNotGrowMemory) {
  SteadyStateRig rig(2000, 12000);
  {
    DynamicGraph g = rig.MakeGraph();
    DyTwoSwap algo(&g);
    algo.Initialize({});
    for (int i = 0; i < 6000; ++i) algo.Apply(rig.updates[i]);
    const size_t structures_before = algo.MemoryUsageBytes();
    const size_t graph_before = g.MemoryUsageBytes();
    for (int i = 6000; i < 12000; ++i) algo.Apply(rig.updates[i]);
    EXPECT_LE(algo.MemoryUsageBytes(), structures_before);
    EXPECT_LE(g.MemoryUsageBytes(), graph_before);
  }
  {
    DynamicGraph g = rig.MakeGraph();
    DyOneSwap algo(&g);
    algo.Initialize({});
    for (int i = 0; i < 6000; ++i) algo.Apply(rig.updates[i]);
    const size_t structures_before = algo.MemoryUsageBytes();
    const size_t graph_before = g.MemoryUsageBytes();
    for (int i = 6000; i < 12000; ++i) algo.Apply(rig.updates[i]);
    EXPECT_LE(algo.MemoryUsageBytes(), structures_before);
    EXPECT_LE(g.MemoryUsageBytes(), graph_before);
  }
}

template <typename Algo>
int64_t CountSteadyStateAllocations(const SteadyStateRig& rig, Algo* algo,
                                    int warmup, int window) {
  algo->Initialize({});
  for (int i = 0; i < warmup; ++i) algo->Apply(rig.updates[i]);
  g_allocation_count.store(0);
  g_count_allocations.store(true);
  for (int i = warmup; i < warmup + window; ++i) algo->Apply(rig.updates[i]);
  g_count_allocations.store(false);
  return g_allocation_count.load();
}

TEST(ScratchReuseTest, DyTwoSwapSteadyStateUpdatesAreAllocationFree) {
  SteadyStateRig rig(2000, 15000);
  DynamicGraph g = rig.MakeGraph();
  DyTwoSwap algo(&g);
  EXPECT_EQ(CountSteadyStateAllocations(rig, &algo, /*warmup=*/10000,
                                        /*window=*/5000),
            0);
}

TEST(ScratchReuseTest, DyOneSwapSteadyStateUpdatesAreAllocationFree) {
  SteadyStateRig rig(2000, 15000);
  DynamicGraph g = rig.MakeGraph();
  DyOneSwap algo(&g);
  EXPECT_EQ(CountSteadyStateAllocations(rig, &algo, /*warmup=*/10000,
                                        /*window=*/5000),
            0);
}

}  // namespace
}  // namespace dynmis
