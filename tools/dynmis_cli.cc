// dynmis_cli: run any registered dynamic MIS maintainer over a graph file
// and an update stream, reporting solution size, response time and memory.
// The workhorse for ad-hoc experiments on real SNAP files.
//
//   dynmis_cli --graph FILE [--algo NAME] [--initial MODE]
//              [--k K] [--lazy] [--perturb] [--recompute-every N]
//              [--updates FILE | --random N] [--seed S]
//              [--edge-fraction F] [--insert-fraction F] [--degree-bias]
//              [--report-every K] [--save-trace FILE] [--csv]
//
//   --graph FILE       SNAP-format edge list (required).
//   --algo NAME        a MaintainerRegistry name (default DyTwoSwap);
//                      `--algo help` lists everything the registry accepts.
//   --k K              swap order for the generic KSwap maintainer.
//   --lazy             lazy collection (paper optimization 1).
//   --perturb          perturbation (paper optimization 2).
//   --recompute-every N  amortization interval for Recompute.
//   --initial MODE     greedy | arw | exact (default greedy).
//   --updates FILE     replay an update trace (see update_trace_io.h).
//   --random N         generate N random updates instead (default 10000).
//   --seed S           RNG seed for --random (default 1).
//   --edge-fraction F  fraction of edge ops in the random stream (0.9).
//   --insert-fraction F  fraction of insertions (0.5).
//   --degree-bias      degree-proportional endpoints (default uniform).
//   --report-every K   print a progress row every K updates.
//   --save-trace FILE  write the applied update sequence to FILE.
//   --csv              machine-readable progress rows.
//
// Snapshot subcommands (durable engine state; see README "Snapshots"):
//
//   dynmis_cli snapshot save --graph FILE --out SNAP [run flags as above]
//       build the engine, apply the update stream, write a snapshot.
//   dynmis_cli snapshot load --in SNAP [--random N] [--seed S] [--out SNAP2]
//       restore the engine, optionally resume with more updates, and
//       optionally write a fresh snapshot of the resumed state.
//   dynmis_cli snapshot info --in SNAP
//       print the header, section table and engine metadata.
//
// Serve subcommand (TCP update/query server; see README "Serving"):
//
//   dynmis_cli serve [--port P] [--host ADDR]
//                    [--graph FILE | --scenario NAME | --restore SNAP]
//                    [--algo NAME] [--backend engine|sharded] [--shards N]
//                    [--batch-ops N] [--flush-us U] [--max-conns N]
//                    [--io-threads N] [--record-trace]
//       serve the engine over TCP — newline text by default, with a
//       length-prefixed binary protocol negotiated per connection (HELLO 2
//       BIN; README "Serving"). --io-threads N spreads connection I/O over
//       N epoll threads. With no graph source the server starts on an
//       empty graph (clients build it with INSV). SIGTERM/SIGINT drain
//       in-flight batches and exit 0.
//
// Replication (README "Replication"):
//
//   primary:   --change-log DIR [--log-segment-bytes N] [--snapshot-every N]
//              [--snapshot-interval-ms MS]
//       append every applied batch to a segmented change log under DIR and
//       publish periodic background base snapshots — every N batches,
//       and/or whenever MS milliseconds have passed at a batch boundary. A
//       primary restarted on a non-empty DIR recovers from the latest
//       checkpoint (base + tail) and continues the sequence.
//   follower:  --follow HOST:PORT [--bootstrap DIR]  |  --follow-dir DIR
//       serve reads only (`ERR readonly` for writes), replaying the
//       primary's batches — over TCP (REPL SUBSCRIBE) or by tailing its
//       change-log directory. --bootstrap/--follow-dir restore the latest
//       local checkpoint first. SIGUSR1 or the PROMOTE verb promotes.
//
// Workload subcommands (README "Workloads"):
//
//   dynmis_cli genedges --out FILE [--n N] [--avg-degree D] [--beta B]
//                       [--seed S]
//       write a deterministic power-law edge list in SNAP header format
//       (CI's no-network stand-in for a real SNAP download).
//   dynmis_cli ingest --graph FILE [--json]
//       stream FILE (plain or .gz) through the SNAP-scale ingester and
//       report the memory budget (load time, bytes/edge, peak RSS).
//   dynmis_cli serve --window-ttl MS ...
//       sliding-window serving: every admitted edge insert is expired
//       (deleted) MS milliseconds later by a server-side timing wheel.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dynmis/dynmis.h"
#include "dynmis/workload.h"
#include "src/harness/experiment.h"
#include "src/repl/bootstrap.h"
#include "src/repl/change_log.h"
#include "src/serve/workload.h"
#include "src/util/faultfs.h"

namespace dynmis {
namespace {

struct CliOptions {
  std::string graph_path;
  MaintainerConfig algo;  // algorithm defaults to DyTwoSwap.
  std::string initial = "greedy";
  std::string updates_path;
  std::string save_trace_path;
  int random_updates = 10000;
  uint64_t seed = 1;
  double edge_fraction = 0.9;
  double insert_fraction = 0.5;
  bool degree_bias = false;
  int report_every = 0;
  bool csv = false;
  // Snapshot-mode paths (`snapshot save --out` / `snapshot load --in/--out`).
  std::string snapshot_out;
  std::string snapshot_in;
  // Which flag families were given, for per-mode validation: a flag the
  // selected mode cannot honor is an error, not silently ignored (e.g.
  // `snapshot load --algo X` — the snapshot fixes the algorithm).
  bool saw_engine_flags = false;  // --algo/--k/--lazy/--perturb/...
  bool saw_run_inputs = false;    // --graph/--updates/--save-trace
  bool saw_stream_flags = false;  // --random/--seed/--*-fraction/...
};

// Writes a snapshot of `engine` to `path`. Returns 0 on success.
int WriteSnapshotFile(const MisEngine& engine, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open snapshot for writing: %s\n",
                 path.c_str());
    return 1;
  }
  Timer timer;
  const SnapshotStatus status = engine.SaveSnapshot(out);
  if (!status) {
    std::fprintf(stderr, "snapshot save failed: %s\n", status.message.c_str());
    return 1;
  }
  std::fprintf(stderr, "snapshot: wrote %s (%.3fs)\n", path.c_str(),
               timer.ElapsedSeconds());
  return 0;
}

// Lists every name the registry accepts, straight from the registry — there
// is no hand-maintained algorithm table in this binary.
int PrintAlgorithms() {
  const MaintainerRegistry& registry = MaintainerRegistry::Global();
  const std::vector<std::string> algorithms = registry.ListAlgorithms();
  std::printf("algorithms:\n");
  for (const std::string& name : algorithms) {
    std::printf("  %-16s %s\n", name.c_str(), registry.Describe(name).c_str());
  }
  std::printf("aliases:\n");
  for (const std::string& name : registry.ListNames()) {
    if (std::find(algorithms.begin(), algorithms.end(), name) ==
        algorithms.end()) {
      std::printf("  %-16s %s\n", name.c_str(),
                  registry.Describe(name).c_str());
    }
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --graph FILE [--algo NAME] [--initial MODE]\n"
               "          [--k K] [--lazy] [--perturb] [--recompute-every N]\n"
               "          [--updates FILE | --random N] [--seed S]\n"
               "          [--edge-fraction F] [--insert-fraction F]\n"
               "          [--degree-bias] [--report-every K]\n"
               "          [--save-trace FILE] [--csv]\n"
               "       %s --algo help   (list registered algorithms)\n"
               "       %s snapshot save|load|info ...   (durable state;\n"
               "          run `%s snapshot` for details)\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, int first, CliOptions* options,
               bool* list_algos) {
  *list_algos = false;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph" || arg == "--updates" || arg == "--save-trace") {
      options->saw_run_inputs = true;
    } else if (arg == "--algo" || arg == "--k" || arg == "--lazy" ||
               arg == "--perturb" || arg == "--recompute-every" ||
               arg == "--initial") {
      options->saw_engine_flags = true;
    } else if (arg == "--random" || arg == "--seed" ||
               arg == "--edge-fraction" || arg == "--insert-fraction" ||
               arg == "--degree-bias" || arg == "--report-every" ||
               arg == "--csv") {
      options->saw_stream_flags = true;
    }
    if (arg == "--graph") {
      const char* v = next();
      if (!v) return false;
      options->graph_path = v;
    } else if (arg == "--algo") {
      const char* v = next();
      if (!v) return false;
      options->algo.algorithm = v;
      if (options->algo.algorithm == "help" ||
          options->algo.algorithm == "list") {
        *list_algos = true;
        return true;
      }
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return false;
      options->algo.k = std::atoi(v);
    } else if (arg == "--lazy") {
      options->algo.lazy = true;
    } else if (arg == "--perturb") {
      options->algo.perturb = true;
    } else if (arg == "--recompute-every") {
      const char* v = next();
      if (!v) return false;
      options->algo.recompute_every = std::atoi(v);
    } else if (arg == "--initial") {
      const char* v = next();
      if (!v) return false;
      options->initial = v;
    } else if (arg == "--updates") {
      const char* v = next();
      if (!v) return false;
      options->updates_path = v;
    } else if (arg == "--save-trace") {
      const char* v = next();
      if (!v) return false;
      options->save_trace_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      options->snapshot_out = v;
    } else if (arg == "--in") {
      const char* v = next();
      if (!v) return false;
      options->snapshot_in = v;
    } else if (arg == "--random") {
      const char* v = next();
      if (!v) return false;
      options->random_updates = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--edge-fraction") {
      const char* v = next();
      if (!v) return false;
      options->edge_fraction = std::atof(v);
    } else if (arg == "--insert-fraction") {
      const char* v = next();
      if (!v) return false;
      options->insert_fraction = std::atof(v);
    } else if (arg == "--report-every") {
      const char* v = next();
      if (!v) return false;
      options->report_every = std::atoi(v);
    } else if (arg == "--degree-bias") {
      options->degree_bias = true;
    } else if (arg == "--csv") {
      options->csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Run(const CliOptions& options) {
  if (!MaintainerRegistry::Global().Has(options.algo.algorithm)) {
    std::fprintf(stderr,
                 "unknown algorithm: %s (try --algo help)\n",
                 options.algo.algorithm.c_str());
    return 2;
  }
  if (options.algo.k < 1 || options.algo.k > kMaxKSwapOrder) {
    std::fprintf(stderr, "--k must be in [1, %d]\n", kMaxKSwapOrder);
    return 2;
  }
  if (options.algo.recompute_every < 1) {
    std::fprintf(stderr, "--recompute-every must be a positive integer\n");
    return 2;
  }
  InitialSolution initial;
  if (options.initial == "greedy") {
    initial = InitialSolution::kGreedy;
  } else if (options.initial == "arw") {
    initial = InitialSolution::kArw;
  } else if (options.initial == "exact") {
    initial = InitialSolution::kExact;
  } else {
    std::fprintf(stderr, "unknown initial mode: %s\n",
                 options.initial.c_str());
    return 2;
  }

  const auto graph = LoadEdgeList(options.graph_path);
  if (!graph) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 options.graph_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "graph: n=%d m=%lld avg-deg=%.2f\n", graph->n,
               static_cast<long long>(graph->NumEdges()),
               graph->AverageDegree());

  std::vector<GraphUpdate> updates;
  if (!options.updates_path.empty()) {
    const auto loaded = LoadUpdateTrace(options.updates_path);
    if (!loaded) {
      std::fprintf(stderr, "cannot load updates: %s\n",
                   options.updates_path.c_str());
      return 1;
    }
    updates = *loaded;
  } else {
    UpdateStreamOptions stream;
    stream.seed = options.seed;
    stream.edge_op_fraction = options.edge_fraction;
    stream.insert_fraction = options.insert_fraction;
    stream.bias = options.degree_bias ? EndpointBias::kDegreeProportional
                                      : EndpointBias::kUniform;
    updates =
        MakeUpdateSequence(graph->ToDynamic(), options.random_updates, stream);
  }
  if (!options.save_trace_path.empty() &&
      !SaveUpdateTrace(updates, options.save_trace_path)) {
    std::fprintf(stderr, "cannot write trace: %s\n",
                 options.save_trace_path.c_str());
    return 1;
  }

  std::unique_ptr<MisEngine> engine = MisEngine::Create(*graph, options.algo);
  // Has() passed above, so construction cannot miss the registry.
  Timer init_timer;
  engine->Initialize(
      ComputeInitialSolution(*graph, initial, /*arw_iterations=*/500,
                             /*exact_node_budget=*/2'000'000,
                             /*exact_seconds_budget=*/30.0));
  std::fprintf(stderr, "initial |I|=%lld (%.3fs, %s start)\n",
               static_cast<long long>(engine->SolutionSize()),
               init_timer.ElapsedSeconds(), options.initial.c_str());

  if (options.report_every > 0) {
    std::printf(options.csv ? "updates,size,n,m,seconds\n"
                            : "%10s %10s %10s %12s %10s\n",
                "updates", "|I|", "n", "m", "seconds");
  }
  Timer timer;
  int64_t applied = 0;
  for (const GraphUpdate& update : updates) {
    engine->Apply(update);
    ++applied;
    if (options.report_every > 0 && applied % options.report_every == 0) {
      const DynamicGraph& g = engine->graph();
      if (options.csv) {
        std::printf("%lld,%lld,%d,%lld,%.6f\n",
                    static_cast<long long>(applied),
                    static_cast<long long>(engine->SolutionSize()),
                    g.NumVertices(), static_cast<long long>(g.NumEdges()),
                    timer.ElapsedSeconds());
      } else {
        std::printf("%10lld %10lld %10d %12lld %9.3fs\n",
                    static_cast<long long>(applied),
                    static_cast<long long>(engine->SolutionSize()),
                    g.NumVertices(), static_cast<long long>(g.NumEdges()),
                    timer.ElapsedSeconds());
      }
    }
  }
  const double seconds = timer.ElapsedSeconds();
  const EngineStats stats = engine->Stats();
  std::fprintf(stderr,
               "%s: %lld updates in %.3fs (%.2f us/update), final |I|=%lld, "
               "memory=%s\n",
               stats.algorithm.c_str(), static_cast<long long>(applied),
               seconds, applied > 0 ? seconds / applied * 1e6 : 0.0,
               static_cast<long long>(stats.solution_size),
               FormatBytes(stats.structure_memory_bytes).c_str());
  if (!options.snapshot_out.empty()) {
    return WriteSnapshotFile(*engine, options.snapshot_out);
  }
  return 0;
}

// --- Snapshot subcommands ----------------------------------------------------

int SnapshotUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s snapshot save --graph FILE --out SNAP [run flags]\n"
      "       %s snapshot load --in SNAP [--random N] [--seed S]\n"
      "                        [--edge-fraction F] [--insert-fraction F]\n"
      "                        [--degree-bias] [--report-every K] [--csv]\n"
      "                        [--out SNAP2]\n"
      "       %s snapshot info --in SNAP\n",
      argv0, argv0, argv0);
  return 2;
}

// Restores an engine from --in, optionally resumes a random update stream
// over it (so restart-then-continue is a one-liner), and optionally writes
// the resumed state back out with --out.
int RunSnapshotLoad(const CliOptions& options, bool resume_updates) {
  std::ifstream in(options.snapshot_in, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open snapshot: %s\n",
                 options.snapshot_in.c_str());
    return 1;
  }
  Timer load_timer;
  SnapshotStatus status;
  std::unique_ptr<MisEngine> engine = MisEngine::LoadSnapshot(in, &status);
  if (engine == nullptr) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 status.message.c_str());
    return 1;
  }
  const EngineStats stats = engine->Stats();
  std::fprintf(stderr,
               "restored %s from %s in %.3fs: n=%lld m=%lld |I|=%lld "
               "(%lld lifetime updates)\n",
               stats.algorithm.c_str(), options.snapshot_in.c_str(),
               load_timer.ElapsedSeconds(),
               static_cast<long long>(stats.num_vertices),
               static_cast<long long>(stats.num_edges),
               static_cast<long long>(stats.solution_size),
               static_cast<long long>(stats.updates_applied));

  if (resume_updates && options.random_updates > 0) {
    UpdateStreamOptions stream;
    stream.seed = options.seed;
    stream.edge_op_fraction = options.edge_fraction;
    stream.insert_fraction = options.insert_fraction;
    stream.bias = options.degree_bias ? EndpointBias::kDegreeProportional
                                      : EndpointBias::kUniform;
    UpdateStreamGenerator gen(stream);
    Timer timer;
    for (int i = 0; i < options.random_updates; ++i) {
      engine->Apply(gen.Next(engine->graph()));
      if (options.report_every > 0 && (i + 1) % options.report_every == 0) {
        std::printf(options.csv ? "%d,%lld,%.6f\n" : "%10d %10lld %9.3fs\n",
                    i + 1, static_cast<long long>(engine->SolutionSize()),
                    timer.ElapsedSeconds());
      }
    }
    std::fprintf(stderr, "resumed %d updates in %.3fs, final |I|=%lld\n",
                 options.random_updates, timer.ElapsedSeconds(),
                 static_cast<long long>(engine->SolutionSize()));
  }
  if (!options.snapshot_out.empty()) {
    return WriteSnapshotFile(*engine, options.snapshot_out);
  }
  return 0;
}

int RunSnapshotInfo(const CliOptions& options) {
  std::ifstream in(options.snapshot_in, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open snapshot: %s\n",
                 options.snapshot_in.c_str());
    return 1;
  }
  SnapshotReader reader;
  const SnapshotStatus status = reader.ReadFrom(in);
  if (!status) {
    std::fprintf(stderr, "invalid snapshot: %s\n", status.message.c_str());
    return 1;
  }
  std::printf("snapshot %s (format version %u)\n",
              options.snapshot_in.c_str(), reader.version());
  std::printf("sections:\n");
  for (const std::string& name : reader.SectionNames()) {
    std::printf("  %-24s %10zu bytes\n", name.c_str(),
                reader.SectionSize(name));
  }
  SnapshotEngineMeta meta;
  if (!MisEngine::ReadEngineMeta(&reader, &meta)) {
    std::fprintf(stderr, "invalid snapshot: %s\n",
                 reader.error().c_str());
    return 1;
  }
  std::printf(
      "engine: algorithm=%s (%s) k=%d lazy=%d perturb=%d "
      "recompute_every=%d\n",
      meta.config.algorithm.c_str(), meta.display_name.c_str(),
      meta.config.k, meta.config.lazy ? 1 : 0, meta.config.perturb ? 1 : 0,
      meta.config.recompute_every);
  std::printf("history: %lld updates, %.3fs inside the maintainer\n",
              static_cast<long long>(meta.updates_applied),
              meta.update_seconds);
  return 0;
}

int RunSnapshotCommand(int argc, char** argv) {
  if (argc < 3) return SnapshotUsage(argv[0]);
  const std::string mode = argv[2];
  CliOptions options;
  // Restoring should not churn the graph unless asked: `load` resumes only
  // with an explicit --random N (the top-level default of 10000 is for the
  // run-an-experiment mode).
  if (mode == "load") options.random_updates = 0;
  bool list_algos = false;
  if (!ParseArgs(argc, argv, /*first=*/3, &options, &list_algos)) {
    return SnapshotUsage(argv[0]);
  }
  if (mode == "save") {
    if (options.graph_path.empty() || options.snapshot_out.empty()) {
      return SnapshotUsage(argv[0]);
    }
    if (!options.snapshot_in.empty()) {
      std::fprintf(stderr, "snapshot save does not take --in\n");
      return 2;
    }
    return Run(options);
  }
  if (mode == "load") {
    if (options.snapshot_in.empty()) return SnapshotUsage(argv[0]);
    if (options.saw_engine_flags || options.saw_run_inputs) {
      std::fprintf(stderr,
                   "snapshot load restores the graph and algorithm from the "
                   "snapshot; --graph/--algo-style flags are not accepted\n");
      return 2;
    }
    return RunSnapshotLoad(options, /*resume_updates=*/true);
  }
  if (mode == "info") {
    if (options.snapshot_in.empty()) return SnapshotUsage(argv[0]);
    if (options.saw_engine_flags || options.saw_run_inputs ||
        options.saw_stream_flags || !options.snapshot_out.empty()) {
      std::fprintf(stderr, "snapshot info takes only --in\n");
      return 2;
    }
    return RunSnapshotInfo(options);
  }
  return SnapshotUsage(argv[0]);
}

// --- Ingest subcommands ------------------------------------------------------

int IngestUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s genedges --out FILE [--n N] [--avg-degree D] [--beta B]\n"
      "                   [--seed S]\n"
      "           write a deterministic Chung-Lu power-law edge list in\n"
      "           SNAP header format (the no-network stand-in for a real\n"
      "           SNAP download; defaults give ~2M edges)\n"
      "       %s ingest --graph FILE [--json]\n"
      "           stream FILE (plain or .gz) through the ingester and print\n"
      "           the memory-budget report; --json emits one JSON object on\n"
      "           stdout for CI gates\n",
      argv0, argv0);
  return 2;
}

int RunGenEdgesCommand(int argc, char** argv) {
  std::string out_path;
  int n = 200000;
  double avg_degree = 22.0;
  double beta = 2.3;
  uint64_t seed = 9;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--out") {
      if (!(v = next())) return IngestUsage(argv[0]);
      out_path = v;
    } else if (arg == "--n") {
      if (!(v = next())) return IngestUsage(argv[0]);
      n = std::atoi(v);
    } else if (arg == "--avg-degree") {
      if (!(v = next())) return IngestUsage(argv[0]);
      avg_degree = std::atof(v);
    } else if (arg == "--beta") {
      if (!(v = next())) return IngestUsage(argv[0]);
      beta = std::atof(v);
    } else if (arg == "--seed") {
      if (!(v = next())) return IngestUsage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return IngestUsage(argv[0]);
    }
  }
  if (out_path.empty() || n < 2 || avg_degree <= 0 || beta <= 1) {
    return IngestUsage(argv[0]);
  }
  Timer timer;
  std::string error;
  const int64_t edges =
      ingest::GeneratePowerLawEdgeFile(out_path, n, avg_degree, beta, seed,
                                       &error);
  if (edges < 0) {
    std::fprintf(stderr, "genedges: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "genedges: wrote %lld edges to %s (%.2fs)\n",
               static_cast<long long>(edges), out_path.c_str(),
               timer.ElapsedSeconds());
  return 0;
}

int RunIngestCommand(int argc, char** argv) {
  std::string graph_path;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (v == nullptr) return IngestUsage(argv[0]);
      graph_path = v;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return IngestUsage(argv[0]);
    }
  }
  if (graph_path.empty()) return IngestUsage(argv[0]);
  EdgeListGraph graph;
  ingest::IngestReport report;
  std::string error;
  if (!ingest::IngestEdgeList(graph_path, &graph, &report, &error)) {
    std::fprintf(stderr, "ingest: %s\n", error.c_str());
    return 1;
  }
  if (json) {
    std::printf(
        "{\"vertices\":%lld,\"edges\":%lld,\"lines\":%lld,"
        "\"dropped_self_loops\":%lld,\"dropped_duplicates\":%lld,"
        "\"header_reserved\":%s,\"gzip\":%s,\"load_seconds\":%.6f,"
        "\"graph_bytes\":%zu,\"bytes_per_edge\":%.2f,"
        "\"peak_rss_bytes\":%zu}\n",
        static_cast<long long>(report.vertices),
        static_cast<long long>(report.edges),
        static_cast<long long>(report.lines),
        static_cast<long long>(report.dropped_self_loops),
        static_cast<long long>(report.dropped_duplicates),
        report.header_reserved ? "true" : "false",
        report.gzip ? "true" : "false", report.load_seconds,
        report.graph_bytes, report.bytes_per_edge, report.peak_rss_bytes);
  } else {
    std::fprintf(stderr,
                 "ingest: n=%lld m=%lld (%lld lines, %lld self-loops, %lld "
                 "duplicates dropped)%s%s\n"
                 "        %.2fs, %.1f bytes/edge, graph %s, peak RSS %s\n",
                 static_cast<long long>(report.vertices),
                 static_cast<long long>(report.edges),
                 static_cast<long long>(report.lines),
                 static_cast<long long>(report.dropped_self_loops),
                 static_cast<long long>(report.dropped_duplicates),
                 report.header_reserved ? ", header reserved" : "",
                 report.gzip ? ", gzip" : "", report.load_seconds,
                 report.bytes_per_edge,
                 FormatBytes(report.graph_bytes).c_str(),
                 FormatBytes(report.peak_rss_bytes).c_str());
  }
  return 0;
}

// --- Serve subcommand --------------------------------------------------------

int ServeUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s serve [--port P] [--host ADDR]\n"
      "                [--graph FILE | --scenario NAME | --restore SNAP]\n"
      "                [--algo NAME] [--backend engine|sharded] [--shards N]\n"
      "                [--batch-ops N] [--flush-us U] [--max-conns N]\n"
      "                [--io-threads N] [--window-ttl MS] [--record-trace]\n"
      "                [--allow-file-commands]\n"
      "                [--change-log DIR] [--log-segment-bytes N]\n"
      "                [--snapshot-every N] [--snapshot-interval-ms MS]\n"
      "                [--follow HOST:PORT [--bootstrap DIR] |"
      " --follow-dir DIR]\n"
      "                [--reconnect-max-ms MS] [--fault-plan PLAN]\n"
      "scenarios: smoke easy hard powerlaw massive temporal storm\n"
      "           (bench-driver graphs by name)\n"
      "--window-ttl MS expires every admitted edge insert MS milliseconds\n"
      "  after admission (sliding-window serving; 0 disables)\n"
      "fault plans (testing): op:mode[@nth][xcount][~substr];... with op in\n"
      "  write|fsync|rename|connect and mode in\n"
      "  enospc|eio|eintr|short|reset|torn (also via DYNMIS_FAULT_PLAN)\n",
      argv0);
  return 2;
}

int RunServeCommand(int argc, char** argv) {
  serve::ServeOptions options;
  std::string graph_path;
  std::string scenario;
  std::string bootstrap_dir;  // TCP follower: local checkpoint to restore.
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.port = std::atoi(v);
    } else if (arg == "--host") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.host = v;
    } else if (arg == "--graph") {
      if (!(v = next())) return ServeUsage(argv[0]);
      graph_path = v;
    } else if (arg == "--scenario") {
      if (!(v = next())) return ServeUsage(argv[0]);
      scenario = v;
    } else if (arg == "--restore") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.restore_path = v;
    } else if (arg == "--algo") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.algo.algorithm = v;
    } else if (arg == "--backend") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.backend = v;
    } else if (arg == "--shards") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.shards = std::atoi(v);
      options.backend = "sharded";
    } else if (arg == "--batch-ops") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.batch_max_ops = std::atoi(v);
    } else if (arg == "--flush-us") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.flush_deadline_us = std::atof(v);
    } else if (arg == "--max-conns") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.max_connections = std::atoi(v);
    } else if (arg == "--window-ttl") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.window_ttl_ms = std::atoll(v);
    } else if (arg == "--record-trace") {
      options.record_trace = true;
    } else if (arg == "--allow-file-commands") {
      options.allow_file_commands = true;
    } else if (arg == "--change-log") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.change_log_dir = v;
    } else if (arg == "--log-segment-bytes") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.log_segment_bytes = std::atoll(v);
    } else if (arg == "--snapshot-every") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.snapshot_every_batches = std::atoll(v);
    } else if (arg == "--snapshot-interval-ms") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.snapshot_interval_ms = std::atoll(v);
    } else if (arg == "--io-threads") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.io_threads = std::atoi(v);
    } else if (arg == "--follow") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.follow_addr = v;
    } else if (arg == "--follow-dir") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.follow_dir = v;
    } else if (arg == "--bootstrap") {
      if (!(v = next())) return ServeUsage(argv[0]);
      bootstrap_dir = v;
    } else if (arg == "--reconnect-max-ms") {
      if (!(v = next())) return ServeUsage(argv[0]);
      options.reconnect_max_ms = std::atoll(v);
    } else if (arg == "--fault-plan") {
      if (!(v = next())) return ServeUsage(argv[0]);
      std::string fault_error;
      if (!faultfs::ArmPlan(v, &fault_error)) {
        std::fprintf(stderr, "serve: --fault-plan: %s\n",
                     fault_error.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return ServeUsage(argv[0]);
    }
  }
  if (options.batch_max_ops < 1 || options.shards < 1 ||
      options.max_connections < 1 || options.flush_deadline_us < 0 ||
      options.log_segment_bytes < 1 || options.snapshot_every_batches < 0 ||
      options.snapshot_interval_ms < 0 || options.io_threads < 1 ||
      options.reconnect_max_ms < 1 || options.window_ttl_ms < 0) {
    std::fprintf(stderr, "serve: non-positive sizing flag\n");
    return 2;
  }
  if ((!graph_path.empty()) + (!scenario.empty()) +
          (!options.restore_path.empty()) >
      1) {
    std::fprintf(stderr,
                 "serve: --graph, --scenario and --restore are exclusive\n");
    return 2;
  }
  const bool follower =
      !options.follow_addr.empty() || !options.follow_dir.empty();
  if (!options.follow_addr.empty() && !options.follow_dir.empty()) {
    std::fprintf(stderr, "serve: --follow and --follow-dir are exclusive\n");
    return 2;
  }
  if (!bootstrap_dir.empty() && options.follow_addr.empty()) {
    std::fprintf(stderr, "serve: --bootstrap only applies with --follow\n");
    return 2;
  }
  if (!options.follow_dir.empty() &&
      options.follow_dir == options.change_log_dir) {
    std::fprintf(stderr,
                 "serve: --follow-dir must differ from --change-log (a "
                 "follower appending to the log it tails is a feedback "
                 "loop)\n");
    return 2;
  }
  if (follower && !options.restore_path.empty()) {
    std::fprintf(stderr,
                 "serve: --restore conflicts with following (followers "
                 "bootstrap from a checkpoint directory)\n");
    return 2;
  }
  if ((options.snapshot_every_batches > 0 ||
       options.snapshot_interval_ms > 0) &&
      options.change_log_dir.empty()) {
    std::fprintf(stderr,
                 "serve: --snapshot-every / --snapshot-interval-ms require "
                 "--change-log\n");
    return 2;
  }

  EdgeListGraph base;  // Default: serve an empty graph.
  if (!graph_path.empty()) {
    const auto loaded = LoadEdgeList(graph_path);
    if (!loaded) {
      std::fprintf(stderr, "cannot load graph: %s\n", graph_path.c_str());
      return 1;
    }
    base = *loaded;
  } else if (!scenario.empty()) {
    serve::ServeWorkload workload;
    if (!serve::BuildServeWorkload(scenario, &workload)) {
      std::fprintf(stderr, "unknown scenario: %s\n", scenario.c_str());
      return 2;
    }
    base = std::move(workload.base);
  }

  std::string error;
  std::unique_ptr<serve::ServingBackend> backend;
  // Checkpoint bootstrap: a follower restores from its local checkpoint
  // directory; a primary restarted on a non-empty --change-log directory
  // recovers from its own log instead of truncating it.
  std::string checkpoint_dir =
      !options.follow_dir.empty() ? options.follow_dir : bootstrap_dir;
  if (checkpoint_dir.empty() && !options.change_log_dir.empty()) {
    repl::ChangeLogDirState state;
    std::string scan_error;
    if (repl::ScanChangeLogDir(options.change_log_dir, &state, &scan_error) &&
        (!state.segments.empty() || state.latest_base_seq >= 0)) {
      checkpoint_dir = options.change_log_dir;
    }
  }
  ingest::KeyMap boot_keymap;
  bool have_boot_keymap = false;
  if (!checkpoint_dir.empty()) {
    repl::BootstrapResult boot;
    if (!repl::BootstrapFromChangeLog(checkpoint_dir, base, options, &boot,
                                      &error)) {
      std::fprintf(stderr, "serve: bootstrap: %s\n", error.c_str());
      return 1;
    }
    backend = std::move(boot.backend);
    boot_keymap = std::move(boot.keymap);
    have_boot_keymap = true;
    options.repl_start_seq = boot.next_seq;
    options.bootstrap_base_seq = boot.base_seq;
    options.start_epoch = boot.epoch;
    std::fprintf(stderr,
                 "bootstrap: base seq %lld + %lld batches (%lld ops) from %s "
                 "-> seq %lld (%zu keys)\n",
                 static_cast<long long>(boot.base_seq),
                 static_cast<long long>(boot.tail_batches),
                 static_cast<long long>(boot.tail_ops),
                 checkpoint_dir.c_str(),
                 static_cast<long long>(boot.next_seq), boot_keymap.Size());
  } else {
    backend = serve::MakeServingBackend(base, options, &error);
  }
  if (backend == nullptr) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  const EngineStats stats = backend->Stats();
  serve::Server server(std::move(backend), options);
  // The bootstrap's key bindings (base snapshot "keymap" section + keyed
  // tail ops) make the follower resolve KQUERY exactly as the primary.
  if (have_boot_keymap) server.AdoptKeyMap(std::move(boot_keymap));
  if (!server.Start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  serve::Server::InstallSignalHandlers(&server);
  std::fprintf(stderr,
               "serving %s backend (%s) on %s:%d as %s  "
               "n=%lld m=%lld |I|=%lld\n",
               server.backend().Kind().c_str(), stats.algorithm.c_str(),
               options.host.c_str(), server.port(),
               follower ? "follower" : "primary",
               static_cast<long long>(stats.num_vertices),
               static_cast<long long>(stats.num_edges),
               static_cast<long long>(stats.solution_size));
  const int rc = server.Run();
  const serve::ServingMetricsSnapshot summary = server.MetricsSnapshot();
  std::fprintf(stderr,
               "drained: %lld ops applied (%lld rejected) over %lld batches, "
               "mean occupancy %.2f, %lld connections served\n",
               static_cast<long long>(summary.ops_applied),
               static_cast<long long>(summary.ops_rejected),
               static_cast<long long>(summary.batches_flushed),
               summary.mean_batch_occupancy,
               static_cast<long long>(summary.connections_accepted));
  if (summary.repl_ops_logged > 0 || summary.repl_next_seq > 0) {
    std::fprintf(stderr,
                 "replication: %s at seq %lld, %lld ops logged over %lld "
                 "segments, %lld base snapshots (last seq %lld), "
                 "%lld promotions, %lld reshards\n",
                 summary.repl_role.c_str(),
                 static_cast<long long>(summary.repl_next_seq),
                 static_cast<long long>(summary.repl_ops_logged),
                 static_cast<long long>(summary.repl_segments),
                 static_cast<long long>(summary.repl_snapshots_written),
                 static_cast<long long>(summary.repl_last_base_seq),
                 static_cast<long long>(summary.repl_promotions),
                 static_cast<long long>(summary.repl_resharded));
  }
  return rc;
}

}  // namespace
}  // namespace dynmis

int main(int argc, char** argv) {
  // Scripted fault injection (DYNMIS_FAULT_PLAN): armed before any file or
  // socket syscall so torture harnesses can target startup paths too.
  std::string fault_error;
  if (!dynmis::faultfs::ArmFromEnvironment(&fault_error)) {
    std::fprintf(stderr, "DYNMIS_FAULT_PLAN: %s\n", fault_error.c_str());
    return 2;
  }
  if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0) {
    return dynmis::RunSnapshotCommand(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return dynmis::RunServeCommand(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "genedges") == 0) {
    return dynmis::RunGenEdgesCommand(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "ingest") == 0) {
    return dynmis::RunIngestCommand(argc, argv);
  }
  dynmis::CliOptions options;
  bool list_algos = false;
  if (!dynmis::ParseArgs(argc, argv, /*first=*/1, &options, &list_algos)) {
    return dynmis::Usage(argv[0]);
  }
  if (list_algos) return dynmis::PrintAlgorithms();
  if (!options.snapshot_in.empty()) {
    std::fprintf(stderr,
                 "--in restores a snapshot; use `%s snapshot load --in ...`\n",
                 argv[0]);
    return 2;
  }
  if (!options.snapshot_out.empty()) {
    std::fprintf(stderr,
                 "--out writes a snapshot; use `%s snapshot save ... --out`\n",
                 argv[0]);
    return 2;
  }
  if (options.graph_path.empty()) return dynmis::Usage(argv[0]);
  return dynmis::Run(options);
}
