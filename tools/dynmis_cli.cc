// dynmis_cli: run any registered dynamic MIS maintainer over a graph file
// and an update stream, reporting solution size, response time and memory.
// The workhorse for ad-hoc experiments on real SNAP files.
//
//   dynmis_cli --graph FILE [--algo NAME] [--initial MODE]
//              [--k K] [--lazy] [--perturb] [--recompute-every N]
//              [--updates FILE | --random N] [--seed S]
//              [--edge-fraction F] [--insert-fraction F] [--degree-bias]
//              [--report-every K] [--save-trace FILE] [--csv]
//
//   --graph FILE       SNAP-format edge list (required).
//   --algo NAME        a MaintainerRegistry name (default DyTwoSwap);
//                      `--algo help` lists everything the registry accepts.
//   --k K              swap order for the generic KSwap maintainer.
//   --lazy             lazy collection (paper optimization 1).
//   --perturb          perturbation (paper optimization 2).
//   --recompute-every N  amortization interval for Recompute.
//   --initial MODE     greedy | arw | exact (default greedy).
//   --updates FILE     replay an update trace (see update_trace_io.h).
//   --random N         generate N random updates instead (default 10000).
//   --seed S           RNG seed for --random (default 1).
//   --edge-fraction F  fraction of edge ops in the random stream (0.9).
//   --insert-fraction F  fraction of insertions (0.5).
//   --degree-bias      degree-proportional endpoints (default uniform).
//   --report-every K   print a progress row every K updates.
//   --save-trace FILE  write the applied update sequence to FILE.
//   --csv              machine-readable progress rows.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dynmis/dynmis.h"
#include "src/harness/experiment.h"

namespace dynmis {
namespace {

struct CliOptions {
  std::string graph_path;
  MaintainerConfig algo;  // algorithm defaults to DyTwoSwap.
  std::string initial = "greedy";
  std::string updates_path;
  std::string save_trace_path;
  int random_updates = 10000;
  uint64_t seed = 1;
  double edge_fraction = 0.9;
  double insert_fraction = 0.5;
  bool degree_bias = false;
  int report_every = 0;
  bool csv = false;
};

// Lists every name the registry accepts, straight from the registry — there
// is no hand-maintained algorithm table in this binary.
int PrintAlgorithms() {
  const MaintainerRegistry& registry = MaintainerRegistry::Global();
  const std::vector<std::string> algorithms = registry.ListAlgorithms();
  std::printf("algorithms:\n");
  for (const std::string& name : algorithms) {
    std::printf("  %-16s %s\n", name.c_str(), registry.Describe(name).c_str());
  }
  std::printf("aliases:\n");
  for (const std::string& name : registry.ListNames()) {
    if (std::find(algorithms.begin(), algorithms.end(), name) ==
        algorithms.end()) {
      std::printf("  %-16s %s\n", name.c_str(),
                  registry.Describe(name).c_str());
    }
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --graph FILE [--algo NAME] [--initial MODE]\n"
               "          [--k K] [--lazy] [--perturb] [--recompute-every N]\n"
               "          [--updates FILE | --random N] [--seed S]\n"
               "          [--edge-fraction F] [--insert-fraction F]\n"
               "          [--degree-bias] [--report-every K]\n"
               "          [--save-trace FILE] [--csv]\n"
               "       %s --algo help   (list registered algorithms)\n",
               argv0, argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* options, bool* list_algos) {
  *list_algos = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (!v) return false;
      options->graph_path = v;
    } else if (arg == "--algo") {
      const char* v = next();
      if (!v) return false;
      options->algo.algorithm = v;
      if (options->algo.algorithm == "help" ||
          options->algo.algorithm == "list") {
        *list_algos = true;
        return true;
      }
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return false;
      options->algo.k = std::atoi(v);
    } else if (arg == "--lazy") {
      options->algo.lazy = true;
    } else if (arg == "--perturb") {
      options->algo.perturb = true;
    } else if (arg == "--recompute-every") {
      const char* v = next();
      if (!v) return false;
      options->algo.recompute_every = std::atoi(v);
    } else if (arg == "--initial") {
      const char* v = next();
      if (!v) return false;
      options->initial = v;
    } else if (arg == "--updates") {
      const char* v = next();
      if (!v) return false;
      options->updates_path = v;
    } else if (arg == "--save-trace") {
      const char* v = next();
      if (!v) return false;
      options->save_trace_path = v;
    } else if (arg == "--random") {
      const char* v = next();
      if (!v) return false;
      options->random_updates = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--edge-fraction") {
      const char* v = next();
      if (!v) return false;
      options->edge_fraction = std::atof(v);
    } else if (arg == "--insert-fraction") {
      const char* v = next();
      if (!v) return false;
      options->insert_fraction = std::atof(v);
    } else if (arg == "--report-every") {
      const char* v = next();
      if (!v) return false;
      options->report_every = std::atoi(v);
    } else if (arg == "--degree-bias") {
      options->degree_bias = true;
    } else if (arg == "--csv") {
      options->csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->graph_path.empty();
}

int Run(const CliOptions& options) {
  if (!MaintainerRegistry::Global().Has(options.algo.algorithm)) {
    std::fprintf(stderr,
                 "unknown algorithm: %s (try --algo help)\n",
                 options.algo.algorithm.c_str());
    return 2;
  }
  if (options.algo.k < 1 || options.algo.k > kMaxKSwapOrder) {
    std::fprintf(stderr, "--k must be in [1, %d]\n", kMaxKSwapOrder);
    return 2;
  }
  if (options.algo.recompute_every < 1) {
    std::fprintf(stderr, "--recompute-every must be a positive integer\n");
    return 2;
  }
  InitialSolution initial;
  if (options.initial == "greedy") {
    initial = InitialSolution::kGreedy;
  } else if (options.initial == "arw") {
    initial = InitialSolution::kArw;
  } else if (options.initial == "exact") {
    initial = InitialSolution::kExact;
  } else {
    std::fprintf(stderr, "unknown initial mode: %s\n",
                 options.initial.c_str());
    return 2;
  }

  const auto graph = LoadEdgeList(options.graph_path);
  if (!graph) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 options.graph_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "graph: n=%d m=%lld avg-deg=%.2f\n", graph->n,
               static_cast<long long>(graph->NumEdges()),
               graph->AverageDegree());

  std::vector<GraphUpdate> updates;
  if (!options.updates_path.empty()) {
    const auto loaded = LoadUpdateTrace(options.updates_path);
    if (!loaded) {
      std::fprintf(stderr, "cannot load updates: %s\n",
                   options.updates_path.c_str());
      return 1;
    }
    updates = *loaded;
  } else {
    UpdateStreamOptions stream;
    stream.seed = options.seed;
    stream.edge_op_fraction = options.edge_fraction;
    stream.insert_fraction = options.insert_fraction;
    stream.bias = options.degree_bias ? EndpointBias::kDegreeProportional
                                      : EndpointBias::kUniform;
    updates =
        MakeUpdateSequence(graph->ToDynamic(), options.random_updates, stream);
  }
  if (!options.save_trace_path.empty() &&
      !SaveUpdateTrace(updates, options.save_trace_path)) {
    std::fprintf(stderr, "cannot write trace: %s\n",
                 options.save_trace_path.c_str());
    return 1;
  }

  std::unique_ptr<MisEngine> engine = MisEngine::Create(*graph, options.algo);
  // Has() passed above, so construction cannot miss the registry.
  Timer init_timer;
  engine->Initialize(
      ComputeInitialSolution(*graph, initial, /*arw_iterations=*/500,
                             /*exact_node_budget=*/2'000'000,
                             /*exact_seconds_budget=*/30.0));
  std::fprintf(stderr, "initial |I|=%lld (%.3fs, %s start)\n",
               static_cast<long long>(engine->SolutionSize()),
               init_timer.ElapsedSeconds(), options.initial.c_str());

  if (options.report_every > 0) {
    std::printf(options.csv ? "updates,size,n,m,seconds\n"
                            : "%10s %10s %10s %12s %10s\n",
                "updates", "|I|", "n", "m", "seconds");
  }
  Timer timer;
  int64_t applied = 0;
  for (const GraphUpdate& update : updates) {
    engine->Apply(update);
    ++applied;
    if (options.report_every > 0 && applied % options.report_every == 0) {
      const DynamicGraph& g = engine->graph();
      if (options.csv) {
        std::printf("%lld,%lld,%d,%lld,%.6f\n",
                    static_cast<long long>(applied),
                    static_cast<long long>(engine->SolutionSize()),
                    g.NumVertices(), static_cast<long long>(g.NumEdges()),
                    timer.ElapsedSeconds());
      } else {
        std::printf("%10lld %10lld %10d %12lld %9.3fs\n",
                    static_cast<long long>(applied),
                    static_cast<long long>(engine->SolutionSize()),
                    g.NumVertices(), static_cast<long long>(g.NumEdges()),
                    timer.ElapsedSeconds());
      }
    }
  }
  const double seconds = timer.ElapsedSeconds();
  const EngineStats stats = engine->Stats();
  std::fprintf(stderr,
               "%s: %lld updates in %.3fs (%.2f us/update), final |I|=%lld, "
               "memory=%s\n",
               stats.algorithm.c_str(), static_cast<long long>(applied),
               seconds, applied > 0 ? seconds / applied * 1e6 : 0.0,
               static_cast<long long>(stats.solution_size),
               FormatBytes(stats.structure_memory_bytes).c_str());
  return 0;
}

}  // namespace
}  // namespace dynmis

int main(int argc, char** argv) {
  dynmis::CliOptions options;
  bool list_algos = false;
  if (!dynmis::ParseArgs(argc, argv, &options, &list_algos)) {
    return dynmis::Usage(argv[0]);
  }
  if (list_algos) return dynmis::PrintAlgorithms();
  return dynmis::Run(options);
}
