// dynmis_torture: crash-recovery torture harness for the serving layer.
//
// Each cycle forks a real server process over a shared --change-log
// directory, drives seeded single-client churn through the text protocol,
// then crashes the server — SIGKILL at a random point, or a scripted
// mid-syscall death when a --fault-plan is armed in the child — and checks
// the recovery invariants the replication design promises:
//
//   1. Clean-replay equivalence: bootstrapping from the newest base
//      snapshot + record tail yields exactly the state of replaying every
//      record from seq 0 (same solution, same id space).
//   2. Log integrity: the full replay hits no corruption — a torn record is
//      legal only as the live tail.
//   3. Acked-op survival: the log's flattened op sequence is a subsequence
//      of the ops this client sent, rejected ops never appear, and — when
//      no fault plan deliberately breaks durability — every acked op is
//      present.
//
// After the cycles, an optional split-brain leg (--split-brain, default on)
// promotes a follower over the shared directory and asserts the old
// primary fences itself: every subsequent write is answered `ERR fenced`,
// no diverging record is ever acked.
//
// Exit status 0 = all invariants held; 1 = a violation (diagnosed on
// stderr); 2 = usage error.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dynmis/serve.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/repl/bootstrap.h"
#include "src/repl/change_log.h"
#include "src/serve/line_client.h"
#include "src/serve/protocol.h"
#include "src/util/faultfs.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

struct TortureOptions {
  int cycles = 15;
  int ops_per_cycle = 120;
  std::string backend = "sharded";
  int shards = 4;
  uint64_t seed = 1;
  std::string dir;          // Required: the shared change-log directory.
  std::string fault_plan;   // Armed in every child server.
  bool split_brain = true;  // Run the fencing leg after the crash cycles.
};

// The base graph every incarnation serves (must be identical across the
// harness and all children — replay correctness depends on it).
EdgeListGraph BaseGraph() {
  Rng rng(7);
  return ErdosRenyiGnm(150, 400, &rng);
}

serve::ServeOptions ServerOptions(const TortureOptions& opts) {
  serve::ServeOptions options;
  options.backend = opts.backend;
  options.shards = opts.shards;
  options.change_log_dir = opts.dir;
  options.log_segment_bytes = 1 << 14;  // Small segments: exercise rotation.
  options.snapshot_every_batches = 16;
  return options;
}

bool Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "torture: FAIL: %s: %s\n", what, detail.c_str());
  return false;
}

// One sent update and how the server answered it.
struct SentOp {
  GraphUpdate update;
  bool acked = false;  // "OK..." (applied); false = rejected/refused.
};

bool SameUpdate(const GraphUpdate& a, const GraphUpdate& b) {
  return a.kind == b.kind && a.u == b.u && a.v == b.v &&
         a.neighbors == b.neighbors;
}

// Forks a server process on the torture directory; the child bootstraps
// from the existing log (or starts fresh), arms the fault plan, reports its
// ephemeral port over a pipe, then serves until it dies. Returns the child
// pid with *port set, or -1 (child failed before binding; *status holds its
// wait status).
pid_t SpawnServer(const TortureOptions& opts, serve::ServeOptions options,
                  bool follower_of_dir, int* port, int* status) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    return -1;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    close(fds[0]);
    close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    close(fds[0]);
    std::string error;
    if (!opts.fault_plan.empty() &&
        !faultfs::ArmPlan(opts.fault_plan, &error)) {
      std::fprintf(stderr, "torture child: bad fault plan: %s\n",
                   error.c_str());
      _exit(1);
    }
    const std::string checkpoint_dir =
        follower_of_dir ? options.follow_dir : options.change_log_dir;
    std::unique_ptr<serve::ServingBackend> backend;
    repl::ChangeLogDirState state;
    if (repl::ScanChangeLogDir(checkpoint_dir, &state, &error) &&
        (!state.segments.empty() || state.latest_base_seq >= 0)) {
      repl::BootstrapResult boot;
      if (!repl::BootstrapFromChangeLog(checkpoint_dir, BaseGraph(), options,
                                        &boot, &error)) {
        std::fprintf(stderr, "torture child: bootstrap: %s\n", error.c_str());
        _exit(1);
      }
      backend = std::move(boot.backend);
      options.repl_start_seq = boot.next_seq;
      options.bootstrap_base_seq = boot.base_seq;
      options.start_epoch = boot.epoch;
    } else {
      backend = serve::MakeServingBackend(BaseGraph(), options, &error);
    }
    if (backend == nullptr) {
      std::fprintf(stderr, "torture child: backend: %s\n", error.c_str());
      _exit(1);
    }
    serve::Server server(std::move(backend), std::move(options));
    if (!server.Start(&error)) {
      std::fprintf(stderr, "torture child: start: %s\n", error.c_str());
      _exit(1);
    }
    serve::Server::InstallSignalHandlers(&server);
    char line[32];
    std::snprintf(line, sizeof(line), "%d\n", server.port());
    const size_t len = std::strlen(line);
    if (write(fds[1], line, len) != static_cast<ssize_t>(len)) _exit(1);
    close(fds[1]);
    _exit(server.Run());
  }
  close(fds[1]);
  // Read the child's port line (blocks until the child binds or dies).
  std::string line;
  char c;
  ssize_t n;
  while ((n = read(fds[0], &c, 1)) == 1 && c != '\n') line.push_back(c);
  close(fds[0]);
  if (line.empty()) {
    waitpid(pid, status, 0);
    return -1;
  }
  *port = std::atoi(line.c_str());
  *status = 0;
  return pid;
}

// Blocking text-protocol session with the usual HELLO 1 handshake.
bool Connect(int port, serve::LineClient* client, std::string* error) {
  if (!client->Connect("127.0.0.1", port, error)) return false;
  std::string greeting;
  if (!client->Ask("HELLO 1", &greeting) ||
      greeting.rfind("OK DYNMIS 1 ", 0) != 0) {
    *error = "handshake: " + greeting;
    return false;
  }
  return true;
}

// Replays the whole log from seq 0 onto a fresh backend. Appends every
// replayed op to *log_ops. Stops cleanly at the live tail (a torn last
// record is legal); any corruption is a failure.
std::unique_ptr<serve::ServingBackend> ReplayFull(
    const TortureOptions& opts, std::vector<GraphUpdate>* log_ops,
    std::string* error) {
  serve::ServeOptions clean;
  clean.backend = opts.backend;
  clean.shards = opts.shards;
  auto backend = serve::MakeServingBackend(BaseGraph(), clean, error);
  if (backend == nullptr) return nullptr;
  repl::ChangeLogCursor cursor;
  if (!cursor.Open(opts.dir, 0, error)) return nullptr;
  for (;;) {
    repl::LogBatch batch;
    bool available = false;
    if (!cursor.Next(&batch, &available, error)) return nullptr;
    if (!available) return backend;  // Live tail: replay complete.
    backend->ApplyBatch(batch.updates);
    log_ops->insert(log_ops->end(), batch.updates.begin(),
                    batch.updates.end());
  }
}

// The per-cycle recovery gate (invariants 1-3 above). `sent` covers every
// op this harness has sent since the directory was fresh.
bool CheckRecovery(const TortureOptions& opts,
                   const std::vector<SentOp>& sent) {
  std::string error;
  std::vector<GraphUpdate> log_ops;
  auto replayed = ReplayFull(opts, &log_ops, &error);
  if (replayed == nullptr) return Fail("full replay", error);

  serve::ServeOptions options = ServerOptions(opts);
  repl::BootstrapResult boot;
  if (!repl::BootstrapFromChangeLog(opts.dir, BaseGraph(), options, &boot,
                                    &error)) {
    return Fail("checkpoint bootstrap", error);
  }
  std::vector<VertexId> replay_solution;
  replayed->CollectSolution(&replay_solution);
  std::vector<VertexId> boot_solution;
  boot.backend->CollectSolution(&boot_solution);
  if (replay_solution != boot_solution) {
    return Fail("clean-replay equivalence",
                "bootstrap solution (" +
                    std::to_string(boot_solution.size()) +
                    " vertices) differs from full replay (" +
                    std::to_string(replay_solution.size()) + ")");
  }

  // The logged ops must be, in order, a subset of the sent ops: walk the
  // log against the send history. A log op with no matching sent op is a
  // phantom (corruption); a rejected op in the log is an admission bug.
  size_t cursor = 0;
  int64_t lost_acked = 0;
  for (size_t i = 0; i < log_ops.size(); ++i) {
    size_t j = cursor;
    while (j < sent.size() && !SameUpdate(sent[j].update, log_ops[i])) ++j;
    if (j == sent.size()) {
      return Fail("acked-op survival",
                  "log op " + std::to_string(i) +
                      " does not match any remaining sent op");
    }
    for (size_t k = cursor; k < j; ++k) {
      if (sent[k].acked) ++lost_acked;
    }
    if (!sent[j].acked) {
      return Fail("acked-op survival",
                  "op at send index " + std::to_string(j) +
                      " was not acked OK but is in the log");
    }
    cursor = j + 1;
  }
  for (size_t k = cursor; k < sent.size(); ++k) {
    if (sent[k].acked) ++lost_acked;
  }
  // A scripted append/fsync fault may legally drop acked batches that were
  // buffered in degraded mode when the crash hit; without one, acked means
  // durable against process death.
  if (lost_acked > 0 && opts.fault_plan.empty()) {
    return Fail("acked-op survival",
                std::to_string(lost_acked) + " acked ops missing from log");
  }
  if (lost_acked > 0) {
    std::fprintf(stderr,
                 "torture: note: %lld acked ops lost to scripted faults\n",
                 static_cast<long long>(lost_acked));
  }
  return true;
}

// Drives `count` seeded ops through `client`, recording every sent op and
// its ack into *sent and mirroring into *mirror (the generator's context).
// Returns the number of ops actually answered before the connection died
// (an armed fault plan can kill the child mid-churn).
int Churn(serve::LineClient* client, UpdateStreamGenerator* generator,
          DynamicGraph* mirror, int count, std::vector<SentOp>* sent) {
  for (int i = 0; i < count; ++i) {
    const GraphUpdate update = generator->Next(*mirror);
    ApplyUpdate(mirror, update);
    std::string response;
    if (!client->Ask(serve::FormatCommandLine(update), &response)) {
      return i;  // Peer died: the op's fate is unknown; do not record it.
    }
    SentOp op;
    op.update = update;
    op.acked = response.rfind("OK", 0) == 0;
    sent->push_back(op);
  }
  return count;
}

// True when `status` is one of the two deaths the harness inflicts (or
// scripts): SIGKILL, or the fault plan's crash-before-syscall exit.
bool ExpectedCrash(int status) {
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) return true;
  return WIFEXITED(status) && WEXITSTATUS(status) == faultfs::kCrashExitCode;
}

bool RunCycles(const TortureOptions& opts) {
  Rng rng(opts.seed);
  DynamicGraph mirror = BaseGraph().ToDynamic();
  UpdateStreamOptions stream;
  stream.seed = opts.seed ^ 0x5bd1e995;
  UpdateStreamGenerator generator(stream);
  std::vector<SentOp> sent;

  for (int cycle = 0; cycle < opts.cycles; ++cycle) {
    int port = 0;
    int status = 0;
    const pid_t pid =
        SpawnServer(opts, ServerOptions(opts), false, &port, &status);
    if (pid < 0) {
      if (ExpectedCrash(status)) {
        // The fault plan killed the child during startup/recovery; that is
        // itself a crash point. Check the directory and try again.
        std::fprintf(stderr, "torture: cycle %d: scripted crash at startup\n",
                     cycle);
        if (!CheckRecovery(opts, sent)) return false;
        continue;
      }
      return Fail("spawn", "server child failed to start (status " +
                               std::to_string(status) + ")");
    }

    serve::LineClient client;
    std::string error;
    if (!Connect(port, &client, &error)) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return Fail("connect", error);
    }
    const int target =
        1 + static_cast<int>(rng.NextBounded(
                static_cast<uint64_t>(opts.ops_per_cycle)));
    const int answered = Churn(&client, &generator, &mirror, target, &sent);
    if (answered == target) {
      kill(pid, SIGKILL);  // Crash mid-flight, between acked round trips.
    }
    waitpid(pid, &status, 0);
    if (!ExpectedCrash(status)) {
      return Fail("crash", "child died unexpectedly (status " +
                               std::to_string(status) + ")");
    }
    if (!CheckRecovery(opts, sent)) {
      std::fprintf(stderr, "torture: cycle %d failed after %d ops\n", cycle,
                   answered);
      return false;
    }
    std::fprintf(stderr, "torture: cycle %d ok (%d ops, %zu sent total)\n",
                 cycle, answered, sent.size());
  }

  // Final incarnation: recover once more and let the server prove the
  // maintained solution is a valid MIS over its own replica graph.
  int port = 0;
  int status = 0;
  TortureOptions clean = opts;
  clean.fault_plan.clear();  // The verification server must stay healthy.
  const pid_t pid =
      SpawnServer(clean, ServerOptions(clean), false, &port, &status);
  if (pid < 0) return Fail("final spawn", "server child failed to start");
  serve::LineClient client;
  std::string error;
  if (!Connect(port, &client, &error)) {
    kill(pid, SIGKILL);
    waitpid(pid, &status, 0);
    return Fail("final connect", error);
  }
  std::string verdict;
  if (!client.Ask("VERIFY", &verdict) ||
      verdict.find("independent=1") == std::string::npos ||
      verdict.find("maximal=1") == std::string::npos) {
    kill(pid, SIGKILL);
    waitpid(pid, &status, 0);
    return Fail("VERIFY", verdict);
  }
  kill(pid, SIGTERM);
  waitpid(pid, &status, 0);
  std::fprintf(stderr, "torture: %d crash cycles ok, VERIFY green\n",
               opts.cycles);
  return true;
}

// Split-brain: promote a follower over the shared directory and assert the
// old primary fences itself instead of acking a diverging record.
bool RunSplitBrain(const TortureOptions& opts) {
  TortureOptions clean = opts;
  clean.fault_plan.clear();  // This leg tests fencing, not fault injection.

  int a_port = 0;
  int status = 0;
  const pid_t a_pid =
      SpawnServer(clean, ServerOptions(clean), false, &a_port, &status);
  if (a_pid < 0) return Fail("split-brain", "primary failed to start");
  serve::LineClient ac;
  std::string error;
  if (!Connect(a_port, &ac, &error)) {
    kill(a_pid, SIGKILL);
    waitpid(a_pid, &status, 0);
    return Fail("split-brain connect", error);
  }

  // Fresh churn so the follower has history to catch up on.
  DynamicGraph mirror = BaseGraph().ToDynamic();
  UpdateStreamOptions stream;
  stream.seed = opts.seed ^ 0x9e3779b9;
  UpdateStreamGenerator generator(stream);
  std::vector<SentOp> sent;
  Churn(&ac, &generator, &mirror, 40, &sent);
  std::string head;
  if (!ac.Ask("REPL STATUS", &head) || head.rfind("OK REPL ", 0) != 0) {
    kill(a_pid, SIGKILL);
    waitpid(a_pid, &status, 0);
    return Fail("split-brain", "REPL STATUS: " + head);
  }
  const long long head_seq = std::atoll(head.c_str() + 8);

  serve::ServeOptions follower = ServerOptions(clean);
  follower.change_log_dir.clear();
  follower.snapshot_every_batches = 0;
  follower.follow_dir = clean.dir;
  int b_port = 0;
  const pid_t b_pid = SpawnServer(clean, follower, true, &b_port, &status);
  if (b_pid < 0) {
    kill(a_pid, SIGKILL);
    waitpid(a_pid, &status, 0);
    return Fail("split-brain", "follower failed to start");
  }
  serve::LineClient bc;
  if (!Connect(b_port, &bc, &error)) {
    kill(a_pid, SIGKILL);
    kill(b_pid, SIGKILL);
    waitpid(a_pid, &status, 0);
    waitpid(b_pid, &status, 0);
    return Fail("split-brain follower connect", error);
  }
  const auto cleanup = [&] {
    kill(a_pid, SIGTERM);
    kill(b_pid, SIGTERM);
    waitpid(a_pid, &status, 0);
    waitpid(b_pid, &status, 0);
  };

  // Wait for catch-up (directory tailing is asynchronous).
  for (int i = 0;; ++i) {
    std::string reply;
    if (!bc.Ask("REPL STATUS", &reply) || reply.rfind("OK REPL ", 0) != 0) {
      cleanup();
      return Fail("split-brain", "follower REPL STATUS: " + reply);
    }
    if (std::atoll(reply.c_str() + 8) >= head_seq) break;
    if (i > 5000) {
      cleanup();
      return Fail("split-brain", "follower never caught up to seq " +
                                     std::to_string(head_seq));
    }
    usleep(2000);
  }

  std::string promoted;
  if (!bc.Ask("PROMOTE", &promoted) ||
      promoted.rfind("OK PROMOTED ", 0) != 0) {
    cleanup();
    return Fail("split-brain PROMOTE", promoted);
  }

  // Every write the zombie primary accepts after the promotion would be a
  // diverging record; it must refuse them all with ERR fenced (the epoch
  // file it shares with the new primary is its tripwire).
  for (int i = 0; i < 10; ++i) {
    const GraphUpdate update = generator.Next(mirror);
    ApplyUpdate(&mirror, update);
    std::string response;
    if (!ac.Ask(serve::FormatCommandLine(update), &response)) {
      cleanup();
      return Fail("split-brain", "old primary died instead of fencing");
    }
    if (response.rfind("ERR fenced", 0) != 0) {
      cleanup();
      return Fail("split-brain",
                  "old primary answered '" + response +
                      "' after promotion (want ERR fenced)");
    }
  }
  std::string stats;
  if (!ac.Ask("STATS", &stats) ||
      stats.find("\"role\":\"fenced\"") == std::string::npos) {
    cleanup();
    return Fail("split-brain", "old primary STATS lacks fenced role");
  }

  // The new primary owns the log now: writes flow and VERIFY stays green.
  Churn(&bc, &generator, &mirror, 30, &sent);
  std::string verdict;
  if (!bc.Ask("VERIFY", &verdict) ||
      verdict.find("independent=1") == std::string::npos ||
      verdict.find("maximal=1") == std::string::npos) {
    cleanup();
    return Fail("split-brain VERIFY", verdict);
  }
  cleanup();
  std::fprintf(stderr, "torture: split-brain leg ok (old primary fenced)\n");
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dynmis_torture --dir DIR [--cycles N] [--ops N]\n"
      "                      [--backend engine|sharded] [--shards N]\n"
      "                      [--seed N] [--fault-plan PLAN]\n"
      "                      [--no-split-brain]\n");
  return 2;
}

int Main(int argc, char** argv) {
  TortureOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.dir = v;
    } else if (arg == "--cycles") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.cycles = std::atoi(v);
    } else if (arg == "--ops") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.ops_per_cycle = std::atoi(v);
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.backend = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.shards = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--fault-plan") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.fault_plan = v;
    } else if (arg == "--no-split-brain") {
      opts.split_brain = false;
    } else {
      return Usage();
    }
  }
  if (opts.dir.empty() || opts.cycles < 1 || opts.ops_per_cycle < 1) {
    return Usage();
  }
  // Validate the plan in the parent too (children arm it after fork).
  std::string error;
  if (!opts.fault_plan.empty() && !faultfs::ArmPlan(opts.fault_plan, &error)) {
    std::fprintf(stderr, "bad --fault-plan: %s\n", error.c_str());
    return 2;
  }
  faultfs::Disarm();  // The parent's own checks must run clean.
  signal(SIGPIPE, SIG_IGN);

  if (!RunCycles(opts)) return 1;
  if (opts.split_brain && !RunSplitBrain(opts)) return 1;
  std::fprintf(stderr, "torture: PASS\n");
  return 0;
}

}  // namespace
}  // namespace dynmis

int main(int argc, char** argv) { return dynmis::Main(argc, argv); }
