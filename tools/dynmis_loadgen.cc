// dynmis_loadgen: closed-loop load generator for the serving layer.
//
// Opens N connections to a dynmis_cli serve instance, replays a bench
// scenario's update distribution through them (windowed pipelining, so the
// server's admission layer sees genuine cross-connection concurrency), then
// runs a verification pass over a control connection:
//
//   * VERIFY        server-side independence + maximality of the solution,
//   * TRACE         exports the applied-op sequence *with the server's
//                   ApplyBatch boundaries*; the loadgen rebuilds a mirror
//                   graph from it, re-checks the solution client-side, and
//                   replays the trace through an in-process backend of the
//                   same shape — identical final solution required,
//   * SNAPSHOT      checkpoints the live server; the loadgen restores the
//                   file in-process, requires the identical solution, then
//                   drives both the server and the restored engine through
//                   the same resume stream and requires they still agree
//                   (the warm-failover contract, measured end to end).
//
// Emits the bench JSON schema with a top-level "serving" block
// (SERVE_<scenario>.json); tools/check_bench_regression.py ignores the
// block. Exit status is non-zero when any requested check fails, so CI can
// gate on it directly.
//
//   dynmis_loadgen --port P [--host H] [--scenario NAME] [--connections N]
//                  [--updates TOTAL] [--pipeline W] [--batch B] [--seed S]
//                  [--mode text|binary|keyed] [--sweep C1,C2,...] [--algo NAME]
//                  [--out PATH] [--snapshot PATH] [--resume-updates K]
//                  [--no-verify]
//
// --mode binary upgrades every worker connection with HELLO 2 BIN and
// drives the length-prefixed binary protocol instead of text lines (same
// ops, same acks, one frame per request). --mode keyed drives the
// external-key admission path instead of the scenario stream: KINS with
// fresh worker-unique keys and KDEL of live ones, each worker recording
// the server-assigned ids from the acks; verification then KQUERYs every
// live key and requires the server's id and in-solution flag to match the
// client-side replica (plus server keymap_entries == live keys). The JSON
// "serving" block gains a "keyed" object. --sweep runs the load phase once
// per listed connection count, prints a throughput/latency table, and
// records the rows in the JSON ("sweep" array); verification runs once,
// after the final stage.
//
// TRACE and SNAPSHOT name server-side paths: the tool assumes a loopback
// server sharing the filesystem (its purpose is acceptance and CI, not
// remote benchmarking). --no-verify drops that assumption along with the
// trace/snapshot checks.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "dynmis/dynmis.h"
#include "src/serve/binary.h"
#include "src/serve/line_client.h"
#include "src/serve/protocol.h"
#include "src/serve/trace.h"
#include "src/serve/verify.h"
#include "src/serve/workload.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace dynmis {
namespace {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string scenario = "smoke";
  int connections = 4;
  int total_updates = 0;  // 0 = scenario default * DYNMIS_BENCH_SCALE.
  int pipeline = 32;      // Max outstanding requests per connection.
  int client_batch = 1;   // >1 sends BATCH frames of this many ops.
  // Open-loop mode: pace sends to this aggregate rate instead of letting
  // the window gate close the loop. Each op is due at its schedule time
  // regardless of earlier acks (pipeline still caps outstanding requests,
  // so a server slower than the target degrades to closed-loop and the
  // achieved_qps/target_qps gap in the JSON shows it). 0 = closed loop.
  double target_qps = 0;
  uint64_t seed = 1;
  bool binary = false;  // --mode binary: HELLO 2 BIN + framed requests.
  // --mode keyed: drive the external-key admission path instead of the
  // scenario stream — KINS with fresh worker-unique keys (neighbors drawn
  // from the base graph) mixed with KDEL of live ones, each worker
  // recording the server-assigned ids from the acks. The verification
  // phase then KQUERYs every live key and requires the server to resolve
  // it to the recorded id, with the in-solution flag consistent with
  // SOLUTION.
  bool keyed = false;
  // --sweep: run the load phase once per connection count listed here
  // (overrides --connections for the load phase).
  std::vector<int> sweep;
  // Replay-backend algorithm. Defaults to whatever the server's handshake
  // advertises; --algo overrides (needed when the advertised display name
  // is not a registry key).
  MaintainerConfig algo;
  bool algo_given = false;
  std::string out_path;
  std::string snapshot_path;  // Empty = skip the snapshot/resume check.
  int resume_updates = 200;
  bool verify = true;
};

using serve::LineClient;

bool Handshake(LineClient* client, std::string* greeting,
               std::string* error) {
  if (!client->Ask("HELLO " + std::to_string(serve::kProtocolVersion),
                   greeting)) {
    *error = "connection lost during handshake";
    return false;
  }
  if (greeting->rfind("OK DYNMIS ", 0) != 0) {
    *error = "handshake rejected: " + *greeting;
    return false;
  }
  return true;
}

// "key=value" token extraction from the handshake greeting.
std::string GreetingField(const std::string& greeting,
                          const std::string& key) {
  const std::string needle = key + "=";
  const size_t at = greeting.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = greeting.find(' ', start);
  return greeting.substr(start,
                         end == std::string::npos ? end : end - start);
}

// Targeted numeric field extraction from the server's one-line STATS JSON
// (the tool reports known scalar fields; a full parser would be overkill).
double ExtractJsonNumber(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = doc.find(needle);
  if (at == std::string::npos) return 0;
  return std::atof(doc.c_str() + at + needle.size());
}

// The STATS JSON nests identical "p50"/"p99" keys under update_latency_us
// and query_latency_us; scope percentile extraction to the suffix starting
// at the update block so a change in the server's key order can never
// silently swap the two histograms.
std::string UpdateLatencyScope(const std::string& doc) {
  const size_t at = doc.find("\"update_latency_us\"");
  return at == std::string::npos ? std::string() : doc.substr(at);
}

// Scope for the server's "replication" STATS block (empty when absent).
std::string ReplicationScope(const std::string& doc) {
  const size_t at = doc.find("\"replication\"");
  return at == std::string::npos ? std::string() : doc.substr(at);
}

std::string ExtractJsonString(const std::string& doc,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = doc.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = doc.find('"', start);
  return end == std::string::npos ? "" : doc.substr(start, end - start);
}

// --- Worker connections ------------------------------------------------------

struct WorkerResult {
  int64_t sent = 0;
  int64_t acked = 0;
  int64_t rejected = 0;
  std::vector<double> rtts;  // Seconds per request (op or frame).
  std::string error;         // Non-empty on connection failure.
  // Keyed mode: the bindings this worker believes are live (key ->
  // server-assigned id, recorded from KINS acks, erased on KDEL acks),
  // plus op counters for the JSON block.
  std::vector<std::pair<std::string, VertexId>> live_keys;
  int64_t keys_inserted = 0;
  int64_t keys_deleted = 0;
};

// Keyed-mode worker: its own closed loop over KINS/KDEL lines. Acks settle
// FIFO, so a deque of (is_insert, key) pending entries pairs each response
// with its op; KINS acks carry the assigned id, which is the client-side
// replica the verification phase checks the server against.
void RunKeyedWorker(const LoadgenOptions& options,
                    const serve::ServeWorkload& workload, int index,
                    uint64_t seed_salt, int count, WorkerResult* result) {
  LineClient client;
  std::string greeting;
  if (!client.Connect(options.host, options.port, &result->error)) return;
  if (!Handshake(&client, &greeting, &result->error)) return;

  Rng rng(SplitMix64(options.seed * 131 + seed_salt +
                     static_cast<uint64_t>(index + 1) * 7919));
  const std::string prefix =
      "w" + std::to_string(index) + "s" + std::to_string(seed_salt) + "-";
  int64_t next_key = 0;
  std::vector<std::pair<std::string, VertexId>> live;
  // Keys sent but not yet acked cannot be KDELed (their binding is still
  // unknown client-side), so deletions draw from `live` only.
  std::deque<std::pair<bool, std::string>> pending;

  std::deque<double> in_flight;
  Timer clock;
  std::string line;
  result->rtts.reserve(static_cast<size_t>(count) + 1);
  auto read_one = [&]() -> bool {
    if (!client.ReadLine(&line)) {
      result->error = "connection lost mid-stream";
      return false;
    }
    result->rtts.push_back(clock.ElapsedSeconds() - in_flight.front());
    in_flight.pop_front();
    const auto [is_insert, key] = std::move(pending.front());
    pending.pop_front();
    if (line.rfind("OK", 0) != 0) {
      ++result->rejected;
      return true;
    }
    ++result->acked;
    if (is_insert) {
      ++result->keys_inserted;
      live.emplace_back(key,
                        static_cast<VertexId>(std::atoll(line.c_str() + 3)));
    } else {
      ++result->keys_deleted;
    }
    return true;
  };

  std::string wire;
  for (int i = 0; i < count; ++i) {
    wire.clear();
    // ~1 in 4 ops deletes a live key; the rest insert a fresh key attached
    // to up to three base-graph vertices (always alive: keyed runs never
    // delete base vertices, so the neighbors stay valid).
    const bool do_delete = !live.empty() && rng.NextBool(0.25);
    bool is_insert = true;
    std::string key;
    if (do_delete) {
      is_insert = false;
      // Erased from `live` at send time: a key is deleted at most once, and
      // only after its KINS was acked — per-connection FIFO then guarantees
      // the server still holds the binding, so no KDEL is ever rejected.
      const size_t at = rng.NextBounded(live.size());
      key = std::move(live[at].first);
      live[at] = std::move(live.back());
      live.pop_back();
      wire = "KDEL " + key;
    } else {
      key = prefix + std::to_string(next_key++);
      wire = "KINS " + key;
      const int degree = static_cast<int>(rng.NextBounded(4));
      for (int d = 0; d < degree; ++d) {
        wire += ' ';
        wire += std::to_string(rng.NextBounded(
            static_cast<uint64_t>(workload.base.n)));
      }
    }
    wire += '\n';
    in_flight.push_back(clock.ElapsedSeconds());
    pending.emplace_back(is_insert, std::move(key));
    if (!client.SendAll(wire)) {
      result->error = "send failed";
      return;
    }
    ++result->sent;
    if (static_cast<int>(in_flight.size()) >= options.pipeline &&
        !read_one()) {
      return;
    }
  }
  while (!in_flight.empty()) {
    if (!read_one()) return;
  }
  result->live_keys = std::move(live);
  std::string goodbye;
  client.Ask("QUIT", &goodbye);
}

void RunWorker(const LoadgenOptions& options,
               const serve::ServeWorkload& workload, int index,
               uint64_t seed_salt, int count, WorkerResult* result) {
  LineClient client;
  std::string greeting;
  if (!client.Connect(options.host, options.port, &result->error)) return;
  if (options.binary) {
    if (!client.SendLine("HELLO 2 BIN") || !client.ReadLine(&greeting)) {
      result->error = "connection lost during handshake";
      return;
    }
    if (greeting.rfind("OK DYNMIS 2 BIN ", 0) != 0) {
      result->error = "binary handshake rejected: " + greeting;
      return;
    }
  } else if (!Handshake(&client, &greeting, &result->error)) {
    return;
  }

  // Each connection draws from its own seeded generator against its own
  // mirror of the base graph. Mirrors diverge from the server as the other
  // connections land updates — that is the point: the server's admission
  // layer validates and rejects the stale ops, exactly as it would for any
  // set of concurrent writers.
  UpdateStreamOptions stream = workload.stream;
  stream.seed = stream.seed + options.seed * 131 + seed_salt +
                static_cast<uint64_t>(index + 1) * 7919;
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(workload.base.ToDynamic(), count, stream);

  std::deque<double> in_flight;
  Timer clock;
  std::string line;
  result->rtts.reserve(updates.size() / std::max(options.client_batch, 1) +
                       1);

  // Open-loop pacing: each worker owns an equal slice of the target rate
  // and sends op k at k/rate on its own clock.
  const double worker_qps =
      options.target_qps > 0 ? options.target_qps / options.connections : 0;
  auto pace = [&](int64_t sent_so_far) {
    if (worker_qps <= 0) return;
    const double due = static_cast<double>(sent_so_far) / worker_qps;
    const double wait = due - clock.ElapsedSeconds();
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
  };

  // Single-op mode: one OK/ERR (or binary response frame) per op. Batch
  // mode: one "OK <applied> <rejected> [ids...]" line or one batch-ack
  // frame per request frame.
  serve::BinaryResponse response;
  auto read_one = [&]() -> bool {
    if (options.binary) {
      if (!client.ReadFrame(&line)) {
        result->error = "connection lost mid-stream";
        return false;
      }
      std::string decode_error;
      if (!serve::DecodeResponseFrame(line, &response, &decode_error)) {
        result->error = "bad response frame: " + decode_error;
        return false;
      }
      result->rtts.push_back(clock.ElapsedSeconds() - in_flight.front());
      in_flight.pop_front();
      switch (response.code) {
        case serve::kBinRespOk:
        case serve::kBinRespOkId:
          ++result->acked;
          break;
        case serve::kBinRespReject:
          ++result->rejected;
          break;
        case serve::kBinRespBatch:
          result->acked += response.applied;
          result->rejected += response.rejected;
          break;
        default:
          result->error = "frame refused: " + response.message;
          return false;
      }
      return true;
    }
    if (!client.ReadLine(&line)) {
      result->error = "connection lost mid-stream";
      return false;
    }
    result->rtts.push_back(clock.ElapsedSeconds() - in_flight.front());
    in_flight.pop_front();
    if (options.client_batch <= 1) {
      if (line.rfind("OK", 0) == 0) {
        ++result->acked;
      } else {
        ++result->rejected;
      }
    } else if (line.rfind("OK ", 0) == 0) {
      long long applied = 0;
      long long rejected = 0;
      std::sscanf(line.c_str(), "OK %lld %lld", &applied, &rejected);
      result->acked += applied;
      result->rejected += rejected;
    } else {
      result->error = "frame refused: " + line;
      return false;
    }
    return true;
  };

  std::string wire;  // Reused request buffer (text line or binary frame).
  if (options.client_batch <= 1) {
    for (const GraphUpdate& update : updates) {
      pace(result->sent);
      in_flight.push_back(clock.ElapsedSeconds());
      wire.clear();
      if (options.binary) {
        serve::AppendUpdateFrame(&wire, update);
      } else {
        wire = serve::FormatCommandLine(update);
        wire += '\n';
      }
      if (!client.SendAll(wire)) {
        result->error = "send failed";
        return;
      }
      ++result->sent;
      if (static_cast<int>(in_flight.size()) >= options.pipeline &&
          !read_one()) {
        return;
      }
    }
  } else {
    for (size_t i = 0; i < updates.size();
         i += static_cast<size_t>(options.client_batch)) {
      const size_t end = std::min(
          updates.size(), i + static_cast<size_t>(options.client_batch));
      wire.clear();
      if (options.binary) {
        serve::AppendBatchFrame(&wire, updates, i, end - i);
      } else {
        wire = "BATCH " + std::to_string(end - i) + "\n";
        for (size_t j = i; j < end; ++j) {
          wire += serve::FormatCommandLine(updates[j]);
          wire += '\n';
        }
        wire += "END\n";
      }
      pace(result->sent);
      in_flight.push_back(clock.ElapsedSeconds());
      if (!client.SendAll(wire)) {
        result->error = "send failed";
        return;
      }
      result->sent += static_cast<int64_t>(end - i);
      if (static_cast<int>(in_flight.size()) >= options.pipeline &&
          !read_one()) {
        return;
      }
    }
  }
  while (!in_flight.empty()) {
    if (!read_one()) return;
  }
  if (options.binary) {
    client.Close();  // QUIT is text-only; EOF closes a binary connection.
  } else {
    std::string goodbye;
    client.Ask("QUIT", &goodbye);
  }
}

// One load phase: `connections` workers splitting `total` updates. The
// sweep runs this once per connection count; the plain path runs it once.
struct LoadPhaseResult {
  int connections = 0;
  WorkerResult totals;
  double elapsed = 0;
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
  bool failed = false;
  // Keyed mode: every binding the workers believe is live after the phase.
  std::vector<std::pair<std::string, VertexId>> live_keys;

  double ops_per_sec() const {
    return elapsed > 0 ? static_cast<double>(totals.acked) / elapsed : 0;
  }
};

LoadPhaseResult RunLoadPhase(const LoadgenOptions& options,
                             const serve::ServeWorkload& workload,
                             int connections, int total, uint64_t seed_salt) {
  LoadPhaseResult phase;
  phase.connections = connections;
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  Timer load_timer;
  for (int i = 0; i < connections; ++i) {
    const int count =
        total / connections + (i < total % connections ? 1 : 0);
    workers.emplace_back(options.keyed ? RunKeyedWorker : RunWorker,
                         std::cref(options), std::cref(workload), i,
                         seed_salt, count, &results[i]);
  }
  for (std::thread& worker : workers) worker.join();
  phase.elapsed = load_timer.ElapsedSeconds();

  std::vector<double> rtts;
  for (WorkerResult& r : results) {
    phase.totals.sent += r.sent;
    phase.totals.acked += r.acked;
    phase.totals.rejected += r.rejected;
    phase.totals.keys_inserted += r.keys_inserted;
    phase.totals.keys_deleted += r.keys_deleted;
    phase.live_keys.insert(phase.live_keys.end(),
                           std::make_move_iterator(r.live_keys.begin()),
                           std::make_move_iterator(r.live_keys.end()));
    rtts.insert(rtts.end(), r.rtts.begin(), r.rtts.end());
    if (!r.error.empty()) {
      std::fprintf(stderr, "loadgen: worker error: %s\n", r.error.c_str());
      phase.failed = true;
    }
  }
  std::sort(rtts.begin(), rtts.end());
  phase.rtt_p50_us = bench::Percentile(rtts, 0.50) * 1e6;
  phase.rtt_p99_us = bench::Percentile(rtts, 0.99) * 1e6;
  return phase;
}

// An in-process stand-in for the server's backend, for replay/resume checks.
struct ReplayBackend {
  std::unique_ptr<MisEngine> engine;
  std::unique_ptr<ShardedMisEngine> sharded;

  static ReplayBackend Fresh(const EdgeListGraph& base,
                             const MaintainerConfig& algo, bool is_sharded,
                             int shards) {
    ReplayBackend backend;
    if (is_sharded) {
      ShardedEngineOptions options;
      options.num_shards = shards;
      backend.sharded = ShardedMisEngine::Create(base, algo, options);
      if (backend.sharded != nullptr) backend.sharded->Initialize();
    } else {
      backend.engine = MisEngine::Create(base, algo);
      if (backend.engine != nullptr) backend.engine->Initialize();
    }
    return backend;
  }

  static ReplayBackend Restore(const std::string& path, bool is_sharded,
                               std::string* error) {
    ReplayBackend backend;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      *error = "cannot open snapshot: " + path;
      return backend;
    }
    SnapshotStatus status;
    if (is_sharded) {
      backend.sharded = ShardedMisEngine::LoadSnapshot(in, &status);
    } else {
      backend.engine = MisEngine::LoadSnapshot(in, &status);
    }
    if (!backend.ok()) *error = "restore failed: " + status.message;
    return backend;
  }

  bool ok() const { return engine != nullptr || sharded != nullptr; }

  void ApplyBatch(const std::vector<GraphUpdate>& updates) {
    if (engine != nullptr) {
      engine->ApplyBatch(updates);
    } else {
      sharded->ApplyBatch(updates);
      sharded->Flush();
    }
  }

  void Apply(const GraphUpdate& update) {
    if (engine != nullptr) {
      engine->Apply(update);
    } else {
      sharded->Apply(update);
    }
  }

  std::vector<VertexId> SortedSolution() {
    std::vector<VertexId> solution;
    if (engine != nullptr) {
      engine->CollectSolution(&solution);
    } else {
      sharded->CollectSolution(&solution);
    }
    std::sort(solution.begin(), solution.end());
    return solution;
  }

  DynamicGraph ExportGraph() {
    return engine != nullptr ? engine->graph() : sharded->BuildGlobalGraph();
  }
};

std::vector<VertexId> ParseSolutionLine(const std::string& line) {
  // "OK <count> <id>...".
  std::istringstream in(line);
  std::string ok;
  int64_t count = 0;
  in >> ok >> count;
  std::vector<VertexId> solution;
  solution.reserve(static_cast<size_t>(count));
  VertexId v = 0;
  while (in >> v) solution.push_back(v);
  return solution;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dynmis_loadgen --port P [--host H] [--scenario NAME]\n"
      "                      [--connections N] [--updates TOTAL]\n"
      "                      [--pipeline W] [--batch B] [--seed S]\n"
      "                      [--target-qps Q] [--mode text|binary|keyed]\n"
      "                      [--sweep C1,C2,...] [--algo NAME] [--out PATH]\n"
      "                      [--snapshot PATH] [--resume-updates K]\n"
      "                      [--no-verify]\n");
  return 2;
}

int Main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host") {
      if (!(v = next())) return Usage();
      options.host = v;
    } else if (arg == "--port") {
      if (!(v = next())) return Usage();
      options.port = std::atoi(v);
    } else if (arg == "--scenario") {
      if (!(v = next())) return Usage();
      options.scenario = v;
    } else if (arg == "--connections") {
      if (!(v = next())) return Usage();
      options.connections = std::atoi(v);
    } else if (arg == "--updates") {
      if (!(v = next())) return Usage();
      options.total_updates = std::atoi(v);
    } else if (arg == "--pipeline") {
      if (!(v = next())) return Usage();
      options.pipeline = std::atoi(v);
    } else if (arg == "--batch") {
      if (!(v = next())) return Usage();
      options.client_batch = std::atoi(v);
    } else if (arg == "--seed") {
      if (!(v = next())) return Usage();
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--target-qps") {
      if (!(v = next())) return Usage();
      options.target_qps = std::atof(v);
    } else if (arg == "--mode") {
      if (!(v = next())) return Usage();
      if (std::string(v) == "binary") {
        options.binary = true;
        options.keyed = false;
      } else if (std::string(v) == "text") {
        options.binary = false;
        options.keyed = false;
      } else if (std::string(v) == "keyed") {
        options.binary = false;
        options.keyed = true;
      } else {
        std::fprintf(stderr, "bad --mode (want text|binary|keyed): %s\n", v);
        return Usage();
      }
    } else if (arg == "--sweep") {
      if (!(v = next())) return Usage();
      for (const char* p = v; *p != '\0';) {
        char* end = nullptr;
        const long c = std::strtol(p, &end, 10);
        if (end == p || c < 1) {
          std::fprintf(stderr, "bad --sweep list: %s\n", v);
          return Usage();
        }
        options.sweep.push_back(static_cast<int>(c));
        p = *end == ',' ? end + 1 : end;
      }
      if (options.sweep.empty()) return Usage();
    } else if (arg == "--algo") {
      if (!(v = next())) return Usage();
      options.algo.algorithm = v;
      options.algo_given = true;
    } else if (arg == "--out") {
      if (!(v = next())) return Usage();
      options.out_path = v;
    } else if (arg == "--snapshot") {
      if (!(v = next())) return Usage();
      options.snapshot_path = v;
    } else if (arg == "--resume-updates") {
      if (!(v = next())) return Usage();
      options.resume_updates = std::atoi(v);
    } else if (arg == "--no-verify") {
      options.verify = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (options.port <= 0 || options.connections < 1 || options.pipeline < 1 ||
      options.client_batch < 1 || options.target_qps < 0) {
    return Usage();
  }

  serve::ServeWorkload workload;
  if (!serve::BuildServeWorkload(options.scenario, &workload)) {
    std::fprintf(stderr, "unknown scenario: %s\n", options.scenario.c_str());
    return 2;
  }
  const int total = options.total_updates > 0
                        ? options.total_updates
                        : bench::ScaledUpdates(workload.default_updates);

  // Control connection first: learn the backend shape (and fail fast when
  // the server is down or speaks another protocol version).
  LineClient control;
  std::string greeting;
  std::string error;
  if (!control.Connect(options.host, options.port, &error) ||
      !Handshake(&control, &greeting, &error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    return 1;
  }
  const std::string backend_kind = GreetingField(greeting, "backend");
  const std::string algorithm = GreetingField(greeting, "algorithm");
  const int shards = std::atoi(GreetingField(greeting, "shards").c_str());
  const bool is_sharded = backend_kind == "sharded";
  // The replay/resume backends must run the server's algorithm, not this
  // tool's default: adopt the advertised name unless --algo overrode it.
  if (!options.algo_given && !algorithm.empty()) {
    options.algo.algorithm = algorithm;
  }
  if (!MaintainerRegistry::Global().Has(options.algo.algorithm)) {
    std::fprintf(stderr,
                 "loadgen: server algorithm '%s' is not a registry name; "
                 "pass --algo with the server's registry key\n",
                 options.algo.algorithm.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "loadgen: %s:%d %s backend (%s, %d shard%s), scenario %s, "
               "%d updates over %d connection(s)\n",
               options.host.c_str(), options.port, backend_kind.c_str(),
               algorithm.c_str(), shards, shards == 1 ? "" : "s",
               options.scenario.c_str(), total, options.connections);

  // --- Load phase ------------------------------------------------------------

  // The sweep runs the load phase at each listed connection count; the
  // plain path is a single-stage sweep at --connections. The JSON's main
  // "serving" block reports the final stage.
  std::vector<int> stages = options.sweep;
  if (stages.empty()) stages.push_back(options.connections);
  std::vector<LoadPhaseResult> phases;
  bool worker_failed = false;
  for (size_t s = 0; s < stages.size(); ++s) {
    const LoadPhaseResult phase = RunLoadPhase(
        options, workload, stages[s], total, /*seed_salt=*/s * 104729);
    std::fprintf(
        stderr,
        "loadgen: [%s, %d conn] %lld sent, %lld acked, %lld rejected in "
        "%.3fs (%.0f ops/s client-side), rtt p50=%.1fus p99=%.1fus\n",
        options.binary ? "binary" : "text", phase.connections,
        static_cast<long long>(phase.totals.sent),
        static_cast<long long>(phase.totals.acked),
        static_cast<long long>(phase.totals.rejected), phase.elapsed,
        phase.ops_per_sec(), phase.rtt_p50_us, phase.rtt_p99_us);
    worker_failed = worker_failed || phase.failed;
    phases.push_back(phase);
  }
  if (phases.size() > 1) {
    std::fprintf(stderr,
                 "loadgen: connection sweep (%s protocol)\n"
                 "  conns    ops/s    p50_us    p99_us\n",
                 options.binary ? "binary" : "text");
    for (const LoadPhaseResult& phase : phases) {
      std::fprintf(stderr, "  %5d %8.0f %9.1f %9.1f\n", phase.connections,
                   phase.ops_per_sec(), phase.rtt_p50_us, phase.rtt_p99_us);
    }
  }
  const LoadPhaseResult& last = phases.back();
  const WorkerResult& totals = last.totals;
  const double elapsed = last.elapsed;
  const double rtt_p50_us = last.rtt_p50_us;
  const double rtt_p99_us = last.rtt_p99_us;

  // Keyed mode: every stage's surviving bindings, and the op totals across
  // stages (the server's key map accumulates across the whole run).
  std::vector<std::pair<std::string, VertexId>> all_live_keys;
  int64_t keys_inserted_total = 0;
  int64_t keys_deleted_total = 0;
  for (LoadPhaseResult& phase : phases) {
    keys_inserted_total += phase.totals.keys_inserted;
    keys_deleted_total += phase.totals.keys_deleted;
    all_live_keys.insert(all_live_keys.end(),
                         std::make_move_iterator(phase.live_keys.begin()),
                         std::make_move_iterator(phase.live_keys.end()));
  }

  // --- Verification phase (control connection) -------------------------------

  bool checks_ok = !worker_failed;

  std::string stats_line;
  if (!control.Ask("STATS", &stats_line) ||
      stats_line.rfind("OK ", 0) != 0) {
    std::fprintf(stderr, "loadgen: STATS failed\n");
    return 1;
  }
  const std::string load_stats_json = stats_line.substr(3);

  std::string verify_line;
  if (!control.Ask("VERIFY", &verify_line)) {
    std::fprintf(stderr, "loadgen: VERIFY failed\n");
    return 1;
  }
  const bool verified_independent =
      verify_line.find("independent=1") != std::string::npos;
  const bool verified_maximal =
      verify_line.find("maximal=1") != std::string::npos;
  if (!verified_independent || !verified_maximal) checks_ok = false;

  std::string solution_line;
  if (!control.Ask("SOLUTION", &solution_line) ||
      solution_line.rfind("OK ", 0) != 0) {
    std::fprintf(stderr, "loadgen: SOLUTION failed\n");
    return 1;
  }
  const std::vector<VertexId> server_solution =
      ParseSolutionLine(solution_line);

  // Trace-based checks: client-side verification + in-process replay.
  bool client_verified = false;
  bool replay_matches = false;
  if (options.verify) {
    // Absolute path: server and loadgen share a filesystem but not
    // necessarily a working directory. The pid keeps concurrent runs on
    // one host from clobbering each other.
    const std::string trace_path = "/tmp/dynmis_serve_trace_" +
                                   options.scenario + "_" +
                                   std::to_string(getpid()) + ".txt";
    std::string trace_line;
    if (!control.Ask("TRACE " + trace_path, &trace_line) ||
        trace_line.rfind("OK", 0) != 0) {
      std::fprintf(stderr,
                   "loadgen: TRACE failed (%s) — run the server with "
                   "--record-trace or pass --no-verify\n",
                   trace_line.c_str());
      return 1;
    }
    serve::ServeTrace trace;
    if (!serve::LoadServeTrace(trace_path, &trace, &error)) {
      std::fprintf(stderr, "loadgen: %s\n", error.c_str());
      return 1;
    }
    // Client-side ground truth: base graph + applied trace.
    DynamicGraph mirror = workload.base.ToDynamic();
    for (const GraphUpdate& update : trace.updates) {
      ApplyUpdate(&mirror, update);
    }
    bool independent = false;
    bool maximal = false;
    client_verified = serve::CheckSolution(mirror, server_solution,
                                           &independent, &maximal);
    // Replay with the server's exact transaction boundaries.
    ReplayBackend replay = ReplayBackend::Fresh(workload.base, options.algo,
                                                is_sharded, shards);
    if (!replay.ok()) {
      std::fprintf(stderr, "loadgen: cannot build replay backend (%s)\n",
                   options.algo.algorithm.c_str());
      return 1;
    }
    size_t offset = 0;
    std::vector<GraphUpdate> block;
    for (const int64_t size : trace.batch_sizes) {
      block.assign(trace.updates.begin() + static_cast<int64_t>(offset),
                   trace.updates.begin() + static_cast<int64_t>(offset) +
                       size);
      replay.ApplyBatch(block);
      offset += static_cast<size_t>(size);
    }
    replay_matches = replay.SortedSolution() == server_solution;
    std::fprintf(stderr,
                 "loadgen: trace %zu ops in %zu batches — client_verified=%d "
                 "replay_matches=%d\n",
                 trace.updates.size(), trace.batch_sizes.size(),
                 client_verified ? 1 : 0, replay_matches ? 1 : 0);
    if (!client_verified || !replay_matches) checks_ok = false;
  }

  // Keyed verification: the server must resolve every live key to the id
  // it assigned at KINS time (the client-side replica of the bindings),
  // and the KQUERY in-solution flag must agree with the SOLUTION set. The
  // run has no concurrent writers at this point, so both are exact.
  int64_t keys_verified = 0;
  int64_t key_mismatches = 0;
  if (options.keyed) {
    std::vector<VertexId> sorted_solution = server_solution;
    std::sort(sorted_solution.begin(), sorted_solution.end());
    for (const auto& [key, id] : all_live_keys) {
      std::string reply;
      if (!control.Ask("KQUERY " + key, &reply)) {
        std::fprintf(stderr, "loadgen: KQUERY failed\n");
        return 1;
      }
      long long reply_id = -1;
      int in_solution = -1;
      const bool in_set = std::binary_search(sorted_solution.begin(),
                                             sorted_solution.end(), id);
      if (std::sscanf(reply.c_str(), "OK %lld %d", &reply_id, &in_solution) !=
              2 ||
          reply_id != static_cast<long long>(id) ||
          in_solution != (in_set ? 1 : 0)) {
        ++key_mismatches;
        if (key_mismatches <= 5) {
          std::fprintf(stderr,
                       "loadgen: key mismatch: %s -> \"%s\" (client id %lld, "
                       "in_solution %d)\n",
                       key.c_str(), reply.c_str(),
                       static_cast<long long>(id), in_set ? 1 : 0);
        }
      } else {
        ++keys_verified;
      }
    }
    std::fprintf(stderr,
                 "loadgen: keyed — %lld inserted, %lld deleted, %zu live, "
                 "%lld verified, %lld mismatches\n",
                 static_cast<long long>(keys_inserted_total),
                 static_cast<long long>(keys_deleted_total),
                 all_live_keys.size(), static_cast<long long>(keys_verified),
                 static_cast<long long>(key_mismatches));
    if (key_mismatches > 0) checks_ok = false;
  }

  // Snapshot / warm-failover check.
  bool snapshot_matches = false;
  bool resume_matches = false;
  int64_t snapshot_bytes = 0;
  std::vector<VertexId> latest_server_solution = server_solution;
  if (!options.snapshot_path.empty()) {
    std::string snap_line;
    if (!control.Ask("SNAPSHOT " + options.snapshot_path, &snap_line) ||
        snap_line.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "loadgen: SNAPSHOT failed (%s)\n",
                   snap_line.c_str());
      return 1;
    }
    snapshot_bytes = std::atoll(snap_line.c_str() + 3);
    ReplayBackend restored =
        ReplayBackend::Restore(options.snapshot_path, is_sharded, &error);
    if (!restored.ok()) {
      std::fprintf(stderr, "loadgen: %s\n", error.c_str());
      return 1;
    }
    snapshot_matches = restored.SortedSolution() == latest_server_solution;
    // Resume: the same closed-loop stream through the live server and the
    // restored engine; one op per request keeps the transaction boundaries
    // aligned (each op is its own ApplyBatch on both sides).
    UpdateStreamOptions resume_stream = workload.stream;
    resume_stream.seed = options.seed * 977 + 4243;
    UpdateStreamGenerator generator(resume_stream);
    DynamicGraph resume_mirror = restored.ExportGraph();
    bool resume_failed = false;
    for (int i = 0; i < options.resume_updates; ++i) {
      const GraphUpdate update = generator.Next(resume_mirror);
      std::string ack;
      if (!control.Ask(serve::FormatCommandLine(update), &ack) ||
          ack.rfind("OK", 0) != 0) {
        std::fprintf(stderr, "loadgen: resume op refused (%s)\n",
                     ack.c_str());
        resume_failed = true;
        break;
      }
      ApplyUpdate(&resume_mirror, update);
      restored.Apply(update);
    }
    if (!resume_failed) {
      if (!control.Ask("SOLUTION", &solution_line) ||
          solution_line.rfind("OK ", 0) != 0) {
        std::fprintf(stderr, "loadgen: SOLUTION failed after resume\n");
        return 1;
      }
      latest_server_solution = ParseSolutionLine(solution_line);
      resume_matches = restored.SortedSolution() == latest_server_solution;
    }
    std::fprintf(stderr,
                 "loadgen: snapshot %lld bytes — snapshot_matches=%d "
                 "resume_matches=%d (%d resume ops)\n",
                 static_cast<long long>(snapshot_bytes),
                 snapshot_matches ? 1 : 0, resume_matches ? 1 : 0,
                 options.resume_updates);
    if (!snapshot_matches || !resume_matches) checks_ok = false;
  }

  // Refresh server-side metrics after the verification traffic.
  std::string final_stats_line;
  const std::string server_json =
      control.Ask("STATS", &final_stats_line) &&
              final_stats_line.rfind("OK ", 0) == 0
          ? final_stats_line.substr(3)
          : load_stats_json;

  std::string goodbye;
  control.Ask("QUIT", &goodbye);
  control.Close();

  // --- JSON emission ---------------------------------------------------------

  bench::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("scenario");
  w.String(options.scenario);
  w.Key("tool");
  w.String("dynmis_loadgen");
  w.Key("scale");
  w.Double(bench::BenchScale());
  w.Key("cpu_count");
  w.Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  w.Key("graph");
  w.BeginObject();
  w.Key("name");
  w.String(workload.name);
  w.Key("n");
  w.Int(workload.base.n);
  w.Key("m");
  w.Int(workload.base.NumEdges());
  w.EndObject();
  w.Key("updates");
  w.Int(total);
  w.Key("serving");
  w.BeginObject();
  w.Key("backend");
  w.String(backend_kind);
  w.Key("shards");
  w.Int(shards);
  w.Key("algorithm");
  w.String(algorithm);
  w.Key("protocol");
  w.String(options.binary ? "binary" : (options.keyed ? "keyed" : "text"));
  w.Key("connections");
  w.Int(last.connections);
  w.Key("pipeline");
  w.Int(options.pipeline);
  w.Key("client_batch");
  w.Int(options.client_batch);
  w.Key("target_qps");
  w.Double(options.target_qps);
  w.Key("achieved_qps");
  w.Double(elapsed > 0 ? static_cast<double>(totals.sent) / elapsed : 0);
  w.Key("updates_sent");
  w.Int(totals.sent);
  w.Key("acked");
  w.Int(totals.acked);
  w.Key("rejected");
  w.Int(totals.rejected);
  w.Key("elapsed_seconds");
  w.Double(elapsed);
  w.Key("client_ops_per_sec");
  w.Double(elapsed > 0 ? static_cast<double>(totals.acked) / elapsed : 0);
  w.Key("rtt_p50_us");
  w.Double(rtt_p50_us);
  w.Key("rtt_p99_us");
  w.Double(rtt_p99_us);
  if (phases.size() > 1) {
    w.Key("sweep");
    w.BeginArray();
    for (const LoadPhaseResult& phase : phases) {
      w.BeginObject();
      w.Key("connections");
      w.Int(phase.connections);
      w.Key("ops_per_sec");
      w.Double(phase.ops_per_sec());
      w.Key("rtt_p50_us");
      w.Double(phase.rtt_p50_us);
      w.Key("rtt_p99_us");
      w.Double(phase.rtt_p99_us);
      w.Key("acked");
      w.Int(phase.totals.acked);
      w.Key("rejected");
      w.Int(phase.totals.rejected);
      w.EndObject();
    }
    w.EndArray();
  }
  w.Key("server");
  w.BeginObject();
  w.Key("ops_applied");
  w.Int(static_cast<int64_t>(ExtractJsonNumber(server_json, "ops_applied")));
  w.Key("ops_rejected");
  w.Int(
      static_cast<int64_t>(ExtractJsonNumber(server_json, "ops_rejected")));
  w.Key("batches_flushed");
  w.Int(static_cast<int64_t>(
      ExtractJsonNumber(server_json, "batches_flushed")));
  w.Key("mean_batch_occupancy");
  w.Double(ExtractJsonNumber(server_json, "mean_batch_occupancy"));
  // Percentiles from the post-load STATS call: the resume ops are
  // closed-loop singles and would skew the load phase's distribution.
  w.Key("update_p50_us");
  w.Double(ExtractJsonNumber(UpdateLatencyScope(load_stats_json), "p50"));
  w.Key("update_p99_us");
  w.Double(ExtractJsonNumber(UpdateLatencyScope(load_stats_json), "p99"));
  w.Key("solution_size");
  w.Int(static_cast<int64_t>(
      ExtractJsonNumber(server_json, "solution_size")));
  w.EndObject();
  w.Key("solution_size");
  w.Int(static_cast<int64_t>(latest_server_solution.size()));
  w.Key("verified_independent");
  w.Bool(verified_independent);
  w.Key("verified_maximal");
  w.Bool(verified_maximal);
  if (options.verify) {
    w.Key("client_verified");
    w.Bool(client_verified);
    w.Key("replay_matches");
    w.Bool(replay_matches);
  }
  if (!options.snapshot_path.empty()) {
    w.Key("snapshot");
    w.BeginObject();
    w.Key("bytes");
    w.Int(snapshot_bytes);
    w.Key("snapshot_matches");
    w.Bool(snapshot_matches);
    w.Key("resume_updates");
    w.Int(options.resume_updates);
    w.Key("resume_matches");
    w.Bool(resume_matches);
    w.EndObject();
  }
  if (options.keyed) {
    // The server's own binding count must equal the client-side replica:
    // this run is the only writer, so any drift is a bug.
    const int64_t keymap_entries = static_cast<int64_t>(
        ExtractJsonNumber(server_json, "keymap_entries"));
    if (keymap_entries != static_cast<int64_t>(all_live_keys.size())) {
      std::fprintf(stderr,
                   "loadgen: keymap drift — server holds %lld entries, "
                   "clients hold %zu\n",
                   static_cast<long long>(keymap_entries),
                   all_live_keys.size());
      checks_ok = false;
    }
    w.Key("keyed");
    w.BeginObject();
    w.Key("keys_inserted");
    w.Int(keys_inserted_total);
    w.Key("keys_deleted");
    w.Int(keys_deleted_total);
    w.Key("keys_live");
    w.Int(static_cast<int64_t>(all_live_keys.size()));
    w.Key("keys_verified");
    w.Int(keys_verified);
    w.Key("key_mismatches");
    w.Int(key_mismatches);
    w.Key("keymap_entries");
    w.Int(keymap_entries);
    w.EndObject();
  }
  w.EndObject();
  // Top-level echo of the server's replication state so smoke jobs can
  // assert on lag/role without a second STATS round-trip. The regression
  // checker pops this block (environment-dependent, like "serving").
  const std::string repl_scope = ReplicationScope(server_json);
  if (!repl_scope.empty()) {
    w.Key("replication");
    w.BeginObject();
    w.Key("role");
    w.String(ExtractJsonString(repl_scope, "role"));
    w.Key("next_seq");
    w.Int(static_cast<int64_t>(ExtractJsonNumber(repl_scope, "next_seq")));
    w.Key("lag_batches");
    w.Int(static_cast<int64_t>(ExtractJsonNumber(repl_scope, "lag_batches")));
    w.Key("lag_segments");
    w.Int(
        static_cast<int64_t>(ExtractJsonNumber(repl_scope, "lag_segments")));
    w.Key("snapshots_written");
    w.Int(static_cast<int64_t>(
        ExtractJsonNumber(repl_scope, "snapshots_written")));
    w.Key("last_base_seq");
    w.Int(
        static_cast<int64_t>(ExtractJsonNumber(repl_scope, "last_base_seq")));
    w.Key("promotions");
    w.Int(static_cast<int64_t>(ExtractJsonNumber(repl_scope, "promotions")));
    w.Key("resharded");
    w.Int(static_cast<int64_t>(ExtractJsonNumber(repl_scope, "resharded")));
    w.EndObject();
  }
  w.EndObject();

  const std::string out_path = options.out_path.empty()
                                   ? "SERVE_" + options.scenario + ".json"
                                   : options.out_path;
  if (!bench::WriteFile(out_path, w.Take())) {
    std::fprintf(stderr, "loadgen: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "loadgen: wrote %s (%s)\n", out_path.c_str(),
               checks_ok ? "all checks passed" : "CHECKS FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace dynmis

int main(int argc, char** argv) { return dynmis::Main(argc, argv); }
