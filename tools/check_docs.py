#!/usr/bin/env python3
"""Documentation consistency gate (CI `docs` job).

Two checks, both over committed files only (no network):

1. Markdown link check. Every relative link in README.md, docs/*.md and
   bench/EXPERIMENTS.md must point at a file that exists in the repo,
   and every `#fragment` (same-file or cross-file) must resolve to a
   heading in the target document, using GitHub's anchor slugging.

2. Protocol verb drift. The verb table in docs/PROTOCOL.md must list
   exactly the wire verbs the parser knows: the set extracted from the
   `VerbName()` switch in src/serve/protocol.cc. A verb added to the
   parser without a table row fails, and so does a documented verb the
   parser no longer accepts.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Documents whose outgoing links (and heading anchors) are validated.
CHECKED_DOCS = ["README.md", "docs", "bench/EXPERIMENTS.md"]

PROTOCOL_DOC = REPO / "docs" / "PROTOCOL.md"
PROTOCOL_SRC = REPO / "src" / "serve" / "protocol.cc"

HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# [text](target) — target up to the first unescaped ')'; images included.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def gather_files():
    files = []
    for entry in CHECKED_DOCS:
        path = REPO / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def github_slug(heading, taken):
    """GitHub's heading-to-anchor slug, with duplicate suffixing."""
    text = heading.lower()
    text = re.sub(r"[`*]", "", text)
    # Markdown links in headings anchor on their text only.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    if slug in taken:
        taken[slug] += 1
        slug = f"{slug}-{taken[slug]}"
    else:
        taken[slug] = 0
    return slug


def document_anchors(path, cache={}):
    if path not in cache:
        taken = {}
        anchors = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                anchors.add(github_slug(match.group(2), taken))
        cache[path] = anchors
    return cache[path]


def iter_links(path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_links(files):
    problems = []
    for doc in files:
        rel = doc.relative_to(REPO)
        for lineno, target in iter_links(doc):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            file_part, _, fragment = target.partition("#")
            dest = doc if not file_part else (doc.parent / file_part).resolve()
            if not dest.exists():
                problems.append(
                    f"{rel}:{lineno}: broken link '{target}' "
                    f"(no such file: {file_part})"
                )
                continue
            if not fragment:
                continue
            if dest.suffix != ".md":
                problems.append(
                    f"{rel}:{lineno}: anchor link '{target}' into a "
                    "non-markdown file"
                )
                continue
            if fragment not in document_anchors(dest):
                problems.append(
                    f"{rel}:{lineno}: broken anchor '#{fragment}' — no such "
                    f"heading in {dest.relative_to(REPO)}"
                )
    return problems


def parser_verbs():
    """Wire spellings from the VerbName() switch in protocol.cc."""
    source = PROTOCOL_SRC.read_text(encoding="utf-8")
    match = re.search(
        r"const char\* VerbName\(.*?\n\}", source, flags=re.DOTALL
    )
    if not match:
        return None
    verbs = set(re.findall(r'return "([A-Z]+)";', match.group(0)))
    return verbs or None


def documented_verbs():
    """First-column `VERB` entries of PROTOCOL.md's '### Verb table'."""
    verbs = set()
    in_table = False
    for line in PROTOCOL_DOC.read_text(encoding="utf-8").splitlines():
        if line.startswith("#"):
            in_table = line.strip().lower().endswith("verb table")
            continue
        if in_table:
            match = re.match(r"\|\s*`([A-Z]+)`\s*\|", line)
            if match:
                verbs.add(match.group(1))
    return verbs


def check_verbs():
    problems = []
    from_code = parser_verbs()
    if from_code is None:
        return [f"{PROTOCOL_SRC.relative_to(REPO)}: could not locate the "
                "VerbName() switch (check_docs.py needs updating)"]
    from_docs = documented_verbs()
    if not from_docs:
        return [f"{PROTOCOL_DOC.relative_to(REPO)}: found no '### Verb "
                "table' rows (check_docs.py needs updating)"]
    for verb in sorted(from_code - from_docs):
        problems.append(
            f"docs/PROTOCOL.md: verb '{verb}' exists in the parser "
            "(src/serve/protocol.cc) but has no verb-table row"
        )
    for verb in sorted(from_docs - from_code):
        problems.append(
            f"docs/PROTOCOL.md: verb '{verb}' is documented but the parser "
            "(src/serve/protocol.cc) does not know it"
        )
    return problems


def main():
    files = gather_files()
    if not files:
        print("check_docs.py: no documentation files found", file=sys.stderr)
        return 1
    problems = check_links(files) + check_verbs()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs.py: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    names = ", ".join(str(f.relative_to(REPO)) for f in files)
    print(f"check_docs.py: OK — links + anchors clean in {names}; "
          f"verb table in sync ({len(documented_verbs())} verbs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
