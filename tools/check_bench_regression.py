#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a freshly produced BENCH_<scenario>.json against the committed
baseline and fails when any (algorithm, batch_size) run's ops_per_sec drops
below --min-ratio of the baseline (default 0.75, i.e. a >25% regression).

Throughput ratios are hardware-sensitive; the committed baselines were
measured on a developer machine while CI runs on shared runners, so the
gate compares *shape*, not absolute speed: each run's raw candidate/
baseline ratio is divided by the median ratio across all runs. A
uniformly slower (or faster) machine shifts every ratio equally and
cancels out, while a regression confined to a minority of runs stands
out against the median — including a regression in the fastest run,
which a fixed-normalizer scheme would hide. A *uniform* slowdown across
most runs is indistinguishable from slower hardware by construction;
pass --absolute to compare raw ops_per_sec when baseline and candidate
come from the same machine.

Also validates the JSON schema the rest of the tooling relies on
(schema_version, positive ops_per_sec / p50 / p99 / memory / solution).

The sharded measurement (`bench_driver --shards N`) is informational and
machine-sensitive in a way the shape normalization cannot cancel (it
depends on the hardware-thread count recorded in `cpu_count`), so the gate
ignores it entirely: the top-level "sharded" object is never compared, and
any run entry carrying a "shards" field is dropped before keying. The
top-level "serving" block (dynmis_loadgen's socket-side measurement, which
rides on connection count and kernel scheduling) gets the same treatment,
as do the "ingest" and "temporal" blocks the workload scenarios emit
(load-time memory budget and stream shape, not engine throughput).

Pass --candidate several times to gate on the best of N repeated runs
(per (algorithm, batch_size) the maximum ops_per_sec is used), which keeps
short reduced-scale CI runs from tripping the gate on scheduler noise.

Usage:
  check_bench_regression.py --baseline BENCH_hard.json \
      --candidate run1.json --candidate run2.json \
      [--min-ratio 0.75] [--absolute]
"""

import argparse
import json
import sys


REQUIRED_RUN_FIELDS = (
    "algorithm",
    "batch_size",
    "ops_per_sec",
    "latency_p50_us",
    "latency_p99_us",
    "peak_memory_bytes",
    "final_solution_size",
)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')}")
    doc.pop("sharded", None)  # Informational blocks: never gated.
    doc.pop("serving", None)
    doc.pop("replication", None)
    doc.pop("ingest", None)  # Load-time memory budget; machine-sensitive.
    doc.pop("temporal", None)  # Stream shape, not a perf measurement.
    runs = [run for run in doc.get("runs") or [] if "shards" not in run]
    doc["runs"] = runs
    if not runs:
        sys.exit(f"{path}: no runs recorded")
    for run in runs:
        for field in REQUIRED_RUN_FIELDS:
            if field not in run:
                sys.exit(f"{path}: run is missing '{field}': {run}")
        for field in ("ops_per_sec", "latency_p50_us", "latency_p99_us",
                      "peak_memory_bytes", "final_solution_size"):
            if not run[field] > 0:
                sys.exit(f"{path}: run has non-positive {field}: {run}")
    return doc


def keyed(doc):
    return {(run["algorithm"], run["batch_size"]): run for run in doc["runs"]}


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True, action="append",
                        help="repeat to gate on the best of N runs")
    parser.add_argument("--min-ratio", type=float, default=0.75,
                        help="fail when candidate/baseline falls below this")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw ops_per_sec (same-machine runs)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidates = [load(path) for path in args.candidate]
    for doc, path in zip(candidates, args.candidate):
        if baseline.get("scenario") != doc.get("scenario"):
            sys.exit(
                f"scenario mismatch: baseline={baseline.get('scenario')} "
                f"{path}={doc.get('scenario')}")
    # Merge repeated runs: per key, keep the fastest observation.
    candidate = candidates[0]
    merged = keyed(candidate)
    for doc in candidates[1:]:
        for key, run in keyed(doc).items():
            if key not in merged or run["ops_per_sec"] > merged[key]["ops_per_sec"]:
                merged[key] = run
    candidate = {**candidate, "runs": list(merged.values())}

    base_runs = keyed(baseline)
    cand_runs = keyed(candidate)
    shared = sorted(set(base_runs) & set(cand_runs))
    raw = {key: cand_runs[key]["ops_per_sec"] / base_runs[key]["ops_per_sec"]
           for key in shared}
    # Shape normalization: divide by the median raw ratio so a uniform
    # machine-speed shift cancels while minority regressions stand out.
    norm = 1.0 if args.absolute or not raw else median(raw.values())
    if norm <= 0:
        sys.exit("FAIL: degenerate baseline/candidate throughput")

    failures = []
    print(f"{'algorithm':<16} {'batch':>6} {'baseline':>12} {'candidate':>12} "
          f"{'ratio':>7}")
    for key, cand in sorted(cand_runs.items()):
        base = base_runs.get(key)
        if base is None:
            print(f"{key[0]:<16} {key[1]:>6} {'(new run)':>12} "
                  f"{cand['ops_per_sec']:>12.0f}      -")
            continue
        ratio = raw[key] / norm
        flag = "" if ratio >= args.min_ratio else "  << REGRESSION"
        print(f"{key[0]:<16} {key[1]:>6} {base['ops_per_sec']:>12.0f} "
              f"{cand['ops_per_sec']:>12.0f} {ratio:>7.2f}{flag}")
        if ratio < args.min_ratio:
            failures.append((key, ratio))

    missing = sorted(set(base_runs) - set(keyed(candidate)))
    for key in missing:
        print(f"{key[0]:<16} {key[1]:>6} present in baseline only")
    if missing:
        sys.exit(f"FAIL: {len(missing)} baseline run(s) missing from candidate")
    if failures:
        worst = min(failures, key=lambda f: f[1])
        sys.exit(
            f"FAIL: {len(failures)} run(s) regressed below "
            f"{args.min_ratio:.2f}x of baseline "
            f"(worst: {worst[0][0]} batch={worst[0][1]} at {worst[1]:.2f}x)")
    print(f"OK: all {len(keyed(candidate))} runs within "
          f"{args.min_ratio:.2f}x of baseline")


if __name__ == "__main__":
    main()
