// PartitionPlan: maps every vertex id to one of S shards. For the hash and
// range strategies the mapping is a pure function of the id — O(1) routing
// with zero lookup state, and a recycled id always lands back in the shard
// that owned it, so per-shard update queues never need ownership hand-offs.
//
// Three strategies:
//  * kHash: Fibonacci-hash the id, then mod S. Spreads any id distribution
//    evenly; cut fraction approaches (1 - 1/S) on graphs without locality.
//  * kRange: contiguous blocks of ids round-robined across shards. Keeps
//    id-local graphs (generators emit community-ordered ids) mostly
//    intra-shard and makes shard membership humanly predictable.
//  * kLocality: streaming-greedy placement (the LDG idiom from streaming
//    graph partitioning). Each vertex is assigned, at the moment its id is
//    created, to the shard holding the plurality of its already-placed
//    neighbors, subject to a balance cap; the assignment is recorded in an
//    owner table, so the plan is stateful but lookup stays O(1). A recycled
//    id keeps its previous owner: the id may still have in-flight ops in
//    the old owner's queue, and reassigning it would split one vertex's
//    status-transition stream across two shard producers (the asynchronous
//    resolver relies on a single ordered producer per vertex). The owner
//    table travels in snapshots (PartitionPlan::RestoreLocality), so a
//    restored engine maps ids exactly as the saved one did.

#ifndef DYNMIS_SRC_SHARD_PARTITION_PLAN_H_
#define DYNMIS_SRC_SHARD_PARTITION_PLAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/util/check.h"

namespace dynmis {

enum class PartitionStrategy : uint8_t { kHash = 0, kRange = 1, kLocality = 2 };

// Registry-style spelling of a strategy ("hash" / "range" / "locality"),
// for bench JSON and CLI flags.
std::string PartitionStrategyName(PartitionStrategy strategy);

// Parses the spelling PartitionStrategyName emits. Returns false (leaving
// `*strategy` untouched) on anything else.
bool ParsePartitionStrategy(const std::string& name,
                            PartitionStrategy* strategy);

class PartitionPlan {
 public:
  // Hash partitioning over `num_shards` shards.
  static PartitionPlan Hash(int num_shards);

  // Range partitioning: blocks of ceil(expected_vertices / num_shards)
  // consecutive ids per shard; ids past the expected range wrap by block
  // index, so growth keeps spreading round-robin instead of piling onto
  // the last shard.
  static PartitionPlan Range(int num_shards, int expected_vertices);

  // Locality partitioning with an empty owner table; callers assign each
  // id via AssignVertex / AssignArrivingVertex before routing it.
  static PartitionPlan Locality(int num_shards);

  static PartitionPlan Make(PartitionStrategy strategy, int num_shards,
                            int expected_vertices) {
    switch (strategy) {
      case PartitionStrategy::kHash:
        return Hash(num_shards);
      case PartitionStrategy::kRange:
        return Range(num_shards, expected_vertices);
      case PartitionStrategy::kLocality:
        return Locality(num_shards);
    }
    return Hash(num_shards);
  }

  // Rebuilds a hash/range plan from its persisted fields (snapshot
  // restore): a loaded engine must map ids exactly as the saved one did,
  // so the block size is restored verbatim instead of re-derived from a
  // vertex count.
  static PartitionPlan Restore(PartitionStrategy strategy, int num_shards,
                               int block_size) {
    DYNMIS_CHECK_GE(num_shards, 1);
    DYNMIS_CHECK_GE(block_size, 1);
    DYNMIS_CHECK(strategy != PartitionStrategy::kLocality);
    return PartitionPlan(strategy, num_shards, block_size);
  }

  // Rebuilds a locality plan from its persisted owner table (-1 = id never
  // assigned). Shard load counters are rebuilt by OnVertexAdded calls for
  // the alive ids (the engine drives that from the restored cut structure).
  static PartitionPlan RestoreLocality(int num_shards,
                                       std::vector<int32_t> owners) {
    DYNMIS_CHECK_GE(num_shards, 1);
    PartitionPlan plan(PartitionStrategy::kLocality, num_shards, 1);
    plan.owners_ = std::move(owners);
    return plan;
  }

  int num_shards() const { return num_shards_; }
  PartitionStrategy strategy() const { return strategy_; }
  // Block width of a range plan (1 for hash and locality plans).
  int block_size() const { return block_size_; }

  // The shard owning vertex id `v`. Total over all non-negative ids for
  // hash/range; for locality the id must have been assigned.
  int ShardOf(VertexId v) const {
    DYNMIS_DCHECK(v >= 0);
    switch (strategy_) {
      case PartitionStrategy::kHash: {
        // Fibonacci multiplicative hash: the high 32 bits are well mixed
        // for the dense small ids DynamicGraph allocates.
        const uint64_t mixed =
            (static_cast<uint64_t>(static_cast<uint32_t>(v)) *
             0x9E3779B97F4A7C15ull) >>
            32;
        return static_cast<int>(mixed % static_cast<uint64_t>(num_shards_));
      }
      case PartitionStrategy::kRange:
        return static_cast<int>(
            (static_cast<int64_t>(v) / block_size_) % num_shards_);
      case PartitionStrategy::kLocality:
        DYNMIS_DCHECK(HasOwner(v));
        return owners_[v];
    }
    return 0;
  }

  // --- Locality-strategy state (no-ops / trivial on hash and range) ---------

  // True when this plan assigns ids on insert (kLocality).
  bool assigns_on_insert() const {
    return strategy_ == PartitionStrategy::kLocality;
  }

  // True when id `v` already has a recorded owner.
  bool HasOwner(VertexId v) const {
    return strategy_ != PartitionStrategy::kLocality ||
           (v >= 0 && v < static_cast<VertexId>(owners_.size()) &&
            owners_[v] >= 0);
  }

  // Streaming-greedy assignment: place `v` on the shard holding the
  // plurality of the already-owned vertices in `neighbors`, unless that
  // shard is over the balance cap; ties and cap overflows fall back to the
  // least-loaded shard (lowest index on equality), so the choice is a
  // deterministic function of the plan state. Records and returns the
  // owner. kLocality only.
  int AssignVertex(VertexId v, const std::vector<VertexId>& neighbors);

  // Bookkeeping for the balance cap: the engine reports every vertex
  // arrival/departure (including recycled ids, which keep their owner).
  void OnVertexAdded(VertexId v) {
    if (strategy_ != PartitionStrategy::kLocality) return;
    DYNMIS_DCHECK(HasOwner(v));
    ++sizes_[owners_[v]];
    ++alive_total_;
  }
  void OnVertexRemoved(VertexId v) {
    if (strategy_ != PartitionStrategy::kLocality) return;
    DYNMIS_DCHECK(HasOwner(v));
    --sizes_[owners_[v]];
    --alive_total_;
  }

  // The owner table (locality plans; empty otherwise). Persisted verbatim
  // in sharded snapshots: -1 marks ids that never existed.
  const std::vector<int32_t>& owners() const { return owners_; }

  // Current alive-vertex load of every shard (locality plans).
  const std::vector<int64_t>& shard_sizes() const { return sizes_; }

 private:
  PartitionPlan(PartitionStrategy strategy, int num_shards, int block_size)
      : strategy_(strategy), num_shards_(num_shards), block_size_(block_size) {
    if (strategy_ == PartitionStrategy::kLocality) {
      sizes_.assign(static_cast<size_t>(num_shards_), 0);
      counts_.assign(static_cast<size_t>(num_shards_), 0);
    }
  }

  PartitionStrategy strategy_;
  int num_shards_;
  int block_size_;

  // kLocality only: per-id owner (-1 = unassigned), per-shard alive counts,
  // and a reusable neighbor-count scratch for AssignVertex.
  std::vector<int32_t> owners_;
  std::vector<int64_t> sizes_;
  int64_t alive_total_ = 0;
  std::vector<int32_t> counts_;
  std::vector<int32_t> counted_shards_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_SHARD_PARTITION_PLAN_H_
