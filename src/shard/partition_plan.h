// PartitionPlan: maps every vertex id — current or future — to one of S
// shards as a pure function of the id. Pure-function partitioning is what
// keeps the sharded engine's routing O(1) with zero lookup state: an edge
// is intra-shard iff both endpoint ids map to the same shard, and a
// recycled id always lands back in the shard that owned it, so per-shard
// update queues never need ownership hand-offs.
//
// Two strategies:
//  * kHash: Fibonacci-hash the id, then mod S. Spreads any id distribution
//    evenly; cut fraction approaches (1 - 1/S) on graphs without locality.
//  * kRange: contiguous blocks of ids round-robined across shards. Keeps
//    id-local graphs (generators emit community-ordered ids) mostly
//    intra-shard and makes shard membership humanly predictable.

#ifndef DYNMIS_SRC_SHARD_PARTITION_PLAN_H_
#define DYNMIS_SRC_SHARD_PARTITION_PLAN_H_

#include <cstdint>
#include <string>

#include "src/graph/dynamic_graph.h"
#include "src/util/check.h"

namespace dynmis {

enum class PartitionStrategy : uint8_t { kHash = 0, kRange = 1 };

// Registry-style spelling of a strategy ("hash" / "range"), for bench JSON
// and CLI flags.
std::string PartitionStrategyName(PartitionStrategy strategy);

class PartitionPlan {
 public:
  // Hash partitioning over `num_shards` shards.
  static PartitionPlan Hash(int num_shards);

  // Range partitioning: blocks of ceil(expected_vertices / num_shards)
  // consecutive ids per shard; ids past the expected range wrap by block
  // index, so growth keeps spreading round-robin instead of piling onto
  // the last shard.
  static PartitionPlan Range(int num_shards, int expected_vertices);

  static PartitionPlan Make(PartitionStrategy strategy, int num_shards,
                            int expected_vertices) {
    return strategy == PartitionStrategy::kHash ? Hash(num_shards)
                                                : Range(num_shards,
                                                        expected_vertices);
  }

  // Rebuilds a plan from its persisted fields (snapshot restore): a loaded
  // engine must map ids exactly as the saved one did, so the block size is
  // restored verbatim instead of re-derived from a vertex count.
  static PartitionPlan Restore(PartitionStrategy strategy, int num_shards,
                               int block_size) {
    DYNMIS_CHECK_GE(num_shards, 1);
    DYNMIS_CHECK_GE(block_size, 1);
    return PartitionPlan(strategy, num_shards, block_size);
  }

  int num_shards() const { return num_shards_; }
  PartitionStrategy strategy() const { return strategy_; }
  // Block width of a range plan (1 for hash plans).
  int block_size() const { return block_size_; }

  // The shard owning vertex id `v`. Total over all non-negative ids.
  int ShardOf(VertexId v) const {
    DYNMIS_DCHECK(v >= 0);
    if (strategy_ == PartitionStrategy::kHash) {
      // Fibonacci multiplicative hash: the high 32 bits are well mixed for
      // the dense small ids DynamicGraph allocates.
      const uint64_t mixed =
          (static_cast<uint64_t>(static_cast<uint32_t>(v)) *
           0x9E3779B97F4A7C15ull) >>
          32;
      return static_cast<int>(mixed % static_cast<uint64_t>(num_shards_));
    }
    return static_cast<int>(
        (static_cast<int64_t>(v) / block_size_) % num_shards_);
  }

 private:
  PartitionPlan(PartitionStrategy strategy, int num_shards, int block_size)
      : strategy_(strategy), num_shards_(num_shards), block_size_(block_size) {}

  PartitionStrategy strategy_;
  int num_shards_;
  int block_size_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_SHARD_PARTITION_PLAN_H_
