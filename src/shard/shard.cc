#include "src/shard/shard.h"

#include <utility>

#include "dynmis/registry.h"
#include "src/util/check.h"

namespace dynmis {

bool Shard::BuildMaintainer(const MaintainerConfig& config) {
  maintainer_ = MaintainerRegistry::Global().Create(config, &graph_);
  return maintainer_ != nullptr;
}

void Shard::BufferTransition(void* ctx, VertexId v, bool in) {
  auto* shard = static_cast<Shard*>(ctx);
  shard->outgoing_.push_back(StatusTransition{v, static_cast<uint8_t>(in)});
}

bool Shard::SetTransitionSink(
    std::function<void(StatusTransitionBatch&&)> sink) {
  DYNMIS_CHECK(maintainer_ != nullptr);
  DYNMIS_CHECK(!started_);
  if (!maintainer_->SetStatusObserver(&Shard::BufferTransition, this)) {
    return false;
  }
  transition_sink_ = std::move(sink);
  return true;
}

void Shard::Start() {
  DYNMIS_CHECK(maintainer_ != nullptr);
  DYNMIS_CHECK(!started_);
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Shard::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Command stop;
    stop.kind = Command::Kind::kStop;
    queue_.push_back(std::move(stop));
  }
  work_cv_.notify_one();
  thread_.join();
  started_ = false;
  queue_.clear();
  busy_ = false;
}

void Shard::Post(Block block) {
  DYNMIS_CHECK(started_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Command command;
    command.kind = Command::Kind::kBlock;
    command.block = std::move(block);
    queue_.push_back(std::move(command));
  }
  work_cv_.notify_one();
}

void Shard::PostInitialize() {
  DYNMIS_CHECK(started_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Command command;
    command.kind = Command::Kind::kInitialize;
    queue_.push_back(std::move(command));
  }
  work_cv_.notify_one();
}

void Shard::WaitIdle() {
  if (!started_) return;
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void Shard::Loop() {
  for (;;) {
    Command command;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !queue_.empty(); });
      command = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    const bool stop = command.kind == Command::Kind::kStop;
    if (!stop) {
      Execute(command);
      // Ship this command's transitions before reporting idle, so a
      // barrier that has seen this shard idle can rely on the resolver's
      // inbox already holding everything the shard produced.
      if (transition_sink_ && !outgoing_.empty()) {
        transition_sink_(std::move(outgoing_));
        outgoing_.clear();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
    if (stop) return;
  }
}

void Shard::Execute(Command& command) {
  if (command.kind == Command::Kind::kInitialize) {
    maintainer_->Initialize({});
    return;
  }
  Block& block = command.block;
  size_t next_insert = 0;
  for (const GraphUpdate& update : block.updates) {
    if (update.kind == UpdateKind::kInsertVertex) {
      // Queued per op, not up front: an earlier op in this very block may
      // be the delete that frees the id this insert recycles.
      DYNMIS_CHECK(next_insert < block.insert_ids.size());
      graph_.QueueVertexId(block.insert_ids[next_insert]);
    }
    const VertexId v = maintainer_->Apply(update);
    if (update.kind == UpdateKind::kInsertVertex) {
      DYNMIS_DCHECK(v == block.insert_ids[next_insert]);
      (void)v;
      ++next_insert;
    }
  }
  DYNMIS_DCHECK(next_insert == block.insert_ids.size());
}

}  // namespace dynmis
