#include "dynmis/sharded_engine.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "dynmis/registry.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace dynmis {
namespace {

// A five-digit shard count in a snapshot is certainly corruption, and every
// shard costs a thread.
constexpr int kMaxShards = 1024;

std::string ShardPrefix(int shard) {
  return "shard" + std::to_string(shard) + "/";
}

}  // namespace

ShardedMisEngine::ShardedMisEngine(MaintainerConfig config,
                                   ShardedEngineOptions options,
                                   PartitionPlan plan, int initial_vertices)
    : config_(std::move(config)),
      options_(options),
      plan_(plan),
      resolver_(initial_vertices) {
  shards_.reserve(static_cast<size_t>(plan_.num_shards()));
  for (int s = 0; s < plan_.num_shards(); ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  pending_.resize(static_cast<size_t>(plan_.num_shards()));
}

ShardedMisEngine::~ShardedMisEngine() = default;

std::unique_ptr<ShardedMisEngine> ShardedMisEngine::Create(
    const EdgeListGraph& base, MaintainerConfig config,
    ShardedEngineOptions options) {
  if (options.num_shards < 1 || options.num_shards > kMaxShards ||
      options.block_ops < 1) {
    return nullptr;
  }
  PartitionPlan plan =
      PartitionPlan::Make(options.partition, options.num_shards, base.n);
  if (plan.assigns_on_insert()) {
    // Stream the base vertices through the greedy placement in id order,
    // each voting with its already-placed neighbors — the same rule later
    // vertex inserts follow, so creation is just the stream's prefix.
    std::vector<std::vector<VertexId>> neighbors(
        static_cast<size_t>(base.n));
    for (const auto& [u, v] : base.edges) {
      neighbors[u].push_back(v);
      neighbors[v].push_back(u);
    }
    for (VertexId v = 0; v < base.n; ++v) {
      plan.AssignVertex(v, neighbors[v]);
      plan.OnVertexAdded(v);
    }
  }
  std::unique_ptr<ShardedMisEngine> engine(
      new ShardedMisEngine(std::move(config), options, plan, base.n));

  // Shard graphs host their vertices at the global ids (foreign ids stay
  // dead gaps — no id translation exists anywhere in the subsystem).
  for (VertexId v = 0; v < base.n; ++v) {
    DynamicGraph& g = engine->shards_[plan.ShardOf(v)]->graph();
    g.QueueVertexId(v);
    g.AddVertex();
  }
  for (const auto& [u, v] : base.edges) {
    const int su = plan.ShardOf(u);
    if (su == plan.ShardOf(v)) {
      engine->shards_[su]->graph().AddEdge(u, v);
    } else {
      engine->resolver_.AddCutEdge(u, v);
    }
  }
  for (auto& shard : engine->shards_) {
    if (!shard->BuildMaintainer(engine->config_)) return nullptr;
  }
  engine->EnableAsyncResolver();
  for (auto& shard : engine->shards_) shard->Start();
  return engine;
}

std::unique_ptr<ShardedMisEngine> ShardedMisEngine::CreateFromGraph(
    const DynamicGraph& global, MaintainerConfig config,
    ShardedEngineOptions options) {
  if (options.num_shards < 1 || options.num_shards > kMaxShards ||
      options.block_ops < 1) {
    return nullptr;
  }
  const int capacity = global.VertexCapacity();
  PartitionPlan plan =
      PartitionPlan::Make(options.partition, options.num_shards, capacity);
  if (plan.assigns_on_insert()) {
    // Stream the alive vertices in id order; dead ids stay unowned and get
    // assigned if their id is ever recycled.
    std::vector<VertexId> neighbors;
    for (VertexId v = 0; v < capacity; ++v) {
      if (!global.IsVertexAlive(v)) continue;
      neighbors.clear();
      global.ForEachIncident(v,
                             [&](VertexId u, EdgeId) {
                               neighbors.push_back(u);
                             });
      plan.AssignVertex(v, neighbors);
      plan.OnVertexAdded(v);
    }
  }
  std::unique_ptr<ShardedMisEngine> engine(
      new ShardedMisEngine(std::move(config), options, plan, capacity));

  // The resolver starts with 0..capacity-1 alive; replaying the source
  // graph's removals in its recycle order makes the resolver's free list —
  // the global id allocator — match element for element, so vertex inserts
  // after the swap assign the ids the old backend would have.
  for (const VertexId v : global.FreeVertexIds()) {
    engine->resolver_.RemoveVertex(v);
  }
  for (VertexId v = 0; v < capacity; ++v) {
    if (!global.IsVertexAlive(v)) continue;
    DynamicGraph& g = engine->shards_[plan.ShardOf(v)]->graph();
    g.QueueVertexId(v);
    g.AddVertex();
  }
  for (const auto& [u, v] : global.EdgeList()) {
    const int su = plan.ShardOf(u);
    if (su == plan.ShardOf(v)) {
      engine->shards_[su]->graph().AddEdge(u, v);
    } else {
      engine->resolver_.AddCutEdge(u, v);
    }
  }
  for (auto& shard : engine->shards_) {
    if (!shard->BuildMaintainer(engine->config_)) return nullptr;
  }
  engine->EnableAsyncResolver();
  for (auto& shard : engine->shards_) shard->Start();
  return engine;
}

void ShardedMisEngine::EnableAsyncResolver() {
  if (!options_.async_resolver) return;
  // All shards run the same algorithm, so probing one maintainer decides
  // for all (a nullptr install is support detection, not an installation).
  if (!shards_[0]->maintainer().SetStatusObserver(nullptr, nullptr)) return;
  for (auto& shard : shards_) {
    const bool installed = shard->SetTransitionSink(
        [this](StatusTransitionBatch&& batch) {
          resolver_.ShipTransitions(std::move(batch));
        });
    DYNMIS_CHECK(installed);
  }
  resolver_.SetBlockOps(options_.block_ops);
  // Seed the standing overlay from whatever solutions the maintainers
  // already hold — empty at creation, restored state after a snapshot load
  // (which performs no observable MoveIns).
  resolver_.SeedOverlay(shards_);
  resolver_.StartWorker();
  async_active_ = true;
}

void ShardedMisEngine::Initialize() {
  for (auto& shard : shards_) shard->PostInitialize();
  resolved_ = false;
  if (async_active_) {
    // Initialize() rebuilds the shard solutions wholesale (no MoveOut per
    // displaced member), so re-seed the overlay instead of folding the
    // initialize transitions into pre-initialize residue.
    for (auto& shard : shards_) shard->WaitIdle();
    resolver_.DrainWorker();
    resolver_.SeedOverlay(shards_);
  }
  EnsureResolved();
}

VertexId ShardedMisEngine::Route(const GraphUpdate& update) {
  // Edge ops are appended field-wise rather than copied: the GraphUpdate
  // copy constructor drags the (empty) neighbors vector along, and this
  // append runs for every intra-shard op on the engine thread.
  auto append_edge_op = [&](int shard) {
    GraphUpdate& slot = pending_[shard].updates.emplace_back();
    slot.kind = update.kind;
    slot.u = update.u;
    slot.v = update.v;
    PostPending(shard);
  };
  switch (update.kind) {
    case UpdateKind::kInsertEdge: {
      const int su = plan_.ShardOf(update.u);
      if (su == plan_.ShardOf(update.v)) {
        append_edge_op(su);
      } else {
        resolver_.AddCutEdge(update.u, update.v);
      }
      return kInvalidVertex;
    }
    case UpdateKind::kDeleteEdge: {
      const int su = plan_.ShardOf(update.u);
      if (su == plan_.ShardOf(update.v)) {
        append_edge_op(su);
      } else {
        resolver_.RemoveCutEdge(update.u, update.v);
      }
      return kInvalidVertex;
    }
    case UpdateKind::kInsertVertex: {
      // The global id is allocated synchronously (so callers see it at
      // once, and allocation order matches a single engine); the op the
      // shard receives carries only the intra-shard neighbor edges.
      const VertexId id = resolver_.AddVertex();
      // A locality plan places a never-before-seen id now, voting with the
      // vertex's current neighbors; a recycled id keeps its previous owner
      // (in-flight queue consistency and the resolver's single-producer-
      // per-vertex invariant both depend on it).
      if (plan_.assigns_on_insert() && !plan_.HasOwner(id)) {
        plan_.AssignVertex(id, update.neighbors);
      }
      plan_.OnVertexAdded(id);
      const int s = plan_.ShardOf(id);
      GraphUpdate local;
      local.kind = UpdateKind::kInsertVertex;
      for (const VertexId n : update.neighbors) {
        if (plan_.ShardOf(n) == s) {
          local.neighbors.push_back(n);
        } else {
          resolver_.AddCutEdge(id, n);
        }
      }
      pending_[s].updates.push_back(std::move(local));
      pending_[s].insert_ids.push_back(id);
      PostPending(s);
      return id;
    }
    case UpdateKind::kDeleteVertex: {
      const int s = plan_.ShardOf(update.u);
      // Frees the global id for recycling and drops the cut edges — inline
      // in sequential mode, via a shipped op in async mode (a recycled id
      // maps back to the same shard, so the shard's queue order keeps
      // delete-then-reinsert sequences consistent).
      resolver_.RemoveVertex(update.u);
      plan_.OnVertexRemoved(update.u);
      append_edge_op(s);
      return kInvalidVertex;
    }
  }
  return kInvalidVertex;
}

void ShardedMisEngine::PostPending(int shard) {
  Shard::Block& block = pending_[shard];
  if (static_cast<int>(block.updates.size()) < options_.block_ops) return;
  shards_[shard]->Post(std::move(block));
  block = Shard::Block();
}

UpdateResult ShardedMisEngine::Apply(const GraphUpdate& update) {
  UpdateResult result;
  Timer timer;
  const VertexId v = Route(update);
  resolved_ = false;
  result.seconds = timer.ElapsedSeconds();
  result.applied = 1;
  if (update.kind == UpdateKind::kInsertVertex) {
    result.new_vertices.push_back(v);
  }
  updates_applied_ += 1;
  update_seconds_ += result.seconds;
  if (observer_) observer_(1, result.seconds);
  return result;
}

UpdateResult ShardedMisEngine::ApplyBatch(
    const std::vector<GraphUpdate>& updates) {
  UpdateResult result;
  Timer timer;
  for (const GraphUpdate& update : updates) {
    const VertexId v = Route(update);
    if (update.kind == UpdateKind::kInsertVertex) {
      result.new_vertices.push_back(v);
    }
  }
  resolved_ = false;
  result.seconds = timer.ElapsedSeconds();
  result.applied = static_cast<int64_t>(updates.size());
  updates_applied_ += result.applied;
  update_seconds_ += result.seconds;
  if (observer_ && result.applied > 0) {
    observer_(result.applied, result.seconds);
  }
  return result;
}

UpdateResult ShardedMisEngine::InsertEdge(VertexId u, VertexId v) {
  GraphUpdate update;
  update.kind = UpdateKind::kInsertEdge;
  update.u = u;
  update.v = v;
  return Apply(update);
}

UpdateResult ShardedMisEngine::DeleteEdge(VertexId u, VertexId v) {
  GraphUpdate update;
  update.kind = UpdateKind::kDeleteEdge;
  update.u = u;
  update.v = v;
  return Apply(update);
}

VertexId ShardedMisEngine::InsertVertex(
    const std::vector<VertexId>& neighbors) {
  GraphUpdate update;
  update.kind = UpdateKind::kInsertVertex;
  update.neighbors = neighbors;
  const UpdateResult result = Apply(update);
  return result.new_vertices.empty() ? kInvalidVertex
                                     : result.new_vertices.front();
}

UpdateResult ShardedMisEngine::DeleteVertex(VertexId v) {
  GraphUpdate update;
  update.kind = UpdateKind::kDeleteVertex;
  update.u = v;
  return Apply(update);
}

void ShardedMisEngine::Barrier() {
  for (int s = 0; s < plan_.num_shards(); ++s) {
    if (!pending_[s].empty()) {
      shards_[s]->Post(std::move(pending_[s]));
      pending_[s] = Shard::Block();
    }
  }
  for (auto& shard : shards_) shard->WaitIdle();
  // Shards idle means every transition they will ever ship for the posted
  // blocks is already in the resolver's inbox; draining now leaves the
  // standing overlay and conflict set exact.
  if (async_active_) resolver_.DrainWorker();
}

void ShardedMisEngine::Flush() { Barrier(); }

void ShardedMisEngine::EnsureResolved() {
  if (resolved_) return;
  Barrier();
  Timer resolve_timer;
  resolution_ = async_active_ ? resolver_.ResolveIncremental(plan_, shards_)
                              : resolver_.Resolve(plan_, shards_);
  resolve_seconds_ += resolve_timer.ElapsedSeconds();
  ++barriers_;
  total_conflicts_ += resolution_.conflicts;
  total_evictions_ += resolution_.evictions;
  total_readded_ += resolution_.readded;
  total_swaps_ += resolution_.swaps;
  resolved_ = true;
}

bool ShardedMisEngine::InSolution(VertexId v) {
  EnsureResolved();
  return std::binary_search(resolution_.solution.begin(),
                            resolution_.solution.end(), v);
}

int64_t ShardedMisEngine::SolutionSize() {
  EnsureResolved();
  return static_cast<int64_t>(resolution_.solution.size());
}

std::vector<VertexId> ShardedMisEngine::Solution() {
  EnsureResolved();
  return resolution_.solution;
}

void ShardedMisEngine::CollectSolution(std::vector<VertexId>* out) {
  EnsureResolved();
  out->insert(out->end(), resolution_.solution.begin(),
              resolution_.solution.end());
}

EngineStats ShardedMisEngine::Stats() {
  EnsureResolved();
  EngineStats stats;
  stats.algorithm = shards_[0]->maintainer().Name();
  stats.solution_size = static_cast<int64_t>(resolution_.solution.size());
  stats.num_vertices = resolver_.NumVertices();
  stats.num_edges = resolver_.NumCutEdges();
  for (const auto& shard : shards_) {
    stats.num_edges += shard->graph().NumEdges();
    stats.structure_memory_bytes += shard->maintainer().MemoryUsageBytes();
    stats.graph_memory_bytes += shard->graph().MemoryUsageBytes();
  }
  stats.graph_memory_bytes += resolver_.MemoryUsageBytes();
  stats.updates_applied = updates_applied_;
  stats.update_seconds = update_seconds_;
  return stats;
}

DynamicGraph ShardedMisEngine::BuildGlobalGraph() {
  Flush();
  int64_t total_edges = resolver_.NumCutEdges();
  for (const auto& shard : shards_) total_edges += shard->graph().NumEdges();
  DynamicGraph g(resolver_.VertexCapacity());
  g.Reserve(resolver_.VertexCapacity(), total_edges);
  // Dead ids are removed in the resolver's recycle order, so the copy's
  // LIFO free list matches element for element and future AddVertex()
  // calls agree with this engine's global allocation.
  for (const VertexId v : resolver_.FreeVertexIds()) g.RemoveVertex(v);
  for (const auto& shard : shards_) {
    for (const auto& [u, v] : shard->graph().EdgeList()) g.AddEdge(u, v);
  }
  for (const auto& [u, v] : resolver_.CutEdgeList()) g.AddEdge(u, v);
  return g;
}

std::vector<EngineStats> ShardedMisEngine::PerShardStats() {
  EnsureResolved();
  std::vector<EngineStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    EngineStats s;
    s.algorithm = shard->maintainer().Name();
    s.solution_size = shard->maintainer().SolutionSize();
    s.num_vertices = shard->graph().NumVertices();
    s.num_edges = shard->graph().NumEdges();
    s.structure_memory_bytes = shard->maintainer().MemoryUsageBytes();
    s.graph_memory_bytes = shard->graph().MemoryUsageBytes();
    stats.push_back(std::move(s));
  }
  return stats;
}

ShardedStats ShardedMisEngine::ShardStats() {
  EnsureResolved();
  ShardedStats stats;
  stats.num_shards = plan_.num_shards();
  stats.partition = PartitionStrategyName(plan_.strategy());
  for (const auto& shard : shards_) {
    stats.intra_edges += shard->graph().NumEdges();
    stats.shard_solution_sizes.push_back(shard->maintainer().SolutionSize());
  }
  stats.cut_edges = resolver_.NumCutEdges();
  const int64_t total = stats.intra_edges + stats.cut_edges;
  stats.cut_edge_fraction =
      total > 0 ? static_cast<double>(stats.cut_edges) /
                      static_cast<double>(total)
                : 0;
  stats.barriers = barriers_;
  stats.conflicts = total_conflicts_;
  stats.evictions = total_evictions_;
  stats.readded = total_readded_;
  stats.swaps = total_swaps_;
  stats.resolve_seconds = resolve_seconds_;
  stats.async_resolver = async_active_;
  if (async_active_) {
    stats.resolver_backlog = resolver_.BacklogOps();
    stats.resolver_conflicts = resolver_.StandingConflicts();
    stats.transitions_consumed = resolver_.TransitionsConsumed();
  }
  return stats;
}

SnapshotStatus ShardedMisEngine::SaveSnapshot(std::ostream& out) {
  SnapshotWriter writer;
  SaveTo(&writer);
  return writer.WriteTo(out);
}

void ShardedMisEngine::SaveTo(SnapshotWriter* writer) {
  EnsureResolved();  // Quiescent: every queue drained, workers idle.
  writer->BeginSection("sharded");
  writer->PutString(config_.algorithm);
  writer->PutString(shards_[0]->maintainer().Name());
  writer->PutI32(config_.k);
  writer->PutU8(config_.lazy ? 1 : 0);
  writer->PutU8(config_.perturb ? 1 : 0);
  writer->PutI32(config_.recompute_every);
  writer->PutI32(plan_.num_shards());
  writer->PutU8(static_cast<uint8_t>(plan_.strategy()));
  writer->PutI32(plan_.block_size());
  writer->PutI32(options_.block_ops);
  writer->PutU8(options_.async_resolver ? 1 : 0);
  writer->PutI64(updates_applied_);
  writer->PutDouble(update_seconds_);
  writer->PutDouble(resolve_seconds_);
  writer->PutI64(barriers_);
  writer->PutI64(total_conflicts_);
  writer->PutI64(total_evictions_);
  writer->PutI64(total_readded_);
  writer->PutI64(total_swaps_);
  // Locality owner table, verbatim (-1 = never assigned); empty for the
  // stateless hash/range plans.
  writer->PutI32Array(plan_.owners());
  writer->EndSection();
  writer->SetSectionPrefix("cut/");
  resolver_.SaveTo(writer);
  for (int s = 0; s < plan_.num_shards(); ++s) {
    writer->SetSectionPrefix(ShardPrefix(s));
    shards_[s]->graph().SaveTo(writer);
    shards_[s]->maintainer().SaveState(writer);
  }
  writer->SetSectionPrefix("");
}

bool ShardedMisEngine::LoadShards(SnapshotReader* reader) {
  reader->SetSectionPrefix("cut/");
  if (!resolver_.LoadFrom(reader)) return false;
  for (int s = 0; s < plan_.num_shards(); ++s) {
    reader->SetSectionPrefix(ShardPrefix(s));
    if (!shards_[s]->graph().LoadFrom(reader)) return false;
  }
  reader->SetSectionPrefix("");
  if (!ValidateLoaded(reader)) return false;
  for (int s = 0; s < plan_.num_shards(); ++s) {
    if (!shards_[s]->BuildMaintainer(config_)) {
      reader->Fail("snapshot: sharded: maintainer construction failed");
      return false;
    }
    reader->SetSectionPrefix(ShardPrefix(s));
    if (!shards_[s]->maintainer().LoadState(reader, shards_[s]->graph())) {
      if (reader->ok()) {
        reader->Fail("snapshot: sharded: maintainer state restore failed");
      }
      return false;
    }
  }
  reader->SetSectionPrefix("");
  return true;
}

bool ShardedMisEngine::ValidateLoaded(SnapshotReader* reader) const {
  auto fail = [&](const char* message) {
    reader->Fail(std::string("snapshot: sharded: ") + message);
    return false;
  };
  // Every alive vertex lives in exactly its plan shard (and nowhere else),
  // and the cut structure knows exactly the alive vertices.
  for (int s = 0; s < plan_.num_shards(); ++s) {
    const DynamicGraph& g = shards_[s]->graph();
    if (g.VertexCapacity() > resolver_.VertexCapacity()) {
      return fail("shard id space exceeds the global id space");
    }
    for (VertexId v = 0; v < g.VertexCapacity(); ++v) {
      if (!g.IsVertexAlive(v)) continue;
      if (!plan_.HasOwner(v)) {
        return fail("alive vertex missing a partition-plan owner");
      }
      if (plan_.ShardOf(v) != s) {
        return fail("vertex alive in a shard the plan does not map it to");
      }
      if (!resolver_.IsVertexAlive(v)) {
        return fail("shard vertex missing from the cut structure");
      }
    }
  }
  int64_t shard_vertices = 0;
  for (const auto& shard : shards_) {
    shard_vertices += shard->graph().NumVertices();
  }
  if (shard_vertices != resolver_.NumVertices()) {
    return fail("vertex alive in the cut structure but missing from its "
                "shard");
  }
  // Edge placement matches the plan on both sides.
  for (int s = 0; s < plan_.num_shards(); ++s) {
    for (const auto& [u, v] : shards_[s]->graph().EdgeList()) {
      if (plan_.ShardOf(u) != s || plan_.ShardOf(v) != s) {
        return fail("shard edge with a foreign endpoint");
      }
    }
  }
  for (const auto& [u, v] : resolver_.CutEdgeList()) {
    if (plan_.ShardOf(u) == plan_.ShardOf(v)) {
      return fail("cut edge between same-shard endpoints");
    }
  }
  return true;
}

std::unique_ptr<ShardedMisEngine> ShardedMisEngine::LoadSnapshot(
    std::istream& in, SnapshotStatus* status) {
  auto report = [&](const SnapshotStatus& s) {
    if (status != nullptr) *status = s;
  };
  report(SnapshotStatus::Ok());

  SnapshotReader reader;
  if (SnapshotStatus read = reader.ReadFrom(in); !read) {
    report(read);
    return nullptr;
  }
  if (!reader.OpenSection("sharded")) {
    report(reader.status());
    return nullptr;
  }
  MaintainerConfig config;
  config.algorithm = reader.GetString();
  reader.GetString();  // Display name: informational only.
  config.k = reader.GetI32();
  config.lazy = reader.GetU8() != 0;
  config.perturb = reader.GetU8() != 0;
  config.recompute_every = reader.GetI32();
  const int num_shards = reader.GetI32();
  const uint8_t strategy = reader.GetU8();
  const int block_size = reader.GetI32();
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.block_ops = reader.GetI32();
  const uint8_t async_resolver = reader.GetU8();
  const int64_t updates_applied = reader.GetI64();
  const double update_seconds = reader.GetDouble();
  const double resolve_seconds = reader.GetDouble();
  const int64_t barriers = reader.GetI64();
  const int64_t conflicts = reader.GetI64();
  const int64_t evictions = reader.GetI64();
  const int64_t readded = reader.GetI64();
  const int64_t swaps = reader.GetI64();
  std::vector<int32_t> owners;
  if (!reader.GetI32Array(&owners)) {
    report(reader.status());
    return nullptr;
  }
  if (reader.ok() && !reader.AtSectionEnd()) {
    reader.Fail("snapshot: sharded: trailing bytes after the last field");
  }
  if (!reader.ok()) {
    report(reader.status());
    return nullptr;
  }
  if (!MaintainerRegistry::Global().Has(config.algorithm)) {
    report(SnapshotStatus::Error("snapshot: unknown algorithm '" +
                                 config.algorithm +
                                 "' (not in MaintainerRegistry)"));
    return nullptr;
  }
  if (config.k < 1 || config.k > kMaxKSwapOrder ||
      config.recompute_every < 1 || num_shards < 1 ||
      num_shards > kMaxShards || strategy > 2 || block_size < 1 ||
      options.block_ops < 1 || async_resolver > 1) {
    report(SnapshotStatus::Error(
        "snapshot: sharded configuration out of range"));
    return nullptr;
  }
  options.partition = static_cast<PartitionStrategy>(strategy);
  options.async_resolver = async_resolver != 0;
  const bool locality = options.partition == PartitionStrategy::kLocality;
  if (!locality && !owners.empty()) {
    report(SnapshotStatus::Error(
        "snapshot: sharded: owner table on a stateless partition plan"));
    return nullptr;
  }
  for (const int32_t owner : owners) {
    if (owner < -1 || owner >= num_shards) {
      report(SnapshotStatus::Error(
          "snapshot: sharded: owner table entry out of range"));
      return nullptr;
    }
  }
  const PartitionPlan plan =
      locality
          ? PartitionPlan::RestoreLocality(num_shards, std::move(owners))
          : PartitionPlan::Restore(options.partition, num_shards,
                                   block_size);

  std::unique_ptr<ShardedMisEngine> engine(new ShardedMisEngine(
      std::move(config), options, plan, /*initial_vertices=*/0));
  if (!engine->LoadShards(&reader)) {
    report(reader.ok() ? SnapshotStatus::Error(
                             "snapshot: sharded: shard restore failed")
                       : reader.status());
    return nullptr;
  }
  if (locality) {
    // Rebuild the balance-cap load counters from the restored alive set.
    for (VertexId v = 0; v < engine->resolver_.VertexCapacity(); ++v) {
      if (engine->resolver_.IsVertexAlive(v)) engine->plan_.OnVertexAdded(v);
    }
  }
  engine->EnableAsyncResolver();
  for (auto& shard : engine->shards_) shard->Start();
  engine->updates_applied_ = updates_applied;
  engine->update_seconds_ = update_seconds;
  engine->resolve_seconds_ = resolve_seconds;
  engine->barriers_ = barriers;
  engine->total_conflicts_ = conflicts;
  engine->total_evictions_ = evictions;
  engine->total_readded_ = readded;
  engine->total_swaps_ = swaps;
  engine->resolved_ = false;
  return engine;
}

}  // namespace dynmis
