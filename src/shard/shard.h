// Shard: one vertex partition of a ShardedMisEngine. It owns a DynamicGraph
// holding the shard's vertices *at their global ids* (foreign ids stay dead
// gaps, so no id translation exists anywhere) plus the intra-shard edges,
// the registry maintainer running over that graph, and a dedicated worker
// thread fed by a queue of update blocks.
//
// Threading contract: the engine thread is the only producer. Between a
// Post() and the return of the next WaitIdle() the worker owns the graph
// and maintainer exclusively; after WaitIdle() returns (and until the next
// Post) the engine thread may read both directly — the queue mutex carries
// the happens-before edge. The worker applies ops one at a time through the
// maintainer's Apply path, so the shard's final state depends only on its
// op sequence, never on how the engine chopped it into blocks.

#ifndef DYNMIS_SRC_SHARD_SHARD_H_
#define DYNMIS_SRC_SHARD_SHARD_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/update_stream.h"

namespace dynmis {

// One maintainer solution-status transition (`in` is the absolute
// membership after the flip, so replaying a stream is idempotent and only
// per-vertex ordering matters). Shards batch these per executed command and
// ship them to the asynchronous CutEdgeResolver.
struct StatusTransition {
  VertexId v;
  uint8_t in;
};
using StatusTransitionBatch = std::vector<StatusTransition>;

class Shard {
 public:
  // A block of updates for this shard, in global-op order. `insert_ids`
  // carries the pre-allocated global ids of the block's kInsertVertex ops
  // (in op order); the worker queues them into the graph so the maintainer's
  // InsertVertex lands on exactly those ids.
  struct Block {
    std::vector<GraphUpdate> updates;
    std::vector<VertexId> insert_ids;

    bool empty() const { return updates.empty(); }
    void clear() {
      updates.clear();
      insert_ids.clear();
    }
  };

  Shard() = default;
  ~Shard() { Stop(); }

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Populate graph() first (engine thread, worker not yet started), then
  // construct the maintainer over it. Returns false when the registry does
  // not know `config.algorithm`.
  bool BuildMaintainer(const MaintainerConfig& config);

  // Routes the maintainer's status transitions to `sink`, called on the
  // worker thread with the batch each executed command produced (one call
  // per non-empty command, after the command's last op — so a WaitIdle()
  // that follows the sink's downstream processing sees every transition of
  // every posted block). Install before Start(); engine thread only.
  // Returns false — leaving no sink installed — when the maintainer cannot
  // report transitions (the wholesale-rebuild baselines), in which case the
  // caller must fall back to barrier-time solution collection.
  bool SetTransitionSink(std::function<void(StatusTransitionBatch&&)> sink);

  // Spawns the worker thread. Requires BuildMaintainer() to have succeeded.
  void Start();

  // Stops and joins the worker after draining its queue. Idempotent.
  void Stop();

  // Enqueues a block for the worker. Engine thread only.
  void Post(Block block);

  // Enqueues a maintainer Initialize({}) for the worker. Engine thread only.
  void PostInitialize();

  // Blocks until the queue is drained and the worker idles. After this
  // returns, graph() and maintainer() may be read from the calling thread
  // until the next Post.
  void WaitIdle();

  DynamicGraph& graph() { return graph_; }
  const DynamicGraph& graph() const { return graph_; }
  DynamicMisMaintainer& maintainer() { return *maintainer_; }
  const DynamicMisMaintainer& maintainer() const { return *maintainer_; }

 private:
  struct Command {
    enum class Kind { kBlock, kInitialize, kStop };
    Kind kind = Kind::kBlock;
    Block block;
  };

  void Loop();
  void Execute(Command& command);

  // Maintainer status-observer trampoline: appends to outgoing_. Fires on
  // whichever thread applies updates — the worker after Start(), the
  // engine thread during pre-start initialization (both race-free: thread
  // creation orders pre-start writes before the worker's reads).
  static void BufferTransition(void* ctx, VertexId v, bool in);

  DynamicGraph graph_;
  std::unique_ptr<DynamicMisMaintainer> maintainer_;

  std::function<void(StatusTransitionBatch&&)> transition_sink_;
  StatusTransitionBatch outgoing_;

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // Signals the worker: queue non-empty.
  std::condition_variable idle_cv_;   // Signals waiters: drained and idle.
  std::deque<Command> queue_;
  bool busy_ = false;
  bool started_ = false;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_SHARD_SHARD_H_
