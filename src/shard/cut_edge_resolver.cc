#include "src/shard/cut_edge_resolver.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/memory.h"

namespace dynmis {

CutEdgeResolver::CutEdgeResolver(int initial_vertices) {
  DYNMIS_CHECK_GE(initial_vertices, 0);
  alive_.assign(static_cast<size_t>(initial_vertices), 1);
  num_vertices_ = initial_vertices;
  adjacency_.resize(static_cast<size_t>(initial_vertices));
  base_.assign(static_cast<size_t>(initial_vertices), 0);
  conflict_pos_.assign(static_cast<size_t>(initial_vertices), -1);
}

CutEdgeResolver::~CutEdgeResolver() { StopWorker(); }

// --- Id space (engine thread) ------------------------------------------------

VertexId CutEdgeResolver::AddVertex() {
  VertexId v;
  if (!free_vertices_.empty()) {
    v = free_vertices_.back();
    free_vertices_.pop_back();
  } else {
    v = static_cast<VertexId>(alive_.size());
    alive_.push_back(0);
  }
  alive_[v] = 1;
  ++num_vertices_;
  return v;
}

void CutEdgeResolver::RemoveVertex(VertexId v) {
  DYNMIS_DCHECK(IsVertexAlive(v));
  alive_[v] = 0;
  free_vertices_.push_back(v);
  --num_vertices_;
  if (worker_started_) {
    pending_cut_ops_.push_back(CutOp{CutOp::Kind::kDropVertex, v, v});
    if (static_cast<int>(pending_cut_ops_.size()) >= block_ops_) {
      FlushCutOps();
    }
  } else if (v < static_cast<VertexId>(adjacency_.size())) {
    DropVertexEdges(v);
  }
}

void CutEdgeResolver::AddCutEdge(VertexId u, VertexId v) {
  if (worker_started_) {
    pending_cut_ops_.push_back(CutOp{CutOp::Kind::kAddEdge, u, v});
    if (static_cast<int>(pending_cut_ops_.size()) >= block_ops_) {
      FlushCutOps();
    }
    return;
  }
  DYNMIS_DCHECK(IsVertexAlive(u));
  DYNMIS_DCHECK(IsVertexAlive(v));
  EnsureCutCapacity(u > v ? u : v);
  InsertEdgeHalves(u, v);
}

void CutEdgeResolver::RemoveCutEdge(VertexId u, VertexId v) {
  if (worker_started_) {
    pending_cut_ops_.push_back(CutOp{CutOp::Kind::kRemoveEdge, u, v});
    if (static_cast<int>(pending_cut_ops_.size()) >= block_ops_) {
      FlushCutOps();
    }
    return;
  }
  RemoveEdgeHalves(u, v);
}

// --- Structural mutations (inline or worker) ---------------------------------

void CutEdgeResolver::EnsureCutCapacity(VertexId v) {
  if (v < static_cast<VertexId>(adjacency_.size())) return;
  const size_t size = static_cast<size_t>(v) + 1;
  adjacency_.resize(size);
  base_.resize(size, 0);
  conflict_pos_.resize(size, -1);
}

void CutEdgeResolver::InsertEdgeHalves(VertexId u, VertexId v) {
  DYNMIS_DCHECK(!HasCutEdge(u, v));
  adjacency_[u].push_back(Half{v, static_cast<int32_t>(adjacency_[v].size())});
  adjacency_[v].push_back(
      Half{u, static_cast<int32_t>(adjacency_[u].size()) - 1});
  ++num_edges_;
}

void CutEdgeResolver::RemoveEdgeHalves(VertexId u, VertexId v) {
  // Scan the smaller endpoint's contiguous array; its mirror locates the
  // far entry without touching the (possibly much longer) far array.
  if (CutDegree(v) < CutDegree(u)) std::swap(u, v);
  std::vector<Half>& list = adjacency_[u];
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].to != v) continue;
    const int32_t mirror = list[i].mirror;
    SwapRemoveHalf(u, static_cast<int32_t>(i));
    SwapRemoveHalf(v, mirror);
    --num_edges_;
    return;
  }
  DYNMIS_DCHECK(false && "RemoveCutEdge: edge not present");
}

void CutEdgeResolver::DropVertexEdges(VertexId v) {
  // Mirror fix-ups may rewrite adjacency_[v] entries' mirrors, so read each
  // entry fresh by index.
  for (size_t i = 0; i < adjacency_[v].size(); ++i) {
    const Half h = adjacency_[v][i];
    SwapRemoveHalf(h.to, h.mirror);
    --num_edges_;
  }
  adjacency_[v].clear();
}

void CutEdgeResolver::SwapRemoveHalf(VertexId owner, int32_t index) {
  std::vector<Half>& list = adjacency_[owner];
  const Half moved = list.back();
  list.pop_back();
  if (index != static_cast<int32_t>(list.size())) {
    list[index] = moved;
    adjacency_[moved.to][moved.mirror].mirror = index;
  }
}

std::vector<std::pair<VertexId, VertexId>> CutEdgeResolver::CutEdgeList()
    const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (VertexId u = 0; u < static_cast<VertexId>(adjacency_.size()); ++u) {
    for (const Half& h : adjacency_[u]) {
      if (u < h.to) edges.emplace_back(u, h.to);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

// --- Asynchronous worker -----------------------------------------------------

void CutEdgeResolver::StartWorker() {
  DYNMIS_CHECK(!worker_started_);
  DYNMIS_CHECK(pending_cut_ops_.empty());
  worker_stop_ = false;
  worker_started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void CutEdgeResolver::StopWorker() {
  if (!worker_started_) return;
  FlushCutOps();
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    worker_stop_ = true;
  }
  inbox_cv_.notify_one();
  worker_.join();
  worker_started_ = false;
  worker_stop_ = false;
}

void CutEdgeResolver::ShipTransitions(TransitionBatch&& batch) {
  if (batch.empty()) return;
  DYNMIS_DCHECK(worker_started_);
  const size_t ops = batch.size();
  Message message;
  message.transitions = std::move(batch);
  EnqueueMessage(std::move(message), ops);
}

void CutEdgeResolver::FlushCutOps() {
  if (!worker_started_ || pending_cut_ops_.empty()) return;
  const size_t ops = pending_cut_ops_.size();
  Message message;
  message.cut_ops = std::move(pending_cut_ops_);
  pending_cut_ops_.clear();
  EnqueueMessage(std::move(message), ops);
}

void CutEdgeResolver::EnqueueMessage(Message&& message, size_t ops) {
  backlog_ops_.fetch_add(static_cast<int64_t>(ops),
                         std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    inbox_.push_back(std::move(message));
  }
  inbox_cv_.notify_one();
}

void CutEdgeResolver::DrainWorker() {
  if (!worker_started_) return;
  FlushCutOps();
  std::unique_lock<std::mutex> lock(inbox_mutex_);
  drained_cv_.wait(lock, [&] { return inbox_.empty() && !worker_busy_; });
  // The mutex hand-off makes every worker write to the cut structures
  // visible here; the engine thread owns them until the next ship.
}

void CutEdgeResolver::WorkerLoop() {
  std::unique_lock<std::mutex> lock(inbox_mutex_);
  for (;;) {
    while (inbox_.empty() && !worker_stop_) {
      drained_cv_.notify_all();
      inbox_cv_.wait(lock);
    }
    if (inbox_.empty()) break;  // Stop requested and fully drained.
    Message message = std::move(inbox_.front());
    inbox_.pop_front();
    worker_busy_ = true;
    lock.unlock();
    Consume(message);
    lock.lock();
    worker_busy_ = false;
  }
  drained_cv_.notify_all();
}

void CutEdgeResolver::Consume(Message& message) {
  // Conflict status is a pure function of the overlay and the cut
  // adjacency, so rechecks are deferred to the end of the message: each
  // op marks the vertices whose status it may have changed, and every
  // marked vertex is rechecked exactly once after all of the message's
  // mutations applied. Ops inside one block touch heavily overlapping
  // neighborhoods (a shard's transition batch walks one region of the
  // graph), so the dedup removes most of the consumption cost; nothing
  // observes the conflict set mid-message — the engine thread only reads
  // it after DrainWorker, and a drain ends on a message boundary.
  dirty_.clear();
  for (const Transition& t : message.transitions) {
    EnsureCutCapacity(t.v);
    base_[t.v] = t.in;
    // The flip changes v's own conflict status and possibly every cut
    // neighbor's (v is the neighbor they conflict through).
    MarkDirty(t.v);
    for (const Half& h : adjacency_[t.v]) MarkDirty(h.to);
  }
  for (const CutOp& op : message.cut_ops) {
    switch (op.kind) {
      case CutOp::Kind::kAddEdge:
        ApplyAddCutEdge(op.u, op.v);
        break;
      case CutOp::Kind::kRemoveEdge:
        ApplyRemoveCutEdge(op.u, op.v);
        break;
      case CutOp::Kind::kDropVertex:
        ApplyDropVertex(op.u);
        break;
    }
  }
  for (const VertexId v : dirty_) {
    dirty_flag_[v] = 0;
    RecheckConflict(v);
  }
  if (!message.transitions.empty()) {
    transitions_consumed_.fetch_add(
        static_cast<int64_t>(message.transitions.size()),
        std::memory_order_relaxed);
  }
  backlog_ops_.fetch_sub(
      static_cast<int64_t>(message.transitions.size() +
                           message.cut_ops.size()),
      std::memory_order_relaxed);
}

void CutEdgeResolver::ApplyAddCutEdge(VertexId u, VertexId v) {
  EnsureCutCapacity(u > v ? u : v);
  InsertEdgeHalves(u, v);
  MarkDirty(u);
  MarkDirty(v);
}

void CutEdgeResolver::ApplyRemoveCutEdge(VertexId u, VertexId v) {
  EnsureCutCapacity(u > v ? u : v);
  RemoveEdgeHalves(u, v);
  MarkDirty(u);
  MarkDirty(v);
}

void CutEdgeResolver::ApplyDropVertex(VertexId v) {
  EnsureCutCapacity(v);
  // base_[v] deliberately stays: membership is owned by the transition
  // stream (every maintainer MoveOuts a member before deleting it), and
  // with id recycling this drop can be consumed after the recycled
  // vertex's MoveIn — zeroing here would erase live state.
  MarkDirty(v);
  for (const Half& h : adjacency_[v]) MarkDirty(h.to);
  DropVertexEdges(v);
}

void CutEdgeResolver::RecheckConflict(VertexId v) {
  bool conflicted = false;
  if (base_[v]) {
    for (const Half& h : adjacency_[v]) {
      if (base_[h.to]) {
        conflicted = true;
        break;
      }
    }
  }
  const bool listed = conflict_pos_[v] >= 0;
  if (conflicted == listed) return;
  if (conflicted) {
    conflict_pos_[v] = static_cast<int32_t>(conflict_list_.size());
    conflict_list_.push_back(v);
  } else {
    const int32_t pos = conflict_pos_[v];
    const VertexId moved = conflict_list_.back();
    conflict_list_.pop_back();
    if (moved != v) {
      conflict_list_[pos] = moved;
      conflict_pos_[moved] = pos;
    }
    conflict_pos_[v] = -1;
  }
  standing_conflicts_.store(static_cast<int64_t>(conflict_list_.size()),
                            std::memory_order_relaxed);
}

void CutEdgeResolver::SeedOverlay(
    const std::vector<std::unique_ptr<Shard>>& shards) {
  const int capacity = VertexCapacity();
  if (capacity > 0) EnsureCutCapacity(capacity - 1);
  std::fill(base_.begin(), base_.end(), 0);
  std::fill(conflict_pos_.begin(), conflict_pos_.end(), -1);
  conflict_list_.clear();
  members_.clear();
  for (const auto& shard : shards) {
    shard->maintainer().CollectSolution(&members_);
  }
  for (const VertexId v : members_) base_[v] = 1;
  for (const VertexId v : members_) RecheckConflict(v);
  standing_conflicts_.store(static_cast<int64_t>(conflict_list_.size()),
                            std::memory_order_relaxed);
}

// --- Barrier resolution ------------------------------------------------------

CutEdgeResolver::Resolution CutEdgeResolver::Resolve(
    const PartitionPlan& plan,
    const std::vector<std::unique_ptr<Shard>>& shards) {
  Resolution result;
  const int capacity = VertexCapacity();
  if (capacity > 0) EnsureCutCapacity(capacity - 1);

  // Overlay membership: the union of the shards' local solutions. Every
  // member is alive in its shard graph, and intra-shard independence holds
  // by shard-local invariant; only cut edges can conflict.
  members_.clear();
  for (const auto& shard : shards) {
    shard->maintainer().CollectSolution(&members_);
  }
  in_sol_.assign(static_cast<size_t>(capacity), 0);
  for (const VertexId v : members_) in_sol_[v] = 1;

  // Vertices touching a conflicting cut edge.
  conflicted_.clear();
  int64_t conflict_edges = 0;
  for (const VertexId v : members_) {
    bool has_conflict = false;
    for (const Half& h : adjacency_[v]) {
      if (!in_sol_[h.to]) continue;
      has_conflict = true;
      if (v < h.to) ++conflict_edges;  // Counted once per edge.
    }
    if (has_conflict) conflicted_.push_back(v);
  }
  result.conflicts = conflict_edges;

  // Eviction as a min-degree greedy over the conflicted vertices: unmark
  // them all, then confirm each in ascending total-degree order when no
  // confirmed cut neighbor blocks it (conflicted vertices are shard-local
  // solution members, so intra-shard edges cannot connect two of them —
  // only cut edges need checking). Low-degree vertices — the ones a
  // min-degree greedy would pick — win their conflicts; per-edge eviction
  // in arbitrary order costs several percent of solution quality.
  for (const VertexId v : conflicted_) in_sol_[v] = 0;
  std::sort(conflicted_.begin(), conflicted_.end(),
            [&](VertexId a, VertexId b) {
              const int da = TotalDegree(plan, shards, a);
              const int db = TotalDegree(plan, shards, b);
              return da != db ? da < db : a < b;
            });
  RepairAndPolish(plan, shards, /*restrict_polish=*/false, &result);
  return result;
}

CutEdgeResolver::Resolution CutEdgeResolver::ResolveIncremental(
    const PartitionPlan& plan,
    const std::vector<std::unique_ptr<Shard>>& shards) {
  DYNMIS_DCHECK(BacklogOps() == 0);
  DYNMIS_DCHECK(pending_cut_ops_.empty());
  Resolution result;
  const int capacity = VertexCapacity();
  if (capacity > 0) EnsureCutCapacity(capacity - 1);

  // The worker already holds the overlay (base_) and its exact conflict
  // set; the barrier starts from them instead of re-deriving either. The
  // conflict list is copied because the repair must not disturb the
  // standing state — conflicts are between *shard-local* solutions, which
  // the barrier doesn't change, so they persist across barriers until the
  // shards themselves move.
  in_sol_.assign(base_.begin(), base_.end());
  conflicted_.assign(conflict_list_.begin(), conflict_list_.end());
  int64_t conflict_edges = 0;
  for (const VertexId v : conflicted_) {
    for (const Half& h : adjacency_[v]) {
      // Both endpoints of a conflicting edge are in the conflict set, so
      // counting at the lower endpoint counts each edge once.
      if (in_sol_[h.to] && v < h.to) ++conflict_edges;
    }
  }
  result.conflicts = conflict_edges;

  for (const VertexId v : conflicted_) in_sol_[v] = 0;
  std::sort(conflicted_.begin(), conflicted_.end(),
            [&](VertexId a, VertexId b) {
              const int da = TotalDegree(plan, shards, a);
              const int db = TotalDegree(plan, shards, b);
              return da != db ? da < db : a < b;
            });
  RepairAndPolish(plan, shards, /*restrict_polish=*/true, &result);
  return result;
}

void CutEdgeResolver::RepairAndPolish(
    const PartitionPlan& plan,
    const std::vector<std::unique_ptr<Shard>>& shards, bool restrict_polish,
    Resolution* result) {
  const int capacity = VertexCapacity();

  // Confirm pass (conflicted_ sorted ascending by total degree, all
  // unmarked): a vertex re-enters when no already-confirmed cut neighbor
  // blocks it, so low-degree vertices win their conflicts.
  evicted_.clear();
  for (const VertexId v : conflicted_) {
    bool free = true;
    for (const Half& h : adjacency_[v]) free = free && !in_sol_[h.to];
    if (free) {
      in_sol_[v] = 1;
    } else {
      evicted_.push_back(v);
    }
  }
  result->evictions = static_cast<int64_t>(evicted_.size());

  // Re-extension candidates: each eviction plus its full neighborhood
  // (intra neighbors come from the owning shard's graph, cut neighbors
  // from the cut store).
  considered_.assign(static_cast<size_t>(capacity), 0);
  candidates_.clear();
  auto consider = [&](VertexId v) {
    if (!considered_[v]) {
      considered_[v] = 1;
      candidates_.push_back(v);
    }
  };
  for (const VertexId v : evicted_) {
    consider(v);
    shards[plan.ShardOf(v)]->graph().ForEachIncident(
        v, [&](VertexId u, EdgeId) { consider(u); });
    for (const Half& h : adjacency_[v]) consider(h.to);
  }

  // Greedy re-add in min-degree order (the same preference as the greedy
  // quality reference). The overlay only grows here, so one pass suffices:
  // a rejected candidate's blocking neighbor stays in the solution.
  std::sort(candidates_.begin(), candidates_.end(),
            [&](VertexId a, VertexId b) {
              const int da = TotalDegree(plan, shards, a);
              const int db = TotalDegree(plan, shards, b);
              return da != db ? da < db : a < b;
            });
  readded_.clear();
  for (const VertexId c : candidates_) {
    if (in_sol_[c]) continue;
    bool free = true;
    shards[plan.ShardOf(c)]->graph().ForEachIncident(
        c, [&](VertexId u, EdgeId) { free = free && !in_sol_[u]; });
    if (free) {
      for (const Half& h : adjacency_[c]) free = free && !in_sol_[h.to];
    }
    if (!free) continue;
    in_sol_[c] = 1;
    readded_.push_back(c);
    ++result->readded;
  }

  // Polish: 1-swap restoration over the stitched solution (the move behind
  // paper Algorithm 2). The overlay is maximal, but stitching per-shard
  // views can leave a member v whose exclusively-covered neighborhood
  // bar1(v) = {u : N(u) cap I = {v}} holds an independent pair — swapping
  // v out for the pair grows the solution by one. A few passes recover the
  // quality the shard-local view gave up to cut-edge blindness (measured
  // on the hard scenario: 0.95 -> 0.99+ of the greedy reference). Skipped
  // when no cut edges exist: every shard solution is then already
  // k-maximal on its full graph, so no 1-swap can exist — which also keeps
  // the S=1 degenerate engine bit-identical to the single engine.
  if (num_edges_ > 0) {
    auto for_each_neighbor = [&](VertexId v, auto&& fn) {
      shards[plan.ShardOf(v)]->graph().ForEachIncident(
          v, [&](VertexId u, EdgeId) { fn(u); });
      for (const Half& h : adjacency_[v]) fn(h.to);
    };
    auto adjacent = [&](VertexId a, VertexId b) {
      const int sa = plan.ShardOf(a);
      if (sa == plan.ShardOf(b)) return shards[sa]->graph().HasEdge(a, b);
      return HasCutEdge(a, b);
    };
    // count_[u]: solution neighbors of u (members have 0 by
    // independence). One eager pass over the members' neighborhoods
    // materializes every count, and each polish mutation keeps them
    // exact — so the bar1 collection below reads counts in O(1) instead
    // of rescanning the neighborhood of every vertex it visits, which
    // was the dominant barrier cost (deg^2 per polished member).
    count_.assign(static_cast<size_t>(capacity), 0);
    for (VertexId v = 0; v < capacity; ++v) {
      if (!in_sol_[v]) continue;
      for_each_neighbor(v, [&](VertexId u) { ++count_[u]; });
    }
    auto bump = [&](VertexId u, int32_t delta) { count_[u] += delta; };
    auto add = [&](VertexId a) {
      in_sol_[a] = 1;
      for_each_neighbor(a, [&](VertexId u) { bump(u, 1); });
    };

    // The active pool: members the polish will visit. Restricted mode
    // takes cut-incident members (cut-blindness swaps live there) plus
    // every member within distance 2 of a repair change (the only places
    // bar1 sets moved — shard solutions are locally swap-optimal, so
    // profitable swaps cannot hide elsewhere); full mode takes everyone.
    // Vertices added by swaps join the pool for later passes.
    active_.assign(static_cast<size_t>(capacity), 0);
    polish_members_.clear();
    auto activate = [&](VertexId v) {
      if (in_sol_[v] && !active_[v]) {
        active_[v] = 1;
        polish_members_.push_back(v);
      }
    };
    // When the repair changed a large fraction of the graph, the
    // distance-2 closure below would activate nearly every member anyway
    // and the seeding sweep is pure overhead — take the full pool
    // directly. The threshold depends only on this barrier's repair
    // (itself a pure function of the shard states and the cut edges), so
    // the pool stays replay- and cadence-invariant; and since the
    // restricted pool is sound (no profitable swap outside it), widening
    // to the full pool never changes the outcome, only the cost.
    const bool widespread_repair =
        8 * (evicted_.size() + readded_.size()) >=
        static_cast<size_t>(num_vertices_);
    if (restrict_polish && !widespread_repair) {
      for (VertexId v = 0; v < capacity; ++v) {
        if (in_sol_[v] && !adjacency_[v].empty()) activate(v);
      }
      // Distance-2 activation around every repair change. Change
      // neighborhoods overlap heavily (an eviction and the vertices
      // re-added around it share most of their surroundings), so each
      // vertex's adjacency is expanded at most once per role — seeded_
      // for the distance-1 sweep, expanded_ for the distance-2 sweep —
      // bounding the whole pass by one edge scan regardless of how many
      // changes a barrier repairs. The activated set is identical to the
      // naive per-seed traversal; only duplicate walks are skipped.
      seeded_.assign(static_cast<size_t>(capacity), 0);
      expanded_.assign(static_cast<size_t>(capacity), 0);
      auto seed = [&](VertexId s) {
        activate(s);
        if (seeded_[s]) return;
        seeded_[s] = 1;
        for_each_neighbor(s, [&](VertexId n) {
          activate(n);
          if (expanded_[n]) return;
          expanded_[n] = 1;
          for_each_neighbor(n, [&](VertexId w) { activate(w); });
        });
      };
      for (const VertexId v : evicted_) seed(v);
      for (const VertexId v : readded_) seed(v);
    } else {
      for (VertexId v = 0; v < capacity; ++v) activate(v);
    }

    constexpr int kMaxPasses = 3;
    constexpr size_t kPairPool = 16;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
      // Iterate the pool's current members in ascending id order — a
      // canonical order, so the outcome never depends on how the pool
      // was discovered.
      members_.clear();
      for (const VertexId v : polish_members_) {
        if (in_sol_[v]) members_.push_back(v);
      }
      std::sort(members_.begin(), members_.end());
      int64_t swaps_this_pass = 0;
      for (const VertexId v : members_) {
        if (!in_sol_[v]) continue;  // Swapped out earlier this pass.
        bar1_.clear();
        for_each_neighbor(v, [&](VertexId u) {
          // count == 1 and adjacent to the member v: v is u's only
          // solution neighbor.
          if (count_[u] == 1) bar1_.push_back(u);
        });
        if (bar1_.size() < 2) continue;
        // Min-degree order: the swap prefers the vertices a min-degree
        // greedy would keep. Only the first kPairPool entries enter the
        // quadratic pair search (bounding hub-sized bar1 sets), but the
        // FULL list stays: every exclusively-covered neighbor loses its
        // cover when v leaves and must get the chance to rejoin below —
        // dropping the tail here would leave it uncovered and break the
        // maximality guarantee.
        std::sort(bar1_.begin(), bar1_.end(), [&](VertexId a, VertexId b) {
          const int da = TotalDegree(plan, shards, a);
          const int db = TotalDegree(plan, shards, b);
          return da != db ? da < db : a < b;
        });
        const size_t pool = std::min(bar1_.size(), kPairPool);
        VertexId first = kInvalidVertex;
        VertexId second = kInvalidVertex;
        for (size_t i = 0; i < pool && second == kInvalidVertex; ++i) {
          for (size_t j = i + 1; j < pool; ++j) {
            if (!adjacent(bar1_[i], bar1_[j])) {
              first = bar1_[i];
              second = bar1_[j];
              break;
            }
          }
        }
        if (second == kInvalidVertex) continue;  // The pool is a clique.
        in_sol_[v] = 0;
        for_each_neighbor(v, [&](VertexId u) { bump(u, -1); });
        add(first);
        add(second);
        activate(first);
        activate(second);
        // Every other exclusively-covered neighbor freed by v's departure
        // and not blocked by the pair joins too (full list, not the pool:
        // anything left at count 0 would make the result non-maximal).
        for (const VertexId w : bar1_) {
          if (!in_sol_[w] && count_[w] == 0) {
            add(w);
            activate(w);
          }
        }
        ++swaps_this_pass;
      }
      result->swaps += swaps_this_pass;
      if (swaps_this_pass == 0) break;
    }
  }

  result->solution.reserve(static_cast<size_t>(num_vertices_));
  for (VertexId v = 0; v < capacity; ++v) {
    if (in_sol_[v]) result->solution.push_back(v);
  }
}

// --- Snapshots ---------------------------------------------------------------

void CutEdgeResolver::SaveTo(SnapshotWriter* w) const {
  w->BeginSection("state");
  w->PutI32(VertexCapacity());
  w->PutI32(num_vertices_);
  w->PutI64(num_edges_);
  w->PutU8Array(alive_);
  w->PutI32Array(free_vertices_);
  std::vector<int32_t> flat;
  flat.reserve(2 * static_cast<size_t>(num_edges_));
  for (const auto& [u, v] : CutEdgeList()) {
    flat.push_back(u);
    flat.push_back(v);
  }
  w->PutI32Array(flat);
  w->EndSection();
}

bool CutEdgeResolver::LoadFrom(SnapshotReader* r) {
  DYNMIS_CHECK(!worker_started_);
  if (!r->OpenSection("state")) return false;
  auto fail = [&](const char* message) {
    r->Fail(std::string("snapshot: cut state: ") + message);
    return false;
  };
  const int32_t capacity = r->GetI32();
  const int32_t nv = r->GetI32();
  const int64_t ne = r->GetI64();
  std::vector<uint8_t> alive;
  std::vector<int32_t> free_list, flat;
  if (!r->GetU8Array(&alive) || !r->GetI32Array(&free_list) ||
      !r->GetI32Array(&flat)) {
    return false;
  }
  if (!r->AtSectionEnd()) return fail("trailing bytes after the last field");
  if (capacity < 0 || nv < 0 || nv > capacity || ne < 0) {
    return fail("counts out of range");
  }
  if (alive.size() != static_cast<size_t>(capacity)) {
    return fail("alive array size mismatch");
  }
  int64_t alive_count = 0;
  for (const uint8_t flag : alive) {
    if (flag > 1) return fail("alive flag out of range");
    alive_count += flag;
  }
  if (alive_count != nv) return fail("alive-vertex count mismatch");
  if (free_list.size() != static_cast<size_t>(capacity - nv)) {
    return fail("free-vertex list size mismatch");
  }
  std::vector<uint8_t> seen(static_cast<size_t>(capacity), 0);
  for (const int32_t v : free_list) {
    if (v < 0 || v >= capacity || alive[v] || seen[v]) {
      return fail("free-vertex list entry invalid or duplicated");
    }
    seen[v] = 1;
  }
  if (flat.size() != 2 * static_cast<size_t>(ne)) {
    return fail("edge array size mismatch");
  }
  for (size_t i = 0; i + 1 < flat.size(); i += 2) {
    const int32_t u = flat[i];
    const int32_t v = flat[i + 1];
    if (u < 0 || v < 0 || u >= capacity || v >= capacity || u >= v) {
      return fail("edge endpoints out of range or unordered");
    }
    if (!alive[u] || !alive[v]) {
      return fail("edge incident to a dead vertex");
    }
    if (i >= 2 && !(flat[i - 2] < u || (flat[i - 2] == u && flat[i - 1] < v))) {
      return fail("edges not strictly sorted (duplicate or disorder)");
    }
  }

  // Adopt and rebuild the derived structures. The overlay and conflict set
  // reset empty: a snapshot load restores maintainer solutions without
  // MoveIns, so the engine re-seeds via SeedOverlay before StartWorker.
  adjacency_.assign(static_cast<size_t>(capacity), {});
  base_.assign(static_cast<size_t>(capacity), 0);
  conflict_pos_.assign(static_cast<size_t>(capacity), -1);
  conflict_list_.clear();
  standing_conflicts_.store(0, std::memory_order_relaxed);
  alive_ = std::move(alive);
  free_vertices_ = std::move(free_list);
  num_vertices_ = nv;
  num_edges_ = 0;
  for (size_t i = 0; i + 1 < flat.size(); i += 2) {
    AddCutEdge(flat[i], flat[i + 1]);
  }
  return true;
}

size_t CutEdgeResolver::MemoryUsageBytes() const {
  return NestedVectorBytes(adjacency_) + VectorBytes(alive_) +
         VectorBytes(free_vertices_) + VectorBytes(base_) +
         VectorBytes(conflict_pos_) + VectorBytes(conflict_list_) +
         VectorBytes(in_sol_) + VectorBytes(considered_) +
         VectorBytes(members_) + VectorBytes(conflicted_) +
         VectorBytes(evicted_) + VectorBytes(readded_) +
         VectorBytes(candidates_) + VectorBytes(polish_members_) +
         VectorBytes(count_) + VectorBytes(seeded_) + VectorBytes(expanded_) +
         VectorBytes(dirty_) + VectorBytes(dirty_flag_) +
         VectorBytes(active_) + VectorBytes(bar1_);
}

}  // namespace dynmis
