#include "src/shard/cut_edge_resolver.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/memory.h"

namespace dynmis {

CutEdgeResolver::CutEdgeResolver(int initial_vertices) {
  DYNMIS_CHECK_GE(initial_vertices, 0);
  adjacency_.resize(static_cast<size_t>(initial_vertices));
  alive_.assign(static_cast<size_t>(initial_vertices), 1);
  num_vertices_ = initial_vertices;
}

VertexId CutEdgeResolver::AddVertex() {
  VertexId v;
  if (!free_vertices_.empty()) {
    v = free_vertices_.back();
    free_vertices_.pop_back();
  } else {
    v = static_cast<VertexId>(adjacency_.size());
    adjacency_.emplace_back();
    alive_.push_back(0);
  }
  alive_[v] = 1;
  ++num_vertices_;
  return v;
}

void CutEdgeResolver::RemoveVertex(VertexId v) {
  DYNMIS_DCHECK(IsVertexAlive(v));
  // Mirror fix-ups may rewrite adjacency_[v] entries' mirrors, so read each
  // entry fresh by index.
  for (size_t i = 0; i < adjacency_[v].size(); ++i) {
    const Half h = adjacency_[v][i];
    SwapRemoveHalf(h.to, h.mirror);
    --num_edges_;
  }
  adjacency_[v].clear();
  alive_[v] = 0;
  free_vertices_.push_back(v);
  --num_vertices_;
}

void CutEdgeResolver::AddCutEdge(VertexId u, VertexId v) {
  DYNMIS_DCHECK(IsVertexAlive(u));
  DYNMIS_DCHECK(IsVertexAlive(v));
  DYNMIS_DCHECK(!HasCutEdge(u, v));
  adjacency_[u].push_back(
      Half{v, static_cast<int32_t>(adjacency_[v].size())});
  adjacency_[v].push_back(
      Half{u, static_cast<int32_t>(adjacency_[u].size()) - 1});
  ++num_edges_;
}

void CutEdgeResolver::RemoveCutEdge(VertexId u, VertexId v) {
  // Scan the smaller endpoint's contiguous array; its mirror locates the
  // far entry without touching the (possibly much longer) far array.
  if (CutDegree(v) < CutDegree(u)) std::swap(u, v);
  std::vector<Half>& list = adjacency_[u];
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].to != v) continue;
    const int32_t mirror = list[i].mirror;
    SwapRemoveHalf(u, static_cast<int32_t>(i));
    SwapRemoveHalf(v, mirror);
    --num_edges_;
    return;
  }
  DYNMIS_DCHECK(false && "RemoveCutEdge: edge not present");
}

void CutEdgeResolver::SwapRemoveHalf(VertexId owner, int32_t index) {
  std::vector<Half>& list = adjacency_[owner];
  const Half moved = list.back();
  list.pop_back();
  if (index != static_cast<int32_t>(list.size())) {
    list[index] = moved;
    adjacency_[moved.to][moved.mirror].mirror = index;
  }
}

std::vector<std::pair<VertexId, VertexId>> CutEdgeResolver::CutEdgeList()
    const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (VertexId u = 0; u < VertexCapacity(); ++u) {
    for (const Half& h : adjacency_[u]) {
      if (u < h.to) edges.emplace_back(u, h.to);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

CutEdgeResolver::Resolution CutEdgeResolver::Resolve(
    const PartitionPlan& plan,
    const std::vector<std::unique_ptr<Shard>>& shards) {
  Resolution result;
  const int capacity = VertexCapacity();

  // Overlay membership: the union of the shards' local solutions. Every
  // member is alive in its shard graph, and intra-shard independence holds
  // by shard-local invariant; only cut edges can conflict.
  members_.clear();
  for (const auto& shard : shards) {
    shard->maintainer().CollectSolution(&members_);
  }
  in_sol_.assign(static_cast<size_t>(capacity), 0);
  for (const VertexId v : members_) in_sol_[v] = 1;

  // Vertices touching a conflicting cut edge.
  conflicted_.clear();
  int64_t conflict_edges = 0;
  for (const VertexId v : members_) {
    bool has_conflict = false;
    for (const Half& h : adjacency_[v]) {
      if (!in_sol_[h.to]) continue;
      has_conflict = true;
      if (v < h.to) ++conflict_edges;  // Counted once per edge.
    }
    if (has_conflict) conflicted_.push_back(v);
  }
  result.conflicts = conflict_edges;

  // Eviction as a min-degree greedy over the conflicted vertices: unmark
  // them all, then confirm each in ascending total-degree order when no
  // confirmed cut neighbor blocks it (conflicted vertices are shard-local
  // solution members, so intra-shard edges cannot connect two of them —
  // only cut edges need checking). Low-degree vertices — the ones a
  // min-degree greedy would pick — win their conflicts; per-edge eviction
  // in arbitrary order costs several percent of solution quality.
  for (const VertexId v : conflicted_) in_sol_[v] = 0;
  std::sort(conflicted_.begin(), conflicted_.end(),
            [&](VertexId a, VertexId b) {
              const int da = TotalDegree(plan, shards, a);
              const int db = TotalDegree(plan, shards, b);
              return da != db ? da < db : a < b;
            });
  evicted_.clear();
  for (const VertexId v : conflicted_) {
    bool free = true;
    for (const Half& h : adjacency_[v]) free = free && !in_sol_[h.to];
    if (free) {
      in_sol_[v] = 1;
    } else {
      evicted_.push_back(v);
    }
  }
  result.evictions = static_cast<int64_t>(evicted_.size());

  // Re-extension candidates: each eviction plus its full neighborhood
  // (intra neighbors come from the owning shard's graph — the hints fed
  // back to the shards — cut neighbors from the cut store).
  considered_.assign(static_cast<size_t>(capacity), 0);
  candidates_.clear();
  auto consider = [&](VertexId v) {
    if (!considered_[v]) {
      considered_[v] = 1;
      candidates_.push_back(v);
    }
  };
  for (const VertexId v : evicted_) {
    consider(v);
    shards[plan.ShardOf(v)]->graph().ForEachIncident(
        v, [&](VertexId u, EdgeId) { consider(u); });
    for (const Half& h : adjacency_[v]) consider(h.to);
  }

  // Greedy re-add in min-degree order (the same preference as the greedy
  // quality reference). The overlay only grows here, so one pass suffices:
  // a rejected candidate's blocking neighbor stays in the solution.
  std::sort(candidates_.begin(), candidates_.end(),
            [&](VertexId a, VertexId b) {
              const int da = TotalDegree(plan, shards, a);
              const int db = TotalDegree(plan, shards, b);
              return da != db ? da < db : a < b;
            });
  for (const VertexId c : candidates_) {
    if (in_sol_[c]) continue;
    bool free = true;
    shards[plan.ShardOf(c)]->graph().ForEachIncident(
        c, [&](VertexId u, EdgeId) { free = free && !in_sol_[u]; });
    if (free) {
      for (const Half& h : adjacency_[c]) free = free && !in_sol_[h.to];
    }
    if (!free) continue;
    in_sol_[c] = 1;
    ++result.readded;
  }

  // Polish: 1-swap restoration over the stitched solution (the move behind
  // paper Algorithm 2). The overlay is maximal, but stitching per-shard
  // views can leave a member v whose exclusively-covered neighborhood
  // bar1(v) = {u : N(u) cap I = {v}} holds an independent pair — swapping
  // v out for the pair grows the solution by one. A few passes recover the
  // quality the shard-local view gave up to cut-edge blindness (measured
  // on the hard scenario: 0.95 -> 0.99+ of the greedy reference). Skipped
  // when no cut edges exist: every shard solution is then already
  // k-maximal on its full graph, so no 1-swap can exist — which also keeps
  // the S=1 degenerate engine bit-identical to the single engine.
  if (num_edges_ > 0) {
    auto for_each_neighbor = [&](VertexId v, auto&& fn) {
      shards[plan.ShardOf(v)]->graph().ForEachIncident(
          v, [&](VertexId u, EdgeId) { fn(u); });
      for (const Half& h : adjacency_[v]) fn(h.to);
    };
    auto adjacent = [&](VertexId a, VertexId b) {
      const int sa = plan.ShardOf(a);
      if (sa == plan.ShardOf(b)) return shards[sa]->graph().HasEdge(a, b);
      return HasCutEdge(a, b);
    };
    // count_[u]: solution neighbors of u (members themselves stay 0).
    count_.assign(static_cast<size_t>(capacity), 0);
    members_.clear();
    for (VertexId v = 0; v < capacity; ++v) {
      if (in_sol_[v]) members_.push_back(v);
    }
    for (const VertexId v : members_) {
      for_each_neighbor(v, [&](VertexId u) { ++count_[u]; });
    }
    auto add = [&](VertexId a) {
      in_sol_[a] = 1;
      for_each_neighbor(a, [&](VertexId u) { ++count_[u]; });
    };
    constexpr int kMaxPasses = 3;
    constexpr size_t kPairPool = 16;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
      int64_t swaps_this_pass = 0;
      if (pass > 0) {
        members_.clear();
        for (VertexId v = 0; v < capacity; ++v) {
          if (in_sol_[v]) members_.push_back(v);
        }
      }
      for (const VertexId v : members_) {
        if (!in_sol_[v]) continue;  // Swapped out earlier this pass.
        bar1_.clear();
        for_each_neighbor(v, [&](VertexId u) {
          // count == 1 and adjacent to the member v: v is u's only
          // solution neighbor.
          if (count_[u] == 1) bar1_.push_back(u);
        });
        if (bar1_.size() < 2) continue;
        // Min-degree order: the swap prefers the vertices a min-degree
        // greedy would keep. Only the first kPairPool entries enter the
        // quadratic pair search (bounding hub-sized bar1 sets), but the
        // FULL list stays: every exclusively-covered neighbor loses its
        // cover when v leaves and must get the chance to rejoin below —
        // dropping the tail here would leave it uncovered and break the
        // maximality guarantee.
        std::sort(bar1_.begin(), bar1_.end(), [&](VertexId a, VertexId b) {
          const int da = TotalDegree(plan, shards, a);
          const int db = TotalDegree(plan, shards, b);
          return da != db ? da < db : a < b;
        });
        const size_t pool = std::min(bar1_.size(), kPairPool);
        VertexId first = kInvalidVertex;
        VertexId second = kInvalidVertex;
        for (size_t i = 0; i < pool && second == kInvalidVertex; ++i) {
          for (size_t j = i + 1; j < pool; ++j) {
            if (!adjacent(bar1_[i], bar1_[j])) {
              first = bar1_[i];
              second = bar1_[j];
              break;
            }
          }
        }
        if (second == kInvalidVertex) continue;  // The pool is a clique.
        in_sol_[v] = 0;
        for_each_neighbor(v, [&](VertexId u) { --count_[u]; });
        add(first);
        add(second);
        // Every other exclusively-covered neighbor freed by v's departure
        // and not blocked by the pair joins too (full list, not the pool:
        // anything left at count 0 would make the result non-maximal).
        for (const VertexId w : bar1_) {
          if (!in_sol_[w] && count_[w] == 0) add(w);
        }
        ++swaps_this_pass;
      }
      result.swaps += swaps_this_pass;
      if (swaps_this_pass == 0) break;
    }
  }

  result.solution.reserve(members_.size());
  for (VertexId v = 0; v < capacity; ++v) {
    if (in_sol_[v]) result.solution.push_back(v);
  }
  return result;
}

void CutEdgeResolver::SaveTo(SnapshotWriter* w) const {
  w->BeginSection("state");
  w->PutI32(VertexCapacity());
  w->PutI32(num_vertices_);
  w->PutI64(num_edges_);
  w->PutU8Array(alive_);
  w->PutI32Array(free_vertices_);
  std::vector<int32_t> flat;
  flat.reserve(2 * static_cast<size_t>(num_edges_));
  for (const auto& [u, v] : CutEdgeList()) {
    flat.push_back(u);
    flat.push_back(v);
  }
  w->PutI32Array(flat);
  w->EndSection();
}

bool CutEdgeResolver::LoadFrom(SnapshotReader* r) {
  if (!r->OpenSection("state")) return false;
  auto fail = [&](const char* message) {
    r->Fail(std::string("snapshot: cut state: ") + message);
    return false;
  };
  const int32_t capacity = r->GetI32();
  const int32_t nv = r->GetI32();
  const int64_t ne = r->GetI64();
  std::vector<uint8_t> alive;
  std::vector<int32_t> free_list, flat;
  if (!r->GetU8Array(&alive) || !r->GetI32Array(&free_list) ||
      !r->GetI32Array(&flat)) {
    return false;
  }
  if (!r->AtSectionEnd()) return fail("trailing bytes after the last field");
  if (capacity < 0 || nv < 0 || nv > capacity || ne < 0) {
    return fail("counts out of range");
  }
  if (alive.size() != static_cast<size_t>(capacity)) {
    return fail("alive array size mismatch");
  }
  int64_t alive_count = 0;
  for (const uint8_t flag : alive) {
    if (flag > 1) return fail("alive flag out of range");
    alive_count += flag;
  }
  if (alive_count != nv) return fail("alive-vertex count mismatch");
  if (free_list.size() != static_cast<size_t>(capacity - nv)) {
    return fail("free-vertex list size mismatch");
  }
  std::vector<uint8_t> seen(static_cast<size_t>(capacity), 0);
  for (const int32_t v : free_list) {
    if (v < 0 || v >= capacity || alive[v] || seen[v]) {
      return fail("free-vertex list entry invalid or duplicated");
    }
    seen[v] = 1;
  }
  if (flat.size() != 2 * static_cast<size_t>(ne)) {
    return fail("edge array size mismatch");
  }
  for (size_t i = 0; i + 1 < flat.size(); i += 2) {
    const int32_t u = flat[i];
    const int32_t v = flat[i + 1];
    if (u < 0 || v < 0 || u >= capacity || v >= capacity || u >= v) {
      return fail("edge endpoints out of range or unordered");
    }
    if (!alive[u] || !alive[v]) {
      return fail("edge incident to a dead vertex");
    }
    if (i >= 2 && !(flat[i - 2] < u || (flat[i - 2] == u && flat[i - 1] < v))) {
      return fail("edges not strictly sorted (duplicate or disorder)");
    }
  }

  // Adopt and rebuild the derived structures.
  adjacency_.assign(static_cast<size_t>(capacity), {});
  alive_ = std::move(alive);
  free_vertices_ = std::move(free_list);
  num_vertices_ = nv;
  num_edges_ = 0;
  for (size_t i = 0; i + 1 < flat.size(); i += 2) {
    AddCutEdge(flat[i], flat[i + 1]);
  }
  return true;
}

size_t CutEdgeResolver::MemoryUsageBytes() const {
  return NestedVectorBytes(adjacency_) + VectorBytes(alive_) +
         VectorBytes(free_vertices_) + VectorBytes(in_sol_) +
         VectorBytes(considered_) +
         VectorBytes(members_) + VectorBytes(conflicted_) +
         VectorBytes(evicted_) + VectorBytes(candidates_) +
         VectorBytes(count_) + VectorBytes(bar1_);
}

}  // namespace dynmis
