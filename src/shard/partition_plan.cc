#include "src/shard/partition_plan.h"

#include <algorithm>

namespace dynmis {
namespace {

// Balance-cap slack of the streaming-greedy assignment: a shard may hold at
// most kBalanceSlackNum/kBalanceSlackDen times the ideal even share before
// AssignVertex stops following the plurality there. Integer arithmetic so
// the cap (and therefore every placement) is exactly reproducible.
constexpr int64_t kBalanceSlackNum = 6;
constexpr int64_t kBalanceSlackDen = 5;
// Floor on the cap so tiny graphs don't ping-pong assignments on rounding.
constexpr int64_t kBalanceCapFloor = 16;

}  // namespace

std::string PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kHash:
      return "hash";
    case PartitionStrategy::kRange:
      return "range";
    case PartitionStrategy::kLocality:
      return "locality";
  }
  return "hash";
}

bool ParsePartitionStrategy(const std::string& name,
                            PartitionStrategy* strategy) {
  if (name == "hash") {
    *strategy = PartitionStrategy::kHash;
  } else if (name == "range") {
    *strategy = PartitionStrategy::kRange;
  } else if (name == "locality") {
    *strategy = PartitionStrategy::kLocality;
  } else {
    return false;
  }
  return true;
}

PartitionPlan PartitionPlan::Hash(int num_shards) {
  DYNMIS_CHECK_GE(num_shards, 1);
  return PartitionPlan(PartitionStrategy::kHash, num_shards, 1);
}

PartitionPlan PartitionPlan::Range(int num_shards, int expected_vertices) {
  DYNMIS_CHECK_GE(num_shards, 1);
  const int spread = expected_vertices > num_shards ? expected_vertices
                                                    : num_shards;
  const int block = (spread + num_shards - 1) / num_shards;
  return PartitionPlan(PartitionStrategy::kRange, num_shards, block);
}

PartitionPlan PartitionPlan::Locality(int num_shards) {
  DYNMIS_CHECK_GE(num_shards, 1);
  return PartitionPlan(PartitionStrategy::kLocality, num_shards, 1);
}

int PartitionPlan::AssignVertex(VertexId v,
                                const std::vector<VertexId>& neighbors) {
  DYNMIS_CHECK(strategy_ == PartitionStrategy::kLocality);
  DYNMIS_CHECK_GE(v, 0);
  if (v >= static_cast<VertexId>(owners_.size())) {
    owners_.resize(static_cast<size_t>(v) + 1, -1);
  }
  DYNMIS_CHECK(owners_[v] < 0);

  // Plurality count over the already-owned neighbors (a neighbor list may
  // legitimately reference the id being inserted in pathological client
  // input; unowned ids simply don't vote).
  for (const int s : counted_shards_) counts_[s] = 0;
  counted_shards_.clear();
  for (const VertexId n : neighbors) {
    if (n == v || !HasOwner(n)) continue;
    const int s = owners_[n];
    if (counts_[s] == 0) counted_shards_.push_back(s);
    ++counts_[s];
  }

  const int64_t cap =
      std::max(kBalanceCapFloor,
               ((alive_total_ + 1) * kBalanceSlackNum +
                static_cast<int64_t>(num_shards_) * kBalanceSlackDen - 1) /
                   (static_cast<int64_t>(num_shards_) * kBalanceSlackDen));

  // Highest neighbor count below the cap wins; ties go to the lower shard
  // id. With no eligible voted shard, fall back to the least-loaded shard.
  int best = -1;
  int32_t best_count = 0;
  for (int s = 0; s < num_shards_; ++s) {
    if (counts_[s] <= 0 || sizes_[s] >= cap) continue;
    if (counts_[s] > best_count) {
      best = s;
      best_count = counts_[s];
    }
  }
  if (best < 0) {
    best = 0;
    for (int s = 1; s < num_shards_; ++s) {
      if (sizes_[s] < sizes_[best]) best = s;
    }
  }
  owners_[v] = best;
  return best;
}

}  // namespace dynmis
