#include "src/shard/partition_plan.h"

namespace dynmis {

std::string PartitionStrategyName(PartitionStrategy strategy) {
  return strategy == PartitionStrategy::kHash ? "hash" : "range";
}

PartitionPlan PartitionPlan::Hash(int num_shards) {
  DYNMIS_CHECK_GE(num_shards, 1);
  return PartitionPlan(PartitionStrategy::kHash, num_shards, 1);
}

PartitionPlan PartitionPlan::Range(int num_shards, int expected_vertices) {
  DYNMIS_CHECK_GE(num_shards, 1);
  const int spread = expected_vertices > num_shards ? expected_vertices
                                                    : num_shards;
  const int block = (spread + num_shards - 1) / num_shards;
  return PartitionPlan(PartitionStrategy::kRange, num_shards, block);
}

}  // namespace dynmis
