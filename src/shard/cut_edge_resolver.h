// CutEdgeResolver: the sequential half of the sharded engine. It owns the
// global vertex id space and every cross-shard ("cut") edge — cut edges
// never enter a shard's graph, so shard maintainers stay oblivious to them
// and all cross-shard coordination concentrates here.
//
// Because the resolver observes every vertex add/remove in global op order
// and mirrors DynamicGraph's id recycling exactly (LIFO free list), its id
// allocation matches what a single un-sharded engine replaying the same
// stream would assign — which is what keeps pre-drawn update sequences and
// the single-engine comparison baselines replayable against a sharded
// engine.
//
// Cut edges live in a purpose-built store rather than a DynamicGraph:
// unordered per-vertex neighbor arrays with swap-remove deletion, where
// each 8-byte entry carries the edge's position in the other endpoint's
// array ("mirror index"). A deletion scans only the smaller endpoint's
// contiguous array — eight entries per cache line, against one cache miss
// per step for the intrusive-list graph — and finds the far side's entry
// through the mirror in O(1); every mutation is allocation-free in steady
// state and involves no hashing. This matters because at S shards roughly
// (1 - 1/S) of all edge updates are cut ops executed inline on the engine
// thread: with the general-purpose graph (adjacency splice + degree
// histogram) they were the sequential bottleneck that flattened the shard
// scaling curve. Neighbor iteration order is NOT canonical (swap-remove
// reorders), which is safe because Resolve() sorts every order-sensitive
// working set before use — its output is a pure, order-insensitive
// function of the edge set and the shard states.
//
// Resolve() is the barrier pass: with every shard worker idle, it overlays
// the shards' locally-maximal solutions and repairs them into a maximal
// independent set of the global graph in four deterministic steps —
// conflict collection over cut edges, min-degree greedy eviction, re-
// extension of the evicted neighborhoods (the hints fed back to the owning
// shards' graphs), and a bounded 1-swap polish (paper Algorithm 2's move)
// that recovers the quality the shard-local views give up to cut-edge
// blindness. Nothing is written back into the shards — a resolution is a
// pure function of the shard states, so replay stays deterministic no
// matter when barriers run.

#ifndef DYNMIS_SRC_SHARD_CUT_EDGE_RESOLVER_H_
#define DYNMIS_SRC_SHARD_CUT_EDGE_RESOLVER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/io/snapshot.h"
#include "src/shard/partition_plan.h"
#include "src/shard/shard.h"

namespace dynmis {

class CutEdgeResolver {
 public:
  // Starts with vertices 0..initial_vertices-1 alive and no cut edges.
  explicit CutEdgeResolver(int initial_vertices);

  // --- Global id space (engine thread, applied in global op order) ---------

  VertexId AddVertex();
  // Frees the id for recycling and drops its cut edges.
  void RemoveVertex(VertexId v);
  bool IsVertexAlive(VertexId v) const {
    return v >= 0 && v < VertexCapacity() && alive_[v];
  }

  void AddCutEdge(VertexId u, VertexId v);
  void RemoveCutEdge(VertexId u, VertexId v);
  bool HasCutEdge(VertexId u, VertexId v) const {
    if (CutDegree(v) < CutDegree(u)) std::swap(u, v);
    for (const Half& h : adjacency_[u]) {
      if (h.to == v) return true;
    }
    return false;
  }

  int CutDegree(VertexId v) const {
    return static_cast<int>(adjacency_[v].size());
  }
  // Calls fn(neighbor) for every cut edge incident to `v` (unordered).
  template <typename Fn>
  void ForEachCutNeighbor(VertexId v, Fn&& fn) const {
    for (const Half& h : adjacency_[v]) fn(h.to);
  }
  // All cut edges as (u < v) pairs, sorted (snapshot/validation path).
  std::vector<std::pair<VertexId, VertexId>> CutEdgeList() const;

  int64_t NumCutEdges() const { return num_edges_; }
  int NumVertices() const { return num_vertices_; }
  int VertexCapacity() const { return static_cast<int>(alive_.size()); }

  // The dead ids in recycle order (LIFO, matching DynamicGraph's free
  // list). ShardedMisEngine::BuildGlobalGraph uses this to reconstruct a
  // standalone graph whose future AddVertex() calls assign the same ids
  // this resolver will.
  const std::vector<VertexId>& FreeVertexIds() const { return free_vertices_; }

  // --- Barrier resolution ---------------------------------------------------

  struct Resolution {
    // The verified global solution, sorted by id.
    std::vector<VertexId> solution;
    int64_t conflicts = 0;   // Conflicting cut edges found this pass.
    int64_t evictions = 0;   // Vertices evicted from the overlay.
    int64_t readded = 0;     // Vertices re-added by the extension pass.
    int64_t swaps = 0;       // 1-swaps performed by the polish pass.
  };

  // Runs the resolution pass described above. Every worker in `shards` must
  // be idle (the engine thread calls this only after a full barrier).
  Resolution Resolve(const PartitionPlan& plan,
                     const std::vector<std::unique_ptr<Shard>>& shards);

  // --- Snapshots ------------------------------------------------------------

  // Persists the id space and cut edges as section "state" (the caller
  // scopes it with a section prefix). The free list travels verbatim so a
  // restored engine recycles ids in the identical order.
  void SaveTo(SnapshotWriter* w) const;
  // Restores from "state" after full validation (bounds, aliveness,
  // duplicate edges, free-list exactness). On success the adjacency and
  // index are rebuilt from scratch. Returns false with the reader failed
  // on any violation.
  bool LoadFrom(SnapshotReader* r);

  size_t MemoryUsageBytes() const;

 private:
  // One direction of a cut edge: the far endpoint plus the position of the
  // reverse entry inside the far endpoint's adjacency array.
  struct Half {
    VertexId to;
    int32_t mirror;
  };

  // Swap-removes adjacency_[owner][index], repairing the mirror of the
  // entry moved into the hole.
  void SwapRemoveHalf(VertexId owner, int32_t index);

  // Degree of `v` in the global graph: intra-shard + cut.
  int TotalDegree(const PartitionPlan& plan,
                  const std::vector<std::unique_ptr<Shard>>& shards,
                  VertexId v) const {
    return shards[plan.ShardOf(v)]->graph().Degree(v) + CutDegree(v);
  }

  std::vector<std::vector<Half>> adjacency_;
  std::vector<uint8_t> alive_;
  std::vector<VertexId> free_vertices_;
  int num_vertices_ = 0;
  int64_t num_edges_ = 0;

  // Reusable scratch (sized to vertex capacity / pass volume).
  std::vector<uint8_t> in_sol_;
  std::vector<uint8_t> considered_;
  std::vector<VertexId> members_;
  std::vector<VertexId> conflicted_;
  std::vector<VertexId> evicted_;
  std::vector<VertexId> candidates_;
  std::vector<int32_t> count_;
  std::vector<VertexId> bar1_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_SHARD_CUT_EDGE_RESOLVER_H_
