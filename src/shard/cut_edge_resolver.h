// CutEdgeResolver: the cross-shard half of the sharded engine. It owns the
// global vertex id space and every cross-shard ("cut") edge — cut edges
// never enter a shard's graph, so shard maintainers stay oblivious to them
// and all cross-shard coordination concentrates here.
//
// Because the resolver observes every vertex add/remove in global op order
// and mirrors DynamicGraph's id recycling exactly (LIFO free list), its id
// allocation matches what a single un-sharded engine replaying the same
// stream would assign — which is what keeps pre-drawn update sequences and
// the single-engine comparison baselines replayable against a sharded
// engine.
//
// Cut edges live in a purpose-built store rather than a DynamicGraph:
// unordered per-vertex neighbor arrays with swap-remove deletion, where
// each 8-byte entry carries the edge's position in the other endpoint's
// array ("mirror index"). A deletion scans only the smaller endpoint's
// contiguous array and finds the far side's entry through the mirror in
// O(1); every mutation is allocation-free in steady state and involves no
// hashing. Neighbor iteration order is NOT canonical (swap-remove
// reorders), which is safe because the resolution passes sort every
// order-sensitive working set before use — their output is a pure,
// order-insensitive function of the edge set and the shard states.
//
// Two operating modes:
//
//  * Sequential (the PR 4 design, kept as the fallback for maintainers
//    that cannot report status transitions): cut-edge mutations apply
//    inline on the engine thread, and Resolve() recomputes the overlay
//    and its conflicts from scratch at every barrier.
//
//  * Asynchronous (StartWorker()): a dedicated worker thread owns the cut
//    adjacency and a standing overlay of the shards' local solutions. The
//    engine thread ships cut-edge ops in blocks; every shard worker ships
//    its maintainer's MoveIn/MoveOut status transitions as blocks are
//    applied (libgrape-lite's fragment-local inner/outer-vertex idiom:
//    asynchronous message-driven repair instead of global supersteps).
//    The worker folds both streams into the overlay and continuously
//    maintains the standing conflict set — the cut edges whose endpoints
//    are both locally in-solution — so a barrier only has to finalize a
//    mostly-clean frontier. Per-vertex exactness after a drain follows
//    from each vertex having a single transition producer (its owner
//    shard, in that shard's deterministic order) and cut ops having a
//    single producer (the engine thread); cross-producer interleaving
//    only perturbs transient states that every message re-checks.
//
// Threading contract (async mode): between a Ship*/Flush and the return of
// DrainWorker() the worker owns the cut adjacency, overlay, and conflict
// set exclusively; after DrainWorker() returns (and until the next ship)
// the engine thread may read and mutate them directly — the inbox mutex
// carries the happens-before edge, exactly like Shard's queue contract.
//
// ResolveIncremental() is the async barrier pass: with every shard worker
// idle and the worker drained, it repairs the standing conflict set into a
// verified maximal independent set of the global graph — min-degree greedy
// confirm over the conflicted vertices, re-extension of the evicted
// neighborhoods, and a bounded 1-swap polish (paper Algorithm 2's move)
// restricted to the members the repair could have affected (cut-incident
// members plus the distance-2 neighborhoods of the repair's evictions and
// re-additions; shard solutions are locally swap-optimal, so profitable
// swaps cannot hide elsewhere). Every working set is sorted before use, so
// the result is a pure function of the overlay and the edge sets — thread
// scheduling, flush and block boundaries provably don't matter, exactly as
// for the sequential Resolve().

#ifndef DYNMIS_SRC_SHARD_CUT_EDGE_RESOLVER_H_
#define DYNMIS_SRC_SHARD_CUT_EDGE_RESOLVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/io/snapshot.h"
#include "src/shard/partition_plan.h"
#include "src/shard/shard.h"

namespace dynmis {

class CutEdgeResolver {
 public:
  // Maintainer status transitions, shipped by shard workers (declared in
  // shard.h, next to their producer).
  using Transition = StatusTransition;
  using TransitionBatch = StatusTransitionBatch;

  // Starts with vertices 0..initial_vertices-1 alive and no cut edges.
  explicit CutEdgeResolver(int initial_vertices);
  ~CutEdgeResolver();

  CutEdgeResolver(const CutEdgeResolver&) = delete;
  CutEdgeResolver& operator=(const CutEdgeResolver&) = delete;

  // --- Global id space (engine thread, applied in global op order) ---------

  VertexId AddVertex();
  // Frees the id for recycling and drops its cut edges (inline in
  // sequential mode; via a shipped op in async mode).
  void RemoveVertex(VertexId v);
  bool IsVertexAlive(VertexId v) const {
    return v >= 0 && v < VertexCapacity() && alive_[v];
  }

  // Cut-edge mutations: inline in sequential mode, buffered into a pending
  // block and shipped to the worker in async mode (flushed when the block
  // reaches `block_ops`, set via SetBlockOps, or at FlushCutOps).
  void AddCutEdge(VertexId u, VertexId v);
  void RemoveCutEdge(VertexId u, VertexId v);

  // --- Cut-graph reads (engine thread; in async mode only between a
  // DrainWorker() return and the next ship) -----------------------------

  bool HasCutEdge(VertexId u, VertexId v) const {
    if (CutDegree(v) < CutDegree(u)) std::swap(u, v);
    for (const Half& h : adjacency_[u]) {
      if (h.to == v) return true;
    }
    return false;
  }

  int CutDegree(VertexId v) const {
    return v < static_cast<VertexId>(adjacency_.size())
               ? static_cast<int>(adjacency_[v].size())
               : 0;
  }
  // Calls fn(neighbor) for every cut edge incident to `v` (unordered).
  template <typename Fn>
  void ForEachCutNeighbor(VertexId v, Fn&& fn) const {
    if (v >= static_cast<VertexId>(adjacency_.size())) return;
    for (const Half& h : adjacency_[v]) fn(h.to);
  }
  // All cut edges as (u < v) pairs, sorted (snapshot/validation path).
  std::vector<std::pair<VertexId, VertexId>> CutEdgeList() const;

  int64_t NumCutEdges() const { return num_edges_; }
  int NumVertices() const { return num_vertices_; }
  int VertexCapacity() const { return static_cast<int>(alive_.size()); }

  // The dead ids in recycle order (LIFO, matching DynamicGraph's free
  // list). ShardedMisEngine::BuildGlobalGraph uses this to reconstruct a
  // standalone graph whose future AddVertex() calls assign the same ids
  // this resolver will.
  const std::vector<VertexId>& FreeVertexIds() const { return free_vertices_; }

  // --- Asynchronous worker --------------------------------------------------

  // Spawns the worker thread and switches cut-edge mutations to shipped
  // blocks. Call before any shard worker starts (shards ship transitions
  // into the inbox). Requires a quiescent resolver.
  void StartWorker();

  // Drains the inbox and joins the worker. Call after every shard worker
  // stopped. Idempotent.
  void StopWorker();

  bool worker_running() const { return worker_started_; }

  // Worker-block granularity for engine-thread cut ops (mirrors
  // ShardedEngineOptions::block_ops).
  void SetBlockOps(int block_ops) { block_ops_ = block_ops; }

  // Enqueues a batch of status transitions. Shard worker threads (and the
  // engine thread); any thread, any time the worker runs.
  void ShipTransitions(TransitionBatch&& batch);

  // Ships the engine thread's pending cut-op block, if any.
  void FlushCutOps();

  // FlushCutOps, then blocks until the inbox is drained and the worker
  // idles. After this returns the engine thread owns the cut structures
  // until the next ship. No-op in sequential mode.
  void DrainWorker();

  // Rebuilds the standing overlay and conflict set from the shards' current
  // solutions (engine thread, worker quiescent). Used after a snapshot
  // restore, where maintainers adopt their solutions without emitting
  // transitions.
  void SeedOverlay(const std::vector<std::unique_ptr<Shard>>& shards);

  // Instrumentation (atomic reads; safe from any thread, any time).
  int64_t BacklogOps() const {
    return backlog_ops_.load(std::memory_order_relaxed);
  }
  int64_t StandingConflicts() const {
    return standing_conflicts_.load(std::memory_order_relaxed);
  }
  int64_t TransitionsConsumed() const {
    return transitions_consumed_.load(std::memory_order_relaxed);
  }

  // --- Barrier resolution ---------------------------------------------------

  struct Resolution {
    // The verified global solution, sorted by id.
    std::vector<VertexId> solution;
    int64_t conflicts = 0;   // Conflicting cut edges found this pass.
    int64_t evictions = 0;   // Vertices evicted from the overlay.
    int64_t readded = 0;     // Vertices re-added by the extension pass.
    int64_t swaps = 0;       // 1-swaps performed by the polish pass.
  };

  // Sequential barrier pass: recomputes the overlay from the shard
  // maintainers and repairs it from scratch. Every worker in `shards` must
  // be idle (the engine thread calls this only after a full barrier).
  Resolution Resolve(const PartitionPlan& plan,
                     const std::vector<std::unique_ptr<Shard>>& shards);

  // Asynchronous barrier pass: finalizes the standing overlay/conflict set
  // maintained by the worker. Requires every shard idle AND DrainWorker()
  // returned with no ships in between.
  Resolution ResolveIncremental(
      const PartitionPlan& plan,
      const std::vector<std::unique_ptr<Shard>>& shards);

  // --- Snapshots ------------------------------------------------------------

  // Persists the id space and cut edges as section "state" (the caller
  // scopes it with a section prefix). The free list travels verbatim so a
  // restored engine recycles ids in the identical order. Async mode:
  // engine thread, worker drained.
  void SaveTo(SnapshotWriter* w) const;
  // Restores from "state" after full validation (bounds, aliveness,
  // duplicate edges, free-list exactness). On success the adjacency and
  // index are rebuilt from scratch. Returns false with the reader failed
  // on any violation. Call before StartWorker().
  bool LoadFrom(SnapshotReader* r);

  size_t MemoryUsageBytes() const;

 private:
  // One direction of a cut edge: the far endpoint plus the position of the
  // reverse entry inside the far endpoint's adjacency array.
  struct Half {
    VertexId to;
    int32_t mirror;
  };

  // One cut-graph mutation shipped from the engine thread.
  struct CutOp {
    enum class Kind : uint8_t { kAddEdge, kRemoveEdge, kDropVertex };
    Kind kind;
    VertexId u;
    VertexId v;
  };
  using CutOpBatch = std::vector<CutOp>;

  // One inbox message: exactly one of the two batches is non-empty.
  struct Message {
    TransitionBatch transitions;
    CutOpBatch cut_ops;
  };

  void WorkerLoop();
  void Consume(Message& message);
  void EnqueueMessage(Message&& message, size_t ops);

  // Grows the worker-owned per-vertex arrays (adjacency, overlay, conflict
  // flags) to cover id `v`.
  void EnsureCutCapacity(VertexId v);

  // Re-derives `v`'s standing-conflict membership from the current overlay
  // and adjacency.
  void RecheckConflict(VertexId v);

  // Queues `v` for one RecheckConflict at the end of the message the
  // worker is consuming (dedup via dirty_flag_).
  void MarkDirty(VertexId v) {
    if (v >= static_cast<VertexId>(dirty_flag_.size())) {
      dirty_flag_.resize(static_cast<size_t>(v) + 1, 0);
    }
    if (!dirty_flag_[v]) {
      dirty_flag_[v] = 1;
      dirty_.push_back(v);
    }
  }

  // Worker-side op application: structural change + dirty marking.
  void ApplyAddCutEdge(VertexId u, VertexId v);
  void ApplyRemoveCutEdge(VertexId u, VertexId v);
  void ApplyDropVertex(VertexId v);

  // Structural mutations shared by the inline (sequential) and worker
  // paths. No conflict bookkeeping.
  void InsertEdgeHalves(VertexId u, VertexId v);
  void RemoveEdgeHalves(VertexId u, VertexId v);
  void DropVertexEdges(VertexId v);

  // Swap-removes adjacency_[owner][index], repairing the mirror of the
  // entry moved into the hole.
  void SwapRemoveHalf(VertexId owner, int32_t index);

  // Degree of `v` in the global graph: intra-shard + cut.
  int TotalDegree(const PartitionPlan& plan,
                  const std::vector<std::unique_ptr<Shard>>& shards,
                  VertexId v) const {
    return shards[plan.ShardOf(v)]->graph().Degree(v) + CutDegree(v);
  }

  // Shared repair tail of both barrier passes. Expects in_sol_ to hold the
  // overlay with `conflicted_` unmarked and sorted by (TotalDegree, id):
  // greedy confirm, re-extension of the evicted neighborhoods, 1-swap
  // polish, solution collection. With `restrict_polish` the polish only
  // visits members the repair could have affected (cut-incident members
  // plus distance-<=2 neighborhoods of evictions/re-additions); without
  // it, every member.
  void RepairAndPolish(const PartitionPlan& plan,
                       const std::vector<std::unique_ptr<Shard>>& shards,
                       bool restrict_polish, Resolution* result);

  // --- Id space (engine thread) ---------------------------------------------
  std::vector<uint8_t> alive_;
  std::vector<VertexId> free_vertices_;
  int num_vertices_ = 0;

  // --- Cut structures (worker thread in async mode between ships; engine
  // thread otherwise) --------------------------------------------------------
  std::vector<std::vector<Half>> adjacency_;
  int64_t num_edges_ = 0;

  // Standing overlay (union of the shards' local solutions) and conflict
  // set, maintained by the worker. conflict_pos_[v] is v's index in
  // conflict_list_ (-1 when absent) for O(1) set maintenance.
  std::vector<uint8_t> base_;
  std::vector<int32_t> conflict_pos_;
  std::vector<VertexId> conflict_list_;
  // Per-message recheck queue (see MarkDirty); flags are cleared as the
  // queue drains, so both are empty between messages.
  std::vector<VertexId> dirty_;
  std::vector<uint8_t> dirty_flag_;

  // --- Worker plumbing ------------------------------------------------------
  std::thread worker_;
  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;   // Worker: inbox non-empty / stop.
  std::condition_variable drained_cv_; // Waiters: inbox empty and idle.
  std::deque<Message> inbox_;
  bool worker_busy_ = false;
  bool worker_started_ = false;
  bool worker_stop_ = false;

  // Engine-thread pending cut-op block (async mode).
  CutOpBatch pending_cut_ops_;
  int block_ops_ = 1024;

  std::atomic<int64_t> backlog_ops_{0};
  std::atomic<int64_t> standing_conflicts_{0};
  std::atomic<int64_t> transitions_consumed_{0};

  // Reusable scratch (sized to vertex capacity / pass volume).
  std::vector<uint8_t> in_sol_;
  std::vector<uint8_t> considered_;
  std::vector<VertexId> members_;
  std::vector<VertexId> conflicted_;
  std::vector<VertexId> evicted_;
  std::vector<VertexId> readded_;
  std::vector<VertexId> candidates_;
  std::vector<VertexId> polish_members_;
  std::vector<int32_t> count_;
  std::vector<uint8_t> active_;
  std::vector<uint8_t> seeded_;
  std::vector<uint8_t> expanded_;
  std::vector<VertexId> bar1_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_SHARD_CUT_EDGE_RESOLVER_H_
