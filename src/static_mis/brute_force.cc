#include "src/static_mis/brute_force.h"

#include <bit>
#include <cstdint>

#include "src/util/check.h"

namespace dynmis {
namespace {

// Recursively maximizes over the candidate mask. `adj` holds closed
// neighborhood masks.
uint64_t Search(const std::vector<uint64_t>& closed, uint64_t candidates,
                uint64_t chosen, int* best_count, uint64_t* best_set) {
  if (candidates == 0) {
    const int count = std::popcount(chosen);
    if (count > *best_count) {
      *best_count = count;
      *best_set = chosen;
    }
    return chosen;
  }
  if (std::popcount(chosen) + std::popcount(candidates) <= *best_count) {
    return chosen;  // Cannot beat the incumbent.
  }
  const int v = std::countr_zero(candidates);
  // Branch 1: take v.
  Search(closed, candidates & ~closed[v], chosen | (uint64_t{1} << v),
         best_count, best_set);
  // Branch 2: skip v.
  Search(closed, candidates & ~(uint64_t{1} << v), chosen, best_count,
         best_set);
  return chosen;
}

}  // namespace

std::vector<VertexId> BruteForceMis(const StaticGraph& g) {
  const int n = g.NumVertices();
  DYNMIS_CHECK_LE(n, 64);
  std::vector<uint64_t> closed(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    closed[v] = uint64_t{1} << v;
    for (VertexId u : g.Neighbors(v)) closed[v] |= uint64_t{1} << u;
  }
  int best_count = -1;
  uint64_t best_set = 0;
  const uint64_t all = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  Search(closed, all, 0, &best_count, &best_set);
  std::vector<VertexId> result;
  for (VertexId v = 0; v < n; ++v) {
    if (best_set & (uint64_t{1} << v)) result.push_back(v);
  }
  return result;
}

int BruteForceAlpha(const StaticGraph& g) {
  return static_cast<int>(BruteForceMis(g).size());
}

}  // namespace dynmis
