// Exponential-time exact MIS for tiny graphs: the ground truth used by the
// test suite to validate the exact solver, the swap verifiers and the
// approximation-ratio assertions.

#ifndef DYNMIS_SRC_STATIC_MIS_BRUTE_FORCE_H_
#define DYNMIS_SRC_STATIC_MIS_BRUTE_FORCE_H_

#include <vector>

#include "src/graph/static_graph.h"

namespace dynmis {

// Maximum independent set by branch-and-bound enumeration. Intended for
// n <= ~60; aborts above 64 vertices.
std::vector<VertexId> BruteForceMis(const StaticGraph& g);

// Independence number of `g` (size of BruteForceMis).
int BruteForceAlpha(const StaticGraph& g);

}  // namespace dynmis

#endif  // DYNMIS_SRC_STATIC_MIS_BRUTE_FORCE_H_
