// ARW iterated local search (Andrade, Resende & Werneck 2012): the static
// (1,2)-swap local search the paper uses both (a) to compute the initial /
// best-known solutions on hard graphs and (b) as the basis of the DyARW
// dynamic baseline.
//
// The search alternates between moving to a (1,2)-swap local optimum (no
// solution vertex has two non-adjacent 1-tight neighbours) and a random
// "force-insert" perturbation that re-seeds the search, keeping the best
// solution found within an iteration budget.

#ifndef DYNMIS_SRC_STATIC_MIS_ARW_H_
#define DYNMIS_SRC_STATIC_MIS_ARW_H_

#include <vector>

#include "src/graph/static_graph.h"
#include "src/util/random.h"

namespace dynmis {

struct ArwOptions {
  // Number of perturbation rounds after the first local optimum.
  int iterations = 2000;
  uint64_t seed = 7;
};

// Runs ARW from a greedy start and returns the best solution found
// (compacted vertex ids of `g`).
std::vector<VertexId> ArwMis(const StaticGraph& g, const ArwOptions& options);

// Runs ARW from a caller-provided independent set.
std::vector<VertexId> ArwMisFrom(const StaticGraph& g,
                                 const std::vector<VertexId>& initial,
                                 const ArwOptions& options);

}  // namespace dynmis

#endif  // DYNMIS_SRC_STATIC_MIS_ARW_H_
