#include "src/static_mis/arw.h"

#include <algorithm>

#include "src/static_mis/greedy.h"
#include "src/util/check.h"

namespace dynmis {
namespace {

// Local-search engine over a static graph: solution flags + tightness
// counts + a dirty queue of solution vertices to re-examine.
class LocalSearch {
 public:
  explicit LocalSearch(const StaticGraph& g)
      : g_(g),
        in_solution_(g.NumVertices(), 0),
        count_(g.NumVertices(), 0),
        dirty_(g.NumVertices(), 0),
        mark_(g.NumVertices(), 0) {}

  void SetSolution(const std::vector<VertexId>& solution) {
    for (VertexId v : solution) Insert(v);
    MakeMaximal();
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      if (in_solution_[v]) MarkDirty(v);
    }
  }

  int64_t Size() const { return size_; }

  std::vector<VertexId> Solution() const {
    std::vector<VertexId> out;
    out.reserve(static_cast<size_t>(size_));
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      if (in_solution_[v]) out.push_back(v);
    }
    return out;
  }

  // Moves to a (1,2)-swap local optimum.
  void Optimize() {
    while (!queue_.empty()) {
      const VertexId v = queue_.back();
      queue_.pop_back();
      dirty_[v] = 0;
      if (!in_solution_[v]) continue;
      TryTwoForOne(v);
    }
  }

  // Perturbation: force `v` into the solution, removing its solution
  // neighbours and re-maximalizing around them.
  void ForceInsert(VertexId v) {
    if (in_solution_[v]) return;
    std::vector<VertexId> owners;
    for (VertexId u : g_.Neighbors(v)) {
      if (in_solution_[u]) owners.push_back(u);
    }
    for (VertexId u : owners) Remove(u);
    Insert(v);
    for (VertexId u : owners) {
      for (VertexId w : g_.Neighbors(u)) {
        if (!in_solution_[w] && count_[w] == 0) Insert(w);
      }
    }
    MarkDirty(v);
    for (VertexId u : owners) {
      for (VertexId w : g_.Neighbors(u)) {
        if (in_solution_[w]) MarkDirty(w);
      }
    }
  }

 private:
  void Insert(VertexId v) {
    DYNMIS_DCHECK(!in_solution_[v]);
    DYNMIS_DCHECK(count_[v] == 0);
    in_solution_[v] = 1;
    ++size_;
    for (VertexId u : g_.Neighbors(v)) ++count_[u];
  }

  void Remove(VertexId v) {
    DYNMIS_DCHECK(in_solution_[v] != 0);
    in_solution_[v] = 0;
    --size_;
    for (VertexId u : g_.Neighbors(v)) --count_[u];
  }

  void MakeMaximal() {
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      if (!in_solution_[v] && count_[v] == 0) Insert(v);
    }
  }

  void MarkDirty(VertexId v) {
    if (dirty_[v]) return;
    dirty_[v] = 1;
    queue_.push_back(v);
  }

  // Replaces v by two non-adjacent 1-tight neighbours if they exist.
  void TryTwoForOne(VertexId v) {
    tight_.clear();
    for (VertexId u : g_.Neighbors(v)) {
      if (count_[u] == 1) tight_.push_back(u);
    }
    if (tight_.size() < 2) return;
    ++epoch_;
    for (VertexId u : tight_) mark_[u] = epoch_;
    for (VertexId u : tight_) {
      // u misses some member of tight_ iff its marked-degree < |tight_| - 1.
      int adjacent = 0;
      for (VertexId w : g_.Neighbors(u)) {
        if (mark_[w] == epoch_) ++adjacent;
      }
      if (adjacent + 1 == static_cast<int>(tight_.size())) continue;
      // Find the missing partner by re-marking N[u].
      ++epoch_;
      mark_[u] = epoch_;
      for (VertexId w : g_.Neighbors(u)) mark_[w] = epoch_;
      VertexId partner = kInvalidVertex;
      for (VertexId w : tight_) {
        if (mark_[w] != epoch_) {
          partner = w;
          break;
        }
      }
      DYNMIS_CHECK(partner != kInvalidVertex);
      Remove(v);
      Insert(u);
      Insert(partner);
      for (VertexId w : g_.Neighbors(v)) {
        if (!in_solution_[w] && count_[w] == 0) Insert(w);
      }
      // Re-examine the solution vertices around the change.
      for (VertexId w : g_.Neighbors(v)) {
        if (in_solution_[w]) {
          MarkDirty(w);
        } else if (count_[w] >= 1) {
          for (VertexId z : g_.Neighbors(w)) {
            if (in_solution_[z]) {
              MarkDirty(z);
              break;
            }
          }
        }
      }
      MarkDirty(u);
      MarkDirty(partner);
      return;
    }
  }

  const StaticGraph& g_;
  std::vector<uint8_t> in_solution_;
  std::vector<int32_t> count_;
  std::vector<uint8_t> dirty_;
  std::vector<VertexId> queue_;
  std::vector<VertexId> tight_;
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;
  int64_t size_ = 0;
};

}  // namespace

std::vector<VertexId> ArwMisFrom(const StaticGraph& g,
                                 const std::vector<VertexId>& initial,
                                 const ArwOptions& options) {
  if (g.NumVertices() == 0) return {};
  LocalSearch search(g);
  search.SetSolution(initial);
  search.Optimize();
  std::vector<VertexId> best = search.Solution();
  Rng rng(SplitMix64(options.seed));
  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    search.ForceInsert(v);
    search.Optimize();
    if (search.Size() > static_cast<int64_t>(best.size())) {
      best = search.Solution();
    }
  }
  return best;
}

std::vector<VertexId> ArwMis(const StaticGraph& g, const ArwOptions& options) {
  return ArwMisFrom(g, GreedyMis(g), options);
}

}  // namespace dynmis
