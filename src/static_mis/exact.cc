#include "src/static_mis/exact.h"

#include <algorithm>

#include "src/static_mis/brute_force.h"
#include "src/static_mis/greedy.h"
#include "src/static_mis/reductions.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace dynmis {
namespace {

// Greedy clique cover: an upper bound on alpha (each clique contributes at
// most one independent vertex).
int CliqueCoverBound(const StaticGraph& g) {
  const int n = g.NumVertices();
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.Degree(a) != g.Degree(b) ? g.Degree(a) > g.Degree(b) : a < b;
  });
  std::vector<std::vector<VertexId>> cliques;
  for (VertexId v : order) {
    bool placed = false;
    for (auto& clique : cliques) {
      bool fits = true;
      for (VertexId u : clique) {
        if (!g.HasEdge(v, u)) {
          fits = false;
          break;
        }
      }
      if (fits) {
        clique.push_back(v);
        placed = true;
        break;
      }
    }
    if (!placed) cliques.push_back({v});
  }
  return static_cast<int>(cliques.size());
}

// Connected components of `g` as vertex lists.
std::vector<std::vector<VertexId>> Components(const StaticGraph& g) {
  const int n = g.NumVertices();
  std::vector<int> component(n, -1);
  std::vector<std::vector<VertexId>> result;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (component[s] >= 0) continue;
    const int id = static_cast<int>(result.size());
    result.emplace_back();
    component[s] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      result[id].push_back(v);
      for (VertexId u : g.Neighbors(v)) {
        if (component[u] < 0) {
          component[u] = id;
          stack.push_back(u);
        }
      }
    }
  }
  return result;
}

class Solver {
 public:
  Solver(int64_t max_nodes, double max_seconds)
      : budget_(max_nodes), max_seconds_(max_seconds) {}

  int64_t nodes_used() const { return nodes_used_; }

  // Returns a MIS of `g` in g's compacted ids, or nullopt on budget
  // exhaustion.
  std::optional<std::vector<VertexId>> Solve(const StaticGraph& g) {
    ++nodes_used_;
    if (--budget_ < 0) return std::nullopt;
    if (max_seconds_ > 0 && (nodes_used_ & 255) == 0 &&
        timer_.ElapsedSeconds() > max_seconds_) {
      return std::nullopt;
    }
    if (g.NumVertices() == 0) return std::vector<VertexId>{};

    Kernelizer kernelizer(g);
    kernelizer.Run();
    const StaticGraph kernel = kernelizer.Kernel();

    std::vector<VertexId> kernel_solution_work_ids;
    for (const auto& comp : Components(kernel)) {
      const StaticGraph sub = kernel.InducedSubgraph(comp);
      std::optional<std::vector<VertexId>> comp_solution = SolveComponent(sub);
      if (!comp_solution) return std::nullopt;
      // sub's OriginalId composes through kernel's OriginalId = work id.
      for (VertexId v : *comp_solution) {
        kernel_solution_work_ids.push_back(sub.OriginalId(v));
      }
    }
    return kernelizer.Lift(kernel_solution_work_ids);
  }

 private:
  // Solves one connected, kernelized component; returns ids of `g`.
  std::optional<std::vector<VertexId>> SolveComponent(const StaticGraph& g) {
    if (g.NumVertices() == 0) return std::vector<VertexId>{};
    if (g.NumVertices() <= 64) return BruteForceMis(g);
    ++nodes_used_;
    if (--budget_ < 0) return std::nullopt;

    // Branch on a maximum-degree vertex.
    VertexId pivot = 0;
    for (VertexId v = 1; v < g.NumVertices(); ++v) {
      if (g.Degree(v) > g.Degree(pivot)) pivot = v;
    }

    // Include branch: pivot + MIS(G - N[pivot]). Note: InducedSubgraph
    // composes *original* ids, so recursion results are translated through
    // the keep-lists (subgraph compact id i corresponds to keep[i] in g).
    std::vector<uint8_t> drop(g.NumVertices(), 0);
    drop[pivot] = 1;
    for (VertexId u : g.Neighbors(pivot)) drop[u] = 1;
    std::vector<VertexId> inc_keep;
    inc_keep.reserve(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!drop[v]) inc_keep.push_back(v);
    }
    std::optional<std::vector<VertexId>> inc =
        Solve(g.InducedSubgraph(inc_keep));
    if (!inc) return std::nullopt;
    std::vector<VertexId> best;
    best.push_back(pivot);
    for (VertexId v : *inc) best.push_back(inc_keep[v]);

    // Exclude branch: MIS(G - pivot), pruned by the clique-cover bound.
    std::vector<VertexId> exc_keep;
    exc_keep.reserve(g.NumVertices() - 1);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (v != pivot) exc_keep.push_back(v);
    }
    const StaticGraph exc_graph = g.InducedSubgraph(exc_keep);
    if (CliqueCoverBound(exc_graph) > static_cast<int>(best.size())) {
      std::optional<std::vector<VertexId>> exc = Solve(exc_graph);
      if (!exc) return std::nullopt;
      if (exc->size() > best.size()) {
        best.clear();
        for (VertexId v : *exc) best.push_back(exc_keep[v]);
      }
    }
    return best;
  }

  int64_t budget_;
  double max_seconds_;
  Timer timer_;
  int64_t nodes_used_ = 0;
};

}  // namespace

ExactMisResult SolveExactMis(const StaticGraph& g,
                             const ExactMisOptions& options) {
  Solver solver(options.max_nodes, options.max_seconds);
  ExactMisResult result;
  std::optional<std::vector<VertexId>> solution = solver.Solve(g);
  result.nodes_used = solver.nodes_used();
  if (solution) {
    result.solved = true;
    result.solution = std::move(*solution);
  }
  return result;
}

std::optional<int64_t> ExactAlpha(const StaticGraph& g,
                                  const ExactMisOptions& options) {
  ExactMisResult result = SolveExactMis(g, options);
  if (!result.solved) return std::nullopt;
  return static_cast<int64_t>(result.solution.size());
}

}  // namespace dynmis
