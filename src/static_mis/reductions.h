// Exact data reductions for maximum independent set, in the style of
// VCSolver / Akiba-Iwata branch-and-reduce:
//
//   * degree-0: isolated vertices are taken.
//   * degree-1 (pendant): the leaf is taken, its neighbour removed.
//   * degree-2 with adjacent neighbours (triangle): the degree-2 vertex is
//     taken, its neighbourhood removed.
//   * degree-2 folding: v with non-adjacent neighbours u, w folds {v, u, w}
//     into a single vertex m with N(m) = N(u) u N(w) \ {v}; alpha(G) =
//     alpha(G') + 1, and m in the solution lifts to {u, w}, else to {v}.
//   * domination: if N[v] is a subset of N[u] then some MaxIS avoids u.
//   * unconfined vertices (Akiba & Iwata): a vertex shown unconfined by the
//     standard confinement search can be excluded from some MaxIS.
//
// The Kernelizer applies these to a fixpoint and records a trace so kernel
// solutions can be lifted back to solutions of the input graph.

#ifndef DYNMIS_SRC_STATIC_MIS_REDUCTIONS_H_
#define DYNMIS_SRC_STATIC_MIS_REDUCTIONS_H_

#include <cstdint>
#include <vector>

#include "src/graph/static_graph.h"

namespace dynmis {

class Kernelizer {
 public:
  explicit Kernelizer(const StaticGraph& g);

  // Applies all reductions to a fixpoint.
  void Run();

  // Number of vertices forced into the solution so far (each fold also
  // contributes exactly 1 to alpha).
  int64_t AlphaOffset() const { return alpha_offset_; }

  // The remaining (irreducible) graph. OriginalId of kernel vertex i is its
  // *work id*, only meaningful to Lift().
  StaticGraph Kernel() const;

  // Lifts a kernel solution (given in kernel-compacted ids of Kernel()) to
  // an independent set of the input graph, undoing folds and re-adding the
  // forced vertices.
  std::vector<VertexId> Lift(
      const std::vector<VertexId>& kernel_solution) const;

  int NumAliveVertices() const { return alive_count_; }

 private:
  struct FoldRecord {
    VertexId m, v, u, w;
  };

  bool Alive(VertexId v) const { return alive_[v] != 0; }
  void Touch(VertexId v);
  void TouchNeighbors(VertexId v);
  // Removes v from the graph (an "exclude" decision or plain deletion).
  void RemoveVertex(VertexId v);
  // Takes v into the solution and removes N[v].
  void IncludeVertex(VertexId v);
  VertexId FoldDegreeTwo(VertexId v, VertexId u, VertexId w);
  bool TryReduceVertex(VertexId v);
  bool TryDominate(VertexId v);
  bool TryUnconfined(VertexId v);

  std::vector<std::vector<VertexId>> adj_;
  std::vector<int32_t> degree_;
  std::vector<uint8_t> alive_;
  std::vector<uint8_t> queued_;
  std::vector<VertexId> worklist_;
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;

  // Work ids taken into the solution (original ids or fold ids; folds are
  // resolved by Lift in reverse order).
  std::vector<VertexId> included_;
  std::vector<FoldRecord> folds_;
  int64_t alpha_offset_ = 0;
  int alive_count_ = 0;
  int original_n_ = 0;

  // Domination checks are skipped for vertices above this degree (cost
  // control; correctness is unaffected since reductions are optional).
  static constexpr int kDominationDegreeCap = 24;
  // Confinement search gives up when the confining set grows past this.
  static constexpr int kConfinementCap = 24;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_STATIC_MIS_REDUCTIONS_H_
