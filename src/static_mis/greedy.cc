#include "src/static_mis/greedy.h"

#include <vector>

namespace dynmis {

std::vector<VertexId> GreedyMis(const StaticGraph& g) {
  const int n = g.NumVertices();
  std::vector<int> residual_degree(n);
  std::vector<uint8_t> removed(n, 0);
  // Bucket queue over residual degrees with lazy invalidation.
  std::vector<std::vector<VertexId>> buckets(g.MaxDegree() + 1);
  for (VertexId v = 0; v < n; ++v) {
    residual_degree[v] = g.Degree(v);
    buckets[residual_degree[v]].push_back(v);
  }
  std::vector<VertexId> solution;
  int cursor = 0;
  while (cursor < static_cast<int>(buckets.size())) {
    if (buckets[cursor].empty()) {
      ++cursor;
      continue;
    }
    const VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || residual_degree[v] != cursor) continue;  // Stale entry.
    // v is a minimum-residual-degree survivor: take it.
    solution.push_back(v);
    removed[v] = 1;
    for (VertexId u : g.Neighbors(v)) {
      if (removed[u]) continue;
      removed[u] = 1;
      for (VertexId w : g.Neighbors(u)) {
        if (removed[w]) continue;
        --residual_degree[w];
        buckets[residual_degree[w]].push_back(w);
        if (residual_degree[w] < cursor) cursor = residual_degree[w];
      }
    }
  }
  return solution;
}

}  // namespace dynmis
