// Min-degree greedy maximal independent set.
//
// The classic baseline used to seed the local-search and dynamic algorithms:
// repeatedly pick a minimum-degree vertex, add it, delete its closed
// neighborhood. O(m log n)-ish via a lazy bucket queue.

#ifndef DYNMIS_SRC_STATIC_MIS_GREEDY_H_
#define DYNMIS_SRC_STATIC_MIS_GREEDY_H_

#include <vector>

#include "src/graph/static_graph.h"

namespace dynmis {

// Returns a maximal independent set (compacted vertex ids of `g`).
std::vector<VertexId> GreedyMis(const StaticGraph& g);

}  // namespace dynmis

#endif  // DYNMIS_SRC_STATIC_MIS_GREEDY_H_
