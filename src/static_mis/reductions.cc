#include "src/static_mis/reductions.h"

#include <algorithm>

#include "src/util/check.h"

namespace dynmis {

Kernelizer::Kernelizer(const StaticGraph& g) {
  original_n_ = g.NumVertices();
  alive_count_ = original_n_;
  adj_.resize(original_n_);
  degree_.resize(original_n_);
  alive_.assign(original_n_, 1);
  queued_.assign(original_n_, 0);
  mark_.assign(original_n_, 0);
  for (VertexId v = 0; v < original_n_; ++v) {
    const auto nbrs = g.Neighbors(v);
    adj_[v].assign(nbrs.begin(), nbrs.end());
    degree_[v] = static_cast<int32_t>(nbrs.size());
    Touch(v);
  }
}

void Kernelizer::Touch(VertexId v) {
  if (v < static_cast<VertexId>(queued_.size()) && !queued_[v] && alive_[v]) {
    queued_[v] = 1;
    worklist_.push_back(v);
  }
}

void Kernelizer::TouchNeighbors(VertexId v) {
  for (VertexId u : adj_[v]) {
    if (Alive(u)) Touch(u);
  }
}

void Kernelizer::RemoveVertex(VertexId v) {
  DYNMIS_DCHECK(Alive(v));
  alive_[v] = 0;
  --alive_count_;
  for (VertexId u : adj_[v]) {
    if (Alive(u)) {
      --degree_[u];
      Touch(u);
    }
  }
}

void Kernelizer::IncludeVertex(VertexId v) {
  DYNMIS_DCHECK(Alive(v));
  included_.push_back(v);
  ++alpha_offset_;
  // Remove N[v]; neighbours of neighbours become reduction candidates.
  std::vector<VertexId> nbrs;
  for (VertexId u : adj_[v]) {
    if (Alive(u)) nbrs.push_back(u);
  }
  alive_[v] = 0;
  --alive_count_;
  for (VertexId u : nbrs) RemoveVertex(u);
}

VertexId Kernelizer::FoldDegreeTwo(VertexId v, VertexId u, VertexId w) {
  // New merged vertex m with N(m) = (N(u) u N(w)) \ {v, u, w}.
  const VertexId m = static_cast<VertexId>(adj_.size());
  std::vector<VertexId> merged;
  ++epoch_;
  for (VertexId pool : {u, w}) {
    for (VertexId x : adj_[pool]) {
      if (!Alive(x) || x == v || x == u || x == w) continue;
      if (mark_[x] == epoch_) continue;
      mark_[x] = epoch_;
      merged.push_back(x);
    }
  }
  RemoveVertex(v);
  RemoveVertex(u);
  RemoveVertex(w);
  adj_.push_back(merged);
  degree_.push_back(static_cast<int32_t>(merged.size()));
  alive_.push_back(1);
  queued_.push_back(0);
  mark_.push_back(0);
  ++alive_count_;
  for (VertexId x : merged) {
    adj_[x].push_back(m);
    ++degree_[x];
    Touch(x);
  }
  folds_.push_back({m, v, u, w});
  ++alpha_offset_;
  Touch(m);
  return m;
}

bool Kernelizer::TryDominate(VertexId v) {
  if (degree_[v] > kDominationDegreeCap) return false;
  // Mark N[v]; any neighbour u with N[u] superset of N[v] can be excluded.
  ++epoch_;
  mark_[v] = epoch_;
  for (VertexId x : adj_[v]) {
    if (Alive(x)) mark_[x] = epoch_;
  }
  for (VertexId u : adj_[v]) {
    if (!Alive(u) || degree_[u] < degree_[v]) continue;
    // Count how many of N[v] lie inside N[u] (v itself is adjacent to u).
    int covered = 1;  // v.
    for (VertexId x : adj_[u]) {
      if (Alive(x) && x != v && mark_[x] == epoch_) ++covered;
    }
    if (covered >= degree_[v]) {
      // N[v] subseteq N[u]: u is dominated.
      RemoveVertex(u);
      Touch(v);
      return true;
    }
  }
  return false;
}

bool Kernelizer::TryUnconfined(VertexId v) {
  // Confinement search of Akiba & Iwata: grow a set S (initially {v}); a
  // neighbour u of S with exactly one neighbour inside S is a "child". If
  // some child has no private neighbour outside N[S], v is unconfined and
  // can be excluded; a child with exactly one private neighbour extends S.
  if (degree_[v] > 64) return false;  // Cost control around hubs.
  std::vector<VertexId> s = {v};
  // in_s / in_ns membership via epochs: epoch e for S, shared mark set for
  // N[S] rebuilt each round (S stays small, capped).
  while (true) {
    if (static_cast<int>(s.size()) > kConfinementCap) return false;
    ++epoch_;
    const uint32_t ns_epoch = epoch_;
    for (VertexId x : s) {
      mark_[x] = ns_epoch;
      for (VertexId y : adj_[x]) {
        if (Alive(y)) mark_[y] = ns_epoch;
      }
    }
    // Children: u adjacent to exactly one member of S.
    VertexId extend = kInvalidVertex;
    bool found_child = false;
    for (VertexId x : s) {
      for (VertexId u : adj_[x]) {
        if (!Alive(u)) continue;
        // Count u's neighbours inside S and privates outside N[S].
        int in_s = 0;
        VertexId private_nbr = kInvalidVertex;
        int privates = 0;
        for (VertexId w : adj_[u]) {
          if (!Alive(w)) continue;
          bool w_in_s = false;
          for (VertexId z : s) {
            if (z == w) {
              w_in_s = true;
              break;
            }
          }
          if (w_in_s) {
            ++in_s;
          } else if (mark_[w] != ns_epoch) {
            ++privates;
            private_nbr = w;
          }
        }
        if (in_s != 1) continue;
        found_child = true;
        if (privates == 0) {
          // Unconfined: exclude v.
          RemoveVertex(v);
          return true;
        }
        if (privates == 1 && extend == kInvalidVertex) extend = private_nbr;
      }
    }
    (void)found_child;
    if (extend == kInvalidVertex) return false;  // Confined.
    s.push_back(extend);
  }
}

bool Kernelizer::TryReduceVertex(VertexId v) {
  if (!Alive(v)) return false;
  if (degree_[v] == 0) {
    IncludeVertex(v);
    return true;
  }
  if (degree_[v] == 1) {
    IncludeVertex(v);
    return true;
  }
  if (degree_[v] == 2) {
    VertexId u = kInvalidVertex;
    VertexId w = kInvalidVertex;
    for (VertexId x : adj_[v]) {
      if (!Alive(x)) continue;
      if (u == kInvalidVertex) {
        u = x;
      } else if (w == kInvalidVertex && x != u) {
        w = x;
      }
    }
    DYNMIS_DCHECK(u != kInvalidVertex && w != kInvalidVertex);
    const bool adjacent =
        std::find_if(adj_[u].begin(), adj_[u].end(), [&](VertexId x) {
          return x == w;
        }) != adj_[u].end();
    if (adjacent) {
      IncludeVertex(v);
    } else {
      FoldDegreeTwo(v, u, w);
    }
    return true;
  }
  if (TryDominate(v)) return true;
  return TryUnconfined(v);
}

void Kernelizer::Run() {
  while (!worklist_.empty()) {
    const VertexId v = worklist_.back();
    worklist_.pop_back();
    queued_[v] = 0;
    TryReduceVertex(v);
  }
}

StaticGraph Kernelizer::Kernel() const {
  std::vector<VertexId> alive_ids;
  std::vector<VertexId> compact(adj_.size(), kInvalidVertex);
  for (VertexId v = 0; v < static_cast<VertexId>(adj_.size()); ++v) {
    if (Alive(v)) {
      compact[v] = static_cast<VertexId>(alive_ids.size());
      alive_ids.push_back(v);
    }
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v : alive_ids) {
    for (VertexId u : adj_[v]) {
      if (Alive(u) && u > v) edges.emplace_back(compact[v], compact[u]);
      // Fold vertices may duplicate edges only if the merged adjacency had
      // duplicates, which FoldDegreeTwo's epoch-dedup prevents; and (x, m)
      // entries appear once on each side.
    }
  }
  // Deduplicate defensively (the construction cost is negligible next to
  // branching).
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  StaticGraph kernel(static_cast<int>(alive_ids.size()), edges);
  // The kernel's OriginalId is the Kernelizer work id, which Lift expects.
  return StaticGraph::WithOriginalIds(std::move(kernel), std::move(alive_ids));
}

std::vector<VertexId> Kernelizer::Lift(
    const std::vector<VertexId>& kernel_solution) const {
  // Work-id solution: forced includes + the kernel solution (already in
  // work ids via Kernel()'s OriginalId mapping).
  std::vector<uint8_t> chosen(adj_.size(), 0);
  for (VertexId v : included_) chosen[v] = 1;
  for (VertexId v : kernel_solution) {
    DYNMIS_CHECK_LT(static_cast<size_t>(v), chosen.size());
    chosen[v] = 1;
  }
  // Undo folds in reverse creation order.
  for (auto it = folds_.rbegin(); it != folds_.rend(); ++it) {
    if (chosen[it->m]) {
      chosen[it->m] = 0;
      chosen[it->u] = 1;
      chosen[it->w] = 1;
    } else {
      chosen[it->v] = 1;
    }
  }
  std::vector<VertexId> result;
  for (VertexId v = 0; v < original_n_; ++v) {
    if (chosen[v]) result.push_back(v);
  }
  return result;
}

}  // namespace dynmis
