// Exact maximum independent set by branch-and-reduce: the library's stand-in
// for VCSolver (Akiba & Iwata), which the paper uses to obtain the exact
// independence number alpha(G) and the initial solutions on easy graphs.
//
// Pipeline: kernelize (degree-0/1/2-fold/domination, see reductions.h),
// split into connected components, solve each component by branching on a
// maximum-degree vertex with re-kernelization at every node, a greedy
// clique-cover upper bound and a brute-force base case for components of at
// most 64 vertices. A node budget bounds the effort; when exhausted the
// result is flagged unsolved (the harness then falls back to the ARW
// reference, matching the paper's easy/hard split).

#ifndef DYNMIS_SRC_STATIC_MIS_EXACT_H_
#define DYNMIS_SRC_STATIC_MIS_EXACT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/static_graph.h"

namespace dynmis {

struct ExactMisOptions {
  // Branch-and-reduce node budget across the whole solve.
  int64_t max_nodes = 2'000'000;
  // Wall-clock deadline in seconds; <= 0 means no deadline. Exceeding it
  // flags the result unsolved (the per-node cost varies too much for the
  // node budget alone to bound elapsed time).
  double max_seconds = 0;
};

struct ExactMisResult {
  bool solved = false;
  // A maximum independent set (compacted ids of the input graph); valid
  // only when `solved`.
  std::vector<VertexId> solution;
  int64_t nodes_used = 0;
};

// Solves MIS exactly within the node budget.
ExactMisResult SolveExactMis(const StaticGraph& g,
                             const ExactMisOptions& options = {});

// Convenience: the independence number, or nullopt if the budget ran out.
std::optional<int64_t> ExactAlpha(const StaticGraph& g,
                                  const ExactMisOptions& options = {});

}  // namespace dynmis

#endif  // DYNMIS_SRC_STATIC_MIS_EXACT_H_
