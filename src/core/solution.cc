#include "src/core/solution.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

MisState::MisState(DynamicGraph* g, int k, bool lazy)
    : g_(g), k_(k), lazy_(lazy) {
  DYNMIS_CHECK_GE(k, 1);
  EnsureCapacity();
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) OnVertexAdded(v);
}

void MisState::EnsureCapacity() {
  const size_t vcap = g_->VertexCapacity();
  if (status_.size() < vcap) {
    status_.resize(vcap, 0);
    count_.resize(vcap, 0);
    if (!lazy_) {
      inb_head_.resize(vcap, kInvalidEdge);
      bar1_head_.resize(vcap, kInvalidEdge);
      bar1_size_.resize(vcap, 0);
      bar1_edge_.resize(vcap, kInvalidEdge);
      if (k_ >= 2) {
        bar2_head_.resize(vcap, kInvalidEdge);
        bar2_edge0_.resize(vcap, kInvalidEdge);
        bar2_edge1_.resize(vcap, kInvalidEdge);
      }
    }
  }
  if (!lazy_) {
    const size_t ecap = 2 * static_cast<size_t>(g_->EdgeCapacity());
    if (inb_links_.size() < ecap) {
      inb_links_.resize(ecap);
      bar1_links_.resize(ecap);
      if (k_ >= 2) bar2_links_.resize(ecap);
    }
  }
}

void MisState::OnVertexAdded(VertexId v) {
  EnsureCapacity();
  status_[v] = 0;
  count_[v] = 0;
  if (!lazy_) {
    inb_head_[v] = kInvalidEdge;
    bar1_head_[v] = kInvalidEdge;
    bar1_size_[v] = 0;
    bar1_edge_[v] = kInvalidEdge;
    if (k_ >= 2) {
      bar2_head_[v] = kInvalidEdge;
      bar2_edge0_[v] = kInvalidEdge;
      bar2_edge1_[v] = kInvalidEdge;
    }
  }
}

std::vector<VertexId> MisState::Solution() const {
  std::vector<VertexId> out;
  AppendSolution(&out);
  return out;
}

void MisState::AppendSolution(std::vector<VertexId>* out) const {
  out->reserve(out->size() + static_cast<size_t>(solution_size_));
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && status_[v]) out->push_back(v);
  }
}

VertexId MisState::OwnerOf(VertexId u) const {
  DYNMIS_DCHECK(count_[u] >= 1);
  if (!lazy_) {
    DYNMIS_DCHECK(inb_head_[u] != kInvalidEdge);
    return g_->Other(inb_head_[u], u);
  }
  VertexId owner = kInvalidVertex;
  for (EdgeId e = g_->FirstIncident(u); e != kInvalidEdge;
       e = g_->NextIncident(e, u)) {
    const VertexId w = g_->Other(e, u);
    if (status_[w]) {
      owner = w;
      break;
    }
  }
  DYNMIS_DCHECK(owner != kInvalidVertex);
  return owner;
}

void MisState::OwnersOf2(VertexId u, VertexId* a, VertexId* b) const {
  DYNMIS_DCHECK(count_[u] == 2);
  VertexId first = kInvalidVertex;
  VertexId second = kInvalidVertex;
  ForEachSolutionNeighbor(u, [&](VertexId w) {
    if (first == kInvalidVertex) {
      first = w;
    } else if (second == kInvalidVertex) {
      second = w;
    }
  });
  DYNMIS_DCHECK(first != kInvalidVertex && second != kInvalidVertex);
  if (first > second) std::swap(first, second);
  *a = first;
  *b = second;
}

int MisState::Bar1Size(VertexId v) const {
  DYNMIS_DCHECK(InSolution(v));
  if (!lazy_) return bar1_size_[v];
  int size = 0;
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
    if (count_[u] == 1) ++size;
  });
  return size;
}

void MisState::CollectBar1(VertexId v, std::vector<VertexId>* out) const {
  DYNMIS_DCHECK(InSolution(v));
  if (!lazy_) {
    for (EdgeId e = bar1_head_[v]; e != kInvalidEdge;
         e = bar1_links_[Slot(e, v)].next) {
      out->push_back(g_->Other(e, v));
    }
    return;
  }
  // Lazy: u in N(v) with count(u) == 1 necessarily has v as its unique
  // solution neighbour, so a single scan of N(v) suffices.
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
    if (!status_[u] && count_[u] == 1) out->push_back(u);
  });
}

void MisState::CollectBar2(VertexId v, std::vector<VertexId>* out) const {
  DYNMIS_DCHECK(InSolution(v));
  DYNMIS_CHECK_GE(k_, 2);
  if (!lazy_) {
    for (EdgeId e = bar2_head_[v]; e != kInvalidEdge;
         e = bar2_links_[Slot(e, v)].next) {
      out->push_back(g_->Other(e, v));
    }
    return;
  }
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
    if (!status_[u] && count_[u] == 2) out->push_back(u);
  });
}

void MisState::CollectBar2Pair(VertexId x, VertexId y,
                               std::vector<VertexId>* out) const {
  DYNMIS_CHECK_GE(k_, 2);
  DYNMIS_DCHECK(InSolution(x) && InSolution(y));
  // Enumerate one owner's bar2 list and keep members whose second solution
  // neighbour is the other owner; in lazy mode scan the lower-degree owner.
  if (lazy_ && g_->Degree(x) > g_->Degree(y)) std::swap(x, y);
  std::vector<VertexId>& side = side_scratch_;
  side.clear();
  CollectBar2(x, &side);
  for (VertexId u : side) {
    VertexId a, b;
    OwnersOf2(u, &a, &b);
    const VertexId other = a == x ? b : a;
    if (other == y) out->push_back(u);
  }
}

void MisState::Link(std::vector<EdgeId>& head, std::vector<LinkPair>& links,
                    EdgeId e, VertexId owner) {
  const int slot = Slot(e, owner);
  links[slot].next = head[owner];
  links[slot].prev = kInvalidEdge;
  if (head[owner] != kInvalidEdge) {
    links[Slot(head[owner], owner)].prev = e;
  }
  head[owner] = e;
}

void MisState::Unlink(std::vector<EdgeId>& head, std::vector<LinkPair>& links,
                      EdgeId e, VertexId owner) {
  const int slot = Slot(e, owner);
  const EdgeId p = links[slot].prev;
  const EdgeId n = links[slot].next;
  if (p != kInvalidEdge) {
    links[Slot(p, owner)].next = n;
  } else {
    DYNMIS_DCHECK(head[owner] == e);
    head[owner] = n;
  }
  if (n != kInvalidEdge) links[Slot(n, owner)].prev = p;
  links[slot].next = kInvalidEdge;
  links[slot].prev = kInvalidEdge;
}

void MisState::ClearTightness(VertexId u) {
  if (lazy_) return;
  if (bar1_edge_[u] != kInvalidEdge) {
    const EdgeId e = bar1_edge_[u];
    const VertexId owner = g_->Other(e, u);
    Unlink(bar1_head_, bar1_links_, e, owner);
    --bar1_size_[owner];
    bar1_edge_[u] = kInvalidEdge;
  }
  if (k_ >= 2) {
    for (EdgeId* slot : {&bar2_edge0_[u], &bar2_edge1_[u]}) {
      if (*slot != kInvalidEdge) {
        const EdgeId e = *slot;
        const VertexId owner = g_->Other(e, u);
        Unlink(bar2_head_, bar2_links_, e, owner);
        *slot = kInvalidEdge;
      }
    }
  }
}

void MisState::SetTightnessAndLog(VertexId u) {
  if (status_[u]) return;
  const int c = count_[u];
  if (!lazy_) {
    if (c == 1) {
      const EdgeId e = inb_head_[u];
      DYNMIS_DCHECK(e != kInvalidEdge);
      const VertexId owner = g_->Other(e, u);
      Link(bar1_head_, bar1_links_, e, owner);
      ++bar1_size_[owner];
      bar1_edge_[u] = e;
    } else if (c == 2 && k_ >= 2) {
      const EdgeId e0 = inb_head_[u];
      DYNMIS_DCHECK(e0 != kInvalidEdge);
      const EdgeId e1 = inb_links_[Slot(e0, u)].next;
      DYNMIS_DCHECK(e1 != kInvalidEdge);
      Link(bar2_head_, bar2_links_, e0, g_->Other(e0, u));
      Link(bar2_head_, bar2_links_, e1, g_->Other(e1, u));
      bar2_edge0_[u] = e0;
      bar2_edge1_[u] = e1;
    }
  }
  if (c >= 1 && c <= k_) transitions_.push_back(u);
}

void MisState::MoveIn(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  DYNMIS_CHECK(!status_[v]);
  DYNMIS_CHECK_EQ(count_[v], 0);
  ClearTightness(v);  // count == 0 implies no membership; cheap safety.
  status_[v] = 1;
  ++solution_size_;
  for (EdgeId e = g_->FirstIncident(v); e != kInvalidEdge;
       e = g_->NextIncident(e, v)) {
    const VertexId u = g_->Other(e, v);
    DYNMIS_DCHECK(!status_[u]);
    ClearTightness(u);
    if (!lazy_) Link(inb_head_, inb_links_, e, u);
    ++count_[u];
    SetTightnessAndLog(u);
  }
}

void MisState::MoveOut(VertexId v) {
  DYNMIS_CHECK(status_[v] != 0);
  status_[v] = 0;
  --solution_size_;
  int own_count = 0;
  for (EdgeId e = g_->FirstIncident(v); e != kInvalidEdge;
       e = g_->NextIncident(e, v)) {
    const VertexId u = g_->Other(e, v);
    if (status_[u]) {
      // Transient both-in-I situation (edge-insert handling): v gains u as
      // a solution neighbour.
      if (!lazy_) Link(inb_head_, inb_links_, e, v);
      ++own_count;
    } else {
      ClearTightness(u);
      if (!lazy_) Unlink(inb_head_, inb_links_, e, u);
      --count_[u];
      SetTightnessAndLog(u);
    }
  }
  DYNMIS_DCHECK(lazy_ || bar1_head_[v] == kInvalidEdge);
  DYNMIS_DCHECK(lazy_ || k_ < 2 || bar2_head_[v] == kInvalidEdge);
  count_[v] = own_count;
  SetTightnessAndLog(v);
}

void MisState::OnEdgeAdded(EdgeId e) {
  EnsureCapacity();
  const auto [a, b] = g_->Endpoints(e);
  if (!lazy_) {
    // Reset recycled link slots.
    for (int s = 0; s < 2; ++s) {
      inb_links_[2 * e + s] = LinkPair{};
      bar1_links_[2 * e + s] = LinkPair{};
      if (k_ >= 2) bar2_links_[2 * e + s] = LinkPair{};
    }
  }
  if (status_[a] && status_[b]) return;  // Caller must MoveOut one endpoint.
  VertexId in_i = kInvalidVertex;
  VertexId other = kInvalidVertex;
  if (status_[a]) {
    in_i = a;
    other = b;
  } else if (status_[b]) {
    in_i = b;
    other = a;
  } else {
    return;
  }
  (void)in_i;
  ClearTightness(other);
  if (!lazy_) Link(inb_head_, inb_links_, e, other);
  ++count_[other];
  SetTightnessAndLog(other);
}

void MisState::OnEdgeRemoving(EdgeId e) {
  const auto [a, b] = g_->Endpoints(e);
  DYNMIS_DCHECK(!(status_[a] && status_[b]));
  VertexId other = kInvalidVertex;
  if (status_[a]) {
    other = b;
  } else if (status_[b]) {
    other = a;
  } else {
    return;
  }
  ClearTightness(other);
  if (!lazy_) Unlink(inb_head_, inb_links_, e, other);
  --count_[other];
  SetTightnessAndLog(other);
}

void MisState::OnVertexRemoving(VertexId v) {
  DYNMIS_CHECK(!status_[v]);
  ClearTightness(v);
  if (!lazy_) {
    for (EdgeId e = g_->FirstIncident(v); e != kInvalidEdge;
         e = g_->NextIncident(e, v)) {
      const VertexId u = g_->Other(e, v);
      if (status_[u]) {
        Unlink(inb_head_, inb_links_, e, v);
      }
    }
    DYNMIS_DCHECK(inb_head_[v] == kInvalidEdge);
  }
  count_[v] = 0;
}

size_t MisState::MemoryUsageBytes() const {
  return VectorBytes(status_) + VectorBytes(count_) + VectorBytes(inb_head_) +
         VectorBytes(inb_links_) + VectorBytes(bar1_head_) +
         VectorBytes(bar1_links_) + VectorBytes(bar2_head_) +
         VectorBytes(bar2_links_) + VectorBytes(bar1_size_) +
         VectorBytes(bar1_edge_) + VectorBytes(bar2_edge0_) +
         VectorBytes(bar2_edge1_) + VectorBytes(transitions_) +
         VectorBytes(side_scratch_);
}

void MisState::CheckConsistency(bool expect_maximal) const {
  int64_t in_solution = 0;
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    int solution_neighbors = 0;
    g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
      if (status_[u]) ++solution_neighbors;
    });
    if (status_[v]) {
      ++in_solution;
      DYNMIS_CHECK_EQ(solution_neighbors, 0);  // Independence.
      DYNMIS_CHECK_EQ(count_[v], 0);
    } else {
      DYNMIS_CHECK_EQ(count_[v], solution_neighbors);
      if (expect_maximal) DYNMIS_CHECK_GE(count_[v], 1);  // Maximality.
    }
  }
  DYNMIS_CHECK_EQ(in_solution, solution_size_);
  if (lazy_) return;
  // List consistency: bar1(v) == {u in N(v) : count(u) == 1} and
  // bar2(v) == {u in N(v) : count(u) == 2} for every solution vertex, and
  // inb(u) == u's solution neighbours for every non-solution vertex.
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    if (status_[v]) {
      std::vector<VertexId> listed;
      CollectBar1(v, &listed);
      DYNMIS_CHECK_EQ(static_cast<int>(listed.size()), bar1_size_[v]);
      std::vector<VertexId> expected;
      g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
        if (!status_[u] && count_[u] == 1) expected.push_back(u);
      });
      std::sort(listed.begin(), listed.end());
      std::sort(expected.begin(), expected.end());
      DYNMIS_CHECK(listed == expected);
      if (k_ >= 2) {
        std::vector<VertexId> listed2;
        CollectBar2(v, &listed2);
        std::vector<VertexId> expected2;
        g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
          if (!status_[u] && count_[u] == 2) expected2.push_back(u);
        });
        std::sort(listed2.begin(), listed2.end());
        std::sort(expected2.begin(), expected2.end());
        DYNMIS_CHECK(listed2 == expected2);
      }
    } else {
      std::vector<VertexId> owners;
      ForEachSolutionNeighbor(v, [&](VertexId w) { owners.push_back(w); });
      DYNMIS_CHECK_EQ(static_cast<int>(owners.size()), count_[v]);
      for (VertexId w : owners) {
        DYNMIS_CHECK(status_[w] != 0);
        DYNMIS_CHECK(g_->HasEdge(v, w));
      }
    }
  }
}

}  // namespace dynmis
