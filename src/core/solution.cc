#include "src/core/solution.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

MisState::MisState(DynamicGraph* g, int k, bool lazy)
    : g_(g), k_(k), lazy_(lazy) {
  DYNMIS_CHECK_GE(k, 1);
  EnsureCapacity();
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) OnVertexAdded(v);
}

void MisState::EnsureCapacity() {
  const size_t vcap = g_->VertexCapacity();
  if (status_.size() < vcap) {
    status_.resize(vcap, 0);
    count_.resize(vcap, 0);
    if (!lazy_) {
      inb_head_.resize(vcap, kInvalidEdge);
      bar1_head_.resize(vcap, kInvalidEdge);
      bar1_size_.resize(vcap, 0);
      bar1_edge_.resize(vcap, kInvalidEdge);
      if (k_ >= 2) {
        bar2_head_.resize(vcap, kInvalidEdge);
        bar2_edge0_.resize(vcap, kInvalidEdge);
        bar2_edge1_.resize(vcap, kInvalidEdge);
      }
    }
  }
  if (!lazy_) {
    const size_t ecap = 2 * static_cast<size_t>(g_->EdgeCapacity());
    if (inb_links_.size() < ecap) {
      inb_links_.resize(ecap);
      bar1_links_.resize(ecap);
      if (k_ >= 2) bar2_links_.resize(ecap);
    }
  }
}

void MisState::OnVertexAdded(VertexId v) {
  EnsureCapacity();
  status_[v] = 0;
  count_[v] = 0;
  if (!lazy_) {
    inb_head_[v] = kInvalidEdge;
    bar1_head_[v] = kInvalidEdge;
    bar1_size_[v] = 0;
    bar1_edge_[v] = kInvalidEdge;
    if (k_ >= 2) {
      bar2_head_[v] = kInvalidEdge;
      bar2_edge0_[v] = kInvalidEdge;
      bar2_edge1_[v] = kInvalidEdge;
    }
  }
}

std::vector<VertexId> MisState::Solution() const {
  std::vector<VertexId> out;
  AppendSolution(&out);
  return out;
}

void MisState::AppendSolution(std::vector<VertexId>* out) const {
  out->reserve(out->size() + static_cast<size_t>(solution_size_));
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && status_[v]) out->push_back(v);
  }
}

VertexId MisState::OwnerOf(VertexId u) const {
  DYNMIS_DCHECK(count_[u] >= 1);
  if (!lazy_) {
    DYNMIS_DCHECK(inb_head_[u] != kInvalidEdge);
    return g_->Other(inb_head_[u], u);
  }
  VertexId owner = kInvalidVertex;
  for (EdgeId e = g_->FirstIncident(u); e != kInvalidEdge;
       e = g_->NextIncident(e, u)) {
    const VertexId w = g_->Other(e, u);
    if (status_[w]) {
      owner = w;
      break;
    }
  }
  DYNMIS_DCHECK(owner != kInvalidVertex);
  return owner;
}

void MisState::OwnersOf2(VertexId u, VertexId* a, VertexId* b) const {
  DYNMIS_DCHECK(count_[u] == 2);
  VertexId first = kInvalidVertex;
  VertexId second = kInvalidVertex;
  ForEachSolutionNeighbor(u, [&](VertexId w) {
    if (first == kInvalidVertex) {
      first = w;
    } else if (second == kInvalidVertex) {
      second = w;
    }
  });
  DYNMIS_DCHECK(first != kInvalidVertex && second != kInvalidVertex);
  if (first > second) std::swap(first, second);
  *a = first;
  *b = second;
}

int MisState::Bar1Size(VertexId v) const {
  DYNMIS_DCHECK(InSolution(v));
  if (!lazy_) return bar1_size_[v];
  int size = 0;
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
    if (count_[u] == 1) ++size;
  });
  return size;
}

void MisState::CollectBar1(VertexId v, std::vector<VertexId>* out) const {
  DYNMIS_DCHECK(InSolution(v));
  if (!lazy_) {
    for (EdgeId e = bar1_head_[v]; e != kInvalidEdge;
         e = bar1_links_[Slot(e, v)].next) {
      out->push_back(g_->Other(e, v));
    }
    return;
  }
  // Lazy: u in N(v) with count(u) == 1 necessarily has v as its unique
  // solution neighbour, so a single scan of N(v) suffices.
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
    if (!status_[u] && count_[u] == 1) out->push_back(u);
  });
}

void MisState::CollectBar2(VertexId v, std::vector<VertexId>* out) const {
  DYNMIS_DCHECK(InSolution(v));
  DYNMIS_CHECK_GE(k_, 2);
  if (!lazy_) {
    for (EdgeId e = bar2_head_[v]; e != kInvalidEdge;
         e = bar2_links_[Slot(e, v)].next) {
      out->push_back(g_->Other(e, v));
    }
    return;
  }
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
    if (!status_[u] && count_[u] == 2) out->push_back(u);
  });
}

void MisState::CollectBar2Pair(VertexId x, VertexId y,
                               std::vector<VertexId>* out) const {
  DYNMIS_CHECK_GE(k_, 2);
  DYNMIS_DCHECK(InSolution(x) && InSolution(y));
  // Enumerate one owner's bar2 list and keep members whose second solution
  // neighbour is the other owner; in lazy mode scan the lower-degree owner.
  if (lazy_ && g_->Degree(x) > g_->Degree(y)) std::swap(x, y);
  std::vector<VertexId>& side = side_scratch_;
  side.clear();
  CollectBar2(x, &side);
  for (VertexId u : side) {
    VertexId a, b;
    OwnersOf2(u, &a, &b);
    const VertexId other = a == x ? b : a;
    if (other == y) out->push_back(u);
  }
}

void MisState::Link(std::vector<EdgeId>& head, std::vector<LinkPair>& links,
                    EdgeId e, VertexId owner) {
  const int slot = Slot(e, owner);
  links[slot].next = head[owner];
  links[slot].prev = kInvalidEdge;
  if (head[owner] != kInvalidEdge) {
    links[Slot(head[owner], owner)].prev = e;
  }
  head[owner] = e;
}

void MisState::Unlink(std::vector<EdgeId>& head, std::vector<LinkPair>& links,
                      EdgeId e, VertexId owner) {
  const int slot = Slot(e, owner);
  const EdgeId p = links[slot].prev;
  const EdgeId n = links[slot].next;
  if (p != kInvalidEdge) {
    links[Slot(p, owner)].next = n;
  } else {
    DYNMIS_DCHECK(head[owner] == e);
    head[owner] = n;
  }
  if (n != kInvalidEdge) links[Slot(n, owner)].prev = p;
  links[slot].next = kInvalidEdge;
  links[slot].prev = kInvalidEdge;
}

void MisState::ClearTightness(VertexId u) {
  if (lazy_) return;
  if (bar1_edge_[u] != kInvalidEdge) {
    const EdgeId e = bar1_edge_[u];
    const VertexId owner = g_->Other(e, u);
    Unlink(bar1_head_, bar1_links_, e, owner);
    --bar1_size_[owner];
    bar1_edge_[u] = kInvalidEdge;
  }
  if (k_ >= 2) {
    for (EdgeId* slot : {&bar2_edge0_[u], &bar2_edge1_[u]}) {
      if (*slot != kInvalidEdge) {
        const EdgeId e = *slot;
        const VertexId owner = g_->Other(e, u);
        Unlink(bar2_head_, bar2_links_, e, owner);
        *slot = kInvalidEdge;
      }
    }
  }
}

void MisState::SetTightnessAndLog(VertexId u) {
  if (status_[u]) return;
  const int c = count_[u];
  if (!lazy_) {
    if (c == 1) {
      const EdgeId e = inb_head_[u];
      DYNMIS_DCHECK(e != kInvalidEdge);
      const VertexId owner = g_->Other(e, u);
      Link(bar1_head_, bar1_links_, e, owner);
      ++bar1_size_[owner];
      bar1_edge_[u] = e;
    } else if (c == 2 && k_ >= 2) {
      const EdgeId e0 = inb_head_[u];
      DYNMIS_DCHECK(e0 != kInvalidEdge);
      const EdgeId e1 = inb_links_[Slot(e0, u)].next;
      DYNMIS_DCHECK(e1 != kInvalidEdge);
      Link(bar2_head_, bar2_links_, e0, g_->Other(e0, u));
      Link(bar2_head_, bar2_links_, e1, g_->Other(e1, u));
      bar2_edge0_[u] = e0;
      bar2_edge1_[u] = e1;
    }
  }
  if (c >= 1 && c <= k_) transitions_.push_back(u);
}

void MisState::MoveIn(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  DYNMIS_CHECK(!status_[v]);
  DYNMIS_CHECK_EQ(count_[v], 0);
  ClearTightness(v);  // count == 0 implies no membership; cheap safety.
  status_[v] = 1;
  ++solution_size_;
  ++status_ops_;
  if (status_observer_ != nullptr) {
    status_observer_(status_observer_ctx_, v, true);
  }
  for (EdgeId e = g_->FirstIncident(v); e != kInvalidEdge;
       e = g_->NextIncident(e, v)) {
    const VertexId u = g_->Other(e, v);
    DYNMIS_DCHECK(!status_[u]);
    ClearTightness(u);
    if (!lazy_) Link(inb_head_, inb_links_, e, u);
    ++count_[u];
    SetTightnessAndLog(u);
  }
}

void MisState::MoveOut(VertexId v) {
  DYNMIS_CHECK(status_[v] != 0);
  status_[v] = 0;
  --solution_size_;
  ++status_ops_;
  if (status_observer_ != nullptr) {
    status_observer_(status_observer_ctx_, v, false);
  }
  int own_count = 0;
  for (EdgeId e = g_->FirstIncident(v); e != kInvalidEdge;
       e = g_->NextIncident(e, v)) {
    const VertexId u = g_->Other(e, v);
    if (status_[u]) {
      // Transient both-in-I situation (edge-insert handling): v gains u as
      // a solution neighbour.
      if (!lazy_) Link(inb_head_, inb_links_, e, v);
      ++own_count;
    } else {
      ClearTightness(u);
      if (!lazy_) Unlink(inb_head_, inb_links_, e, u);
      --count_[u];
      SetTightnessAndLog(u);
    }
  }
  DYNMIS_DCHECK(lazy_ || bar1_head_[v] == kInvalidEdge);
  DYNMIS_DCHECK(lazy_ || k_ < 2 || bar2_head_[v] == kInvalidEdge);
  count_[v] = own_count;
  SetTightnessAndLog(v);
}

void MisState::OnEdgeAdded(EdgeId e) {
  EnsureCapacity();
  const auto [a, b] = g_->Endpoints(e);
  if (!lazy_) {
    // Reset recycled link slots.
    for (int s = 0; s < 2; ++s) {
      inb_links_[2 * e + s] = LinkPair{};
      bar1_links_[2 * e + s] = LinkPair{};
      if (k_ >= 2) bar2_links_[2 * e + s] = LinkPair{};
    }
  }
  if (status_[a] && status_[b]) return;  // Caller must MoveOut one endpoint.
  VertexId in_i = kInvalidVertex;
  VertexId other = kInvalidVertex;
  if (status_[a]) {
    in_i = a;
    other = b;
  } else if (status_[b]) {
    in_i = b;
    other = a;
  } else {
    return;
  }
  (void)in_i;
  ClearTightness(other);
  if (!lazy_) Link(inb_head_, inb_links_, e, other);
  ++count_[other];
  SetTightnessAndLog(other);
}

void MisState::OnEdgeRemoving(EdgeId e) {
  const auto [a, b] = g_->Endpoints(e);
  DYNMIS_DCHECK(!(status_[a] && status_[b]));
  VertexId other = kInvalidVertex;
  if (status_[a]) {
    other = b;
  } else if (status_[b]) {
    other = a;
  } else {
    return;
  }
  ClearTightness(other);
  if (!lazy_) Unlink(inb_head_, inb_links_, e, other);
  --count_[other];
  SetTightnessAndLog(other);
}

void MisState::OnVertexRemoving(VertexId v) {
  DYNMIS_CHECK(!status_[v]);
  ClearTightness(v);
  if (!lazy_) {
    for (EdgeId e = g_->FirstIncident(v); e != kInvalidEdge;
         e = g_->NextIncident(e, v)) {
      const VertexId u = g_->Other(e, v);
      if (status_[u]) {
        Unlink(inb_head_, inb_links_, e, v);
      }
    }
    DYNMIS_DCHECK(inb_head_[v] == kInvalidEdge);
  }
  count_[v] = 0;
}

namespace {

// LinkPair arrays travel as interleaved (next, prev) i32 arrays.
void AppendLinks(std::vector<int32_t>* out, int32_t next, int32_t prev) {
  out->push_back(next);
  out->push_back(prev);
}

}  // namespace

void MisState::SaveTo(SnapshotWriter* w) const {
  DYNMIS_CHECK(transitions_.empty());  // Quiescent-point contract.
  w->BeginSection("mis");
  w->PutI32(k_);
  w->PutU8(lazy_ ? 1 : 0);
  w->PutI64(solution_size_);
  w->PutU8Array(status_);
  w->PutI32Array(count_);
  if (lazy_) {
    w->EndSection();
    return;
  }
  w->PutI32Array(inb_head_);
  w->PutI32Array(bar1_head_);
  w->PutI32Array(bar1_size_);
  w->PutI32Array(bar1_edge_);
  std::vector<int32_t> links;
  links.reserve(2 * inb_links_.size());
  for (const LinkPair& link : inb_links_) {
    AppendLinks(&links, link.next, link.prev);
  }
  w->PutI32Array(links);
  links.clear();
  for (const LinkPair& link : bar1_links_) {
    AppendLinks(&links, link.next, link.prev);
  }
  w->PutI32Array(links);
  if (k_ >= 2) {
    w->PutI32Array(bar2_head_);
    w->PutI32Array(bar2_edge0_);
    w->PutI32Array(bar2_edge1_);
    links.clear();
    for (const LinkPair& link : bar2_links_) {
      AppendLinks(&links, link.next, link.prev);
    }
    w->PutI32Array(links);
  }
  w->EndSection();
}

bool MisState::LoadFrom(SnapshotReader* r) {
  if (!r->OpenSection("mis")) return false;
  auto fail = [&](const char* message) {
    r->Fail(std::string("snapshot: mis: ") + message);
    return false;
  };

  const int32_t k = r->GetI32();
  const bool lazy = r->GetU8() != 0;
  const int64_t solution_size = r->GetI64();
  if (!r->ok()) return false;
  if (k != k_ || lazy != lazy_) {
    return fail("maintainer parameters (k / lazy) do not match the snapshot");
  }
  const size_t vcap = static_cast<size_t>(g_->VertexCapacity());
  const size_t link_cap = 2 * static_cast<size_t>(g_->EdgeCapacity());
  std::vector<uint8_t> status;
  std::vector<int32_t> count;
  if (!r->GetU8Array(&status) || !r->GetI32Array(&count)) return false;
  if (status.size() != vcap || count.size() != vcap) {
    return fail("per-vertex array sizes do not match the graph");
  }
  int64_t counted = 0;
  for (size_t v = 0; v < vcap; ++v) {
    if (status[v] > 1) return fail("status value out of range");
    if (status[v] != 0) {
      if (!g_->IsVertexAlive(static_cast<VertexId>(v))) {
        return fail("dead vertex marked in solution");
      }
      ++counted;
    }
    if (count[v] < 0) return fail("negative solution-neighbour count");
  }
  if (counted != solution_size) return fail("solution size mismatch");

  auto load_heads = [&](std::vector<int32_t>* out, bool edge_ids) {
    if (!r->GetI32Array(out)) return false;
    if (out->size() != vcap) return fail("per-vertex array size mismatch");
    const int32_t bound = edge_ids ? g_->EdgeCapacity() : 0;
    for (int32_t value : *out) {
      if (value < kInvalidEdge || (edge_ids && value >= bound)) {
        return fail("edge id out of range");
      }
    }
    return true;
  };
  auto load_links = [&](std::vector<LinkPair>* out) {
    std::vector<int32_t> flat;
    if (!r->GetI32Array(&flat)) return false;
    if (flat.size() != 2 * link_cap) return fail("link array size mismatch");
    out->resize(link_cap);
    for (size_t i = 0; i < link_cap; ++i) {
      const int32_t next = flat[2 * i];
      const int32_t prev = flat[2 * i + 1];
      if (next < kInvalidEdge || next >= g_->EdgeCapacity() ||
          prev < kInvalidEdge || prev >= g_->EdgeCapacity()) {
        return fail("link edge id out of range");
      }
      (*out)[i] = LinkPair{next, prev};
    }
    return true;
  };

  // Independence and count correctness against the restored topology:
  // status/count are trusted by every update handler (MoveIn aborts on a
  // violated precondition), so a CRC-valid but semantically corrupt
  // section must be rejected here, not discovered mid-update. O(n + m).
  for (size_t v = 0; v < vcap; ++v) {
    if (!g_->IsVertexAlive(static_cast<VertexId>(v))) continue;
    int solution_neighbors = 0;
    g_->ForEachIncident(static_cast<VertexId>(v), [&](VertexId u, EdgeId) {
      if (status[u]) ++solution_neighbors;
    });
    if (status[v] != 0) {
      if (solution_neighbors != 0) return fail("solution is not independent");
      if (count[v] != 0) return fail("solution vertex with nonzero count");
    } else if (count[v] != solution_neighbors) {
      return fail("count does not match solution neighbourhood");
    } else if (solution_neighbors == 0) {
      // Every maintainer keeps its solution maximal at quiescent points; an
      // uncovered vertex would never be repaired after load (updates only
      // react to changes) and hard-aborts a later CheckConsistency.
      return fail("solution is not maximal");
    }
  }
  if (lazy_ && !r->AtSectionEnd()) {
    return fail("trailing bytes after the last field");
  }

  if (!lazy_) {
    std::vector<int32_t> inb_head, bar1_head, bar1_size, bar1_edge;
    std::vector<LinkPair> inb_links, bar1_links;
    if (!load_heads(&inb_head, true) || !load_heads(&bar1_head, true) ||
        !load_heads(&bar1_size, false) || !load_heads(&bar1_edge, true) ||
        !load_links(&inb_links) || !load_links(&bar1_links)) {
      return false;
    }
    for (int32_t size : bar1_size) {
      if (size < 0) return fail("negative bar1 size");
    }
    std::vector<int32_t> bar2_head, bar2_edge0, bar2_edge1;
    std::vector<LinkPair> bar2_links;
    if (k_ >= 2) {
      if (!load_heads(&bar2_head, true) || !load_heads(&bar2_edge0, true) ||
          !load_heads(&bar2_edge1, true) || !load_links(&bar2_links)) {
        return false;
      }
    }

    // Structural validation of the intrusive lists: every chain must be a
    // terminating, non-cyclic walk over alive incident edges whose members
    // carry matching tightness counts and membership records. Slot-visit
    // maps bound every walk (a crafted cycle fails, it cannot loop), and
    // the membership cross-check at the end guarantees ClearTightness will
    // only ever unlink edges that really are linked. O(n + m).
    // One shared slot map covers all three link arrays: a slot on a
    // solution vertex's side carries at most one bar1/bar2 linkage, and a
    // slot on a non-solution side at most one I(v) linkage.
    std::vector<uint8_t> slot_seen(link_cap, 0);
    std::vector<uint8_t> listed1(vcap, 0), listed20(vcap, 0),
        listed21(vcap, 0);
    auto walk = [&](EdgeId head, VertexId owner,
                    const std::vector<LinkPair>& links, int max_steps,
                    auto&& member_check) {
      int steps = 0;
      for (EdgeId e = head; e != kInvalidEdge;) {
        if (!g_->IsEdgeAlive(e)) return -1;
        const auto [a, b] = g_->Endpoints(e);
        if (a != owner && b != owner) return -1;
        const int slot = Slot(e, owner);
        if (slot_seen[slot]) return -1;  // Cycle or cross-linked chain.
        slot_seen[slot] = 1;
        if (++steps > max_steps) return -1;
        if (!member_check(g_->Other(e, owner), e)) return -1;
        e = links[slot].next;
      }
      return steps;
    };
    const int32_t vcap_i = static_cast<int32_t>(vcap);
    for (VertexId v = 0; v < vcap_i; ++v) {
      if (!g_->IsVertexAlive(v)) continue;
      if (status[v] != 0) {
        if (inb_head[v] != kInvalidEdge) {
          return fail("solution vertex with a nonempty I(v) list");
        }
        const int steps =
            walk(bar1_head[v], v, bar1_links, g_->Degree(v),
                 [&](VertexId u, EdgeId e) {
                   if (status[u] != 0 || count[u] != 1) return false;
                   if (bar1_edge[u] != e || listed1[u]) return false;
                   listed1[u] = 1;
                   return true;
                 });
        if (steps < 0 || steps != bar1_size[v]) {
          return fail("bar1 list structure invalid");
        }
        if (k_ >= 2) {
          const int steps2 =
              walk(bar2_head[v], v, bar2_links, g_->Degree(v),
                   [&](VertexId u, EdgeId e) {
                     if (status[u] != 0 || count[u] != 2) return false;
                     if (bar2_edge0[u] == e && !listed20[u]) {
                       listed20[u] = 1;
                     } else if (bar2_edge1[u] == e && !listed21[u]) {
                       listed21[u] = 1;
                     } else {
                       return false;
                     }
                     return true;
                   });
          if (steps2 < 0) return fail("bar2 list structure invalid");
        }
      } else {
        const int steps = walk(inb_head[v], v, inb_links, count[v],
                               [&](VertexId u, EdgeId) {
                                 return status[u] != 0;
                               });
        if (steps != count[v]) return fail("I(v) list structure invalid");
      }
    }
    // Membership records must mirror the walked lists exactly, in both
    // directions: no dangling record (unlink would corrupt a head), no
    // unrecorded member (the member could be linked twice later).
    for (VertexId v = 0; v < vcap_i; ++v) {
      if (!g_->IsVertexAlive(v) || status[v] != 0) continue;
      if ((bar1_edge[v] != kInvalidEdge) != (listed1[v] != 0)) {
        return fail("bar1 membership record mismatch");
      }
      // Completeness: the tightness lists must cover every tracked-count
      // vertex (bar1(v) = all count-1 neighbours, bar2 both-sided), or the
      // restored maintainer would silently skip swap opportunities that
      // CheckConsistency later flags as corruption.
      if (count[v] == 1 && !listed1[v]) {
        return fail("count-1 vertex missing from its owner's bar1 list");
      }
      if (k_ >= 2) {
        if ((bar2_edge0[v] != kInvalidEdge) != (listed20[v] != 0) ||
            (bar2_edge1[v] != kInvalidEdge) != (listed21[v] != 0)) {
          return fail("bar2 membership record mismatch");
        }
        if (count[v] == 2 && (!listed20[v] || !listed21[v])) {
          return fail("count-2 vertex missing from its bar2 lists");
        }
      }
    }
    if (!r->AtSectionEnd()) return fail("trailing bytes after the last field");

    inb_head_ = std::move(inb_head);
    bar1_head_ = std::move(bar1_head);
    bar1_size_ = std::move(bar1_size);
    bar1_edge_ = std::move(bar1_edge);
    inb_links_ = std::move(inb_links);
    bar1_links_ = std::move(bar1_links);
    bar2_head_ = std::move(bar2_head);
    bar2_edge0_ = std::move(bar2_edge0);
    bar2_edge1_ = std::move(bar2_edge1);
    bar2_links_ = std::move(bar2_links);
  }
  status_ = std::move(status);
  count_ = std::move(count);
  solution_size_ = solution_size;
  transitions_.clear();
  return true;
}

size_t MisState::MemoryUsageBytes() const {
  return VectorBytes(status_) + VectorBytes(count_) + VectorBytes(inb_head_) +
         VectorBytes(inb_links_) + VectorBytes(bar1_head_) +
         VectorBytes(bar1_links_) + VectorBytes(bar2_head_) +
         VectorBytes(bar2_links_) + VectorBytes(bar1_size_) +
         VectorBytes(bar1_edge_) + VectorBytes(bar2_edge0_) +
         VectorBytes(bar2_edge1_) + VectorBytes(transitions_) +
         VectorBytes(side_scratch_);
}

void MisState::CheckConsistency(bool expect_maximal) const {
  int64_t in_solution = 0;
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    int solution_neighbors = 0;
    g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
      if (status_[u]) ++solution_neighbors;
    });
    if (status_[v]) {
      ++in_solution;
      DYNMIS_CHECK_EQ(solution_neighbors, 0);  // Independence.
      DYNMIS_CHECK_EQ(count_[v], 0);
    } else {
      DYNMIS_CHECK_EQ(count_[v], solution_neighbors);
      if (expect_maximal) DYNMIS_CHECK_GE(count_[v], 1);  // Maximality.
    }
  }
  DYNMIS_CHECK_EQ(in_solution, solution_size_);
  if (lazy_) return;
  // List consistency: bar1(v) == {u in N(v) : count(u) == 1} and
  // bar2(v) == {u in N(v) : count(u) == 2} for every solution vertex, and
  // inb(u) == u's solution neighbours for every non-solution vertex.
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    if (status_[v]) {
      std::vector<VertexId> listed;
      CollectBar1(v, &listed);
      DYNMIS_CHECK_EQ(static_cast<int>(listed.size()), bar1_size_[v]);
      std::vector<VertexId> expected;
      g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
        if (!status_[u] && count_[u] == 1) expected.push_back(u);
      });
      std::sort(listed.begin(), listed.end());
      std::sort(expected.begin(), expected.end());
      DYNMIS_CHECK(listed == expected);
      if (k_ >= 2) {
        std::vector<VertexId> listed2;
        CollectBar2(v, &listed2);
        std::vector<VertexId> expected2;
        g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
          if (!status_[u] && count_[u] == 2) expected2.push_back(u);
        });
        std::sort(listed2.begin(), listed2.end());
        std::sort(expected2.begin(), expected2.end());
        DYNMIS_CHECK(listed2 == expected2);
      }
    } else {
      std::vector<VertexId> owners;
      ForEachSolutionNeighbor(v, [&](VertexId w) { owners.push_back(w); });
      DYNMIS_CHECK_EQ(static_cast<int>(owners.size()), count_[v]);
      for (VertexId w : owners) {
        DYNMIS_CHECK(status_[w] != 0);
        DYNMIS_CHECK(g_->HasEdge(v, w));
      }
    }
  }
}

}  // namespace dynmis
