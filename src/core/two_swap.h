// DyTwoSwap (paper Algorithm 3): maintains a 2-maximal independent set over
// a dynamic graph. The worst-case approximation ratio is the same
// (Delta/2 + 1) as DyOneSwap (Theorem 3 shows larger k cannot improve it),
// but eliminating 2-swaps yields measurably larger solutions in practice at
// near-linear expected cost on power-law bounded graphs (Lemma 2).
//
// Processing is bottom-up: the candidate queue C1 (1-swaps) is always
// drained before C2 (2-swaps), so when a pair S = {u, v} is examined the
// solution is already 1-maximal. This justifies the paper's refinement of
// the swap-in search: a valid 2-swap needs an independent triple
// {x, y, z} with x in bar_I2(S), y in bar_I1(u) u bar_I2(S) \ N[x] and
// z in bar_I1(v) u bar_I2(S) \ N[x].

#ifndef DYNMIS_SRC_CORE_TWO_SWAP_H_
#define DYNMIS_SRC_CORE_TWO_SWAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"
#include "src/core/solution.h"

namespace dynmis {

class DyTwoSwap : public DynamicMisMaintainer {
 public:
  explicit DyTwoSwap(DynamicGraph* g, MaintainerConfig options = {});

  void Initialize(const std::vector<VertexId>& initial) override;
  void InitializeEmpty() { Initialize({}); }

  void InsertEdge(VertexId u, VertexId v) override;
  void DeleteEdge(VertexId u, VertexId v) override;
  VertexId InsertVertex(const std::vector<VertexId>& neighbors) override;
  void DeleteVertex(VertexId v) override;

  // Deferred-restoration batch processing (see DynamicMisMaintainer).
  std::vector<VertexId> ApplyBatch(
      const std::vector<GraphUpdate>& updates) override;

  bool InSolution(VertexId v) const override { return state_.InSolution(v); }
  int64_t SolutionSize() const override { return state_.SolutionSize(); }
  std::vector<VertexId> Solution() const override { return state_.Solution(); }
  size_t MemoryUsageBytes() const override;
  std::string Name() const override;

  void CheckConsistency() const { state_.CheckConsistency(/*expect_maximal=*/true); }

  struct Stats {
    int64_t one_swaps = 0;
    int64_t two_swaps = 0;
    int64_t candidates_processed = 0;
    int64_t pair_candidates_processed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Pair key for C2: packs the ordered solution pair {x < y}.
  static uint64_t PairKey(VertexId x, VertexId y);
  static void UnpackPair(uint64_t key, VertexId* x, VertexId* y);

  void EnsureCapacity();
  void ResetVertexSlots(VertexId v);
  void ExtendSolution(std::vector<VertexId> candidates);
  void EnqueueC1(VertexId owner, VertexId u);
  void EnqueueC2(uint64_t pair_key, VertexId x);
  void DrainTransitions();
  void ProcessQueues();
  void FindOneSwapStep();
  void FindTwoSwapStep();
  void PerformOneSwap(VertexId v, VertexId u,
                      const std::vector<VertexId>& bar1_snapshot);
  void PerformTwoSwap(VertexId x, VertexId y, VertexId in_a, VertexId in_b,
                      VertexId in_c, std::vector<VertexId> region_snapshot);
  void NewEpoch() { ++epoch_; }
  void Mark(VertexId v) { mark_[v] = epoch_; }
  bool Marked(VertexId v) const { return mark_[v] == epoch_; }

  DynamicGraph* g_;
  MaintainerConfig options_;
  MisState state_;
  // True while inside ApplyBatch: handlers defer ProcessQueues to batch end.
  bool deferred_ = false;

  // C1: per-solution-vertex candidate lists.
  std::vector<VertexId> c1_queue_;
  std::vector<uint8_t> in_c1_;
  std::vector<std::vector<VertexId>> cand_of_;
  std::vector<VertexId> cand_owner_;

  // C2: per-solution-pair candidate lists, keyed by packed pair.
  std::vector<uint64_t> c2_queue_;
  std::unordered_map<uint64_t, std::vector<VertexId>> c2_cands_;
  // cand2_key_[x]: pair key under which x is enqueued, 0 when none.
  std::vector<uint64_t> cand2_key_;

  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> scratch_;

  Stats stats_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_CORE_TWO_SWAP_H_
