// DyTwoSwap (paper Algorithm 3): maintains a 2-maximal independent set over
// a dynamic graph. The worst-case approximation ratio is the same
// (Delta/2 + 1) as DyOneSwap (Theorem 3 shows larger k cannot improve it),
// but eliminating 2-swaps yields measurably larger solutions in practice at
// near-linear expected cost on power-law bounded graphs (Lemma 2).
//
// Processing is bottom-up: the candidate queue C1 (1-swaps) is always
// drained before C2 (2-swaps), so when a pair S = {u, v} is examined the
// solution is already 1-maximal. This justifies the paper's refinement of
// the swap-in search: a valid 2-swap needs an independent triple
// {x, y, z} with x in bar_I2(S), y in bar_I1(u) u bar_I2(S) \ N[x] and
// z in bar_I1(v) u bar_I2(S) \ N[x].

#ifndef DYNMIS_SRC_CORE_TWO_SWAP_H_
#define DYNMIS_SRC_CORE_TWO_SWAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"
#include "src/core/candidate_list.h"
#include "src/core/solution.h"

namespace dynmis {

class DyTwoSwap : public DynamicMisMaintainer {
 public:
  explicit DyTwoSwap(DynamicGraph* g, MaintainerConfig options = {});

  void Initialize(const std::vector<VertexId>& initial) override;
  void InitializeEmpty() { Initialize({}); }

  void InsertEdge(VertexId u, VertexId v) override;
  void DeleteEdge(VertexId u, VertexId v) override;
  VertexId InsertVertex(const std::vector<VertexId>& neighbors) override;
  void DeleteVertex(VertexId v) override;

  // Deferred-restoration batch processing (see DynamicMisMaintainer).
  std::vector<VertexId> ApplyBatch(
      const std::vector<GraphUpdate>& updates) override;

  bool InSolution(VertexId v) const override { return state_.InSolution(v); }
  int64_t SolutionSize() const override { return state_.SolutionSize(); }
  std::vector<VertexId> Solution() const override { return state_.Solution(); }
  void CollectSolution(std::vector<VertexId>* out) const override {
    state_.AppendSolution(out);
  }
  size_t MemoryUsageBytes() const override;
  std::string Name() const override;

  // Persists the MisState arrays verbatim (section "mis"); the C1/C2
  // candidate queues are empty at every quiescent point, so no queue state
  // travels. Load restores the arrays directly — no recompute.
  void SaveState(SnapshotWriter* w) const override;
  bool LoadState(SnapshotReader* r, const DynamicGraph& g) override;

  // Lifetime MoveIn/MoveOut count of the underlying state (see DyOneSwap).
  int64_t StateTransitionOps() const { return state_.status_ops(); }

  bool SetStatusObserver(StatusObserverFn fn, void* ctx) override {
    state_.SetStatusObserver(fn, ctx);
    return true;
  }

  void CheckConsistency() const {
    state_.CheckConsistency(/*expect_maximal=*/true);
  }

  struct Stats {
    int64_t one_swaps = 0;
    int64_t two_swaps = 0;
    int64_t candidates_processed = 0;
    int64_t pair_candidates_processed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Pair key for C2: packs the ordered solution pair {x < y}. Used only for
  // the per-candidate dedup stamp (cand2_key_); bucket lookup is chain-based.
  static uint64_t PairKey(VertexId x, VertexId y);

  void EnsureCapacity();
  void ResetVertexSlots(VertexId v);
  // Moves every count-0 vertex in `*candidates` into the solution (in degree
  // order under perturbation). Borrows the caller's buffer — may reorder it.
  void ExtendSolution(std::vector<VertexId>* candidates);
  void EnqueueC1(VertexId owner, VertexId u);
  void EnqueueC2(VertexId a, VertexId b, VertexId x);
  void DrainTransitions();
  void ProcessQueues();
  void FindOneSwapStep();
  void FindTwoSwapStep();
  // Snapshot arguments are borrowed scratch (consumed by ExtendSolution).
  void PerformOneSwap(VertexId v, VertexId u,
                      std::vector<VertexId>* bar1_snapshot);
  void PerformTwoSwap(VertexId x, VertexId y, VertexId in_a, VertexId in_b,
                      VertexId in_c, std::vector<VertexId>* region_snapshot);
  // Removes `x` from its current C2 bucket (requires cand2_key_[x] != 0).
  void UnlinkC2(VertexId x);
  // Returns the chain link slot (&c2_head_[a] or an active bucket's `next`
  // field) whose target is the bucket for pair {a < b}; the terminating
  // slot (*slot == -1) when the pair has no active bucket. The returned
  // pointer is invalidated by any c2_pool_ growth.
  int32_t* FindBucketLink(VertexId a, VertexId b);
  void NewEpoch() { ++epoch_; }
  void Mark(VertexId v) { mark_[v] = epoch_; }
  bool Marked(VertexId v) const { return mark_[v] == epoch_; }

  DynamicGraph* g_;
  MaintainerConfig options_;
  MisState state_;
  // True while inside ApplyBatch: handlers defer ProcessQueues to batch end.
  bool deferred_ = false;

  // C1: per-solution-vertex candidate lists, intrusive and allocation-free
  // (see CandidateList; the former vector<vector<VertexId>> allocated on
  // first enqueue under every new owner).
  std::vector<VertexId> c1_queue_;
  std::vector<uint8_t> in_c1_;
  CandidateList cands_;

  // C2: per-solution-pair candidate buckets drawn from a reusable pool —
  // the former unordered_map<pair key, vector> cost a hash probe plus node
  // and vector allocations on every count-2 transition. A bucket lives from
  // its first candidate until FindTwoSwapStep pops it; lookup is a walk of
  // the (nearly always single-entry) chain of active buckets sharing the
  // pair's smaller endpoint. Bucket membership is again an intrusive list
  // through flat per-vertex slots (a vertex sits in at most one bucket, per
  // cand2_key_), so the pool records are plain 16-byte structs.
  struct PairBucket {
    VertexId x = kInvalidVertex;     // Smaller endpoint of the pair.
    VertexId y = kInvalidVertex;     // Larger endpoint.
    VertexId head = kInvalidVertex;  // First member candidate.
    int32_t next = -1;  // Next active bucket with the same x, -1 at end.
  };
  std::vector<PairBucket> c2_pool_;
  std::vector<int32_t> c2_free_;   // Pool indices available for reuse.
  std::vector<int32_t> c2_queue_;  // Active bucket indices (LIFO).
  // c2_head_[v]: first active bucket whose smaller endpoint is v, -1 none.
  std::vector<int32_t> c2_head_;
  // cand2_key_[x]: packed pair key under which x is enqueued, 0 when none.
  std::vector<uint64_t> cand2_key_;
  std::vector<VertexId> cand2_next_, cand2_prev_;  // Per member vertex.

  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;

  // Reusable scratch buffers (grow to the workload's high-water mark, then
  // stay put).
  std::vector<VertexId> kept_;  // Validated candidates.
  std::vector<VertexId> bar1_scratch_;
  std::vector<VertexId> bar2_scratch_;
  std::vector<VertexId> bar1x_, bar1y_, bar2s_;  // FindTwoSwapStep sets.
  std::vector<VertexId> cy_, cz_;
  std::vector<VertexId> region_;
  std::vector<VertexId> extend_scratch_;  // Freed vertices / neighborhoods.

  Stats stats_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_CORE_TWO_SWAP_H_
