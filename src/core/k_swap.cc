#include "src/core/k_swap.h"

#include <algorithm>

#include "src/util/memory.h"
#include "src/util/random.h"

namespace dynmis {

KSwapMaintainer::KSwapMaintainer(DynamicGraph* g, int k,
                                 MaintainerConfig options)
    : g_(g), k_(k), options_(options), state_(g, k, options.lazy) {
  DYNMIS_CHECK_GE(k, 1);
  DYNMIS_CHECK_LE(k, kMaxKSwapOrder);
  EnsureCapacity();
}

void KSwapMaintainer::EnsureCapacity() {
  state_.EnsureCapacity();
  const size_t vcap = g_->VertexCapacity();
  if (in_worklist_.size() < vcap) {
    in_worklist_.resize(vcap, 0);
    mark_.resize(vcap, 0);
  }
}

void KSwapMaintainer::ResetVertexSlots(VertexId v) {
  EnsureCapacity();
  state_.OnVertexAdded(v);
  in_worklist_[v] = 0;
  mark_[v] = 0;
}

void KSwapMaintainer::Initialize(const std::vector<VertexId>& initial) {
  for (VertexId v : initial) {
    DYNMIS_CHECK(g_->IsVertexAlive(v));
    state_.MoveIn(v);
  }
  std::vector<VertexId> free;
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && !state_.InSolution(v) && state_.Count(v) == 0) {
      free.push_back(v);
    }
  }
  ExtendSolution(&free);
  state_.DiscardTransitions();
  for (VertexId u = 0; u < g_->VertexCapacity(); ++u) {
    if (g_->IsVertexAlive(u) && !state_.InSolution(u) &&
        state_.Count(u) >= 1 && state_.Count(u) <= k_) {
      PushWitness(u);
    }
  }
  ProcessWorklist();
}

void KSwapMaintainer::ExtendSolution(std::vector<VertexId>* candidates) {
  if (options_.perturb) {
    std::sort(candidates->begin(), candidates->end(),
              [&](VertexId a, VertexId b) {
                return g_->Degree(a) != g_->Degree(b)
                           ? g_->Degree(a) < g_->Degree(b)
                           : a < b;
              });
  }
  for (VertexId w : *candidates) {
    if (g_->IsVertexAlive(w) && !state_.InSolution(w) && state_.Count(w) == 0) {
      state_.MoveIn(w);
    }
  }
}

void KSwapMaintainer::PushWitness(VertexId u) {
  if (in_worklist_[u]) return;
  in_worklist_[u] = 1;
  worklist_.push_back(u);
}

void KSwapMaintainer::DrainTransitions() {
  state_.DrainTransitions([&](VertexId u) {
    if (g_->IsVertexAlive(u) && !state_.InSolution(u) && state_.Count(u) >= 1 &&
        state_.Count(u) <= k_) {
      PushWitness(u);
    }
  });
}

void KSwapMaintainer::ProcessWorklist() {
  visited_.Clear();
  while (!worklist_.empty()) {
    const VertexId u = worklist_.back();
    worklist_.pop_back();
    in_worklist_[u] = 0;
    if (!g_->IsVertexAlive(u) || state_.InSolution(u)) continue;
    const int c = state_.Count(u);
    if (c < 1 || c > k_) continue;
    std::vector<VertexId> s;
    s.reserve(c);
    state_.ForEachSolutionNeighbor(u, [&](VertexId w) { s.push_back(w); });
    std::sort(s.begin(), s.end());
    if (TrySwapOrExpand(std::move(s))) {
      // A swap invalidates earlier dedup decisions: sets that admitted no
      // swap before may admit one now.
      visited_.Clear();
    }
  }
}

uint64_t KSwapMaintainer::HashSet(const std::vector<VertexId>& s) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (VertexId v : s) h = SplitMix64(h ^ static_cast<uint64_t>(v));
  return h;
}

void KSwapMaintainer::CollectRegion(const std::vector<VertexId>& s,
                                    std::vector<VertexId>* t) {
  const int j = static_cast<int>(s.size());
  NewEpoch();
  for (VertexId x : s) {
    g_->ForEachIncident(x, [&](VertexId w, EdgeId) {
      if (Marked(w) || state_.InSolution(w)) return;
      Mark(w);  // Dedup across the owners in S.
      const int c = state_.Count(w);
      if (c < 1 || c > j) return;
      bool inside = true;
      state_.ForEachSolutionNeighbor(w, [&](VertexId owner) {
        if (std::find(s.begin(), s.end(), owner) == s.end()) inside = false;
      });
      if (inside) t->push_back(w);
    });
  }
}

bool KSwapMaintainer::FindIndependentSubset(const std::vector<VertexId>& t,
                                            int target,
                                            std::vector<VertexId>* result) {
  if (static_cast<int>(t.size()) < target) return false;
  // Depth-first search over t (ordered by ascending degree, which tends to
  // admit independent sets early), with a global node cap.
  std::vector<VertexId> order = t;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g_->Degree(a) != g_->Degree(b) ? g_->Degree(a) < g_->Degree(b)
                                          : a < b;
  });
  // blocked[i] counts how many chosen vertices are adjacent to order[i].
  std::vector<int> blocked(order.size(), 0);
  position_.resize(g_->VertexCapacity(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    position_[order[i]] = static_cast<VertexId>(i);
  }
  std::vector<VertexId>& position = position_;
  std::vector<VertexId> chosen;
  int64_t nodes = 0;

  // Recursive lambda: try to complete `chosen` using candidates from index
  // `from` onward.
  auto dfs = [&](auto&& self, size_t from) -> bool {
    if (static_cast<int>(chosen.size()) == target) return true;
    if (++nodes > kSearchNodeCap) return false;
    const int needed = target - static_cast<int>(chosen.size());
    for (size_t i = from; i + needed <= order.size(); ++i) {
      if (blocked[i] > 0) continue;
      const VertexId w = order[i];
      chosen.push_back(w);
      g_->ForEachIncident(w, [&](VertexId z, EdgeId) {
        if (position[z] >= 0) ++blocked[position[z]];
      });
      if (self(self, i + 1)) return true;
      g_->ForEachIncident(w, [&](VertexId z, EdgeId) {
        if (position[z] >= 0) --blocked[position[z]];
      });
      chosen.pop_back();
      if (nodes > kSearchNodeCap) return false;
    }
    return false;
  };
  const bool found = dfs(dfs, 0);
  stats_.search_nodes += nodes;
  for (VertexId w : order) position_[w] = -1;  // Restore the scratch array.
  if (found) *result = chosen;
  return found;
}

bool KSwapMaintainer::TrySwapOrExpand(std::vector<VertexId> s) {
  if (!visited_.Insert(HashSet(s))) return false;
  ++stats_.sets_examined;
  for (VertexId x : s) {
    if (!g_->IsVertexAlive(x) || !state_.InSolution(x)) return false;
  }
  std::vector<VertexId> region;
  CollectRegion(s, &region);
  std::vector<VertexId> swap_in;
  if (FindIndependentSubset(region, static_cast<int>(s.size()) + 1,
                            &swap_in)) {
    ++stats_.swaps;
    for (VertexId x : s) state_.MoveOut(x);
    for (VertexId w : swap_in) {
      DYNMIS_DCHECK(state_.Count(w) == 0);
      state_.MoveIn(w);
    }
    ExtendSolution(&region);
    DrainTransitions();
    return true;
  }
  if (static_cast<int>(s.size()) >= k_) return false;
  // Expansion (Algorithm 1 lines 11-12): supersets S' = I(y) for
  // (|S|+1)-tight vertices y adjacent to S whose owners contain S.
  const int next = static_cast<int>(s.size()) + 1;
  std::vector<std::vector<VertexId>> supersets;
  NewEpoch();
  for (VertexId x : s) {
    g_->ForEachIncident(x, [&](VertexId y, EdgeId) {
      if (Marked(y) || state_.InSolution(y)) return;
      Mark(y);
      if (state_.Count(y) != next) return;
      std::vector<VertexId> owners;
      owners.reserve(next);
      state_.ForEachSolutionNeighbor(y,
                                     [&](VertexId w) { owners.push_back(w); });
      std::sort(owners.begin(), owners.end());
      if (std::includes(owners.begin(), owners.end(), s.begin(), s.end())) {
        supersets.push_back(std::move(owners));
      }
    });
  }
  for (auto& sup : supersets) {
    if (TrySwapOrExpand(std::move(sup))) return true;
  }
  return false;
}

void KSwapMaintainer::InsertEdge(VertexId u, VertexId v) {
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  const EdgeId e = g_->AddEdge(u, v);
  EnsureCapacity();
  state_.OnEdgeAdded(e);
  if (u_in && v_in) {
    VertexId loser;
    const bool bu = state_.Bar1Size(u) > 0;
    const bool bv = state_.Bar1Size(v) > 0;
    if (bu != bv) {
      loser = bu ? u : v;
    } else {
      loser = g_->Degree(u) >= g_->Degree(v) ? u : v;
    }
    state_.MoveOut(loser);
    extend_scratch_.clear();
    g_->ForEachIncident(loser, [&](VertexId w, EdgeId) {
      if (!state_.InSolution(w) && state_.Count(w) == 0) {
        extend_scratch_.push_back(w);
      }
    });
    ExtendSolution(&extend_scratch_);
  }
  DrainTransitions();
  ProcessWorklist();
}

void KSwapMaintainer::DeleteEdge(VertexId u, VertexId v) {
  const EdgeId e = g_->FindEdge(u, v);
  DYNMIS_CHECK(e != kInvalidEdge);
  state_.OnEdgeRemoving(e);
  g_->RemoveEdge(e);
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  if (u_in || v_in) {
    const VertexId other = u_in ? v : u;
    if (!state_.InSolution(other) && state_.Count(other) == 0) {
      state_.MoveIn(other);
    }
  } else {
    // The deleted edge may enable a swap for the union of the endpoints'
    // owner sets (generalization of Algorithm 2/3's deletion case ii).
    PushWitness(u);
    PushWitness(v);
    if (state_.Count(u) >= 1 && state_.Count(v) >= 1) {
      std::vector<VertexId> joint;
      state_.ForEachSolutionNeighbor(u,
                                     [&](VertexId w) { joint.push_back(w); });
      state_.ForEachSolutionNeighbor(v,
                                     [&](VertexId w) { joint.push_back(w); });
      std::sort(joint.begin(), joint.end());
      joint.erase(std::unique(joint.begin(), joint.end()), joint.end());
      if (static_cast<int>(joint.size()) <= k_) {
        visited_.Clear();
        TrySwapOrExpand(std::move(joint));
      }
    }
  }
  DrainTransitions();
  ProcessWorklist();
}

VertexId KSwapMaintainer::InsertVertex(const std::vector<VertexId>& neighbors) {
  const VertexId v = g_->AddVertex();
  EnsureCapacity();
  ResetVertexSlots(v);
  for (VertexId u : neighbors) {
    DYNMIS_CHECK_NE(u, v);
    const EdgeId e = g_->AddEdge(u, v);
    EnsureCapacity();
    state_.OnEdgeAdded(e);
  }
  if (state_.Count(v) == 0) state_.MoveIn(v);
  DrainTransitions();
  ProcessWorklist();
  return v;
}

void KSwapMaintainer::DeleteVertex(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  extend_scratch_.clear();
  g_->ForEachIncident(v, [&](VertexId w, EdgeId) {
    extend_scratch_.push_back(w);
  });
  if (state_.InSolution(v)) state_.MoveOut(v);
  state_.OnVertexRemoving(v);
  g_->RemoveVertex(v);
  ResetVertexSlots(v);
  ExtendSolution(&extend_scratch_);
  DrainTransitions();
  ProcessWorklist();
}

void KSwapMaintainer::SaveState(SnapshotWriter* w) const {
  DYNMIS_CHECK(worklist_.empty());  // Quiescent point: no pending witnesses.
  state_.SaveTo(w);
}

bool KSwapMaintainer::LoadState(SnapshotReader* r, const DynamicGraph&) {
  if (!state_.LoadFrom(r)) return false;
  EnsureCapacity();
  return true;
}

size_t KSwapMaintainer::MemoryUsageBytes() const {
  return state_.MemoryUsageBytes() + VectorBytes(worklist_) +
         VectorBytes(in_worklist_) + VectorBytes(mark_) +
         VectorBytes(position_) + visited_.MemoryUsageBytes() +
         VectorBytes(extend_scratch_);
}

std::string KSwapMaintainer::Name() const {
  std::string name = "KSwap(k=" + std::to_string(k_) + ")";
  if (options_.lazy) name += "-lazy";
  if (options_.perturb) name += "*";
  return name;
}

}  // namespace dynmis
