// MisState: the bookkeeping shared by the paper's maintenance framework
// (Section III-B) and both instantiations (DyOneSwap, DyTwoSwap).
//
// Maintained per vertex v:
//   * status(v)  - whether v is in the current solution I.
//   * count(v)   - |N(v) cap I| (0 for solution vertices).
// In eager mode additionally, realized as intrusive doubly-linked lists
// threaded through per-edge link slots (the paper's "I(v) can be updated in
// constant time if it is implemented by a doubly-linked list and a pointer
// to v in I(v) is recorded in edge (v, u)"):
//   * I(v)       - v's solution neighbours ("inb" list, owner v).
//   * bar1(v)    - for v in I: neighbours u with count(u) == 1 whose unique
//                  solution neighbour is v (the paper's bar_I1(v)).
//   * bar2(v)    - for v in I, only when k >= 2: neighbours u with
//                  count(u) == 2 having v as one of their two solution
//                  neighbours. The paper's hierarchical bucket bar_I2(S) for
//                  S = {x, y} is recovered as a filter of the smaller of
//                  bar2(x), bar2(y), preserving the complexity analysis
//                  (tau = max_v |bar_I2(v)| bounds the filter cost).
//
// In lazy mode (paper optimization 1) only status/count are kept; the
// Collect* methods fall back to neighborhood scans.
//
// Every count transition into 1 (and into 2 when k >= 2) of a non-solution
// vertex is appended to a transition log. The algorithms drain the log to
// build their candidate queues C1/C2; entries are validated at drain time,
// so stale entries are harmless. This realizes the framework's "collect
// candidates around op" soundly (Theorem 5).

#ifndef DYNMIS_SRC_CORE_SOLUTION_H_
#define DYNMIS_SRC_CORE_SOLUTION_H_

#include <cstdint>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/io/snapshot.h"

namespace dynmis {

class MisState {
 public:
  // `k` in {1, 2}: whether count-2 tightness (bar2 lists) is tracked.
  // `lazy` selects the lazy-collection mode.
  MisState(DynamicGraph* g, int k, bool lazy);

  // Resizes the per-vertex / per-edge side arrays to the graph's current
  // capacities. Call after any operation that may have grown them.
  void EnsureCapacity();

  // Resets the state slots of a vertex id that was just (re)allocated.
  void OnVertexAdded(VertexId v);

  bool InSolution(VertexId v) const { return status_[v] != 0; }
  int Count(VertexId v) const { return count_[v]; }
  int64_t SolutionSize() const { return solution_size_; }
  std::vector<VertexId> Solution() const;

  // Appends the solution members to `out` (not cleared): the copy-on-demand
  // form of Solution() that reuses the caller's buffer across calls.
  void AppendSolution(std::vector<VertexId>* out) const;

  bool lazy() const { return lazy_; }
  int k() const { return k_; }
  DynamicGraph* graph() const { return g_; }

  // The unique solution neighbour of `u`; requires count(u) >= 1. O(1) in
  // eager mode, O(deg(u)) in lazy mode. When count(u) > 1 returns one of the
  // solution neighbours (the list head in eager mode).
  VertexId OwnerOf(VertexId u) const;

  // The two solution neighbours of `u`; requires count(u) == 2. Results are
  // ordered (first < second).
  void OwnersOf2(VertexId u, VertexId* a, VertexId* b) const;

  // Calls fn(w) for each solution neighbour w of `u`.
  template <typename Fn>
  void ForEachSolutionNeighbor(VertexId u, Fn&& fn) const {
    if (!lazy_) {
      for (EdgeId e = inb_head_[u]; e != kInvalidEdge;
           e = inb_links_[Slot(e, u)].next) {
        fn(g_->Other(e, u));
      }
    } else {
      g_->ForEachIncident(u, [&](VertexId w, EdgeId) {
        if (InSolution(w)) fn(w);
      });
    }
  }

  // --- Tightness sets --------------------------------------------------------

  // |bar1(v)| for a solution vertex v. O(1) eager, O(deg(v)) lazy.
  int Bar1Size(VertexId v) const;

  // Appends the members of bar1(v) to `out` (not cleared).
  void CollectBar1(VertexId v, std::vector<VertexId>* out) const;

  // Appends the members of bar2(v) (count-2 vertices with v as a solution
  // neighbour) to `out`. Requires k == 2.
  void CollectBar2(VertexId v, std::vector<VertexId>* out) const;

  // Appends bar_I2({x, y}): count-2 vertices whose solution neighbours are
  // exactly {x, y}. Requires k == 2; x and y must be solution vertices.
  void CollectBar2Pair(VertexId x, VertexId y,
                       std::vector<VertexId>* out) const;

  // --- Status transitions ----------------------------------------------------

  // Moves `v` into the solution. Requires: alive, not in I, count(v) == 0.
  void MoveIn(VertexId v);

  // Moves `v` out of the solution. Recomputes count(v) and relinks v's own
  // tightness membership. Tolerates neighbours currently in I (the
  // transient state during the both-endpoints-in-I edge insertion case).
  void MoveOut(VertexId v);

  // --- Edge event hooks ------------------------------------------------------

  // Call immediately after g->AddEdge(e). Handles the at-most-one-endpoint-
  // in-I cases; with both endpoints in I it is a no-op (the caller must
  // MoveOut one endpoint right after).
  void OnEdgeAdded(EdgeId e);

  // Call immediately *before* g->RemoveEdge(e).
  void OnEdgeRemoving(EdgeId e);

  // Call immediately before g->RemoveVertex(v) *after* the caller has moved
  // v out of the solution (if it was in). Detaches v's incident edges from
  // all state lists and updates neighbour counts.
  void OnVertexRemoving(VertexId v);

  // --- Status observer -------------------------------------------------------

  // Called on every MoveIn (`in` = true) / MoveOut (`in` = false), after the
  // membership flip. A plain function pointer + context rather than a
  // std::function: the hook sits on the hottest path in the library and must
  // cost one predictable branch when unset. The sharded engine's shards use
  // it to ship status transitions to the asynchronous cut-edge resolver.
  using StatusObserverFn = void (*)(void* ctx, VertexId v, bool in);
  void SetStatusObserver(StatusObserverFn fn, void* ctx) {
    status_observer_ = fn;
    status_observer_ctx_ = ctx;
  }

  // --- Transition log --------------------------------------------------------

  // Drains the transition log in place: calls fn(u) for every vertex whose
  // count transitioned into 1 (or 2 when k == 2) since the last drain, then
  // clears the log keeping its capacity (the old TakeTransitions() moved the
  // vector out, forcing a fresh allocation on every subsequent operation).
  // Entries may be stale; consumers must re-validate. The callback must not
  // call MoveIn/MoveOut or the edge hooks (they append to the log).
  template <typename Fn>
  void DrainTransitions(Fn&& fn) {
    for (size_t i = 0; i < transitions_.size(); ++i) fn(transitions_[i]);
    transitions_.clear();
  }

  // Drops pending transitions without visiting them (initialization seeds
  // its candidate queues by a full scan instead).
  void DiscardTransitions() { transitions_.clear(); }

  // --- Snapshots -------------------------------------------------------------

  // Writes status/count/solution-size and (in eager mode) the intrusive
  // tightness lists verbatim as the snapshot section "mis". Edge/vertex ids
  // in the arrays refer to the owning graph's id space, so the graph must be
  // saved (and restored) alongside. Requires a quiescent state: the
  // transition log must be drained.
  void SaveTo(SnapshotWriter* w) const;

  // Restores the state from the section "mis". The graph must already hold
  // the snapshot's topology. Runs a full O(n + m) validation before any
  // data is adopted: parameter match (k, lazy), array sizes and id bounds,
  // independence and count correctness against the graph, and — in eager
  // mode — termination, exclusivity and membership-record consistency of
  // every intrusive list, so a CRC-valid but semantically corrupt payload
  // is rejected with a structured error instead of aborting (or looping) in
  // a later update. Returns false (failing the reader) on any violation.
  // Performs no MoveIn/MoveOut and no rebuild — load is O(state), which
  // status_ops() lets callers verify.
  bool LoadFrom(SnapshotReader* r);

  // --- Introspection ---------------------------------------------------------

  // Lifetime count of MoveIn/MoveOut transitions. Instrumentation for the
  // snapshot tests: a freshly constructed state that was LoadFrom-restored
  // reports 0, whereas any recompute/Initialize path would have performed at
  // least |I| transitions.
  int64_t status_ops() const { return status_ops_; }

  size_t MemoryUsageBytes() const;

  // Full O(n + m) invariant validation: independence, count correctness,
  // list consistency, maximality. Aborts on violation. Test-only.
  void CheckConsistency(bool expect_maximal) const;

 private:
  // Forward/backward pointers of one intrusive-list slot, kept adjacent so
  // link/unlink touch a single cache line per slot (they were previously
  // split across parallel next/prev arrays).
  struct LinkPair {
    EdgeId next = kInvalidEdge;
    EdgeId prev = kInvalidEdge;
  };

  // Flat index of edge e's link slot on the side of vertex v.
  int Slot(EdgeId e, VertexId v) const { return 2 * e + g_->Side(e, v); }

  // Intrusive list plumbing. `head` is indexed by the owner vertex; the
  // link array by Slot(e, owner).
  void Link(std::vector<EdgeId>& head, std::vector<LinkPair>& links, EdgeId e,
            VertexId owner);
  void Unlink(std::vector<EdgeId>& head, std::vector<LinkPair>& links,
              EdgeId e, VertexId owner);

  // Removes u from whatever bar1/bar2 lists it occupies.
  void ClearTightness(VertexId u);
  // (Re)inserts u into the bar list matching its current count, and appends
  // it to the transition log when it lands on a tracked tightness level.
  void SetTightnessAndLog(VertexId u);

  DynamicGraph* g_;
  int k_;
  bool lazy_;

  std::vector<uint8_t> status_;
  std::vector<int32_t> count_;
  int64_t solution_size_ = 0;
  int64_t status_ops_ = 0;

  // Reusable scratch for CollectBar2Pair (hot on the deletion path).
  mutable std::vector<VertexId> side_scratch_;

  // Eager-mode intrusive lists (link arrays sized 2 * edge capacity; empty
  // when lazy).
  std::vector<EdgeId> inb_head_, bar1_head_, bar2_head_;
  std::vector<LinkPair> inb_links_, bar1_links_, bar2_links_;
  std::vector<int32_t> bar1_size_;
  // Membership records: by which edge is u linked into an owner's list.
  std::vector<EdgeId> bar1_edge_;
  std::vector<EdgeId> bar2_edge0_, bar2_edge1_;

  std::vector<VertexId> transitions_;

  StatusObserverFn status_observer_ = nullptr;
  void* status_observer_ctx_ = nullptr;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_CORE_SOLUTION_H_
