// DyOneSwap (paper Algorithm 2): maintains a 1-maximal independent set over
// a dynamic graph in O(m_t) worst-case time per update cascade, which yields
// a (Delta/2 + 1)-approximate MaxIS at all times (Theorem 2/6), and a
// parameter-dependent constant approximation on power-law bounded graphs
// (Theorem 4).
//
// Invariant maintained: for every solution vertex v, G[bar1(v)] is a clique,
// where bar1(v) is the set of v's 1-tight neighbours. Updates enqueue
// "candidate" pairs (v, C(v)) - C(v) holds vertices newly added to bar1(v) -
// and the processing loop checks |N[u] cap bar1(v)| < |bar1(v)| for each
// candidate u; a failed clique test triggers the 1-swap: v leaves, u enters,
// and every freed vertex of bar1(v) enters (so the solution strictly grows).

#ifndef DYNMIS_SRC_CORE_ONE_SWAP_H_
#define DYNMIS_SRC_CORE_ONE_SWAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"
#include "src/core/candidate_list.h"
#include "src/core/solution.h"

namespace dynmis {

class DyOneSwap : public DynamicMisMaintainer {
 public:
  // `g` must outlive the maintainer; the maintainer is the sole mutator.
  explicit DyOneSwap(DynamicGraph* g, MaintainerConfig options = {});

  void Initialize(const std::vector<VertexId>& initial) override;

  // Convenience: initialize from the empty set (greedy maximal + swaps).
  void InitializeEmpty() { Initialize({}); }

  void InsertEdge(VertexId u, VertexId v) override;
  void DeleteEdge(VertexId u, VertexId v) override;
  VertexId InsertVertex(const std::vector<VertexId>& neighbors) override;
  void DeleteVertex(VertexId v) override;

  // Deferred-restoration batch processing (see DynamicMisMaintainer).
  std::vector<VertexId> ApplyBatch(
      const std::vector<GraphUpdate>& updates) override;

  bool InSolution(VertexId v) const override { return state_.InSolution(v); }
  int64_t SolutionSize() const override { return state_.SolutionSize(); }
  std::vector<VertexId> Solution() const override { return state_.Solution(); }
  void CollectSolution(std::vector<VertexId>* out) const override {
    state_.AppendSolution(out);
  }
  size_t MemoryUsageBytes() const override;
  std::string Name() const override;

  // Persists the MisState arrays verbatim (section "mis"); candidate queues
  // are empty at every quiescent point, so no queue state travels. Load
  // restores the arrays directly — no recompute, no graph scan (see
  // StateTransitionOps).
  void SaveState(SnapshotWriter* w) const override;
  bool LoadState(SnapshotReader* r, const DynamicGraph& g) override;

  // Lifetime MoveIn/MoveOut count of the underlying state. A snapshot load
  // performs none (the snapshot tests assert 0 after LoadState, proving the
  // restore path never falls back to recomputation).
  int64_t StateTransitionOps() const { return state_.status_ops(); }

  bool SetStatusObserver(StatusObserverFn fn, void* ctx) override {
    state_.SetStatusObserver(fn, ctx);
    return true;
  }

  // Test hook: validates all internal invariants (O(n + m)).
  void CheckConsistency() const {
    state_.CheckConsistency(/*expect_maximal=*/true);
  }

  struct Stats {
    int64_t one_swaps = 0;
    int64_t candidates_processed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void EnsureCapacity();
  void ResetVertexSlots(VertexId v);
  // Moves every count-0 vertex in `*candidates` into the solution (in degree
  // order under perturbation). Borrows the caller's buffer — may reorder it —
  // so steady-state callers can pass reusable scratch instead of a fresh
  // vector.
  void ExtendSolution(std::vector<VertexId>* candidates);
  void EnqueueCandidate(VertexId owner, VertexId u);
  void DrainTransitions();
  void ProcessQueue();
  // `bar1_snapshot` is borrowed scratch (consumed by ExtendSolution).
  void PerformOneSwap(VertexId v, VertexId u,
                      std::vector<VertexId>* bar1_snapshot);
  void NewEpoch() { ++epoch_; }
  void Mark(VertexId v) { mark_[v] = epoch_; }
  bool Marked(VertexId v) const { return mark_[v] == epoch_; }

  DynamicGraph* g_;
  MaintainerConfig options_;
  MisState state_;
  // True while inside ApplyBatch: update handlers enqueue candidates but
  // defer the swap-restoration loop to the end of the batch.
  bool deferred_ = false;

  // Candidate queue C1: solution vertices with pending candidate lists,
  // intrusive and allocation-free (see CandidateList; the former per-owner
  // vector<vector<VertexId>> allocated on first enqueue under every new
  // owner).
  std::vector<VertexId> queue_;
  std::vector<uint8_t> in_queue_;
  CandidateList cands_;

  // Epoch-stamped scratch marks.
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;

  // Reusable scratch buffers (grow to the workload's high-water mark, then
  // stay put).
  std::vector<VertexId> bar1_scratch_;
  std::vector<VertexId> kept_;            // Validated candidates.
  std::vector<VertexId> extend_scratch_;  // Freed vertices / neighborhoods.

  Stats stats_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_CORE_ONE_SWAP_H_
