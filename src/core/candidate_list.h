// CandidateList: per-owner candidate lists, intrusive doubly-linked through
// flat per-vertex link slots. A vertex is a candidate under at most one
// owner at a time, so enqueueing is an O(1) relink with no heap traffic —
// this is the shared C1 machinery of DyOneSwap and DyTwoSwap (each formerly
// kept its own copy of the pointer surgery; the per-pair C2 buckets of
// DyTwoSwap stay separate because their membership is keyed by pair, not by
// a single owner).
//
// Entries are not unlinked when they go stale; consumers re-validate on
// Consume(), mirroring the transition-log contract.

#ifndef DYNMIS_SRC_CORE_CANDIDATE_LIST_H_
#define DYNMIS_SRC_CORE_CANDIDATE_LIST_H_

#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/util/check.h"
#include "src/util/memory.h"

namespace dynmis {

class CandidateList {
 public:
  // Grows the per-vertex slots to `vcap`; never shrinks.
  void EnsureCapacity(size_t vcap) {
    if (owner_.size() < vcap) {
      owner_.resize(vcap, kInvalidVertex);
      head_.resize(vcap, kInvalidVertex);
      next_.resize(vcap, kInvalidVertex);
      prev_.resize(vcap, kInvalidVertex);
    }
  }

  // The owner `u` is currently enqueued under, or kInvalidVertex.
  VertexId OwnerOf(VertexId u) const { return owner_[u]; }

  // Links `u` under `owner`, relinking from any previous owner. Returns
  // false when `u` was already enqueued under `owner` (no-op).
  bool Enqueue(VertexId owner, VertexId u) {
    if (owner_[u] == owner) return false;
    if (owner_[u] != kInvalidVertex) Unlink(u);
    owner_[u] = owner;
    next_[u] = head_[owner];
    prev_[u] = kInvalidVertex;
    if (head_[owner] != kInvalidVertex) prev_[head_[owner]] = u;
    head_[owner] = u;
    return true;
  }

  // Removes `u` from its current owner's list (requires one).
  void Unlink(VertexId u) {
    const VertexId owner = owner_[u];
    DYNMIS_DCHECK(owner != kInvalidVertex);
    const VertexId prev = prev_[u];
    const VertexId next = next_[u];
    if (prev != kInvalidVertex) {
      next_[prev] = next;
    } else {
      head_[owner] = next;
    }
    if (next != kInvalidVertex) prev_[next] = prev;
    owner_[u] = kInvalidVertex;
  }

  // Consumes v's list: calls fn(u) for every member (which may be stale —
  // the callback must re-validate) and leaves the list empty.
  template <typename Fn>
  void Consume(VertexId v, Fn&& fn) {
    for (VertexId u = head_[v]; u != kInvalidVertex;) {
      const VertexId next = next_[u];
      owner_[u] = kInvalidVertex;
      fn(u);
      u = next;
    }
    head_[v] = kInvalidVertex;
  }

  // Clears every candidate slot of a deleted (possibly recycled) vertex id:
  // drops v's own list and removes v from any owner's list.
  void OnVertexReset(VertexId v) {
    Consume(v, [](VertexId) {});
    if (owner_[v] != kInvalidVertex) Unlink(v);
  }

  size_t MemoryUsageBytes() const {
    return VectorBytes(owner_) + VectorBytes(head_) + VectorBytes(next_) +
           VectorBytes(prev_);
  }

 private:
  // owner_[u]: owner u is enqueued under. head_[v]: first member of v's
  // list. next_/prev_: the intrusive links, indexed by candidate vertex.
  std::vector<VertexId> owner_;
  std::vector<VertexId> head_;
  std::vector<VertexId> next_, prev_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_CORE_CANDIDATE_LIST_H_
