// Shared configuration for the dynamic MIS maintainers.

#ifndef DYNMIS_SRC_CORE_OPTIONS_H_
#define DYNMIS_SRC_CORE_OPTIONS_H_

namespace dynmis {

struct MaintainerOptions {
  // Lazy collection (paper, Section III-B "Optimization Techniques" #1):
  // keep only count(v) per vertex and rebuild tightness sets by scanning
  // neighborhoods on demand. Cuts memory sharply; the time trade-off
  // depends on k (Fig 7).
  bool lazy = false;

  // Perturbation (paper, optimization #2): prefer swapping a solution
  // vertex with its smallest-degree eligible neighbour, since high-degree
  // vertices are unlikely to appear in a MaxIS. Reported as gap* columns.
  bool perturb = false;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_CORE_OPTIONS_H_
