// KSwapMaintainer: the paper's general maintenance framework (Algorithm 1)
// for a user-specified k, used by the Fig 9 "effect of k" experiment with
// k in {1, 2, 3, 4} and by cross-checking tests against DyOneSwap/DyTwoSwap.
//
// The specialized DyOneSwap/DyTwoSwap classes are the production
// implementations for k = 1, 2; this class trades their tight per-case
// handling for generality:
//
//  * Candidates are vertex witnesses u with count(u) in [1..k]; a witness
//    seeds the set S = I(u) (its solution neighbours).
//  * TrySwap(S) collects T = bar_I<=|S|(S) and searches G[T] exhaustively
//    (with a node cap) for an independent set of size |S|+1; success swaps
//    S out and the found set in, then extends to maximal.
//  * If S admits no swap and |S| < k, candidate supersets S' = I(y) for
//    (|S|+1)-tight vertices y around S are explored (the framework's
//    bottom-up candidate expansion, lines 11-12 of Algorithm 1).
//
// For k <= 2 this coverage matches the specialized algorithms (and tests
// cross-check exact j-swap-freeness). For k >= 3 the exhaustive search is
// capped (kSearchNodeCap) so a pathological dense neighbourhood cannot
// stall an update; within the cap the maintained set is k-maximal.

#ifndef DYNMIS_SRC_CORE_K_SWAP_H_
#define DYNMIS_SRC_CORE_K_SWAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"
#include "src/core/solution.h"
#include "src/util/stamped_hash_set.h"

namespace dynmis {

class KSwapMaintainer : public DynamicMisMaintainer {
 public:
  KSwapMaintainer(DynamicGraph* g, int k, MaintainerConfig options = {});

  void Initialize(const std::vector<VertexId>& initial) override;
  void InitializeEmpty() { Initialize({}); }

  void InsertEdge(VertexId u, VertexId v) override;
  void DeleteEdge(VertexId u, VertexId v) override;
  VertexId InsertVertex(const std::vector<VertexId>& neighbors) override;
  void DeleteVertex(VertexId v) override;

  bool InSolution(VertexId v) const override { return state_.InSolution(v); }
  int64_t SolutionSize() const override { return state_.SolutionSize(); }
  std::vector<VertexId> Solution() const override { return state_.Solution(); }
  void CollectSolution(std::vector<VertexId>* out) const override {
    state_.AppendSolution(out);
  }
  size_t MemoryUsageBytes() const override;
  std::string Name() const override;

  // Persists the MisState arrays verbatim (section "mis"); the witness
  // worklist is empty at every quiescent point, so no queue state travels.
  // Load restores the arrays directly — no recompute.
  void SaveState(SnapshotWriter* w) const override;
  bool LoadState(SnapshotReader* r, const DynamicGraph& g) override;

  // Lifetime MoveIn/MoveOut count of the underlying state (see DyOneSwap).
  int64_t StateTransitionOps() const { return state_.status_ops(); }

  bool SetStatusObserver(StatusObserverFn fn, void* ctx) override {
    state_.SetStatusObserver(fn, ctx);
    return true;
  }

  int k() const { return k_; }

  void CheckConsistency() const {
    state_.CheckConsistency(/*expect_maximal=*/true);
  }

  struct Stats {
    int64_t swaps = 0;          // All j-swaps performed, any j.
    int64_t sets_examined = 0;  // TrySwap invocations.
    int64_t search_nodes = 0;   // Independent-set search tree nodes.
  };
  const Stats& stats() const { return stats_; }

 private:
  // Upper bound on search-tree nodes per TrySwap call.
  static constexpr int64_t kSearchNodeCap = 100000;

  void EnsureCapacity();
  void ResetVertexSlots(VertexId v);
  // Moves every count-0 vertex in `*candidates` into the solution (in degree
  // order under perturbation). Borrows the caller's buffer — may reorder it.
  void ExtendSolution(std::vector<VertexId>* candidates);
  void PushWitness(VertexId u);
  void DrainTransitions();
  void ProcessWorklist();
  // Attempts a |S|-swap for solution set S; returns true if performed.
  // On failure recursively expands to supersets while |S| < k. `visited_`
  // dedups examined sets within one cascade; callers outside ProcessWorklist
  // must Clear() it first.
  bool TrySwapOrExpand(std::vector<VertexId> s);
  // Collects bar_I<=|S|(S): non-solution vertices with all solution
  // neighbours inside S.
  void CollectRegion(const std::vector<VertexId>& s, std::vector<VertexId>* t);
  // Exhaustive (capped) search for an independent set of size `target` in
  // the subgraph induced by `t`. Fills `result` and returns true on success.
  bool FindIndependentSubset(const std::vector<VertexId>& t, int target,
                             std::vector<VertexId>* result);
  static uint64_t HashSet(const std::vector<VertexId>& s);
  void NewEpoch() { ++epoch_; }
  void Mark(VertexId v) { mark_[v] = epoch_; }
  bool Marked(VertexId v) const { return mark_[v] == epoch_; }

  DynamicGraph* g_;
  int k_;
  MaintainerConfig options_;
  MisState state_;

  std::vector<VertexId> worklist_;
  std::vector<uint8_t> in_worklist_;
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;
  // Scratch for FindIndependentSubset: position of a vertex in the current
  // search order, -1 outside a search.
  std::vector<VertexId> position_;
  // Swap-set dedup within one restoration cascade, reused across updates
  // (formerly a per-update std::unordered_set).
  StampedHashSet visited_;
  // Reusable scratch for the update handlers (freed vertices and
  // deleted-vertex neighborhoods).
  std::vector<VertexId> extend_scratch_;

  Stats stats_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_CORE_K_SWAP_H_
