#include "src/core/two_swap.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

DyTwoSwap::DyTwoSwap(DynamicGraph* g, MaintainerConfig options)
    : g_(g), options_(options), state_(g, /*k=*/2, options.lazy) {
  EnsureCapacity();
}

uint64_t DyTwoSwap::PairKey(VertexId x, VertexId y) {
  if (x > y) std::swap(x, y);
  // +1 keeps 0 free as the "not enqueued" sentinel.
  return (static_cast<uint64_t>(static_cast<uint32_t>(x + 1)) << 32) |
         static_cast<uint32_t>(y + 1);
}

void DyTwoSwap::EnsureCapacity() {
  state_.EnsureCapacity();
  const size_t vcap = g_->VertexCapacity();
  if (in_c1_.size() < vcap) {
    in_c1_.resize(vcap, 0);
    cands_.EnsureCapacity(vcap);
    cand2_key_.resize(vcap, 0);
    cand2_next_.resize(vcap, kInvalidVertex);
    cand2_prev_.resize(vcap, kInvalidVertex);
    c2_head_.resize(vcap, -1);
    mark_.resize(vcap, 0);
  }
}

int32_t* DyTwoSwap::FindBucketLink(VertexId a, VertexId b) {
  int32_t* link = &c2_head_[a];
  while (*link != -1 && c2_pool_[*link].y != b) {
    link = &c2_pool_[*link].next;
  }
  return link;
}

void DyTwoSwap::UnlinkC2(VertexId x) {
  const uint64_t key = cand2_key_[x];
  DYNMIS_DCHECK(key != 0);
  const VertexId prev = cand2_prev_[x];
  const VertexId next = cand2_next_[x];
  if (prev != kInvalidVertex) {
    cand2_next_[prev] = next;
  } else {
    // x heads its bucket: find the bucket via the smaller endpoint's chain
    // (membership implies an active, chained bucket).
    const VertexId a = static_cast<VertexId>(key >> 32) - 1;
    const VertexId b = static_cast<VertexId>(key & 0xffffffffu) - 1;
    const int32_t bucket = *FindBucketLink(a, b);
    DYNMIS_CHECK(bucket != -1);
    DYNMIS_DCHECK(c2_pool_[bucket].head == x);
    c2_pool_[bucket].head = next;
  }
  if (next != kInvalidVertex) cand2_prev_[next] = prev;
  cand2_key_[x] = 0;
}

void DyTwoSwap::ResetVertexSlots(VertexId v) {
  EnsureCapacity();
  state_.OnVertexAdded(v);
  in_c1_[v] = 0;
  cands_.OnVertexReset(v);
  if (cand2_key_[v] != 0) UnlinkC2(v);
  mark_[v] = 0;
}

void DyTwoSwap::Initialize(const std::vector<VertexId>& initial) {
  for (VertexId v : initial) {
    DYNMIS_CHECK(g_->IsVertexAlive(v));
    state_.MoveIn(v);
  }
  std::vector<VertexId> free;
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && !state_.InSolution(v) && state_.Count(v) == 0) {
      free.push_back(v);
    }
  }
  ExtendSolution(&free);
  // Establish 2-maximality: every 1-tight vertex seeds C1 and every 2-tight
  // vertex seeds C2 (a 2-swap's triple must contain a 2-tight vertex once
  // the solution is 1-maximal, so this is complete).
  state_.DiscardTransitions();
  for (VertexId u = 0; u < g_->VertexCapacity(); ++u) {
    if (!g_->IsVertexAlive(u) || state_.InSolution(u)) continue;
    if (state_.Count(u) == 1) {
      EnqueueC1(state_.OwnerOf(u), u);
    } else if (state_.Count(u) == 2) {
      VertexId a, b;
      state_.OwnersOf2(u, &a, &b);
      EnqueueC2(a, b, u);
    }
  }
  ProcessQueues();
}

void DyTwoSwap::ExtendSolution(std::vector<VertexId>* candidates) {
  if (options_.perturb) {
    std::sort(candidates->begin(), candidates->end(),
              [&](VertexId a, VertexId b) {
                return g_->Degree(a) != g_->Degree(b)
                           ? g_->Degree(a) < g_->Degree(b)
                           : a < b;
              });
  }
  for (VertexId w : *candidates) {
    if (g_->IsVertexAlive(w) && !state_.InSolution(w) && state_.Count(w) == 0) {
      state_.MoveIn(w);
    }
  }
}

void DyTwoSwap::EnqueueC1(VertexId owner, VertexId u) {
  if (!cands_.Enqueue(owner, u)) return;
  if (!in_c1_[owner]) {
    in_c1_[owner] = 1;
    c1_queue_.push_back(owner);
  }
}

void DyTwoSwap::EnqueueC2(VertexId a, VertexId b, VertexId x) {
  if (a > b) std::swap(a, b);
  const uint64_t pair_key = PairKey(a, b);
  if (cand2_key_[x] == pair_key) return;
  if (cand2_key_[x] != 0) UnlinkC2(x);
  // Find the pair's active bucket among those sharing the smaller endpoint.
  int32_t bucket = *FindBucketLink(a, b);
  if (bucket == -1) {
    if (!c2_free_.empty()) {
      bucket = c2_free_.back();
      c2_free_.pop_back();
    } else {
      bucket = static_cast<int32_t>(c2_pool_.size());
      c2_pool_.emplace_back();
    }
    PairBucket& rec = c2_pool_[bucket];
    rec.x = a;
    rec.y = b;
    rec.head = kInvalidVertex;
    rec.next = c2_head_[a];
    c2_head_[a] = bucket;
    c2_queue_.push_back(bucket);
  }
  PairBucket& rec = c2_pool_[bucket];
  cand2_key_[x] = pair_key;
  cand2_next_[x] = rec.head;
  cand2_prev_[x] = kInvalidVertex;
  if (rec.head != kInvalidVertex) cand2_prev_[rec.head] = x;
  rec.head = x;
}

void DyTwoSwap::DrainTransitions() {
  state_.DrainTransitions([&](VertexId u) {
    if (!g_->IsVertexAlive(u) || state_.InSolution(u)) return;
    if (state_.Count(u) == 1) {
      EnqueueC1(state_.OwnerOf(u), u);
    } else if (state_.Count(u) == 2) {
      VertexId a, b;
      state_.OwnersOf2(u, &a, &b);
      EnqueueC2(a, b, u);
    }
  });
}

std::vector<VertexId> DyTwoSwap::ApplyBatch(
    const std::vector<GraphUpdate>& updates) {
  deferred_ = true;
  std::vector<VertexId> new_vertices =
      DynamicMisMaintainer::ApplyBatch(updates);
  deferred_ = false;
  ProcessQueues();
  return new_vertices;
}

void DyTwoSwap::ProcessQueues() {
  if (deferred_) return;
  while (!c1_queue_.empty() || !c2_queue_.empty()) {
    if (!c1_queue_.empty()) {
      FindOneSwapStep();
    } else {
      FindTwoSwapStep();
    }
  }
}

void DyTwoSwap::FindOneSwapStep() {
  const VertexId v = c1_queue_.back();
  c1_queue_.pop_back();
  in_c1_[v] = 0;
  const bool v_valid = g_->IsVertexAlive(v) && state_.InSolution(v);
  // Consume v's candidate list; entries may be stale (candidates are
  // re-validated, not unlinked, when their tightness changes).
  std::vector<VertexId>& kept = kept_;
  kept.clear();
  cands_.Consume(v, [&](VertexId u) {
    if (v_valid && g_->IsVertexAlive(u) && !state_.InSolution(u) &&
        state_.Count(u) == 1 && state_.OwnerOf(u) == v) {
      kept.push_back(u);
    }
  });
  if (kept.empty()) return;
  stats_.candidates_processed += static_cast<int64_t>(kept.size());

  std::vector<VertexId>& bar1 = bar1_scratch_;
  bar1.clear();
  state_.CollectBar1(v, &bar1);
  const int bar1_size = static_cast<int>(bar1.size());
  NewEpoch();
  for (VertexId w : bar1) Mark(w);

  VertexId chosen = kInvalidVertex;
  for (VertexId u : kept) {
    int inter = 1;
    g_->ForEachIncident(u, [&](VertexId w, EdgeId) {
      if (Marked(w)) ++inter;
    });
    if (inter < bar1_size) {
      if (!options_.perturb) {
        chosen = u;
        break;
      }
      if (chosen == kInvalidVertex || g_->Degree(u) < g_->Degree(chosen)) {
        chosen = u;
      }
    }
  }
  if (chosen != kInvalidVertex) {
    PerformOneSwap(v, chosen, &bar1);
    return;
  }
  if (options_.perturb && !bar1.empty()) {
    // Plateau rotation toward the smallest-degree 1-tight neighbour (see
    // DyOneSwap); size-neutral because G[bar1(v)] is a clique, and the
    // strictly decreasing solution degree guarantees termination.
    VertexId best = bar1.front();
    for (VertexId w : bar1) {
      if (g_->Degree(w) < g_->Degree(best)) best = w;
    }
    if (g_->Degree(best) < g_->Degree(v)) {
      state_.MoveOut(v);
      DYNMIS_DCHECK(state_.Count(best) == 0);
      state_.MoveIn(best);
      DrainTransitions();
      return;
    }
  }
  // No 1-swap for v (Alg 3, lines 14-17): the new bar1(v) members may still
  // enable a 2-swap for a pair {v, z}. A 2-tight neighbour x of v is a
  // useful pair witness only if it misses at least one member of C(v).
  NewEpoch();
  for (VertexId u : kept) Mark(u);
  std::vector<VertexId>& bar2 = bar2_scratch_;
  bar2.clear();
  state_.CollectBar2(v, &bar2);
  const int kept_size = static_cast<int>(kept.size());
  for (VertexId x : bar2) {
    int inter = 0;
    g_->ForEachIncident(x, [&](VertexId w, EdgeId) {
      if (Marked(w)) ++inter;
    });
    if (inter < kept_size) {
      VertexId a, b;
      state_.OwnersOf2(x, &a, &b);
      EnqueueC2(a, b, x);
    }
  }
}

void DyTwoSwap::FindTwoSwapStep() {
  const int32_t bucket = c2_queue_.back();
  c2_queue_.pop_back();
  PairBucket& rec = c2_pool_[bucket];
  const VertexId x = rec.x;
  const VertexId y = rec.y;
  const uint64_t key = PairKey(x, y);
  // Unlink from the smaller endpoint's chain and return the bucket to the
  // pool, consuming its member list (queued buckets are always chained, and
  // a pair has at most one active bucket).
  int32_t* link = FindBucketLink(x, y);
  DYNMIS_DCHECK(*link == bucket);
  *link = rec.next;
  const VertexId members = rec.head;
  rec.next = -1;
  rec.x = kInvalidVertex;
  rec.y = kInvalidVertex;
  rec.head = kInvalidVertex;
  c2_free_.push_back(bucket);

  const bool pair_valid = g_->IsVertexAlive(x) && g_->IsVertexAlive(y) &&
                          state_.InSolution(x) && state_.InSolution(y);
  std::vector<VertexId>& kept = kept_;
  kept.clear();
  for (VertexId w = members; w != kInvalidVertex;) {
    const VertexId next = cand2_next_[w];
    cand2_key_[w] = 0;  // Consume.
    if (pair_valid && g_->IsVertexAlive(w) && !state_.InSolution(w) &&
        state_.Count(w) == 2) {
      VertexId a, b;
      state_.OwnersOf2(w, &a, &b);
      if (PairKey(a, b) == key) kept.push_back(w);
    }
    w = next;
  }
  if (kept.empty()) return;
  stats_.pair_candidates_processed += static_cast<int64_t>(kept.size());

  std::vector<VertexId>& bar1x = bar1x_;
  std::vector<VertexId>& bar1y = bar1y_;
  std::vector<VertexId>& bar2s = bar2s_;
  bar1x.clear();
  bar1y.clear();
  bar2s.clear();
  state_.CollectBar1(x, &bar1x);
  state_.CollectBar1(y, &bar1y);
  state_.CollectBar2Pair(x, y, &bar2s);

  std::vector<VertexId>& cy = cy_;
  std::vector<VertexId>& cz = cz_;
  for (VertexId w : kept) {
    // Cy = bar1(x) u bar2(S) \ N[w];  Cz = bar1(y) u bar2(S) \ N[w].
    NewEpoch();
    Mark(w);
    g_->ForEachIncident(w, [&](VertexId z, EdgeId) { Mark(z); });
    cy.clear();
    cz.clear();
    for (VertexId z : bar1x) {
      if (!Marked(z)) cy.push_back(z);
    }
    for (VertexId z : bar2s) {
      if (!Marked(z)) cy.push_back(z);
    }
    for (VertexId z : bar1y) {
      if (!Marked(z)) cz.push_back(z);
    }
    for (VertexId z : bar2s) {
      if (!Marked(z)) cz.push_back(z);
    }
    if (cy.empty() || cz.empty()) continue;
    // Look for non-adjacent (a, b) with a in Cy, b in Cz, a != b.
    NewEpoch();
    for (VertexId z : cz) Mark(z);
    const int cz_size = static_cast<int>(cz.size());
    for (VertexId a : cy) {
      int inter = Marked(a) ? 1 : 0;  // a may itself lie in Cz.
      g_->ForEachIncident(a, [&](VertexId z, EdgeId) {
        if (Marked(z)) ++inter;
      });
      if (inter >= cz_size) continue;
      // A witness exists; find it explicitly.
      NewEpoch();
      Mark(a);
      g_->ForEachIncident(a, [&](VertexId z, EdgeId) { Mark(z); });
      VertexId b = kInvalidVertex;
      for (VertexId z : cz) {
        if (!Marked(z)) {
          b = z;
          break;
        }
      }
      DYNMIS_CHECK(b != kInvalidVertex);
      region_.clear();
      region_.reserve(bar1x.size() + bar1y.size() + bar2s.size());
      region_.insert(region_.end(), bar1x.begin(), bar1x.end());
      region_.insert(region_.end(), bar1y.begin(), bar1y.end());
      region_.insert(region_.end(), bar2s.begin(), bar2s.end());
      PerformTwoSwap(x, y, w, a, b, &region_);
      return;
    }
  }
}

void DyTwoSwap::PerformOneSwap(VertexId v, VertexId u,
                               std::vector<VertexId>* bar1_snapshot) {
  ++stats_.one_swaps;
  state_.MoveOut(v);
  state_.MoveIn(u);
  ExtendSolution(bar1_snapshot);
  DrainTransitions();
}

void DyTwoSwap::PerformTwoSwap(VertexId x, VertexId y, VertexId in_a,
                               VertexId in_b, VertexId in_c,
                               std::vector<VertexId>* region_snapshot) {
  ++stats_.two_swaps;
  state_.MoveOut(x);
  state_.MoveOut(y);
  DYNMIS_DCHECK(state_.Count(in_a) == 0);
  state_.MoveIn(in_a);
  DYNMIS_DCHECK(state_.Count(in_b) == 0);
  state_.MoveIn(in_b);
  if (state_.Count(in_c) == 0) state_.MoveIn(in_c);
  ExtendSolution(region_snapshot);
  DrainTransitions();
}

void DyTwoSwap::InsertEdge(VertexId u, VertexId v) {
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  const EdgeId e = g_->AddEdge(u, v);
  EnsureCapacity();
  state_.OnEdgeAdded(e);
  if (u_in && v_in) {
    VertexId loser;
    const bool bu = state_.Bar1Size(u) > 0;
    const bool bv = state_.Bar1Size(v) > 0;
    if (bu != bv) {
      loser = bu ? u : v;
    } else {
      loser = g_->Degree(u) >= g_->Degree(v) ? u : v;
    }
    state_.MoveOut(loser);
    extend_scratch_.clear();
    g_->ForEachIncident(loser, [&](VertexId w, EdgeId) {
      if (!state_.InSolution(w) && state_.Count(w) == 0) {
        extend_scratch_.push_back(w);
      }
    });
    ExtendSolution(&extend_scratch_);
  }
  DrainTransitions();
  ProcessQueues();
}

void DyTwoSwap::DeleteEdge(VertexId u, VertexId v) {
  const EdgeId e = g_->FindEdge(u, v);
  DYNMIS_CHECK(e != kInvalidEdge);
  state_.OnEdgeRemoving(e);
  g_->RemoveEdge(e);
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  if (u_in || v_in) {
    const VertexId other = u_in ? v : u;
    if (!state_.InSolution(other) && state_.Count(other) == 0) {
      state_.MoveIn(other);
    }
  } else if (state_.Count(u) == 1 && state_.Count(v) == 1) {
    const VertexId wu = state_.OwnerOf(u);
    const VertexId wv = state_.OwnerOf(v);
    if (wu == wv) {
      // Deletion case ii.a: swap the shared owner with {u, v}.
      ++stats_.one_swaps;
      bar1_scratch_.clear();
      state_.CollectBar1(wu, &bar1_scratch_);
      state_.MoveOut(wu);
      DYNMIS_DCHECK(state_.Count(u) == 0);
      state_.MoveIn(u);
      if (state_.Count(v) == 0) state_.MoveIn(v);
      ExtendSolution(&bar1_scratch_);
    } else {
      // Deletion case ii.b: S = {wu, wv} with swap-in {u, v, w} for a
      // 2-tight w of the pair that misses both u and v.
      NewEpoch();
      Mark(u);
      Mark(v);
      g_->ForEachIncident(u, [&](VertexId z, EdgeId) { Mark(z); });
      g_->ForEachIncident(v, [&](VertexId z, EdgeId) { Mark(z); });
      std::vector<VertexId>& pair_tight = bar2s_;
      pair_tight.clear();
      state_.CollectBar2Pair(wu, wv, &pair_tight);
      VertexId w = kInvalidVertex;
      for (VertexId z : pair_tight) {
        if (!Marked(z)) {
          w = z;
          break;
        }
      }
      if (w != kInvalidVertex) {
        region_.clear();
        state_.CollectBar1(wu, &region_);
        state_.CollectBar1(wv, &region_);
        region_.insert(region_.end(), pair_tight.begin(), pair_tight.end());
        state_.MoveOut(wu);
        state_.MoveOut(wv);
        ++stats_.two_swaps;
        DYNMIS_DCHECK(state_.Count(u) == 0);
        state_.MoveIn(u);
        DYNMIS_DCHECK(state_.Count(v) == 0);
        state_.MoveIn(v);
        if (state_.Count(w) == 0) state_.MoveIn(w);
        ExtendSolution(&region_);
      }
    }
  } else {
    // Deletion case ii.c: when one endpoint is 2-tight and the other's
    // owners are a subset of its pair, the pair gains a usable candidate.
    for (const auto& [p, q] : {std::pair{u, v}, std::pair{v, u}}) {
      if (state_.Count(q) != 2 || state_.Count(p) < 1 || state_.Count(p) > 2) {
        continue;
      }
      VertexId a, b;
      state_.OwnersOf2(q, &a, &b);
      bool subset = true;
      state_.ForEachSolutionNeighbor(p, [&](VertexId s) {
        if (s != a && s != b) subset = false;
      });
      if (subset) EnqueueC2(a, b, q);
    }
  }
  DrainTransitions();
  ProcessQueues();
}

VertexId DyTwoSwap::InsertVertex(const std::vector<VertexId>& neighbors) {
  const VertexId v = g_->AddVertex();
  EnsureCapacity();
  ResetVertexSlots(v);
  for (VertexId u : neighbors) {
    DYNMIS_CHECK_NE(u, v);
    const EdgeId e = g_->AddEdge(u, v);
    EnsureCapacity();
    state_.OnEdgeAdded(e);
  }
  if (state_.Count(v) == 0) state_.MoveIn(v);
  DrainTransitions();
  ProcessQueues();
  return v;
}

void DyTwoSwap::DeleteVertex(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  extend_scratch_.clear();
  g_->ForEachIncident(v, [&](VertexId w, EdgeId) {
    extend_scratch_.push_back(w);
  });
  if (state_.InSolution(v)) state_.MoveOut(v);
  state_.OnVertexRemoving(v);
  g_->RemoveVertex(v);
  ResetVertexSlots(v);
  ExtendSolution(&extend_scratch_);
  DrainTransitions();
  ProcessQueues();
}

void DyTwoSwap::SaveState(SnapshotWriter* w) const {
  // Quiescent point: no pending candidates in either queue and an all-free
  // C2 pool, so the MisState arrays are the entire algorithm state.
  DYNMIS_CHECK(c1_queue_.empty());
  DYNMIS_CHECK(c2_queue_.empty());
  state_.SaveTo(w);
}

bool DyTwoSwap::LoadState(SnapshotReader* r, const DynamicGraph&) {
  if (!state_.LoadFrom(r)) return false;
  EnsureCapacity();
  return true;
}

size_t DyTwoSwap::MemoryUsageBytes() const {
  return state_.MemoryUsageBytes() + VectorBytes(c1_queue_) +
         VectorBytes(in_c1_) + cands_.MemoryUsageBytes() +
         VectorBytes(c2_pool_) + VectorBytes(c2_free_) +
         VectorBytes(c2_queue_) + VectorBytes(c2_head_) +
         VectorBytes(cand2_key_) + VectorBytes(cand2_next_) +
         VectorBytes(cand2_prev_) + VectorBytes(mark_) + VectorBytes(kept_) +
         VectorBytes(bar1_scratch_) + VectorBytes(bar2_scratch_) +
         VectorBytes(bar1x_) + VectorBytes(bar1y_) + VectorBytes(bar2s_) +
         VectorBytes(cy_) + VectorBytes(cz_) + VectorBytes(region_) +
         VectorBytes(extend_scratch_);
}

std::string DyTwoSwap::Name() const {
  std::string name = "DyTwoSwap";
  if (options_.lazy) name += "-lazy";
  if (options_.perturb) name += "*";
  return name;
}

}  // namespace dynmis
