#include "src/core/two_swap.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

DyTwoSwap::DyTwoSwap(DynamicGraph* g, MaintainerConfig options)
    : g_(g), options_(options), state_(g, /*k=*/2, options.lazy) {
  EnsureCapacity();
}

uint64_t DyTwoSwap::PairKey(VertexId x, VertexId y) {
  if (x > y) std::swap(x, y);
  // +1 keeps 0 free as the "not enqueued" sentinel.
  return (static_cast<uint64_t>(static_cast<uint32_t>(x + 1)) << 32) |
         static_cast<uint32_t>(y + 1);
}

void DyTwoSwap::UnpackPair(uint64_t key, VertexId* x, VertexId* y) {
  *x = static_cast<VertexId>(key >> 32) - 1;
  *y = static_cast<VertexId>(key & 0xffffffffu) - 1;
}

void DyTwoSwap::EnsureCapacity() {
  state_.EnsureCapacity();
  const size_t vcap = g_->VertexCapacity();
  if (in_c1_.size() < vcap) {
    in_c1_.resize(vcap, 0);
    cand_of_.resize(vcap);
    cand_owner_.resize(vcap, kInvalidVertex);
    cand2_key_.resize(vcap, 0);
    mark_.resize(vcap, 0);
  }
}

void DyTwoSwap::ResetVertexSlots(VertexId v) {
  EnsureCapacity();
  state_.OnVertexAdded(v);
  in_c1_[v] = 0;
  for (VertexId u : cand_of_[v]) {
    if (cand_owner_[u] == v) cand_owner_[u] = kInvalidVertex;
  }
  cand_of_[v].clear();
  cand_owner_[v] = kInvalidVertex;
  cand2_key_[v] = 0;
  mark_[v] = 0;
}

void DyTwoSwap::Initialize(const std::vector<VertexId>& initial) {
  for (VertexId v : initial) {
    DYNMIS_CHECK(g_->IsVertexAlive(v));
    state_.MoveIn(v);
  }
  std::vector<VertexId> free;
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && !state_.InSolution(v) && state_.Count(v) == 0) {
      free.push_back(v);
    }
  }
  ExtendSolution(std::move(free));
  // Establish 2-maximality: every 1-tight vertex seeds C1 and every 2-tight
  // vertex seeds C2 (a 2-swap's triple must contain a 2-tight vertex once
  // the solution is 1-maximal, so this is complete).
  (void)state_.TakeTransitions();
  for (VertexId u = 0; u < g_->VertexCapacity(); ++u) {
    if (!g_->IsVertexAlive(u) || state_.InSolution(u)) continue;
    if (state_.Count(u) == 1) {
      EnqueueC1(state_.OwnerOf(u), u);
    } else if (state_.Count(u) == 2) {
      VertexId a, b;
      state_.OwnersOf2(u, &a, &b);
      EnqueueC2(PairKey(a, b), u);
    }
  }
  ProcessQueues();
}

void DyTwoSwap::ExtendSolution(std::vector<VertexId> candidates) {
  if (options_.perturb) {
    std::sort(candidates.begin(), candidates.end(), [&](VertexId a, VertexId b) {
      return g_->Degree(a) != g_->Degree(b) ? g_->Degree(a) < g_->Degree(b)
                                            : a < b;
    });
  }
  for (VertexId w : candidates) {
    if (g_->IsVertexAlive(w) && !state_.InSolution(w) && state_.Count(w) == 0) {
      state_.MoveIn(w);
    }
  }
}

void DyTwoSwap::EnqueueC1(VertexId owner, VertexId u) {
  if (cand_owner_[u] == owner) return;
  cand_owner_[u] = owner;
  cand_of_[owner].push_back(u);
  if (!in_c1_[owner]) {
    in_c1_[owner] = 1;
    c1_queue_.push_back(owner);
  }
}

void DyTwoSwap::EnqueueC2(uint64_t pair_key, VertexId x) {
  if (cand2_key_[x] == pair_key) return;
  cand2_key_[x] = pair_key;
  auto [it, inserted] = c2_cands_.try_emplace(pair_key);
  it->second.push_back(x);
  if (inserted) c2_queue_.push_back(pair_key);
}

void DyTwoSwap::DrainTransitions() {
  for (VertexId u : state_.TakeTransitions()) {
    if (!g_->IsVertexAlive(u) || state_.InSolution(u)) continue;
    if (state_.Count(u) == 1) {
      EnqueueC1(state_.OwnerOf(u), u);
    } else if (state_.Count(u) == 2) {
      VertexId a, b;
      state_.OwnersOf2(u, &a, &b);
      EnqueueC2(PairKey(a, b), u);
    }
  }
}

std::vector<VertexId> DyTwoSwap::ApplyBatch(
    const std::vector<GraphUpdate>& updates) {
  deferred_ = true;
  std::vector<VertexId> new_vertices =
      DynamicMisMaintainer::ApplyBatch(updates);
  deferred_ = false;
  ProcessQueues();
  return new_vertices;
}

void DyTwoSwap::ProcessQueues() {
  if (deferred_) return;
  while (!c1_queue_.empty() || !c2_queue_.empty()) {
    if (!c1_queue_.empty()) {
      FindOneSwapStep();
    } else {
      FindTwoSwapStep();
    }
  }
}

void DyTwoSwap::FindOneSwapStep() {
  const VertexId v = c1_queue_.back();
  c1_queue_.pop_back();
  in_c1_[v] = 0;
  std::vector<VertexId> cands = std::move(cand_of_[v]);
  cand_of_[v].clear();
  const bool v_valid = g_->IsVertexAlive(v) && state_.InSolution(v);
  std::vector<VertexId> kept;
  for (VertexId u : cands) {
    if (cand_owner_[u] != v) continue;
    cand_owner_[u] = kInvalidVertex;
    if (!v_valid || !g_->IsVertexAlive(u) || state_.InSolution(u) ||
        state_.Count(u) != 1 || state_.OwnerOf(u) != v) {
      continue;
    }
    kept.push_back(u);
  }
  if (kept.empty()) return;
  stats_.candidates_processed += static_cast<int64_t>(kept.size());

  std::vector<VertexId> bar1;
  state_.CollectBar1(v, &bar1);
  const int bar1_size = static_cast<int>(bar1.size());
  NewEpoch();
  for (VertexId w : bar1) Mark(w);

  VertexId chosen = kInvalidVertex;
  for (VertexId u : kept) {
    int inter = 1;
    g_->ForEachIncident(u, [&](VertexId w, EdgeId) {
      if (Marked(w)) ++inter;
    });
    if (inter < bar1_size) {
      if (!options_.perturb) {
        chosen = u;
        break;
      }
      if (chosen == kInvalidVertex || g_->Degree(u) < g_->Degree(chosen)) {
        chosen = u;
      }
    }
  }
  if (chosen != kInvalidVertex) {
    PerformOneSwap(v, chosen, bar1);
    return;
  }
  if (options_.perturb && !bar1.empty()) {
    // Plateau rotation toward the smallest-degree 1-tight neighbour (see
    // DyOneSwap); size-neutral because G[bar1(v)] is a clique, and the
    // strictly decreasing solution degree guarantees termination.
    VertexId best = bar1.front();
    for (VertexId w : bar1) {
      if (g_->Degree(w) < g_->Degree(best)) best = w;
    }
    if (g_->Degree(best) < g_->Degree(v)) {
      state_.MoveOut(v);
      DYNMIS_DCHECK(state_.Count(best) == 0);
      state_.MoveIn(best);
      DrainTransitions();
      return;
    }
  }
  // No 1-swap for v (Alg 3, lines 14-17): the new bar1(v) members may still
  // enable a 2-swap for a pair {v, z}. A 2-tight neighbour x of v is a
  // useful pair witness only if it misses at least one member of C(v).
  NewEpoch();
  for (VertexId u : kept) Mark(u);
  std::vector<VertexId> bar2;
  state_.CollectBar2(v, &bar2);
  const int kept_size = static_cast<int>(kept.size());
  for (VertexId x : bar2) {
    int inter = 0;
    g_->ForEachIncident(x, [&](VertexId w, EdgeId) {
      if (Marked(w)) ++inter;
    });
    if (inter < kept_size) {
      VertexId a, b;
      state_.OwnersOf2(x, &a, &b);
      EnqueueC2(PairKey(a, b), x);
    }
  }
}

void DyTwoSwap::FindTwoSwapStep() {
  const uint64_t key = c2_queue_.back();
  c2_queue_.pop_back();
  auto it = c2_cands_.find(key);
  DYNMIS_DCHECK(it != c2_cands_.end());
  std::vector<VertexId> cands = std::move(it->second);
  c2_cands_.erase(it);
  VertexId x, y;
  UnpackPair(key, &x, &y);
  const bool pair_valid = g_->IsVertexAlive(x) && g_->IsVertexAlive(y) &&
                          state_.InSolution(x) && state_.InSolution(y);
  std::vector<VertexId> kept;
  for (VertexId w : cands) {
    if (cand2_key_[w] != key) continue;
    cand2_key_[w] = 0;
    if (!pair_valid || !g_->IsVertexAlive(w) || state_.InSolution(w) ||
        state_.Count(w) != 2) {
      continue;
    }
    VertexId a, b;
    state_.OwnersOf2(w, &a, &b);
    if (PairKey(a, b) != key) continue;
    kept.push_back(w);
  }
  if (kept.empty()) return;
  stats_.pair_candidates_processed += static_cast<int64_t>(kept.size());

  std::vector<VertexId> bar1x, bar1y, bar2s;
  state_.CollectBar1(x, &bar1x);
  state_.CollectBar1(y, &bar1y);
  state_.CollectBar2Pair(x, y, &bar2s);

  std::vector<VertexId> cy, cz;
  for (VertexId w : kept) {
    // Cy = bar1(x) u bar2(S) \ N[w];  Cz = bar1(y) u bar2(S) \ N[w].
    NewEpoch();
    Mark(w);
    g_->ForEachIncident(w, [&](VertexId z, EdgeId) { Mark(z); });
    cy.clear();
    cz.clear();
    for (VertexId z : bar1x) {
      if (!Marked(z)) cy.push_back(z);
    }
    for (VertexId z : bar2s) {
      if (!Marked(z)) cy.push_back(z);
    }
    for (VertexId z : bar1y) {
      if (!Marked(z)) cz.push_back(z);
    }
    for (VertexId z : bar2s) {
      if (!Marked(z)) cz.push_back(z);
    }
    if (cy.empty() || cz.empty()) continue;
    // Look for non-adjacent (a, b) with a in Cy, b in Cz, a != b.
    NewEpoch();
    for (VertexId z : cz) Mark(z);
    const int cz_size = static_cast<int>(cz.size());
    for (VertexId a : cy) {
      int inter = Marked(a) ? 1 : 0;  // a may itself lie in Cz.
      g_->ForEachIncident(a, [&](VertexId z, EdgeId) {
        if (Marked(z)) ++inter;
      });
      if (inter >= cz_size) continue;
      // A witness exists; find it explicitly.
      NewEpoch();
      Mark(a);
      g_->ForEachIncident(a, [&](VertexId z, EdgeId) { Mark(z); });
      VertexId b = kInvalidVertex;
      for (VertexId z : cz) {
        if (!Marked(z)) {
          b = z;
          break;
        }
      }
      DYNMIS_CHECK(b != kInvalidVertex);
      std::vector<VertexId> region;
      region.reserve(bar1x.size() + bar1y.size() + bar2s.size());
      region.insert(region.end(), bar1x.begin(), bar1x.end());
      region.insert(region.end(), bar1y.begin(), bar1y.end());
      region.insert(region.end(), bar2s.begin(), bar2s.end());
      PerformTwoSwap(x, y, w, a, b, std::move(region));
      return;
    }
  }
}

void DyTwoSwap::PerformOneSwap(VertexId v, VertexId u,
                               const std::vector<VertexId>& bar1_snapshot) {
  ++stats_.one_swaps;
  std::vector<VertexId> snapshot = bar1_snapshot;
  state_.MoveOut(v);
  state_.MoveIn(u);
  ExtendSolution(std::move(snapshot));
  DrainTransitions();
}

void DyTwoSwap::PerformTwoSwap(VertexId x, VertexId y, VertexId in_a,
                               VertexId in_b, VertexId in_c,
                               std::vector<VertexId> region_snapshot) {
  ++stats_.two_swaps;
  state_.MoveOut(x);
  state_.MoveOut(y);
  DYNMIS_DCHECK(state_.Count(in_a) == 0);
  state_.MoveIn(in_a);
  DYNMIS_DCHECK(state_.Count(in_b) == 0);
  state_.MoveIn(in_b);
  if (state_.Count(in_c) == 0) state_.MoveIn(in_c);
  ExtendSolution(std::move(region_snapshot));
  DrainTransitions();
}

void DyTwoSwap::InsertEdge(VertexId u, VertexId v) {
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  const EdgeId e = g_->AddEdge(u, v);
  EnsureCapacity();
  state_.OnEdgeAdded(e);
  if (u_in && v_in) {
    VertexId loser;
    const bool bu = state_.Bar1Size(u) > 0;
    const bool bv = state_.Bar1Size(v) > 0;
    if (bu != bv) {
      loser = bu ? u : v;
    } else {
      loser = g_->Degree(u) >= g_->Degree(v) ? u : v;
    }
    state_.MoveOut(loser);
    std::vector<VertexId> freed;
    g_->ForEachIncident(loser, [&](VertexId w, EdgeId) {
      if (!state_.InSolution(w) && state_.Count(w) == 0) freed.push_back(w);
    });
    ExtendSolution(std::move(freed));
  }
  DrainTransitions();
  ProcessQueues();
}

void DyTwoSwap::DeleteEdge(VertexId u, VertexId v) {
  const EdgeId e = g_->FindEdge(u, v);
  DYNMIS_CHECK(e != kInvalidEdge);
  state_.OnEdgeRemoving(e);
  g_->RemoveEdge(e);
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  if (u_in || v_in) {
    const VertexId other = u_in ? v : u;
    if (!state_.InSolution(other) && state_.Count(other) == 0) {
      state_.MoveIn(other);
    }
  } else if (state_.Count(u) == 1 && state_.Count(v) == 1) {
    const VertexId wu = state_.OwnerOf(u);
    const VertexId wv = state_.OwnerOf(v);
    if (wu == wv) {
      // Deletion case ii.a: swap the shared owner with {u, v}.
      ++stats_.one_swaps;
      std::vector<VertexId> snapshot;
      state_.CollectBar1(wu, &snapshot);
      state_.MoveOut(wu);
      DYNMIS_DCHECK(state_.Count(u) == 0);
      state_.MoveIn(u);
      if (state_.Count(v) == 0) state_.MoveIn(v);
      ExtendSolution(std::move(snapshot));
    } else {
      // Deletion case ii.b: S = {wu, wv} with swap-in {u, v, w} for a
      // 2-tight w of the pair that misses both u and v.
      NewEpoch();
      Mark(u);
      Mark(v);
      g_->ForEachIncident(u, [&](VertexId z, EdgeId) { Mark(z); });
      g_->ForEachIncident(v, [&](VertexId z, EdgeId) { Mark(z); });
      std::vector<VertexId> pair_tight;
      state_.CollectBar2Pair(wu, wv, &pair_tight);
      VertexId w = kInvalidVertex;
      for (VertexId z : pair_tight) {
        if (!Marked(z)) {
          w = z;
          break;
        }
      }
      if (w != kInvalidVertex) {
        std::vector<VertexId> region;
        state_.CollectBar1(wu, &region);
        state_.CollectBar1(wv, &region);
        region.insert(region.end(), pair_tight.begin(), pair_tight.end());
        state_.MoveOut(wu);
        state_.MoveOut(wv);
        ++stats_.two_swaps;
        DYNMIS_DCHECK(state_.Count(u) == 0);
        state_.MoveIn(u);
        DYNMIS_DCHECK(state_.Count(v) == 0);
        state_.MoveIn(v);
        if (state_.Count(w) == 0) state_.MoveIn(w);
        ExtendSolution(std::move(region));
      }
    }
  } else {
    // Deletion case ii.c: when one endpoint is 2-tight and the other's
    // owners are a subset of its pair, the pair gains a usable candidate.
    for (const auto& [p, q] : {std::pair{u, v}, std::pair{v, u}}) {
      if (state_.Count(q) != 2 || state_.Count(p) < 1 || state_.Count(p) > 2) {
        continue;
      }
      VertexId a, b;
      state_.OwnersOf2(q, &a, &b);
      bool subset = true;
      state_.ForEachSolutionNeighbor(p, [&](VertexId s) {
        if (s != a && s != b) subset = false;
      });
      if (subset) EnqueueC2(PairKey(a, b), q);
    }
  }
  DrainTransitions();
  ProcessQueues();
}

VertexId DyTwoSwap::InsertVertex(const std::vector<VertexId>& neighbors) {
  const VertexId v = g_->AddVertex();
  EnsureCapacity();
  ResetVertexSlots(v);
  for (VertexId u : neighbors) {
    DYNMIS_CHECK_NE(u, v);
    const EdgeId e = g_->AddEdge(u, v);
    EnsureCapacity();
    state_.OnEdgeAdded(e);
  }
  if (state_.Count(v) == 0) state_.MoveIn(v);
  DrainTransitions();
  ProcessQueues();
  return v;
}

void DyTwoSwap::DeleteVertex(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  std::vector<VertexId> neighbors = g_->Neighbors(v);
  if (state_.InSolution(v)) state_.MoveOut(v);
  state_.OnVertexRemoving(v);
  g_->RemoveVertex(v);
  ResetVertexSlots(v);
  ExtendSolution(std::move(neighbors));
  DrainTransitions();
  ProcessQueues();
}

size_t DyTwoSwap::MemoryUsageBytes() const {
  return state_.MemoryUsageBytes() + VectorBytes(c1_queue_) +
         VectorBytes(in_c1_) + NestedVectorBytes(cand_of_) +
         VectorBytes(cand_owner_) + VectorBytes(c2_queue_) +
         UnorderedMapBytes(c2_cands_) + VectorBytes(cand2_key_) +
         VectorBytes(mark_) + VectorBytes(scratch_);
}

std::string DyTwoSwap::Name() const {
  std::string name = "DyTwoSwap";
  if (options_.lazy) name += "-lazy";
  if (options_.perturb) name += "*";
  return name;
}

}  // namespace dynmis
