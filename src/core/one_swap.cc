#include "src/core/one_swap.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

DyOneSwap::DyOneSwap(DynamicGraph* g, MaintainerConfig options)
    : g_(g), options_(options), state_(g, /*k=*/1, options.lazy) {
  EnsureCapacity();
}

void DyOneSwap::EnsureCapacity() {
  state_.EnsureCapacity();
  const size_t vcap = g_->VertexCapacity();
  if (in_queue_.size() < vcap) {
    in_queue_.resize(vcap, 0);
    cands_.EnsureCapacity(vcap);
    mark_.resize(vcap, 0);
  }
}

void DyOneSwap::ResetVertexSlots(VertexId v) {
  EnsureCapacity();
  state_.OnVertexAdded(v);
  in_queue_[v] = 0;
  cands_.OnVertexReset(v);
  mark_[v] = 0;
}

void DyOneSwap::Initialize(const std::vector<VertexId>& initial) {
  for (VertexId v : initial) {
    DYNMIS_CHECK(g_->IsVertexAlive(v));
    state_.MoveIn(v);  // Aborts if `initial` is not independent.
  }
  // Extend to a maximal solution.
  std::vector<VertexId> free;
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && !state_.InSolution(v) && state_.Count(v) == 0) {
      free.push_back(v);
    }
  }
  ExtendSolution(&free);
  // Establish 1-maximality: every 1-tight vertex is a candidate.
  state_.DiscardTransitions();
  for (VertexId u = 0; u < g_->VertexCapacity(); ++u) {
    if (g_->IsVertexAlive(u) && !state_.InSolution(u) && state_.Count(u) == 1) {
      EnqueueCandidate(state_.OwnerOf(u), u);
    }
  }
  ProcessQueue();
}

void DyOneSwap::ExtendSolution(std::vector<VertexId>* candidates) {
  if (options_.perturb) {
    // Prefer low-degree vertices: they are more likely to be in a MaxIS.
    std::sort(candidates->begin(), candidates->end(),
              [&](VertexId a, VertexId b) {
                return g_->Degree(a) != g_->Degree(b)
                           ? g_->Degree(a) < g_->Degree(b)
                           : a < b;
              });
  }
  for (VertexId w : *candidates) {
    if (g_->IsVertexAlive(w) && !state_.InSolution(w) && state_.Count(w) == 0) {
      state_.MoveIn(w);
    }
  }
}

void DyOneSwap::EnqueueCandidate(VertexId owner, VertexId u) {
  if (!cands_.Enqueue(owner, u)) return;
  if (!in_queue_[owner]) {
    in_queue_[owner] = 1;
    queue_.push_back(owner);
  }
}

void DyOneSwap::DrainTransitions() {
  state_.DrainTransitions([&](VertexId u) {
    if (!g_->IsVertexAlive(u) || state_.InSolution(u) ||
        state_.Count(u) != 1) {
      return;
    }
    EnqueueCandidate(state_.OwnerOf(u), u);
  });
}

std::vector<VertexId> DyOneSwap::ApplyBatch(
    const std::vector<GraphUpdate>& updates) {
  deferred_ = true;
  std::vector<VertexId> new_vertices =
      DynamicMisMaintainer::ApplyBatch(updates);
  deferred_ = false;
  ProcessQueue();
  return new_vertices;
}

void DyOneSwap::ProcessQueue() {
  if (deferred_) return;
  std::vector<VertexId>& kept = kept_;
  while (!queue_.empty()) {
    const VertexId v = queue_.back();
    queue_.pop_back();
    in_queue_[v] = 0;
    const bool v_valid = g_->IsVertexAlive(v) && state_.InSolution(v);
    // Consume v's candidate list; entries may be stale (candidates are
    // re-validated, not unlinked, when their tightness changes).
    kept.clear();
    cands_.Consume(v, [&](VertexId u) {
      if (v_valid && g_->IsVertexAlive(u) && !state_.InSolution(u) &&
          state_.Count(u) == 1 && state_.OwnerOf(u) == v) {
        kept.push_back(u);
      }
    });
    if (kept.empty()) continue;
    stats_.candidates_processed += static_cast<int64_t>(kept.size());

    bar1_scratch_.clear();
    state_.CollectBar1(v, &bar1_scratch_);
    const int bar1_size = static_cast<int>(bar1_scratch_.size());
    NewEpoch();
    for (VertexId w : bar1_scratch_) Mark(w);

    VertexId chosen = kInvalidVertex;
    for (VertexId u : kept) {
      // |N[u] cap bar1(v)| = 1 (u itself) + marked open neighbours.
      int inter = 1;
      g_->ForEachIncident(u, [&](VertexId w, EdgeId) {
        if (Marked(w)) ++inter;
      });
      if (inter < bar1_size) {
        if (!options_.perturb) {
          chosen = u;
          break;
        }
        if (chosen == kInvalidVertex || g_->Degree(u) < g_->Degree(chosen)) {
          chosen = u;
        }
      }
    }
    if (chosen != kInvalidVertex) {
      PerformOneSwap(v, chosen, &bar1_scratch_);
      continue;
    }
    if (options_.perturb && !bar1_scratch_.empty()) {
      // Perturbation (paper optimization 2): G[bar1(v)] is a clique, so v
      // can rotate with any member without changing the solution size.
      // Rotating toward the smallest-degree member strictly decreases the
      // total solution degree (ensuring termination) and tends to free up
      // future swaps, since high-degree vertices rarely belong to a MaxIS.
      VertexId best = bar1_scratch_.front();
      for (VertexId w : bar1_scratch_) {
        if (g_->Degree(w) < g_->Degree(best)) best = w;
      }
      if (g_->Degree(best) < g_->Degree(v)) {
        state_.MoveOut(v);
        DYNMIS_DCHECK(state_.Count(best) == 0);
        state_.MoveIn(best);
        DrainTransitions();
      }
    }
  }
}

void DyOneSwap::PerformOneSwap(VertexId v, VertexId u,
                               std::vector<VertexId>* bar1_snapshot) {
  ++stats_.one_swaps;
  state_.MoveOut(v);
  state_.MoveIn(u);
  ExtendSolution(bar1_snapshot);
  DrainTransitions();
}

void DyOneSwap::InsertEdge(VertexId u, VertexId v) {
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  const EdgeId e = g_->AddEdge(u, v);
  EnsureCapacity();
  state_.OnEdgeAdded(e);
  if (u_in && v_in) {
    // One endpoint must leave. Prefer the one with 1-tight neighbours (a
    // replacement is then guaranteed); otherwise drop the higher degree.
    VertexId loser;
    const bool bu = state_.Bar1Size(u) > 0;
    const bool bv = state_.Bar1Size(v) > 0;
    if (bu != bv) {
      loser = bu ? u : v;
    } else {
      loser = g_->Degree(u) >= g_->Degree(v) ? u : v;
    }
    state_.MoveOut(loser);
    extend_scratch_.clear();
    g_->ForEachIncident(loser, [&](VertexId w, EdgeId) {
      if (!state_.InSolution(w) && state_.Count(w) == 0) {
        extend_scratch_.push_back(w);
      }
    });
    ExtendSolution(&extend_scratch_);
  }
  DrainTransitions();
  ProcessQueue();
}

void DyOneSwap::DeleteEdge(VertexId u, VertexId v) {
  const EdgeId e = g_->FindEdge(u, v);
  DYNMIS_CHECK(e != kInvalidEdge);
  state_.OnEdgeRemoving(e);
  g_->RemoveEdge(e);
  const bool u_in = state_.InSolution(u);
  const bool v_in = state_.InSolution(v);
  if (u_in || v_in) {
    const VertexId other = u_in ? v : u;
    if (!state_.InSolution(other) && state_.Count(other) == 0) {
      state_.MoveIn(other);
    }
  } else if (state_.Count(u) == 1 && state_.Count(v) == 1) {
    const VertexId wu = state_.OwnerOf(u);
    const VertexId wv = state_.OwnerOf(v);
    if (wu == wv) {
      // u and v are now non-adjacent and both covered only by w: the swap
      // {w} -> {u, v} strictly grows the solution (Alg 2, deletion case ii).
      ++stats_.one_swaps;
      bar1_scratch_.clear();
      state_.CollectBar1(wu, &bar1_scratch_);
      state_.MoveOut(wu);
      DYNMIS_DCHECK(state_.Count(u) == 0);
      state_.MoveIn(u);
      if (state_.Count(v) == 0) state_.MoveIn(v);
      ExtendSolution(&bar1_scratch_);
    }
  }
  DrainTransitions();
  ProcessQueue();
}

VertexId DyOneSwap::InsertVertex(const std::vector<VertexId>& neighbors) {
  const VertexId v = g_->AddVertex();
  EnsureCapacity();
  ResetVertexSlots(v);
  for (VertexId u : neighbors) {
    DYNMIS_CHECK_NE(u, v);
    const EdgeId e = g_->AddEdge(u, v);
    EnsureCapacity();
    state_.OnEdgeAdded(e);
  }
  if (state_.Count(v) == 0) state_.MoveIn(v);
  DrainTransitions();
  ProcessQueue();
  return v;
}

void DyOneSwap::DeleteVertex(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  extend_scratch_.clear();
  g_->ForEachIncident(v, [&](VertexId w, EdgeId) {
    extend_scratch_.push_back(w);
  });
  if (state_.InSolution(v)) state_.MoveOut(v);
  state_.OnVertexRemoving(v);
  g_->RemoveVertex(v);
  ResetVertexSlots(v);  // The id may be recycled; clear stale algorithm state.
  ExtendSolution(&extend_scratch_);
  DrainTransitions();
  ProcessQueue();
}

void DyOneSwap::SaveState(SnapshotWriter* w) const {
  DYNMIS_CHECK(queue_.empty());  // Quiescent point: no pending candidates.
  state_.SaveTo(w);
}

bool DyOneSwap::LoadState(SnapshotReader* r, const DynamicGraph&) {
  if (!state_.LoadFrom(r)) return false;
  EnsureCapacity();
  return true;
}

size_t DyOneSwap::MemoryUsageBytes() const {
  return state_.MemoryUsageBytes() + VectorBytes(queue_) +
         VectorBytes(in_queue_) + cands_.MemoryUsageBytes() +
         VectorBytes(mark_) + VectorBytes(bar1_scratch_) +
         VectorBytes(kept_) + VectorBytes(extend_scratch_);
}

std::string DyOneSwap::Name() const {
  std::string name = "DyOneSwap";
  if (options_.lazy) name += "-lazy";
  if (options_.perturb) name += "*";
  return name;
}

}  // namespace dynmis
