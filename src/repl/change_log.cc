#include "src/repl/change_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/io/atomic_file.h"
#include "src/io/snapshot.h"
#include "src/util/faultfs.h"

namespace dynmis {
namespace repl {
namespace {

constexpr char kSegmentMagicV1[8] = {'D', 'M', 'I', 'S', 'L', 'O', 'G', '1'};
constexpr char kSegmentMagicV2[8] = {'D', 'M', 'I', 'S', 'L', 'O', 'G', '2'};
constexpr char kBaseMagic[8] = {'D', 'M', 'I', 'S', 'B', 'A', 'S', '1'};
constexpr size_t kMagicBytes = sizeof(kSegmentMagicV2);
// V2 segment header: magic + u64 epoch. V1 is magic only.
constexpr size_t kSegmentHeaderV2 = kMagicBytes + 8;
constexpr size_t kRecordHeaderBytes = 8;  // payload_len u32 + crc u32.
// A record holds one admission batch (bounded by batch_max_ops and the line
// length limit); anything near this size is structurally impossible and
// treated as corruption rather than attempted as an allocation.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t value = 0;
  std::memcpy(&value, p, sizeof(value));
  return value;  // Little-endian hosts only (matches src/io/snapshot.cc).
}

uint64_t ReadU64(const char* p) {
  uint64_t value = 0;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool SetErrno(std::string* error, const std::string& what) {
  return SetError(error, what + ": " + std::strerror(errno));
}

// Parses "<prefix><16 hex digits><suffix>" into the embedded sequence
// number; returns -1 when `name` does not match.
int64_t ParseSeqName(const std::string& name, const char* prefix,
                     const char* suffix) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() != prefix_len + 16 + suffix_len) return -1;
  if (name.compare(0, prefix_len, prefix) != 0) return -1;
  if (name.compare(prefix_len + 16, suffix_len, suffix) != 0) return -1;
  int64_t value = 0;
  for (size_t i = prefix_len; i < prefix_len + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return -1;
    }
    value = (value << 4) | digit;
  }
  return value;
}

std::string SeqName(const char* prefix, int64_t seq, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%016llx%s", prefix,
                static_cast<unsigned long long>(seq), suffix);
  return buf;
}

// Reads exactly `size` bytes at `offset` unless the file ends first; returns
// the byte count actually read, or -1 on error.
ssize_t PreadFull(int fd, char* buf, size_t size, int64_t offset) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = pread(fd, buf + done, size - done,
                            static_cast<off_t>(offset) + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF (possibly mid-record at a live tail).
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

// Classifies an open segment's header. Returns false only on a read error.
// *header_bytes is where records start; *complete is false for an embryonic
// header (too short) — a bad magic on a complete-length header is reported
// through *bad_magic so callers can treat it as corruption.
bool ReadSegmentHeader(int fd, int64_t* epoch, size_t* header_bytes,
                       bool* complete, bool* bad_magic) {
  *epoch = 0;
  *header_bytes = 0;
  *complete = false;
  *bad_magic = false;
  char header[kSegmentHeaderV2];
  const ssize_t got = PreadFull(fd, header, sizeof(header), 0);
  if (got < 0) return false;
  if (static_cast<size_t>(got) < kMagicBytes) return true;  // Embryonic.
  if (std::memcmp(header, kSegmentMagicV1, kMagicBytes) == 0) {
    *header_bytes = kMagicBytes;
    *complete = true;
    return true;
  }
  if (std::memcmp(header, kSegmentMagicV2, kMagicBytes) != 0) {
    *bad_magic = true;
    return true;
  }
  if (static_cast<size_t>(got) < kSegmentHeaderV2) return true;  // Embryonic.
  *epoch = static_cast<int64_t>(ReadU64(header + kMagicBytes));
  *header_bytes = kSegmentHeaderV2;
  *complete = true;
  return true;
}

}  // namespace

// High bit of the kind byte: the op carries an external-key suffix
// (u32 length + bytes after the neighbor list). Only vertex inserts and
// deletes can be keyed; readers without the bit set decode exactly the old
// format, so unkeyed logs stay byte-identical across versions.
constexpr uint8_t kKeyedKindFlag = 0x80;

std::string EncodeLogRecord(const LogBatch& batch) {
  std::string payload;
  AppendU64(&payload, static_cast<uint64_t>(batch.seq));
  AppendU32(&payload, static_cast<uint32_t>(batch.updates.size()));
  for (const GraphUpdate& update : batch.updates) {
    const bool keyed = !update.key.empty() &&
                       (update.kind == UpdateKind::kInsertVertex ||
                        update.kind == UpdateKind::kDeleteVertex);
    uint8_t kind = static_cast<uint8_t>(update.kind);
    if (keyed) kind |= kKeyedKindFlag;
    payload.push_back(static_cast<char>(kind));
    AppendU32(&payload, static_cast<uint32_t>(update.u));
    AppendU32(&payload, static_cast<uint32_t>(update.v));
    AppendU32(&payload, static_cast<uint32_t>(update.neighbors.size()));
    for (const VertexId neighbor : update.neighbors) {
      AppendU32(&payload, static_cast<uint32_t>(neighbor));
    }
    if (keyed) {
      AppendU32(&payload, static_cast<uint32_t>(update.key.size()));
      payload.append(update.key);
    }
  }
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU32(&record, Crc32(payload.data(), payload.size()));
  record.append(payload);
  return record;
}

bool DecodeLogPayload(const char* data, size_t size, LogBatch* out) {
  size_t pos = 0;
  const auto remaining = [&] { return size - pos; };
  if (remaining() < 12) return false;
  out->seq = static_cast<int64_t>(ReadU64(data + pos));
  pos += 8;
  const uint32_t num_ops = ReadU32(data + pos);
  pos += 4;
  out->updates.clear();
  out->updates.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    if (remaining() < 13) return false;
    GraphUpdate update;
    const uint8_t raw_kind = static_cast<uint8_t>(data[pos]);
    const bool keyed = (raw_kind & kKeyedKindFlag) != 0;
    const uint8_t kind = raw_kind & static_cast<uint8_t>(~kKeyedKindFlag);
    if (kind > static_cast<uint8_t>(UpdateKind::kDeleteVertex)) return false;
    update.kind = static_cast<UpdateKind>(kind);
    if (keyed && update.kind != UpdateKind::kInsertVertex &&
        update.kind != UpdateKind::kDeleteVertex) {
      return false;
    }
    pos += 1;
    update.u = static_cast<VertexId>(ReadU32(data + pos));
    pos += 4;
    update.v = static_cast<VertexId>(ReadU32(data + pos));
    pos += 4;
    const uint32_t num_neighbors = ReadU32(data + pos);
    pos += 4;
    if (remaining() < static_cast<size_t>(num_neighbors) * 4) return false;
    update.neighbors.reserve(num_neighbors);
    for (uint32_t j = 0; j < num_neighbors; ++j) {
      update.neighbors.push_back(static_cast<VertexId>(ReadU32(data + pos)));
      pos += 4;
    }
    if (keyed) {
      if (remaining() < 4) return false;
      const uint32_t key_len = ReadU32(data + pos);
      pos += 4;
      if (key_len == 0 || remaining() < key_len) return false;
      update.key.assign(data + pos, key_len);
      pos += key_len;
    }
    out->updates.push_back(std::move(update));
  }
  return pos == size;
}

std::string SegmentFileName(int64_t first_seq) {
  return SeqName("seg-", first_seq, ".log");
}

std::string BaseSnapshotFileName(int64_t seq) {
  return SeqName("base-", seq, ".snap");
}

bool ScanChangeLogDir(const std::string& dir, ChangeLogDirState* out,
                      std::string* error) {
  out->segments.clear();
  out->latest_base_seq = -1;
  out->latest_base_path.clear();
  out->max_epoch = 0;
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return SetErrno(error, "opendir " + dir);
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    int64_t seq = ParseSeqName(name, "seg-", ".log");
    if (seq >= 0) {
      SegmentInfo info;
      info.first_seq = seq;
      info.path = dir + "/" + name;
      out->segments.push_back(std::move(info));
      continue;
    }
    seq = ParseSeqName(name, "base-", ".snap");
    if (seq >= 0 && seq > out->latest_base_seq) {
      out->latest_base_seq = seq;
      out->latest_base_path = dir + "/" + name;
    }
  }
  closedir(handle);
  std::sort(out->segments.begin(), out->segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.first_seq < b.first_seq;
            });
  for (SegmentInfo& info : out->segments) {
    const int fd = open(info.path.c_str(), O_RDONLY);
    if (fd < 0) {
      // Raced with deletion or unreadable: treat as embryonic (no records).
      continue;
    }
    size_t header_bytes = 0;
    bool bad_magic = false;
    const bool ok = ReadSegmentHeader(fd, &info.epoch, &header_bytes,
                                      &info.header_complete, &bad_magic);
    close(fd);
    // A bad magic surfaces later, when a cursor actually opens the file.
    if (ok && info.header_complete && info.epoch > out->max_epoch) {
      out->max_epoch = info.epoch;
    }
  }
  return true;
}

bool WriteBaseSnapshot(const std::string& dir, int64_t seq, int64_t epoch,
                       const std::string& bytes, std::string* error) {
  std::string file;
  file.reserve(kMagicBytes + 8 + bytes.size());
  file.append(kBaseMagic, kMagicBytes);
  AppendU64(&file, static_cast<uint64_t>(epoch));
  file.append(bytes);
  return io::WriteFileAtomic(dir + "/" + BaseSnapshotFileName(seq), file,
                             error);
}

bool OpenBaseSnapshot(const std::string& path, std::ifstream* in,
                      int64_t* epoch, std::string* error) {
  *epoch = 0;
  in->open(path, std::ios::binary);
  if (!*in) return SetError(error, "cannot open base snapshot " + path);
  char prologue[kMagicBytes + 8];
  in->read(prologue, sizeof(prologue));
  if (in->gcount() == static_cast<std::streamsize>(sizeof(prologue)) &&
      std::memcmp(prologue, kBaseMagic, kMagicBytes) == 0) {
    *epoch = static_cast<int64_t>(ReadU64(prologue + kMagicBytes));
    return true;
  }
  // Legacy base snapshot: the container starts at byte 0.
  in->clear();
  in->seekg(0);
  return true;
}

int64_t ReadEpochValue(const char* epoch_path) {
  const int fd = open(epoch_path, O_RDONLY);
  if (fd < 0) return 0;
  char buf[8];
  const ssize_t got = PreadFull(fd, buf, sizeof(buf), 0);
  close(fd);
  if (got != static_cast<ssize_t>(sizeof(buf))) return 0;
  return static_cast<int64_t>(ReadU64(buf));
}

int64_t ReadEpochFile(const std::string& dir) {
  return ReadEpochValue((dir + "/epoch").c_str());
}

bool WriteEpochFile(const std::string& dir, int64_t epoch,
                    std::string* error) {
  // A restarting primary claims its epoch before opening the log, so this
  // may be the first write into a brand-new directory.
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return SetErrno(error, "mkdir " + dir);
  }
  std::string bytes;
  AppendU64(&bytes, static_cast<uint64_t>(epoch));
  return io::WriteFileAtomic(dir + "/epoch", bytes, error);
}

int CleanStaleTmpFiles(const std::string& dir) {
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return 0;
  int removed = 0;
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      if (unlink((dir + "/" + name).c_str()) == 0) ++removed;
    }
  }
  closedir(handle);
  return removed;
}

ChangeLogWriter::~ChangeLogWriter() {
  if (fd_ >= 0) close(fd_);
}

bool ChangeLogWriter::Open(const std::string& dir, int64_t segment_bytes,
                           int64_t next_seq, int64_t epoch,
                           std::string* error) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return SetErrno(error, "mkdir " + dir);
  }
  dir_ = dir;
  segment_bytes_ = segment_bytes > 0 ? segment_bytes : (4 << 20);
  epoch_ = epoch;
  CleanStaleTmpFiles(dir_);
  return OpenSegment(next_seq, error);
}

bool ChangeLogWriter::OpenSegment(int64_t first_seq, std::string* error) {
  if (fd_ >= 0) {
    // Rotation durability point: the finished segment is synced before the
    // cursor-visible successor appears.
    int rc;
    do {
      rc = faultfs::Fsync(fd_, segment_path_.c_str());
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return SetErrno(error, "fsync segment");
    close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentFileName(first_seq);
  // O_TRUNC: a name collision means the existing segment holds no complete
  // record below `first_seq` (the caller derived first_seq from scanning the
  // log), so rewriting it is the correct recovery.
  fd_ = open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) return SetErrno(error, "open " + path);
  segment_path_ = path;
  char header[kSegmentHeaderV2];
  std::memcpy(header, kSegmentMagicV2, kMagicBytes);
  const uint64_t epoch = static_cast<uint64_t>(epoch_);
  std::memcpy(header + kMagicBytes, &epoch, sizeof(epoch));
  size_t off = 0;
  while (off < sizeof(header)) {
    const ssize_t n = faultfs::Write(fd_, header + off, sizeof(header) - off,
                                     segment_path_.c_str());
    if (n < 0) {
      if (errno == EINTR) continue;
      return SetErrno(error, "write header " + path);
    }
    off += static_cast<size_t>(n);
  }
  segment_size_ = static_cast<int64_t>(sizeof(header));
  ++segments_created_;
  segment_starts_.push_back(first_seq);
  return true;
}

bool ChangeLogWriter::Append(const LogBatch& batch, std::string* error) {
  if (fd_ < 0) return SetError(error, "change log is not open");
  if (segment_size_ >= segment_bytes_) {
    if (!OpenSegment(batch.seq, error)) return false;
  }
  const std::string record = EncodeLogRecord(batch);
  size_t off = 0;
  while (off < record.size()) {
    const ssize_t n = faultfs::Write(fd_, record.data() + off,
                                     record.size() - off,
                                     segment_path_.c_str());
    if (n < 0) {
      if (errno == EINTR) continue;
      return SetErrno(error, "write record");
    }
    off += static_cast<size_t>(n);
  }
  segment_size_ += static_cast<int64_t>(record.size());
  ++records_appended_;
  return true;
}

bool ChangeLogWriter::Sync(std::string* error) {
  if (fd_ < 0) return true;
  int rc;
  do {
    rc = faultfs::Fsync(fd_, segment_path_.c_str());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return SetErrno(error, "fsync segment");
  return true;
}

ChangeLogCursor::~ChangeLogCursor() {
  if (fd_ >= 0) close(fd_);
}

bool ChangeLogCursor::Open(const std::string& dir, int64_t start_seq,
                           std::string* error) {
  dir_ = dir;
  next_seq_ = start_seq;
  ChangeLogDirState state;
  if (!ScanChangeLogDir(dir_, &state, error)) return false;
  if (state.segments.empty()) {
    if (start_seq != 0) {
      return SetError(error, "change log " + dir + " is empty but seq " +
                                 std::to_string(start_seq) + " was requested");
    }
    return true;  // Tail an as-yet-unstarted log.
  }
  if (state.segments.front().first_seq > start_seq) {
    return SetError(error,
                    "change log " + dir + " starts at seq " +
                        std::to_string(state.segments.front().first_seq) +
                        ", cannot serve seq " + std::to_string(start_seq));
  }
  bool found = false;
  if (!OpenSegmentFor(start_seq, &found, error)) return false;
  // !found: only embryonic candidates — a writer died creating its first
  // segment for start_seq. Next() keeps polling; this is a live tail.
  return true;
}

bool ChangeLogCursor::OpenSegmentFor(int64_t seq, bool* found,
                                     std::string* error) {
  *found = false;
  ChangeLogDirState state;
  if (!ScanChangeLogDir(dir_, &state, error)) return false;
  // The authoritative segment for `seq` is the lexicographically greatest
  // (epoch, first_seq) among complete segments with first_seq <= seq: a
  // higher epoch owns every sequence from its first record onward, so a
  // fenced writer's same-range segment loses even when it starts later.
  const SegmentInfo* best = nullptr;
  for (const SegmentInfo& info : state.segments) {
    if (!info.header_complete || info.first_seq > seq) continue;
    if (best == nullptr || info.epoch > best->epoch ||
        (info.epoch == best->epoch && info.first_seq > best->first_seq)) {
      best = &info;
    }
  }
  if (best == nullptr) return true;
  if (fd_ >= 0) close(fd_);
  fd_ = open(best->path.c_str(), O_RDONLY);
  if (fd_ < 0) return SetErrno(error, "open " + best->path);
  int64_t epoch = 0;
  size_t header_bytes = 0;
  bool complete = false;
  bool bad_magic = false;
  if (!ReadSegmentHeader(fd_, &epoch, &header_bytes, &complete, &bad_magic)) {
    return SetErrno(error, "read " + best->path);
  }
  if (bad_magic) return SetError(error, "bad segment magic in " + best->path);
  if (!complete) {
    // Shrank between scan and open (impossible for an append-only file,
    // but a hostile dir is not a crash): treat as corruption.
    return SetError(error, "truncated segment header in " + best->path);
  }
  offset_ = static_cast<int64_t>(header_bytes);
  record_seq_ = best->first_seq;
  segment_first_seq_ = best->first_seq;
  segment_epoch_ = epoch;
  // Where the next incarnation takes over: reading the current segment past
  // this sequence would replay a fenced writer's diverged tail.
  supersede_at_ = INT64_MAX;
  for (const SegmentInfo& info : state.segments) {
    if (!info.header_complete || info.epoch <= segment_epoch_) continue;
    supersede_at_ = std::min(supersede_at_, info.first_seq);
  }
  *found = true;
  return true;
}

bool ChangeLogCursor::Next(LogBatch* out, bool* available, std::string* error) {
  *available = false;
  for (;;) {
    if (fd_ < 0) {
      // The log had no segments at Open; look for the writer's first one.
      bool found = false;
      if (!OpenSegmentFor(next_seq_, &found, error)) return false;
      if (!found) return true;  // Still nothing: live tail.
    }
    if (record_seq_ >= supersede_at_) {
      // A higher epoch owns this sequence: jump to its segment instead of
      // replaying the fenced writer's tail.
      bool found = false;
      if (!OpenSegmentFor(record_seq_, &found, error)) return false;
      if (!found) {
        return SetError(error, "segment for seq " +
                                   std::to_string(record_seq_) +
                                   " disappeared during epoch handoff");
      }
      if (segment_first_seq_ < next_seq_) {
        // The new epoch forked below sequences the caller already consumed:
        // that prefix was a fenced writer's diverged tail, so the caller's
        // state cannot be patched forward — it must rebuild.
        return SetError(error,
                        "epoch " + std::to_string(segment_epoch_) +
                            " forked at seq " +
                            std::to_string(segment_first_seq_) +
                            " below already-replayed seq " +
                            std::to_string(next_seq_) +
                            "; replica state diverged, rebuild required");
      }
      continue;
    }
    char header[kRecordHeaderBytes];
    const ssize_t got = PreadFull(fd_, header, kRecordHeaderBytes, offset_);
    if (got < 0) return SetErrno(error, "read record header");
    bool partial = static_cast<size_t>(got) < kRecordHeaderBytes;
    uint32_t payload_len = 0;
    uint32_t crc = 0;
    std::string payload;
    if (!partial) {
      payload_len = ReadU32(header);
      crc = ReadU32(header + 4);
      if (payload_len > kMaxPayloadBytes) {
        return SetError(error, "corrupt record length at seq " +
                                   std::to_string(record_seq_));
      }
      payload.resize(payload_len);
      const ssize_t body = PreadFull(fd_, payload.data(), payload_len,
                                     offset_ + kRecordHeaderBytes);
      if (body < 0) return SetErrno(error, "read record payload");
      partial = static_cast<size_t>(body) < payload_len;
    }
    if (partial) {
      // Either a clean EOF at a record boundary (a rotation may have moved
      // the writer to a successor segment starting at record_seq_), an
      // append in progress, or the torn last write of a writer that has
      // since been superseded by a higher epoch.
      ChangeLogDirState state;
      if (!ScanChangeLogDir(dir_, &state, error)) return false;
      bool rotated_successor = false;  // Same epoch, next segment.
      bool superseded = false;         // Higher epoch claims record_seq_.
      for (const SegmentInfo& info : state.segments) {
        if (!info.header_complete) continue;
        if (info.epoch > segment_epoch_ && info.first_seq <= record_seq_) {
          superseded = true;
        }
        if (info.epoch == segment_epoch_ && info.first_seq == record_seq_ &&
            info.first_seq != segment_first_seq_) {
          rotated_successor = true;
        }
        if (info.epoch > segment_epoch_) {
          supersede_at_ = std::min(supersede_at_, info.first_seq);
        }
      }
      if (superseded) {
        // The torn/missing bytes belong to a fenced writer; the higher
        // epoch owns this sequence now.
        bool found = false;
        if (!OpenSegmentFor(record_seq_, &found, error)) return false;
        if (!found) {
          return SetError(error, "segment for seq " +
                                     std::to_string(record_seq_) +
                                     " disappeared during epoch handoff");
        }
        if (segment_first_seq_ < next_seq_) {
          return SetError(error,
                          "epoch " + std::to_string(segment_epoch_) +
                              " forked at seq " +
                              std::to_string(segment_first_seq_) +
                              " below already-replayed seq " +
                              std::to_string(next_seq_) +
                              "; replica state diverged, rebuild required");
        }
        continue;
      }
      if (rotated_successor) {
        // Complete records never straddle a rotation, so torn bytes inside
        // a rotated-away segment are corruption.
        if (got != 0) {
          return SetError(error, "torn record at seq " +
                                     std::to_string(record_seq_) +
                                     " inside a rotated segment");
        }
        bool found = false;
        if (!OpenSegmentFor(record_seq_, &found, error)) return false;
        if (!found) {
          return SetError(error, "segment for seq " +
                                     std::to_string(record_seq_) +
                                     " disappeared during rescan");
        }
        continue;
      }
      return true;  // Live tail; retry later.
    }
    if (Crc32(payload.data(), payload.size()) != crc) {
      return SetError(error,
                      "record CRC mismatch at seq " +
                          std::to_string(record_seq_) + " in " + dir_);
    }
    LogBatch batch;
    if (!DecodeLogPayload(payload.data(), payload.size(), &batch)) {
      return SetError(error, "malformed record payload at seq " +
                                 std::to_string(record_seq_));
    }
    if (batch.seq != record_seq_) {
      return SetError(error, "sequence gap: expected " +
                                 std::to_string(record_seq_) + ", found " +
                                 std::to_string(batch.seq));
    }
    batch.epoch = segment_epoch_;
    offset_ += static_cast<int64_t>(kRecordHeaderBytes + payload_len);
    ++record_seq_;
    if (batch.seq >= next_seq_) {
      next_seq_ = record_seq_;
      *out = std::move(batch);
      *available = true;
      return true;
    }
    // Record predates the requested start (bootstrap replayed it already).
  }
}

}  // namespace repl
}  // namespace dynmis
