#include "src/repl/change_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/io/snapshot.h"

namespace dynmis {
namespace repl {
namespace {

constexpr char kSegmentMagic[8] = {'D', 'M', 'I', 'S', 'L', 'O', 'G', '1'};
constexpr size_t kMagicBytes = sizeof(kSegmentMagic);
constexpr size_t kRecordHeaderBytes = 8;  // payload_len u32 + crc u32.
// A record holds one admission batch (bounded by batch_max_ops and the line
// length limit); anything near this size is structurally impossible and
// treated as corruption rather than attempted as an allocation.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t value = 0;
  std::memcpy(&value, p, sizeof(value));
  return value;  // Little-endian hosts only (matches src/io/snapshot.cc).
}

uint64_t ReadU64(const char* p) {
  uint64_t value = 0;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool SetErrno(std::string* error, const std::string& what) {
  return SetError(error, what + ": " + std::strerror(errno));
}

// Parses "<prefix><16 hex digits><suffix>" into the embedded sequence
// number; returns -1 when `name` does not match.
int64_t ParseSeqName(const std::string& name, const char* prefix,
                     const char* suffix) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() != prefix_len + 16 + suffix_len) return -1;
  if (name.compare(0, prefix_len, prefix) != 0) return -1;
  if (name.compare(prefix_len + 16, suffix_len, suffix) != 0) return -1;
  int64_t value = 0;
  for (size_t i = prefix_len; i < prefix_len + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return -1;
    }
    value = (value << 4) | digit;
  }
  return value;
}

std::string SeqName(const char* prefix, int64_t seq, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%016llx%s", prefix,
                static_cast<unsigned long long>(seq), suffix);
  return buf;
}

bool SyncDirectory(const std::string& dir, std::string* error) {
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return SetErrno(error, "open dir " + dir);
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0) return SetErrno(error, "fsync dir " + dir);
  return true;
}

// Reads exactly `size` bytes at `offset` unless the file ends first; returns
// the byte count actually read, or -1 on error.
ssize_t PreadFull(int fd, char* buf, size_t size, int64_t offset) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = pread(fd, buf + done, size - done,
                            static_cast<off_t>(offset) + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF (possibly mid-record at a live tail).
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

}  // namespace

std::string EncodeLogRecord(const LogBatch& batch) {
  std::string payload;
  AppendU64(&payload, static_cast<uint64_t>(batch.seq));
  AppendU32(&payload, static_cast<uint32_t>(batch.updates.size()));
  for (const GraphUpdate& update : batch.updates) {
    payload.push_back(static_cast<char>(update.kind));
    AppendU32(&payload, static_cast<uint32_t>(update.u));
    AppendU32(&payload, static_cast<uint32_t>(update.v));
    AppendU32(&payload, static_cast<uint32_t>(update.neighbors.size()));
    for (const VertexId neighbor : update.neighbors) {
      AppendU32(&payload, static_cast<uint32_t>(neighbor));
    }
  }
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU32(&record, Crc32(payload.data(), payload.size()));
  record.append(payload);
  return record;
}

bool DecodeLogPayload(const char* data, size_t size, LogBatch* out) {
  size_t pos = 0;
  const auto remaining = [&] { return size - pos; };
  if (remaining() < 12) return false;
  out->seq = static_cast<int64_t>(ReadU64(data + pos));
  pos += 8;
  const uint32_t num_ops = ReadU32(data + pos);
  pos += 4;
  out->updates.clear();
  out->updates.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    if (remaining() < 13) return false;
    GraphUpdate update;
    const uint8_t kind = static_cast<uint8_t>(data[pos]);
    if (kind > static_cast<uint8_t>(UpdateKind::kDeleteVertex)) return false;
    update.kind = static_cast<UpdateKind>(kind);
    pos += 1;
    update.u = static_cast<VertexId>(ReadU32(data + pos));
    pos += 4;
    update.v = static_cast<VertexId>(ReadU32(data + pos));
    pos += 4;
    const uint32_t num_neighbors = ReadU32(data + pos);
    pos += 4;
    if (remaining() < static_cast<size_t>(num_neighbors) * 4) return false;
    update.neighbors.reserve(num_neighbors);
    for (uint32_t j = 0; j < num_neighbors; ++j) {
      update.neighbors.push_back(static_cast<VertexId>(ReadU32(data + pos)));
      pos += 4;
    }
    out->updates.push_back(std::move(update));
  }
  return pos == size;
}

std::string SegmentFileName(int64_t first_seq) {
  return SeqName("seg-", first_seq, ".log");
}

std::string BaseSnapshotFileName(int64_t seq) {
  return SeqName("base-", seq, ".snap");
}

bool ScanChangeLogDir(const std::string& dir, ChangeLogDirState* out,
                      std::string* error) {
  out->segments.clear();
  out->latest_base_seq = -1;
  out->latest_base_path.clear();
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return SetErrno(error, "opendir " + dir);
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    int64_t seq = ParseSeqName(name, "seg-", ".log");
    if (seq >= 0) {
      out->segments.emplace_back(seq, dir + "/" + name);
      continue;
    }
    seq = ParseSeqName(name, "base-", ".snap");
    if (seq >= 0 && seq > out->latest_base_seq) {
      out->latest_base_seq = seq;
      out->latest_base_path = dir + "/" + name;
    }
  }
  closedir(handle);
  std::sort(out->segments.begin(), out->segments.end());
  return true;
}

bool WriteBaseSnapshot(const std::string& dir, int64_t seq,
                       const std::string& bytes, std::string* error) {
  const std::string final_path = dir + "/" + BaseSnapshotFileName(seq);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return SetErrno(error, "open " + tmp_path);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetErrno(error, "write " + tmp_path);
      close(fd);
      unlink(tmp_path.c_str());
      return false;
    }
    off += static_cast<size_t>(n);
  }
  if (fsync(fd) != 0) {
    SetErrno(error, "fsync " + tmp_path);
    close(fd);
    unlink(tmp_path.c_str());
    return false;
  }
  close(fd);
  if (rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    SetErrno(error, "rename " + tmp_path);
    unlink(tmp_path.c_str());
    return false;
  }
  return SyncDirectory(dir, error);
}

ChangeLogWriter::~ChangeLogWriter() {
  if (fd_ >= 0) close(fd_);
}

bool ChangeLogWriter::Open(const std::string& dir, int64_t segment_bytes,
                           int64_t next_seq, std::string* error) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return SetErrno(error, "mkdir " + dir);
  }
  dir_ = dir;
  segment_bytes_ = segment_bytes > 0 ? segment_bytes : (4 << 20);
  return OpenSegment(next_seq, error);
}

bool ChangeLogWriter::OpenSegment(int64_t first_seq, std::string* error) {
  if (fd_ >= 0) {
    // Rotation durability point: the finished segment is synced before the
    // cursor-visible successor appears.
    if (fsync(fd_) != 0) return SetErrno(error, "fsync segment");
    close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentFileName(first_seq);
  // O_TRUNC: a name collision means the existing segment holds no complete
  // record below `first_seq` (the caller derived first_seq from scanning the
  // log), so rewriting it is the correct recovery.
  fd_ = open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) return SetErrno(error, "open " + path);
  size_t off = 0;
  while (off < kMagicBytes) {
    const ssize_t n = write(fd_, kSegmentMagic + off, kMagicBytes - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SetErrno(error, "write magic " + path);
    }
    off += static_cast<size_t>(n);
  }
  segment_size_ = static_cast<int64_t>(kMagicBytes);
  ++segments_created_;
  segment_starts_.push_back(first_seq);
  return true;
}

bool ChangeLogWriter::Append(const LogBatch& batch, std::string* error) {
  if (fd_ < 0) return SetError(error, "change log is not open");
  if (segment_size_ >= segment_bytes_) {
    if (!OpenSegment(batch.seq, error)) return false;
  }
  const std::string record = EncodeLogRecord(batch);
  size_t off = 0;
  while (off < record.size()) {
    const ssize_t n = write(fd_, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SetErrno(error, "write record");
    }
    off += static_cast<size_t>(n);
  }
  segment_size_ += static_cast<int64_t>(record.size());
  ++records_appended_;
  return true;
}

bool ChangeLogWriter::Sync(std::string* error) {
  if (fd_ < 0) return true;
  if (fsync(fd_) != 0) return SetErrno(error, "fsync segment");
  return true;
}

ChangeLogCursor::~ChangeLogCursor() {
  if (fd_ >= 0) close(fd_);
}

bool ChangeLogCursor::Open(const std::string& dir, int64_t start_seq,
                           std::string* error) {
  dir_ = dir;
  next_seq_ = start_seq;
  ChangeLogDirState state;
  if (!ScanChangeLogDir(dir_, &state, error)) return false;
  if (state.segments.empty()) {
    if (start_seq != 0) {
      return SetError(error, "change log " + dir + " is empty but seq " +
                                 std::to_string(start_seq) + " was requested");
    }
    return true;  // Tail an as-yet-unstarted log.
  }
  if (state.segments.front().first > start_seq) {
    return SetError(error,
                    "change log " + dir + " starts at seq " +
                        std::to_string(state.segments.front().first) +
                        ", cannot serve seq " + std::to_string(start_seq));
  }
  bool found = false;
  if (!OpenSegmentFor(start_seq, &found, error)) return false;
  if (!found) {
    return SetError(error, "change log " + dir + " has no segment for seq " +
                               std::to_string(start_seq));
  }
  return true;
}

bool ChangeLogCursor::OpenSegmentFor(int64_t seq, bool* found,
                                     std::string* error) {
  *found = false;
  ChangeLogDirState state;
  if (!ScanChangeLogDir(dir_, &state, error)) return false;
  // The containing segment is the one with the greatest first_seq <= seq.
  int64_t best_seq = -1;
  const std::string* best_path = nullptr;
  for (const auto& [first_seq, path] : state.segments) {
    if (first_seq <= seq) {
      best_seq = first_seq;
      best_path = &path;
    }
  }
  if (best_path == nullptr) return true;
  if (fd_ >= 0) close(fd_);
  fd_ = open(best_path->c_str(), O_RDONLY);
  if (fd_ < 0) return SetErrno(error, "open " + *best_path);
  char magic[kMagicBytes];
  const ssize_t n = PreadFull(fd_, magic, kMagicBytes, 0);
  if (n < 0) return SetErrno(error, "read " + *best_path);
  if (static_cast<size_t>(n) != kMagicBytes ||
      std::memcmp(magic, kSegmentMagic, kMagicBytes) != 0) {
    return SetError(error, "bad segment magic in " + *best_path);
  }
  offset_ = static_cast<int64_t>(kMagicBytes);
  record_seq_ = best_seq;
  segment_first_seq_ = best_seq;
  *found = true;
  return true;
}

bool ChangeLogCursor::Next(LogBatch* out, bool* available, std::string* error) {
  *available = false;
  for (;;) {
    if (fd_ < 0) {
      // The log had no segments at Open; look for the writer's first one.
      bool found = false;
      if (!OpenSegmentFor(next_seq_, &found, error)) return false;
      if (!found) return true;  // Still nothing: live tail.
    }
    char header[kRecordHeaderBytes];
    const ssize_t got = PreadFull(fd_, header, kRecordHeaderBytes, offset_);
    if (got < 0) return SetErrno(error, "read record header");
    bool partial = static_cast<size_t>(got) < kRecordHeaderBytes;
    uint32_t payload_len = 0;
    uint32_t crc = 0;
    std::string payload;
    if (!partial) {
      payload_len = ReadU32(header);
      crc = ReadU32(header + 4);
      if (payload_len > kMaxPayloadBytes) {
        return SetError(error, "corrupt record length at seq " +
                                   std::to_string(record_seq_));
      }
      payload.resize(payload_len);
      const ssize_t body = PreadFull(fd_, payload.data(), payload_len,
                                     offset_ + kRecordHeaderBytes);
      if (body < 0) return SetErrno(error, "read record payload");
      partial = static_cast<size_t>(body) < payload_len;
    }
    if (partial) {
      // Either a clean EOF at a record boundary (a rotation may have moved
      // the writer to a successor segment starting at record_seq_) or an
      // append in progress. Complete records never straddle a rotation, so
      // torn bytes inside a rotated-away segment are corruption.
      ChangeLogDirState state;
      if (!ScanChangeLogDir(dir_, &state, error)) return false;
      bool has_successor = false;
      for (const auto& [first_seq, path] : state.segments) {
        if (first_seq == record_seq_) has_successor = true;
      }
      if (has_successor) {
        if (got != 0) {
          return SetError(error, "torn record at seq " +
                                     std::to_string(record_seq_) +
                                     " inside a rotated segment");
        }
        bool found = false;
        if (!OpenSegmentFor(record_seq_, &found, error)) return false;
        if (!found) {
          return SetError(error, "segment for seq " +
                                     std::to_string(record_seq_) +
                                     " disappeared during rescan");
        }
        continue;
      }
      return true;  // Live tail; retry later.
    }
    if (Crc32(payload.data(), payload.size()) != crc) {
      return SetError(error,
                      "record CRC mismatch at seq " +
                          std::to_string(record_seq_) + " in " + dir_);
    }
    LogBatch batch;
    if (!DecodeLogPayload(payload.data(), payload.size(), &batch)) {
      return SetError(error, "malformed record payload at seq " +
                                 std::to_string(record_seq_));
    }
    if (batch.seq != record_seq_) {
      return SetError(error, "sequence gap: expected " +
                                 std::to_string(record_seq_) + ", found " +
                                 std::to_string(batch.seq));
    }
    offset_ += static_cast<int64_t>(kRecordHeaderBytes + payload_len);
    ++record_seq_;
    if (batch.seq >= next_seq_) {
      next_seq_ = record_seq_;
      *out = std::move(batch);
      *available = true;
      return true;
    }
    // Record predates the requested start (bootstrap replayed it already).
  }
}

}  // namespace repl
}  // namespace dynmis
