// Background base-snapshot writer: copy-on-collect checkpointing for the
// serving event loop. The loop thread serializes the backend to an
// in-memory buffer at a batch boundary (the only part that must happen on
// the loop thread, and the only part whose cost the event loop pays), then
// hands the bytes here; a dedicated thread does the slow part — write a
// temp file, fsync, rename into the change-log directory, fsync the
// directory — without stalling admission or queries.
//
// At most one snapshot is in flight: Submit() refuses while busy, and the
// loop simply tries again at a later batch boundary. Counters are atomics
// because the loop thread reads them for STATS while the worker writes.

#ifndef DYNMIS_SRC_REPL_SNAPSHOTTER_H_
#define DYNMIS_SRC_REPL_SNAPSHOTTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace dynmis {
namespace repl {

class Snapshotter {
 public:
  explicit Snapshotter(std::string dir);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  // Queues `bytes` to be published as base-<seq>.snap, stamped with the
  // submitting incarnation's fencing epoch. Returns false (and drops
  // nothing — the caller keeps ownership semantics trivial by just
  // retrying later) when a snapshot is already in flight.
  bool Submit(int64_t seq, int64_t epoch, std::string bytes);

  // True while a snapshot is queued or being written.
  bool busy() const { return busy_.load(std::memory_order_acquire); }

  // Blocks until any in-flight snapshot has been published (drain path).
  void WaitIdle();

  int64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }
  int64_t snapshots_failed() const {
    return snapshots_failed_.load(std::memory_order_relaxed);
  }
  // Seq of the newest successfully published base snapshot; -1 when none.
  int64_t last_base_seq() const {
    return last_base_seq_.load(std::memory_order_relaxed);
  }

 private:
  void Worker();

  const std::string dir_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool pending_ = false;
  int64_t pending_seq_ = 0;
  int64_t pending_epoch_ = 0;
  std::string pending_bytes_;
  std::atomic<bool> busy_{false};
  std::atomic<int64_t> snapshots_written_{0};
  std::atomic<int64_t> snapshots_failed_{0};
  std::atomic<int64_t> last_base_seq_{-1};
  std::thread thread_;
};

}  // namespace repl
}  // namespace dynmis

#endif  // DYNMIS_SRC_REPL_SNAPSHOTTER_H_
