#include "src/repl/bootstrap.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "src/repl/change_log.h"

namespace dynmis {
namespace repl {

bool BootstrapFromChangeLog(const std::string& dir, const EdgeListGraph& base,
                            const serve::ServeOptions& options,
                            BootstrapResult* out, std::string* error) {
  ChangeLogDirState state;
  if (!ScanChangeLogDir(dir, &state, error)) return false;
  out->epoch = std::max(state.max_epoch, ReadEpochFile(dir));

  out->base_seq = -1;
  if (state.latest_base_seq >= 0) {
    std::ifstream in;
    int64_t base_epoch = 0;
    if (!OpenBaseSnapshot(state.latest_base_path, &in, &base_epoch, error)) {
      return false;
    }
    out->backend = serve::RestoreServingBackend(in, error, &out->keymap);
    if (out->backend == nullptr) return false;
    out->base_seq = state.latest_base_seq;
    out->epoch = std::max(out->epoch, base_epoch);
  } else {
    serve::ServeOptions fresh = options;
    fresh.restore_path.clear();
    out->backend = serve::MakeServingBackend(base, fresh, error);
    if (out->backend == nullptr) return false;
  }

  out->next_seq = out->base_seq >= 0 ? out->base_seq : 0;
  out->tail_batches = 0;
  out->tail_ops = 0;
  if (state.segments.empty()) return true;

  ChangeLogCursor cursor;
  if (!cursor.Open(dir, out->next_seq, error)) return false;
  for (;;) {
    LogBatch batch;
    bool available = false;
    if (!cursor.Next(&batch, &available, error)) return false;
    if (!available) break;  // Reached the live tail: caught up on disk.
    const UpdateResult result = out->backend->ApplyBatch(batch.updates);
    // Replay the batch's key bindings too: the log records carry each keyed
    // op's key (and the delete's primary-resolved id), so the map lands at
    // exactly the primary's state for this seq.
    size_t insv = 0;
    for (const GraphUpdate& update : batch.updates) {
      if (update.kind == UpdateKind::kInsertVertex) {
        if (insv >= result.new_vertices.size()) {
          *error = "bootstrap: replayed batch lost a vertex-insert id";
          return false;
        }
        const VertexId id = result.new_vertices[insv++];
        if (!update.key.empty()) out->keymap.Bind(update.key, id);
      } else if (update.kind == UpdateKind::kDeleteVertex) {
        if (!update.key.empty()) {
          out->keymap.Release(update.key);
        } else {
          out->keymap.ReleaseId(update.u);
        }
      }
    }
    out->epoch = std::max(out->epoch, batch.epoch);
    ++out->tail_batches;
    out->tail_ops += static_cast<int64_t>(batch.updates.size());
  }
  out->next_seq = cursor.next_seq();
  return true;
}

}  // namespace repl
}  // namespace dynmis
