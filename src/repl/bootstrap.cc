#include "src/repl/bootstrap.h"

#include <fstream>
#include <utility>

#include "src/repl/change_log.h"

namespace dynmis {
namespace repl {

bool BootstrapFromChangeLog(const std::string& dir, const EdgeListGraph& base,
                            const serve::ServeOptions& options,
                            BootstrapResult* out, std::string* error) {
  ChangeLogDirState state;
  if (!ScanChangeLogDir(dir, &state, error)) return false;

  out->base_seq = -1;
  if (state.latest_base_seq >= 0) {
    std::ifstream in(state.latest_base_path, std::ios::binary);
    if (!in) {
      *error = "cannot open base snapshot " + state.latest_base_path;
      return false;
    }
    out->backend = serve::RestoreServingBackend(in, error);
    if (out->backend == nullptr) return false;
    out->base_seq = state.latest_base_seq;
  } else {
    serve::ServeOptions fresh = options;
    fresh.restore_path.clear();
    out->backend = serve::MakeServingBackend(base, fresh, error);
    if (out->backend == nullptr) return false;
  }

  out->next_seq = out->base_seq >= 0 ? out->base_seq : 0;
  out->tail_batches = 0;
  out->tail_ops = 0;
  if (state.segments.empty()) return true;

  ChangeLogCursor cursor;
  if (!cursor.Open(dir, out->next_seq, error)) return false;
  for (;;) {
    LogBatch batch;
    bool available = false;
    if (!cursor.Next(&batch, &available, error)) return false;
    if (!available) break;  // Reached the live tail: caught up on disk.
    out->backend->ApplyBatch(batch.updates);
    ++out->tail_batches;
    out->tail_ops += static_cast<int64_t>(batch.updates.size());
  }
  out->next_seq = cursor.next_seq();
  return true;
}

}  // namespace repl
}  // namespace dynmis
