// Follower bootstrap: turn a change-log directory into a live backend.
//
// A checkpoint is "latest base snapshot + record tail": restore the newest
// base-<seq>.snap (or build a fresh backend from the configured base graph
// when none exists yet), then replay every complete change-log record from
// that seq forward, batch-faithfully — each record is one ApplyBatch with
// the primary's exact batch boundary, which the deterministic-replay
// guarantee turns into byte-identical solutions. The returned next_seq is
// where live tailing (REPL SUBSCRIBE or directory tailing) picks up.

#ifndef DYNMIS_SRC_REPL_BOOTSTRAP_H_
#define DYNMIS_SRC_REPL_BOOTSTRAP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "dynmis/serve.h"
#include "src/graph/edge_list.h"
#include "src/ingest/key_map.h"

namespace dynmis {
namespace repl {

struct BootstrapResult {
  std::unique_ptr<serve::ServingBackend> backend;
  // External-key bindings at next_seq: the base snapshot's "keymap" section
  // plus every keyed op in the replayed tail. Hand to Server::AdoptKeyMap
  // so the follower resolves KQUERY exactly as the primary did.
  ingest::KeyMap keymap;
  int64_t next_seq = 0;        // First seq the follower still needs.
  int64_t base_seq = -1;       // Base snapshot restored (-1: fresh start).
  int64_t tail_batches = 0;    // Records replayed after the base.
  int64_t tail_ops = 0;        // Updates inside those records.
  // Highest fencing epoch observed anywhere in the directory (epoch file,
  // base-snapshot prologue, segment headers). A restarting primary must
  // claim an epoch strictly above this before serving writes.
  int64_t epoch = 0;
};

// Restores the newest checkpoint under `dir`. `base` and `options` describe
// the fallback fresh backend used when the directory holds no base snapshot
// (the primary must have been started from the same base graph). Returns
// false with *error set on a missing/corrupt directory or a replay failure.
bool BootstrapFromChangeLog(const std::string& dir, const EdgeListGraph& base,
                            const serve::ServeOptions& options,
                            BootstrapResult* out, std::string* error);

}  // namespace repl
}  // namespace dynmis

#endif  // DYNMIS_SRC_REPL_BOOTSTRAP_H_
