// Segmented change-log: the durable update stream behind replication.
//
// A primary appends every applied ApplyBatch — with its batch boundary,
// since the final solution is a function of the batch partition — as one
// length-prefixed CRC-checked record to an append-only segment file,
// rotating to a new segment once the current one passes a size threshold.
// Periodic base snapshots (full engine snapshots written next to the
// segments) bound replay cost: a checkpoint is the latest base plus the
// record tail after it, so recovery work scales with the change rate, not
// the history length.
//
// Directory layout (one directory per log):
//
//   seg-<%016llx first_seq>.log    segments, named by their first record seq
//   base-<%016llx seq>.snap       base snapshots; seq = batches they contain
//
// Segment format (all integers little-endian, fixed width):
//
//   magic     8 bytes  "DMISLOG1"
//   records   repeated { payload_len u32, crc32(payload) u32, payload }
//
// Record payload:
//
//   seq        u64     batch sequence number (0-based, contiguous)
//   num_ops    u32
//   per op: kind u8, u i32, v i32, num_neighbors u32, neighbors i32[]
//
// Writers use plain write(2) so records become visible to same-host readers
// immediately (page cache), and fsync only on Sync() — the drain path and
// segment rotation sync, steady-state appends do not. Readers (tailing
// cursors) tolerate a partial record at the tail of the *last* segment —
// that is an append in progress, not corruption — but treat a CRC mismatch
// on a complete record, a sequence gap, or a torn record followed by a
// newer segment as corruption.

#ifndef DYNMIS_SRC_REPL_CHANGE_LOG_H_
#define DYNMIS_SRC_REPL_CHANGE_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/update_stream.h"

namespace dynmis {
namespace repl {

// One logged ApplyBatch: its sequence number and the updates it applied, in
// admission order.
struct LogBatch {
  int64_t seq = 0;
  std::vector<GraphUpdate> updates;
};

// Full on-disk record bytes (header + payload) for `batch`.
std::string EncodeLogRecord(const LogBatch& batch);

// Decodes a record payload (the bytes after the 8-byte record header).
// Returns false on a malformed payload.
bool DecodeLogPayload(const char* data, size_t size, LogBatch* out);

// File names within a change-log directory.
std::string SegmentFileName(int64_t first_seq);
std::string BaseSnapshotFileName(int64_t seq);

// A snapshot of the change-log directory: segments in ascending first-seq
// order plus the newest base snapshot (if any).
struct ChangeLogDirState {
  // (first_seq, absolute path), sorted ascending by first_seq.
  std::vector<std::pair<int64_t, std::string>> segments;
  int64_t latest_base_seq = -1;  // -1 when no base snapshot exists.
  std::string latest_base_path;
};

// Lists segments and base snapshots under `dir`. A missing directory is an
// error; an empty one yields an empty state.
bool ScanChangeLogDir(const std::string& dir, ChangeLogDirState* out,
                      std::string* error);

// Durably publishes a base snapshot covering batches [0, seq): writes
// base-<seq>.snap.tmp, fsyncs, renames into place, fsyncs the directory.
bool WriteBaseSnapshot(const std::string& dir, int64_t seq,
                       const std::string& bytes, std::string* error);

// Appends records to size-rotated segments. Single-threaded (the serving
// event loop is the sole producer).
class ChangeLogWriter {
 public:
  ChangeLogWriter() = default;
  ~ChangeLogWriter();

  ChangeLogWriter(const ChangeLogWriter&) = delete;
  ChangeLogWriter& operator=(const ChangeLogWriter&) = delete;

  // Opens (creating `dir` if needed) a fresh segment whose first record will
  // be `next_seq`. Existing segments with earlier records are left in place.
  bool Open(const std::string& dir, int64_t segment_bytes, int64_t next_seq,
            std::string* error);

  // Appends one record; rotates to a new segment first when the current one
  // has reached the size threshold (rotation fsyncs the finished segment).
  bool Append(const LogBatch& batch, std::string* error);

  // fsyncs the current segment (drain path / durability points).
  bool Sync(std::string* error);

  bool is_open() const { return fd_ >= 0; }
  const std::string& dir() const { return dir_; }
  int64_t segments_created() const { return segments_created_; }
  int64_t records_appended() const { return records_appended_; }
  // First seqs of the segments this writer opened, in order (replication
  // lag in segments is counted against this).
  const std::vector<int64_t>& segment_starts() const {
    return segment_starts_;
  }

 private:
  bool OpenSegment(int64_t first_seq, std::string* error);

  std::string dir_;
  int64_t segment_bytes_ = 4 << 20;
  int fd_ = -1;
  int64_t segment_size_ = 0;
  int64_t segments_created_ = 0;
  int64_t records_appended_ = 0;
  std::vector<int64_t> segment_starts_;
};

// Sequential reader over a change-log directory, starting at a given
// sequence number and able to tail a live log: Next() distinguishes "no
// complete record available yet" from corruption, and rescans the directory
// for newly rotated segments as earlier ones are exhausted.
class ChangeLogCursor {
 public:
  ChangeLogCursor() = default;
  ~ChangeLogCursor();

  ChangeLogCursor(const ChangeLogCursor&) = delete;
  ChangeLogCursor& operator=(const ChangeLogCursor&) = delete;

  // Positions the cursor so the next record returned has seq == start_seq.
  // Fails when existing segments start after `start_seq` (the tail between
  // the caller's state and the log has been lost). An empty directory is
  // valid only when start_seq is 0 (the writer has not started yet).
  bool Open(const std::string& dir, int64_t start_seq, std::string* error);

  // Reads the next record. Returns false on corruption (with *error set).
  // On success *available says whether *out was filled; when false the
  // cursor reached the live tail and the caller should retry later.
  bool Next(LogBatch* out, bool* available, std::string* error);

  // Sequence number the next successful Next() will return.
  int64_t next_seq() const { return next_seq_; }

  // First seq of the currently open segment (-1 before any segment opens).
  int64_t segment_first_seq() const { return segment_first_seq_; }

 private:
  // Opens the segment expected to contain next_seq_; *found=false when it
  // does not exist yet.
  bool OpenSegmentFor(int64_t seq, bool* found, std::string* error);

  std::string dir_;
  int fd_ = -1;
  int64_t offset_ = 0;      // Byte offset of the next unread record.
  int64_t record_seq_ = 0;  // Seq expected at offset_ (contiguity check).
  int64_t next_seq_ = 0;    // First seq the caller still wants.
  int64_t segment_first_seq_ = -1;  // First seq of the open segment.
};

}  // namespace repl
}  // namespace dynmis

#endif  // DYNMIS_SRC_REPL_CHANGE_LOG_H_
