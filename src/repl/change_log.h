// Segmented change-log: the durable update stream behind replication.
//
// A primary appends every applied ApplyBatch — with its batch boundary,
// since the final solution is a function of the batch partition — as one
// length-prefixed CRC-checked record to an append-only segment file,
// rotating to a new segment once the current one passes a size threshold.
// Periodic base snapshots (full engine snapshots written next to the
// segments) bound replay cost: a checkpoint is the latest base plus the
// record tail after it, so recovery work scales with the change rate, not
// the history length.
//
// Every writer incarnation owns a fencing *epoch*: a monotonically
// increasing integer stamped into each segment header, each base-snapshot
// prologue, and the durable `epoch` file in the log directory. Promotion
// (and primary restart) bumps the epoch before serving writes, so a
// partitioned old primary can be recognized — and its unreplicated tail
// discarded — purely from the directory: where two segments both claim a
// sequence number, the higher epoch wins from its first record onward.
//
// Directory layout (one directory per log):
//
//   seg-<%016llx first_seq>.log   segments, named by their first record seq
//   base-<%016llx seq>.snap       base snapshots; seq = batches they contain
//   epoch                         8-byte LE epoch of the newest incarnation
//   *.tmp                         in-flight atomic publishes; stale ones are
//                                 ignored by scans and cleaned by the writer
//
// Segment format (all integers little-endian, fixed width):
//
//   magic     8 bytes  "DMISLOG2" ("DMISLOG1" = legacy, epoch 0, no field)
//   epoch     u64      fencing epoch of the writer incarnation
//   records   repeated { payload_len u32, crc32(payload) u32, payload }
//
// Record payload:
//
//   seq        u64     batch sequence number (0-based, contiguous)
//   num_ops    u32
//   per op: kind u8, u i32, v i32, num_neighbors u32, neighbors i32[]
//
// Base snapshot format: prologue "DMISBAS1" + epoch u64, then the engine
// snapshot container (files without the prologue are legacy, epoch 0).
//
// Writers use plain write(2) so records become visible to same-host readers
// immediately (page cache), and fsync only on Sync() — the drain path and
// segment rotation sync, steady-state appends do not. Readers (tailing
// cursors) tolerate a partial record at the tail of the *last* segment —
// that is an append in progress, not corruption — but treat a CRC mismatch
// on a complete record, a sequence gap, or a torn record followed by a
// same-epoch successor segment as corruption. A torn or diverging tail
// followed by a *higher-epoch* segment claiming the same sequence is the
// fencing case: the dead writer's unreplicated bytes are skipped and the
// cursor continues in the higher epoch.

#ifndef DYNMIS_SRC_REPL_CHANGE_LOG_H_
#define DYNMIS_SRC_REPL_CHANGE_LOG_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/graph/update_stream.h"

namespace dynmis {
namespace repl {

// One logged ApplyBatch: its sequence number, the fencing epoch of the
// segment it was read from, and the updates it applied, in admission order.
struct LogBatch {
  int64_t seq = 0;
  int64_t epoch = 0;
  std::vector<GraphUpdate> updates;
};

// Full on-disk record bytes (header + payload) for `batch`.
std::string EncodeLogRecord(const LogBatch& batch);

// Decodes a record payload (the bytes after the 8-byte record header).
// Returns false on a malformed payload.
bool DecodeLogPayload(const char* data, size_t size, LogBatch* out);

// File names within a change-log directory.
std::string SegmentFileName(int64_t first_seq);
std::string BaseSnapshotFileName(int64_t seq);

// One scanned segment. `header_complete` is false for an embryonic segment
// (created but its header never fully written — a crash inside segment
// creation); such a file provably holds no records and is skipped by
// cursors and rewritten by the next writer.
struct SegmentInfo {
  int64_t first_seq = 0;
  int64_t epoch = 0;
  bool header_complete = false;
  std::string path;
};

// A snapshot of the change-log directory: segments in ascending first-seq
// order plus the newest base snapshot (if any).
struct ChangeLogDirState {
  std::vector<SegmentInfo> segments;
  int64_t latest_base_seq = -1;  // -1 when no base snapshot exists.
  std::string latest_base_path;
  int64_t max_epoch = 0;  // Highest epoch across segment headers.
};

// Lists segments (reading each header for its epoch) and base snapshots
// under `dir`. A missing directory is an error; an empty one yields an
// empty state.
bool ScanChangeLogDir(const std::string& dir, ChangeLogDirState* out,
                      std::string* error);

// Durably publishes a base snapshot covering batches [0, seq): writes
// base-<seq>.snap.tmp with an epoch prologue, fsyncs, renames into place,
// fsyncs the directory.
bool WriteBaseSnapshot(const std::string& dir, int64_t seq, int64_t epoch,
                       const std::string& bytes, std::string* error);

// Opens a base snapshot, consumes its epoch prologue (legacy files without
// one read as epoch 0), and leaves `in` positioned at the engine snapshot
// container.
bool OpenBaseSnapshot(const std::string& path, std::ifstream* in,
                      int64_t* epoch, std::string* error);

// The durable fencing epoch of `dir`. A missing or unreadable epoch file
// reads as 0 (pre-fencing logs). `ReadEpochValue` takes the full file path
// and performs no allocation — the serving loop polls it per applied batch.
int64_t ReadEpochValue(const char* epoch_path);
int64_t ReadEpochFile(const std::string& dir);

// Durably records `epoch` as the newest incarnation of `dir` (atomic
// tmp+rename+dir-fsync). Promotion must not serve writes until this
// succeeds.
bool WriteEpochFile(const std::string& dir, int64_t epoch, std::string* error);

// Removes stale `*.tmp` files (crashed atomic publishes) under `dir`.
// Returns the number removed. Only the directory's writer may call this.
int CleanStaleTmpFiles(const std::string& dir);

// Appends records to size-rotated segments. Single-threaded (the serving
// event loop is the sole producer).
class ChangeLogWriter {
 public:
  ChangeLogWriter() = default;
  ~ChangeLogWriter();

  ChangeLogWriter(const ChangeLogWriter&) = delete;
  ChangeLogWriter& operator=(const ChangeLogWriter&) = delete;

  // Opens (creating `dir` if needed) a fresh segment whose first record will
  // be `next_seq`, stamped with fencing epoch `epoch`. Existing segments
  // with earlier records are left in place; stale `.tmp` files are cleaned.
  bool Open(const std::string& dir, int64_t segment_bytes, int64_t next_seq,
            int64_t epoch, std::string* error);

  // Appends one record; rotates to a new segment first when the current one
  // has reached the size threshold (rotation fsyncs the finished segment).
  bool Append(const LogBatch& batch, std::string* error);

  // fsyncs the current segment (drain path / durability points).
  bool Sync(std::string* error);

  bool is_open() const { return fd_ >= 0; }
  const std::string& dir() const { return dir_; }
  int64_t epoch() const { return epoch_; }
  int64_t segments_created() const { return segments_created_; }
  int64_t records_appended() const { return records_appended_; }
  // First seqs of the segments this writer opened, in order (replication
  // lag in segments is counted against this).
  const std::vector<int64_t>& segment_starts() const {
    return segment_starts_;
  }

 private:
  bool OpenSegment(int64_t first_seq, std::string* error);

  std::string dir_;
  int64_t segment_bytes_ = 4 << 20;
  int64_t epoch_ = 0;
  int fd_ = -1;
  std::string segment_path_;  // Current segment (faultfs tag + errors).
  int64_t segment_size_ = 0;
  int64_t segments_created_ = 0;
  int64_t records_appended_ = 0;
  std::vector<int64_t> segment_starts_;
};

// Sequential reader over a change-log directory, starting at a given
// sequence number and able to tail a live log: Next() distinguishes "no
// complete record available yet" from corruption, rescans the directory
// for newly rotated segments as earlier ones are exhausted, and switches
// to a higher-epoch segment the moment one claims the next sequence
// number (discarding a fenced writer's unreplicated tail).
class ChangeLogCursor {
 public:
  ChangeLogCursor() = default;
  ~ChangeLogCursor();

  ChangeLogCursor(const ChangeLogCursor&) = delete;
  ChangeLogCursor& operator=(const ChangeLogCursor&) = delete;

  // Positions the cursor so the next record returned has seq == start_seq.
  // Fails when existing segments start after `start_seq` (the tail between
  // the caller's state and the log has been lost). An empty directory is
  // valid only when start_seq is 0 (the writer has not started yet).
  bool Open(const std::string& dir, int64_t start_seq, std::string* error);

  // Reads the next record. Returns false on corruption (with *error set).
  // On success *available says whether *out was filled; when false the
  // cursor reached the live tail and the caller should retry later.
  bool Next(LogBatch* out, bool* available, std::string* error);

  // Sequence number the next successful Next() will return.
  int64_t next_seq() const { return next_seq_; }

  // First seq of the currently open segment (-1 before any segment opens).
  int64_t segment_first_seq() const { return segment_first_seq_; }

  // Epoch of the currently open segment (0 before any segment opens).
  int64_t segment_epoch() const { return segment_epoch_; }

 private:
  // Opens the authoritative segment for `seq` — among segments whose first
  // seq is <= seq, the lexicographically greatest (epoch, first_seq) —
  // and records where the next higher epoch takes over. *found=false when
  // no such segment exists yet.
  bool OpenSegmentFor(int64_t seq, bool* found, std::string* error);

  std::string dir_;
  int fd_ = -1;
  int64_t offset_ = 0;      // Byte offset of the next unread record.
  int64_t record_seq_ = 0;  // Seq expected at offset_ (contiguity check).
  int64_t next_seq_ = 0;    // First seq the caller still wants.
  int64_t segment_first_seq_ = -1;  // First seq of the open segment.
  int64_t segment_epoch_ = 0;       // Epoch of the open segment.
  // First seq of the nearest higher-epoch segment: the cursor must leave
  // the current segment before reading that seq from it.
  int64_t supersede_at_ = INT64_MAX;
};

}  // namespace repl
}  // namespace dynmis

#endif  // DYNMIS_SRC_REPL_CHANGE_LOG_H_
