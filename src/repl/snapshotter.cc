#include "src/repl/snapshotter.h"

#include <cstdio>
#include <utility>

#include "src/repl/change_log.h"

namespace dynmis {
namespace repl {

Snapshotter::Snapshotter(std::string dir) : dir_(std::move(dir)) {
  thread_ = std::thread([this] { Worker(); });
}

Snapshotter::~Snapshotter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Snapshotter::Submit(int64_t seq, int64_t epoch, std::string bytes) {
  if (busy_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_ || stop_) return false;
    pending_ = true;
    pending_seq_ = seq;
    pending_epoch_ = epoch;
    pending_bytes_ = std::move(bytes);
    busy_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  return true;
}

void Snapshotter::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !busy_.load(std::memory_order_acquire); });
}

void Snapshotter::Worker() {
  for (;;) {
    int64_t seq = 0;
    int64_t epoch = 0;
    std::string bytes;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return pending_ || stop_; });
      if (!pending_ && stop_) return;
      seq = pending_seq_;
      epoch = pending_epoch_;
      bytes = std::move(pending_bytes_);
      pending_bytes_.clear();
      pending_ = false;
    }
    std::string error;
    if (WriteBaseSnapshot(dir_, seq, epoch, bytes, &error)) {
      snapshots_written_.fetch_add(1, std::memory_order_relaxed);
      last_base_seq_.store(seq, std::memory_order_relaxed);
    } else {
      snapshots_failed_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "dynmis serve: base snapshot %lld failed: %s\n",
                   static_cast<long long>(seq), error.c_str());
    }
    busy_.store(false, std::memory_order_release);
    cv_.notify_all();
  }
}

}  // namespace repl
}  // namespace dynmis
