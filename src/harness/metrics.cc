#include "src/harness/metrics.h"

#include "src/util/table.h"

namespace dynmis {

std::string QualityMetrics::GapString() const {
  const int64_t gap = Gap();
  if (gap < 0) return FormatCount(-gap) + "^";
  return FormatCount(gap);
}

std::string QualityMetrics::AccuracyString() const {
  return FormatPercent(Accuracy());
}

}  // namespace dynmis
