// Row builders shared by the per-table/per-figure benchmark binaries:
// translate ExperimentResults into the paper's gap/accuracy/time/memory
// presentation.

#ifndef DYNMIS_SRC_HARNESS_REPORT_H_
#define DYNMIS_SRC_HARNESS_REPORT_H_

#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/metrics.h"

namespace dynmis {

// Finds the run result for a given algorithm display name; aborts if absent.
const AlgoRunResult& FindRun(const ExperimentResult& result,
                             const std::string& name);

// Gap/accuracy cell against `reference` ("-" when the run did not finish).
std::string GapCell(const AlgoRunResult& run, int64_t reference);
std::string AccuracyCell(const AlgoRunResult& run, int64_t reference);

// Time cell in seconds ("> limit (DNF)" for unfinished runs).
std::string TimeCell(const AlgoRunResult& run);

// Memory cell with a binary unit suffix.
std::string MemoryCell(const AlgoRunResult& run);

// Prints a standard experiment banner (dataset, n, m, #updates).
void PrintExperimentHeader(const std::string& title, const std::string& note);

}  // namespace dynmis

#endif  // DYNMIS_SRC_HARNESS_REPORT_H_
