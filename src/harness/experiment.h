// Shared experiment driver for the per-table / per-figure benchmark
// binaries: builds the competing maintainers through the MaintainerRegistry,
// computes the initial solution (exact on easy graphs, ARW on hard graphs -
// the paper's protocol), replays one update sequence through every algorithm
// on its own graph copy, and measures solution size, response time and
// structure memory.
//
// Algorithms are named by registry strings (MaintainerConfig is implicitly
// constructible from a name, so {"DyOneSwap", "DyTwoSwap*"} is a valid
// algorithm list); there is no hand-maintained enum or name table here —
// anything registered with MaintainerRegistry::Global() can run.

#ifndef DYNMIS_SRC_HARNESS_EXPERIMENT_H_
#define DYNMIS_SRC_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynmis/config.h"
#include "dynmis/maintainer.h"
#include "dynmis/registry.h"
#include "src/graph/edge_list.h"
#include "src/graph/update_stream.h"

namespace dynmis {

// How the initial independent set is obtained (paper Section V-A).
enum class InitialSolution {
  kExact,   // VCSolver stand-in; falls back to ARW when the budget runs out.
  kArw,     // ARW local search (hard graphs).
  kGreedy,  // Min-degree greedy.
};

struct ExperimentConfig {
  InitialSolution initial = InitialSolution::kArw;
  int num_updates = 10000;
  UpdateStreamOptions stream;
  // ARW effort for initial/best-known solutions.
  int arw_iterations = 800;
  // Budgets for exact solves (initial solution and final-graph alpha).
  int64_t exact_node_budget = 2'000'000;
  double exact_seconds_budget = 20.0;
  // Whether to compute the exact alpha of the final graph (Tables II/III).
  bool compute_final_alpha = false;
  // Whether to compute the ARW best-known size of the final graph (Table IV).
  bool compute_final_best = false;
  // Per-algorithm wall-clock budget in seconds; <= 0 means unlimited. An
  // algorithm that exceeds it is reported as DNF (the paper's "-" entries).
  double time_limit_seconds = 0;
};

struct AlgoRunResult {
  // Display name (DynamicMisMaintainer::Name of the constructed algorithm).
  std::string name;
  int64_t initial_size = 0;
  int64_t final_size = 0;
  double seconds = 0;        // Time to process the whole update sequence.
  size_t memory_bytes = 0;   // Structure memory after the run.
  bool finished = true;      // False when the time limit was hit.
  int64_t updates_applied = 0;
};

struct ExperimentResult {
  std::vector<AlgoRunResult> algos;
  // Exact alpha of the final graph, or -1 when unavailable.
  int64_t final_alpha = -1;
  // ARW best-known size on the final graph, or -1 when not requested.
  int64_t final_best = -1;
  int64_t final_n = 0;
  int64_t final_m = 0;
};

// Runs `algos` over the dataset: every algorithm gets its own copy of the
// graph built from `base` and replays the same `config.num_updates`-long
// random update sequence. Each entry must name a registered algorithm
// (MaintainerRegistry::Global()); unknown names abort.
ExperimentResult RunExperiment(const EdgeListGraph& base,
                               const std::vector<MaintainerConfig>& algos,
                               const ExperimentConfig& config);

// Computes the initial independent set for `g` per `mode` (original ids).
std::vector<VertexId> ComputeInitialSolution(
    const EdgeListGraph& g, InitialSolution mode, int arw_iterations,
    int64_t exact_node_budget, double exact_seconds_budget = 20.0);

}  // namespace dynmis

#endif  // DYNMIS_SRC_HARNESS_EXPERIMENT_H_
