#include "src/harness/report.h"

#include <cstdio>

#include "src/util/check.h"
#include "src/util/table.h"

namespace dynmis {

const AlgoRunResult& FindRun(const ExperimentResult& result,
                             const std::string& name) {
  for (const AlgoRunResult& run : result.algos) {
    if (run.name == name) return run;
  }
  DYNMIS_CHECK(false);
  return result.algos.front();
}

std::string GapCell(const AlgoRunResult& run, int64_t reference) {
  if (!run.finished) return "-";
  if (reference < 0) return "n/a";
  QualityMetrics metrics{reference, run.final_size};
  return metrics.GapString();
}

std::string AccuracyCell(const AlgoRunResult& run, int64_t reference) {
  if (!run.finished) return "-";
  if (reference < 0) return "n/a";
  QualityMetrics metrics{reference, run.final_size};
  return metrics.AccuracyString();
}

std::string TimeCell(const AlgoRunResult& run) {
  if (!run.finished) {
    return "DNF(" + FormatDouble(run.seconds, 1) + "s)";
  }
  return FormatDouble(run.seconds, 3) + "s";
}

std::string MemoryCell(const AlgoRunResult& run) {
  if (!run.finished) return "-";
  return FormatBytes(run.memory_bytes);
}

void PrintExperimentHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

}  // namespace dynmis
