#include "src/harness/experiment.h"

#include "src/baselines/dgdis.h"
#include "src/baselines/dyarw.h"
#include "src/baselines/recompute.h"
#include "src/core/k_swap.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"
#include "src/static_mis/arw.h"
#include "src/static_mis/exact.h"
#include "src/static_mis/greedy.h"
#include "src/util/timer.h"

namespace dynmis {

std::string AlgoKindName(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kDGOneDIS:
      return "DGOneDIS";
    case AlgoKind::kDGTwoDIS:
      return "DGTwoDIS";
    case AlgoKind::kDyARW:
      return "DyARW";
    case AlgoKind::kDyOneSwap:
      return "DyOneSwap";
    case AlgoKind::kDyTwoSwap:
      return "DyTwoSwap";
    case AlgoKind::kDyOneSwapPerturb:
      return "DyOneSwap*";
    case AlgoKind::kDyTwoSwapPerturb:
      return "DyTwoSwap*";
    case AlgoKind::kDyOneSwapLazy:
      return "DyOneSwap-lazy";
    case AlgoKind::kDyTwoSwapLazy:
      return "DyTwoSwap-lazy";
    case AlgoKind::kKSwap1:
      return "KSwap(1)";
    case AlgoKind::kKSwap2:
      return "KSwap(2)";
    case AlgoKind::kKSwap3:
      return "KSwap(3)";
    case AlgoKind::kKSwap4:
      return "KSwap(4)";
    case AlgoKind::kRecompute:
      return "Recompute";
  }
  return "?";
}

std::unique_ptr<DynamicMisMaintainer> MakeMaintainer(AlgoKind kind,
                                                     DynamicGraph* g) {
  MaintainerOptions options;
  switch (kind) {
    case AlgoKind::kDGOneDIS:
      return std::make_unique<DgDis>(g, 1);
    case AlgoKind::kDGTwoDIS:
      return std::make_unique<DgDis>(g, 2);
    case AlgoKind::kDyARW:
      return std::make_unique<DyArw>(g);
    case AlgoKind::kDyOneSwap:
      return std::make_unique<DyOneSwap>(g, options);
    case AlgoKind::kDyTwoSwap:
      return std::make_unique<DyTwoSwap>(g, options);
    case AlgoKind::kDyOneSwapPerturb:
      options.perturb = true;
      return std::make_unique<DyOneSwap>(g, options);
    case AlgoKind::kDyTwoSwapPerturb:
      options.perturb = true;
      return std::make_unique<DyTwoSwap>(g, options);
    case AlgoKind::kDyOneSwapLazy:
      options.lazy = true;
      return std::make_unique<DyOneSwap>(g, options);
    case AlgoKind::kDyTwoSwapLazy:
      options.lazy = true;
      return std::make_unique<DyTwoSwap>(g, options);
    case AlgoKind::kKSwap1:
      return std::make_unique<KSwapMaintainer>(g, 1, options);
    case AlgoKind::kKSwap2:
      return std::make_unique<KSwapMaintainer>(g, 2, options);
    case AlgoKind::kKSwap3:
      return std::make_unique<KSwapMaintainer>(g, 3, options);
    case AlgoKind::kKSwap4:
      return std::make_unique<KSwapMaintainer>(g, 4, options);
    case AlgoKind::kRecompute:
      return std::make_unique<RecomputeGreedy>(g);
  }
  return nullptr;
}

std::vector<VertexId> ComputeInitialSolution(const EdgeListGraph& g,
                                             InitialSolution mode,
                                             int arw_iterations,
                                             int64_t exact_node_budget,
                                             double exact_seconds_budget) {
  const StaticGraph snapshot = g.ToStatic();
  switch (mode) {
    case InitialSolution::kExact: {
      ExactMisOptions options;
      options.max_nodes = exact_node_budget;
      options.max_seconds = exact_seconds_budget;
      ExactMisResult result = SolveExactMis(snapshot, options);
      if (result.solved) return result.solution;
      break;  // Fall back to ARW below.
    }
    case InitialSolution::kArw:
      break;
    case InitialSolution::kGreedy:
      return GreedyMis(snapshot);
  }
  ArwOptions arw;
  arw.iterations = arw_iterations;
  return ArwMis(snapshot, arw);
}

ExperimentResult RunExperiment(const EdgeListGraph& base,
                               const std::vector<AlgoKind>& algos,
                               const ExperimentConfig& config) {
  ExperimentResult result;
  const DynamicGraph initial_graph = base.ToDynamic();
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(initial_graph, config.num_updates, config.stream);
  const std::vector<VertexId> initial_solution = ComputeInitialSolution(
      base, config.initial, config.arw_iterations, config.exact_node_budget,
      config.exact_seconds_budget);

  DynamicGraph final_graph;  // Built by the first finished run.
  bool have_final_graph = false;

  for (AlgoKind kind : algos) {
    DynamicGraph g = initial_graph;
    std::unique_ptr<DynamicMisMaintainer> algo = MakeMaintainer(kind, &g);
    algo->Initialize(initial_solution);
    AlgoRunResult run;
    run.name = AlgoKindName(kind);
    run.initial_size = algo->SolutionSize();
    Timer timer;
    bool finished = true;
    int64_t applied = 0;
    for (const GraphUpdate& update : updates) {
      algo->Apply(update);
      ++applied;
      if (config.time_limit_seconds > 0 && (applied & 15) == 0 &&
          timer.ElapsedSeconds() > config.time_limit_seconds) {
        finished = false;
        break;
      }
    }
    run.seconds = timer.ElapsedSeconds();
    run.final_size = algo->SolutionSize();
    run.memory_bytes = algo->MemoryUsageBytes();
    run.finished = finished;
    run.updates_applied = applied;
    result.algos.push_back(std::move(run));
    if (finished && !have_final_graph) {
      final_graph = std::move(g);
      have_final_graph = true;
    }
  }

  if (have_final_graph) {
    result.final_n = final_graph.NumVertices();
    result.final_m = final_graph.NumEdges();
    const StaticGraph snapshot = StaticGraph::FromDynamic(final_graph);
    if (config.compute_final_alpha) {
      ExactMisOptions options;
      options.max_nodes = config.exact_node_budget;
      options.max_seconds = config.exact_seconds_budget;
      if (std::optional<int64_t> alpha = ExactAlpha(snapshot, options)) {
        result.final_alpha = *alpha;
      }
    }
    if (config.compute_final_best) {
      ArwOptions arw;
      arw.iterations = config.arw_iterations;
      result.final_best = static_cast<int64_t>(ArwMis(snapshot, arw).size());
    }
  }
  return result;
}

}  // namespace dynmis
