#include "src/harness/experiment.h"

#include <memory>

#include "src/static_mis/arw.h"
#include "src/static_mis/exact.h"
#include "src/static_mis/greedy.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace dynmis {

std::vector<VertexId> ComputeInitialSolution(const EdgeListGraph& g,
                                             InitialSolution mode,
                                             int arw_iterations,
                                             int64_t exact_node_budget,
                                             double exact_seconds_budget) {
  const StaticGraph snapshot = g.ToStatic();
  switch (mode) {
    case InitialSolution::kExact: {
      ExactMisOptions options;
      options.max_nodes = exact_node_budget;
      options.max_seconds = exact_seconds_budget;
      ExactMisResult result = SolveExactMis(snapshot, options);
      if (result.solved) return result.solution;
      break;  // Fall back to ARW below.
    }
    case InitialSolution::kArw:
      break;
    case InitialSolution::kGreedy:
      return GreedyMis(snapshot);
  }
  ArwOptions arw;
  arw.iterations = arw_iterations;
  return ArwMis(snapshot, arw);
}

ExperimentResult RunExperiment(const EdgeListGraph& base,
                               const std::vector<MaintainerConfig>& algos,
                               const ExperimentConfig& config) {
  ExperimentResult result;
  const DynamicGraph initial_graph = base.ToDynamic();
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(initial_graph, config.num_updates, config.stream);
  const std::vector<VertexId> initial_solution = ComputeInitialSolution(
      base, config.initial, config.arw_iterations, config.exact_node_budget,
      config.exact_seconds_budget);

  DynamicGraph final_graph;  // Built by the first finished run.
  bool have_final_graph = false;

  for (const MaintainerConfig& algo_config : algos) {
    DynamicGraph g = initial_graph;
    std::unique_ptr<DynamicMisMaintainer> algo =
        MaintainerRegistry::Global().Create(algo_config, &g);
    DYNMIS_CHECK(algo != nullptr);  // Unknown algorithm name.
    algo->Initialize(initial_solution);
    AlgoRunResult run;
    run.name = algo->Name();
    run.initial_size = algo->SolutionSize();
    Timer timer;
    bool finished = true;
    int64_t applied = 0;
    for (const GraphUpdate& update : updates) {
      algo->Apply(update);
      ++applied;
      if (config.time_limit_seconds > 0 && (applied & 15) == 0 &&
          timer.ElapsedSeconds() > config.time_limit_seconds) {
        finished = false;
        break;
      }
    }
    run.seconds = timer.ElapsedSeconds();
    run.final_size = algo->SolutionSize();
    run.memory_bytes = algo->MemoryUsageBytes();
    run.finished = finished;
    run.updates_applied = applied;
    result.algos.push_back(std::move(run));
    if (finished && !have_final_graph) {
      final_graph = std::move(g);
      have_final_graph = true;
    }
  }

  if (have_final_graph) {
    result.final_n = final_graph.NumVertices();
    result.final_m = final_graph.NumEdges();
    const StaticGraph snapshot = StaticGraph::FromDynamic(final_graph);
    if (config.compute_final_alpha) {
      ExactMisOptions options;
      options.max_nodes = config.exact_node_budget;
      options.max_seconds = config.exact_seconds_budget;
      if (std::optional<int64_t> alpha = ExactAlpha(snapshot, options)) {
        result.final_alpha = *alpha;
      }
    }
    if (config.compute_final_best) {
      ArwOptions arw;
      arw.iterations = config.arw_iterations;
      result.final_best = static_cast<int64_t>(ArwMis(snapshot, arw).size());
    }
  }
  return result;
}

}  // namespace dynmis
