// Quality metrics used across the benchmark harness: gap and accuracy of a
// maintained solution relative to a reference size (the exact independence
// number on easy graphs, the ARW best-known size on hard graphs), exactly
// as reported in the paper's Tables II-IV.

#ifndef DYNMIS_SRC_HARNESS_METRICS_H_
#define DYNMIS_SRC_HARNESS_METRICS_H_

#include <cstdint>
#include <string>

namespace dynmis {

struct QualityMetrics {
  int64_t reference = 0;  // alpha(G) or best-known size.
  int64_t achieved = 0;   // Maintained solution size.

  // gap = reference - achieved (negative when the maintained solution beats
  // the reference, which Table IV marks with an up-arrow).
  int64_t Gap() const { return reference - achieved; }

  // accuracy = achieved / reference.
  double Accuracy() const {
    return reference == 0 ? 1.0
                          : static_cast<double>(achieved) /
                                static_cast<double>(reference);
  }

  // Renders the gap like the paper: plain count, with "^" marking solutions
  // larger than the reference.
  std::string GapString() const;

  // Renders the accuracy as a percentage with two decimals.
  std::string AccuracyString() const;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_HARNESS_METRICS_H_
