// KeyMap: external string key -> vertex id binding for the serving admission
// layer (the GRIN `primarykey.h` idiom — real clients name vertices by
// usernames/SKUs, the server owns the raw ids).
//
// Design constraints, in order:
//  * Allocation-free steady state. Open addressing over a power-of-two slot
//    array; key bytes live in an append-only arena. Release leaves a
//    tombstone + dead arena bytes; when either passes a load threshold the
//    map rebuilds itself into spare buffers that are *swapped*, not freed,
//    so a warm map churns KINS/KDEL forever without touching malloc.
//  * Deterministic persistence. SaveTo emits entries in ascending id order
//    (via the reverse map), so a primary and a follower holding the same
//    bindings serialize byte-identical "keymap" sections.
//  * Reverse lookup. id -> key is a flat array, so an *unkeyed* DELV of a
//    keyed vertex can release the stale binding in O(1), and SOLUTION-style
//    listings can name ids.
//
// Not thread-safe; the serving engine thread owns it.

#ifndef DYNMIS_SRC_INGEST_KEY_MAP_H_
#define DYNMIS_SRC_INGEST_KEY_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/io/snapshot.h"

namespace dynmis {
namespace ingest {

class KeyMap {
 public:
  KeyMap();

  KeyMap(const KeyMap&) = default;
  KeyMap& operator=(const KeyMap&) = default;
  KeyMap(KeyMap&&) = default;
  KeyMap& operator=(KeyMap&&) = default;

  // Binds `key` -> `id`. Returns false (no change) if the key is already
  // bound or the id already carries a key. Empty keys are invalid.
  bool Bind(std::string_view key, VertexId id);

  // The id bound to `key`, or kInvalidVertex.
  VertexId Lookup(std::string_view key) const;

  // Unbinds `key`. Returns the id it was bound to, or kInvalidVertex.
  VertexId Release(std::string_view key);

  // Unbinds whatever key maps to `id` (used when a keyed vertex dies via an
  // unkeyed DELV). Returns true if a binding was released.
  bool ReleaseId(VertexId id);

  // The key bound to `id`, or an empty view. The view is invalidated by the
  // next mutating call.
  std::string_view KeyOf(VertexId id) const;

  size_t Size() const { return size_; }

  // Pre-sizes for `n` bindings of about `avg_key_bytes` each.
  void Reserve(size_t n, size_t avg_key_bytes = 16);

  // Bytes held by the slot arrays and arenas (capacity accounting).
  size_t MemoryUsageBytes() const;

  // Writes the "keymap" snapshot section: u64 count, then (key, u32 id)
  // pairs in ascending id order.
  void SaveTo(SnapshotWriter* w) const;

  // Replaces this map with the "keymap" section of `r`. Returns false (with
  // the reader failed) on malformed payloads; missing sections are the
  // caller's concern (probe with SnapshotReader::HasSection).
  bool LoadFrom(SnapshotReader* r);

 private:
  // hash doubles as the slot state: 0 = empty, 1 = tombstone, else occupied
  // (real hashes are forced >= 2).
  struct Slot {
    uint64_t hash = 0;
    uint32_t offset = 0;
    uint32_t len = 0;
    VertexId id = kInvalidVertex;
  };

  static uint64_t HashKey(std::string_view key);
  std::string_view SlotKey(const Slot& s) const {
    return std::string_view(arena_.data() + s.offset, s.len);
  }
  // Finds the slot holding `key` (occupied) or the first insertable slot
  // (empty/tombstone) on miss. Returns the slot index.
  size_t Probe(std::string_view key, uint64_t hash, bool* found) const;
  // Re-inserts every live entry into spare_slots_/spare_arena_ and swaps
  // them in, clearing tombstones and dead arena bytes. Grows the slot array
  // when `grow` (otherwise same capacity — pure compaction).
  void Rebuild(bool grow);

  std::vector<Slot> slots_;       // Power-of-two length.
  std::vector<char> arena_;       // Live + dead key bytes, append-only.
  std::vector<Slot> spare_slots_; // Rebuild targets, kept warm across
  std::vector<char> spare_arena_; // rebuilds for allocation-free churn.
  std::vector<int32_t> id_to_slot_;  // -1 = id carries no key.
  size_t size_ = 0;
  size_t tombstones_ = 0;
  size_t dead_bytes_ = 0;
};

}  // namespace ingest
}  // namespace dynmis

#endif  // DYNMIS_SRC_INGEST_KEY_MAP_H_
