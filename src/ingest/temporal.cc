#include "src/ingest/temporal.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace dynmis {
namespace ingest {
namespace {

VertexId RandomAliveVertex(const DynamicGraph& g, Rng* rng) {
  DYNMIS_CHECK_GT(g.NumVertices(), 0);
  while (true) {
    const auto v = static_cast<VertexId>(rng->NextBounded(g.VertexCapacity()));
    if (g.IsVertexAlive(v)) return v;
  }
}

VertexId RandomBiasedVertex(const DynamicGraph& g, EndpointBias bias,
                            Rng* rng) {
  if (bias == EndpointBias::kDegreeProportional && g.NumEdges() > 0) {
    while (true) {
      const auto e = static_cast<EdgeId>(rng->NextBounded(g.EdgeCapacity()));
      if (g.IsEdgeAlive(e)) {
        const auto [a, b] = g.Endpoints(e);
        return rng->NextBool(0.5) ? a : b;
      }
    }
  }
  return RandomAliveVertex(g, rng);
}

bool RandomNonEdge(const DynamicGraph& g, EndpointBias bias, Rng* rng,
                   VertexId* u, VertexId* v) {
  if (g.NumVertices() < 2) return false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const VertexId a = RandomBiasedVertex(g, bias, rng);
    const VertexId b = RandomBiasedVertex(g, bias, rng);
    if (a == b || g.HasEdge(a, b)) continue;
    *u = a;
    *v = b;
    return true;
  }
  return false;  // Graph is (nearly) complete.
}

}  // namespace

TimingWheel::TimingWheel(uint32_t ttl_ticks)
    : slots_(std::max<uint32_t>(1, ttl_ticks)) {}

void TimingWheel::Schedule(VertexId u, VertexId v) {
  // The wheel has exactly ttl slots, so "now + ttl" lands on the slot the
  // cursor is leaving — which drains when it comes around again, one full
  // TTL later (Advance drains before the tick's inserts are scheduled).
  slots_[now_ % slots_.size()].emplace_back(u, v);
  ++scheduled_;
}

void TimingWheel::FastForward(uint64_t tick) {
  if (scheduled_ == 0 && tick > now_) now_ = tick;
}

void TimingWheel::Advance(std::vector<std::pair<VertexId, VertexId>>* out) {
  ++now_;
  auto& slot = slots_[now_ % slots_.size()];
  scheduled_ -= slot.size();
  out->insert(out->end(), slot.begin(), slot.end());
  slot.clear();  // Capacity retained: no allocation next time around.
}

std::vector<GraphUpdate> MakeTemporalSequence(
    const DynamicGraph& base, int count, const TemporalStreamOptions& options,
    TemporalStats* stats) {
  DynamicGraph scratch = base;
  TimingWheel wheel(options.ttl_ticks);
  Rng rng(SplitMix64(options.seed));
  TemporalStats local;
  TemporalStats& st = stats != nullptr ? *stats : local;
  st = TemporalStats();
  st.ttl_ticks = wheel.ttl_ticks();

  std::vector<GraphUpdate> sequence;
  sequence.reserve(count);
  std::vector<std::pair<VertexId, VertexId>> expired;
  uint64_t last_emit_tick = 0;
  // Storm mode legitimately idles for a whole period between bursts, which
  // can exceed the TTL when the wheel is small; the stall detector below
  // must not fire inside that gap.
  const uint64_t idle_limit =
      std::max<uint64_t>(
          wheel.ttl_ticks(),
          options.storm ? static_cast<uint64_t>(options.storm_period) : 0) +
      1;

  while (static_cast<int>(sequence.size()) < count) {
    expired.clear();
    wheel.Advance(&expired);
    st.expiry_backlog_peak = std::max(st.expiry_backlog_peak, expired.size());
    for (const auto& [u, v] : expired) {
      if (static_cast<int>(sequence.size()) >= count) break;
      GraphUpdate update;
      update.kind = UpdateKind::kDeleteEdge;
      update.u = u;
      update.v = v;
      ApplyUpdate(&scratch, update);
      sequence.push_back(std::move(update));
      ++st.expiries;
      last_emit_tick = wheel.now();
    }
    int inserts = options.inserts_per_tick;
    if (options.storm) {
      inserts = wheel.now() % std::max(1, options.storm_period) == 0
                    ? options.storm_burst
                    : 0;
    }
    for (int i = 0; i < inserts; ++i) {
      if (static_cast<int>(sequence.size()) >= count) break;
      GraphUpdate update;
      update.kind = UpdateKind::kInsertEdge;
      if (!RandomNonEdge(scratch, options.bias, &rng, &update.u, &update.v)) {
        break;
      }
      ApplyUpdate(&scratch, update);
      wheel.Schedule(update.u, update.v);
      sequence.push_back(std::move(update));
      ++st.inserts;
      last_emit_tick = wheel.now();
    }
    st.window_peak_edges = std::max(st.window_peak_edges, wheel.scheduled());
    // Safety valve: a degenerate configuration (near-complete graph, empty
    // wheel) must terminate rather than spin ticks forever.
    if (wheel.now() - last_emit_tick > idle_limit) break;
  }
  st.deletion_share =
      sequence.empty()
          ? 0.0
          : static_cast<double>(st.expiries) /
                static_cast<double>(sequence.size());
  return sequence;
}

}  // namespace ingest
}  // namespace dynmis
