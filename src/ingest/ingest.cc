#include "src/ingest/ingest.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "src/graph/generators.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace dynmis {
namespace ingest {
namespace {

// Raw ids at most this multiple of the seen-vertex count use the flat
// compaction table; anything sparser falls back to the hash map.
constexpr int64_t kDenseIdSlack = 8;
constexpr size_t kReadChunk = 1 << 20;

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Compacts raw (possibly sparse, possibly huge) vertex ids to 0..n-1 in
// first-seen order. Dense id spaces — every generated file and most SNAP
// dumps — use a flat vector; the hash map only engages when raw ids run
// far past the number of distinct vertices.
class IdCompactor {
 public:
  VertexId Intern(int64_t raw) {
    if (dense_) {
      if (raw >= static_cast<int64_t>(flat_.size())) {
        if (raw >= kDenseIdSlack * (next_ + 1) + 1024) {
          SwitchToSparse();
          return InternSparse(raw);
        }
        flat_.resize(static_cast<size_t>(raw) + 1, kInvalidVertex);
      }
      VertexId& slot = flat_[static_cast<size_t>(raw)];
      if (slot == kInvalidVertex) slot = next_++;
      return slot;
    }
    return InternSparse(raw);
  }

  int Count() const { return next_; }

  void Reserve(size_t n) {
    if (dense_) flat_.reserve(n + n / 8);
  }

 private:
  VertexId InternSparse(int64_t raw) {
    auto [it, inserted] = sparse_.try_emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }

  void SwitchToSparse() {
    sparse_.reserve(flat_.size());
    for (size_t raw = 0; raw < flat_.size(); ++raw) {
      if (flat_[raw] != kInvalidVertex) {
        sparse_.emplace(static_cast<int64_t>(raw), flat_[raw]);
      }
    }
    flat_.clear();
    flat_.shrink_to_fit();
    dense_ = false;
  }

  bool dense_ = true;
  std::vector<VertexId> flat_;
  std::unordered_map<int64_t, VertexId> sparse_;
  VertexId next_ = 0;
};

uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

// One line of input: either a comment/blank (handled by the caller) or
// exactly two integer tokens. Returns false on malformed numerics.
bool ParseEdgeLine(const char* p, const char* end, int64_t* a, int64_t* b,
                   bool* blank) {
  auto skip_ws = [&] {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  };
  auto parse_int = [&](int64_t* out) {
    bool neg = false;
    if (p < end && (*p == '-' || *p == '+')) neg = (*p++ == '-');
    if (p >= end || *p < '0' || *p > '9') return false;
    int64_t value = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      value = value * 10 + (*p++ - '0');
      if (value < 0) return false;  // Overflow.
    }
    *out = neg ? -value : value;
    return true;
  };
  skip_ws();
  if (p == end) {
    *blank = true;
    return true;
  }
  *blank = false;
  if (!parse_int(a)) return false;
  skip_ws();
  if (!parse_int(b)) return false;
  skip_ws();
  return p == end;  // Trailing garbage is malformed.
}

struct LineSource {
  FILE* file = nullptr;
  bool piped = false;

  ~LineSource() {
    if (file == nullptr) return;
    if (piped) {
      pclose(file);
    } else {
      fclose(file);
    }
  }
};

bool OpenSource(const std::string& path, LineSource* src, bool* gzip,
                std::string* error) {
  *gzip = EndsWith(path, ".gz");
  if (*gzip) {
    // Shell out to gzip rather than linking zlib: the toolchain image is
    // fixed and the decode runs in its own process, overlapping the parse.
    std::string quoted = "'";
    for (char c : path) {
      if (c == '\'') {
        quoted += "'\\''";
      } else {
        quoted += c;
      }
    }
    quoted += "'";
    src->file = popen(("gzip -dc " + quoted).c_str(), "r");
    src->piped = true;
    if (src->file == nullptr) {
      *error = "cannot spawn gzip for " + path;
      return false;
    }
    return true;
  }
  src->file = fopen(path.c_str(), "r");
  if (src->file == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  return true;
}

}  // namespace

size_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

bool IngestEdgeList(const std::string& path, EdgeListGraph* out,
                    IngestReport* report, std::string* error) {
  const auto start = std::chrono::steady_clock::now();
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  rep = IngestReport();

  LineSource src;
  if (!OpenSource(path, &src, &rep.gzip, error)) return false;

  IdCompactor ids;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<char> buffer(kReadChunk);
  std::string carry;  // Partial line spanning a chunk boundary.
  int64_t lineno = 0;

  auto consume_line = [&](const char* begin, const char* end) {
    ++lineno;
    // Comment handling mirrors edge_list_io: strip from '#', and honor a
    // size header before any edge line so the containers pre-size once.
    const char* hash =
        static_cast<const char*>(memchr(begin, '#', end - begin));
    if (hash != nullptr) {
      if (!rep.header_reserved && rep.lines == 0) {
        long long n = 0;
        long long m = 0;
        std::string head(hash, end);
        if ((std::sscanf(head.c_str(), "# nodes: %lld edges: %lld", &n, &m) ==
                 2 ||
             std::sscanf(head.c_str(), "# Nodes: %lld Edges: %lld", &n, &m) ==
                 2) &&
            n >= 0 && m >= 0) {
          rep.header_reserved = true;
          ids.Reserve(static_cast<size_t>(n));
          edges.reserve(static_cast<size_t>(m) + static_cast<size_t>(m) / 16);
        }
      }
      end = hash;
    }
    int64_t a = 0;
    int64_t b = 0;
    bool blank = false;
    if (!ParseEdgeLine(begin, end, &a, &b, &blank)) {
      *error = path + ":" + std::to_string(lineno) + ": malformed edge line";
      return false;
    }
    if (blank) return true;
    ++rep.lines;
    if (a < 0 || b < 0) {
      *error = path + ":" + std::to_string(lineno) + ": negative vertex id";
      return false;
    }
    if (a == b) {
      ++rep.dropped_self_loops;
      return true;
    }
    const VertexId u = ids.Intern(a);
    const VertexId v = ids.Intern(b);
    edges.emplace_back(std::min(u, v), std::max(u, v));
    return true;
  };

  while (true) {
    const size_t got = fread(buffer.data(), 1, buffer.size(), src.file);
    if (got == 0) break;
    const char* p = buffer.data();
    const char* chunk_end = p + got;
    while (p < chunk_end) {
      const char* nl =
          static_cast<const char*>(memchr(p, '\n', chunk_end - p));
      if (nl == nullptr) {
        carry.append(p, chunk_end);
        break;
      }
      if (!carry.empty()) {
        carry.append(p, nl);
        if (!consume_line(carry.data(), carry.data() + carry.size())) {
          return false;
        }
        carry.clear();
      } else if (!consume_line(p, nl)) {
        return false;
      }
      p = nl + 1;
    }
  }
  if (ferror(src.file) != 0) {
    *error = "read error on " + path;
    return false;
  }
  if (!carry.empty() &&
      !consume_line(carry.data(), carry.data() + carry.size())) {
    return false;
  }

  // Deduplicate without a hash set: sort + unique over the packed keys is
  // the whole transient cost beyond the edge vector itself.
  std::sort(edges.begin(), edges.end());
  const auto last = std::unique(edges.begin(), edges.end());
  rep.dropped_duplicates = std::distance(last, edges.end());
  edges.erase(last, edges.end());

  out->n = ids.Count();
  out->edges = std::move(edges);
  rep.vertices = out->n;
  rep.edges = out->NumEdges();
  rep.graph_bytes = out->edges.capacity() * sizeof(out->edges[0]);
  rep.bytes_per_edge =
      rep.edges == 0 ? 0.0
                     : static_cast<double>(rep.graph_bytes) /
                           static_cast<double>(rep.edges);
  rep.load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  rep.peak_rss_bytes = PeakRssBytes();
  return true;
}

int64_t GeneratePowerLawEdgeFile(const std::string& path, int n,
                                 double avg_degree, double beta, uint64_t seed,
                                 std::string* error) {
  Rng rng(SplitMix64(seed));
  const EdgeListGraph g = ChungLuPowerLaw(n, beta, avg_degree, &rng);
  std::ofstream file(path);
  if (!file) {
    *error = "cannot write " + path;
    return -1;
  }
  file << "# dynmis power-law edge list (chung-lu beta=" << beta
       << " seed=" << seed << ")\n";
  file << "# nodes: " << g.n << " edges: " << g.edges.size() << "\n";
  // Chunked formatting: a 64 KiB text buffer flushed in bulk is ~4x faster
  // than operator<< per edge at multi-million-edge scale.
  std::string chunk;
  chunk.reserve(1 << 16);
  char line[48];
  for (const auto& [u, v] : g.edges) {
    chunk.append(line, std::snprintf(line, sizeof(line), "%d\t%d\n", u, v));
    if (chunk.size() > (1 << 16) - 48) {
      file.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      chunk.clear();
    }
  }
  file.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  file.flush();
  if (!file) {
    *error = "write error on " + path;
    return -1;
  }
  return g.NumEdges();
}

}  // namespace ingest
}  // namespace dynmis
