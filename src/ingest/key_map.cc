#include "src/ingest/key_map.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/check.h"

namespace dynmis {
namespace ingest {
namespace {

constexpr size_t kInitialSlots = 16;
constexpr uint64_t kEmpty = 0;
constexpr uint64_t kTombstone = 1;

}  // namespace

KeyMap::KeyMap() : slots_(kInitialSlots) {}

uint64_t KeyMap::HashKey(std::string_view key) {
  // FNV-1a, with the two state-marker values remapped into real hashes.
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h < 2 ? h + 2 : h;
}

size_t KeyMap::Probe(std::string_view key, uint64_t hash, bool* found) const {
  const size_t mask = slots_.size() - 1;
  size_t idx = static_cast<size_t>(hash) & mask;
  size_t first_free = slots_.size();  // First tombstone seen, if any.
  while (true) {
    const Slot& s = slots_[idx];
    if (s.hash == kEmpty) {
      *found = false;
      return first_free < slots_.size() ? first_free : idx;
    }
    if (s.hash == kTombstone) {
      if (first_free == slots_.size()) first_free = idx;
    } else if (s.hash == hash && SlotKey(s) == key) {
      *found = true;
      return idx;
    }
    idx = (idx + 1) & mask;
  }
}

bool KeyMap::Bind(std::string_view key, VertexId id) {
  if (key.empty() || id < 0) return false;
  if (static_cast<size_t>(id) < id_to_slot_.size() && id_to_slot_[id] >= 0) {
    return false;  // The id already carries a key.
  }
  const uint64_t hash = HashKey(key);
  bool found = false;
  size_t idx = Probe(key, hash, &found);
  if (found) return false;
  // Keep the probe chains short: grow at 7/8 combined (live + tombstone)
  // load, compact in place when tombstones alone pass 1/4.
  if ((size_ + tombstones_ + 1) * 8 > slots_.size() * 7) {
    Rebuild(/*grow=*/true);
    idx = Probe(key, hash, &found);
    DYNMIS_CHECK(!found);
  }
  Slot& s = slots_[idx];
  if (s.hash == kTombstone) --tombstones_;
  s.hash = hash;
  s.offset = static_cast<uint32_t>(arena_.size());
  s.len = static_cast<uint32_t>(key.size());
  s.id = id;
  arena_.insert(arena_.end(), key.begin(), key.end());
  if (static_cast<size_t>(id) >= id_to_slot_.size()) {
    id_to_slot_.resize(id + 1, -1);
  }
  id_to_slot_[id] = static_cast<int32_t>(idx);
  ++size_;
  return true;
}

VertexId KeyMap::Lookup(std::string_view key) const {
  if (key.empty() || size_ == 0) return kInvalidVertex;
  bool found = false;
  const size_t idx = Probe(key, HashKey(key), &found);
  return found ? slots_[idx].id : kInvalidVertex;
}

VertexId KeyMap::Release(std::string_view key) {
  if (key.empty() || size_ == 0) return kInvalidVertex;
  bool found = false;
  const size_t idx = Probe(key, HashKey(key), &found);
  if (!found) return kInvalidVertex;
  Slot& s = slots_[idx];
  const VertexId id = s.id;
  dead_bytes_ += s.len;
  s.hash = kTombstone;
  s.id = kInvalidVertex;
  ++tombstones_;
  --size_;
  id_to_slot_[id] = -1;
  // Compact once dead arena bytes dominate the live ones (or tombstones
  // clog the table); the spare buffers absorb it without allocating once
  // they are warm.
  if (dead_bytes_ > 64 && dead_bytes_ * 2 > arena_.size()) {
    Rebuild(/*grow=*/false);
  } else if (tombstones_ * 4 > slots_.size()) {
    Rebuild(/*grow=*/false);
  }
  return id;
}

bool KeyMap::ReleaseId(VertexId id) {
  if (id < 0 || static_cast<size_t>(id) >= id_to_slot_.size()) return false;
  const int32_t idx = id_to_slot_[id];
  if (idx < 0) return false;
  return Release(SlotKey(slots_[idx])) != kInvalidVertex;
}

std::string_view KeyMap::KeyOf(VertexId id) const {
  if (id < 0 || static_cast<size_t>(id) >= id_to_slot_.size()) return {};
  const int32_t idx = id_to_slot_[id];
  if (idx < 0) return {};
  return SlotKey(slots_[idx]);
}

void KeyMap::Reserve(size_t n, size_t avg_key_bytes) {
  size_t target = kInitialSlots;
  while (target * 7 < (n + 1) * 8) target *= 2;
  if (target > slots_.size()) {
    spare_slots_.reserve(target);
    Rebuild(/*grow=*/false);  // Compact first so the grow is exact.
    std::vector<Slot> bigger(target);
    spare_slots_.swap(bigger);
    Rebuild(/*grow=*/false);  // Swaps the bigger table in.
  }
  arena_.reserve(n * avg_key_bytes);
  spare_arena_.reserve(n * avg_key_bytes);
}

size_t KeyMap::MemoryUsageBytes() const {
  return slots_.capacity() * sizeof(Slot) +
         spare_slots_.capacity() * sizeof(Slot) + arena_.capacity() +
         spare_arena_.capacity() + id_to_slot_.capacity() * sizeof(int32_t);
}

void KeyMap::Rebuild(bool grow) {
  const size_t want = grow ? slots_.size() * 2
                           : std::max(spare_slots_.size(), slots_.size());
  spare_slots_.clear();
  spare_slots_.resize(want);
  spare_arena_.clear();
  spare_arena_.reserve(arena_.size() - dead_bytes_);
  const size_t mask = want - 1;
  for (Slot& s : slots_) {
    if (s.hash == kEmpty || s.hash == kTombstone) continue;
    const uint32_t offset = static_cast<uint32_t>(spare_arena_.size());
    spare_arena_.insert(spare_arena_.end(), arena_.begin() + s.offset,
                        arena_.begin() + s.offset + s.len);
    size_t idx = static_cast<size_t>(s.hash) & mask;
    while (spare_slots_[idx].hash != kEmpty) idx = (idx + 1) & mask;
    spare_slots_[idx] = s;
    spare_slots_[idx].offset = offset;
    id_to_slot_[s.id] = static_cast<int32_t>(idx);
  }
  slots_.swap(spare_slots_);
  arena_.swap(spare_arena_);
  tombstones_ = 0;
  dead_bytes_ = 0;
}

void KeyMap::SaveTo(SnapshotWriter* w) const {
  w->BeginSection("keymap");
  w->PutU64(size_);
  std::string key;
  for (size_t id = 0; id < id_to_slot_.size(); ++id) {
    const int32_t idx = id_to_slot_[id];
    if (idx < 0) continue;
    const Slot& s = slots_[idx];
    key.assign(arena_.data() + s.offset, s.len);
    w->PutString(key);
    w->PutU32(static_cast<uint32_t>(id));
  }
  w->EndSection();
}

bool KeyMap::LoadFrom(SnapshotReader* r) {
  if (!r->OpenSection("keymap")) return false;
  const uint64_t count = r->GetU64();
  KeyMap fresh;
  fresh.Reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count && r->ok(); ++i) {
    const std::string key = r->GetString();
    const VertexId id = static_cast<VertexId>(r->GetU32());
    if (!r->ok()) break;
    if (!fresh.Bind(key, id)) {
      r->Fail("keymap: duplicate key or id in snapshot");
      return false;
    }
  }
  if (!r->ok()) return false;
  if (!r->AtSectionEnd()) {
    r->Fail("keymap: trailing bytes");
    return false;
  }
  *this = std::move(fresh);
  return true;
}

}  // namespace ingest
}  // namespace dynmis
