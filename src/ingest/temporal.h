// Temporal sliding-window streams: every inserted edge carries a timestamp
// and expires after a TTL, turning the insert-biased update mix the bench
// scenarios default to into the deletion-heavy workload of the dynamic
// streaming literature (Monemizadeh et al., PAPERS.md).
//
// The expiry engine is a timing wheel: `ttl` slots, one per tick, cursor
// advancing O(1) per tick and draining exactly the edges whose lifetime
// elapsed. Slot vectors are cleared, never freed, so a warm wheel schedules
// and expires forever without allocating — the serving engine thread runs
// one inline with admission.
//
// Two clients, one code path:
//  * bench_driver: MakeTemporalSequence pre-draws a deterministic update
//    sequence (tick == op index) where deletions are exclusively TTL
//    expiries, plus the adversarial `storm` mode that aligns whole insert
//    bursts onto one expiry tick.
//  * serving: the server schedules admitted edge inserts on a wall-clock
//    wheel (ServeOptions window TTL) and feeds the drained batches through
//    the same admission flush as client writes, so expiries replicate and
//    snapshot like any other deletion.

#ifndef DYNMIS_SRC_INGEST_TEMPORAL_H_
#define DYNMIS_SRC_INGEST_TEMPORAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/update_stream.h"

namespace dynmis {
namespace ingest {

class TimingWheel {
 public:
  // Edges scheduled at tick t expire when the cursor reaches t + ttl_ticks.
  explicit TimingWheel(uint32_t ttl_ticks);

  // Schedules {u, v} for expiry one TTL from now.
  void Schedule(VertexId u, VertexId v);

  // Advances one tick and appends the edges expiring at the new tick to
  // *out (which is not cleared). The drained slot keeps its capacity.
  void Advance(std::vector<std::pair<VertexId, VertexId>>* out);

  // Jumps the cursor straight to `tick` — legal only while nothing is
  // scheduled (there is nothing to drain along the way). No-op when `tick`
  // is not ahead of now(). The serving loop uses this to skip a long idle
  // or read-only stretch instead of ticking through it.
  void FastForward(uint64_t tick);

  uint64_t now() const { return now_; }
  uint32_t ttl_ticks() const { return static_cast<uint32_t>(slots_.size()); }
  // Edges scheduled and not yet expired. Edges deleted by other means
  // before their TTL still count until their slot drains; callers filter
  // drained pairs against the live graph.
  size_t scheduled() const { return scheduled_; }

 private:
  std::vector<std::vector<std::pair<VertexId, VertexId>>> slots_;
  uint64_t now_ = 0;
  size_t scheduled_ = 0;
};

struct TemporalStreamOptions {
  uint32_t ttl_ticks = 2000;  // Edge lifetime, in update ticks.
  // Inserts per tick. 1 is the steady sliding window; the storm mode below
  // overrides the shape.
  int inserts_per_tick = 1;
  // Adversarial deletion storm: inserts arrive in bursts of `storm_burst`
  // on every `storm_period`-th tick (idle otherwise), so each burst expires
  // as one deletion batch of the same size one TTL later.
  bool storm = false;
  int storm_burst = 256;
  int storm_period = 64;
  EndpointBias bias = EndpointBias::kUniform;
  uint64_t seed = 1;
};

struct TemporalStats {
  uint32_t ttl_ticks = 0;
  int64_t inserts = 0;
  int64_t expiries = 0;           // Expiry deletions emitted.
  size_t window_peak_edges = 0;   // Max edges in flight in the window.
  size_t expiry_backlog_peak = 0; // Max expiry deletions from one tick.
  double deletion_share = 0.0;    // expiries / total updates.
};

// Pre-draws `count` updates against a scratch copy of `base`: each tick
// first emits the deletions the wheel expires, then draws the tick's
// inserts. Deterministic given the options; replaying against any graph
// identical to `base` is valid by construction. Stats out-param optional.
std::vector<GraphUpdate> MakeTemporalSequence(
    const DynamicGraph& base, int count, const TemporalStreamOptions& options,
    TemporalStats* stats);

}  // namespace ingest
}  // namespace dynmis

#endif  // DYNMIS_SRC_INGEST_TEMPORAL_H_
