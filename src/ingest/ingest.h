// SNAP-scale edge-list ingestion.
//
// The paper's datasets are SNAP edge lists with millions of edges; the
// existing LoadEdgeList (src/graph/edge_list_io.h) is convenient but keeps
// an id hash map plus a seen-edge hash set alive through the parse, which
// at multi-million-edge scale costs several times the graph itself. The
// ingester here streams: a chunked reader with a hand-rolled integer
// scanner, a flat id-compaction table for dense id spaces (hash fallback
// for sparse ones), sort+unique deduplication (16 B/edge transient instead
// of ~40 B/edge of hash set), `.gz` transparently via a `gzip -dc` pipe,
// and size headers honored so `Reserve(n, m)` pre-sizes everything.
//
// Every ingest produces an IngestReport with the memory-budget numbers the
// bench matrix and the CI gate consume: wall-clock load time, bytes/edge of
// the materialized DynamicGraph, and the process peak RSS.
//
// GeneratePowerLawEdgeFile is the deterministic no-network fallback: CI
// synthesizes a multi-million-edge power-law file (Chung-Lu, fixed seed)
// instead of downloading a real SNAP archive.

#ifndef DYNMIS_SRC_INGEST_INGEST_H_
#define DYNMIS_SRC_INGEST_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/graph/edge_list.h"

namespace dynmis {
namespace ingest {

struct IngestReport {
  int64_t vertices = 0;
  int64_t edges = 0;
  int64_t lines = 0;               // Non-comment, non-blank input lines.
  int64_t dropped_self_loops = 0;
  int64_t dropped_duplicates = 0;
  bool header_reserved = false;    // A "# nodes/edges" header pre-sized us.
  bool gzip = false;               // Decoded through the gzip pipe.
  double load_seconds = 0.0;       // Parse + dedup + compaction.
  size_t graph_bytes = 0;          // EdgeListGraph payload bytes.
  double bytes_per_edge = 0.0;     // graph_bytes / edges.
  size_t peak_rss_bytes = 0;       // Process high-water mark after the load.
};

// Streams `path` (plain text, or `.gz` via a `gzip -dc` pipe) into an
// EdgeListGraph with compacted 0..n-1 ids, self-loops dropped and duplicate
// edges (either orientation) kept once. Returns false with *error set on
// unreadable files or malformed numeric tokens. `report` is optional.
bool IngestEdgeList(const std::string& path, EdgeListGraph* out,
                    IngestReport* report, std::string* error);

// Writes a deterministic Chung-Lu power-law edge list (tail exponent
// `beta`, expected average degree `avg_degree`, fixed `seed`) to `path` in
// SNAP header format, streaming so the writer never holds more than the
// edge vector. Returns the number of edges written, or -1 with *error set.
int64_t GeneratePowerLawEdgeFile(const std::string& path, int n,
                                 double avg_degree, double beta, uint64_t seed,
                                 std::string* error);

// The process peak resident set size in bytes (Linux VmHWM / ru_maxrss).
size_t PeakRssBytes();

}  // namespace ingest
}  // namespace dynmis

#endif  // DYNMIS_SRC_INGEST_INGEST_H_
