// EdgeListGraph: the plain interchange representation produced by the
// generators and the SNAP-format loader, convertible to the dynamic and
// static representations.

#ifndef DYNMIS_SRC_GRAPH_EDGE_LIST_H_
#define DYNMIS_SRC_GRAPH_EDGE_LIST_H_

#include <utility>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/graph/static_graph.h"

namespace dynmis {

// A simple undirected graph as `n` vertices (ids 0..n-1) plus a list of
// edges. Edges are unique and self-loop free; generators and loaders are
// responsible for deduplication.
struct EdgeListGraph {
  int n = 0;
  std::vector<std::pair<VertexId, VertexId>> edges;

  int64_t NumEdges() const { return static_cast<int64_t>(edges.size()); }

  double AverageDegree() const {
    return n == 0 ? 0.0 : 2.0 * static_cast<double>(edges.size()) / n;
  }

  // Materializes a DynamicGraph with vertices 0..n-1, pre-sized so the bulk
  // edge insertion never growth-reallocates.
  DynamicGraph ToDynamic() const {
    DynamicGraph g(n);
    g.Reserve(n, NumEdges());
    for (const auto& [u, v] : edges) g.AddEdge(u, v);
    return g;
  }

  // Materializes a CSR snapshot.
  StaticGraph ToStatic() const { return StaticGraph(n, edges); }
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_EDGE_LIST_H_
