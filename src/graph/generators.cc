#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/check.h"

namespace dynmis {
namespace {

// Packs an undirected edge into a 64-bit dedup key (u < v).
uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

}  // namespace

EdgeListGraph ErdosRenyiGnm(int n, int64_t m, Rng* rng) {
  DYNMIS_CHECK_GE(n, 0);
  EdgeListGraph g;
  g.n = n;
  if (n < 2) return g;
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(m) * 2);
  g.edges.reserve(static_cast<size_t>(m));
  while (static_cast<int64_t>(g.edges.size()) < m) {
    VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    VertexId v = static_cast<VertexId>(rng->NextBounded(n));
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) {
      g.edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  return g;
}

EdgeListGraph BarabasiAlbert(int n, int edges_per_vertex, Rng* rng) {
  DYNMIS_CHECK_GE(edges_per_vertex, 1);
  const int seed_size = edges_per_vertex + 1;
  DYNMIS_CHECK_GE(n, seed_size);
  EdgeListGraph g;
  g.n = n;
  const size_t expected_edges =
      static_cast<size_t>(seed_size) * (seed_size - 1) / 2 +
      static_cast<size_t>(n - seed_size) * edges_per_vertex;
  g.edges.reserve(expected_edges);
  // `attachment` holds one entry per edge endpoint, so sampling an element
  // uniformly is sampling a vertex proportionally to its degree.
  std::vector<VertexId> attachment;
  attachment.reserve(2 * expected_edges);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      g.edges.emplace_back(u, v);
      attachment.push_back(u);
      attachment.push_back(v);
    }
  }
  std::unordered_set<VertexId> chosen;
  for (VertexId v = seed_size; v < n; ++v) {
    chosen.clear();
    while (static_cast<int>(chosen.size()) < edges_per_vertex) {
      VertexId target = attachment[rng->NextBounded(attachment.size())];
      chosen.insert(target);
    }
    for (VertexId target : chosen) {
      g.edges.emplace_back(target, v);
      attachment.push_back(target);
      attachment.push_back(v);
    }
  }
  return g;
}

std::vector<int> PowerLawDegreeSequence(int n, double beta, int min_degree,
                                        int max_degree, Rng* rng) {
  DYNMIS_CHECK_GT(beta, 1.0);
  DYNMIS_CHECK_GE(min_degree, 1);
  DYNMIS_CHECK_GE(max_degree, min_degree);
  std::vector<int> degrees(n);
  // Inverse-CDF sampling of a discrete power law approximated by the
  // continuous Pareto distribution truncated to [min_degree, max_degree+1).
  const double a = 1.0 - beta;
  const double lo = std::pow(static_cast<double>(min_degree), a);
  const double hi = std::pow(static_cast<double>(max_degree) + 1.0, a);
  for (int i = 0; i < n; ++i) {
    const double u = rng->NextDouble();
    const double x = std::pow(lo + u * (hi - lo), 1.0 / a);
    degrees[i] = std::min(max_degree, std::max(min_degree,
                                               static_cast<int>(x)));
  }
  // The configuration model needs an even stub count.
  int64_t sum = 0;
  for (int d : degrees) sum += d;
  if (sum % 2 != 0) {
    ++degrees[rng->NextBounded(n)];
  }
  return degrees;
}

EdgeListGraph ConfigurationModel(const std::vector<int>& degrees, Rng* rng) {
  EdgeListGraph g;
  g.n = static_cast<int>(degrees.size());
  std::vector<VertexId> stubs;
  int64_t total = 0;
  for (int d : degrees) total += d;
  DYNMIS_CHECK_EQ(total % 2, 0);
  stubs.reserve(static_cast<size_t>(total));
  for (VertexId v = 0; v < g.n; ++v) {
    for (int i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  // Fisher-Yates shuffle, then pair consecutive stubs.
  for (size_t i = stubs.size(); i > 1; --i) {
    const size_t j = rng->NextBounded(i);
    std::swap(stubs[i - 1], stubs[j]);
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(stubs.size());
  g.edges.reserve(stubs.size() / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const VertexId u = stubs[i];
    const VertexId v = stubs[i + 1];
    if (u == v) continue;  // Erase self-loops.
    if (seen.insert(EdgeKey(u, v)).second) {
      g.edges.emplace_back(std::min(u, v), std::max(u, v));
    }
    // Parallel edges are erased by the dedup set.
  }
  return g;
}

EdgeListGraph PowerLawRandomGraph(int n, double beta, int min_degree,
                                  int max_degree, Rng* rng) {
  return ConfigurationModel(
      PowerLawDegreeSequence(n, beta, min_degree, max_degree, rng), rng);
}

EdgeListGraph ChungLu(const std::vector<double>& weights, Rng* rng) {
  EdgeListGraph g;
  g.n = static_cast<int>(weights.size());
  if (g.n < 2) return g;
  // Sort weights descending, remembering original indices, as required by
  // the Miller-Hagberg skipping construction.
  std::vector<int> order(g.n);
  for (int i = 0; i < g.n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return weights[a] > weights[b]; });
  std::vector<double> w(g.n);
  for (int i = 0; i < g.n; ++i) w[i] = weights[order[i]];
  double total = 0;
  for (double x : w) total += x;
  DYNMIS_CHECK_GT(total, 0.0);
  // Expected edge count is half the expected degree sum.
  g.edges.reserve(static_cast<size_t>(total / 2));

  for (int u = 0; u < g.n - 1; ++u) {
    int v = u + 1;
    double p = std::min(w[u] * w[v] / total, 1.0);
    while (v < g.n && p > 0) {
      if (p != 1.0) {
        const double r = rng->NextDouble();
        v += static_cast<int>(
            std::floor(std::log(1.0 - r) / std::log(1.0 - p)));
      }
      if (v < g.n) {
        const double q = std::min(w[u] * w[v] / total, 1.0);
        if (rng->NextDouble() < q / p) {
          g.edges.emplace_back(std::min(order[u], order[v]),
                               std::max(order[u], order[v]));
        }
        p = q;
        ++v;
      }
    }
  }
  return g;
}

EdgeListGraph ChungLuPowerLaw(int n, double beta, double avg_degree,
                              Rng* rng) {
  DYNMIS_CHECK_GT(beta, 2.0);
  // Weights w_i = c * (i + i0)^{-1/(beta-1)}: the classic power-law weight
  // sequence. Scale c so the mean weight equals avg_degree.
  std::vector<double> weights(n);
  const double exponent = -1.0 / (beta - 1.0);
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), exponent);
    sum += weights[i];
  }
  const double scale = avg_degree * n / sum;
  const double cap = std::sqrt(scale * sum);  // Keep w_i*w_j/W <= 1.
  for (double& wi : weights) wi = std::min(wi * scale, cap);
  return ChungLu(weights, rng);
}

EdgeListGraph RMat(int scale, int64_t m, double a, double b, double c,
                   Rng* rng) {
  DYNMIS_CHECK_GE(scale, 1);
  const double d = 1.0 - a - b - c;
  DYNMIS_CHECK_GE(d, 0.0);
  EdgeListGraph g;
  g.n = 1 << scale;
  const int64_t max_edges = static_cast<int64_t>(g.n) * (g.n - 1) / 2;
  m = std::min(m, max_edges / 2);  // Leave head room for the dedup loop.
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(m) * 2);
  g.edges.reserve(static_cast<size_t>(m));
  int64_t attempts = 0;
  const int64_t max_attempts = m * 64;
  while (static_cast<int64_t>(g.edges.size()) < m &&
         attempts++ < max_attempts) {
    VertexId u = 0;
    VertexId v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng->NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // Quadrant (0, 0).
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) {
      g.edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  return g;
}

EdgeListGraph RandomRegular(int n, int d, Rng* rng) {
  DYNMIS_CHECK_GE(d, 0);
  DYNMIS_CHECK_LT(d, n);
  std::vector<int> degrees(n, d);
  if ((static_cast<int64_t>(n) * d) % 2 != 0) ++degrees[0];
  return ConfigurationModel(degrees, rng);
}

EdgeListGraph CompleteGraph(int n) {
  EdgeListGraph g;
  g.n = n;
  if (n > 1) g.edges.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.edges.emplace_back(u, v);
  }
  return g;
}

EdgeListGraph PathGraph(int n) {
  EdgeListGraph g;
  g.n = n;
  if (n > 1) g.edges.reserve(n - 1);
  for (VertexId v = 0; v + 1 < n; ++v) g.edges.emplace_back(v, v + 1);
  return g;
}

EdgeListGraph CycleGraph(int n) {
  EdgeListGraph g = PathGraph(n);
  if (n >= 3) g.edges.emplace_back(0, n - 1);
  return g;
}

EdgeListGraph StarGraph(int leaves) {
  EdgeListGraph g;
  g.n = leaves + 1;
  g.edges.reserve(leaves);
  for (VertexId v = 1; v <= leaves; ++v) g.edges.emplace_back(0, v);
  return g;
}

EdgeListGraph Hypercube(int dim) {
  DYNMIS_CHECK_GE(dim, 0);
  DYNMIS_CHECK_LE(dim, 24);
  EdgeListGraph g;
  g.n = 1 << dim;
  g.edges.reserve(static_cast<size_t>(g.n) * dim / 2);
  for (VertexId v = 0; v < g.n; ++v) {
    for (int bit = 0; bit < dim; ++bit) {
      const VertexId u = v ^ (1 << bit);
      if (v < u) g.edges.emplace_back(v, u);
    }
  }
  return g;
}

EdgeListGraph SubdivideEdges(const EdgeListGraph& g) {
  EdgeListGraph result;
  result.n = g.n + static_cast<int>(g.edges.size());
  result.edges.reserve(2 * g.edges.size());
  VertexId next = g.n;
  for (const auto& [u, v] : g.edges) {
    result.edges.emplace_back(u, next);
    result.edges.emplace_back(next, v);
    ++next;
  }
  return result;
}

}  // namespace dynmis
