// Registry of synthetic stand-ins for the paper's 22 evaluation graphs.
//
// The paper's experiments use real SNAP/LAW graphs up to 3.4 billion edges,
// split into "easy" instances (VCSolver computes an exact MaxIS within five
// hours) and "hard" instances (only the ARW local-search result is known).
// We reproduce the experiment *structure* at laptop scale: every dataset
// keeps its paper name, its easy/hard category, a power-law degree profile
// whose density ranks the same way as the original (hollywood and the web
// crawls stay the densest), and a fixed seed, while n is scaled down so the
// full benchmark suite runs in minutes. The paper's published statistics are
// carried along for the Table I report. Real SNAP files can be swapped in
// via LoadEdgeList() without touching the harness.

#ifndef DYNMIS_SRC_GRAPH_DATASETS_H_
#define DYNMIS_SRC_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/edge_list.h"

namespace dynmis {

enum class DatasetKind {
  kChungLu,         // Chung-Lu with power-law expected degrees.
  kBarabasiAlbert,  // Preferential attachment.
  kRMat,            // Recursive matrix (skewed, community-ish).
};

struct DatasetSpec {
  std::string name;       // Paper's dataset name.
  bool easy = true;       // Easy = exact alpha available (Table II/III).
  int n = 0;              // Stand-in vertex count.
  double avg_degree = 0;  // Stand-in target average degree.
  double beta = 2.3;      // Power-law exponent (Chung-Lu only).
  DatasetKind kind = DatasetKind::kChungLu;
  uint64_t seed = 0;
  // Published statistics of the original graph (Table I).
  int64_t paper_n = 0;
  int64_t paper_m = 0;
  double paper_avg_degree = 0;
};

// The 13 easy datasets in the paper's Table I order.
const std::vector<DatasetSpec>& EasyDatasets();

// The 9 hard datasets in the paper's Table IV order.
const std::vector<DatasetSpec>& HardDatasets();

// Finds a spec by paper name (easy and hard pooled); returns nullptr if the
// name is unknown.
const DatasetSpec* FindDataset(const std::string& name);

// Deterministically materializes the stand-in graph for `spec`.
EdgeListGraph GenerateDataset(const DatasetSpec& spec);

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_DATASETS_H_
