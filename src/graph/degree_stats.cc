#include "src/graph/degree_stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace dynmis {
namespace {

int FloorLog2(int x) {
  DYNMIS_CHECK_GT(x, 0);
  int b = 0;
  while ((1 << (b + 1)) <= x) ++b;
  return b;
}

// Expected bucket mass of Definition 2 without the c constant:
// n (t+1)^{beta-1} sum_{i=2^b}^{2^{b+1}-1} (i+t)^{-beta}.
double BucketModelMass(int n, int bucket, double beta, double t) {
  double sum = 0;
  const int64_t lo = int64_t{1} << bucket;
  const int64_t hi = (int64_t{1} << (bucket + 1)) - 1;
  for (int64_t i = lo; i <= hi; ++i) {
    sum += std::pow(static_cast<double>(i) + t, -beta);
  }
  return n * std::pow(t + 1.0, beta - 1.0) * sum;
}

}  // namespace

DegreeStats ComputeDegreeStats(const StaticGraph& g) {
  DegreeStats stats;
  stats.n = g.NumVertices();
  stats.m = g.NumEdges();
  stats.avg_degree = g.AverageDegree();
  stats.max_degree = g.MaxDegree();
  stats.min_degree = stats.n == 0 ? 0 : stats.max_degree;
  stats.counts.assign(static_cast<size_t>(stats.max_degree) + 1, 0);
  stats.min_positive_degree = stats.max_degree;
  for (int v = 0; v < stats.n; ++v) {
    const int d = g.Degree(v);
    stats.min_degree = std::min(stats.min_degree, d);
    if (d > 0) {
      stats.min_positive_degree = std::min(stats.min_positive_degree, d);
    }
    ++stats.counts[d];
  }
  if (stats.max_degree == 0) stats.min_positive_degree = 0;
  if (stats.max_degree > 0) {
    stats.bucket_counts.assign(FloorLog2(stats.max_degree) + 1, 0);
    for (int d = 1; d <= stats.max_degree; ++d) {
      if (stats.counts[d] > 0) {
        stats.bucket_counts[FloorLog2(d)] += stats.counts[d];
      }
    }
  }
  return stats;
}

double EstimatePowerLawExponent(const DegreeStats& stats) {
  // Fit log(count / width) = alpha - beta * log(mid-degree) by least squares
  // over non-empty dyadic buckets.
  std::vector<double> xs;
  std::vector<double> ys;
  for (size_t b = 0; b < stats.bucket_counts.size(); ++b) {
    if (stats.bucket_counts[b] == 0) continue;
    const double width = static_cast<double>(int64_t{1} << b);
    const double mid = 1.5 * width;
    xs.push_back(std::log(mid));
    ys.push_back(std::log(static_cast<double>(stats.bucket_counts[b]) / width));
  }
  if (xs.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double k = static_cast<double>(xs.size());
  const double denom = k * sxx - sx * sx;
  if (denom == 0) return 0.0;
  const double slope = (k * sxy - sx * sy) / denom;
  return -slope;
}

bool IsPowerLawBounded(const DegreeStats& stats, double beta, double t,
                       double c1, double c2) {
  if (stats.min_positive_degree <= 0 || stats.max_degree <= 0) return false;
  const int lo = FloorLog2(stats.min_positive_degree);
  const int hi = FloorLog2(stats.max_degree);
  for (int b = lo; b <= hi; ++b) {
    const double model = BucketModelMass(stats.n, b, beta, t);
    const int64_t observed = b < static_cast<int>(stats.bucket_counts.size())
                                 ? stats.bucket_counts[b]
                                 : 0;
    if (observed < c2 * model || observed > c1 * model) return false;
  }
  return true;
}

bool FitPlbConstants(const DegreeStats& stats, double beta, double t,
                     double* c1, double* c2) {
  if (stats.min_positive_degree <= 0 || stats.max_degree <= 0) return false;
  const int lo = FloorLog2(stats.min_positive_degree);
  const int hi = FloorLog2(stats.max_degree);
  double max_ratio = 0;
  double min_ratio = std::numeric_limits<double>::infinity();
  bool any = false;
  for (int b = lo; b <= hi; ++b) {
    const double model = BucketModelMass(stats.n, b, beta, t);
    if (model <= 0) continue;
    const int64_t observed = b < static_cast<int>(stats.bucket_counts.size())
                                 ? stats.bucket_counts[b]
                                 : 0;
    const double ratio = static_cast<double>(observed) / model;
    max_ratio = std::max(max_ratio, ratio);
    min_ratio = std::min(min_ratio, ratio);
    any = true;
  }
  if (!any) return false;
  *c1 = max_ratio;
  *c2 = min_ratio;
  return true;
}

}  // namespace dynmis
