// Degree-distribution statistics and power-law-bounded (PLB) diagnostics.
//
// The paper's Theorem 4 and Lemma 2 apply to graphs that are power-law
// bounded (Definition 2, after Chauhan/Friedrich/Rothenberger): the number
// of vertices with degree in each dyadic bucket [2^d, 2^{d+1}) lies between
// two shifted power-law sequences. This module computes the bucketed degree
// histogram, fits the tail exponent beta, and checks the PLB sandwich for
// given parameters.

#ifndef DYNMIS_SRC_GRAPH_DEGREE_STATS_H_
#define DYNMIS_SRC_GRAPH_DEGREE_STATS_H_

#include <vector>

#include "src/graph/static_graph.h"

namespace dynmis {

struct DegreeStats {
  int n = 0;
  int64_t m = 0;
  int min_degree = 0;
  // Smallest non-zero degree (Definition 2's delta; isolated vertices are
  // outside the power-law tail). 0 when the graph has no edges.
  int min_positive_degree = 0;
  int max_degree = 0;
  double avg_degree = 0.0;
  // counts[d] = number of vertices of degree d.
  std::vector<int64_t> counts;
  // bucket_counts[b] = number of vertices with degree in [2^b, 2^{b+1}).
  std::vector<int64_t> bucket_counts;
};

DegreeStats ComputeDegreeStats(const StaticGraph& g);

// Least-squares fit of log(bucket density) against log(bucket degree): an
// estimate of the power-law exponent beta of the degree distribution tail.
// Returns 0 if there are fewer than two non-empty buckets.
double EstimatePowerLawExponent(const DegreeStats& stats);

// Checks Definition 2's sandwich: for every dyadic bucket between
// floor(log2(min_degree)) and floor(log2(max_degree)), the vertex count is
// within [c2 * E, c1 * E] where E = n (t+1)^{beta-1} sum_{i in bucket}
// (i+t)^{-beta}. Returns true if all buckets pass.
bool IsPowerLawBounded(const DegreeStats& stats, double beta, double t,
                       double c1, double c2);

// Finds (c1, c2) making the sandwich tight for the given beta and t, i.e.
// the max/min observed ratio of bucket count to the model's expected count.
// Buckets with zero expected mass are skipped. Returns false if no non-empty
// bucket exists.
bool FitPlbConstants(const DegreeStats& stats, double beta, double t,
                     double* c1, double* c2);

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_DEGREE_STATS_H_
