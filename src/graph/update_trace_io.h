// Text serialization for update sequences ("traces"), so experiments are
// replayable from disk and across tools:
//
//   # comments allowed
//   +e u v        insert edge {u, v}
//   -e u v        delete edge {u, v}
//   +v n1 n2 ...  insert vertex adjacent to n1, n2, ... (id assigned by the
//                 receiving graph)
//   -v u          delete vertex u
//
// The dynmis_cli tool consumes and produces this format.

#ifndef DYNMIS_SRC_GRAPH_UPDATE_TRACE_IO_H_
#define DYNMIS_SRC_GRAPH_UPDATE_TRACE_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/graph/update_stream.h"

namespace dynmis {

// Parses a trace; returns nullopt on malformed input.
std::optional<std::vector<GraphUpdate>> ParseUpdateTrace(
    const std::string& text);

// Loads a trace file; nullopt if unreadable or malformed.
std::optional<std::vector<GraphUpdate>> LoadUpdateTrace(
    const std::string& path);

// Serializes a trace. Returns false if the file cannot be written.
bool SaveUpdateTrace(const std::vector<GraphUpdate>& updates,
                     const std::string& path);

// Renders one update in trace syntax (no trailing newline).
std::string FormatUpdate(const GraphUpdate& update);

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_UPDATE_TRACE_IO_H_
