// Random update streams over dynamic graphs.
//
// The paper's workload ("similar to [21], we randomly insert/remove a
// predetermined number of vertices/edges") is reproduced by
// UpdateStreamGenerator: a seeded source of graph updates that are always
// valid against the current graph state. Because every algorithm under
// comparison applies the identical update sequence to its own graph copy,
// and DynamicGraph id allocation is deterministic, vertex ids stay in sync
// across algorithms.

#ifndef DYNMIS_SRC_GRAPH_UPDATE_STREAM_H_
#define DYNMIS_SRC_GRAPH_UPDATE_STREAM_H_

#include <string>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/util/random.h"

namespace dynmis {

enum class UpdateKind {
  kInsertEdge,
  kDeleteEdge,
  kInsertVertex,
  kDeleteVertex,
};

// One graph update. For kInsertEdge/kDeleteEdge, (u, v) is the edge. For
// kDeleteVertex, u is the vertex. For kInsertVertex the new vertex id is
// assigned by the receiving graph (deterministically) and `neighbors` lists
// the edges it arrives with.
struct GraphUpdate {
  UpdateKind kind = UpdateKind::kInsertEdge;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  std::vector<VertexId> neighbors;
  // External key binding, meaningful only on kInsertVertex (bind the new
  // vertex's id to `key`) and kDeleteVertex (the vertex was named by `key`;
  // `u` carries the resolved id). Empty means unkeyed — the common case —
  // and short keys stay in the SSO buffer, so unkeyed hot paths pay nothing.
  std::string key;

  std::string DebugString() const;
};

// How endpoints of inserted edges (and neighbours of inserted vertices) are
// chosen.
enum class EndpointBias {
  kUniform,             // Uniform over alive vertices.
  kDegreeProportional,  // Proportional to current degree (preferential-
                        // attachment churn). Preserves a power-law degree
                        // profile under heavy churn, mirroring how real
                        // social/web graphs evolve; uniform churn would
                        // slowly turn any stand-in into an Erdos-Renyi
                        // graph.
};

struct UpdateStreamOptions {
  // Probability that an update is an edge operation (vs a vertex operation).
  double edge_op_fraction = 0.9;
  // Probability that an operation is an insertion (vs a deletion).
  double insert_fraction = 0.5;
  // Degree of newly inserted vertices; -1 means "match the current average".
  int new_vertex_degree = -1;
  EndpointBias bias = EndpointBias::kUniform;
  uint64_t seed = 1;
};

// Draws valid updates against an evolving graph. The caller applies each
// update to the graph(s) before drawing the next one.
class UpdateStreamGenerator {
 public:
  explicit UpdateStreamGenerator(UpdateStreamOptions options);

  // Samples the next update, valid with respect to `g`. Falls back across
  // kinds when a kind is impossible (e.g. deleting from an empty graph).
  GraphUpdate Next(const DynamicGraph& g);

 private:
  VertexId RandomAliveVertex(const DynamicGraph& g);
  // A vertex sampled according to options_.bias (degree-proportional
  // sampling picks a random endpoint of a random edge; it never returns
  // isolated vertices, so it falls back to uniform when there are no edges).
  VertexId RandomBiasedVertex(const DynamicGraph& g);
  bool RandomAliveEdge(const DynamicGraph& g, VertexId* u, VertexId* v);
  bool RandomNonEdge(const DynamicGraph& g, VertexId* u, VertexId* v);

  UpdateStreamOptions options_;
  Rng rng_;
};

// Applies `update` to `g` (no independent-set bookkeeping). Returns the id
// of the inserted vertex for kInsertVertex, kInvalidVertex otherwise.
VertexId ApplyUpdate(DynamicGraph* g, const GraphUpdate& update);

// Convenience: pre-draws `count` updates by applying them to a scratch copy
// of `g`. The returned sequence is valid when replayed against any graph
// that starts identical to `g`.
std::vector<GraphUpdate> MakeUpdateSequence(const DynamicGraph& g, int count,
                                            const UpdateStreamOptions& options);

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_UPDATE_STREAM_H_
