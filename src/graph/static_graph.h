// StaticGraph: an immutable CSR snapshot used by the static MIS solvers
// (greedy, ARW local search, exact branch-and-reduce).
//
// Vertices are compacted to 0..n-1; when built from a DynamicGraph the
// mapping back to original ids is retained so solutions can be translated.
// Neighbor lists are sorted, enabling O(log d) adjacency queries and the
// double-pointer scans ARW relies on.

#ifndef DYNMIS_SRC_GRAPH_STATIC_GRAPH_H_
#define DYNMIS_SRC_GRAPH_STATIC_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/graph/dynamic_graph.h"

namespace dynmis {

class StaticGraph {
 public:
  StaticGraph() = default;

  // Builds from an edge list over vertices 0..n-1. Self-loops and duplicate
  // edges must have been removed by the caller (checked in debug builds).
  StaticGraph(int n, const std::vector<std::pair<VertexId, VertexId>>& edges);

  // Snapshots a DynamicGraph, compacting alive vertices to 0..n-1.
  static StaticGraph FromDynamic(const DynamicGraph& g);

  // Returns `g` with its original-id mapping replaced by `ids` (one entry
  // per vertex). Used by solvers that track their own id spaces.
  static StaticGraph WithOriginalIds(StaticGraph g, std::vector<VertexId> ids);

  int NumVertices() const { return static_cast<int>(offsets_.size()) - 1; }
  int64_t NumEdges() const { return static_cast<int64_t>(targets_.size()) / 2; }

  int Degree(VertexId v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  int MaxDegree() const { return max_degree_; }

  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(NumEdges()) / NumVertices();
  }

  // Sorted neighbor list of `v`.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  // O(log deg(u)) adjacency query.
  bool HasEdge(VertexId u, VertexId v) const;

  // Original id of compacted vertex `v`. Identity when built from an edge
  // list directly.
  VertexId OriginalId(VertexId v) const { return original_ids_[v]; }

  // Translates a solution over compacted ids back to original ids.
  std::vector<VertexId> ToOriginalIds(const std::vector<VertexId>& vs) const;

  // The subgraph induced by `vs` (compacted again to 0..|vs|-1, with
  // OriginalId mapping composed through this graph's mapping).
  StaticGraph InducedSubgraph(const std::vector<VertexId>& vs) const;

  size_t MemoryUsageBytes() const;

 private:
  std::vector<int64_t> offsets_{0};
  std::vector<VertexId> targets_;
  std::vector<VertexId> original_ids_;
  int max_degree_ = 0;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_STATIC_GRAPH_H_
