#include "src/graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dynmis {
namespace {

uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

std::optional<EdgeListGraph> ParseStream(std::istream& in) {
  EdgeListGraph g;
  std::unordered_map<int64_t, VertexId> id_map;
  std::unordered_set<uint64_t> seen;
  std::string line;
  auto intern = [&](int64_t raw) {
    auto [it, inserted] = id_map.try_emplace(raw, g.n);
    if (inserted) ++g.n;
    return it->second;
  };
  while (std::getline(in, line)) {
    // Strip comments and skip blank lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    int64_t a = 0;
    int64_t b = 0;
    if (!(tokens >> a)) continue;  // Blank or comment-only line.
    if (!(tokens >> b)) return std::nullopt;  // A lone endpoint is malformed.
    int64_t extra;
    if (tokens >> extra) return std::nullopt;  // More than two tokens.
    if (a == b) continue;                      // Drop self-loops.
    const VertexId u = intern(a);
    const VertexId v = intern(b);
    if (seen.insert(EdgeKey(u, v)).second) {
      g.edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  return g;
}

}  // namespace

std::optional<EdgeListGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ParseStream(in);
}

std::optional<EdgeListGraph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in);
}

bool SaveEdgeList(const EdgeListGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# dynmis edge list\n# nodes: " << g.n
      << " edges: " << g.edges.size() << "\n";
  for (const auto& [u, v] : g.edges) out << u << '\t' << v << '\n';
  return static_cast<bool>(out);
}

}  // namespace dynmis
