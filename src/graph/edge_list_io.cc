#include "src/graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dynmis {
namespace {

uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

std::optional<EdgeListGraph> ParseStream(std::istream& in) {
  EdgeListGraph g;
  std::unordered_map<int64_t, VertexId> id_map;
  std::unordered_set<uint64_t> seen;
  std::string line;
  auto intern = [&](int64_t raw) {
    auto [it, inserted] = id_map.try_emplace(raw, g.n);
    if (inserted) ++g.n;
    return it->second;
  };
  bool reserved = false;
  while (std::getline(in, line)) {
    // Strip comments and skip blank lines. A SaveEdgeList-style size header
    // ("# nodes: N edges: M") pre-sizes the containers before stripping.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      // Both our SaveEdgeList header and SNAP's capitalized variant
      // ("# Nodes: 875713 Edges: 5105039") carry the sizes.
      long long header_n = 0;
      long long header_m = 0;
      if (!reserved &&
          (std::sscanf(line.c_str() + hash, "# nodes: %lld edges: %lld",
                       &header_n, &header_m) == 2 ||
           std::sscanf(line.c_str() + hash, "# Nodes: %lld Edges: %lld",
                       &header_n, &header_m) == 2) &&
          header_n >= 0 && header_m >= 0) {
        reserved = true;
        id_map.reserve(static_cast<size_t>(header_n));
        seen.reserve(static_cast<size_t>(header_m));
        g.edges.reserve(static_cast<size_t>(header_m));
      }
      line.resize(hash);
    }
    std::istringstream tokens(line);
    int64_t a = 0;
    int64_t b = 0;
    if (!(tokens >> a)) continue;  // Blank or comment-only line.
    if (!(tokens >> b)) return std::nullopt;  // A lone endpoint is malformed.
    int64_t extra;
    if (tokens >> extra) return std::nullopt;  // More than two tokens.
    if (a == b) continue;                      // Drop self-loops.
    const VertexId u = intern(a);
    const VertexId v = intern(b);
    if (seen.insert(EdgeKey(u, v)).second) {
      g.edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  return g;
}

}  // namespace

std::optional<EdgeListGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ParseStream(in);
}

std::optional<EdgeListGraph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in);
}

bool SaveEdgeList(const EdgeListGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# dynmis edge list\n# nodes: " << g.n
      << " edges: " << g.edges.size() << "\n";
  for (const auto& [u, v] : g.edges) out << u << '\t' << v << '\n';
  return static_cast<bool>(out);
}

}  // namespace dynmis
