// Random and deterministic graph generators.
//
// These provide (a) the synthetic stand-ins for the paper's SNAP/LAW
// datasets (power-law graphs via Chung-Lu and the erased configuration
// model, the exact model the paper's Lemma 2 analysis assumes), (b) the
// power-law random graphs of the Fig 10 experiment, and (c) the special
// families used by the theory: the Theorem 3 worst-case witnesses (subdivided
// complete graphs and subdivided hypercubes) and assorted fixtures for tests.
//
// All generators are deterministic given the Rng state.

#ifndef DYNMIS_SRC_GRAPH_GENERATORS_H_
#define DYNMIS_SRC_GRAPH_GENERATORS_H_

#include <vector>

#include "src/graph/edge_list.h"
#include "src/util/random.h"

namespace dynmis {

// --- Random models ----------------------------------------------------------

// G(n, m): n vertices, m distinct uniformly random edges.
// m is capped at n*(n-1)/2.
EdgeListGraph ErdosRenyiGnm(int n, int64_t m, Rng* rng);

// Barabasi-Albert preferential attachment: starts from a clique on
// `edges_per_vertex + 1` vertices, then each new vertex attaches to
// `edges_per_vertex` existing vertices chosen proportionally to degree.
EdgeListGraph BarabasiAlbert(int n, int edges_per_vertex, Rng* rng);

// A power-law degree sequence with exponent `beta` on [min_degree,
// max_degree], sampled by inverse-CDF. The sum is adjusted to be even.
std::vector<int> PowerLawDegreeSequence(int n, double beta, int min_degree,
                                        int max_degree, Rng* rng);

// Erased configuration model: pairs stubs uniformly at random, then drops
// self-loops and parallel edges (the model used by the paper's Lemma 2 and
// by NetworkX's power-law generators).
EdgeListGraph ConfigurationModel(const std::vector<int>& degrees, Rng* rng);

// Power-law random graph: configuration model over a power-law degree
// sequence (growth exponent `beta`, degrees in [min_degree, max_degree]).
EdgeListGraph PowerLawRandomGraph(int n, double beta, int min_degree,
                                  int max_degree, Rng* rng);

// Chung-Lu graph with expected degrees `weights` (Miller-Hagberg efficient
// generation). Edge {u,v} appears with probability min(1, w_u*w_v / sum_w).
EdgeListGraph ChungLu(const std::vector<double>& weights, Rng* rng);

// Chung-Lu with power-law weights chosen so the expected average degree is
// about `avg_degree` and the tail exponent is `beta`.
EdgeListGraph ChungLuPowerLaw(int n, double beta, double avg_degree, Rng* rng);

// R-MAT with the usual (a, b, c) partition probabilities; 2^scale vertices,
// about `m` distinct edges (self-loops/duplicates are re-drawn, with a
// bounded number of attempts).
EdgeListGraph RMat(int scale, int64_t m, double a, double b, double c,
                   Rng* rng);

// Random d-regular-ish graph: configuration model over the constant sequence
// d (erased, so a few vertices may end up with degree < d).
EdgeListGraph RandomRegular(int n, int d, Rng* rng);

// --- Deterministic families -------------------------------------------------

EdgeListGraph CompleteGraph(int n);
EdgeListGraph PathGraph(int n);
EdgeListGraph CycleGraph(int n);
// Star with `leaves` leaves; the hub is vertex 0.
EdgeListGraph StarGraph(int leaves);
// The dim-dimensional hypercube Q_dim (2^dim vertices).
EdgeListGraph Hypercube(int dim);

// Subdivides every edge once: edge (u, v) becomes u - w - v with a fresh
// vertex w. Applied to K_n / Q_n this yields the Theorem 3 worst-case
// families K'_n / Q'_n, in which the original vertices form a k-maximal
// independent set of size ~ 2/Delta of optimal.
EdgeListGraph SubdivideEdges(const EdgeListGraph& g);

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_GENERATORS_H_
