// SNAP-format edge list IO.
//
// The paper evaluates on graphs from the Stanford Network Analysis Platform,
// distributed as whitespace-separated edge lists with '#' comment lines.
// LoadEdgeList accepts that format (arbitrary non-contiguous vertex ids,
// duplicate edges, self-loops, both orientations) and produces a clean
// EdgeListGraph with compacted ids. SaveEdgeList writes the same format, so
// real SNAP files can be swapped in for the synthetic stand-ins.

#ifndef DYNMIS_SRC_GRAPH_EDGE_LIST_IO_H_
#define DYNMIS_SRC_GRAPH_EDGE_LIST_IO_H_

#include <optional>
#include <string>

#include "src/graph/edge_list.h"

namespace dynmis {

// Parses SNAP-style text. Returns nullopt on unreadable files or malformed
// numeric tokens. Self-loops are dropped; duplicate edges (in either
// orientation) are kept once; ids are compacted to 0..n-1 in first-seen
// order.
std::optional<EdgeListGraph> LoadEdgeList(const std::string& path);

// Same parser over an in-memory string (used by tests).
std::optional<EdgeListGraph> ParseEdgeList(const std::string& text);

// Writes "# dynmis edge list" header plus one "u v" line per edge.
// Returns false if the file cannot be written.
bool SaveEdgeList(const EdgeListGraph& g, const std::string& path);

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_EDGE_LIST_IO_H_
