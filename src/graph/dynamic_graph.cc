#include "src/graph/dynamic_graph.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

DynamicGraph::DynamicGraph(int n) {
  DYNMIS_CHECK_GE(n, 0);
  vertices_.resize(n);
  for (auto& rec : vertices_) rec.alive = true;
  num_vertices_ = n;
}

VertexId DynamicGraph::AddVertex() {
  VertexId v;
  if (!free_vertices_.empty()) {
    v = free_vertices_.back();
    free_vertices_.pop_back();
  } else {
    v = static_cast<VertexId>(vertices_.size());
    vertices_.emplace_back();
  }
  VertexRec& rec = vertices_[v];
  rec.alive = true;
  rec.head = kInvalidEdge;
  rec.degree = 0;
  ++num_vertices_;
  return v;
}

void DynamicGraph::RemoveVertex(VertexId v) {
  DYNMIS_CHECK(IsVertexAlive(v));
  EdgeId e = vertices_[v].head;
  while (e != kInvalidEdge) {
    EdgeId next = NextIncident(e, v);
    RemoveEdge(e);
    e = next;
  }
  vertices_[v].alive = false;
  free_vertices_.push_back(v);
  --num_vertices_;
}

int DynamicGraph::MaxDegree() const {
  if (!max_degree_exact_) {
    int max_deg = 0;
    for (const auto& rec : vertices_) {
      if (rec.alive && rec.degree > max_deg) max_deg = rec.degree;
    }
    max_degree_bound_ = max_deg;
    max_degree_exact_ = true;
  }
  return max_degree_bound_;
}

EdgeId DynamicGraph::AddEdge(VertexId u, VertexId v) {
  DYNMIS_CHECK(IsVertexAlive(u));
  DYNMIS_CHECK(IsVertexAlive(v));
  DYNMIS_CHECK_NE(u, v);
  DYNMIS_DCHECK(!HasEdge(u, v));

  EdgeId e;
  if (!free_edges_.empty()) {
    e = free_edges_.back();
    free_edges_.pop_back();
  } else {
    e = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
  }
  EdgeRec& rec = edges_[e];
  rec.alive = true;
  rec.endpoint[0] = u;
  rec.endpoint[1] = v;
  for (int s = 0; s < 2; ++s) {
    VertexId x = rec.endpoint[s];
    VertexRec& vx = vertices_[x];
    rec.prev[s] = kInvalidEdge;
    rec.next[s] = vx.head;
    if (vx.head != kInvalidEdge) {
      EdgeRec& head_rec = edges_[vx.head];
      head_rec.prev[SideOf(vx.head, x)] = e;
    }
    vx.head = e;
    ++vx.degree;
    if (max_degree_exact_ && vx.degree > max_degree_bound_) {
      max_degree_bound_ = vx.degree;
    }
  }
  ++num_edges_;
  return e;
}

void DynamicGraph::UnlinkFrom(EdgeId e, VertexId v) {
  EdgeRec& rec = edges_[e];
  const int s = SideOf(e, v);
  const EdgeId prev = rec.prev[s];
  const EdgeId next = rec.next[s];
  if (prev != kInvalidEdge) {
    edges_[prev].next[SideOf(prev, v)] = next;
  } else {
    vertices_[v].head = next;
  }
  if (next != kInvalidEdge) {
    edges_[next].prev[SideOf(next, v)] = prev;
  }
  VertexRec& vrec = vertices_[v];
  if (vrec.degree == max_degree_bound_) max_degree_exact_ = false;
  --vrec.degree;
}

void DynamicGraph::RemoveEdge(EdgeId e) {
  DYNMIS_CHECK(IsEdgeAlive(e));
  EdgeRec& rec = edges_[e];
  UnlinkFrom(e, rec.endpoint[0]);
  UnlinkFrom(e, rec.endpoint[1]);
  rec.alive = false;
  rec.endpoint[0] = kInvalidVertex;
  rec.endpoint[1] = kInvalidVertex;
  free_edges_.push_back(e);
  --num_edges_;
}

bool DynamicGraph::RemoveEdgeBetween(VertexId u, VertexId v) {
  EdgeId e = FindEdge(u, v);
  if (e == kInvalidEdge) return false;
  RemoveEdge(e);
  return true;
}

EdgeId DynamicGraph::FindEdge(VertexId u, VertexId v) const {
  if (!IsVertexAlive(u) || !IsVertexAlive(v)) return kInvalidEdge;
  // Scan the endpoint with the smaller degree.
  if (Degree(v) < Degree(u)) std::swap(u, v);
  for (EdgeId e = FirstIncident(u); e != kInvalidEdge; e = NextIncident(e, u)) {
    if (Other(e, u) == v) return e;
  }
  return kInvalidEdge;
}

std::vector<VertexId> DynamicGraph::Neighbors(VertexId v) const {
  std::vector<VertexId> result;
  result.reserve(Degree(v));
  ForEachIncident(v, [&](VertexId u, EdgeId) { result.push_back(u); });
  return result;
}

std::vector<VertexId> DynamicGraph::AliveVertices() const {
  std::vector<VertexId> result;
  result.reserve(num_vertices_);
  for (VertexId v = 0; v < VertexCapacity(); ++v) {
    if (vertices_[v].alive) result.push_back(v);
  }
  return result;
}

std::vector<std::pair<VertexId, VertexId>> DynamicGraph::EdgeList() const {
  std::vector<std::pair<VertexId, VertexId>> result;
  result.reserve(static_cast<size_t>(num_edges_));
  for (EdgeId e = 0; e < EdgeCapacity(); ++e) {
    if (!edges_[e].alive) continue;
    VertexId u = edges_[e].endpoint[0];
    VertexId v = edges_[e].endpoint[1];
    if (u > v) std::swap(u, v);
    result.emplace_back(u, v);
  }
  return result;
}

size_t DynamicGraph::MemoryUsageBytes() const {
  return VectorBytes(vertices_) + VectorBytes(edges_) +
         VectorBytes(free_vertices_) + VectorBytes(free_edges_);
}

}  // namespace dynmis
