#include "src/graph/dynamic_graph.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

DynamicGraph::DynamicGraph(int n) {
  DYNMIS_CHECK_GE(n, 0);
  vertices_.resize(n);
  for (auto& rec : vertices_) rec.degree = 0;
  num_vertices_ = n;
  degree_count_.assign(1, n);
}

void DynamicGraph::Reserve(int n, int64_t m) {
  if (n > 0) {
    vertices_.reserve(static_cast<size_t>(n));
    free_vertices_.reserve(static_cast<size_t>(n));
  }
  if (m > 0) {
    edges_.reserve(static_cast<size_t>(m));
    edge_prev_.reserve(2 * static_cast<size_t>(m));
    free_edges_.reserve(static_cast<size_t>(m));
  }
}

void DynamicGraph::DegreeChanged(int old_degree, int new_degree) {
  --degree_count_[old_degree];
  if (new_degree >= static_cast<int>(degree_count_.size())) {
    degree_count_.resize(new_degree + 1, 0);
  }
  ++degree_count_[new_degree];
  if (new_degree > max_degree_) {
    max_degree_ = new_degree;
  } else if (old_degree == max_degree_ && degree_count_[old_degree] == 0) {
    // Amortized O(1): every decrement of max_degree_ is paid for by an
    // earlier unit increment in the branch above.
    while (max_degree_ > 0 && degree_count_[max_degree_] == 0) --max_degree_;
  }
}

void DynamicGraph::QueueVertexId(VertexId v) {
  DYNMIS_CHECK_GE(v, 0);
  DYNMIS_CHECK(!IsVertexAlive(v));
  queued_ids_.push_back(v);
}

VertexId DynamicGraph::AddVertex() {
  VertexId v;
  if (queued_head_ < queued_ids_.size()) {
    v = queued_ids_[queued_head_];
    if (++queued_head_ == queued_ids_.size()) {
      queued_ids_.clear();
      queued_head_ = 0;
    }
    if (v >= VertexCapacity()) {
      // Ids skipped while growing stay dead but join the free list, so the
      // free list keeps covering exactly the dead ids (the snapshot loader
      // validates that exactness).
      for (VertexId skipped = VertexCapacity(); skipped < v; ++skipped) {
        free_vertices_.push_back(skipped);
      }
      vertices_.resize(static_cast<size_t>(v) + 1);
    } else {
      // Recycled id: pull it out of the free list. Scan from the back —
      // recycling is LIFO, so a just-freed id sits near the end. A queued
      // id absent from the free list means it is alive by consumption time
      // (queued twice, or never freed): crash rather than corrupt.
      bool found = false;
      for (size_t i = free_vertices_.size(); i-- > 0;) {
        if (free_vertices_[i] == v) {
          free_vertices_[i] = free_vertices_.back();
          free_vertices_.pop_back();
          found = true;
          break;
        }
      }
      DYNMIS_CHECK(found);
    }
  } else if (!free_vertices_.empty()) {
    v = free_vertices_.back();
    free_vertices_.pop_back();
  } else {
    v = static_cast<VertexId>(vertices_.size());
    vertices_.emplace_back();
  }
  VertexRec& rec = vertices_[v];
  rec.head = kInvalidEdge;
  rec.degree = 0;
  ++num_vertices_;
  if (degree_count_.empty()) degree_count_.assign(1, 0);
  ++degree_count_[0];
  return v;
}

void DynamicGraph::RemoveVertex(VertexId v) {
  DYNMIS_CHECK(IsVertexAlive(v));
  EdgeId e = vertices_[v].head;
  while (e != kInvalidEdge) {
    EdgeId next = NextIncident(e, v);
    RemoveEdge(e);
    e = next;
  }
  DYNMIS_DCHECK(vertices_[v].degree == 0);
  --degree_count_[0];
  vertices_[v].degree = -1;
  free_vertices_.push_back(v);
  --num_vertices_;
}

EdgeId DynamicGraph::AddEdge(VertexId u, VertexId v) {
  DYNMIS_CHECK(IsVertexAlive(u));
  DYNMIS_CHECK(IsVertexAlive(v));
  DYNMIS_CHECK_NE(u, v);
  DYNMIS_DCHECK(!HasEdge(u, v));

  EdgeId e;
  if (!free_edges_.empty()) {
    e = free_edges_.back();
    free_edges_.pop_back();
  } else {
    e = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
    edge_prev_.resize(edge_prev_.size() + 2, kInvalidEdge);
  }
  EdgeRec& rec = edges_[e];
  rec.endpoint[0] = u;
  rec.endpoint[1] = v;
  for (int s = 0; s < 2; ++s) {
    VertexId x = rec.endpoint[s];
    VertexRec& vx = vertices_[x];
    edge_prev_[2 * e + s] = kInvalidEdge;
    rec.next[s] = vx.head;
    if (vx.head != kInvalidEdge) {
      edge_prev_[2 * vx.head + SideOf(vx.head, x)] = e;
    }
    vx.head = e;
    ++vx.degree;
    DegreeChanged(vx.degree - 1, vx.degree);
  }
  ++num_edges_;
  return e;
}

void DynamicGraph::UnlinkFrom(EdgeId e, VertexId v) {
  EdgeRec& rec = edges_[e];
  const int s = SideOf(e, v);
  const EdgeId prev = edge_prev_[2 * e + s];
  const EdgeId next = rec.next[s];
  if (prev != kInvalidEdge) {
    edges_[prev].next[SideOf(prev, v)] = next;
  } else {
    vertices_[v].head = next;
  }
  if (next != kInvalidEdge) {
    edge_prev_[2 * next + SideOf(next, v)] = prev;
  }
  VertexRec& vrec = vertices_[v];
  --vrec.degree;
  DegreeChanged(vrec.degree + 1, vrec.degree);
}

void DynamicGraph::RemoveEdge(EdgeId e) {
  DYNMIS_CHECK(IsEdgeAlive(e));
  EdgeRec& rec = edges_[e];
  UnlinkFrom(e, rec.endpoint[0]);
  UnlinkFrom(e, rec.endpoint[1]);
  rec.endpoint[0] = kInvalidVertex;  // Marks the edge dead.
  rec.endpoint[1] = kInvalidVertex;
  free_edges_.push_back(e);
  --num_edges_;
}

bool DynamicGraph::RemoveEdgeBetween(VertexId u, VertexId v) {
  EdgeId e = FindEdge(u, v);
  if (e == kInvalidEdge) return false;
  RemoveEdge(e);
  return true;
}

EdgeId DynamicGraph::FindEdge(VertexId u, VertexId v) const {
  if (!IsVertexAlive(u) || !IsVertexAlive(v)) return kInvalidEdge;
  // Scan the endpoint with the smaller degree.
  if (Degree(v) < Degree(u)) std::swap(u, v);
  for (EdgeId e = FirstIncident(u); e != kInvalidEdge; e = NextIncident(e, u)) {
    if (Other(e, u) == v) return e;
  }
  return kInvalidEdge;
}

std::vector<VertexId> DynamicGraph::Neighbors(VertexId v) const {
  std::vector<VertexId> result;
  result.reserve(Degree(v));
  ForEachIncident(v, [&](VertexId u, EdgeId) { result.push_back(u); });
  return result;
}

std::vector<VertexId> DynamicGraph::AliveVertices() const {
  std::vector<VertexId> result;
  result.reserve(num_vertices_);
  for (VertexId v = 0; v < VertexCapacity(); ++v) {
    if (vertices_[v].degree >= 0) result.push_back(v);
  }
  return result;
}

std::vector<std::pair<VertexId, VertexId>> DynamicGraph::EdgeList() const {
  std::vector<std::pair<VertexId, VertexId>> result;
  result.reserve(static_cast<size_t>(num_edges_));
  for (EdgeId e = 0; e < EdgeCapacity(); ++e) {
    if (edges_[e].endpoint[0] == kInvalidVertex) continue;
    VertexId u = edges_[e].endpoint[0];
    VertexId v = edges_[e].endpoint[1];
    if (u > v) std::swap(u, v);
    result.emplace_back(u, v);
  }
  return result;
}

size_t DynamicGraph::MemoryUsageBytes() const {
  return VectorBytes(vertices_) + VectorBytes(edges_) +
         VectorBytes(edge_prev_) + VectorBytes(free_vertices_) +
         VectorBytes(free_edges_) + VectorBytes(degree_count_) +
         VectorBytes(queued_ids_);
}

void DynamicGraph::SaveTo(SnapshotWriter* w) const {
  w->BeginSection("graph");
  w->PutI64(num_vertices_);
  w->PutI64(num_edges_);
  w->PutI32(VertexCapacity());
  w->PutI32(EdgeCapacity());
  std::vector<int32_t> scratch;
  scratch.reserve(4 * static_cast<size_t>(EdgeCapacity()));
  for (const VertexRec& rec : vertices_) scratch.push_back(rec.head);
  w->PutI32Array(scratch);
  scratch.clear();
  for (const VertexRec& rec : vertices_) scratch.push_back(rec.degree);
  w->PutI32Array(scratch);
  scratch.clear();
  for (const EdgeRec& rec : edges_) {
    scratch.push_back(rec.endpoint[0]);
    scratch.push_back(rec.endpoint[1]);
    scratch.push_back(rec.next[0]);
    scratch.push_back(rec.next[1]);
  }
  w->PutI32Array(scratch);
  w->PutI32Array(edge_prev_);
  w->PutI32Array(free_vertices_);
  w->PutI32Array(free_edges_);
  w->EndSection();
}

bool DynamicGraph::LoadFrom(SnapshotReader* r) {
  if (!r->OpenSection("graph")) return false;
  auto fail = [&](const char* message) {
    r->Fail(std::string("snapshot: graph: ") + message);
    return false;
  };

  const int64_t nv = r->GetI64();
  const int64_t ne = r->GetI64();
  const int32_t vcap = r->GetI32();
  const int32_t ecap = r->GetI32();
  std::vector<int32_t> heads, degrees, edge_recs, prev, free_v, free_e;
  if (!r->GetI32Array(&heads) || !r->GetI32Array(&degrees) ||
      !r->GetI32Array(&edge_recs) || !r->GetI32Array(&prev) ||
      !r->GetI32Array(&free_v) || !r->GetI32Array(&free_e)) {
    return false;
  }
  if (!r->AtSectionEnd()) return fail("trailing bytes after the last field");
  if (vcap < 0 || ecap < 0) return fail("negative capacity");
  if (nv < 0 || nv > vcap) return fail("vertex count out of range");
  if (ne < 0 || ne > ecap) return fail("edge count out of range");
  if (heads.size() != static_cast<size_t>(vcap) ||
      degrees.size() != static_cast<size_t>(vcap) ||
      edge_recs.size() != 4 * static_cast<size_t>(ecap) ||
      prev.size() != 2 * static_cast<size_t>(ecap)) {
    return fail("array sizes do not match declared capacities");
  }

  // --- Validation pass 1: scalar bounds and aggregate counts. ---------------
  int64_t alive_vertices = 0;
  int64_t degree_sum = 0;
  for (int32_t v = 0; v < vcap; ++v) {
    if (degrees[v] < -1) return fail("vertex degree below -1");
    if (degrees[v] >= 0) {
      ++alive_vertices;
      degree_sum += degrees[v];
      if (heads[v] < kInvalidEdge || heads[v] >= ecap) {
        return fail("adjacency head out of range");
      }
      if ((heads[v] == kInvalidEdge) != (degrees[v] == 0)) {
        return fail("adjacency head inconsistent with degree");
      }
    }
  }
  if (alive_vertices != nv) return fail("alive-vertex count mismatch");

  int64_t alive_edges = 0;
  for (int32_t e = 0; e < ecap; ++e) {
    const int32_t u = edge_recs[4 * e + 0];
    const int32_t v = edge_recs[4 * e + 1];
    if (u == kInvalidVertex) continue;  // Dead: links may be stale.
    ++alive_edges;
    if (u < 0 || u >= vcap || v < 0 || v >= vcap || u == v) {
      return fail("edge endpoint out of range");
    }
    if (degrees[u] < 0 || degrees[v] < 0) {
      return fail("edge incident to a dead vertex");
    }
    for (int s = 0; s < 2; ++s) {
      if (edge_recs[4 * e + 2 + s] < kInvalidEdge ||
          edge_recs[4 * e + 2 + s] >= ecap) {
        return fail("adjacency link out of range");
      }
      if (prev[2 * e + s] < kInvalidEdge || prev[2 * e + s] >= ecap) {
        return fail("adjacency back-link out of range");
      }
    }
  }
  if (alive_edges != ne) return fail("alive-edge count mismatch");
  if (degree_sum != 2 * ne) return fail("degree sum does not equal 2m");

  // The graph is simple: no two alive edges may share an endpoint pair
  // (counts in the algorithm layers are per neighbour, not per edge).
  {
    std::vector<uint64_t> pairs;
    pairs.reserve(static_cast<size_t>(ne));
    for (int32_t e = 0; e < ecap; ++e) {
      const int32_t u = edge_recs[4 * e + 0];
      if (u == kInvalidVertex) continue;
      const int32_t v = edge_recs[4 * e + 1];
      const uint64_t lo = static_cast<uint32_t>(u < v ? u : v);
      const uint64_t hi = static_cast<uint32_t>(u < v ? v : u);
      pairs.push_back((lo << 32) | hi);
    }
    std::sort(pairs.begin(), pairs.end());
    if (std::adjacent_find(pairs.begin(), pairs.end()) != pairs.end()) {
      return fail("parallel edges");
    }
  }

  // --- Validation pass 2: free lists exactly cover the dead ids. ------------
  if (free_v.size() != static_cast<size_t>(vcap) - static_cast<size_t>(nv)) {
    return fail("free-vertex list size mismatch");
  }
  if (free_e.size() != static_cast<size_t>(ecap) - static_cast<size_t>(ne)) {
    return fail("free-edge list size mismatch");
  }
  std::vector<uint8_t> seen(static_cast<size_t>(vcap), 0);
  for (int32_t v : free_v) {
    if (v < 0 || v >= vcap || degrees[v] >= 0 || seen[v]) {
      return fail("free-vertex list entry invalid or duplicated");
    }
    seen[v] = 1;
  }
  seen.assign(static_cast<size_t>(ecap), 0);
  for (int32_t e : free_e) {
    if (e < 0 || e >= ecap || edge_recs[4 * e] != kInvalidVertex || seen[e]) {
      return fail("free-edge list entry invalid or duplicated");
    }
    seen[e] = 1;
  }

  // --- Validation pass 3: adjacency lists are proper doubly-linked chains. --
  // Walk every alive vertex's list for exactly degree steps, checking that
  // each visited edge is alive and incident, that back-links mirror the
  // forward traversal, and that no edge side is visited twice. Together with
  // degree_sum == 2m this proves each alive edge sits in exactly its two
  // endpoints' lists and that no chain is cyclic or cross-linked.
  std::vector<uint8_t> side_seen(2 * static_cast<size_t>(ecap), 0);
  auto side_of = [&](int32_t e, int32_t v) {
    return edge_recs[4 * e + 0] == v ? 0 : 1;
  };
  for (int32_t v = 0; v < vcap; ++v) {
    if (degrees[v] < 0) continue;
    int32_t e = heads[v];
    int32_t expected_prev = kInvalidEdge;
    for (int32_t step = 0; step < degrees[v]; ++step) {
      if (e == kInvalidEdge) return fail("adjacency chain shorter than degree");
      if (edge_recs[4 * e + 0] != v && edge_recs[4 * e + 1] != v) {
        return fail("adjacency chain visits a non-incident edge");
      }
      if (edge_recs[4 * e + 0] == kInvalidVertex) {
        return fail("adjacency chain visits a dead edge");
      }
      const int s = side_of(e, v);
      if (side_seen[2 * e + s]) return fail("adjacency chain revisits an edge");
      side_seen[2 * e + s] = 1;
      if (prev[2 * e + s] != expected_prev) {
        return fail("adjacency back-link mismatch");
      }
      expected_prev = e;
      e = edge_recs[4 * e + 2 + s];
    }
    if (e != kInvalidEdge) return fail("adjacency chain longer than degree");
  }

  // --- Adopt: rebuild the flat arrays (Reserve avoids growth churn). --------
  DynamicGraph loaded;
  loaded.Reserve(vcap, ecap);
  loaded.vertices_.resize(static_cast<size_t>(vcap));
  for (int32_t v = 0; v < vcap; ++v) {
    loaded.vertices_[v].head = heads[v];
    loaded.vertices_[v].degree = degrees[v];
  }
  loaded.edges_.resize(static_cast<size_t>(ecap));
  for (int32_t e = 0; e < ecap; ++e) {
    loaded.edges_[e].endpoint[0] = edge_recs[4 * e + 0];
    loaded.edges_[e].endpoint[1] = edge_recs[4 * e + 1];
    loaded.edges_[e].next[0] = edge_recs[4 * e + 2];
    loaded.edges_[e].next[1] = edge_recs[4 * e + 3];
  }
  loaded.edge_prev_ = std::move(prev);
  loaded.free_vertices_ = std::move(free_v);
  loaded.free_edges_ = std::move(free_e);
  loaded.num_vertices_ = static_cast<int>(nv);
  loaded.num_edges_ = ne;
  // The degree histogram is derived state: rebuild it in O(n) rather than
  // trusting (and having to cross-validate) a persisted copy.
  int max_degree = 0;
  for (int32_t v = 0; v < vcap; ++v) {
    if (degrees[v] > max_degree) max_degree = degrees[v];
  }
  loaded.degree_count_.assign(static_cast<size_t>(max_degree) + 1, 0);
  for (int32_t v = 0; v < vcap; ++v) {
    if (degrees[v] >= 0) ++loaded.degree_count_[degrees[v]];
  }
  loaded.max_degree_ = max_degree;
  *this = std::move(loaded);
  return true;
}

}  // namespace dynmis
