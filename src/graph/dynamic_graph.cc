#include "src/graph/dynamic_graph.h"

#include <algorithm>

#include "src/util/memory.h"

namespace dynmis {

DynamicGraph::DynamicGraph(int n) {
  DYNMIS_CHECK_GE(n, 0);
  vertices_.resize(n);
  for (auto& rec : vertices_) rec.degree = 0;
  num_vertices_ = n;
  degree_count_.assign(1, n);
}

void DynamicGraph::Reserve(int n, int64_t m) {
  if (n > 0) {
    vertices_.reserve(static_cast<size_t>(n));
    free_vertices_.reserve(static_cast<size_t>(n));
  }
  if (m > 0) {
    edges_.reserve(static_cast<size_t>(m));
    edge_prev_.reserve(2 * static_cast<size_t>(m));
    free_edges_.reserve(static_cast<size_t>(m));
  }
}

void DynamicGraph::DegreeChanged(int old_degree, int new_degree) {
  --degree_count_[old_degree];
  if (new_degree >= static_cast<int>(degree_count_.size())) {
    degree_count_.resize(new_degree + 1, 0);
  }
  ++degree_count_[new_degree];
  if (new_degree > max_degree_) {
    max_degree_ = new_degree;
  } else if (old_degree == max_degree_ && degree_count_[old_degree] == 0) {
    // Amortized O(1): every decrement of max_degree_ is paid for by an
    // earlier unit increment in the branch above.
    while (max_degree_ > 0 && degree_count_[max_degree_] == 0) --max_degree_;
  }
}

VertexId DynamicGraph::AddVertex() {
  VertexId v;
  if (!free_vertices_.empty()) {
    v = free_vertices_.back();
    free_vertices_.pop_back();
  } else {
    v = static_cast<VertexId>(vertices_.size());
    vertices_.emplace_back();
  }
  VertexRec& rec = vertices_[v];
  rec.head = kInvalidEdge;
  rec.degree = 0;
  ++num_vertices_;
  if (degree_count_.empty()) degree_count_.assign(1, 0);
  ++degree_count_[0];
  return v;
}

void DynamicGraph::RemoveVertex(VertexId v) {
  DYNMIS_CHECK(IsVertexAlive(v));
  EdgeId e = vertices_[v].head;
  while (e != kInvalidEdge) {
    EdgeId next = NextIncident(e, v);
    RemoveEdge(e);
    e = next;
  }
  DYNMIS_DCHECK(vertices_[v].degree == 0);
  --degree_count_[0];
  vertices_[v].degree = -1;
  free_vertices_.push_back(v);
  --num_vertices_;
}

EdgeId DynamicGraph::AddEdge(VertexId u, VertexId v) {
  DYNMIS_CHECK(IsVertexAlive(u));
  DYNMIS_CHECK(IsVertexAlive(v));
  DYNMIS_CHECK_NE(u, v);
  DYNMIS_DCHECK(!HasEdge(u, v));

  EdgeId e;
  if (!free_edges_.empty()) {
    e = free_edges_.back();
    free_edges_.pop_back();
  } else {
    e = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
    edge_prev_.resize(edge_prev_.size() + 2, kInvalidEdge);
  }
  EdgeRec& rec = edges_[e];
  rec.endpoint[0] = u;
  rec.endpoint[1] = v;
  for (int s = 0; s < 2; ++s) {
    VertexId x = rec.endpoint[s];
    VertexRec& vx = vertices_[x];
    edge_prev_[2 * e + s] = kInvalidEdge;
    rec.next[s] = vx.head;
    if (vx.head != kInvalidEdge) {
      edge_prev_[2 * vx.head + SideOf(vx.head, x)] = e;
    }
    vx.head = e;
    ++vx.degree;
    DegreeChanged(vx.degree - 1, vx.degree);
  }
  ++num_edges_;
  return e;
}

void DynamicGraph::UnlinkFrom(EdgeId e, VertexId v) {
  EdgeRec& rec = edges_[e];
  const int s = SideOf(e, v);
  const EdgeId prev = edge_prev_[2 * e + s];
  const EdgeId next = rec.next[s];
  if (prev != kInvalidEdge) {
    edges_[prev].next[SideOf(prev, v)] = next;
  } else {
    vertices_[v].head = next;
  }
  if (next != kInvalidEdge) {
    edge_prev_[2 * next + SideOf(next, v)] = prev;
  }
  VertexRec& vrec = vertices_[v];
  --vrec.degree;
  DegreeChanged(vrec.degree + 1, vrec.degree);
}

void DynamicGraph::RemoveEdge(EdgeId e) {
  DYNMIS_CHECK(IsEdgeAlive(e));
  EdgeRec& rec = edges_[e];
  UnlinkFrom(e, rec.endpoint[0]);
  UnlinkFrom(e, rec.endpoint[1]);
  rec.endpoint[0] = kInvalidVertex;  // Marks the edge dead.
  rec.endpoint[1] = kInvalidVertex;
  free_edges_.push_back(e);
  --num_edges_;
}

bool DynamicGraph::RemoveEdgeBetween(VertexId u, VertexId v) {
  EdgeId e = FindEdge(u, v);
  if (e == kInvalidEdge) return false;
  RemoveEdge(e);
  return true;
}

EdgeId DynamicGraph::FindEdge(VertexId u, VertexId v) const {
  if (!IsVertexAlive(u) || !IsVertexAlive(v)) return kInvalidEdge;
  // Scan the endpoint with the smaller degree.
  if (Degree(v) < Degree(u)) std::swap(u, v);
  for (EdgeId e = FirstIncident(u); e != kInvalidEdge; e = NextIncident(e, u)) {
    if (Other(e, u) == v) return e;
  }
  return kInvalidEdge;
}

std::vector<VertexId> DynamicGraph::Neighbors(VertexId v) const {
  std::vector<VertexId> result;
  result.reserve(Degree(v));
  ForEachIncident(v, [&](VertexId u, EdgeId) { result.push_back(u); });
  return result;
}

std::vector<VertexId> DynamicGraph::AliveVertices() const {
  std::vector<VertexId> result;
  result.reserve(num_vertices_);
  for (VertexId v = 0; v < VertexCapacity(); ++v) {
    if (vertices_[v].degree >= 0) result.push_back(v);
  }
  return result;
}

std::vector<std::pair<VertexId, VertexId>> DynamicGraph::EdgeList() const {
  std::vector<std::pair<VertexId, VertexId>> result;
  result.reserve(static_cast<size_t>(num_edges_));
  for (EdgeId e = 0; e < EdgeCapacity(); ++e) {
    if (edges_[e].endpoint[0] == kInvalidVertex) continue;
    VertexId u = edges_[e].endpoint[0];
    VertexId v = edges_[e].endpoint[1];
    if (u > v) std::swap(u, v);
    result.emplace_back(u, v);
  }
  return result;
}

size_t DynamicGraph::MemoryUsageBytes() const {
  return VectorBytes(vertices_) + VectorBytes(edges_) +
         VectorBytes(edge_prev_) + VectorBytes(free_vertices_) +
         VectorBytes(free_edges_) + VectorBytes(degree_count_);
}

}  // namespace dynmis
