#include "src/graph/update_stream.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"

namespace dynmis {

std::string GraphUpdate::DebugString() const {
  char buf[96];
  switch (kind) {
    case UpdateKind::kInsertEdge:
      std::snprintf(buf, sizeof(buf), "+edge(%d,%d)", u, v);
      break;
    case UpdateKind::kDeleteEdge:
      std::snprintf(buf, sizeof(buf), "-edge(%d,%d)", u, v);
      break;
    case UpdateKind::kInsertVertex:
      std::snprintf(buf, sizeof(buf), "+vertex(deg=%zu)", neighbors.size());
      break;
    case UpdateKind::kDeleteVertex:
      std::snprintf(buf, sizeof(buf), "-vertex(%d)", u);
      break;
  }
  return buf;
}

UpdateStreamGenerator::UpdateStreamGenerator(UpdateStreamOptions options)
    : options_(options), rng_(SplitMix64(options.seed)) {}

VertexId UpdateStreamGenerator::RandomAliveVertex(const DynamicGraph& g) {
  DYNMIS_CHECK_GT(g.NumVertices(), 0);
  while (true) {
    const auto v = static_cast<VertexId>(rng_.NextBounded(g.VertexCapacity()));
    if (g.IsVertexAlive(v)) return v;
  }
}

VertexId UpdateStreamGenerator::RandomBiasedVertex(const DynamicGraph& g) {
  if (options_.bias == EndpointBias::kDegreeProportional && g.NumEdges() > 0) {
    // A uniform edge endpoint is a degree-proportional vertex.
    while (true) {
      const auto e = static_cast<EdgeId>(rng_.NextBounded(g.EdgeCapacity()));
      if (g.IsEdgeAlive(e)) {
        const auto [a, b] = g.Endpoints(e);
        return rng_.NextBool(0.5) ? a : b;
      }
    }
  }
  return RandomAliveVertex(g);
}

bool UpdateStreamGenerator::RandomAliveEdge(const DynamicGraph& g, VertexId* u,
                                            VertexId* v) {
  if (g.NumEdges() == 0) return false;
  while (true) {
    const auto e = static_cast<EdgeId>(rng_.NextBounded(g.EdgeCapacity()));
    if (g.IsEdgeAlive(e)) {
      std::tie(*u, *v) = g.Endpoints(e);
      return true;
    }
  }
}

bool UpdateStreamGenerator::RandomNonEdge(const DynamicGraph& g, VertexId* u,
                                          VertexId* v) {
  if (g.NumVertices() < 2) return false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const VertexId a = RandomBiasedVertex(g);
    const VertexId b = RandomBiasedVertex(g);
    if (a == b || g.HasEdge(a, b)) continue;
    *u = a;
    *v = b;
    return true;
  }
  return false;  // Graph is (nearly) complete.
}

GraphUpdate UpdateStreamGenerator::Next(const DynamicGraph& g) {
  GraphUpdate update;
  const bool edge_op = rng_.NextBool(options_.edge_op_fraction);
  const bool insert = rng_.NextBool(options_.insert_fraction);
  if (edge_op && insert) {
    if (RandomNonEdge(g, &update.u, &update.v)) {
      update.kind = UpdateKind::kInsertEdge;
      return update;
    }
    // Dense graph: fall through to edge deletion.
  }
  if (edge_op) {
    if (RandomAliveEdge(g, &update.u, &update.v)) {
      update.kind = UpdateKind::kDeleteEdge;
      return update;
    }
    // No edges: fall through to vertex insertion.
  }
  if (insert || g.NumVertices() == 0) {
    update.kind = UpdateKind::kInsertVertex;
    int degree = options_.new_vertex_degree;
    if (degree < 0) {
      degree = g.NumVertices() == 0
                   ? 0
                   : static_cast<int>(2 * g.NumEdges() / g.NumVertices());
    }
    degree = std::min<int>(degree, g.NumVertices());
    std::unordered_set<VertexId> chosen;
    while (static_cast<int>(chosen.size()) < degree) {
      chosen.insert(RandomBiasedVertex(g));
    }
    update.neighbors.assign(chosen.begin(), chosen.end());
    std::sort(update.neighbors.begin(), update.neighbors.end());
    return update;
  }
  update.kind = UpdateKind::kDeleteVertex;
  update.u = RandomAliveVertex(g);
  return update;
}

VertexId ApplyUpdate(DynamicGraph* g, const GraphUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
      g->AddEdge(update.u, update.v);
      return kInvalidVertex;
    case UpdateKind::kDeleteEdge: {
      const bool removed = g->RemoveEdgeBetween(update.u, update.v);
      DYNMIS_CHECK(removed);
      return kInvalidVertex;
    }
    case UpdateKind::kInsertVertex: {
      const VertexId v = g->AddVertex();
      for (VertexId u : update.neighbors) g->AddEdge(u, v);
      return v;
    }
    case UpdateKind::kDeleteVertex:
      g->RemoveVertex(update.u);
      return kInvalidVertex;
  }
  DYNMIS_CHECK(false);
  return kInvalidVertex;
}

std::vector<GraphUpdate> MakeUpdateSequence(
    const DynamicGraph& g, int count, const UpdateStreamOptions& options) {
  DynamicGraph scratch = g;
  UpdateStreamGenerator gen(options);
  std::vector<GraphUpdate> sequence;
  sequence.reserve(count);
  for (int i = 0; i < count; ++i) {
    sequence.push_back(gen.Next(scratch));
    ApplyUpdate(&scratch, sequence.back());
  }
  return sequence;
}

}  // namespace dynmis
