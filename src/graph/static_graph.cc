#include "src/graph/static_graph.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/memory.h"

namespace dynmis {

StaticGraph::StaticGraph(
    int n, const std::vector<std::pair<VertexId, VertexId>>& edges) {
  DYNMIS_CHECK_GE(n, 0);
  std::vector<int32_t> degree(n, 0);
  for (const auto& [u, v] : edges) {
    DYNMIS_CHECK(u >= 0 && u < n && v >= 0 && v < n);
    DYNMIS_CHECK_NE(u, v);
    ++degree[u];
    ++degree[v];
  }
  offsets_.assign(n + 1, 0);
  for (int v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + degree[v];
  targets_.resize(static_cast<size_t>(offsets_[n]));
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    targets_[cursor[u]++] = v;
    targets_[cursor[v]++] = u;
  }
  max_degree_ = 0;
  for (int v = 0; v < n; ++v) {
    auto begin = targets_.begin() + offsets_[v];
    auto end = targets_.begin() + offsets_[v + 1];
    std::sort(begin, end);
    DYNMIS_DCHECK(std::adjacent_find(begin, end) == end);
    max_degree_ = std::max(max_degree_, degree[v]);
  }
  original_ids_.resize(n);
  for (int v = 0; v < n; ++v) original_ids_[v] = v;
}

StaticGraph StaticGraph::FromDynamic(const DynamicGraph& g) {
  std::vector<VertexId> alive = g.AliveVertices();
  std::vector<VertexId> compact(g.VertexCapacity(), kInvalidVertex);
  for (size_t i = 0; i < alive.size(); ++i) {
    compact[alive[i]] = static_cast<VertexId>(i);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<size_t>(g.NumEdges()));
  for (const auto& [u, v] : g.EdgeList()) {
    edges.emplace_back(compact[u], compact[v]);
  }
  StaticGraph result(static_cast<int>(alive.size()), edges);
  result.original_ids_ = std::move(alive);
  return result;
}

StaticGraph StaticGraph::WithOriginalIds(StaticGraph g,
                                         std::vector<VertexId> ids) {
  DYNMIS_CHECK_EQ(static_cast<int>(ids.size()), g.NumVertices());
  g.original_ids_ = std::move(ids);
  return g;
}

bool StaticGraph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<VertexId> StaticGraph::ToOriginalIds(
    const std::vector<VertexId>& vs) const {
  std::vector<VertexId> result;
  result.reserve(vs.size());
  for (VertexId v : vs) result.push_back(original_ids_[v]);
  return result;
}

StaticGraph StaticGraph::InducedSubgraph(
    const std::vector<VertexId>& vs) const {
  std::vector<VertexId> compact(NumVertices(), kInvalidVertex);
  for (size_t i = 0; i < vs.size(); ++i) {
    compact[vs[i]] = static_cast<VertexId>(i);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v : vs) {
    for (VertexId u : Neighbors(v)) {
      if (u > v && compact[u] != kInvalidVertex) {
        edges.emplace_back(compact[v], compact[u]);
      }
    }
  }
  StaticGraph result(static_cast<int>(vs.size()), edges);
  for (size_t i = 0; i < vs.size(); ++i) {
    result.original_ids_[i] = original_ids_[vs[i]];
  }
  return result;
}

size_t StaticGraph::MemoryUsageBytes() const {
  return VectorBytes(offsets_) + VectorBytes(targets_) +
         VectorBytes(original_ids_);
}

}  // namespace dynmis
