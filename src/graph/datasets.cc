#include "src/graph/datasets.h"

#include <cmath>

#include "src/graph/generators.h"
#include "src/util/check.h"

namespace dynmis {
namespace {

DatasetSpec Spec(const char* name, bool easy, int n, double avg, double beta,
                 DatasetKind kind, uint64_t seed, int64_t paper_n,
                 int64_t paper_m, double paper_avg) {
  DatasetSpec s;
  s.name = name;
  s.easy = easy;
  s.n = n;
  s.avg_degree = avg;
  s.beta = beta;
  s.kind = kind;
  s.seed = seed;
  s.paper_n = paper_n;
  s.paper_m = paper_m;
  s.paper_avg_degree = paper_avg;
  return s;
}

}  // namespace

const std::vector<DatasetSpec>& EasyDatasets() {
  static const std::vector<DatasetSpec>* const kSpecs =
      new std::vector<DatasetSpec>{
          Spec("Epinions", true, 1800, 10.7, 2.2, DatasetKind::kChungLu, 101,
               75879, 405740, 10.69),
          Spec("Slashdot", true, 2000, 12.3, 2.2, DatasetKind::kChungLu, 102,
               82168, 504230, 12.27),
          Spec("Email", true, 3000, 2.8, 2.6, DatasetKind::kChungLu, 103,
               265214, 364481, 2.75),
          Spec("com-dblp", true, 3200, 6.6, 2.4, DatasetKind::kBarabasiAlbert,
               104, 317080, 1049866, 6.62),
          Spec("com-amazon", true, 3400, 5.5, 2.5,
               DatasetKind::kBarabasiAlbert, 105, 334863, 925872, 5.53),
          Spec("web-Google", true, 4500, 9.9, 2.3, DatasetKind::kChungLu, 106,
               875713, 4322051, 9.87),
          Spec("web-BerkStan", true, 4200, 19.4, 2.1, DatasetKind::kChungLu,
               107, 685230, 6649470, 19.41),
          Spec("in-2004", true, 5000, 19.7, 2.1, DatasetKind::kChungLu, 108,
               1382870, 13591473, 19.66),
          Spec("as-skitter", true, 5500, 13.1, 2.2, DatasetKind::kChungLu,
               109, 1696415, 11095298, 13.08),
          Spec("hollywood", true, 6000, 20.0, 2.15, DatasetKind::kChungLu, 110,
               1985306, 114492816, 115.34),
          Spec("WikiTalk", true, 6500, 3.9, 2.5, DatasetKind::kChungLu, 111,
               2394385, 4659565, 3.89),
          Spec("com-lj", true, 8000, 15.0, 2.15, DatasetKind::kChungLu, 112,
               3997962, 34681189, 17.35),
          Spec("soc-LiveJournal", true, 9000, 15.5, 2.15,
               DatasetKind::kChungLu, 113, 4847571, 42851237, 17.68),
      };
  return *kSpecs;
}

const std::vector<DatasetSpec>& HardDatasets() {
  static const std::vector<DatasetSpec>* const kSpecs =
      new std::vector<DatasetSpec>{
          Spec("soc-pokec", false, 10000, 27.3, 2.2, DatasetKind::kChungLu,
               201, 1632803, 22301964, 27.32),
          Spec("wiki-topcats", false, 10500, 28.4, 2.2, DatasetKind::kChungLu,
               202, 1791489, 25444207, 28.41),
          Spec("com-orkut", false, 11000, 45.0, 2.15, DatasetKind::kChungLu,
               203, 3072441, 117185083, 76.28),
          Spec("cit-Patents", false, 11500, 8.8, 2.4,
               DatasetKind::kBarabasiAlbert, 204, 3774768, 16518947, 8.75),
          Spec("uk-2005", false, 14000, 35.0, 2.1, DatasetKind::kChungLu, 205,
               39454746, 783027125, 39.70),
          Spec("it-2004", false, 15000, 40.0, 2.1, DatasetKind::kChungLu, 206,
               41290682, 1027474947, 49.77),
          Spec("twitter-2010", false, 16000, 45.0, 2.1, DatasetKind::kRMat,
               207, 41652230, 1468365182, 70.51),
          Spec("Friendster", false, 18000, 40.0, 2.2, DatasetKind::kChungLu,
               208, 65608366, 1806067135, 55.06),
          Spec("uk-2007", false, 20000, 42.0, 2.1, DatasetKind::kRMat, 209,
               109499800, 3448528200, 62.99),
      };
  return *kSpecs;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const auto& spec : EasyDatasets()) {
    if (spec.name == name) return &spec;
  }
  for (const auto& spec : HardDatasets()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

EdgeListGraph GenerateDataset(const DatasetSpec& spec) {
  Rng rng(SplitMix64(spec.seed));
  switch (spec.kind) {
    case DatasetKind::kChungLu:
      return ChungLuPowerLaw(spec.n, spec.beta, spec.avg_degree, &rng);
    case DatasetKind::kBarabasiAlbert: {
      const int per_vertex =
          std::max(1, static_cast<int>(std::lround(spec.avg_degree / 2.0)));
      return BarabasiAlbert(spec.n, per_vertex, &rng);
    }
    case DatasetKind::kRMat: {
      int scale = 1;
      while ((1 << scale) < spec.n) ++scale;
      const auto m =
          static_cast<int64_t>(spec.avg_degree * (1 << scale) / 2.0);
      return RMat(scale, m, 0.57, 0.19, 0.19, &rng);
    }
  }
  DYNMIS_CHECK(false);
  return {};
}

}  // namespace dynmis
