// DynamicGraph: an undirected graph supporting O(1) edge insertion/deletion
// and vertex insertion/deletion in time proportional to the vertex degree.
//
// This is the substrate every dynamic algorithm in the library runs on. Two
// properties matter to the algorithm layers:
//
//  * Vertex ids and edge ids are *stable*: an id never moves while the
//    vertex/edge is alive, so algorithm layers can keep their per-vertex and
//    per-edge state in flat arrays indexed by id (no hashing on hot paths).
//    Ids of deleted elements are recycled via free lists.
//  * Adjacency is an intrusive doubly-linked list threaded through the edge
//    records themselves, which is what makes deletion O(1). This mirrors the
//    paper's "I(v) can be updated in constant time if it is implemented by a
//    doubly-linked list and a pointer ... is recorded in edge (v, u)".
//
// The graph is not thread-safe; a single maintainer mutates it.

#ifndef DYNMIS_SRC_GRAPH_DYNAMIC_GRAPH_H_
#define DYNMIS_SRC_GRAPH_DYNAMIC_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/io/snapshot.h"
#include "src/util/check.h"

namespace dynmis {

using VertexId = int32_t;
using EdgeId = int32_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

class DynamicGraph {
 public:
  DynamicGraph() = default;

  // Convenience constructor: `n` vertices (ids 0..n-1), no edges.
  explicit DynamicGraph(int n);

  DynamicGraph(const DynamicGraph&) = default;
  DynamicGraph& operator=(const DynamicGraph&) = default;
  DynamicGraph(DynamicGraph&&) = default;
  DynamicGraph& operator=(DynamicGraph&&) = default;

  // --- Vertices -------------------------------------------------------------

  // Adds an isolated vertex and returns its id. Recycles ids of previously
  // removed vertices before growing the id space — unless ids have been
  // queued with QueueVertexId, in which case the oldest queued id is used.
  VertexId AddVertex();

  // Directs upcoming AddVertex() calls: each queued id is consumed in FIFO
  // order, and the consuming AddVertex() returns exactly that id (growing
  // the id space or pulling the id out of the free list as needed; ids
  // skipped while growing join the free list, keeping it exact). This lets
  // an owner that allocates ids externally — the sharded engine's global id
  // space — route vertex inserts through maintainers unchanged. Queued ids
  // must be dead and distinct from one another.
  void QueueVertexId(VertexId v);

  // Removes `v` and all its incident edges. `v` must be alive.
  void RemoveVertex(VertexId v);

  // True if `v` names a currently alive vertex.
  bool IsVertexAlive(VertexId v) const {
    return v >= 0 && v < VertexCapacity() && vertices_[v].degree >= 0;
  }

  int NumVertices() const { return num_vertices_; }

  // One past the largest vertex id ever allocated. Per-vertex side arrays in
  // algorithm layers should be sized to this.
  int VertexCapacity() const { return static_cast<int>(vertices_.size()); }

  int Degree(VertexId v) const {
    DYNMIS_DCHECK(IsVertexAlive(v));
    return vertices_[v].degree;
  }

  // Maximum degree over alive vertices. O(1) and always exact: a degree
  // histogram is maintained incrementally (the former implementation kept a
  // lazy upper bound and recomputed with an O(n) scan whenever the bound
  // may have decreased).
  int MaxDegree() const { return max_degree_; }

  // Pre-sizes the internal arrays for `n` vertices and `m` edges, so bulk
  // loaders and generators do not growth-reallocate edge by edge. Purely an
  // optimization; never shrinks.
  void Reserve(int n, int64_t m);

  // Dead vertex ids in recycling order (AddVertex pops from the back).
  // Consumers that rebuild an id-space-exact copy of this graph — the
  // sharded engine's resharding path — replay these removals so future
  // AddVertex calls allocate identical ids on both sides.
  const std::vector<VertexId>& FreeVertexIds() const { return free_vertices_; }

  // --- Edges ----------------------------------------------------------------

  // Inserts undirected edge {u, v} and returns its id. Requirements: u != v,
  // both alive, and the edge must not already exist (checked in debug builds;
  // use HasEdge() first when the input may contain duplicates).
  EdgeId AddEdge(VertexId u, VertexId v);

  // Removes the edge with id `e`. `e` must be alive.
  void RemoveEdge(EdgeId e);

  // Removes the edge between u and v if present. Returns true if removed.
  bool RemoveEdgeBetween(VertexId u, VertexId v);

  // Returns the id of edge {u, v}, or kInvalidEdge. O(min(deg(u), deg(v))).
  EdgeId FindEdge(VertexId u, VertexId v) const;

  bool HasEdge(VertexId u, VertexId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

  bool IsEdgeAlive(EdgeId e) const {
    return e >= 0 && e < EdgeCapacity() &&
           edges_[e].endpoint[0] != kInvalidVertex;
  }

  int64_t NumEdges() const { return num_edges_; }

  // One past the largest edge id ever allocated.
  int EdgeCapacity() const { return static_cast<int>(edges_.size()); }

  // Endpoints of alive edge `e` (unordered).
  std::pair<VertexId, VertexId> Endpoints(EdgeId e) const {
    DYNMIS_DCHECK(IsEdgeAlive(e));
    return {edges_[e].endpoint[0], edges_[e].endpoint[1]};
  }

  // The endpoint of `e` opposite to `v`.
  VertexId Other(EdgeId e, VertexId v) const {
    DYNMIS_DCHECK(IsEdgeAlive(e));
    const EdgeRec& rec = edges_[e];
    DYNMIS_DCHECK(rec.endpoint[0] == v || rec.endpoint[1] == v);
    return rec.endpoint[0] == v ? rec.endpoint[1] : rec.endpoint[0];
  }

  // Which endpoint slot (0 or 1) of edge `e` vertex `v` occupies. Algorithm
  // layers use this to index per-edge, per-direction side arrays (e.g. the
  // intrusive tightness lists of the MIS state).
  int Side(EdgeId e, VertexId v) const { return SideOf(e, v); }

  // --- Incidence iteration ---------------------------------------------------

  // First incident edge of `v`, or kInvalidEdge.
  EdgeId FirstIncident(VertexId v) const {
    DYNMIS_DCHECK(IsVertexAlive(v));
    return vertices_[v].head;
  }

  // Incident edge following `e` in v's adjacency list, or kInvalidEdge.
  // Touches only the 16-byte hot edge record (endpoints + forward links),
  // so adjacency scans fetch four records per cache line.
  EdgeId NextIncident(EdgeId e, VertexId v) const {
    DYNMIS_DCHECK(IsEdgeAlive(e));
    return edges_[e].next[SideOf(e, v)];
  }

  // Calls fn(neighbor, edge_id) for every edge incident to `v`. The callback
  // must not mutate the graph.
  template <typename Fn>
  void ForEachIncident(VertexId v, Fn&& fn) const {
    for (EdgeId e = FirstIncident(v); e != kInvalidEdge;
         e = NextIncident(e, v)) {
      fn(Other(e, v), e);
    }
  }

  // Returns v's neighbors as a fresh vector (convenience; O(deg)).
  std::vector<VertexId> Neighbors(VertexId v) const;

  // Returns the ids of all alive vertices in increasing order.
  std::vector<VertexId> AliveVertices() const;

  // Returns all alive edges as endpoint pairs (u < v), in edge-id order.
  std::vector<std::pair<VertexId, VertexId>> EdgeList() const;

  // Bytes held by the graph's internal arrays (capacity-based accounting).
  size_t MemoryUsageBytes() const;

  // --- Snapshots -------------------------------------------------------------

  // Writes the graph's flat arrays verbatim as the snapshot section "graph".
  // Ids (vertex, edge, adjacency links, free lists) are preserved exactly,
  // so algorithm layers can persist their id-indexed side arrays alongside.
  void SaveTo(SnapshotWriter* w) const;

  // Replaces this graph with the section "graph" of `r`. Runs a full O(n+m)
  // structural validation (bounds, degree sums, doubly-linked adjacency
  // integrity, free-list exactness) before any data is adopted, so a
  // corrupted or crafted payload yields a structured reader error — never
  // out-of-bounds access or a cyclic adjacency walk. Returns false (with
  // the reader failed) on any violation.
  bool LoadFrom(SnapshotReader* r);

 private:
  // 8 bytes. A negative degree encodes "dead" (the former bool padded the
  // record to 12 bytes); alive vertices always have degree >= 0.
  struct VertexRec {
    EdgeId head = kInvalidEdge;  // First edge of the adjacency list.
    int32_t degree = -1;
  };

  // An undirected edge threaded into both endpoints' adjacency lists.
  // Slot s in {0,1} stores the linkage for endpoint[s]'s list. Only the
  // forward direction lives here: this is the hot record that adjacency
  // scans (FindEdge, ForEachIncident, the MIS state's neighborhood walks)
  // chase, and at exactly 16 bytes four of them share a cache line — the
  // former 28-byte layout (prev links + alive bool) fit barely two. The
  // prev links, needed only on unlink, live in the cold side array
  // edge_prev_; "alive" is encoded as endpoint[0] != kInvalidVertex.
  struct EdgeRec {
    VertexId endpoint[2] = {kInvalidVertex, kInvalidVertex};
    EdgeId next[2] = {kInvalidEdge, kInvalidEdge};
  };

  // Which slot of edge `e` belongs to endpoint `v`.
  int SideOf(EdgeId e, VertexId v) const {
    const EdgeRec& rec = edges_[e];
    DYNMIS_DCHECK(rec.endpoint[0] == v || rec.endpoint[1] == v);
    return rec.endpoint[0] == v ? 0 : 1;
  }

  void UnlinkFrom(EdgeId e, VertexId v);

  // Degree histogram bookkeeping for the O(1) exact MaxDegree().
  void DegreeChanged(int old_degree, int new_degree);

  std::vector<VertexRec> vertices_;
  std::vector<EdgeRec> edges_;
  // Cold per-edge backward links, indexed 2 * e + side.
  std::vector<EdgeId> edge_prev_;
  std::vector<VertexId> free_vertices_;
  std::vector<EdgeId> free_edges_;
  // Forced ids queued by QueueVertexId, consumed FIFO by AddVertex
  // (queued_head_ indexes the next unconsumed entry; the vector is cleared
  // once drained). Transient routing state: empty at every quiescent point,
  // never snapshotted.
  std::vector<VertexId> queued_ids_;
  size_t queued_head_ = 0;
  int num_vertices_ = 0;
  int64_t num_edges_ = 0;
  // degree_count_[d]: number of alive vertices with degree d (maintained
  // for d <= max_degree_; the vector never shrinks).
  std::vector<int32_t> degree_count_;
  int max_degree_ = 0;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_GRAPH_DYNAMIC_GRAPH_H_
