#include "src/graph/update_trace_io.h"

#include <fstream>
#include <sstream>

namespace dynmis {

std::string FormatUpdate(const GraphUpdate& update) {
  std::ostringstream out;
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
      out << "+e " << update.u << ' ' << update.v;
      break;
    case UpdateKind::kDeleteEdge:
      out << "-e " << update.u << ' ' << update.v;
      break;
    case UpdateKind::kInsertVertex:
      out << "+v";
      for (VertexId n : update.neighbors) out << ' ' << n;
      break;
    case UpdateKind::kDeleteVertex:
      out << "-v " << update.u;
      break;
  }
  return out.str();
}

namespace {

std::optional<std::vector<GraphUpdate>> ParseStream(std::istream& in) {
  std::vector<GraphUpdate> updates;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op)) continue;  // Blank line.
    GraphUpdate update;
    if (op == "+e" || op == "-e") {
      update.kind =
          op == "+e" ? UpdateKind::kInsertEdge : UpdateKind::kDeleteEdge;
      if (!(tokens >> update.u >> update.v)) return std::nullopt;
      if (update.u < 0 || update.v < 0 || update.u == update.v) {
        return std::nullopt;
      }
    } else if (op == "+v") {
      update.kind = UpdateKind::kInsertVertex;
      VertexId n;
      while (tokens >> n) {
        if (n < 0) return std::nullopt;
        update.neighbors.push_back(n);
      }
    } else if (op == "-v") {
      update.kind = UpdateKind::kDeleteVertex;
      if (!(tokens >> update.u)) return std::nullopt;
      if (update.u < 0) return std::nullopt;
    } else {
      return std::nullopt;  // Unknown opcode.
    }
    // No trailing tokens allowed (vertex-insert consumes everything).
    std::string trailing;
    if (tokens >> trailing) return std::nullopt;
    updates.push_back(std::move(update));
  }
  return updates;
}

}  // namespace

std::optional<std::vector<GraphUpdate>> ParseUpdateTrace(
    const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in);
}

std::optional<std::vector<GraphUpdate>> LoadUpdateTrace(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ParseStream(in);
}

bool SaveUpdateTrace(const std::vector<GraphUpdate>& updates,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# dynmis update trace, " << updates.size() << " updates\n";
  for (const GraphUpdate& update : updates) {
    out << FormatUpdate(update) << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace dynmis
