#include "dynmis/engine.h"

#include <istream>
#include <ostream>
#include <utility>

#include "src/util/timer.h"

namespace dynmis {

std::unique_ptr<MisEngine> MisEngine::Create(const EdgeListGraph& base,
                                             MaintainerConfig config) {
  return Create(base.ToDynamic(), std::move(config));
}

std::unique_ptr<MisEngine> MisEngine::Create(DynamicGraph graph,
                                             MaintainerConfig config) {
  auto owned = std::make_unique<DynamicGraph>(std::move(graph));
  std::unique_ptr<DynamicMisMaintainer> maintainer =
      MaintainerRegistry::Global().Create(config, owned.get());
  if (maintainer == nullptr) return nullptr;
  return std::unique_ptr<MisEngine>(new MisEngine(
      std::move(owned), std::move(maintainer), std::move(config)));
}

void MisEngine::Initialize(const std::vector<VertexId>& initial) {
  maintainer_->Initialize(initial);
}

UpdateResult MisEngine::Apply(const GraphUpdate& update) {
  UpdateResult result;
  Timer timer;
  const VertexId v = maintainer_->Apply(update);
  result.seconds = timer.ElapsedSeconds();
  result.applied = 1;
  if (update.kind == UpdateKind::kInsertVertex) {
    result.new_vertices.push_back(v);
  }
  updates_applied_ += 1;
  update_seconds_ += result.seconds;
  if (observer_) observer_(update, 1, result.seconds);
  return result;
}

UpdateResult MisEngine::ApplyBatch(const std::vector<GraphUpdate>& updates) {
  UpdateResult result;
  Timer timer;
  result.new_vertices = maintainer_->ApplyBatch(updates);
  result.seconds = timer.ElapsedSeconds();
  result.applied = static_cast<int64_t>(updates.size());
  updates_applied_ += result.applied;
  update_seconds_ += result.seconds;
  if (observer_ && !updates.empty()) {
    observer_(updates.front(), result.applied, result.seconds);
  }
  return result;
}

UpdateResult MisEngine::InsertEdge(VertexId u, VertexId v) {
  GraphUpdate update;
  update.kind = UpdateKind::kInsertEdge;
  update.u = u;
  update.v = v;
  return Apply(update);
}

UpdateResult MisEngine::DeleteEdge(VertexId u, VertexId v) {
  GraphUpdate update;
  update.kind = UpdateKind::kDeleteEdge;
  update.u = u;
  update.v = v;
  return Apply(update);
}

VertexId MisEngine::InsertVertex(const std::vector<VertexId>& neighbors) {
  GraphUpdate update;
  update.kind = UpdateKind::kInsertVertex;
  update.neighbors = neighbors;
  const UpdateResult result = Apply(update);
  return result.new_vertices.empty() ? kInvalidVertex
                                     : result.new_vertices.front();
}

UpdateResult MisEngine::DeleteVertex(VertexId v) {
  GraphUpdate update;
  update.kind = UpdateKind::kDeleteVertex;
  update.u = v;
  return Apply(update);
}

SnapshotStatus MisEngine::SaveSnapshot(std::ostream& out) const {
  SnapshotWriter writer;
  SaveTo(&writer);
  return writer.WriteTo(out);
}

void MisEngine::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection("engine");
  writer->PutString(config_.algorithm);
  writer->PutString(maintainer_->Name());
  writer->PutI32(config_.k);
  writer->PutU8(config_.lazy ? 1 : 0);
  writer->PutU8(config_.perturb ? 1 : 0);
  writer->PutI32(config_.recompute_every);
  writer->PutI64(updates_applied_);
  writer->PutDouble(update_seconds_);
  writer->EndSection();
  graph_->SaveTo(writer);
  maintainer_->SaveState(writer);
}

bool MisEngine::ReadEngineMeta(SnapshotReader* r, SnapshotEngineMeta* meta) {
  if (!r->OpenSection("engine")) return false;
  meta->config.algorithm = r->GetString();
  meta->display_name = r->GetString();
  meta->config.k = r->GetI32();
  meta->config.lazy = r->GetU8() != 0;
  meta->config.perturb = r->GetU8() != 0;
  meta->config.recompute_every = r->GetI32();
  meta->updates_applied = r->GetI64();
  meta->update_seconds = r->GetDouble();
  if (r->ok() && !r->AtSectionEnd()) {
    r->Fail("snapshot: engine: trailing bytes after the last field");
  }
  return r->ok();
}

std::unique_ptr<MisEngine> MisEngine::LoadSnapshot(std::istream& in,
                                                   SnapshotStatus* status) {
  auto report = [&](const SnapshotStatus& s) {
    if (status != nullptr) *status = s;
  };
  report(SnapshotStatus::Ok());

  SnapshotReader reader;
  if (SnapshotStatus read = reader.ReadFrom(in); !read) {
    report(read);
    return nullptr;
  }
  SnapshotEngineMeta meta;
  if (!ReadEngineMeta(&reader, &meta)) {
    report(reader.status());
    return nullptr;
  }
  const MaintainerConfig& config = meta.config;
  if (!MaintainerRegistry::Global().Has(config.algorithm)) {
    report(SnapshotStatus::Error("snapshot: unknown algorithm '" +
                                 config.algorithm +
                                 "' (not in MaintainerRegistry)"));
    return nullptr;
  }
  if (config.k < 1 || config.k > kMaxKSwapOrder || config.recompute_every < 1) {
    report(SnapshotStatus::Error(
        "snapshot: engine configuration out of range"));
    return nullptr;
  }

  DynamicGraph graph;
  if (!graph.LoadFrom(&reader)) {
    report(reader.status());
    return nullptr;
  }
  std::unique_ptr<MisEngine> engine = Create(std::move(graph), config);
  if (engine == nullptr) {
    report(SnapshotStatus::Error("snapshot: maintainer construction failed"));
    return nullptr;
  }
  if (!engine->maintainer_->LoadState(&reader, *engine->graph_)) {
    report(reader.ok() ? SnapshotStatus::Error(
                             "snapshot: maintainer state restore failed")
                       : reader.status());
    return nullptr;
  }
  engine->updates_applied_ = meta.updates_applied;
  engine->update_seconds_ = meta.update_seconds;
  return engine;
}

EngineStats MisEngine::Stats() const {
  EngineStats stats;
  stats.algorithm = maintainer_->Name();
  stats.solution_size = maintainer_->SolutionSize();
  stats.num_vertices = graph_->NumVertices();
  stats.num_edges = graph_->NumEdges();
  stats.structure_memory_bytes = maintainer_->MemoryUsageBytes();
  stats.graph_memory_bytes = graph_->MemoryUsageBytes();
  stats.updates_applied = updates_applied_;
  stats.update_seconds = update_seconds_;
  return stats;
}

}  // namespace dynmis
